(** Imperative builder for {!Graph.t} models.

    Benchmark models and tests construct diagrams through this API:
    each block-adding function returns the block's output signal(s),
    and wiring happens implicitly by passing signals as arguments.

    {[
      let b = Build.create "Demo" in
      let u = Build.inport b "u" Dtype.Int32 in
      let limited = Build.saturation b ~lower:(-10.) ~upper:10. u in
      Build.outport b "y" limited;
      let model = Build.finish b
    ]} *)

type t
(** A model under construction. *)

type signal
(** An output port of an already-added block. *)

val create : string -> t

val finish : t -> Graph.t
(** Freezes the builder and validates the result. Raises [Failure]
    with the validation message if the diagram is malformed. *)

(** {1 Generic} *)

val add : t -> ?name:string -> Graph.kind -> signal list -> signal array
(** [add b kind inputs] appends a block, wires [inputs] to its input
    ports in order, and returns its output signals. Raises [Failure]
    if the number of inputs does not match the kind's arity. Block
    names default to ["<Kind><bid>"]. *)

(** {1 Sources and sinks} *)

val inport : t -> string -> Dtype.t -> signal
val const : t -> ?name:string -> Value.t -> signal
val const_f : t -> ?name:string -> float -> signal
(** Float64 constant. *)

val const_i : t -> ?name:string -> Dtype.t -> int -> signal
val ground : t -> Dtype.t -> signal
val outport : t -> string -> signal -> unit
val terminator : t -> signal -> unit

val assertion : t -> ?name:string -> string -> signal -> unit
(** [assertion b msg s] adds a Model Verification block: [s] must be
    true (nonzero) at every step; [msg] labels violations. *)

(** {1 Math} *)

val sum : t -> ?name:string -> ?signs:string -> signal list -> signal
(** Default signs: all ['+']. *)

val sub : t -> ?name:string -> signal -> signal -> signal
val product : t -> ?name:string -> ?ops:string -> signal list -> signal
val gain : t -> ?name:string -> float -> signal -> signal
val bias : t -> ?name:string -> float -> signal -> signal
val abs_ : t -> ?name:string -> signal -> signal
val neg : t -> ?name:string -> signal -> signal
val sign : t -> ?name:string -> signal -> signal
val math : t -> ?name:string -> Graph.math_func -> signal -> signal
val rounding : t -> ?name:string -> Graph.round_mode -> signal -> signal
val min_ : t -> ?name:string -> signal list -> signal
val max_ : t -> ?name:string -> signal list -> signal
val saturation : t -> ?name:string -> lower:float -> upper:float -> signal -> signal
val dead_zone : t -> ?name:string -> lower:float -> upper:float -> signal -> signal

val relay :
  t -> ?name:string -> on_point:float -> off_point:float -> on_value:float -> off_value:float ->
  signal -> signal

val quantizer : t -> ?name:string -> float -> signal -> signal
val rate_limiter : t -> ?name:string -> rising:float -> falling:float -> signal -> signal

(** {1 Logic} *)

val logic : t -> ?name:string -> Graph.logic_op -> signal list -> signal
val and_ : t -> ?name:string -> signal -> signal -> signal
val or_ : t -> ?name:string -> signal -> signal -> signal
val xor_ : t -> ?name:string -> signal -> signal -> signal
val not_ : t -> ?name:string -> signal -> signal
val relational : t -> ?name:string -> Graph.relop -> signal -> signal -> signal
val compare_const : t -> ?name:string -> Graph.relop -> float -> signal -> signal
val compare_zero : t -> ?name:string -> Graph.relop -> signal -> signal

(** {1 Routing} *)

val switch : t -> ?name:string -> ?criteria:Graph.switch_criteria -> signal -> signal -> signal -> signal
(** [switch b data1 control data2]; default criteria [Gt_threshold 0.]. *)

val multiport_switch : t -> ?name:string -> signal -> signal list -> signal
(** [multiport_switch b selector datas]. *)

val merge : t -> ?name:string -> signal list -> signal
val if_block : t -> ?name:string -> signal list -> signal array
(** Returns the n+1 action signals (conditions..., else). *)

(** {1 Discrete} *)

val unit_delay : t -> ?name:string -> ?init:float -> signal -> signal
val delay : t -> ?name:string -> ?init:float -> int -> signal -> signal
val memory : t -> ?name:string -> ?init:float -> signal -> signal

val integrator :
  t -> ?name:string -> ?gain:float -> ?init:float -> ?limits:Graph.integrator_limits -> signal ->
  signal

val filter : t -> ?name:string -> ?init:float -> float -> signal -> signal
val counter : t -> ?name:string -> ?init:int -> ?wrap:bool -> int -> signal -> signal
val edge : t -> ?name:string -> Graph.edge_kind -> signal -> signal
val lookup : t -> ?name:string -> xs:float array -> ys:float array -> signal -> signal
val convert : t -> ?name:string -> Dtype.t -> signal -> signal

(** {1 Composite} *)

val chart : t -> ?name:string -> Chart.t -> signal list -> signal array

val subsystem :
  t -> ?name:string -> ?activation:Graph.activation -> Graph.t -> signal list -> signal array
(** For [Enabled]/[Triggered] activation the first signal is the
    enable/trigger input, followed by the subsystem's inports. *)
