type t =
  | VBool of bool
  | VInt of Dtype.t * int
  | VFloat of Dtype.t * float

let dtype = function
  | VBool _ -> Dtype.Bool
  | VInt (ty, _) -> ty
  | VFloat (ty, _) -> ty

(* Two's-complement wrap of an arbitrary OCaml int into the dtype range.
   OCaml's 63-bit ints comfortably hold all intermediates for 32-bit
   arithmetic except 32x32 multiplication overflow, which still fits. *)
let wrap ty n =
  let bits =
    match ty with
    | Dtype.Int8 | Dtype.UInt8 -> 8
    | Dtype.Int16 | Dtype.UInt16 -> 16
    | Dtype.Int32 | Dtype.UInt32 -> 32
    | Dtype.Bool | Dtype.Float32 | Dtype.Float64 ->
      invalid_arg "Value.wrap: not an integer type"
  in
  let modulus = 1 lsl bits in
  let m = n land (modulus - 1) in
  if Dtype.is_signed ty && m >= modulus / 2 then m - modulus else m

let round_f32 f = Int32.float_of_bits (Int32.bits_of_float f)

let mk_float ty f =
  match ty with
  | Dtype.Float32 -> VFloat (Dtype.Float32, round_f32 f)
  | Dtype.Float64 -> VFloat (Dtype.Float64, f)
  | _ -> invalid_arg "Value.mk_float: not a float type"

let zero ty =
  match ty with
  | Dtype.Bool -> VBool false
  | ty when Dtype.is_integer ty -> VInt (ty, 0)
  | ty -> mk_float ty 0.0

let of_int ty n =
  match ty with
  | Dtype.Bool -> VBool (n <> 0)
  | ty when Dtype.is_integer ty -> VInt (ty, wrap ty n)
  | ty -> mk_float ty (float_of_int n)

let saturate_trunc ty f =
  if Float.is_nan f then 0
  else begin
    let t = Float.of_int 0 +. Float.trunc f in
    let lo = float_of_int (Dtype.min_int_value ty) in
    let hi = float_of_int (Dtype.max_int_value ty) in
    if t <= lo then Dtype.min_int_value ty
    else if t >= hi then Dtype.max_int_value ty
    else int_of_float t
  end

let of_float ty f =
  match ty with
  | Dtype.Bool -> VBool (f <> 0.0)
  | ty when Dtype.is_integer ty -> VInt (ty, saturate_trunc ty f)
  | ty -> mk_float ty f

let of_bool b = VBool b

let to_float = function
  | VBool b -> if b then 1.0 else 0.0
  | VInt (_, n) -> float_of_int n
  | VFloat (_, f) -> f

let to_int = function
  | VBool b -> if b then 1 else 0
  | VInt (_, n) -> n
  | VFloat (_, f) -> saturate_trunc Dtype.Int32 f

let is_true = function
  | VBool b -> b
  | VInt (_, n) -> n <> 0
  | VFloat (_, f) -> f <> 0.0

let cast ty v =
  match v with
  | VBool b -> of_int ty (if b then 1 else 0)
  | VInt (_, n) -> of_int ty n
  | VFloat (_, f) -> of_float ty f

let arith ty op_int op_float a b =
  match ty with
  | Dtype.Bool ->
    (* boolean signals never carry arithmetic results; normalize *)
    VBool (op_float (to_float a) (to_float b) <> 0.0)
  | ty when Dtype.is_integer ty -> VInt (ty, wrap ty (op_int (to_int a) (to_int b)))
  | ty -> mk_float ty (op_float (to_float a) (to_float b))

let add ty a b = arith ty ( + ) ( +. ) a b
let sub ty a b = arith ty ( - ) ( -. ) a b
let mul ty a b = arith ty ( * ) ( *. ) a b

let div ty a b =
  let div_int x y = if y = 0 then 0 else x / y in
  let div_float x y = if y = 0.0 then 0.0 else x /. y in
  arith ty div_int div_float a b

let rem ty a b =
  let rem_int x y = if y = 0 then 0 else x mod y in
  let rem_float x y = if y = 0.0 then 0.0 else Float.rem x y in
  arith ty rem_int rem_float a b

let neg ty a = sub ty (zero ty) a

let abs ty a =
  if Dtype.is_integer ty then VInt (ty, wrap ty (Int.abs (to_int a)))
  else if Dtype.is_float ty then mk_float ty (Float.abs (to_float a))
  else VBool (is_true a)

let min ty a b = if to_float a <= to_float b then cast ty a else cast ty b
let max ty a b = if to_float a >= to_float b then cast ty a else cast ty b

let compare_num a b = Float.compare (to_float a) (to_float b)

let equal a b =
  match (a, b) with
  | VBool x, VBool y -> x = y
  | VInt (ta, x), VInt (tb, y) -> Dtype.equal ta tb && x = y
  | VFloat (ta, x), VFloat (tb, y) ->
    Dtype.equal ta tb && (x = y || (Float.is_nan x && Float.is_nan y))
  | (VBool _ | VInt _ | VFloat _), _ -> false

let decode ty b off =
  match ty with
  | Dtype.Bool -> VBool (Cftcg_util.Bytecodec.get_u8 b off <> 0)
  | Dtype.Int8 -> VInt (ty, Cftcg_util.Bytecodec.get_i8 b off)
  | Dtype.UInt8 -> VInt (ty, Cftcg_util.Bytecodec.get_u8 b off)
  | Dtype.Int16 -> VInt (ty, Cftcg_util.Bytecodec.get_i16 b off)
  | Dtype.UInt16 -> VInt (ty, Cftcg_util.Bytecodec.get_u16 b off)
  | Dtype.Int32 -> VInt (ty, Cftcg_util.Bytecodec.get_i32 b off)
  | Dtype.UInt32 -> VInt (ty, Cftcg_util.Bytecodec.get_u32 b off)
  | Dtype.Float32 -> VFloat (ty, Cftcg_util.Bytecodec.get_f32 b off)
  | Dtype.Float64 -> VFloat (ty, Cftcg_util.Bytecodec.get_f64 b off)

(* to_float ∘ decode without the intermediate box — the fuzzer's
   per-tuple input path runs this once per inport per model step. *)
let decode_float ty b off =
  match ty with
  | Dtype.Bool -> if Cftcg_util.Bytecodec.get_u8 b off <> 0 then 1.0 else 0.0
  | Dtype.Int8 -> float_of_int (Cftcg_util.Bytecodec.get_i8 b off)
  | Dtype.UInt8 -> float_of_int (Cftcg_util.Bytecodec.get_u8 b off)
  | Dtype.Int16 -> float_of_int (Cftcg_util.Bytecodec.get_i16 b off)
  | Dtype.UInt16 -> float_of_int (Cftcg_util.Bytecodec.get_u16 b off)
  | Dtype.Int32 -> float_of_int (Cftcg_util.Bytecodec.get_i32 b off)
  | Dtype.UInt32 -> float_of_int (Cftcg_util.Bytecodec.get_u32 b off)
  | Dtype.Float32 -> Cftcg_util.Bytecodec.get_f32 b off
  | Dtype.Float64 -> Cftcg_util.Bytecodec.get_f64 b off

let encode v b off =
  match v with
  | VBool x -> Cftcg_util.Bytecodec.set_u8 b off (if x then 1 else 0)
  | VInt (ty, n) -> (
    match Dtype.size_bytes ty with
    | 1 -> Cftcg_util.Bytecodec.set_u8 b off (n land 0xFF)
    | 2 -> Cftcg_util.Bytecodec.set_u16 b off (n land 0xFFFF)
    | 4 -> Cftcg_util.Bytecodec.set_u32 b off (n land 0xFFFFFFFF)
    | _ -> assert false)
  | VFloat (Dtype.Float32, f) -> Cftcg_util.Bytecodec.set_f32 b off f
  | VFloat (_, f) -> Cftcg_util.Bytecodec.set_f64 b off f

let saturating_int_of_float = saturate_trunc

let normalize_float ty f =
  match ty with
  | Dtype.Float32 -> round_f32 f
  | _ -> f

let to_string v =
  match v with
  | VBool b -> Printf.sprintf "boolean:%d" (if b then 1 else 0)
  | VInt (ty, n) -> Printf.sprintf "%s:%d" (Dtype.name ty) n
  | VFloat (ty, f) -> Printf.sprintf "%s:%h" (Dtype.name ty) f

let of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i ->
    let tyname = String.sub s 0 i in
    let payload = String.sub s (i + 1) (String.length s - i - 1) in
    (match Dtype.of_string tyname with
    | None -> None
    | Some ty ->
      if Dtype.is_float ty then
        match float_of_string_opt payload with
        | Some f -> Some (of_float ty f)
        | None -> None
      else
        match int_of_string_opt payload with
        | Some n -> Some (of_int ty n)
        | None -> None)

let pp fmt v = Format.pp_print_string fmt (to_string v)
