module Xml = Cftcg_xml.Xml

exception Load_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Load_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let fstr f = Printf.sprintf "%h" f

let floats_attr a = String.concat " " (List.map fstr (Array.to_list a))

let relop_name = function
  | Graph.R_eq -> "eq"
  | Graph.R_ne -> "ne"
  | Graph.R_lt -> "lt"
  | Graph.R_le -> "le"
  | Graph.R_gt -> "gt"
  | Graph.R_ge -> "ge"

let logic_name = function
  | Graph.L_and -> "and"
  | Graph.L_or -> "or"
  | Graph.L_nand -> "nand"
  | Graph.L_nor -> "nor"
  | Graph.L_xor -> "xor"
  | Graph.L_not -> "not"

let round_name = function
  | Graph.R_floor -> "floor"
  | Graph.R_ceil -> "ceil"
  | Graph.R_round -> "round"
  | Graph.R_fix -> "fix"

let math_name = function
  | Graph.F_exp -> "exp"
  | Graph.F_log -> "log"
  | Graph.F_log10 -> "log10"
  | Graph.F_sqrt -> "sqrt"
  | Graph.F_square -> "square"
  | Graph.F_reciprocal -> "reciprocal"
  | Graph.F_sin -> "sin"
  | Graph.F_cos -> "cos"

let edge_name = function
  | Graph.E_rising -> "rising"
  | Graph.E_falling -> "falling"
  | Graph.E_either -> "either"

let action_to_xml tag action =
  let target, expr =
    match action with
    | Chart.Set_local (i, e) -> (Printf.sprintf "local:%d" i, e)
    | Chart.Set_out (i, e) -> (Printf.sprintf "out:%d" i, e)
  in
  Xml.Element (tag, [ ("target", target); ("expr", Chart.expr_to_string expr) ], [])

let chart_to_xml (ch : Chart.t) =
  let ports tag arr =
    Array.to_list arr
    |> List.map (fun (name, ty) -> Xml.Element (tag, [ ("name", name); ("dtype", Dtype.name ty) ], []))
  in
  let locals =
    Array.to_list ch.locals
    |> List.map (fun (name, ty, init) ->
           Xml.Element ("Local", [ ("name", name); ("dtype", Dtype.name ty); ("init", fstr init) ], []))
  in
  let rec state_to_xml (st : Chart.state) =
    let transitions =
      List.map
        (fun (tr : Chart.transition) ->
          Xml.Element
            ( "Transition",
              [ ("dst", string_of_int tr.dst); ("guard", Chart.expr_to_string tr.guard) ],
              List.map (action_to_xml "Action") tr.actions ))
        st.outgoing
    in
    let attrs =
      if Array.length st.children = 0 then [ ("name", st.state_name) ]
      else if st.parallel then [ ("name", st.state_name); ("parallel", "1") ]
      else [ ("name", st.state_name); ("init", string_of_int st.init_child) ]
    in
    Xml.Element
      ( "State",
        attrs,
        List.map (action_to_xml "Entry") st.entry
        @ List.map (action_to_xml "During") st.during
        @ List.map (action_to_xml "Exit") st.exit_actions
        @ transitions
        @ List.map state_to_xml (Array.to_list st.children) )
  in
  Xml.Element
    ( "Chart",
      [ ("name", ch.chart_name); ("init", string_of_int ch.init_state) ],
      ports "Input" ch.inputs @ ports "Output" ch.outputs @ locals
      @ List.map state_to_xml (Array.to_list ch.states) )

let rec kind_attrs_children kind =
  match kind with
  | Graph.Inport { port_index; port_dtype } ->
    ([ ("index", string_of_int port_index); ("dtype", Dtype.name port_dtype) ], [])
  | Graph.Outport { port_index } -> ([ ("index", string_of_int port_index) ], [])
  | Graph.Constant v -> ([ ("value", Value.to_string v) ], [])
  | Graph.Ground ty -> ([ ("dtype", Dtype.name ty) ], [])
  | Graph.Terminator -> ([], [])
  | Graph.Sum signs -> ([ ("signs", signs) ], [])
  | Graph.Product ops -> ([ ("ops", ops) ], [])
  | Graph.Gain g -> ([ ("gain", fstr g) ], [])
  | Graph.Bias b -> ([ ("bias", fstr b) ], [])
  | Graph.Abs | Graph.Unary_minus | Graph.Sign_block -> ([], [])
  | Graph.Math_func f -> ([ ("func", math_name f) ], [])
  | Graph.Rounding m -> ([ ("mode", round_name m) ], [])
  | Graph.Min_max (op, n) ->
    ([ ("op", match op with Graph.MM_min -> "min" | Graph.MM_max -> "max"); ("arity", string_of_int n) ], [])
  | Graph.Saturation { sat_lower; sat_upper } ->
    ([ ("lower", fstr sat_lower); ("upper", fstr sat_upper) ], [])
  | Graph.Dead_zone { dz_lower; dz_upper } ->
    ([ ("lower", fstr dz_lower); ("upper", fstr dz_upper) ], [])
  | Graph.Relay { on_point; off_point; on_value; off_value } ->
    ( [ ("on_point", fstr on_point); ("off_point", fstr off_point); ("on_value", fstr on_value);
        ("off_value", fstr off_value) ],
      [] )
  | Graph.Quantizer q -> ([ ("interval", fstr q) ], [])
  | Graph.Rate_limiter { rising; falling } ->
    ([ ("rising", fstr rising); ("falling", fstr falling) ], [])
  | Graph.Logic (op, n) -> ([ ("op", logic_name op); ("arity", string_of_int n) ], [])
  | Graph.Relational op -> ([ ("op", relop_name op) ], [])
  | Graph.Compare_to_constant (op, c) -> ([ ("op", relop_name op); ("const", fstr c) ], [])
  | Graph.Compare_to_zero op -> ([ ("op", relop_name op) ], [])
  | Graph.Switch crit ->
    let c =
      match crit with
      | Graph.Ge_threshold v -> [ ("criteria", "ge"); ("threshold", fstr v) ]
      | Graph.Gt_threshold v -> [ ("criteria", "gt"); ("threshold", fstr v) ]
      | Graph.Ne_zero -> [ ("criteria", "ne_zero") ]
    in
    (c, [])
  | Graph.Multiport_switch n -> ([ ("arity", string_of_int n) ], [])
  | Graph.Merge n -> ([ ("arity", string_of_int n) ], [])
  | Graph.If_block n -> ([ ("conditions", string_of_int n) ], [])
  | Graph.Unit_delay init -> ([ ("init", fstr init) ], [])
  | Graph.Delay { delay_length; delay_init } ->
    ([ ("length", string_of_int delay_length); ("init", fstr delay_init) ], [])
  | Graph.Memory_block init -> ([ ("init", fstr init) ], [])
  | Graph.Discrete_integrator { int_gain; int_init; limits } ->
    let base = [ ("gain", fstr int_gain); ("init", fstr int_init) ] in
    let lims =
      match limits with
      | None -> []
      | Some { Graph.int_lower; int_upper } ->
        [ ("lower", fstr int_lower); ("upper", fstr int_upper) ]
    in
    (base @ lims, [])
  | Graph.Discrete_filter { filt_coeff; filt_init } ->
    ([ ("coeff", fstr filt_coeff); ("init", fstr filt_init) ], [])
  | Graph.Counter { count_init; count_max; count_wrap } ->
    ( [ ("init", string_of_int count_init); ("max", string_of_int count_max);
        ("wrap", if count_wrap then "1" else "0") ],
      [] )
  | Graph.Edge_detect k -> ([ ("edge", edge_name k) ], [])
  | Graph.Lookup_1d { lut_xs; lut_ys } ->
    ([ ("xs", floats_attr lut_xs); ("ys", floats_attr lut_ys) ], [])
  | Graph.Data_type_conversion ty -> ([ ("dtype", Dtype.name ty) ], [])
  | Graph.Assertion msg -> ([ ("message", msg) ], [])
  | Graph.Chart_block ch -> ([], [ chart_to_xml ch ])
  | Graph.Subsystem { sub; activation } ->
    let act =
      match activation with
      | Graph.Always -> []
      | Graph.Enabled -> [ ("activation", "enabled") ]
      | Graph.Triggered k -> [ ("activation", "triggered"); ("edge", edge_name k) ]
    in
    (act, [ to_xml sub ])

and block_to_xml (b : Graph.block) =
  let attrs, children = kind_attrs_children b.kind in
  Xml.Element
    ( "Block",
      [ ("id", string_of_int b.bid); ("type", Graph.kind_name b.kind); ("name", b.block_name) ]
      @ attrs,
      children )

and to_xml (m : Graph.t) =
  let lines =
    Array.to_list m.lines
    |> List.map (fun (l : Graph.line) ->
           Xml.Element
             ( "Line",
               [ ("src", Printf.sprintf "%d:%d" l.src_block l.src_port);
                 ("dst", Printf.sprintf "%d:%d" l.dst_block l.dst_port) ],
               [] ))
  in
  Xml.Element
    ( "Model",
      [ ("name", m.model_name) ],
      List.map block_to_xml (Array.to_list m.blocks) @ lines )

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let attr node name =
  match Xml.attr node name with
  | Some v -> v
  | None -> fail "missing attribute %S on <%s>" name (Xml.tag node)

let int_attr node name =
  match int_of_string_opt (attr node name) with
  | Some v -> v
  | None -> fail "attribute %S on <%s> is not an integer" name (Xml.tag node)

let float_attr node name =
  match float_of_string_opt (attr node name) with
  | Some v -> v
  | None -> fail "attribute %S on <%s> is not a number" name (Xml.tag node)

let dtype_attr node name =
  match Dtype.of_string (attr node name) with
  | Some ty -> ty
  | None -> fail "attribute %S on <%s> is not a dtype" name (Xml.tag node)

let floats_of_attr s =
  String.split_on_char ' ' s
  |> List.filter (fun x -> x <> "")
  |> List.map (fun x ->
         match float_of_string_opt x with
         | Some f -> f
         | None -> fail "bad float %S in list attribute" x)
  |> Array.of_list

let relop_of_name = function
  | "eq" -> Graph.R_eq
  | "ne" -> Graph.R_ne
  | "lt" -> Graph.R_lt
  | "le" -> Graph.R_le
  | "gt" -> Graph.R_gt
  | "ge" -> Graph.R_ge
  | s -> fail "unknown relational operator %S" s

let logic_of_name = function
  | "and" -> Graph.L_and
  | "or" -> Graph.L_or
  | "nand" -> Graph.L_nand
  | "nor" -> Graph.L_nor
  | "xor" -> Graph.L_xor
  | "not" -> Graph.L_not
  | s -> fail "unknown logic operator %S" s

let round_of_name = function
  | "floor" -> Graph.R_floor
  | "ceil" -> Graph.R_ceil
  | "round" -> Graph.R_round
  | "fix" -> Graph.R_fix
  | s -> fail "unknown rounding mode %S" s

let math_of_name = function
  | "exp" -> Graph.F_exp
  | "log" -> Graph.F_log
  | "log10" -> Graph.F_log10
  | "sqrt" -> Graph.F_sqrt
  | "square" -> Graph.F_square
  | "reciprocal" -> Graph.F_reciprocal
  | "sin" -> Graph.F_sin
  | "cos" -> Graph.F_cos
  | s -> fail "unknown math function %S" s

let edge_of_name = function
  | "rising" -> Graph.E_rising
  | "falling" -> Graph.E_falling
  | "either" -> Graph.E_either
  | s -> fail "unknown edge kind %S" s

let expr_of_attr node name =
  match Chart.expr_of_string (attr node name) with
  | Ok e -> e
  | Error msg -> fail "bad expression in %S on <%s>: %s" name (Xml.tag node) msg

let action_of_xml node =
  let target = attr node "target" in
  let expr = expr_of_attr node "expr" in
  match String.split_on_char ':' target with
  | [ "local"; i ] -> Chart.Set_local (int_of_string i, expr)
  | [ "out"; i ] -> Chart.Set_out (int_of_string i, expr)
  | _ -> fail "bad action target %S" target

let chart_of_xml node =
  let ports tag =
    Xml.find_all node tag
    |> List.map (fun p -> (attr p "name", dtype_attr p "dtype"))
    |> Array.of_list
  in
  let locals =
    Xml.find_all node "Local"
    |> List.map (fun p -> (attr p "name", dtype_attr p "dtype", float_attr p "init"))
    |> Array.of_list
  in
  let rec state_of_xml st =
    let transitions =
      Xml.find_all st "Transition"
      |> List.map (fun tr ->
             {
               Chart.guard = expr_of_attr tr "guard";
               actions = List.map action_of_xml (Xml.find_all tr "Action");
               dst = int_attr tr "dst";
             })
    in
    let children = Array.of_list (List.map state_of_xml (Xml.find_all st "State")) in
    {
      Chart.state_name = attr st "name";
      entry = List.map action_of_xml (Xml.find_all st "Entry");
      during = List.map action_of_xml (Xml.find_all st "During");
      exit_actions = List.map action_of_xml (Xml.find_all st "Exit");
      outgoing = transitions;
      children;
      init_child = (match Xml.attr st "init" with Some v -> int_of_string v | None -> 0);
      parallel = (match Xml.attr st "parallel" with Some "1" -> true | _ -> false);
    }
  in
  {
    Chart.chart_name = attr node "name";
    inputs = ports "Input";
    outputs = ports "Output";
    locals;
    states = Array.of_list (List.map state_of_xml (Xml.find_all node "State"));
    init_state = int_attr node "init";
  }

let rec kind_of_xml node =
  let ty = attr node "type" in
  match ty with
  | "Inport" -> Graph.Inport { port_index = int_attr node "index"; port_dtype = dtype_attr node "dtype" }
  | "Outport" -> Graph.Outport { port_index = int_attr node "index" }
  | "Constant" -> (
    match Value.of_string (attr node "value") with
    | Some v -> Graph.Constant v
    | None -> fail "bad constant value %S" (attr node "value"))
  | "Ground" -> Graph.Ground (dtype_attr node "dtype")
  | "Terminator" -> Graph.Terminator
  | "Sum" -> Graph.Sum (attr node "signs")
  | "Product" -> Graph.Product (attr node "ops")
  | "Gain" -> Graph.Gain (float_attr node "gain")
  | "Bias" -> Graph.Bias (float_attr node "bias")
  | "Abs" -> Graph.Abs
  | "UnaryMinus" -> Graph.Unary_minus
  | "Sign" -> Graph.Sign_block
  | "MathFunction" -> Graph.Math_func (math_of_name (attr node "func"))
  | "Rounding" -> Graph.Rounding (round_of_name (attr node "mode"))
  | "MinMax" ->
    let op = match attr node "op" with "min" -> Graph.MM_min | "max" -> Graph.MM_max | s -> fail "bad MinMax op %S" s in
    Graph.Min_max (op, int_attr node "arity")
  | "Saturation" -> Graph.Saturation { sat_lower = float_attr node "lower"; sat_upper = float_attr node "upper" }
  | "DeadZone" -> Graph.Dead_zone { dz_lower = float_attr node "lower"; dz_upper = float_attr node "upper" }
  | "Relay" ->
    Graph.Relay
      {
        on_point = float_attr node "on_point";
        off_point = float_attr node "off_point";
        on_value = float_attr node "on_value";
        off_value = float_attr node "off_value";
      }
  | "Quantizer" -> Graph.Quantizer (float_attr node "interval")
  | "RateLimiter" -> Graph.Rate_limiter { rising = float_attr node "rising"; falling = float_attr node "falling" }
  | "Logic" -> Graph.Logic (logic_of_name (attr node "op"), int_attr node "arity")
  | "RelationalOperator" -> Graph.Relational (relop_of_name (attr node "op"))
  | "CompareToConstant" -> Graph.Compare_to_constant (relop_of_name (attr node "op"), float_attr node "const")
  | "CompareToZero" -> Graph.Compare_to_zero (relop_of_name (attr node "op"))
  | "Switch" -> (
    match attr node "criteria" with
    | "ge" -> Graph.Switch (Graph.Ge_threshold (float_attr node "threshold"))
    | "gt" -> Graph.Switch (Graph.Gt_threshold (float_attr node "threshold"))
    | "ne_zero" -> Graph.Switch Graph.Ne_zero
    | s -> fail "bad switch criteria %S" s)
  | "MultiportSwitch" -> Graph.Multiport_switch (int_attr node "arity")
  | "Merge" -> Graph.Merge (int_attr node "arity")
  | "If" -> Graph.If_block (int_attr node "conditions")
  | "UnitDelay" -> Graph.Unit_delay (float_attr node "init")
  | "Delay" -> Graph.Delay { delay_length = int_attr node "length"; delay_init = float_attr node "init" }
  | "Memory" -> Graph.Memory_block (float_attr node "init")
  | "DiscreteIntegrator" ->
    let limits =
      match (Xml.attr node "lower", Xml.attr node "upper") with
      | Some _, Some _ ->
        Some { Graph.int_lower = float_attr node "lower"; int_upper = float_attr node "upper" }
      | _ -> None
    in
    Graph.Discrete_integrator { int_gain = float_attr node "gain"; int_init = float_attr node "init"; limits }
  | "DiscreteFilter" -> Graph.Discrete_filter { filt_coeff = float_attr node "coeff"; filt_init = float_attr node "init" }
  | "Counter" ->
    Graph.Counter
      { count_init = int_attr node "init"; count_max = int_attr node "max"; count_wrap = int_attr node "wrap" <> 0 }
  | "EdgeDetect" -> Graph.Edge_detect (edge_of_name (attr node "edge"))
  | "Lookup1D" -> Graph.Lookup_1d { lut_xs = floats_of_attr (attr node "xs"); lut_ys = floats_of_attr (attr node "ys") }
  | "DataTypeConversion" -> Graph.Data_type_conversion (dtype_attr node "dtype")
  | "Assertion" -> Graph.Assertion (attr node "message")
  | "Chart" -> (
    match Xml.find_first node "Chart" with
    | Some ch -> Graph.Chart_block (chart_of_xml ch)
    | None -> fail "Chart block without <Chart> child")
  | "SubSystem" -> (
    match Xml.find_first node "Model" with
    | Some sub ->
      let activation =
        match Xml.attr node "activation" with
        | None -> Graph.Always
        | Some "enabled" -> Graph.Enabled
        | Some "triggered" -> Graph.Triggered (edge_of_name (attr node "edge"))
        | Some s -> fail "bad activation %S" s
      in
      Graph.Subsystem { sub = of_xml sub; activation }
    | None -> fail "SubSystem block without <Model> child")
  | ty -> fail "unknown block type %S" ty

and endpoint_of_attr node name =
  match String.split_on_char ':' (attr node name) with
  | [ b; p ] -> (
    match (int_of_string_opt b, int_of_string_opt p) with
    | Some b, Some p -> (b, p)
    | _ -> fail "bad endpoint %S" (attr node name))
  | _ -> fail "bad endpoint %S" (attr node name)

and of_xml node =
  if Xml.tag node <> "Model" then fail "expected <Model>, got <%s>" (Xml.tag node);
  let blocks =
    Xml.find_all node "Block"
    |> List.map (fun b ->
           { Graph.bid = int_attr b "id"; block_name = attr b "name"; kind = kind_of_xml b })
    |> List.sort (fun a b -> compare a.Graph.bid b.Graph.bid)
    |> Array.of_list
  in
  let lines =
    Xml.find_all node "Line"
    |> List.map (fun l ->
           let src_block, src_port = endpoint_of_attr l "src" in
           let dst_block, dst_port = endpoint_of_attr l "dst" in
           { Graph.src_block; src_port; dst_block; dst_port })
    |> Array.of_list
  in
  { Graph.model_name = attr node "name"; blocks; lines }

(* ------------------------------------------------------------------ *)
(* Convenience wrappers                                                *)
(* ------------------------------------------------------------------ *)

let save_string m = Xml.to_string (to_xml m)

let load_string s =
  let node =
    try Xml.parse_string s with
    | Xml.Parse_error { line; message } -> fail "XML parse error at line %d: %s" line message
  in
  let m = of_xml node in
  match Graph.validate m with
  | Ok () -> m
  | Error msg -> fail "invalid model: %s" msg

let save_file m path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (save_string m))

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> load_string (really_input_string ic (in_channel_length ic)))
