type signal = {
  sig_block : int;
  sig_port : int;
}

type t = {
  bname : string;
  mutable rev_blocks : Graph.block list;
  mutable rev_lines : Graph.line list;
  mutable nblocks : int;
  mutable next_inport : int;
  mutable next_outport : int;
  mutable finished : bool;
}

let create name =
  {
    bname = name;
    rev_blocks = [];
    rev_lines = [];
    nblocks = 0;
    next_inport = 1;
    next_outport = 1;
    finished = false;
  }

let add t ?name kind inputs =
  if t.finished then failwith "Build.add: builder already finished";
  let nin, nout = Graph.arity kind in
  if List.length inputs <> nin then
    failwith
      (Printf.sprintf "Build.add: %s expects %d inputs, got %d" (Graph.kind_name kind) nin
         (List.length inputs));
  let bid = t.nblocks in
  let block_name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s%d" (Graph.kind_name kind) bid
  in
  t.nblocks <- bid + 1;
  t.rev_blocks <- { Graph.bid; block_name; kind } :: t.rev_blocks;
  List.iteri
    (fun dst_port s ->
      t.rev_lines <-
        { Graph.src_block = s.sig_block; src_port = s.sig_port; dst_block = bid; dst_port }
        :: t.rev_lines)
    inputs;
  Array.init nout (fun p -> { sig_block = bid; sig_port = p })

let single outs =
  match Array.length outs with
  | 1 -> outs.(0)
  | _ -> assert false

let finish t =
  t.finished <- true;
  let m =
    {
      Graph.model_name = t.bname;
      blocks = Array.of_list (List.rev t.rev_blocks);
      lines = Array.of_list (List.rev t.rev_lines);
    }
  in
  match Graph.validate m with
  | Ok () -> m
  | Error msg -> failwith ("Build.finish: " ^ msg)

(* Sources and sinks *)

let inport t name dtype =
  let idx = t.next_inport in
  t.next_inport <- idx + 1;
  single (add t ~name (Graph.Inport { port_index = idx; port_dtype = dtype }) [])

let const t ?name v = single (add t ?name (Graph.Constant v) [])
let const_f t ?name f = const t ?name (Value.of_float Dtype.Float64 f)
let const_i t ?name ty n = const t ?name (Value.of_int ty n)
let ground t dtype = single (add t (Graph.Ground dtype) [])

let outport t name s =
  let idx = t.next_outport in
  t.next_outport <- idx + 1;
  ignore (add t ~name (Graph.Outport { port_index = idx }) [ s ])

let terminator t s = ignore (add t Graph.Terminator [ s ])

let assertion t ?name msg s = ignore (add t ?name (Graph.Assertion msg) [ s ])

(* Math *)

let sum t ?name ?signs inputs =
  let signs =
    match signs with
    | Some s -> s
    | None -> String.make (List.length inputs) '+'
  in
  single (add t ?name (Graph.Sum signs) inputs)

let sub t ?name a b = sum t ?name ~signs:"+-" [ a; b ]

let product t ?name ?ops inputs =
  let ops =
    match ops with
    | Some s -> s
    | None -> String.make (List.length inputs) '*'
  in
  single (add t ?name (Graph.Product ops) inputs)

let gain t ?name g s = single (add t ?name (Graph.Gain g) [ s ])
let bias t ?name bv s = single (add t ?name (Graph.Bias bv) [ s ])
let abs_ t ?name s = single (add t ?name Graph.Abs [ s ])
let neg t ?name s = single (add t ?name Graph.Unary_minus [ s ])
let sign t ?name s = single (add t ?name Graph.Sign_block [ s ])
let math t ?name f s = single (add t ?name (Graph.Math_func f) [ s ])
let rounding t ?name mode s = single (add t ?name (Graph.Rounding mode) [ s ])
let min_ t ?name inputs = single (add t ?name (Graph.Min_max (Graph.MM_min, List.length inputs)) inputs)
let max_ t ?name inputs = single (add t ?name (Graph.Min_max (Graph.MM_max, List.length inputs)) inputs)

let saturation t ?name ~lower ~upper s =
  single (add t ?name (Graph.Saturation { sat_lower = lower; sat_upper = upper }) [ s ])

let dead_zone t ?name ~lower ~upper s =
  single (add t ?name (Graph.Dead_zone { dz_lower = lower; dz_upper = upper }) [ s ])

let relay t ?name ~on_point ~off_point ~on_value ~off_value s =
  single (add t ?name (Graph.Relay { on_point; off_point; on_value; off_value }) [ s ])

let quantizer t ?name q s = single (add t ?name (Graph.Quantizer q) [ s ])

let rate_limiter t ?name ~rising ~falling s =
  single (add t ?name (Graph.Rate_limiter { rising; falling }) [ s ])

(* Logic *)

let logic t ?name op inputs =
  single (add t ?name (Graph.Logic (op, List.length inputs)) inputs)

let and_ t ?name a b = logic t ?name Graph.L_and [ a; b ]
let or_ t ?name a b = logic t ?name Graph.L_or [ a; b ]
let xor_ t ?name a b = logic t ?name Graph.L_xor [ a; b ]
let not_ t ?name a = single (add t ?name (Graph.Logic (Graph.L_not, 1)) [ a ])
let relational t ?name op a b = single (add t ?name (Graph.Relational op) [ a; b ])
let compare_const t ?name op c s = single (add t ?name (Graph.Compare_to_constant (op, c)) [ s ])
let compare_zero t ?name op s = single (add t ?name (Graph.Compare_to_zero op) [ s ])

(* Routing *)

let switch t ?name ?(criteria = Graph.Gt_threshold 0.) data1 control data2 =
  single (add t ?name (Graph.Switch criteria) [ data1; control; data2 ])

let multiport_switch t ?name selector datas =
  single (add t ?name (Graph.Multiport_switch (List.length datas)) (selector :: datas))

let merge t ?name inputs = single (add t ?name (Graph.Merge (List.length inputs)) inputs)
let if_block t ?name conditions = add t ?name (Graph.If_block (List.length conditions)) conditions

(* Discrete *)

let unit_delay t ?name ?(init = 0.) s = single (add t ?name (Graph.Unit_delay init) [ s ])

let delay t ?name ?(init = 0.) n s =
  single (add t ?name (Graph.Delay { delay_length = n; delay_init = init }) [ s ])

let memory t ?name ?(init = 0.) s = single (add t ?name (Graph.Memory_block init) [ s ])

let integrator t ?name ?(gain = 1.) ?(init = 0.) ?limits s =
  single (add t ?name (Graph.Discrete_integrator { int_gain = gain; int_init = init; limits }) [ s ])

let filter t ?name ?(init = 0.) coeff s =
  single (add t ?name (Graph.Discrete_filter { filt_coeff = coeff; filt_init = init }) [ s ])

let counter t ?name ?(init = 0) ?(wrap = false) max_count s =
  single (add t ?name (Graph.Counter { count_init = init; count_max = max_count; count_wrap = wrap }) [ s ])

let edge t ?name kind s = single (add t ?name (Graph.Edge_detect kind) [ s ])

let lookup t ?name ~xs ~ys s =
  single (add t ?name (Graph.Lookup_1d { lut_xs = xs; lut_ys = ys }) [ s ])

let convert t ?name ty s = single (add t ?name (Graph.Data_type_conversion ty) [ s ])

(* Composite *)

let chart t ?name ch inputs = add t ?name (Graph.Chart_block ch) inputs

let subsystem t ?name ?(activation = Graph.Always) sub inputs =
  add t ?name (Graph.Subsystem { sub; activation }) inputs
