(** SLX-dialect model files.

    Simulink stores models as zipped XML; the paper's tool loads them
    with Unzip + TinyXML. Our dialect keeps the same information —
    blocks with parameters, lines between ports, nested subsystems,
    charts — as plain (unzipped) XML handled by {!Cftcg_xml.Xml}.

    A [Line] endpoint is written as ["<block id>:<port index>"].
    Chart guard/action expressions use {!Chart.expr_to_string}
    s-expressions. *)

exception Load_error of string

val to_xml : Graph.t -> Cftcg_xml.Xml.node
val of_xml : Cftcg_xml.Xml.node -> Graph.t
(** Raises {!Load_error} on schema violations; the result is
    additionally passed through {!Graph.validate}. *)

val save_string : Graph.t -> string
val load_string : string -> Graph.t
(** Raises {!Load_error} (wrapping parse errors too). *)

val save_file : Graph.t -> string -> unit
val load_file : string -> Graph.t
