type t =
  | Bool
  | Int8
  | UInt8
  | Int16
  | UInt16
  | Int32
  | UInt32
  | Float32
  | Float64

let size_bytes = function
  | Bool | Int8 | UInt8 -> 1
  | Int16 | UInt16 -> 2
  | Int32 | UInt32 | Float32 -> 4
  | Float64 -> 8

let name = function
  | Bool -> "boolean"
  | Int8 -> "int8"
  | UInt8 -> "uint8"
  | Int16 -> "int16"
  | UInt16 -> "uint16"
  | Int32 -> "int32"
  | UInt32 -> "uint32"
  | Float32 -> "single"
  | Float64 -> "double"

let of_string = function
  | "boolean" | "bool" -> Some Bool
  | "int8" -> Some Int8
  | "uint8" -> Some UInt8
  | "int16" -> Some Int16
  | "uint16" -> Some UInt16
  | "int32" -> Some Int32
  | "uint32" -> Some UInt32
  | "single" | "float32" -> Some Float32
  | "double" | "float64" -> Some Float64
  | _ -> None

let is_integer = function
  | Int8 | UInt8 | Int16 | UInt16 | Int32 | UInt32 -> true
  | Bool | Float32 | Float64 -> false

let is_float = function
  | Float32 | Float64 -> true
  | Bool | Int8 | UInt8 | Int16 | UInt16 | Int32 | UInt32 -> false

let is_signed = function
  | Int8 | Int16 | Int32 | Float32 | Float64 -> true
  | Bool | UInt8 | UInt16 | UInt32 -> false

let min_int_value = function
  | Int8 -> -128
  | Int16 -> -32768
  | Int32 -> -2147483648
  | UInt8 | UInt16 | UInt32 -> 0
  | Bool | Float32 | Float64 -> invalid_arg "Dtype.min_int_value: not an integer type"

let max_int_value = function
  | Int8 -> 127
  | UInt8 -> 255
  | Int16 -> 32767
  | UInt16 -> 65535
  | Int32 -> 2147483647
  | UInt32 -> 4294967295
  | Bool | Float32 | Float64 -> invalid_arg "Dtype.max_int_value: not an integer type"

let all = [ Bool; Int8; UInt8; Int16; UInt16; Int32; UInt32; Float32; Float64 ]

let pp fmt t = Format.pp_print_string fmt (name t)

let equal (a : t) (b : t) = a = b

let rank = function
  | Bool -> 0
  | Int8 | UInt8 -> 1
  | Int16 | UInt16 -> 2
  | Int32 | UInt32 -> 3
  | Float32 -> 4
  | Float64 -> 5

let promote a b =
  match (a, b) with
  | Float64, _ | _, Float64 -> Float64
  | Float32, _ | _, Float32 -> Float32
  | a, b ->
    let wider = if rank a >= rank b then a else b in
    let signed = is_signed a || is_signed b in
    (match (wider, signed) with
    | Bool, _ -> Int8 (* boolean arithmetic promotes to a small integer *)
    | (Int8 | UInt8), true -> Int8
    | (Int8 | UInt8), false -> UInt8
    | (Int16 | UInt16), true -> Int16
    | (Int16 | UInt16), false -> UInt16
    | (Int32 | UInt32), true -> Int32
    | (Int32 | UInt32), false -> UInt32
    | (Float32 | Float64), _ -> assert false)
