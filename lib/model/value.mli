(** Runtime values with C-generated-code semantics.

    The compiled fuzz program must behave like the C code Simulink
    emits: integer arithmetic wraps modulo the storage width,
    float-to-integer casts saturate (Simulink's "saturate on integer
    overflow" guard that its code generator inserts around casts),
    division by zero yields zero (the defensive pattern embedded
    targets use), and [Float32] values are rounded to single
    precision after every operation. *)

type t =
  | VBool of bool
  | VInt of Dtype.t * int  (** invariant: within the dtype's range *)
  | VFloat of Dtype.t * float
      (** dtype is [Float32] or [Float64]; [Float32] payloads are
          rounded to single precision *)

val dtype : t -> Dtype.t

val zero : Dtype.t -> t
(** Zero (or [false]) of the given type. *)

val of_int : Dtype.t -> int -> t
(** Wraps the integer into the dtype's range (two's complement).
    For float dtypes, converts exactly. For [Bool], nonzero is
    [true]. *)

val of_float : Dtype.t -> float -> t
(** For integer dtypes: truncates toward zero and saturates at the
    range bounds; NaN maps to zero. For [Bool], nonzero is [true]. *)

val of_bool : bool -> t

val to_float : t -> float
(** Numeric reading; [true] is 1.0. *)

val to_int : t -> int
(** Numeric reading, truncating floats toward zero (saturating at
    [Int32] bounds); [true] is 1. *)

val is_true : t -> bool
(** C truthiness: nonzero. *)

val cast : Dtype.t -> t -> t
(** Conversion following the rules above (Data Type Conversion
    block). *)

(** {1 Arithmetic}

    All binary operations are computed in [ty] and wrapped/rounded
    into it, mirroring code generated with that output type. *)

val add : Dtype.t -> t -> t -> t
val sub : Dtype.t -> t -> t -> t
val mul : Dtype.t -> t -> t -> t

val div : Dtype.t -> t -> t -> t
(** Integer division truncates toward zero; division by zero yields
    zero (both integer and float paths). *)

val rem : Dtype.t -> t -> t -> t
(** Remainder with the sign of the dividend; zero divisor yields
    zero. *)

val neg : Dtype.t -> t -> t
val abs : Dtype.t -> t -> t
val min : Dtype.t -> t -> t -> t
val max : Dtype.t -> t -> t -> t

(** {1 Comparison} *)

val compare_num : t -> t -> int
(** Numeric three-way comparison (values read as floats). *)

val equal : t -> t -> bool
(** Structural equality after numeric normalization within the same
    dtype; values of different dtypes are never equal. *)

(** {1 Binary codecs} *)

val decode : Dtype.t -> Bytes.t -> int -> t
(** Reads a little-endian value at the offset. Bool reads one byte
    (nonzero = true). *)

val encode : t -> Bytes.t -> int -> unit
(** Writes the little-endian representation at the offset. *)

val decode_float : Dtype.t -> Bytes.t -> int -> float
(** [to_float (decode ty b off)] without allocating the intermediate
    value — the raw-float execution backends' input fast path. *)

(** {1 Raw-float helpers}

    Used by the closure compiler, which runs programs over an
    unboxed float store while preserving these exact semantics. *)

val wrap : Dtype.t -> int -> int
(** Two's-complement wrap into an integer dtype's range. *)

val saturating_int_of_float : Dtype.t -> float -> int
(** Truncate toward zero, saturating at the dtype's bounds; NaN maps
    to 0. *)

val normalize_float : Dtype.t -> float -> float
(** Rounds to single precision for [Float32]; identity for
    [Float64]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Compact literal, e.g. ["int32:42"], ["double:1.5"],
    ["boolean:1"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}. *)
