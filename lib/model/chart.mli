(** Stateflow-style charts.

    Charts are the stateful control-logic blocks of the benchmark
    models (paper Figure 1's PV-panel state logic, the TCP handshake,
    the CPUTask queue, ...). A chart owns named input/output ports,
    typed local variables, and a hierarchy of states with
    priority-ordered outgoing transitions: exclusive (OR)
    decomposition with nested children, or parallel (AND)
    decomposition whose regions all run while their parent is active.
    This is the Stateflow subset the paper's instrumentation mode (d)
    targets: every transition guard is a conditional branch in
    generated code.

    Semantics of one step, from the top level down: evaluate the
    active state's outgoing transitions in order; the first one whose
    guard is true runs the exit actions of every active descendant
    (innermost first) and of the state itself, then the transition
    actions, then enters the destination (entry actions, descending
    through [init_child] for composites, resetting the level timers).
    If no guard fires, the state's during actions run, its timer
    advances, and control descends into the active child. Outputs
    persist between steps. All expression arithmetic is carried out
    in double precision and cast to the target's dtype on
    assignment.

    [State_time] in a guard or action refers to the timer of the
    hierarchy level it is written at. *)

type binop =
  | C_add
  | C_sub
  | C_mul
  | C_div
  | C_mod
  | C_min
  | C_max
  | C_eq
  | C_ne
  | C_lt
  | C_le
  | C_gt
  | C_ge
  | C_and  (** logical, on truthiness *)
  | C_or

type unop =
  | C_neg
  | C_not
  | C_abs

type expr =
  | In of int  (** chart input port *)
  | Local of int  (** chart local variable *)
  | Out of int  (** current value of a chart output *)
  | State_time  (** steps spent in the active state since entry *)
  | Const of float
  | Bin of binop * expr * expr
  | Un of unop * expr

type action =
  | Set_local of int * expr
  | Set_out of int * expr

type transition = {
  guard : expr;
  actions : action list;
  dst : int;  (** destination state index *)
}

type state = {
  state_name : string;
  entry : action list;
  during : action list;
  exit_actions : action list;
      (** run when the state (or an ancestor) is left *)
  outgoing : transition list;
  children : state array;
      (** substates; [[||]] for a leaf. When a composite state is
          active, its own outgoing transitions are evaluated first
          (outer-transition priority, as in Stateflow); if none
          fires, its during actions run and control descends into the
          children. *)
  init_child : int;  (** child entered when the composite is entered *)
  parallel : bool;
      (** decomposition of [children]: [false] = exclusive (OR
          states, one active child), [true] = parallel (AND states,
          all children active simultaneously; the children are
          regions and must have no transitions of their own). *)
}

type t = {
  chart_name : string;
  inputs : (string * Dtype.t) array;
  outputs : (string * Dtype.t) array;
  locals : (string * Dtype.t * float) array;
      (** name, dtype, initial value *)
  states : state array;
  init_state : int;
}

val validate : t -> (unit, string) result
(** Checks state/port/local indices are in range and the chart has at
    least one state. *)

val transition_count : t -> int
(** Total number of transitions at every level, i.e. guard
    decisions. *)

val state_count : t -> int
(** Total number of states at every level. *)

val max_depth : t -> int
(** Nesting depth: 1 for a flat chart. *)

val leaf :
  ?entry:action list -> ?during:action list -> ?exit_actions:action list ->
  ?outgoing:transition list -> string -> state
(** Leaf-state constructor. *)

val composite :
  ?entry:action list -> ?during:action list -> ?exit_actions:action list ->
  ?outgoing:transition list -> ?init_child:int -> string -> state list -> state
(** Exclusive (OR) composite-state constructor. *)

val parallel_composite :
  ?entry:action list -> ?during:action list -> ?exit_actions:action list ->
  ?outgoing:transition list -> string -> state list -> state
(** Parallel (AND) composite: every child region is active while the
    state is; regions carry no transitions themselves. *)

(** {1 Serialization}

    Expressions serialize to s-expression strings, e.g.
    ["(and (ge (in 0) 5) (lt (local 1) 10))"]. *)

val expr_to_string : expr -> string

val expr_of_string : string -> (expr, string) result

(** {1 Construction helpers} *)

val num : float -> expr
val in_ : int -> expr
val local : int -> expr
val out : int -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val not_ : expr -> expr
