(** Simulink numeric data types.

    These are the storage classes a model inport or signal can carry.
    The fuzz driver derives its field layout from the byte sizes of
    the top-level inport dtypes (paper §3.1.1). *)

type t =
  | Bool
  | Int8
  | UInt8
  | Int16
  | UInt16
  | Int32
  | UInt32
  | Float32
  | Float64

val size_bytes : t -> int
(** Storage size used by the fuzz driver's field layout. [Bool] is one
    byte, as in generated C code. *)

val name : t -> string
(** Simulink-style lowercase name, e.g. ["int32"], ["boolean"]. *)

val of_string : string -> t option
(** Inverse of {!name}; also accepts ["bool"] and ["single"]. *)

val is_integer : t -> bool
(** True for the six integer types (not [Bool], not floats). *)

val is_float : t -> bool

val is_signed : t -> bool
(** True for signed integers and floats. *)

val min_int_value : t -> int
(** Smallest representable value of an integer type (0 for unsigned).
    Raises [Invalid_argument] for [Bool] and floats. *)

val max_int_value : t -> int
(** Largest representable value of an integer type.
    Raises [Invalid_argument] for [Bool] and floats. *)

val all : t list
(** Every dtype, for enumeration in tests. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val promote : t -> t -> t
(** [promote a b] is the wider common type used for arithmetic between
    mixed operands, following Simulink's default promotion: any float
    operand promotes to the widest float; otherwise the wider integer
    wins, with signedness taken from either operand being signed. *)
