type logic_op =
  | L_and
  | L_or
  | L_nand
  | L_nor
  | L_xor
  | L_not

type relop =
  | R_eq
  | R_ne
  | R_lt
  | R_le
  | R_gt
  | R_ge

type switch_criteria =
  | Ge_threshold of float
  | Gt_threshold of float
  | Ne_zero

type round_mode =
  | R_floor
  | R_ceil
  | R_round
  | R_fix

type minmax_op =
  | MM_min
  | MM_max

type math_func =
  | F_exp
  | F_log
  | F_log10
  | F_sqrt
  | F_square
  | F_reciprocal
  | F_sin
  | F_cos

type edge_kind =
  | E_rising
  | E_falling
  | E_either

type integrator_limits = {
  int_lower : float;
  int_upper : float;
}

type activation =
  | Always
  | Enabled
  | Triggered of edge_kind

type kind =
  | Inport of { port_index : int; port_dtype : Dtype.t }
  | Outport of { port_index : int }
  | Constant of Value.t
  | Ground of Dtype.t
  | Terminator
  | Sum of string
  | Product of string
  | Gain of float
  | Bias of float
  | Abs
  | Unary_minus
  | Sign_block
  | Math_func of math_func
  | Rounding of round_mode
  | Min_max of minmax_op * int
  | Saturation of { sat_lower : float; sat_upper : float }
  | Dead_zone of { dz_lower : float; dz_upper : float }
  | Relay of { on_point : float; off_point : float; on_value : float; off_value : float }
  | Quantizer of float
  | Rate_limiter of { rising : float; falling : float }
  | Logic of logic_op * int
  | Relational of relop
  | Compare_to_constant of relop * float
  | Compare_to_zero of relop
  | Switch of switch_criteria
  | Multiport_switch of int
  | Merge of int
  | If_block of int
  | Unit_delay of float
  | Delay of { delay_length : int; delay_init : float }
  | Memory_block of float
  | Discrete_integrator of { int_gain : float; int_init : float; limits : integrator_limits option }
  | Discrete_filter of { filt_coeff : float; filt_init : float }
  | Counter of { count_init : int; count_max : int; count_wrap : bool }
  | Edge_detect of edge_kind
  | Lookup_1d of { lut_xs : float array; lut_ys : float array }
  | Data_type_conversion of Dtype.t
  | Assertion of string
  | Chart_block of Chart.t
  | Subsystem of { sub : t; activation : activation }

and block = {
  bid : int;
  block_name : string;
  kind : kind;
}

and line = {
  src_block : int;
  src_port : int;
  dst_block : int;
  dst_port : int;
}

and t = {
  model_name : string;
  blocks : block array;
  lines : line array;
}

let count_kind p m = Array.fold_left (fun acc b -> if p b.kind then acc + 1 else acc) 0 m.blocks

let arity kind =
  match kind with
  | Inport _ | Constant _ | Ground _ -> (0, 1)
  | Outport _ | Terminator -> (1, 0)
  | Sum signs -> (String.length signs, 1)
  | Product ops -> (String.length ops, 1)
  | Gain _ | Bias _ | Abs | Unary_minus | Sign_block | Math_func _ | Rounding _ -> (1, 1)
  | Min_max (_, n) -> (n, 1)
  | Saturation _ | Dead_zone _ | Relay _ | Quantizer _ | Rate_limiter _ -> (1, 1)
  | Logic (L_not, _) -> (1, 1)
  | Logic (_, n) -> (n, 1)
  | Relational _ -> (2, 1)
  | Compare_to_constant _ | Compare_to_zero _ -> (1, 1)
  | Switch _ -> (3, 1)
  | Multiport_switch n -> (n + 1, 1)
  | Merge n -> (n, 1)
  | If_block n -> (n, n + 1)
  | Unit_delay _ | Delay _ | Memory_block _ | Discrete_integrator _ | Discrete_filter _ -> (1, 1)
  | Counter _ -> (1, 1)
  | Edge_detect _ -> (1, 1)
  | Lookup_1d _ -> (1, 1)
  | Data_type_conversion _ -> (1, 1)
  | Assertion _ -> (1, 0)
  | Chart_block ch -> (Array.length ch.Chart.inputs, Array.length ch.Chart.outputs)
  | Subsystem { sub; activation } ->
    let nin = count_kind (function Inport _ -> true | _ -> false) sub in
    let nout = count_kind (function Outport _ -> true | _ -> false) sub in
    let extra = match activation with Always -> 0 | Enabled | Triggered _ -> 1 in
    (nin + extra, nout)

let kind_name = function
  | Inport _ -> "Inport"
  | Outport _ -> "Outport"
  | Constant _ -> "Constant"
  | Ground _ -> "Ground"
  | Terminator -> "Terminator"
  | Sum _ -> "Sum"
  | Product _ -> "Product"
  | Gain _ -> "Gain"
  | Bias _ -> "Bias"
  | Abs -> "Abs"
  | Unary_minus -> "UnaryMinus"
  | Sign_block -> "Sign"
  | Math_func _ -> "MathFunction"
  | Rounding _ -> "Rounding"
  | Min_max _ -> "MinMax"
  | Saturation _ -> "Saturation"
  | Dead_zone _ -> "DeadZone"
  | Relay _ -> "Relay"
  | Quantizer _ -> "Quantizer"
  | Rate_limiter _ -> "RateLimiter"
  | Logic _ -> "Logic"
  | Relational _ -> "RelationalOperator"
  | Compare_to_constant _ -> "CompareToConstant"
  | Compare_to_zero _ -> "CompareToZero"
  | Switch _ -> "Switch"
  | Multiport_switch _ -> "MultiportSwitch"
  | Merge _ -> "Merge"
  | If_block _ -> "If"
  | Unit_delay _ -> "UnitDelay"
  | Delay _ -> "Delay"
  | Memory_block _ -> "Memory"
  | Discrete_integrator _ -> "DiscreteIntegrator"
  | Discrete_filter _ -> "DiscreteFilter"
  | Counter _ -> "Counter"
  | Edge_detect _ -> "EdgeDetect"
  | Lookup_1d _ -> "Lookup1D"
  | Data_type_conversion _ -> "DataTypeConversion"
  | Assertion _ -> "Assertion"
  | Chart_block _ -> "Chart"
  | Subsystem _ -> "SubSystem"

let is_stateful = function
  | Unit_delay _ | Delay _ | Memory_block _ -> true
  | Inport _ | Outport _ | Constant _ | Ground _ | Terminator | Sum _ | Product _ | Gain _
  | Bias _ | Abs | Unary_minus | Sign_block | Math_func _ | Rounding _ | Min_max _
  | Saturation _ | Dead_zone _ | Relay _ | Quantizer _ | Rate_limiter _ | Logic _
  | Relational _ | Compare_to_constant _ | Compare_to_zero _ | Switch _
  | Multiport_switch _ | Merge _ | If_block _ | Discrete_integrator _ | Discrete_filter _
  | Counter _ | Edge_detect _ | Lookup_1d _ | Data_type_conversion _ | Assertion _
  | Chart_block _ | Subsystem _ -> false

let inports m =
  let found =
    Array.to_list m.blocks
    |> List.filter_map (fun b ->
           match b.kind with
           | Inport { port_index; port_dtype } -> Some (port_index, b.block_name, port_dtype)
           | _ -> None)
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  List.iteri
    (fun i (idx, name, _) ->
      if idx <> i + 1 then
        failwith
          (Printf.sprintf "model %s: inport %s has index %d, expected %d" m.model_name name idx
             (i + 1)))
    found;
  Array.of_list (List.map (fun (_, name, ty) -> (name, ty)) found)

let outports m =
  let found =
    Array.to_list m.blocks
    |> List.filter_map (fun b ->
           match b.kind with
           | Outport { port_index } -> Some (port_index, b.block_name)
           | _ -> None)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iteri
    (fun i (idx, name) ->
      if idx <> i + 1 then
        failwith
          (Printf.sprintf "model %s: outport %s has index %d, expected %d" m.model_name name idx
             (i + 1)))
    found;
  Array.of_list (List.map snd found)

let rec block_count m =
  Array.fold_left
    (fun acc b ->
      match b.kind with
      | Subsystem { sub; _ } -> acc + 1 + block_count sub
      | Chart_block ch -> acc + 1 + Chart.state_count ch
      | _ -> acc + 1)
    0 m.blocks

let rec validate m =
  let error fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let n = Array.length m.blocks in
  let rec first_error = function
    | [] -> Ok ()
    | f :: rest -> (
      match f () with
      | Error _ as e -> e
      | Ok () -> first_error rest)
  in
  let check_ids () =
    let bad = ref None in
    Array.iteri (fun i b -> if b.bid <> i && !bad = None then bad := Some (i, b.bid)) m.blocks;
    match !bad with
    | Some (i, bid) -> error "model %s: block at position %d has bid %d" m.model_name i bid
    | None -> Ok ()
  in
  let check_lines () =
    let rec go i =
      if i >= Array.length m.lines then Ok ()
      else begin
        let l = m.lines.(i) in
        if l.src_block < 0 || l.src_block >= n then
          error "model %s: line %d references missing source block %d" m.model_name i l.src_block
        else if l.dst_block < 0 || l.dst_block >= n then
          error "model %s: line %d references missing destination block %d" m.model_name i
            l.dst_block
        else begin
          let _, nout = arity m.blocks.(l.src_block).kind in
          let nin, _ = arity m.blocks.(l.dst_block).kind in
          if l.src_port < 0 || l.src_port >= nout then
            error "model %s: line %d source port %d out of range for %s" m.model_name i l.src_port
              m.blocks.(l.src_block).block_name
          else if l.dst_port < 0 || l.dst_port >= nin then
            error "model %s: line %d destination port %d out of range for %s" m.model_name i
              l.dst_port
              m.blocks.(l.dst_block).block_name
          else go (i + 1)
        end
      end
    in
    go 0
  in
  let check_inputs_driven () =
    let driven = Hashtbl.create 64 in
    let dup = ref None in
    Array.iter
      (fun l ->
        let key = (l.dst_block, l.dst_port) in
        if Hashtbl.mem driven key && !dup = None then dup := Some key;
        Hashtbl.replace driven key ())
      m.lines;
    match !dup with
    | Some (b, p) ->
      error "model %s: input port %d of %s driven by multiple lines" m.model_name p
        m.blocks.(b).block_name
    | None ->
      let missing = ref None in
      Array.iter
        (fun b ->
          let nin, _ = arity b.kind in
          for p = 0 to nin - 1 do
            if (not (Hashtbl.mem driven (b.bid, p))) && !missing = None then
              missing := Some (b.block_name, p)
          done)
        m.blocks;
      (match !missing with
      | Some (name, p) -> error "model %s: input port %d of %s is unconnected" m.model_name p name
      | None -> Ok ())
  in
  let check_ports () =
    match inports m with
    | exception Failure msg -> Error msg
    | _ -> (
      match outports m with
      | exception Failure msg -> Error msg
      | _ -> Ok ())
  in
  let check_children () =
    let rec go i =
      if i >= n then Ok ()
      else
        match m.blocks.(i).kind with
        | Subsystem { sub; _ } -> (
          match validate sub with
          | Error _ as e -> e
          | Ok () -> go (i + 1))
        | Chart_block ch -> (
          match Chart.validate ch with
          | Error _ as e -> e
          | Ok () -> go (i + 1))
        | _ -> go (i + 1)
    in
    go 0
  in
  let check_params () =
    let rec go i =
      if i >= n then Ok ()
      else begin
        let b = m.blocks.(i) in
        let bad msg = error "model %s: block %s: %s" m.model_name b.block_name msg in
        match b.kind with
        | Sum signs when signs = "" || String.exists (fun c -> c <> '+' && c <> '-') signs ->
          bad "Sum signs must be a non-empty string of '+'/'-'"
        | Product ops when ops = "" || String.exists (fun c -> c <> '*' && c <> '/') ops ->
          bad "Product ops must be a non-empty string of '*'/'/'"
        | Saturation { sat_lower; sat_upper } when sat_lower > sat_upper ->
          bad "Saturation lower bound exceeds upper bound"
        | Dead_zone { dz_lower; dz_upper } when dz_lower > dz_upper ->
          bad "DeadZone start exceeds end"
        | Multiport_switch k when k < 1 -> bad "MultiportSwitch needs at least one data input"
        | Merge k when k < 1 -> bad "Merge needs at least one input"
        | If_block k when k < 1 -> bad "If needs at least one condition"
        | Min_max (_, k) when k < 1 -> bad "MinMax needs at least one input"
        | Logic (op, k) when op <> L_not && k < 2 -> bad "Logic needs at least two inputs"
        | Delay { delay_length; _ } when delay_length < 1 -> bad "Delay length must be positive"
        | Lookup_1d { lut_xs; lut_ys }
          when Array.length lut_xs < 2
               || Array.length lut_xs <> Array.length lut_ys
               || not
                    (Array.for_all
                       (fun i -> lut_xs.(i) < lut_xs.(i + 1))
                       (Array.init (Array.length lut_xs - 1) (fun i -> i))) ->
          bad "Lookup1D needs >= 2 strictly increasing breakpoints with matching table size"
        | Counter { count_max; _ } when count_max < 1 -> bad "Counter max must be positive"
        | _ -> go (i + 1)
      end
    in
    go 0
  in
  first_error
    [ check_ids; check_lines; check_inputs_driven; check_ports; check_params; check_children ]

let find_block m name = Array.find_opt (fun b -> b.block_name = name) m.blocks
