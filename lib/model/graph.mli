(** Simulink-like block-diagram models.

    A model is a set of blocks connected by lines from output ports to
    input ports. Block kinds cover the "over fifty commonly used
    blocks" the paper's code generator templates (math, logic, signal
    routing, discrete-state, lookup, conditional subsystems, charts).
    Blocks are single-rate and scalar-signal; each model step consumes
    one value per top-level inport and produces one per outport. *)

type logic_op =
  | L_and
  | L_or
  | L_nand
  | L_nor
  | L_xor
  | L_not

type relop =
  | R_eq
  | R_ne
  | R_lt
  | R_le
  | R_gt
  | R_ge

type switch_criteria =
  | Ge_threshold of float  (** pass first input when [u2 >= t] *)
  | Gt_threshold of float
  | Ne_zero  (** pass first input when [u2 <> 0] *)

type round_mode =
  | R_floor
  | R_ceil
  | R_round
  | R_fix  (** toward zero *)

type minmax_op =
  | MM_min
  | MM_max

type math_func =
  | F_exp
  | F_log  (** natural log; non-positive input yields 0, embedded-safe *)
  | F_log10
  | F_sqrt  (** negative input yields 0 *)
  | F_square
  | F_reciprocal  (** zero input yields 0 *)
  | F_sin
  | F_cos

type edge_kind =
  | E_rising
  | E_falling
  | E_either

type integrator_limits = {
  int_lower : float;
  int_upper : float;
}

type activation =
  | Always
  | Enabled  (** extra first input: enable; outputs held while disabled *)
  | Triggered of edge_kind
      (** extra first input: trigger; body runs on matching edges only *)

type kind =
  | Inport of { port_index : int; port_dtype : Dtype.t }
  | Outport of { port_index : int }
  | Constant of Value.t
  | Ground of Dtype.t
  | Terminator
  | Sum of string  (** one '+'/'-' per input *)
  | Product of string  (** one '*'/'/' per input *)
  | Gain of float
  | Bias of float
  | Abs
  | Unary_minus
  | Sign_block
  | Math_func of math_func
  | Rounding of round_mode
  | Min_max of minmax_op * int  (** operator, arity *)
  | Saturation of { sat_lower : float; sat_upper : float }
  | Dead_zone of { dz_lower : float; dz_upper : float }
  | Relay of { on_point : float; off_point : float; on_value : float; off_value : float }
  | Quantizer of float  (** quantization interval *)
  | Rate_limiter of { rising : float; falling : float }
  | Logic of logic_op * int  (** operator, arity ([L_not] has arity 1) *)
  | Relational of relop
  | Compare_to_constant of relop * float
  | Compare_to_zero of relop
  | Switch of switch_criteria  (** inputs: data1, control, data2 *)
  | Multiport_switch of int
      (** n data inputs; input 0 is the 1-based selector, clamped *)
  | Merge of int
      (** passes the most recently updated input; with unconditional
          sources, the last one in input order *)
  | If_block of int
      (** n boolean condition inputs; n+1 boolean action outputs
          (priority if / elseif / else) *)
  | Unit_delay of float  (** initial value *)
  | Delay of { delay_length : int; delay_init : float }
  | Memory_block of float
  | Discrete_integrator of { int_gain : float; int_init : float; limits : integrator_limits option }
  | Discrete_filter of { filt_coeff : float; filt_init : float }
      (** y[k] = c*u[k] + (1-c)*y[k-1] *)
  | Counter of { count_init : int; count_max : int; count_wrap : bool }
      (** counts steps with a true input; saturates or wraps at max *)
  | Edge_detect of edge_kind
  | Lookup_1d of { lut_xs : float array; lut_ys : float array }
      (** linear interpolation, clipped at the table ends *)
  | Data_type_conversion of Dtype.t
  | Assertion of string
      (** Model Verification block: the input must be true every step;
          the string is the failure message. No outputs. *)
  | Chart_block of Chart.t
  | Subsystem of { sub : t; activation : activation }

and block = {
  bid : int;  (** index in [blocks]; unique within its model *)
  block_name : string;
  kind : kind;
}

and line = {
  src_block : int;
  src_port : int;  (** output port index on the source block *)
  dst_block : int;
  dst_port : int;  (** input port index on the destination block *)
}

and t = {
  model_name : string;
  blocks : block array;
  lines : line array;
}

val arity : kind -> int * int
(** [(inputs, outputs)] port counts for the kind. A subsystem's counts
    come from its inner inports/outports plus any activation port. *)

val kind_name : kind -> string
(** Simulink-flavoured kind name, e.g. ["Switch"], ["UnitDelay"]. *)

val is_stateful : kind -> bool
(** Blocks whose output at step k does not depend on their inputs at
    step k (delays, memories) break dependency cycles. *)

val inports : t -> (string * Dtype.t) array
(** Top-level inports in port-index order. Raises [Failure] if port
    indices are not 1..n. *)

val outports : t -> string array
(** Top-level outport names in port-index order. *)

val block_count : t -> int
(** Total number of blocks including those inside subsystems and one
    per chart state (matching how Simulink counts chart content). *)

val validate : t -> (unit, string) result
(** Structural checks: line endpoints exist and are within arity,
    every input port is driven exactly once, inport/outport indices
    are 1..n, subsystems and charts are recursively valid. *)

val find_block : t -> string -> block option
(** Lookup by name at the top level. *)
