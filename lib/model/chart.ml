type binop =
  | C_add
  | C_sub
  | C_mul
  | C_div
  | C_mod
  | C_min
  | C_max
  | C_eq
  | C_ne
  | C_lt
  | C_le
  | C_gt
  | C_ge
  | C_and
  | C_or

type unop =
  | C_neg
  | C_not
  | C_abs

type expr =
  | In of int
  | Local of int
  | Out of int
  | State_time
  | Const of float
  | Bin of binop * expr * expr
  | Un of unop * expr

type action =
  | Set_local of int * expr
  | Set_out of int * expr

type transition = {
  guard : expr;
  actions : action list;
  dst : int;
}

type state = {
  state_name : string;
  entry : action list;
  during : action list;
  exit_actions : action list;
  outgoing : transition list;
  children : state array;
  init_child : int;
  parallel : bool;
}

type t = {
  chart_name : string;
  inputs : (string * Dtype.t) array;
  outputs : (string * Dtype.t) array;
  locals : (string * Dtype.t * float) array;
  states : state array;
  init_state : int;
}

let validate ch =
  let nstates = Array.length ch.states in
  let nin = Array.length ch.inputs in
  let nout = Array.length ch.outputs in
  let nloc = Array.length ch.locals in
  let error fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check_expr = function
    | In i when i < 0 || i >= nin -> error "chart %s: input index %d out of range" ch.chart_name i
    | Local i when i < 0 || i >= nloc -> error "chart %s: local index %d out of range" ch.chart_name i
    | Out i when i < 0 || i >= nout -> error "chart %s: output index %d out of range" ch.chart_name i
    | In _ | Local _ | Out _ | State_time | Const _ -> Ok ()
    | Bin (_, a, b) -> (
      match check_expr a with
      | Error _ as e -> e
      | Ok () -> check_expr b)
    | Un (_, a) -> check_expr a
  in
  let check_action = function
    | Set_local (i, e) ->
      if i < 0 || i >= nloc then error "chart %s: local target %d out of range" ch.chart_name i
      else check_expr e
    | Set_out (i, e) ->
      if i < 0 || i >= nout then error "chart %s: output target %d out of range" ch.chart_name i
      else check_expr e
  in
  let rec check_all f = function
    | [] -> Ok ()
    | x :: rest -> (
      match f x with
      | Error _ as e -> e
      | Ok () -> check_all f rest)
  in
  let check_transition ~siblings tr =
    if tr.dst < 0 || tr.dst >= siblings then
      error "chart %s: transition destination %d out of range" ch.chart_name tr.dst
    else
      match check_expr tr.guard with
      | Error _ as e -> e
      | Ok () -> check_all check_action tr.actions
  in
  let rec check_state ~siblings st =
    match check_all check_action st.entry with
    | Error _ as e -> e
    | Ok () -> (
      match check_all check_action st.during with
      | Error _ as e -> e
      | Ok () -> (
        match check_all check_action st.exit_actions with
        | Error _ as e -> e
        | Ok () -> (
          match check_all (check_transition ~siblings) st.outgoing with
          | Error _ as e -> e
          | Ok () ->
            let nc = Array.length st.children in
            if nc = 0 then Ok ()
            else if st.parallel then begin
              if List.exists (fun c -> c.outgoing <> []) (Array.to_list st.children) then
                error "chart %s: state %s: parallel regions cannot have transitions"
                  ch.chart_name st.state_name
              else check_all (check_state ~siblings:nc) (Array.to_list st.children)
            end
            else if st.init_child < 0 || st.init_child >= nc then
              error "chart %s: state %s: initial child %d out of range" ch.chart_name
                st.state_name st.init_child
            else check_all (check_state ~siblings:nc) (Array.to_list st.children))))
  in
  if nstates = 0 then error "chart %s: no states" ch.chart_name
  else if ch.init_state < 0 || ch.init_state >= nstates then
    error "chart %s: initial state %d out of range" ch.chart_name ch.init_state
  else check_all (check_state ~siblings:nstates) (Array.to_list ch.states)

let rec state_transitions st =
  List.length st.outgoing + Array.fold_left (fun acc c -> acc + state_transitions c) 0 st.children

let transition_count ch = Array.fold_left (fun acc st -> acc + state_transitions st) 0 ch.states

let rec state_size st = 1 + Array.fold_left (fun acc c -> acc + state_size c) 0 st.children

let state_count ch = Array.fold_left (fun acc st -> acc + state_size st) 0 ch.states

let rec state_depth st =
  1 + Array.fold_left (fun acc c -> max acc (state_depth c)) 0 st.children

let max_depth ch = Array.fold_left (fun acc st -> max acc (state_depth st)) 1 ch.states

let leaf ?(entry = []) ?(during = []) ?(exit_actions = []) ?(outgoing = []) state_name =
  { state_name; entry; during; exit_actions; outgoing; children = [||]; init_child = 0;
    parallel = false }

let composite ?(entry = []) ?(during = []) ?(exit_actions = []) ?(outgoing = []) ?(init_child = 0)
    state_name children =
  { state_name; entry; during; exit_actions; outgoing; children = Array.of_list children;
    init_child; parallel = false }

let parallel_composite ?(entry = []) ?(during = []) ?(exit_actions = []) ?(outgoing = [])
    state_name children =
  { state_name; entry; during; exit_actions; outgoing; children = Array.of_list children;
    init_child = 0; parallel = true }

(* ------------------------------------------------------------------ *)
(* Serialization: s-expressions                                        *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | C_add -> "+"
  | C_sub -> "-"
  | C_mul -> "*"
  | C_div -> "/"
  | C_mod -> "mod"
  | C_min -> "min"
  | C_max -> "max"
  | C_eq -> "eq"
  | C_ne -> "ne"
  | C_lt -> "lt"
  | C_le -> "le"
  | C_gt -> "gt"
  | C_ge -> "ge"
  | C_and -> "and"
  | C_or -> "or"

let binop_of_name = function
  | "+" -> Some C_add
  | "-" -> Some C_sub
  | "*" -> Some C_mul
  | "/" -> Some C_div
  | "mod" -> Some C_mod
  | "min" -> Some C_min
  | "max" -> Some C_max
  | "eq" -> Some C_eq
  | "ne" -> Some C_ne
  | "lt" -> Some C_lt
  | "le" -> Some C_le
  | "gt" -> Some C_gt
  | "ge" -> Some C_ge
  | "and" -> Some C_and
  | "or" -> Some C_or
  | _ -> None

let unop_name = function
  | C_neg -> "neg"
  | C_not -> "not"
  | C_abs -> "abs"

let unop_of_name = function
  | "neg" -> Some C_neg
  | "not" -> Some C_not
  | "abs" -> Some C_abs
  | _ -> None

let rec expr_to_string = function
  | In i -> Printf.sprintf "(in %d)" i
  | Local i -> Printf.sprintf "(local %d)" i
  | Out i -> Printf.sprintf "(out %d)" i
  | State_time -> "(time)"
  | Const f -> Printf.sprintf "%h" f
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (binop_name op) (expr_to_string a) (expr_to_string b)
  | Un (op, a) -> Printf.sprintf "(%s %s)" (unop_name op) (expr_to_string a)

type token =
  | Lparen
  | Rparen
  | Atom of string

let tokenize s =
  let out = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    match s.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' ->
      out := Lparen :: !out;
      incr i
    | ')' ->
      out := Rparen :: !out;
      incr i
    | _ ->
      let start = !i in
      while !i < n && (match s.[!i] with ' ' | '\t' | '\n' | '\r' | '(' | ')' -> false | _ -> true) do
        incr i
      done;
      out := Atom (String.sub s start (!i - start)) :: !out
  done;
  List.rev !out

let expr_of_string s =
  let rec parse tokens =
    match tokens with
    | [] -> Error "unexpected end of expression"
    | Atom a :: rest -> (
      match float_of_string_opt a with
      | Some f -> Ok (Const f, rest)
      | None -> Error (Printf.sprintf "bad atom %S" a))
    | Rparen :: _ -> Error "unexpected ')'"
    | Lparen :: Atom head :: rest -> (
      match head with
      | "time" -> expect_rparen rest State_time
      | "in" | "local" | "out" -> (
        match rest with
        | Atom n :: rest' -> (
          match int_of_string_opt n with
          | Some i ->
            let node =
              match head with
              | "in" -> In i
              | "local" -> Local i
              | _ -> Out i
            in
            expect_rparen rest' node
          | None -> Error (Printf.sprintf "bad index %S" n))
        | _ -> Error (Printf.sprintf "(%s ...) needs an index" head))
      | head -> (
        match binop_of_name head with
        | Some op -> (
          match parse rest with
          | Error _ as e -> e
          | Ok (a, rest') -> (
            match parse rest' with
            | Error _ as e -> e
            | Ok (b, rest'') -> expect_rparen rest'' (Bin (op, a, b))))
        | None -> (
          match unop_of_name head with
          | Some op -> (
            match parse rest with
            | Error _ as e -> e
            | Ok (a, rest') -> expect_rparen rest' (Un (op, a)))
          | None -> Error (Printf.sprintf "unknown operator %S" head))))
    | Lparen :: _ -> Error "expected operator after '('"
  and expect_rparen tokens node =
    match tokens with
    | Rparen :: rest -> Ok (node, rest)
    | _ -> Error "expected ')'"
  in
  match parse (tokenize s) with
  | Ok (e, []) -> Ok e
  | Ok (_, _ :: _) -> Error "trailing tokens"
  | Error _ as e -> e

(* ------------------------------------------------------------------ *)
(* Construction helpers                                                *)
(* ------------------------------------------------------------------ *)

let num f = Const f
let in_ i = In i
let local i = Local i
let out i = Out i
let ( +: ) a b = Bin (C_add, a, b)
let ( -: ) a b = Bin (C_sub, a, b)
let ( *: ) a b = Bin (C_mul, a, b)
let ( /: ) a b = Bin (C_div, a, b)
let ( =: ) a b = Bin (C_eq, a, b)
let ( <>: ) a b = Bin (C_ne, a, b)
let ( <: ) a b = Bin (C_lt, a, b)
let ( <=: ) a b = Bin (C_le, a, b)
let ( >: ) a b = Bin (C_gt, a, b)
let ( >=: ) a b = Bin (C_ge, a, b)
let ( &&: ) a b = Bin (C_and, a, b)
let ( ||: ) a b = Bin (C_or, a, b)
let not_ a = Un (C_not, a)
