(** Constraint-driven test generation — the SLDV stand-in.

    Simulink Design Verifier turns each coverage objective into a
    constraint problem over a bounded unrolling of the model and
    solves it formally. This module reproduces that {e profile} with
    a search-based solver: each uncovered probe becomes a target, the
    model is unrolled to an increasing bound, and an
    alternating-variable search minimizes an
    approach-level + branch-distance fitness computed from the guard
    chain ({!Guards}) and the distance reports of the executing
    program. Like the real SLDV it excels at shallow combinational
    objectives, degrades as objectives need deeper iteration
    sequences, and gives up when the bound/budget is exhausted —
    the behaviour the paper observes on state-heavy models (§4).

    The substitution (search instead of SAT/SMT) is recorded in
    DESIGN.md; both are bounded constraint solvers over the same
    objectives, differing in completeness at equal budget. *)

open Cftcg_ir

type config = {
  seed : int64;
  unroll_bounds : int list;
      (** increasing loop-unrolling depths, e.g. [[1; 2; 4; 8; 16]] *)
  moves_per_target : int;  (** search moves per objective per bound *)
}

val default_config : config

type test_case = {
  data : Bytes.t;
  time : float;  (** seconds since campaign start *)
}

type result = {
  suite : test_case list;  (** chronological *)
  executions : int;
  targets_total : int;
  targets_solved : int;
  probes_covered : int;
}

val run :
  ?config:config -> ?initial_coverage:Bytes.t -> Ir.program -> time_budget:float -> result
(** Runs on a fully instrumented program ([Codegen.Full]).
    [initial_coverage] (a probe bitmap, nonzero = already covered)
    removes objectives another generator already hit — the hook the
    hybrid CFTCG+solver pipeline uses. *)
