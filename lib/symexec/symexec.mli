(** Constraint-driven test generation — the SLDV stand-in.

    Simulink Design Verifier turns each coverage objective into a
    constraint problem over a bounded unrolling of the model and
    solves it formally. This module reproduces that {e profile} with
    a search-based solver: each uncovered probe becomes a target, the
    model is unrolled to an increasing bound, and an
    alternating-variable search minimizes an
    approach-level + branch-distance fitness computed from the guard
    chain ({!Guards}) and the distance reports of the executing
    program. Like the real SLDV it excels at shallow combinational
    objectives, degrades as objectives need deeper iteration
    sequences, and gives up when the bound/budget is exhausted —
    the behaviour the paper observes on state-heavy models (§4).

    The substitution (search instead of SAT/SMT) is recorded in
    DESIGN.md; both are bounded constraint solvers over the same
    objectives, differing in completeness at equal budget. *)

open Cftcg_ir

type config = {
  seed : int64;
  unroll_bounds : int list;
      (** increasing loop-unrolling depths, e.g. [[1; 2; 4; 8; 16]] *)
  moves_per_target : int;  (** search moves per objective per bound *)
}

val default_config : config

type test_case = {
  data : Bytes.t;
  time : float;
      (** under {!Time_budget}: wall seconds since solver start; under
          {!Exec_budget}: the execution index on the virtual clock *)
}

type budget =
  | Time_budget of float  (** wall-clock seconds — paced on [gettimeofday] *)
  | Exec_budget of int
      (** maximum [execute] calls. The solver never reads the wall
          clock under this budget: pacing, escalation and timestamps
          all run off the execution counter, so same-seed runs are
          byte-identical — the determinism discipline campaigns pin. *)

type result = {
  suite : test_case list;  (** chronological *)
  executions : int;
  targets_total : int;
  targets_solved : int;
      (** targets observed covered by the time the solver finished
          considering them — solved directly, covered incidentally by
          another target's search, or already in [initial_coverage] *)
  probes_covered : int;
}

val run : ?config:config -> ?initial_coverage:Bytes.t -> Ir.program -> budget -> result
(** Runs on a fully instrumented program ([Codegen.Full]).
    [initial_coverage] (a probe bitmap, nonzero = already covered)
    removes objectives another generator already hit — the hook the
    hybrid campaign phase and the CFTCG+solver baseline use. *)

val run_timed :
  ?config:config -> ?initial_coverage:Bytes.t -> Ir.program -> time_budget:float -> result
(** [run] under a {!Time_budget} — the wall-clock wrapper kept for the
    standalone/baseline path, where runs race a human deadline rather
    than a reproducible exec budget. *)
