(** Static guard-chain analysis of instrumented programs.

    For the constraint-driven generator ({!Symexec}) each coverage
    probe is a {e target}: the chain of [If] branches that dominate
    it. Chains are expressed over the same depth-first [If] numbering
    that {!Cftcg_ir.Ir_compile} and {!Cftcg_ir.Ir_eval} report
    through [Hooks.on_branch] ([init] traversed before [step],
    then-arm before else-arm). *)

open Cftcg_ir

type chain = (int * bool) list
(** Root-to-leaf list of [(if_ix, needs_then_branch)]. An empty chain
    means the probe sits at top level (always executed). *)

val probe_chains : Ir.program -> chain array
(** [probe_chains p] indexed by probe id. A probe that never appears
    in the program body gets an empty chain. *)

val n_ifs : Ir.program -> int
(** Total number of [If] statements, i.e. the exclusive upper bound
    of [if_ix]. *)
