open Cftcg_ir

type chain = (int * bool) list

let analyze (p : Ir.program) =
  let chains = Array.make p.Ir.n_probes [] in
  let counter = ref 0 in
  let rec go prefix stmts =
    List.iter
      (fun (s : Ir.stmt) ->
        match s with
        | Ir.Assign _ | Ir.Record_cond _ | Ir.Record_decision _ | Ir.Comment _ -> ()
        | Ir.Probe id -> if chains.(id) = [] then chains.(id) <- List.rev prefix
        | Ir.If { then_; else_; _ } ->
          let if_ix = !counter in
          incr counter;
          go ((if_ix, true) :: prefix) then_;
          go ((if_ix, false) :: prefix) else_)
      stmts
  in
  go [] p.Ir.init;
  go [] p.Ir.step;
  (chains, !counter)

let probe_chains p = fst (analyze p)

let n_ifs p = snd (analyze p)
