open Cftcg_model
open Cftcg_ir
module Rng = Cftcg_util.Rng
module Layout = Cftcg_fuzz.Layout

type config = {
  seed : int64;
  unroll_bounds : int list;
  moves_per_target : int;
}

let default_config = { seed = 1L; unroll_bounds = [ 1; 2; 4; 8; 16 ]; moves_per_target = 400 }

type test_case = {
  data : Bytes.t;
  time : float;
}

type budget =
  | Time_budget of float
  | Exec_budget of int

type result = {
  suite : test_case list;
  executions : int;
  targets_total : int;
  targets_solved : int;
  probes_covered : int;
}

(* Branch observation for one executed input: per If statement, the
   minimum distance-to-then / distance-to-else over every iteration
   in which it executed. *)
type branch_obs = {
  mutable reached : bool;
  mutable min_dt : float;
  mutable min_df : float;
}

let big = 1.0e15

(* Approach level + raw branch distance (Wegener et al.). The distance
   is kept raw rather than normalized: normalizing with d/(d+1) makes
   a unit improvement on a distance of 1e9 smaller than double
   precision, which silently kills the descent on wide integer
   constraints. [big] dominates any achievable distance, so approach
   levels still order first. *)
let fitness chains target obs probe_hit =
  if probe_hit then 0.0
  else begin
    let chain = chains.(target) in
    let depth_total = List.length chain in
    let rec walk depth = function
      | [] ->
        (* full chain satisfied but probe not hit (e.g. condition
           probes behind Record semantics): treat as nearly solved *)
        0.5
      | (if_ix, want_then) :: rest ->
        let o = obs.(if_ix) in
        if not o.reached then
          (* approach level: how many chain levels remain *)
          float_of_int (depth_total - depth) *. big
        else begin
          let d = if want_then then o.min_dt else o.min_df in
          if d <= 0.0 then walk (depth + 1) rest
          else (float_of_int (depth_total - depth - 1) *. big) +. Float.min d (0.5 *. big)
        end
    in
    walk 0 chain
  end

let run ?(config = default_config) ?initial_coverage (prog : Ir.program) budget =
  let layout = Layout.of_program prog in
  if layout.Layout.tuple_len = 0 then invalid_arg "Symexec.run: model has no inports";
  let rng = Rng.create config.seed in
  let chains = Guards.probe_chains prog in
  let n_ifs = Guards.n_ifs prog in
  let n_probes = max prog.Ir.n_probes 1 in
  let exec_cov = Bytes.make n_probes '\000' in
  let g_total = Bytes.make n_probes '\000' in
  (match initial_coverage with
  | Some bitmap ->
    for i = 0 to min (Bytes.length bitmap) n_probes - 1 do
      if Bytes.get bitmap i <> '\000' then Bytes.set g_total i '\001'
    done
  | None -> ());
  let obs = Array.init n_ifs (fun _ -> { reached = false; min_dt = big; min_df = big }) in
  let hooks =
    {
      Hooks.on_probe = Some (fun id -> Bytes.unsafe_set exec_cov id '\001');
      on_cond = None;
      on_decision = None;
      on_branch =
        Some
          (fun if_ix _taken dt df ->
            let o = obs.(if_ix) in
            o.reached <- true;
            if dt < o.min_dt then o.min_dt <- dt;
            if df < o.min_df then o.min_df <- df);
    }
  in
  let compiled = Ir_compile.compile ~hooks prog in
  let executions = ref 0 in
  (* Exec-budget runs pace themselves on the execution counter — a
     virtual clock — and never read the wall clock, so same-seed runs
     are byte-identical, timestamps included (the discipline
     Fuzzer.run follows). Only a time budget touches gettimeofday. *)
  let start, deadline =
    match budget with
    | Time_budget s ->
      let now = Unix.gettimeofday () in
      (now, now +. s)
    | Exec_budget _ -> (0.0, 0.0)
  in
  let budget_ok () =
    match budget with
    | Time_budget _ -> Unix.gettimeofday () < deadline
    | Exec_budget n -> !executions < n
  in
  let elapsed_now () =
    match budget with
    | Time_budget _ -> Unix.gettimeofday () -. start
    | Exec_budget _ -> float_of_int !executions
  in
  let suite = ref [] in
  let record_new_coverage data =
    (* fold this execution's probes into the global set; emit a test
       case when anything new appeared *)
    let fresh = ref false in
    for i = 0 to n_probes - 1 do
      if Bytes.unsafe_get exec_cov i <> '\000' && Bytes.unsafe_get g_total i = '\000' then begin
        Bytes.unsafe_set g_total i '\001';
        fresh := true
      end
    done;
    if !fresh then suite := { data = Bytes.copy data; time = elapsed_now () } :: !suite
  in
  (* Execute [data]; returns whether [target] was hit this run. *)
  let execute data target =
    incr executions;
    Bytes.fill exec_cov 0 n_probes '\000';
    Array.iter
      (fun o ->
        o.reached <- false;
        o.min_dt <- big;
        o.min_df <- big)
      obs;
    Ir_compile.reset compiled;
    let n = Layout.n_tuples layout data in
    for tuple = 0 to n - 1 do
      Layout.load_tuple layout data ~tuple compiled;
      Ir_compile.step compiled
    done;
    record_new_coverage data;
    Bytes.unsafe_get exec_cov target <> '\000'
  in
  let n_fields = Array.length layout.Layout.fields in
  (* candidate = matrix of field values, encoded through the layout *)
  let encode matrix =
    let steps = Array.length matrix in
    let data = Bytes.make (steps * layout.Layout.tuple_len) '\000' in
    Array.iteri
      (fun s row ->
        Array.iteri (fun f v -> Layout.set_field layout data ~tuple:s ~field:f v) row)
      matrix;
    data
  in
  let random_row () =
    Array.init n_fields (fun f ->
        let ty = layout.Layout.fields.(f).Layout.f_ty in
        match ty with
        | Dtype.Bool -> Value.of_bool (Rng.bool rng)
        | ty when Dtype.is_integer ty -> Value.of_int ty (Rng.int_in rng (-64) 64)
        | ty -> Value.of_float ty (Rng.float rng 20.0 -. 10.0))
  in
  let nudge matrix s f delta =
    let row = Array.copy matrix.(s) in
    let ty = layout.Layout.fields.(f).Layout.f_ty in
    (row.(f) <-
       (match ty with
       | Dtype.Bool -> Value.of_bool (not (Value.is_true row.(f)))
       | ty when Dtype.is_integer ty -> Value.of_int ty (Value.to_int row.(f) + int_of_float delta)
       | ty -> Value.of_float ty (Value.to_float row.(f) +. delta)));
    let m' = Array.copy matrix in
    m'.(s) <- row;
    m'
  in
  let eval_candidate matrix target =
    let data = encode matrix in
    let hit = execute data target in
    fitness chains target obs hit
  in
  (* Alternating-variable search for one target at one unrolling bound. *)
  let solve_target target bound =
    let matrix = ref (Array.init bound (fun _ -> random_row ())) in
    let best = ref (eval_candidate !matrix target) in
    let moves = ref 0 in
    let improved_once = ref true in
    while !best > 0.0 && !moves < config.moves_per_target && budget_ok () && !improved_once do
      improved_once := false;
      (* sweep dimensions; exponential pattern moves on improvement *)
      let dims = Array.init (bound * n_fields) (fun i -> i) in
      Rng.shuffle_in_place rng dims;
      Array.iter
        (fun dim ->
          if !best > 0.0 && !moves < config.moves_per_target && budget_ok () then begin
            let s = dim / n_fields and f = dim mod n_fields in
            let try_dir dir =
              let delta = ref dir in
              let continue_ = ref true in
              while !continue_ && !best > 0.0 && !moves < config.moves_per_target && budget_ok () do
                let cand = nudge !matrix s f !delta in
                incr moves;
                let fit = eval_candidate cand target in
                if fit < !best then begin
                  best := fit;
                  matrix := cand;
                  improved_once := true;
                  delta := !delta *. 2.0
                end
                else continue_ := false
              done
            in
            try_dir 1.0;
            try_dir (-1.0)
          end)
        dims;
      (* random restart of one step row when stuck *)
      if !best > 0.0 && not !improved_once && bound > 0 && !moves < config.moves_per_target
         && budget_ok ()
      then begin
        let cand = Array.copy !matrix in
        cand.(Rng.int rng bound) <- random_row ();
        incr moves;
        let fit = eval_candidate cand target in
        if fit < !best then begin
          best := fit;
          matrix := cand;
          improved_once := true
        end
      end
    done;
    !best = 0.0
  in
  (* Targets ordered shallow-first, the way a bounded solver clears
     easy objectives before hard ones. *)
  let targets =
    List.init prog.Ir.n_probes (fun i -> i)
    |> List.sort (fun a b -> compare (List.length chains.(a)) (List.length chains.(b)))
  in
  let solved = ref 0 in
  let consider target =
    if Bytes.get g_total target <> '\000' then incr solved (* already covered incidentally *)
    else begin
      let rec try_bounds = function
        | [] -> ()
        | bound :: rest ->
          (* A target can become covered between bounds (an escalating
             search executes inputs that fire other probes too); that
             still counts as solved — the guard used to stop the
             escalation here without crediting it, leaving
             [targets_solved] in disagreement with [probes_covered]
             over the very same targets. *)
          if Bytes.get g_total target <> '\000' then incr solved
          else if budget_ok () then begin
            if solve_target target bound then incr solved else try_bounds rest
          end
      in
      try_bounds config.unroll_bounds
    end
  in
  List.iter (fun t -> if budget_ok () then consider t) targets;
  let covered = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr covered) g_total;
  {
    suite = List.rev !suite;
    executions = !executions;
    targets_total = prog.Ir.n_probes;
    targets_solved = !solved;
    probes_covered = !covered;
  }

let run_timed ?config ?initial_coverage prog ~time_budget =
  run ?config ?initial_coverage prog (Time_budget time_budget)
