(** Shared coverage-replay harness.

    All tools are scored the same way: their emitted test cases are
    replayed through the fully instrumented compiled program and the
    Decision / Condition / MCDC metrics are read off one recorder —
    the equivalent of the paper's CSV-into-Simulink-coverage
    pipeline. *)

open Cftcg_ir
module Recorder = Cftcg_coverage.Recorder

val replay : ?max_tuples:int -> Ir.program -> Bytes.t list -> Recorder.report
(** Replays a suite (order irrelevant) and reports cumulative
    coverage. [max_tuples] caps iterations per test case
    (default 4096). *)

val decision_series :
  ?max_tuples:int -> Ir.program -> (Bytes.t * float) list -> (float * float) list
(** [(time, decision_pct)] after each test case, with cases sorted by
    timestamp — the data behind Figure 7's coverage-vs-time plots. *)

val signal_ranges :
  ?max_tuples:int -> Ir.program -> Bytes.t list -> (string * float * float) list
(** Signal range coverage (Simulink's "signal range" report): the
    [(name, min, max)] observed for every output and state variable
    across the suite. Variables never written keep their reset
    value 0. *)
