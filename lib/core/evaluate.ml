open Cftcg_ir
module Recorder = Cftcg_coverage.Recorder
module Layout = Cftcg_fuzz.Layout

let run_case layout compiled ~max_tuples data =
  Ir_compile.reset compiled;
  let n = min (Layout.n_tuples layout data) max_tuples in
  for tuple = 0 to n - 1 do
    Layout.load_tuple layout data ~tuple compiled;
    Ir_compile.step compiled
  done

let replay ?(max_tuples = 4096) (prog : Ir.program) suite =
  let layout = Layout.of_program prog in
  let recorder = Recorder.create prog in
  let compiled = Ir_compile.compile ~hooks:(Recorder.hooks recorder) prog in
  List.iter (run_case layout compiled ~max_tuples) suite;
  Recorder.report recorder

let signal_ranges ?(max_tuples = 4096) (prog : Ir.program) suite =
  let layout = Layout.of_program prog in
  let compiled = Ir_compile.compile prog in
  let watched = Array.append prog.Ir.outputs prog.Ir.states in
  let mins = Array.make (Array.length watched) Float.infinity in
  let maxs = Array.make (Array.length watched) Float.neg_infinity in
  let observe () =
    Array.iteri
      (fun i (v : Ir.var) ->
        let x = Ir_compile.read_raw compiled v.Ir.vid in
        if x < mins.(i) then mins.(i) <- x;
        if x > maxs.(i) then maxs.(i) <- x)
      watched
  in
  List.iter
    (fun data ->
      Ir_compile.reset compiled;
      observe ();
      let n = min (Layout.n_tuples layout data) max_tuples in
      for tuple = 0 to n - 1 do
        Layout.load_tuple layout data ~tuple compiled;
        Ir_compile.step compiled;
        observe ()
      done)
    suite;
  Array.to_list
    (Array.mapi
       (fun i (v : Ir.var) ->
         if Float.is_finite mins.(i) then (v.Ir.vname, mins.(i), maxs.(i))
         else (v.Ir.vname, 0.0, 0.0))
       watched)

let decision_series ?(max_tuples = 4096) (prog : Ir.program) timed_suite =
  let layout = Layout.of_program prog in
  let recorder = Recorder.create prog in
  let compiled = Ir_compile.compile ~hooks:(Recorder.hooks recorder) prog in
  let sorted = List.sort (fun (_, a) (_, b) -> Float.compare a b) timed_suite in
  List.map
    (fun (data, time) ->
      run_case layout compiled ~max_tuples data;
      let r = Recorder.report recorder in
      (time, r.Recorder.decision_pct))
    sorted
