open Cftcg_ir
module Codegen = Cftcg_codegen.Codegen
module Fuzzer = Cftcg_fuzz.Fuzzer
module Recorder = Cftcg_coverage.Recorder
module Layout = Cftcg_fuzz.Layout
module Tools = Cftcg_baselines.Tools

type generated = {
  program : Ir.program;
  layout : Layout.t;
  fuzz_code_c : string;
  fuzz_driver_c : string;
}

let span = Cftcg_obs.Trace.with_span

let generate ?(mode = Codegen.Full) ?(optimize = true) m =
  span "pipeline.generate" @@ fun () ->
  let program = Codegen.lower ~mode m in
  let program = if optimize then Ir_opt.optimize program else program in
  {
    program;
    layout = Layout.of_program program;
    fuzz_code_c = span "pipeline.cemit" (fun () -> Cemit.emit_program program);
    fuzz_driver_c = Cemit.emit_fuzz_driver program;
  }

type campaign = {
  gen : generated;
  fuzz : Fuzzer.result;
  coverage : Recorder.report;
}

let run_campaign ?(config = Fuzzer.default_config) ?(mode = Codegen.Full) ?(optimize = true)
    ?coverage_series m budget =
  let gen = generate ~mode ~optimize m in
  (match coverage_series with
  | Some s -> Cftcg_obs.Series.set_probes_total s gen.program.Ir.n_probes
  | None -> ());
  let fuzz = Fuzzer.run ~config ?coverage_series gen.program budget in
  let scoring_prog =
    (* score on the fully instrumented build even if the campaign ran
       on a reduced one *)
    match mode with
    | Codegen.Full -> gen.program
    | Codegen.Branchless | Codegen.Plain -> Codegen.lower ~mode:Codegen.Full m
  in
  let suite = List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) fuzz.Fuzzer.test_suite in
  { gen; fuzz; coverage = Evaluate.replay scoring_prog suite }

module Campaign = Cftcg_campaign.Campaign

type parallel_campaign = {
  pc_gen : generated;
  pc_result : Campaign.result;
  pc_coverage : Recorder.report;
}

let run_parallel_campaign ?(config = Campaign.default_config) ?(mode = Codegen.Full)
    ?(optimize = true) m =
  let gen = generate ~mode ~optimize m in
  let result = Campaign.run ~config gen.program in
  let scoring_prog =
    match mode with
    | Codegen.Full -> gen.program
    | Codegen.Branchless | Codegen.Plain -> Codegen.lower ~mode:Codegen.Full m
  in
  { pc_gen = gen; pc_result = result; pc_coverage = Evaluate.replay scoring_prog result.Campaign.suite }

let score_tool (tool : Tools.t) m ~seed ~time_budget =
  let outcome = tool.Tools.generate m ~seed ~time_budget in
  let prog = Codegen.lower ~mode:Codegen.Full m in
  let suite = List.map (fun (tc : Tools.test_case) -> tc.Tools.data) outcome.Tools.suite in
  (outcome, Evaluate.replay prog suite)
