(** End-to-end CFTCG pipeline (paper Figure 2).

    [Model Parser → Schedule Convert → Branch Instrument →
    Code Synthesis → Fuzz Driver Generation → Model Oriented
    Fuzzing Loop], packaged as one call each for generation and for
    campaign execution. *)

open Cftcg_model
open Cftcg_ir
module Codegen = Cftcg_codegen.Codegen
module Fuzzer = Cftcg_fuzz.Fuzzer
module Recorder = Cftcg_coverage.Recorder

type generated = {
  program : Ir.program;  (** instrumented, scheduled, lowered *)
  layout : Cftcg_fuzz.Layout.t;  (** fuzz driver field layout *)
  fuzz_code_c : string;  (** the C fuzz code (instrumented step) *)
  fuzz_driver_c : string;  (** the C [LLVMFuzzerTestOneInput] *)
}

val generate : ?mode:Codegen.mode -> ?optimize:bool -> Graph.t -> generated
(** Fuzzing Code Generation: parse/validate, schedule, instrument,
    synthesize. [optimize] (default [true]) runs the IR optimizer —
    the "Maximize Execution Speed" objective. *)

type campaign = {
  gen : generated;
  fuzz : Fuzzer.result;
  coverage : Recorder.report;  (** replayed on the instrumented program *)
}

val run_campaign :
  ?config:Fuzzer.config -> ?mode:Codegen.mode -> ?optimize:bool ->
  ?coverage_series:Cftcg_obs.Series.t -> Graph.t -> Fuzzer.budget -> campaign
(** Generates, fuzzes, and scores one model in one call.
    [coverage_series] is handed to {!Fuzzer.run} (Figure-7
    coverage-over-time recording); its [probes_total] is filled in
    from the lowered program. *)

module Campaign = Cftcg_campaign.Campaign

type parallel_campaign = {
  pc_gen : generated;
  pc_result : Campaign.result;  (** merged corpus, per-epoch history, failures *)
  pc_coverage : Recorder.report;  (** the merged suite replayed on the Full build *)
}

val run_parallel_campaign :
  ?config:Campaign.config -> ?mode:Codegen.mode -> ?optimize:bool -> Graph.t ->
  parallel_campaign
(** Generates and runs a multi-worker ensemble campaign
    ({!Cftcg_campaign.Campaign}): N fuzzing domains in epochs with
    corpus merge/redistribution between epochs, optional on-disk
    persistence and resume, and a telemetry event stream. *)

val score_tool :
  Cftcg_baselines.Tools.t -> Graph.t -> seed:int64 -> time_budget:float ->
  Cftcg_baselines.Tools.outcome * Recorder.report
(** Runs any tool and replays its suite on the Full-instrumented
    program — the shared scoring path used by every experiment. *)
