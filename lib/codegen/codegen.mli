(** Model-to-IR lowering with model-level branch instrumentation.

    This is the paper's "Fuzzing Code Generation" stage: the model is
    parsed, scheduled ({!Schedule}), and each block lowered through
    its template into the IR, flattening subsystems inline and
    expanding charts into if/else chains — exactly the structure the
    emitted C has.

    Three instrumentation modes reproduce the paper's build variants:

    - [Full] — model-level probes per §3.1.2's four modes:
      (a) boolean blocks get per-input condition checks,
      (b) data switch/select blocks get per-branch decision probes,
      (c) branch blocks (If, conditional subsystems, chart
          transitions) get probes at every branch head,
      (d) blocks with internal conditionals (Saturation, DeadZone,
          Relay, rate limiter, lookup clipping, ...) get probes on
          every conditional arm including implicit elses.
    - [Branchless] — the "Fuzz Only" build of §4: boolean and select
      logic compiles to branch-free ternaries with {i no} probes
      (mimicking Clang -O2's jump-free boolean code), and only
      structural [if]s (charts, conditional subsystems, saturations)
      receive plain code-level edge probes, with no condition or
      decision records.
    - [Plain] — no instrumentation at all (pure generated code).

    Lowering is deterministic. *)

open Cftcg_model
open Cftcg_ir

type mode =
  | Full
  | Branchless
  | Plain

val mode_name : mode -> string

val infer_types : Graph.t -> Dtype.t array -> (int * int, Dtype.t) Hashtbl.t
(** Signal dtype of every (block id, output port) pair in one model
    level, given the model's inport dtypes. Shared with the graph
    interpreter so both execution paths agree on types. *)

val lower : ?mode:mode -> Graph.t -> Ir.program
(** Raises [Failure] on algebraic loops or validation errors. The
    result always satisfies {!Ir.validate}. *)
