open Cftcg_model

let breaks_loop = function
  | Graph.Unit_delay _ | Graph.Delay _ | Graph.Memory_block _ | Graph.Discrete_integrator _ ->
    true
  | _ -> false

let order (m : Graph.t) =
  let n = Array.length m.Graph.blocks in
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  Array.iter
    (fun (l : Graph.line) ->
      if not (breaks_loop m.Graph.blocks.(l.Graph.src_block).Graph.kind) then begin
        succs.(l.Graph.src_block) <- l.Graph.dst_block :: succs.(l.Graph.src_block);
        indeg.(l.Graph.dst_block) <- indeg.(l.Graph.dst_block) + 1
      end)
    m.Graph.lines;
  (* deterministic Kahn: a sorted ready set, lowest id first *)
  let module IS = Set.Make (Int) in
  let ready = ref IS.empty in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then ready := IS.add i !ready
  done;
  let out = ref [] in
  let count = ref 0 in
  while not (IS.is_empty !ready) do
    let b = IS.min_elt !ready in
    ready := IS.remove b !ready;
    out := b :: !out;
    incr count;
    List.iter
      (fun d ->
        indeg.(d) <- indeg.(d) - 1;
        if indeg.(d) = 0 then ready := IS.add d !ready)
      succs.(b)
  done;
  if !count <> n then begin
    let stuck =
      Array.to_list m.Graph.blocks
      |> List.filter (fun (b : Graph.block) -> indeg.(b.Graph.bid) > 0)
      |> List.map (fun (b : Graph.block) -> b.Graph.block_name)
    in
    Error
      (Printf.sprintf "model %s: algebraic loop through blocks: %s" m.Graph.model_name
         (String.concat ", " stuck))
  end
  else Ok (List.rev !out)

let order_exn m =
  match order m with
  | Ok o -> o
  | Error msg -> failwith msg
