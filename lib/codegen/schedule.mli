(** Block execution scheduling (the paper's "Schedule Convert").

    Computes the combinational evaluation order of one model level:
    a topological sort of the data-dependency graph in which
    non-direct-feedthrough blocks (unit delays, memories, discrete
    integrators) act as sources — their outputs are previous-step
    state, so they break loops. A cycle through direct-feedthrough
    blocks is an algebraic loop and is rejected. *)

open Cftcg_model

val breaks_loop : Graph.kind -> bool
(** True for blocks whose current output does not depend on their
    current input (state-only blocks). *)

val order : Graph.t -> (int list, string) result
(** Block ids in a valid evaluation order (all blocks included). The
    order is deterministic: among ready blocks, lower ids first. *)

val order_exn : Graph.t -> int list
(** Like {!order}, raising [Failure] on algebraic loops. *)
