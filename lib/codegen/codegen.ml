open Cftcg_model
open Cftcg_ir

type mode =
  | Full
  | Branchless
  | Plain

let mode_name = function
  | Full -> "full"
  | Branchless -> "branchless"
  | Plain -> "plain"

(* ------------------------------------------------------------------ *)
(* Lowering context                                                    *)
(* ------------------------------------------------------------------ *)

type ctx = {
  mode : mode;
  mutable n_vars : int;
  mutable rev_states : Ir.var list;
  mutable rev_init : Ir.stmt list;
  mutable rev_decs : Ir.decision list;
  mutable n_decs : int;
  mutable n_probes : int;
  mutable rev_assertions : (int * string) list;
  mutable rev_lookups : (string * int array) list;
}

type buf = Ir.stmt list ref

let emit (buf : buf) s = buf := s :: !buf
let flush (buf : buf) = List.rev !buf

let fresh_var ctx name ty =
  let v = { Ir.vid = ctx.n_vars; vname = name; vty = ty } in
  ctx.n_vars <- ctx.n_vars + 1;
  v

let state_var ctx name ty init_value =
  let v = fresh_var ctx name ty in
  ctx.rev_states <- v :: ctx.rev_states;
  ctx.rev_init <- Ir.Assign (v, Ir.Const init_value) :: ctx.rev_init;
  v

let alloc_probe ctx =
  let id = ctx.n_probes in
  ctx.n_probes <- id + 1;
  id

let new_decision ctx ~block ~desc ~outcomes ~conds =
  let outcome_probes = Array.init outcomes (fun _ -> alloc_probe ctx) in
  let conditions =
    Array.of_list
      (List.mapi
         (fun i cond_desc ->
           { Ir.cond_ix = i; cond_desc; probe_true = alloc_probe ctx; probe_false = alloc_probe ctx })
         conds)
  in
  let d =
    {
      Ir.dec_id = ctx.n_decs;
      dec_block = block;
      dec_desc = desc;
      n_outcomes = outcomes;
      outcome_probes;
      conditions;
    }
  in
  ctx.n_decs <- ctx.n_decs + 1;
  ctx.rev_decs <- d :: ctx.rev_decs;
  d

(* Decision arm prologue: flat probe plus MCDC outcome record. *)
let arm (d : Ir.decision) outcome =
  [ Ir.Probe d.Ir.outcome_probes.(outcome); Ir.Record_decision { dec = d.Ir.dec_id; outcome } ]

(* Condition observation: record for MCDC and hit both polarity
   probes through an if/else, the instrumentation shape of Fig 4(a). *)
let cond_stmts (d : Ir.decision) ix value_expr =
  let c = d.Ir.conditions.(ix) in
  [ Ir.Record_cond { dec = d.Ir.dec_id; cond_ix = ix; value = value_expr };
    Ir.If
      {
        cond = value_expr;
        dec = None;
        then_ = [ Ir.Probe c.Ir.probe_true ];
        else_ = [ Ir.Probe c.Ir.probe_false ];
      } ]

(* Code-level-only probe (Branchless mode): plain edge cell with no
   decision bookkeeping, like LibFuzzer's own instrumentation. *)
let code_arm ctx = [ Ir.Probe (alloc_probe ctx) ]

(* ------------------------------------------------------------------ *)
(* Signal type inference                                               *)
(* ------------------------------------------------------------------ *)

let promote_all tys = List.fold_left Dtype.promote (List.hd tys) (List.tl tys)

let float_kind = function
  | Dtype.Float32 -> Dtype.Float32
  | _ -> Dtype.Float64

(* Output type of a block kind given its input types. [sub_out] lazily
   computes a subsystem's outport types. *)
let kind_out_ty kind (in_tys : Dtype.t array) (sub_out : Graph.t -> Dtype.t array -> Dtype.t array)
    port =
  match kind with
  | Graph.Inport { port_dtype; _ } -> port_dtype
  | Graph.Constant v -> Value.dtype v
  | Graph.Ground ty -> ty
  | Graph.Outport _ | Graph.Terminator -> assert false
  | Graph.Sum _ | Graph.Product _ | Graph.Min_max _ | Graph.Merge _ ->
    promote_all (Array.to_list in_tys)
  | Graph.Switch _ -> Dtype.promote in_tys.(0) in_tys.(2)
  | Graph.Multiport_switch _ -> promote_all (List.tl (Array.to_list in_tys))
  | Graph.Gain _ | Graph.Bias _ | Graph.Abs | Graph.Unary_minus | Graph.Rounding _
  | Graph.Saturation _ | Graph.Dead_zone _ | Graph.Quantizer _ | Graph.Rate_limiter _ ->
    in_tys.(0)
  | Graph.Sign_block -> if Dtype.is_signed in_tys.(0) then in_tys.(0) else Dtype.Int8
  | Graph.Math_func _ -> float_kind in_tys.(0)
  | Graph.Relay _ -> Dtype.Float64
  | Graph.Logic _ | Graph.Relational _ | Graph.Compare_to_constant _ | Graph.Compare_to_zero _
  | Graph.Edge_detect _ | Graph.If_block _ -> Dtype.Bool
  | Graph.Unit_delay _ | Graph.Delay _ | Graph.Memory_block _ -> in_tys.(0)
  | Graph.Discrete_integrator _ | Graph.Discrete_filter _ -> float_kind in_tys.(0)
  | Graph.Counter _ -> Dtype.Int32
  | Graph.Lookup_1d _ -> float_kind in_tys.(0)
  | Graph.Data_type_conversion ty -> ty
  | Graph.Assertion _ -> assert false (* no outputs *)
  | Graph.Chart_block ch -> snd ch.Chart.outputs.(port)
  | Graph.Subsystem { sub; activation } ->
    let data_in =
      match activation with
      | Graph.Always -> in_tys
      | Graph.Enabled | Graph.Triggered _ -> Array.sub in_tys 1 (Array.length in_tys - 1)
    in
    (sub_out sub data_in).(port)

(* Iteratively infer the dtype of every (block, port) signal in a
   model given its inport types. Loop-breaking blocks default to
   Float64 until their input type is known; a handful of rounds
   settles all practical models. *)
let rec infer_types (m : Graph.t) (input_tys : Dtype.t array) : (int * int, Dtype.t) Hashtbl.t =
  let types = Hashtbl.create 64 in
  let src_of = Hashtbl.create 64 in
  Array.iter
    (fun (l : Graph.line) ->
      Hashtbl.replace src_of (l.Graph.dst_block, l.Graph.dst_port) (l.Graph.src_block, l.Graph.src_port))
    m.Graph.lines;
  let get bid port =
    match Hashtbl.find_opt types (bid, port) with
    | Some ty -> ty
    | None -> Dtype.Float64
  in
  let in_ty bid port =
    match Hashtbl.find_opt src_of (bid, port) with
    | Some (sb, sp) -> get sb sp
    | None -> Dtype.Float64
  in
  let outport_signal_ty sub inner i =
    (* type of the signal feeding outport index i+1 in [sub] *)
    let result = ref Dtype.Float64 in
    Array.iter
      (fun (b : Graph.block) ->
        match b.Graph.kind with
        | Graph.Outport { port_index } when port_index = i + 1 ->
          Array.iter
            (fun (l : Graph.line) ->
              if l.Graph.dst_block = b.Graph.bid && l.Graph.dst_port = 0 then
                match Hashtbl.find_opt inner (l.Graph.src_block, l.Graph.src_port) with
                | Some ty -> result := ty
                | None -> ())
            sub.Graph.lines
        | _ -> ())
      sub.Graph.blocks;
    !result
  in
  let sub_out sub data_tys =
    let inner = infer_types sub data_tys in
    Array.mapi (fun i _ -> outport_signal_ty sub inner i) (Graph.outports sub)
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 6 do
    changed := false;
    incr rounds;
    Array.iter
      (fun (b : Graph.block) ->
        match b.Graph.kind with
        | Graph.Outport _ | Graph.Terminator -> ()
        | Graph.Inport { port_index; _ } ->
          let ty =
            if port_index - 1 < Array.length input_tys then input_tys.(port_index - 1)
            else Dtype.Float64
          in
          if Hashtbl.find_opt types (b.Graph.bid, 0) <> Some ty then begin
            Hashtbl.replace types (b.Graph.bid, 0) ty;
            changed := true
          end
        | kind ->
          let nin, nout = Graph.arity kind in
          let in_tys = Array.init nin (fun p -> in_ty b.Graph.bid p) in
          for port = 0 to nout - 1 do
            let ty = kind_out_ty kind in_tys sub_out port in
            if Hashtbl.find_opt types (b.Graph.bid, port) <> Some ty then begin
              Hashtbl.replace types (b.Graph.bid, port) ty;
              changed := true
            end
          done)
      m.Graph.blocks
  done;
  types

(* ------------------------------------------------------------------ *)
(* Expression helpers                                                  *)
(* ------------------------------------------------------------------ *)

let f64 = Dtype.Float64
let fconst f = Ir.float_const f64 f
let read v = Ir.Read v

let relop_binop = function
  | Graph.R_eq -> Ir.B_eq
  | Graph.R_ne -> Ir.B_ne
  | Graph.R_lt -> Ir.B_lt
  | Graph.R_le -> Ir.B_le
  | Graph.R_gt -> Ir.B_gt
  | Graph.R_ge -> Ir.B_ge

let fold_logic op exprs =
  let combine a b =
    match op with
    | Graph.L_and | Graph.L_nand -> Ir.Binop (Ir.B_and, f64, a, b)
    | Graph.L_or | Graph.L_nor -> Ir.Binop (Ir.B_or, f64, a, b)
    | Graph.L_xor -> Ir.Binop (Ir.B_ne, f64, a, b)
    | Graph.L_not -> assert false
  in
  let folded =
    match exprs with
    | [] -> assert false
    | first :: rest -> List.fold_left combine first rest
  in
  match op with
  | Graph.L_nand | Graph.L_nor -> Ir.Unop (Ir.U_not, folded)
  | Graph.L_and | Graph.L_or | Graph.L_xor -> folded
  | Graph.L_not -> assert false

let edge_cond kind ~curr ~prev =
  match kind with
  | Graph.E_rising -> Ir.Binop (Ir.B_and, f64, curr, Ir.Unop (Ir.U_not, prev))
  | Graph.E_falling -> Ir.Binop (Ir.B_and, f64, Ir.Unop (Ir.U_not, curr), prev)
  | Graph.E_either -> Ir.Binop (Ir.B_ne, f64, curr, prev)

(* ------------------------------------------------------------------ *)
(* Chart lowering                                                      *)
(* ------------------------------------------------------------------ *)

let rec chart_atoms (e : Chart.expr) =
  match e with
  | Chart.Bin ((Chart.C_and | Chart.C_or), a, b) -> chart_atoms a @ chart_atoms b
  | Chart.Un (Chart.C_not, a) -> chart_atoms a
  | e -> [ e ]

type chart_vars = {
  cv_inputs : Ir.var array;
  cv_outputs : Ir.var array;
  cv_locals : Ir.var array;
}

(* [time_var] is the timer State_time refers to in the current
   context: the timer of the exclusive set the expression's state
   belongs to (parallel regions share their parent set's timer). *)
let rec lower_cexpr cv ~time_var (e : Chart.expr) : Ir.expr =
  match e with
  | Chart.In i -> read cv.cv_inputs.(i)
  | Chart.Local i -> read cv.cv_locals.(i)
  | Chart.Out i -> read cv.cv_outputs.(i)
  | Chart.State_time -> read time_var
  | Chart.Const f -> fconst f
  | Chart.Un (Chart.C_neg, a) -> Ir.Binop (Ir.B_sub, f64, fconst 0.0, lower_cexpr cv ~time_var a)
  | Chart.Un (Chart.C_not, a) -> Ir.Unop (Ir.U_not, Ir.truthy (lower_cexpr cv ~time_var a))
  | Chart.Un (Chart.C_abs, a) ->
    let la = lower_cexpr cv ~time_var a in
    Ir.Binop (Ir.B_max, f64, la, Ir.Binop (Ir.B_sub, f64, fconst 0.0, la))
  | Chart.Bin (op, a, b) ->
    let la = lower_cexpr cv ~time_var a and lb = lower_cexpr cv ~time_var b in
    let bin o = Ir.Binop (o, f64, la, lb) in
    (match op with
    | Chart.C_add -> bin Ir.B_add
    | Chart.C_sub -> bin Ir.B_sub
    | Chart.C_mul -> bin Ir.B_mul
    | Chart.C_div -> bin Ir.B_div
    | Chart.C_mod -> bin Ir.B_rem
    | Chart.C_min -> bin Ir.B_min
    | Chart.C_max -> bin Ir.B_max
    | Chart.C_eq -> bin Ir.B_eq
    | Chart.C_ne -> bin Ir.B_ne
    | Chart.C_lt -> bin Ir.B_lt
    | Chart.C_le -> bin Ir.B_le
    | Chart.C_gt -> bin Ir.B_gt
    | Chart.C_ge -> bin Ir.B_ge
    | Chart.C_and -> Ir.Binop (Ir.B_and, f64, Ir.truthy la, Ir.truthy lb)
    | Chart.C_or -> Ir.Binop (Ir.B_or, f64, Ir.truthy la, Ir.truthy lb))

(* Rebuild a guard over pre-bound atom variables, popping them in the
   same traversal order chart_atoms produced them. *)
let rebuild_guard atom_vars guard =
  let queue = ref atom_vars in
  let pop () =
    match !queue with
    | [] -> assert false
    | v :: rest ->
      queue := rest;
      v
  in
  let rec go (e : Chart.expr) : Ir.expr =
    match e with
    | Chart.Bin (Chart.C_and, a, b) ->
      let la = go a in
      let lb = go b in
      Ir.Binop (Ir.B_and, f64, la, lb)
    | Chart.Bin (Chart.C_or, a, b) ->
      let la = go a in
      let lb = go b in
      Ir.Binop (Ir.B_or, f64, la, lb)
    | Chart.Un (Chart.C_not, a) -> Ir.Unop (Ir.U_not, go a)
    | _ -> read (pop ())
  in
  go guard

(* Chart state tree annotated with the runtime variables of every
   exclusive set (active child index + timer). Parallel regions have
   no variables of their own: all regions run while the parent is
   active, and State_time inside them reads the parent set's timer. *)
type aset = {
  sa_active : Ir.var;
  sa_time : Ir.var;
  sa_init : int;
  sa_states : astate array;
  sa_scope : string;
}

and astate = {
  as_st : Chart.state;
  as_sub : asub;
}

and asub =
  | A_leaf
  | A_exclusive of aset
  | A_parallel of astate array  (* regions: no transitions *)

let lower_chart ctx buf ~path (ch : Chart.t) ~(inputs : Ir.var array) : Ir.var array =
  let name suffix = Printf.sprintf "%s%s_%s" path ch.Chart.chart_name suffix in
  let cv =
    {
      cv_inputs = inputs;
      cv_outputs =
        Array.map (fun (n, ty) -> state_var ctx (name n) ty (Value.zero ty)) ch.Chart.outputs;
      cv_locals =
        Array.map
          (fun (n, ty, init) -> state_var ctx (name n) ty (Value.of_float ty init))
          ch.Chart.locals;
    }
  in
  (* annotate the tree, allocating per-set variables *)
  let set_counter = ref 0 in
  let rec annotate_sub ~scope (st : Chart.state) : asub =
    if Array.length st.Chart.children = 0 then A_leaf
    else if st.Chart.parallel then
      A_parallel
        (Array.map
           (fun c -> { as_st = c; as_sub = annotate_sub ~scope:(scope ^ "." ^ c.Chart.state_name) c })
           st.Chart.children)
    else
      A_exclusive
        (make_set ~scope:(scope ^ "." ^ st.Chart.state_name) st.Chart.children
           ~init:st.Chart.init_child)
  and make_set ~scope states ~init : aset =
    let ix = !set_counter in
    incr set_counter;
    let sa_active =
      state_var ctx (name (Printf.sprintf "state%d" ix)) Dtype.Int32 (Value.of_int Dtype.Int32 init)
    in
    let sa_time = state_var ctx (name (Printf.sprintf "time%d" ix)) Dtype.Int32 (Value.zero Dtype.Int32) in
    {
      sa_active;
      sa_time;
      sa_init = init;
      sa_scope = scope;
      sa_states =
        Array.map
          (fun c -> { as_st = c; as_sub = annotate_sub ~scope:(scope ^ "." ^ c.Chart.state_name) c })
          states;
    }
  in
  let top = make_set ~scope:(path ^ ch.Chart.chart_name) ch.Chart.states ~init:ch.Chart.init_state in
  let lower_action ~time_var = function
    | Chart.Set_local (i, e) -> Ir.Assign (cv.cv_locals.(i), lower_cexpr cv ~time_var e)
    | Chart.Set_out (i, e) -> Ir.Assign (cv.cv_outputs.(i), lower_cexpr cv ~time_var e)
  in
  (* entering a state: its entry actions, then establish its children *)
  let rec enter_state ~time_var (a : astate) =
    List.map (lower_action ~time_var) a.as_st.Chart.entry
    @
    match a.as_sub with
    | A_leaf -> []
    | A_exclusive set ->
      Ir.Assign (set.sa_active, Ir.int_const Dtype.Int32 set.sa_init)
      :: Ir.Assign (set.sa_time, Ir.int_const Dtype.Int32 0)
      :: enter_state ~time_var:set.sa_time set.sa_states.(set.sa_init)
    | A_parallel regions ->
      List.concat_map (enter_state ~time_var) (Array.to_list regions)
  in
  (* exiting: active descendants innermost-first, then own exits *)
  let rec exit_state ~time_var (a : astate) =
    let descendant_exits =
      match a.as_sub with
      | A_leaf -> []
      | A_exclusive set ->
        let n = Array.length set.sa_states in
        let rec dispatch i =
          if i = n - 1 then exit_state ~time_var:set.sa_time set.sa_states.(i)
          else
            [ Ir.If
                {
                  cond = Ir.Binop (Ir.B_eq, f64, read set.sa_active, Ir.int_const Dtype.Int32 i);
                  dec = None;
                  then_ = exit_state ~time_var:set.sa_time set.sa_states.(i);
                  else_ = dispatch (i + 1);
                } ]
        in
        dispatch 0
      | A_parallel regions ->
        List.concat_map (exit_state ~time_var) (List.rev (Array.to_list regions))
    in
    descendant_exits @ List.map (lower_action ~time_var) a.as_st.Chart.exit_actions
  in
  (* one step of the children of a state that did not transition *)
  let rec step_sub ~time_var (sub : asub) =
    match sub with
    | A_leaf -> []
    | A_exclusive set -> step_set set
    | A_parallel regions ->
      List.concat_map
        (fun r -> List.map (lower_action ~time_var) r.as_st.Chart.during @ step_sub ~time_var r.as_sub)
        (Array.to_list regions)
  (* one exclusive set: dispatch, transitions, during, descend *)
  and step_set (set : aset) : Ir.stmt list =
    let nstates = Array.length set.sa_states in
    let dec_act =
      if ctx.mode = Full && nstates > 1 then
        Some
          (new_decision ctx ~block:set.sa_scope ~desc:"chart state activity" ~outcomes:nstates
             ~conds:[])
      else None
    in
    let lower_state s_ix (a : astate) =
      let st = a.as_st in
      let during =
        List.map (lower_action ~time_var:set.sa_time) st.Chart.during
        @ [ Ir.Assign
              ( set.sa_time,
                Ir.Binop (Ir.B_add, Dtype.Int32, read set.sa_time, Ir.int_const Dtype.Int32 1) ) ]
        @ step_sub ~time_var:set.sa_time a.as_sub
      in
      let lower_tr (tr : Chart.transition) else_branch =
        let atoms = chart_atoms tr.Chart.guard in
        let atom_vars =
          List.mapi
            (fun i at ->
              let v =
                fresh_var ctx
                  (Printf.sprintf "%s_g%d_s%d_a%d" (name "guard") !set_counter s_ix i)
                  Dtype.Bool
              in
              (v, at))
            atoms
        in
        let bind_stmts =
          List.map
            (fun (v, at) -> Ir.Assign (v, Ir.truthy (lower_cexpr cv ~time_var:set.sa_time at)))
            atom_vars
        in
        let cond = rebuild_guard (List.map fst atom_vars) tr.Chart.guard in
        let dst = set.sa_states.(tr.Chart.dst) in
        let fire =
          exit_state ~time_var:set.sa_time a
          @ List.map (lower_action ~time_var:set.sa_time) tr.Chart.actions
          @ [ Ir.Assign (set.sa_active, Ir.int_const Dtype.Int32 tr.Chart.dst);
              Ir.Assign (set.sa_time, Ir.int_const Dtype.Int32 0) ]
          @ enter_state ~time_var:set.sa_time dst
        in
        match ctx.mode with
        | Full ->
          let dec =
            new_decision ctx
              ~block:(Printf.sprintf "%s.%s" set.sa_scope st.Chart.state_name)
              ~desc:(Printf.sprintf "transition to %s" dst.as_st.Chart.state_name)
              ~outcomes:2
              ~conds:(List.map Chart.expr_to_string atoms)
          in
          let recorded =
            List.concat (List.mapi (fun i (v, _) -> cond_stmts dec i (read v)) atom_vars)
          in
          bind_stmts @ recorded
          @ [ Ir.If
                {
                  cond;
                  dec = Some dec.Ir.dec_id;
                  then_ = arm dec 0 @ fire;
                  else_ = arm dec 1 @ else_branch;
                } ]
        | Branchless ->
          bind_stmts
          @ [ Ir.If
                { cond; dec = None; then_ = code_arm ctx @ fire; else_ = code_arm ctx @ else_branch }
            ]
        | Plain -> bind_stmts @ [ Ir.If { cond; dec = None; then_ = fire; else_ = else_branch } ]
      in
      let rec chain = function
        | [] -> during
        | tr :: rest -> lower_tr tr (chain rest)
      in
      let body = chain st.Chart.outgoing in
      match dec_act with
      | Some d -> arm d s_ix @ body
      | None -> (match ctx.mode with Branchless -> code_arm ctx @ body | Full | Plain -> body)
    in
    let rec dispatch s_ix =
      if s_ix = nstates - 1 then lower_state s_ix set.sa_states.(s_ix)
      else
        [ Ir.If
            {
              cond = Ir.Binop (Ir.B_eq, f64, read set.sa_active, Ir.int_const Dtype.Int32 s_ix);
              dec = None;
              then_ = lower_state s_ix set.sa_states.(s_ix);
              else_ = dispatch (s_ix + 1);
            } ]
    in
    dispatch 0
  in
  List.iter (emit buf) (step_set top);
  cv.cv_outputs

(* ------------------------------------------------------------------ *)
(* Block lowering                                                      *)
(* ------------------------------------------------------------------ *)

(* Saturation shape shared by the Saturation block and integrator
   limits: three-outcome decision per Fig 4(d). *)
let emit_saturation ctx buf ~block ~lower ~upper ~input ~out ~ty =
  let above, below, within =
    match ctx.mode with
    | Full ->
      let dec = new_decision ctx ~block ~desc:"saturation region" ~outcomes:3 ~conds:[] in
      (arm dec 0, arm dec 1, arm dec 2)
    | Branchless -> (code_arm ctx, code_arm ctx, code_arm ctx)
    | Plain -> ([], [], [])
  in
  let cast_to e = Ir.Unop (Ir.U_cast ty, e) in
  emit buf
    (Ir.If
       {
         cond = Ir.Binop (Ir.B_gt, f64, input, fconst upper);
         dec = None;
         then_ = above @ [ Ir.Assign (out, cast_to (fconst upper)) ];
         else_ =
           [ Ir.If
               {
                 cond = Ir.Binop (Ir.B_lt, f64, input, fconst lower);
                 dec = None;
                 then_ = below @ [ Ir.Assign (out, cast_to (fconst lower)) ];
                 else_ = within @ [ Ir.Assign (out, cast_to input) ];
               } ];
       })

(* A boolean-valued block outcome: two-outcome decision assigning
   true/false to [out], or a branchless assignment. *)
let emit_bool_decision ctx buf ~block ~desc ~conds_exprs ~cond_descs ~cond_combine ~out =
  match ctx.mode with
  | Full ->
    let dec = new_decision ctx ~block ~desc ~outcomes:2 ~conds:cond_descs in
    List.iteri (fun i e -> List.iter (emit buf) (cond_stmts dec i e)) conds_exprs;
    emit buf
      (Ir.If
         {
           cond = cond_combine;
           dec = Some dec.Ir.dec_id;
           then_ = arm dec 0 @ [ Ir.Assign (out, Ir.bool_const true) ];
           else_ = arm dec 1 @ [ Ir.Assign (out, Ir.bool_const false) ];
         })
  | Branchless | Plain ->
    (* jump-free boolean code: no model-level observability *)
    emit buf (Ir.Assign (out, cond_combine))

let rec lower_model ctx buf ~path (m : Graph.t) ~(inputs : Ir.var array) : Ir.var array =
  let types = infer_types m (Array.map (fun (v : Ir.var) -> v.Ir.vty) inputs) in
  let ty_of bid port =
    match Hashtbl.find_opt types (bid, port) with
    | Some ty -> ty
    | None -> Dtype.Float64
  in
  let src_of = Hashtbl.create 64 in
  Array.iter
    (fun (l : Graph.line) ->
      Hashtbl.replace src_of (l.Graph.dst_block, l.Graph.dst_port) (l.Graph.src_block, l.Graph.src_port))
    m.Graph.lines;
  let sigvar : (int * int, Ir.var) Hashtbl.t = Hashtbl.create 64 in
  let in_var bid port =
    match Hashtbl.find_opt src_of (bid, port) with
    | Some key -> (
      match Hashtbl.find_opt sigvar key with
      | Some v -> v
      | None ->
        failwith
          (Printf.sprintf "codegen: %s: signal for block %d port %d not ready (scheduling bug)"
             m.Graph.model_name bid port))
    | None ->
      failwith (Printf.sprintf "codegen: %s: unconnected input %d:%d" m.Graph.model_name bid port)
  in
  let n_outports = Array.length (Graph.outports m) in
  let outs = Array.make (max n_outports 1) None in
  (* Phase A: loop-breaking blocks publish last step's state as their
     output before anything else runs; updates run in phase C. *)
  let deferred_updates : (unit -> unit) list ref = ref [] in
  let defer f = deferred_updates := f :: !deferred_updates in
  Array.iter
    (fun (b : Graph.block) ->
      let bid = b.Graph.bid in
      let bpath = path ^ b.Graph.block_name in
      match b.Graph.kind with
      | Graph.Unit_delay init | Graph.Memory_block init ->
        let ty = ty_of bid 0 in
        let st = state_var ctx (bpath ^ "_state") ty (Value.of_float ty init) in
        Hashtbl.replace sigvar (bid, 0) st;
        defer (fun () -> emit buf (Ir.Assign (st, read (in_var bid 0))))
      | Graph.Delay { delay_length; delay_init } ->
        let ty = ty_of bid 0 in
        let slots =
          Array.init delay_length (fun i ->
              state_var ctx (Printf.sprintf "%s_z%d" bpath i) ty (Value.of_float ty delay_init))
        in
        Hashtbl.replace sigvar (bid, 0) slots.(delay_length - 1);
        defer (fun () ->
            for i = delay_length - 1 downto 1 do
              emit buf (Ir.Assign (slots.(i), read slots.(i - 1)))
            done;
            emit buf (Ir.Assign (slots.(0), read (in_var bid 0))))
      | Graph.Discrete_integrator { int_gain; int_init; limits } ->
        let ty = ty_of bid 0 in
        let st = state_var ctx (bpath ^ "_acc") ty (Value.of_float ty int_init) in
        Hashtbl.replace sigvar (bid, 0) st;
        defer (fun () ->
            let next =
              Ir.Binop
                ( Ir.B_add,
                  ty,
                  read st,
                  Ir.Binop (Ir.B_mul, ty, fconst int_gain, read (in_var bid 0)) )
            in
            match limits with
            | None -> emit buf (Ir.Assign (st, next))
            | Some { Graph.int_lower; int_upper } ->
              let tmp = fresh_var ctx (bpath ^ "_nx") ty in
              emit buf (Ir.Assign (tmp, next));
              emit_saturation ctx buf ~block:bpath ~lower:int_lower ~upper:int_upper
                ~input:(read tmp) ~out:st ~ty)
      | _ -> ())
    m.Graph.blocks;
  (* Phase B: blocks in schedule order. *)
  let order = Cftcg_obs.Trace.with_span "codegen.schedule" (fun () -> Schedule.order_exn m) in
  List.iter
    (fun bid ->
      let b = m.Graph.blocks.(bid) in
      let bpath = path ^ b.Graph.block_name in
      let in_exprs () =
        let nin, _ = Graph.arity b.Graph.kind in
        Array.init nin (fun p -> read (in_var bid p))
      in
      let mk_out port =
        let v = fresh_var ctx (Printf.sprintf "%s_o%d" bpath port) (ty_of bid port) in
        Hashtbl.replace sigvar (bid, port) v;
        v
      in
      let set_out port v = Hashtbl.replace sigvar (bid, port) v in
      match b.Graph.kind with
      | Graph.Unit_delay _ | Graph.Memory_block _ | Graph.Delay _ | Graph.Discrete_integrator _ ->
        ()
      | Graph.Inport { port_index; _ } ->
        let src = inputs.(port_index - 1) in
        let want = ty_of bid 0 in
        if Dtype.equal src.Ir.vty want then Hashtbl.replace sigvar (bid, 0) src
        else begin
          let v = mk_out 0 in
          emit buf (Ir.Assign (v, Ir.Unop (Ir.U_cast want, read src)))
        end
      | Graph.Outport { port_index } ->
        let src = in_var bid 0 in
        let v = fresh_var ctx bpath src.Ir.vty in
        emit buf (Ir.Assign (v, read src));
        if port_index - 1 < Array.length outs then outs.(port_index - 1) <- Some v
      | Graph.Terminator -> ()
      | kind -> lower_block ctx buf ~bpath kind (in_exprs ()) ~mk_out ~set_out ~ty_of_port:(ty_of bid))
    order;
  (* Phase C: state updates. *)
  List.iter (fun f -> f ()) (List.rev !deferred_updates);
  Array.map
    (function
      | Some v -> v
      | None -> failwith (Printf.sprintf "codegen: %s: outport not lowered" m.Graph.model_name))
    (Array.sub outs 0 n_outports)

and lower_block ctx buf ~bpath kind ins ~mk_out ~set_out ~ty_of_port =
  let out () = mk_out 0 in
  let out_ty = ty_of_port 0 in
  match kind with
  | Graph.Inport _ | Graph.Outport _ | Graph.Terminator | Graph.Unit_delay _ | Graph.Delay _
  | Graph.Memory_block _ | Graph.Discrete_integrator _ ->
    assert false (* handled by caller *)
  | Graph.Constant v -> emit buf (Ir.Assign (out (), Ir.Const v))
  | Graph.Ground ty -> emit buf (Ir.Assign (out (), Ir.Const (Value.zero ty)))
  | Graph.Sum signs ->
    let o = out () in
    let acc = ref None in
    String.iteri
      (fun i sign ->
        let operand = ins.(i) in
        acc :=
          Some
            (match (!acc, sign) with
            | None, '+' -> Ir.Unop (Ir.U_cast out_ty, operand)
            | None, _ -> Ir.Binop (Ir.B_sub, out_ty, Ir.int_const out_ty 0, operand)
            | Some a, '+' -> Ir.Binop (Ir.B_add, out_ty, a, operand)
            | Some a, _ -> Ir.Binop (Ir.B_sub, out_ty, a, operand)))
      signs;
    emit buf (Ir.Assign (o, Option.get !acc))
  | Graph.Product ops ->
    let o = out () in
    let acc = ref None in
    String.iteri
      (fun i op ->
        let operand = ins.(i) in
        acc :=
          Some
            (match (!acc, op) with
            | None, '*' -> Ir.Unop (Ir.U_cast out_ty, operand)
            | None, _ -> Ir.Binop (Ir.B_div, out_ty, Ir.int_const out_ty 1, operand)
            | Some a, '*' -> Ir.Binop (Ir.B_mul, out_ty, a, operand)
            | Some a, _ -> Ir.Binop (Ir.B_div, out_ty, a, operand)))
      ops;
    emit buf (Ir.Assign (o, Option.get !acc))
  | Graph.Gain g -> emit buf (Ir.Assign (out (), Ir.Binop (Ir.B_mul, f64, fconst g, ins.(0))))
  | Graph.Bias bv -> emit buf (Ir.Assign (out (), Ir.Binop (Ir.B_add, f64, ins.(0), fconst bv)))
  | Graph.Abs -> (
    match ctx.mode with
    | Full ->
      let dec = new_decision ctx ~block:bpath ~desc:"abs sign" ~outcomes:2 ~conds:[] in
      let o = out () in
      emit buf
        (Ir.If
           {
             cond = Ir.Binop (Ir.B_lt, f64, ins.(0), fconst 0.0);
             dec = Some dec.Ir.dec_id;
             then_ = arm dec 0 @ [ Ir.Assign (o, Ir.Unop (Ir.U_neg, ins.(0))) ];
             else_ = arm dec 1 @ [ Ir.Assign (o, ins.(0)) ];
           })
    | Branchless | Plain -> emit buf (Ir.Assign (out (), Ir.Unop (Ir.U_abs, ins.(0)))))
  | Graph.Unary_minus -> emit buf (Ir.Assign (out (), Ir.Unop (Ir.U_neg, ins.(0))))
  | Graph.Sign_block ->
    let o = out () in
    let pos = Ir.int_const out_ty 1 in
    let zero = Ir.int_const out_ty 0 in
    let neg = Ir.int_const out_ty (-1) in
    let gt = Ir.Binop (Ir.B_gt, f64, ins.(0), fconst 0.0) in
    let lt = Ir.Binop (Ir.B_lt, f64, ins.(0), fconst 0.0) in
    (match ctx.mode with
    | Full ->
      let dec = new_decision ctx ~block:bpath ~desc:"sign region" ~outcomes:3 ~conds:[] in
      emit buf
        (Ir.If
           {
             cond = gt;
             dec = None;
             then_ = arm dec 0 @ [ Ir.Assign (o, pos) ];
             else_ =
               [ Ir.If
                   {
                     cond = lt;
                     dec = None;
                     then_ = arm dec 1 @ [ Ir.Assign (o, neg) ];
                     else_ = arm dec 2 @ [ Ir.Assign (o, zero) ];
                   } ];
           })
    | Branchless | Plain ->
      emit buf (Ir.Assign (o, Ir.Select (gt, pos, Ir.Select (lt, neg, zero)))))
  | Graph.Math_func fn ->
    let e =
      match fn with
      | Graph.F_square -> Ir.Binop (Ir.B_mul, out_ty, ins.(0), ins.(0))
      | Graph.F_reciprocal -> Ir.Binop (Ir.B_div, out_ty, Ir.float_const out_ty 1.0, ins.(0))
      | Graph.F_exp -> Ir.Unop (Ir.U_exp, ins.(0))
      | Graph.F_log -> Ir.Unop (Ir.U_log, ins.(0))
      | Graph.F_log10 -> Ir.Unop (Ir.U_log10, ins.(0))
      | Graph.F_sqrt -> Ir.Unop (Ir.U_sqrt, ins.(0))
      | Graph.F_sin -> Ir.Unop (Ir.U_sin, ins.(0))
      | Graph.F_cos -> Ir.Unop (Ir.U_cos, ins.(0))
    in
    emit buf (Ir.Assign (out (), e))
  | Graph.Rounding mode ->
    let op =
      match mode with
      | Graph.R_floor -> Ir.U_floor
      | Graph.R_ceil -> Ir.U_ceil
      | Graph.R_round -> Ir.U_round
      | Graph.R_fix -> Ir.U_trunc
    in
    emit buf (Ir.Assign (out (), Ir.Unop (op, ins.(0))))
  | Graph.Min_max (op, n) ->
    let binop = match op with Graph.MM_min -> Ir.B_min | Graph.MM_max -> Ir.B_max in
    let acc = ref (Ir.Unop (Ir.U_cast out_ty, ins.(0))) in
    for i = 1 to n - 1 do
      acc := Ir.Binop (binop, out_ty, !acc, ins.(i))
    done;
    emit buf (Ir.Assign (out (), !acc))
  | Graph.Saturation { sat_lower; sat_upper } ->
    emit_saturation ctx buf ~block:bpath ~lower:sat_lower ~upper:sat_upper ~input:ins.(0)
      ~out:(out ()) ~ty:out_ty
  | Graph.Dead_zone { dz_lower; dz_upper } ->
    let o = out () in
    let cast_to e = Ir.Unop (Ir.U_cast out_ty, e) in
    let above = Ir.Binop (Ir.B_gt, f64, ins.(0), fconst dz_upper) in
    let below = Ir.Binop (Ir.B_lt, f64, ins.(0), fconst dz_lower) in
    let shift c = cast_to (Ir.Binop (Ir.B_sub, f64, ins.(0), fconst c)) in
    (match ctx.mode with
    | Full ->
      let dec = new_decision ctx ~block:bpath ~desc:"dead zone region" ~outcomes:3 ~conds:[] in
      emit buf
        (Ir.If
           {
             cond = above;
             dec = None;
             then_ = arm dec 0 @ [ Ir.Assign (o, shift dz_upper) ];
             else_ =
               [ Ir.If
                   {
                     cond = below;
                     dec = None;
                     then_ = arm dec 1 @ [ Ir.Assign (o, shift dz_lower) ];
                     else_ = arm dec 2 @ [ Ir.Assign (o, cast_to (fconst 0.0)) ];
                   } ];
           })
    | Branchless | Plain ->
      emit buf
        (Ir.Assign
           (o, Ir.Select (above, shift dz_upper, Ir.Select (below, shift dz_lower, cast_to (fconst 0.0))))))
  | Graph.Relay { on_point; off_point; on_value; off_value } ->
    let st = state_var ctx (bpath ^ "_on") Dtype.Bool (Value.of_bool false) in
    let o = out () in
    let turn_on = Ir.Binop (Ir.B_ge, f64, ins.(0), fconst on_point) in
    let turn_off = Ir.Binop (Ir.B_le, f64, ins.(0), fconst off_point) in
    (match ctx.mode with
    | Full ->
      let dec = new_decision ctx ~block:bpath ~desc:"relay switching" ~outcomes:3 ~conds:[] in
      emit buf
        (Ir.If
           {
             cond = turn_on;
             dec = None;
             then_ = arm dec 0 @ [ Ir.Assign (st, Ir.bool_const true) ];
             else_ =
               [ Ir.If
                   {
                     cond = turn_off;
                     dec = None;
                     then_ = arm dec 1 @ [ Ir.Assign (st, Ir.bool_const false) ];
                     else_ = arm dec 2;
                   } ];
           })
    | Branchless | Plain ->
      emit buf
        (Ir.Assign
           (st, Ir.Select (turn_on, Ir.bool_const true, Ir.Select (turn_off, Ir.bool_const false, read st)))));
    emit buf (Ir.Assign (o, Ir.Select (read st, fconst on_value, fconst off_value)))
  | Graph.Quantizer q ->
    emit buf
      (Ir.Assign
         ( out (),
           Ir.Binop
             (Ir.B_mul, f64, fconst q, Ir.Unop (Ir.U_round, Ir.Binop (Ir.B_div, f64, ins.(0), fconst q)))
         ))
  | Graph.Rate_limiter { rising; falling } ->
    let o = out () in
    let prev = state_var ctx (bpath ^ "_prev") out_ty (Value.zero out_ty) in
    let tmp = fresh_var ctx (bpath ^ "_delta") f64 in
    emit buf (Ir.Assign (tmp, Ir.Binop (Ir.B_sub, f64, ins.(0), read prev)));
    let cast_to e = Ir.Unop (Ir.U_cast out_ty, e) in
    let up = Ir.Binop (Ir.B_gt, f64, read tmp, fconst rising) in
    let down = Ir.Binop (Ir.B_lt, f64, read tmp, fconst falling) in
    let limited_up = cast_to (Ir.Binop (Ir.B_add, f64, read prev, fconst rising)) in
    let limited_down = cast_to (Ir.Binop (Ir.B_add, f64, read prev, fconst falling)) in
    (match ctx.mode with
    | Full ->
      let dec = new_decision ctx ~block:bpath ~desc:"rate limit region" ~outcomes:3 ~conds:[] in
      emit buf
        (Ir.If
           {
             cond = up;
             dec = None;
             then_ = arm dec 0 @ [ Ir.Assign (o, limited_up) ];
             else_ =
               [ Ir.If
                   {
                     cond = down;
                     dec = None;
                     then_ = arm dec 1 @ [ Ir.Assign (o, limited_down) ];
                     else_ = arm dec 2 @ [ Ir.Assign (o, cast_to ins.(0)) ];
                   } ];
           })
    | Branchless | Plain ->
      emit buf
        (Ir.Assign (o, Ir.Select (up, limited_up, Ir.Select (down, limited_down, cast_to ins.(0))))));
    emit buf (Ir.Assign (prev, read o))
  | Graph.Logic (Graph.L_not, _) ->
    emit buf (Ir.Assign (out (), Ir.Unop (Ir.U_not, Ir.truthy ins.(0))))
  | Graph.Logic (op, n) ->
    let o = out () in
    let cond_vars =
      Array.to_list
        (Array.init n (fun i ->
             let v = fresh_var ctx (Printf.sprintf "%s_c%d" bpath i) Dtype.Bool in
             emit buf (Ir.Assign (v, Ir.truthy ins.(i)));
             v))
    in
    let combined = fold_logic op (List.map read cond_vars) in
    emit_bool_decision ctx buf ~block:bpath ~desc:"logic output"
      ~conds_exprs:(List.map read cond_vars)
      ~cond_descs:(List.mapi (fun i _ -> Printf.sprintf "u%d" (i + 1)) cond_vars)
      ~cond_combine:combined ~out:o
  | Graph.Relational op ->
    let cmp = Ir.Binop (relop_binop op, f64, ins.(0), ins.(1)) in
    emit_bool_decision ctx buf ~block:bpath ~desc:"relational operator" ~conds_exprs:[ cmp ]
      ~cond_descs:[ "u1 op u2" ] ~cond_combine:cmp ~out:(out ())
  | Graph.Compare_to_constant (op, c) ->
    let cmp = Ir.Binop (relop_binop op, f64, ins.(0), fconst c) in
    emit_bool_decision ctx buf ~block:bpath ~desc:"compare to constant" ~conds_exprs:[ cmp ]
      ~cond_descs:[ Printf.sprintf "u1 op %g" c ] ~cond_combine:cmp ~out:(out ())
  | Graph.Compare_to_zero op ->
    let cmp = Ir.Binop (relop_binop op, f64, ins.(0), fconst 0.0) in
    emit_bool_decision ctx buf ~block:bpath ~desc:"compare to zero" ~conds_exprs:[ cmp ]
      ~cond_descs:[ "u1 op 0" ] ~cond_combine:cmp ~out:(out ())
  | Graph.Switch criteria ->
    let o = out () in
    let pred =
      match criteria with
      | Graph.Ge_threshold t -> Ir.Binop (Ir.B_ge, f64, ins.(1), fconst t)
      | Graph.Gt_threshold t -> Ir.Binop (Ir.B_gt, f64, ins.(1), fconst t)
      | Graph.Ne_zero -> Ir.Binop (Ir.B_ne, f64, ins.(1), fconst 0.0)
    in
    let pass1 = Ir.Unop (Ir.U_cast out_ty, ins.(0)) in
    let pass2 = Ir.Unop (Ir.U_cast out_ty, ins.(2)) in
    (match ctx.mode with
    | Full ->
      let dec =
        new_decision ctx ~block:bpath ~desc:"switch criteria" ~outcomes:2 ~conds:[ "control" ]
      in
      List.iter (emit buf) (cond_stmts dec 0 pred);
      emit buf
        (Ir.If
           {
             cond = pred;
             dec = Some dec.Ir.dec_id;
             then_ = arm dec 0 @ [ Ir.Assign (o, pass1) ];
             else_ = arm dec 1 @ [ Ir.Assign (o, pass2) ];
           })
    | Branchless | Plain -> emit buf (Ir.Assign (o, Ir.Select (pred, pass1, pass2))))
  | Graph.Multiport_switch n ->
    let o = out () in
    let sel = ins.(0) in
    let dec =
      match ctx.mode with
      | Full ->
        Some (new_decision ctx ~block:bpath ~desc:"multiport selection" ~outcomes:n ~conds:[])
      | Branchless | Plain -> None
    in
    let case i = Ir.Assign (o, Ir.Unop (Ir.U_cast out_ty, ins.(i + 1))) in
    let arm_of i =
      match dec with
      | Some d -> arm d i
      | None -> (match ctx.mode with Branchless -> code_arm ctx | Full | Plain -> [])
    in
    let rec chain i =
      if i = n - 1 then arm_of i @ [ case i ]
      else
        [ Ir.If
            {
              cond = Ir.Binop (Ir.B_le, f64, sel, fconst (float_of_int (i + 1)));
              dec = (match dec with Some d -> Some d.Ir.dec_id | None -> None);
              then_ = arm_of i @ [ case i ];
              else_ = chain (i + 1);
            } ]
    in
    List.iter (emit buf) (chain 0)
  | Graph.Merge n ->
    let o = out () in
    (* last-writer-wins merge: any input that changed since the
       previous step updates the held value *)
    let held = state_var ctx (bpath ^ "_merged") out_ty (Value.zero out_ty) in
    for i = 0 to n - 1 do
      let prev = state_var ctx (Printf.sprintf "%s_prev%d" bpath i) out_ty (Value.zero out_ty) in
      let cast_in = Ir.Unop (Ir.U_cast out_ty, ins.(i)) in
      emit buf
        (Ir.If
           {
             cond = Ir.Binop (Ir.B_ne, f64, cast_in, read prev);
             dec = None;
             then_ = [ Ir.Assign (held, cast_in); Ir.Assign (prev, cast_in) ];
             else_ = [];
           })
    done;
    emit buf (Ir.Assign (o, read held))
  | Graph.If_block n ->
    let outs = Array.init (n + 1) (fun p -> mk_out p) in
    let cond_vars =
      Array.init n (fun i ->
          let v = fresh_var ctx (Printf.sprintf "%s_c%d" bpath i) Dtype.Bool in
          emit buf (Ir.Assign (v, Ir.truthy ins.(i)));
          v)
    in
    Array.iter (fun o -> emit buf (Ir.Assign (o, Ir.bool_const false))) outs;
    let dec =
      match ctx.mode with
      | Full ->
        Some
          (new_decision ctx ~block:bpath ~desc:"if/elseif/else action" ~outcomes:(n + 1)
             ~conds:(List.init n (fun i -> Printf.sprintf "u%d" (i + 1))))
      | Branchless | Plain -> None
    in
    (match dec with
    | Some d -> Array.iteri (fun i v -> List.iter (emit buf) (cond_stmts d i (read v))) cond_vars
    | None -> ());
    let arm_of i =
      match dec with
      | Some d -> arm d i
      | None -> (match ctx.mode with Branchless -> code_arm ctx | Full | Plain -> [])
    in
    let rec chain i =
      if i = n then arm_of n @ [ Ir.Assign (outs.(n), Ir.bool_const true) ]
      else
        [ Ir.If
            {
              cond = read cond_vars.(i);
              dec = (match dec with Some d -> Some d.Ir.dec_id | None -> None);
              then_ = arm_of i @ [ Ir.Assign (outs.(i), Ir.bool_const true) ];
              else_ = chain (i + 1);
            } ]
    in
    List.iter (emit buf) (chain 0)
  | Graph.Discrete_filter { filt_coeff; filt_init } ->
    let o = out () in
    let prev = state_var ctx (bpath ^ "_y") out_ty (Value.of_float out_ty filt_init) in
    emit buf
      (Ir.Assign
         ( o,
           Ir.Binop
             ( Ir.B_add,
               out_ty,
               Ir.Binop (Ir.B_mul, out_ty, fconst filt_coeff, ins.(0)),
               Ir.Binop (Ir.B_mul, out_ty, fconst (1.0 -. filt_coeff), read prev) ) ));
    emit buf (Ir.Assign (prev, read o))
  | Graph.Counter { count_init; count_max; count_wrap } ->
    let o = out () in
    let st = state_var ctx (bpath ^ "_count") Dtype.Int32 (Value.of_int Dtype.Int32 count_init) in
    let inc = Ir.Binop (Ir.B_add, Dtype.Int32, read st, Ir.int_const Dtype.Int32 1) in
    let over = Ir.Binop (Ir.B_gt, f64, read st, fconst (float_of_int count_max)) in
    let limit_stmt =
      if count_wrap then Ir.Assign (st, Ir.int_const Dtype.Int32 0)
      else Ir.Assign (st, Ir.int_const Dtype.Int32 count_max)
    in
    (match ctx.mode with
    | Full ->
      let dec_en = new_decision ctx ~block:bpath ~desc:"counter enable" ~outcomes:2 ~conds:[] in
      let dec_lim = new_decision ctx ~block:bpath ~desc:"counter limit" ~outcomes:2 ~conds:[] in
      emit buf
        (Ir.If
           {
             cond = Ir.truthy ins.(0);
             dec = Some dec_en.Ir.dec_id;
             then_ = arm dec_en 0 @ [ Ir.Assign (st, inc) ];
             else_ = arm dec_en 1;
           });
      emit buf
        (Ir.If
           {
             cond = over;
             dec = Some dec_lim.Ir.dec_id;
             then_ = arm dec_lim 0 @ [ limit_stmt ];
             else_ = arm dec_lim 1;
           })
    | Branchless | Plain ->
      emit buf
        (Ir.If
           {
             cond = Ir.truthy ins.(0);
             dec = None;
             then_ =
               (match ctx.mode with Branchless -> code_arm ctx | Full | Plain -> [])
               @ [ Ir.Assign (st, inc) ];
             else_ = [];
           });
      emit buf (Ir.If { cond = over; dec = None; then_ = [ limit_stmt ]; else_ = [] }));
    emit buf (Ir.Assign (o, read st))
  | Graph.Edge_detect kind ->
    let o = out () in
    let prev = state_var ctx (bpath ^ "_prev") Dtype.Bool (Value.of_bool false) in
    let curr = fresh_var ctx (bpath ^ "_curr") Dtype.Bool in
    emit buf (Ir.Assign (curr, Ir.truthy ins.(0)));
    let cond = edge_cond kind ~curr:(read curr) ~prev:(read prev) in
    (match ctx.mode with
    | Full ->
      let dec = new_decision ctx ~block:bpath ~desc:"edge detect" ~outcomes:2 ~conds:[] in
      emit buf
        (Ir.If
           {
             cond;
             dec = Some dec.Ir.dec_id;
             then_ = arm dec 0 @ [ Ir.Assign (o, Ir.bool_const true) ];
             else_ = arm dec 1 @ [ Ir.Assign (o, Ir.bool_const false) ];
           })
    | Branchless | Plain -> emit buf (Ir.Assign (o, cond)));
    emit buf (Ir.Assign (prev, read curr))
  | Graph.Lookup_1d { lut_xs; lut_ys } ->
    let o = out () in
    let n = Array.length lut_xs in
    let u = fresh_var ctx (bpath ^ "_u") f64 in
    emit buf (Ir.Assign (u, Ir.Unop (Ir.U_cast f64, ins.(0))));
    (* table coverage: one cell per interpolation interval *)
    let interval_cells =
      match ctx.mode with
      | Full ->
        let cells = Array.init (n + 1) (fun _ -> alloc_probe ctx) in
        ctx.rev_lookups <- (bpath, cells) :: ctx.rev_lookups;
        Some cells
      | Branchless | Plain -> None
    in
    let interval_probe i =
      match interval_cells with
      | Some cells -> [ Ir.Probe cells.(i) ]
      | None -> []
    in
    let interp i =
      let x0 = lut_xs.(i - 1) and x1 = lut_xs.(i) in
      let y0 = lut_ys.(i - 1) and y1 = lut_ys.(i) in
      let slope = (y1 -. y0) /. (x1 -. x0) in
      Ir.Unop
        ( Ir.U_cast out_ty,
          Ir.Binop
            ( Ir.B_add,
              f64,
              fconst y0,
              Ir.Binop (Ir.B_mul, f64, fconst slope, Ir.Binop (Ir.B_sub, f64, read u, fconst x0)) )
        )
    in
    let rec segments i =
      if i = n - 1 then interval_probe i @ [ Ir.Assign (o, interp i) ]
      else
        [ Ir.If
            {
              cond = Ir.Binop (Ir.B_le, f64, read u, fconst lut_xs.(i));
              dec = None;
              then_ = interval_probe i @ [ Ir.Assign (o, interp i) ];
              else_ = segments (i + 1);
            } ]
    in
    let low_arm, high_arm, interior_arm =
      match ctx.mode with
      | Full ->
        let dec = new_decision ctx ~block:bpath ~desc:"lookup region" ~outcomes:3 ~conds:[] in
        (arm dec 0, arm dec 1, arm dec 2)
      | Branchless -> (code_arm ctx, code_arm ctx, code_arm ctx)
      | Plain -> ([], [], [])
    in
    emit buf
      (Ir.If
         {
           cond = Ir.Binop (Ir.B_le, f64, read u, fconst lut_xs.(0));
           dec = None;
           then_ =
             interval_probe 0 @ low_arm
             @ [ Ir.Assign (o, Ir.Unop (Ir.U_cast out_ty, fconst lut_ys.(0))) ];
           else_ =
             [ Ir.If
                 {
                   cond = Ir.Binop (Ir.B_ge, f64, read u, fconst lut_xs.(n - 1));
                   dec = None;
                   then_ =
                     interval_probe n @ high_arm
                     @ [ Ir.Assign (o, Ir.Unop (Ir.U_cast out_ty, fconst lut_ys.(n - 1))) ];
                   else_ = interior_arm @ segments 1;
                 } ];
         })
  | Graph.Data_type_conversion ty ->
    emit buf (Ir.Assign (out (), Ir.Unop (Ir.U_cast ty, ins.(0))))
  | Graph.Assertion msg ->
    (* violation fires a dedicated probe cell in every build mode:
       assertions are runtime checks, not coverage instrumentation *)
    let cell = alloc_probe ctx in
    ctx.rev_assertions <- (cell, Printf.sprintf "%s: %s" bpath msg) :: ctx.rev_assertions;
    emit buf
      (Ir.If
         {
           cond = Ir.Unop (Ir.U_not, Ir.truthy ins.(0));
           dec = None;
           then_ = [ Ir.Probe cell ];
           else_ = [];
         })
  | Graph.Chart_block ch ->
    let in_vars =
      Array.mapi
        (fun i (n, ty) ->
          let v = fresh_var ctx (Printf.sprintf "%s_%s" bpath n) ty in
          emit buf (Ir.Assign (v, ins.(i)));
          v)
        ch.Chart.inputs
    in
    let outs = lower_chart ctx buf ~path:(bpath ^ "/") ch ~inputs:in_vars in
    Array.iteri set_out outs
  | Graph.Subsystem { sub; activation } ->
    let data_inputs off =
      Array.mapi
        (fun i (n, ty) ->
          let v = fresh_var ctx (Printf.sprintf "%s_%s" bpath n) ty in
          emit buf (Ir.Assign (v, ins.(i + off)));
          v)
        (Graph.inports sub)
    in
    (match activation with
    | Graph.Always ->
      let outs = lower_model ctx buf ~path:(bpath ^ "/") sub ~inputs:(data_inputs 0) in
      Array.iteri set_out outs
    | Graph.Enabled | Graph.Triggered _ ->
      let guard_expr, after_guard =
        match activation with
        | Graph.Enabled -> (Ir.truthy ins.(0), fun () -> ())
        | Graph.Triggered kind ->
          let prev = state_var ctx (bpath ^ "_trigprev") Dtype.Bool (Value.of_bool false) in
          let curr = fresh_var ctx (bpath ^ "_trig") Dtype.Bool in
          emit buf (Ir.Assign (curr, Ir.truthy ins.(0)));
          ( edge_cond kind ~curr:(read curr) ~prev:(read prev),
            fun () -> emit buf (Ir.Assign (prev, read curr)) )
        | Graph.Always -> assert false
      in
      let sub_buf = ref [] in
      let outs = lower_model ctx sub_buf ~path:(bpath ^ "/") sub ~inputs:(data_inputs 1) in
      let body = flush sub_buf in
      (match ctx.mode with
      | Full ->
        let dec =
          new_decision ctx ~block:bpath
            ~desc:
              (match activation with
              | Graph.Enabled -> "subsystem enable"
              | Graph.Triggered _ | Graph.Always -> "subsystem trigger")
            ~outcomes:2 ~conds:[ "activation" ]
        in
        List.iter (emit buf) (cond_stmts dec 0 guard_expr);
        emit buf
          (Ir.If
             {
               cond = guard_expr;
               dec = Some dec.Ir.dec_id;
               then_ = arm dec 0 @ body;
               else_ = arm dec 1;
             })
      | Branchless ->
        emit buf
          (Ir.If { cond = guard_expr; dec = None; then_ = code_arm ctx @ body; else_ = code_arm ctx })
      | Plain -> emit buf (Ir.If { cond = guard_expr; dec = None; then_ = body; else_ = [] }));
      after_guard ();
      Array.iteri set_out outs)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let lower ?(mode = Full) (m : Graph.t) : Ir.program =
  Cftcg_obs.Trace.with_span "codegen.lower" @@ fun () ->
  (match Graph.validate m with
  | Ok () -> ()
  | Error msg -> failwith ("Codegen.lower: " ^ msg));
  let ctx =
    { mode; n_vars = 0; rev_states = []; rev_init = []; rev_decs = []; n_decs = 0; n_probes = 0;
      rev_assertions = []; rev_lookups = [] }
  in
  let inports = Graph.inports m in
  let inputs = Array.map (fun (n, ty) -> fresh_var ctx n ty) inports in
  let buf = ref [] in
  let outputs = lower_model ctx buf ~path:"" m ~inputs in
  let prog =
    {
      Ir.prog_name = m.Graph.model_name;
      n_vars = ctx.n_vars;
      inputs;
      outputs;
      states = Array.of_list (List.rev ctx.rev_states);
      init = List.rev ctx.rev_init;
      step = flush buf;
      n_probes = ctx.n_probes;
      decisions = Array.of_list (List.rev ctx.rev_decs);
      assertions = Array.of_list (List.rev ctx.rev_assertions);
      lookup_tables = Array.of_list (List.rev ctx.rev_lookups);
    }
  in
  match Ir.validate prog with
  | Ok () -> prog
  | Error msg -> failwith ("Codegen.lower: generated invalid IR: " ^ msg)
