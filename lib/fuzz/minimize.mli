(** Test suite minimization (LibFuzzer's corpus merge, for suites).

    A fuzzing campaign emits one test case per new-coverage event,
    which leaves redundancy: later cases often subsume earlier ones.
    Minimization greedily re-selects a subset that preserves the flat
    probe coverage of the whole suite, preferring short test cases —
    the suite a tester would actually archive. *)

open Cftcg_ir

type stats = {
  kept : int;
  dropped : int;
  probes_covered : int;
}

val suite : ?max_tuples:int -> Ir.program -> Bytes.t list -> Bytes.t list * stats
(** [suite prog cases] returns a subset with identical flat-probe
    coverage. Greedy by ascending length, keeping a case only when it
    lights at least one probe the kept set has not. Order of the
    result is by ascending length. *)
