(** Fuzz driver field layout (paper §3.1.1, "data segmentation").

    A test case is a raw byte stream. Each model iteration consumes
    one {e tuple}: the concatenated little-endian encodings of every
    top-level inport, in port order. The layout records each field's
    offset and dtype so mutations can stay field-aligned and the
    driver can split the stream exactly as Figure 3's generated C
    does. *)

open Cftcg_model
open Cftcg_ir

type field = {
  f_name : string;
  f_ty : Dtype.t;
  f_offset : int;  (** byte offset within a tuple *)
  f_range : (float * float) option;
      (** optional tester-specified value range (paper §5: "ask the
          testers to specify the value ranges for inports"); fresh
          values and mutations are clamped into it *)
}

type t = {
  fields : field array;
  tuple_len : int;  (** bytes per model iteration *)
  int_fields : int array;
      (** indices of non-float fields, precomputed for
          {!Mutate.change_integer}-style candidate picks *)
  float_fields : int array;  (** indices of float fields *)
}

val of_inports : (string * Dtype.t) array -> t

val of_program : Ir.program -> t

val with_ranges : t -> (string * float * float) list -> t
(** Attaches [(port name, lo, hi)] ranges. Unknown names are ignored;
    an inverted range raises [Invalid_argument]. *)

val clamp_field : t -> field:int -> Value.t -> Value.t
(** Clamps a value into the field's range (identity without one). *)

val n_tuples : t -> Bytes.t -> int
(** Complete tuples in a stream; trailing bytes that cannot fill
    every port are discarded (paper §3.1.1). *)

val field_value : t -> Bytes.t -> tuple:int -> field:int -> Value.t
(** Decode one field of one tuple. *)

val set_field : t -> Bytes.t -> tuple:int -> field:int -> Value.t -> unit

val load_tuple : t -> Bytes.t -> tuple:int -> Ir_compile.t -> unit
(** Fast path: decode tuple [tuple] directly into the compiled
    program's input store. *)

val load_tuple_vm : t -> Bytes.t -> tuple:int -> Ir_vm.t -> unit
(** Same fast path for the bytecode VM backend. *)

val load_tuple_bvm : t -> Bytes.t -> tuple:int -> Ir_vm_batch.t -> lane:int -> unit
(** Same fast path into one lane of the batched lockstep VM. *)

val load_tuple_values : t -> Bytes.t -> tuple:int -> Value.t array
(** Boxed decode, for the reference evaluator and CSV output. *)

val random_tuple_bytes : t -> Cftcg_util.Rng.t -> Bytes.t
(** A fresh random tuple. Integer fields are biased toward small
    magnitudes (embedded-controller inputs are rarely uniform over
    the full 32-bit range); floats toward moderate values, with
    occasional extreme bytes. *)
