open Cftcg_ir
module Rng = Cftcg_util.Rng
module Fault = Cftcg_util.Fault
module Metrics = Cftcg_obs.Metrics
module Trace = Cftcg_obs.Trace
module Series = Cftcg_obs.Series

type backend =
  | Closures
  | Vm

type config = {
  seed : int64;
  max_tuples : int;
  corpus_cap : int;
  field_aware : bool;
  iteration_metric : bool;
  ranges : (string * float * float) list;
  seeds : Bytes.t list;
  use_dictionary : bool;
  backend : backend;
  optimize : bool;
}

let default_config =
  { seed = 1L; max_tuples = 256; corpus_cap = 256; field_aware = true; iteration_metric = true;
    ranges = []; seeds = []; use_dictionary = true; backend = Vm; optimize = true }

type budget =
  | Time_budget of float
  | Exec_budget of int
  | Wall_budget of { max_execs : int; max_seconds : float }

type test_case = {
  tc_data : Bytes.t;
  tc_time : float;
  tc_new_probes : int;
}

type failure = {
  f_data : Bytes.t;
  f_time : float;
  f_message : string;
}

type stats = {
  executions : int;
  iterations : int;
  elapsed : float;
  corpus_size : int;
  probes_covered : int;
  probes_total : int;
}

type result = {
  test_suite : test_case list;
  failures : failure list;
  stats : stats;
}

type entry = {
  data : Bytes.t;
  score : int;
}

(* Corpus score: inputs that found new coverage dominate; among the
   rest, the iteration-difference metric *per iteration* ranks them
   (the raw metric grows with input length, which would bias the
   corpus toward long oscillating inputs and stall exploration). *)
let entry_score ~fresh ~metric ~iters =
  let norm_metric = if iters = 0 then 0 else metric * 8 / iters in
  (100 * min fresh 20) + min norm_metric 200

(* Executes one input through the fuzz driver: Algorithm 1.
   [g_total] is the campaign-global coverage array; returns
   (iteration-difference metric, newly covered probe count,
   iterations executed). *)
let run_one ~layout ~compiled ~curr ~last ~g_total ~max_tuples ~use_metric ~fresh_cells data =
  let n_probes = Bytes.length g_total in
  let n = min (Layout.n_tuples layout data) max_tuples in
  Ir_compile.reset compiled;
  Bytes.fill last 0 n_probes '\000';
  let metric = ref 0 in
  let fresh = ref 0 in
  for tuple = 0 to n - 1 do
    Bytes.fill curr 0 n_probes '\000';
    Layout.load_tuple layout data ~tuple compiled;
    Ir_compile.step compiled;
    for i = 0 to n_probes - 1 do
      let c = Bytes.unsafe_get curr i in
      if c <> '\000' && Bytes.unsafe_get g_total i = '\000' then begin
        Bytes.unsafe_set g_total i '\001';
        incr fresh;
        fresh_cells := i :: !fresh_cells
      end;
      if use_metric && c <> Bytes.unsafe_get last i then incr metric
    done;
    Bytes.blit curr 0 last 0 n_probes
  done;
  (!metric, !fresh, n)

(* VM-backend fuzz driver: same algorithm, but probe coverage arrives
   as a dirty list, so per-tuple cost is proportional to probes
   *fired*, not [n_probes]. Double-buffers two probe records ([pa],
   [pb]) so the iteration-difference metric is the symmetric
   difference of consecutive steps' dirty lists. Both buffers must be
   empty on entry; they are left empty on return. *)
let run_one_vm ~layout ~vm ~pa ~pb ~g_total ~max_tuples ~use_metric ~fresh_cells data =
  let n = min (Layout.n_tuples layout data) max_tuples in
  Ir_vm.set_probes vm pa;
  Ir_vm.reset vm;
  (* init-block probes are warm-up, not coverage — the closure driver
     discards them the same way *)
  Ir_vm.clear_probes pa;
  let curr = ref pa in
  let last = ref pb in
  let metric = ref 0 in
  let fresh = ref 0 in
  for tuple = 0 to n - 1 do
    let c = !curr in
    let l = !last in
    Ir_vm.set_probes vm c;
    Layout.load_tuple_vm layout data ~tuple vm;
    Ir_vm.step vm;
    for k = 0 to c.Ir_vm.p_n - 1 do
      let id = Array.unsafe_get c.Ir_vm.p_dirty k in
      if Bytes.unsafe_get g_total id = '\000' then begin
        Bytes.unsafe_set g_total id '\001';
        incr fresh;
        fresh_cells := id :: !fresh_cells
      end;
      if use_metric && Bytes.unsafe_get l.Ir_vm.p_fired id = '\000' then incr metric
    done;
    if use_metric then
      for k = 0 to l.Ir_vm.p_n - 1 do
        if Bytes.unsafe_get c.Ir_vm.p_fired (Array.unsafe_get l.Ir_vm.p_dirty k) = '\000' then
          incr metric
      done;
    Ir_vm.clear_probes l;
    curr := l;
    last := c
  done;
  Ir_vm.clear_probes !last;
  (!metric, !fresh, n)

(* Builds the per-input execution function for the configured
   backend; each returns (metric, fresh, iterations). *)
let make_executor ?(optimize = true) ~backend ~layout ~(prog : Ir.program) ~g_total ~max_tuples
    ~use_metric =
  match backend with
  | Vm ->
    let vm = Ir_vm.compile ~optimize prog in
    let pa = Ir_vm.probes vm in
    let pb = Ir_vm.fresh_probes vm in
    fun ~fresh_cells data ->
      run_one_vm ~layout ~vm ~pa ~pb ~g_total ~max_tuples ~use_metric ~fresh_cells data
  | Closures ->
    let n_probes = Bytes.length g_total in
    let curr = Bytes.make n_probes '\000' in
    let last = Bytes.make n_probes '\000' in
    let hooks = Hooks.probes_only (fun id -> Bytes.unsafe_set curr id '\001') in
    let compiled = Ir_compile.compile ~hooks prog in
    fun ~fresh_cells data ->
      run_one ~layout ~compiled ~curr ~last ~g_total ~max_tuples ~use_metric ~fresh_cells data

let count_covered g_total =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) g_total;
  !n

(* Corpus selection: 2-way tournament biased to the higher score;
   shorter inputs win ties (LibFuzzer's small-input preference).
   [n] is the fill count — only the first [n] slots are live. *)
let select_entry rng corpus n =
  let a = corpus.(Rng.int rng n) in
  let b = corpus.(Rng.int rng n) in
  let hi, lo =
    if a.score > b.score || (a.score = b.score && Bytes.length a.data <= Bytes.length b.data)
    then (a, b)
    else (b, a)
  in
  if Rng.int rng 10 < 8 then hi else lo

(* Handles for the fuzzing loop's metrics, created once per run so the
   hot loop only ever touches Atomic counters. All of this is behind
   [Metrics.collecting]: with collection off the loop pays a single
   boolean load and none of these exist. *)
type obs_handles = {
  ob_picked : Metrics.counter array;  (* per Mutate.strategy, picked *)
  ob_new_cov : Metrics.counter array;  (* ... found new coverage *)
  ob_kept : Metrics.counter array;  (* ... admitted to the corpus *)
  ob_executions : Metrics.counter;
  ob_iterations : Metrics.counter;
  ob_execs_per_s : Metrics.gauge;
  ob_covered : Metrics.gauge;
  ob_corpus : Metrics.gauge;
  ob_schedule_ns : Metrics.histogram;  (* parent selection + mutation *)
  ob_exec_ns : Metrics.histogram;  (* one input through the backend *)
  ob_metric_ns : Metrics.histogram;  (* scoring + corpus admission *)
}

let make_obs_handles () =
  let per_strategy name help =
    Array.map
      (fun s -> Metrics.counter ~help ~labels:[ ("strategy", Mutate.strategy_name s) ] name)
      Mutate.all_strategies
  in
  {
    ob_picked = per_strategy "cftcg_fuzz_strategy_picked_total" "Mutations applied per strategy";
    ob_new_cov =
      per_strategy "cftcg_fuzz_strategy_new_coverage_total"
        "Mutations that lit a previously-unseen probe, per strategy";
    ob_kept =
      per_strategy "cftcg_fuzz_strategy_kept_total"
        "Mutations whose result entered the corpus, per strategy";
    ob_executions =
      Metrics.counter ~help:"Inputs executed by the fuzzing loop" "cftcg_fuzz_executions_total";
    ob_iterations =
      Metrics.counter ~help:"Model iterations executed" "cftcg_fuzz_iterations_total";
    ob_execs_per_s =
      Metrics.gauge ~help:"Recent fuzzing throughput (wall clock)" "cftcg_fuzz_execs_per_second";
    ob_covered = Metrics.gauge ~help:"Probe cells covered" "cftcg_fuzz_probes_covered";
    ob_corpus = Metrics.gauge ~help:"Live corpus entries" "cftcg_fuzz_corpus_size";
    ob_schedule_ns =
      Metrics.histogram ~help:"Corpus scheduling + mutation time per input (ns, sampled)"
        "cftcg_fuzz_schedule_ns";
    ob_exec_ns =
      Metrics.histogram ~help:"Backend execution time per input (ns, sampled)"
        "cftcg_fuzz_exec_ns";
    ob_metric_ns =
      Metrics.histogram ~help:"Metric scoring + corpus admission time per input (ns, sampled)"
        "cftcg_fuzz_metric_ns";
  }

(* hot loops sample timing histograms on every [sample_mask + 1]-th
   execution: cheap enough to leave on, dense enough to be useful *)
let sample_mask = 255

(* sleep per fired Exec_stall fault — long enough that a handful of
   stalls trips a sub-second wall deadline, short enough that armed
   test runs stay fast *)
let exec_stall_seconds = 0.002

let run ?(config = default_config) ?(on_test_case = fun _ -> ()) ?(on_progress = fun _ -> ())
    ?(progress_every = 1024) ?(should_stop = fun () -> false) ?coverage_series
    (prog : Ir.program) budget =
  Trace.with_span "fuzzer.run" @@ fun () ->
  let layout = Layout.with_ranges (Layout.of_program prog) config.ranges in
  if layout.Layout.tuple_len = 0 then invalid_arg "Fuzzer.run: model has no inports";
  let observing = Metrics.collecting () in
  let obs = if observing then Some (make_obs_handles ()) else None in
  let rng = Rng.create config.seed in
  let n_probes = max prog.Ir.n_probes 1 in
  let g_total = Bytes.make n_probes '\000' in
  let run_input =
    Trace.with_span "fuzzer.compile" @@ fun () ->
    make_executor ~optimize:config.optimize ~backend:config.backend ~layout ~prog ~g_total
      ~max_tuples:config.max_tuples ~use_metric:config.iteration_metric
  in
  let dict = if config.use_dictionary then Some (Dictionary.of_program prog) else None in
  let start = Unix.gettimeofday () in
  let deadline_execs, deadline_time =
    match budget with
    | Time_budget s -> (max_int, start +. s)
    | Exec_budget n -> (n, Float.infinity)
    | Wall_budget { max_execs; max_seconds } -> (max_execs, start +. max_seconds)
  in
  (* preallocated to corpus_cap: admission is O(1) until the cap,
     then O(n) eviction of the worst entry — never Array.append *)
  let corpus = Array.make (max config.corpus_cap 0) { data = Bytes.empty; score = 0 } in
  let corpus_n = ref 0 in
  let suite = ref [] in
  let failures = ref [] in
  let executions = ref 0 in
  let iterations = ref 0 in
  (* Exec-budget runs use a virtual clock (the execution index) so
     same-seed runs are byte-identical, timestamps included; wall
     clock is only read under a time budget. Wall_budget stays on the
     virtual clock too — its wall deadline bounds the run but never
     feeds timestamps, so runs the deadline does not cut short are
     byte-identical to the plain Exec_budget run. *)
  let elapsed_now () =
    match budget with
    | Exec_budget _ | Wall_budget _ -> float_of_int !executions
    | Time_budget _ -> Unix.gettimeofday () -. start
  in
  let snapshot () =
    {
      executions = !executions;
      iterations = !iterations;
      elapsed = elapsed_now ();
      corpus_size = !corpus_n;
      probes_covered = count_covered g_total;
      probes_total = prog.Ir.n_probes;
    }
  in
  let assertion_message = Hashtbl.create 4 in
  Array.iter (fun (cell, msg) -> Hashtbl.replace assertion_message cell msg) prog.Ir.assertions;
  let fresh_cells = ref [] in
  let add_to_corpus e =
    if !corpus_n < Array.length corpus then begin
      corpus.(!corpus_n) <- e;
      incr corpus_n
    end
    else if Array.length corpus > 0 then begin
      (* evict the lowest-score entry *)
      let worst = ref 0 in
      for i = 1 to !corpus_n - 1 do
        if corpus.(i).score < corpus.(!worst).score then worst := i
      done;
      if corpus.(!worst).score <= e.score then corpus.(!worst) <- e
    end
  in
  (* running covered count (= popcount of g_total), maintained for the
     coverage series and gauges without rescanning the byte array *)
  let covered_run = ref 0 in
  (* out-params of [execute]; refs instead of a returned tuple so the hot
     loop does not allocate per execution *)
  let last_fresh = ref 0 in
  let last_kept = ref false in
  let execute data =
    fresh_cells := [];
    (* sampled timings: every [sample_mask+1]-th execution reads the
       clock around the backend call and the scoring/admission tail *)
    let timed = observing && !executions land sample_mask = 0 in
    let t0 = if timed then Unix.gettimeofday () else 0.0 in
    let metric, fresh, iters = run_input ~fresh_cells data in
    let t1 = if timed then Unix.gettimeofday () else 0.0 in
    incr executions;
    iterations := !iterations + iters;
    covered_run := !covered_run + fresh;
    let at_progress = !executions mod progress_every = 0 in
    (match obs with
    | Some ob when at_progress ->
      let wall = Unix.gettimeofday () -. start in
      Metrics.set ob.ob_execs_per_s (float_of_int !executions /. Float.max wall 1e-9);
      Metrics.set ob.ob_covered (float_of_int !covered_run);
      Metrics.set ob.ob_corpus (float_of_int !corpus_n)
    | _ -> ());
    if at_progress then on_progress (snapshot ());
    if fresh > 0 then begin
      let now = elapsed_now () in
      (match coverage_series with
      | Some s -> Series.record s ~time:now ~execs:!executions ~covered:!covered_run
      | None -> ());
      let tc = { tc_data = data; tc_time = now; tc_new_probes = fresh } in
      suite := tc :: !suite;
      on_test_case tc;
      (* assertion cells firing for the first time are failures *)
      List.iter
        (fun cell ->
          match Hashtbl.find_opt assertion_message cell with
          | Some msg -> failures := { f_data = data; f_time = now; f_message = msg } :: !failures
          | None -> ())
        !fresh_cells
    end;
    (* interesting inputs enter the corpus: new coverage always,
       otherwise a high per-iteration difference metric *)
    let score = entry_score ~fresh ~metric:(if config.iteration_metric then metric else 0) ~iters in
    let interesting =
      fresh > 0
      || (config.iteration_metric && score > 0
         &&
         (!corpus_n < 8
         ||
         let best = ref 0 in
         for i = 0 to !corpus_n - 1 do
           if corpus.(i).score > !best then best := corpus.(i).score
         done;
         score > !best / 2))
    in
    if interesting then add_to_corpus { data; score };
    (match obs with
    | Some ob when timed ->
      let t2 = Unix.gettimeofday () in
      Metrics.observe ob.ob_exec_ns ((t1 -. t0) *. 1e9);
      Metrics.observe ob.ob_metric_ns ((t2 -. t1) *. 1e9)
    | _ -> ());
    last_fresh := fresh;
    last_kept := interesting
  in
  (* user-provided seed corpus first, then a handful of random short
     streams *)
  Trace.with_span "fuzzer.seed_corpus" (fun () ->
      List.iter execute config.seeds;
      for _ = 1 to 4 do
        let tuples = 1 + Rng.int rng 8 in
        let data =
          Bytes.concat Bytes.empty
            (List.init tuples (fun _ -> Layout.random_tuple_bytes layout rng))
        in
        execute data
      done);
  let max_len = config.max_tuples * layout.Layout.tuple_len in
  (* strategy chosen for the current iteration, -1 when mutating blind;
     an int ref avoids a per-iteration [Some strategy] allocation *)
  let strat_ix = ref (-1) in
  let should_continue () =
    !executions < deadline_execs
    && ((not (Float.is_finite deadline_time)) || Unix.gettimeofday () < deadline_time)
    && not (should_stop ())
  in
  while should_continue () do
    (* fault injection: a stalled target is simulated by sleeping, so
       wall-deadline shutdown is testable; one atomic load when off *)
    if Fault.fire Fault.Exec_stall then Unix.sleepf exec_stall_seconds;
    let timed = observing && !executions land sample_mask = 0 in
    let t0 = if timed then Unix.gettimeofday () else 0.0 in
    let parent =
      if !corpus_n = 0 then { data = Layout.random_tuple_bytes layout rng; score = 0 }
      else select_entry rng corpus !corpus_n
    in
    let other = if !corpus_n = 0 then parent.data else (select_entry rng corpus !corpus_n).data in
    let child =
      if config.field_aware then begin
        let s, c = Mutate.mutate ?dict layout rng parent.data ~other ~max_tuples:config.max_tuples in
        strat_ix := Mutate.strategy_index s;
        c
      end
      else begin
        strat_ix := -1;
        Mutate.mutate_blind rng parent.data ~other ~max_len
      end
    in
    (match obs with
    | Some ob when timed ->
      Metrics.observe ob.ob_schedule_ns ((Unix.gettimeofday () -. t0) *. 1e9)
    | _ -> ());
    execute child;
    match obs with
    | Some ob when !strat_ix >= 0 ->
      let ix = !strat_ix in
      Metrics.inc ob.ob_picked.(ix);
      if !last_fresh > 0 then Metrics.inc ob.ob_new_cov.(ix);
      if !last_kept then Metrics.inc ob.ob_kept.(ix)
    | _ -> ()
  done;
  (match obs with
  | Some ob ->
    Metrics.add ob.ob_executions !executions;
    Metrics.add ob.ob_iterations !iterations;
    let wall = Unix.gettimeofday () -. start in
    Metrics.set ob.ob_execs_per_s (float_of_int !executions /. Float.max wall 1e-9);
    Metrics.set ob.ob_covered (float_of_int !covered_run);
    Metrics.set ob.ob_corpus (float_of_int !corpus_n)
  | None -> ());
  (match coverage_series with
  | Some s -> Series.record s ~time:(elapsed_now ()) ~execs:!executions ~covered:!covered_run
  | None -> ());
  { test_suite = List.rev !suite; failures = List.rev !failures; stats = snapshot () }

let replay_metric ?(config = default_config) (prog : Ir.program) data =
  let layout = Layout.of_program prog in
  let g_total = Bytes.make (max prog.Ir.n_probes 1) '\000' in
  let run_input =
    make_executor ~optimize:config.optimize ~backend:config.backend ~layout ~prog ~g_total
      ~max_tuples:config.max_tuples ~use_metric:true
  in
  let metric, _, _ = run_input ~fresh_cells:(ref []) data in
  metric
