open Cftcg_ir
module Rng = Cftcg_util.Rng
module Fault = Cftcg_util.Fault
module Metrics = Cftcg_obs.Metrics
module Trace = Cftcg_obs.Trace
module Log = Cftcg_obs.Log
module Series = Cftcg_obs.Series

type backend =
  | Closures
  | Vm

type config = {
  seed : int64;
  max_tuples : int;
  corpus_cap : int;
  field_aware : bool;
  iteration_metric : bool;
  ranges : (string * float * float) list;
  seeds : Bytes.t list;
  use_dictionary : bool;
  backend : backend;
  optimize : bool;
  batch : int;
}

(* Children are drafted in fixed-size generations regardless of the
   batch width, so campaigns are byte-identical across batch settings
   (see the scheduler below); [draft_size] caps the useful batch. *)
let draft_size = 16

let default_config =
  { seed = 1L; max_tuples = 256; corpus_cap = 256; field_aware = true; iteration_metric = true;
    ranges = []; seeds = []; use_dictionary = true; backend = Vm; optimize = true; batch = 8 }

type budget =
  | Time_budget of float
  | Exec_budget of int
  | Wall_budget of { max_execs : int; max_seconds : float }

type test_case = {
  tc_data : Bytes.t;
  tc_time : float;
  tc_new_probes : int;
}

type failure = {
  f_data : Bytes.t;
  f_time : float;
  f_message : string;
}

type stats = {
  executions : int;
  iterations : int;
  elapsed : float;
  corpus_size : int;
  probes_covered : int;
  probes_total : int;
}

type result = {
  test_suite : test_case list;
  failures : failure list;
  stats : stats;
}

type entry = {
  data : Bytes.t;
  score : int;
}

(* Corpus score: inputs that found new coverage dominate; among the
   rest, the iteration-difference metric *per iteration* ranks them
   (the raw metric grows with input length, which would bias the
   corpus toward long oscillating inputs and stall exploration). *)
let entry_score ~fresh ~metric ~iters =
  let norm_metric = if iters = 0 then 0 else metric * 8 / iters in
  (100 * min fresh 20) + min norm_metric 200

(* Executes one input through the fuzz driver: Algorithm 1.
   [g_total] is the campaign-global coverage array; returns
   (iteration-difference metric, newly covered probe count,
   iterations executed). *)
let run_one ~layout ~compiled ~curr ~last ~g_total ~max_tuples ~use_metric ~fresh_cells data =
  let n_probes = Bytes.length g_total in
  let n = min (Layout.n_tuples layout data) max_tuples in
  Ir_compile.reset compiled;
  Bytes.fill last 0 n_probes '\000';
  let metric = ref 0 in
  let fresh = ref 0 in
  for tuple = 0 to n - 1 do
    Bytes.fill curr 0 n_probes '\000';
    Layout.load_tuple layout data ~tuple compiled;
    Ir_compile.step compiled;
    for i = 0 to n_probes - 1 do
      let c = Bytes.unsafe_get curr i in
      if c <> '\000' && Bytes.unsafe_get g_total i = '\000' then begin
        Bytes.unsafe_set g_total i '\001';
        incr fresh;
        fresh_cells := i :: !fresh_cells
      end;
      if use_metric && c <> Bytes.unsafe_get last i then incr metric
    done;
    Bytes.blit curr 0 last 0 n_probes
  done;
  (!metric, !fresh, n)

(* VM-backend fuzz driver: same algorithm, but probe coverage arrives
   as a dirty list, so per-tuple cost is proportional to probes
   *fired*, not [n_probes]. Double-buffers two probe records ([pa],
   [pb]) so the iteration-difference metric is the symmetric
   difference of consecutive steps' dirty lists. Both buffers must be
   empty on entry; they are left empty on return. *)
let run_one_vm ~layout ~vm ~pa ~pb ~g_total ~max_tuples ~use_metric ~fresh_cells data =
  let n = min (Layout.n_tuples layout data) max_tuples in
  Ir_vm.set_probes vm pa;
  Ir_vm.reset vm;
  (* init-block probes are warm-up, not coverage — the closure driver
     discards them the same way *)
  Ir_vm.clear_probes pa;
  let curr = ref pa in
  let last = ref pb in
  let metric = ref 0 in
  let fresh = ref 0 in
  for tuple = 0 to n - 1 do
    let c = !curr in
    let l = !last in
    Ir_vm.set_probes vm c;
    Layout.load_tuple_vm layout data ~tuple vm;
    Ir_vm.step vm;
    for k = 0 to c.Ir_vm.p_n - 1 do
      let id = Array.unsafe_get c.Ir_vm.p_dirty k in
      if Bytes.unsafe_get g_total id = '\000' then begin
        Bytes.unsafe_set g_total id '\001';
        incr fresh;
        fresh_cells := id :: !fresh_cells
      end;
      if use_metric && Bytes.unsafe_get l.Ir_vm.p_fired id = '\000' then incr metric
    done;
    if use_metric then
      for k = 0 to l.Ir_vm.p_n - 1 do
        if Bytes.unsafe_get c.Ir_vm.p_fired (Array.unsafe_get l.Ir_vm.p_dirty k) = '\000' then
          incr metric
      done;
    Ir_vm.clear_probes l;
    curr := l;
    last := c
  done;
  Ir_vm.clear_probes !last;
  (!metric, !fresh, n)

(* Builds the per-input execution function for the configured
   backend; each returns (metric, fresh, iterations). *)
let make_executor ?(optimize = true) ~backend ~layout ~(prog : Ir.program) ~g_total ~max_tuples
    ~use_metric () =
  (* the trailing [()] makes the one-time compile happen at this
     application even when [?optimize] is omitted — otherwise OCaml
     defers optional-argument discharge (and this whole body) to the
     first positional application, i.e. to every input *)
  match backend with
  | Vm ->
    let vm = Ir_vm.compile ~optimize prog in
    let pa = Ir_vm.probes vm in
    let pb = Ir_vm.fresh_probes vm in
    fun ~fresh_cells data ->
      run_one_vm ~layout ~vm ~pa ~pb ~g_total ~max_tuples ~use_metric ~fresh_cells data
  | Closures ->
    let n_probes = Bytes.length g_total in
    let curr = Bytes.make n_probes '\000' in
    let last = Bytes.make n_probes '\000' in
    let hooks = Hooks.probes_only (fun id -> Bytes.unsafe_set curr id '\001') in
    let compiled = Ir_compile.compile ~hooks prog in
    fun ~fresh_cells data ->
      run_one ~layout ~compiled ~curr ~last ~g_total ~max_tuples ~use_metric ~fresh_cells data

(* ------------------------------------------------------------------ *)
(* Batched execution                                                   *)
(* ------------------------------------------------------------------ *)

(* State for the K-lane chunk executor. [bx_pa]/[bx_pb] double-buffer
   consecutive tuples' fired sets per lane, as [run_one_vm] does with
   the scalar buffers — the iteration-difference metric is their
   per-lane symmetric difference, which only depends on the lane's own
   stream and so can be computed during batched execution. [bx_acc]
   is a detached buffer serving as a per-lane ordered distinct-fire
   accumulator: fresh coverage depends on the campaign-global
   [g_total], so it cannot be accounted while K inputs run
   interleaved; instead the caller replays each lane's accumulator
   against [g_total] in draft order after the chunk, which reproduces
   the sequential run's fresh counts, cell discovery order and
   [g_total] evolution exactly. That replay is what keeps same-seed
   campaigns byte-identical across batch widths. *)
type batch_exec = {
  bx_vm : Ir_vm_batch.t;
  bx_pa : Ir_vm_batch.probes;
  bx_pb : Ir_vm_batch.probes;
  bx_acc : Ir_vm_batch.probes;
  bx_metric : int array;  (* per lane *)
  bx_iters : int array;  (* per lane *)
  bx_lane_of : int array;  (* chunk draft index -> lane *)
}

let make_batch_exec ~optimize ~k prog =
  let bvm = Ir_vm_batch.compile ~optimize ~k prog in
  {
    bx_vm = bvm;
    bx_pa = Ir_vm_batch.probes bvm;
    bx_pb = Ir_vm_batch.fresh_probes bvm;
    bx_acc = Ir_vm_batch.fresh_probes bvm;
    bx_metric = Array.make k 0;
    bx_iters = Array.make k 0;
    bx_lane_of = Array.make k 0;
  }

(* Executes [children.(off .. off+m-1)] through the K-lane VM in
   lockstep. Longer inputs are assigned to lower lanes so the set of
   still-running lanes is always a prefix and partial tuples can use
   [step ~lanes]. Fills [bx_metric] / [bx_iters] / [bx_acc] per lane;
   [bx_lane_of] maps chunk draft order back to lanes for the caller's
   accounting replay. Leaves all probe buffers except [bx_acc] clean. *)
let run_chunk bx ~layout ~max_tuples ~use_metric (children : Bytes.t array) ~off m =
  let bvm = bx.bx_vm in
  let kk = Ir_vm_batch.k bvm in
  let n_of =
    Array.init m (fun d -> min (Layout.n_tuples layout children.(off + d)) max_tuples)
  in
  let order = Array.init m (fun d -> d) in
  Array.sort
    (fun a b -> if n_of.(a) <> n_of.(b) then compare n_of.(b) n_of.(a) else compare a b)
    order;
  for lane = 0 to m - 1 do
    bx.bx_lane_of.(order.(lane)) <- lane;
    bx.bx_metric.(lane) <- 0;
    bx.bx_iters.(lane) <- n_of.(order.(lane))
  done;
  Ir_vm_batch.set_probes bvm bx.bx_pa;
  Ir_vm_batch.reset ~lanes:m bvm;
  (* init-block probes are warm-up, not coverage (as in run_one_vm) *)
  Ir_vm_batch.clear_probes bx.bx_pa;
  let max_n = Array.fold_left max 0 n_of in
  let curr = ref bx.bx_pa in
  let last = ref bx.bx_pb in
  for tuple = 0 to max_n - 1 do
    let live = ref 0 in
    while !live < m && n_of.(order.(!live)) > tuple do
      incr live
    done;
    let live = !live in
    let c = !curr in
    let l = !last in
    Ir_vm_batch.set_probes bvm c;
    for lane = 0 to live - 1 do
      Layout.load_tuple_bvm layout children.(off + order.(lane)) ~tuple bvm ~lane
    done;
    Ir_vm_batch.step ~lanes:live bvm;
    for lane = 0 to live - 1 do
      let cd = Array.unsafe_get c.Ir_vm_batch.bp_dirty lane in
      let cn = Array.unsafe_get c.Ir_vm_batch.bp_n lane in
      let metric = ref 0 in
      for j = 0 to cn - 1 do
        let id = Array.unsafe_get cd j in
        if use_metric && Bytes.unsafe_get l.Ir_vm_batch.bp_fired ((id * kk) + lane) = '\000'
        then incr metric;
        Ir_vm_batch.record bx.bx_acc ~lane id
      done;
      if use_metric then begin
        let ld = Array.unsafe_get l.Ir_vm_batch.bp_dirty lane in
        for j = 0 to Array.unsafe_get l.Ir_vm_batch.bp_n lane - 1 do
          if
            Bytes.unsafe_get c.Ir_vm_batch.bp_fired ((Array.unsafe_get ld j * kk) + lane)
            = '\000'
          then incr metric
        done
      end;
      bx.bx_metric.(lane) <- bx.bx_metric.(lane) + !metric;
      Ir_vm_batch.clear_lane l ~lane
    done;
    curr := l;
    last := c
  done;
  (* lanes that ended early still hold their final tuple's fires *)
  for lane = 0 to m - 1 do
    Ir_vm_batch.clear_lane bx.bx_pa ~lane;
    Ir_vm_batch.clear_lane bx.bx_pb ~lane
  done

(* Batched counterpart of [make_executor], exposed for benchmarks and
   tooling: executes up to [k] inputs in lockstep per call with the
   same coverage accounting a campaign performs (iteration metric,
   fresh-coverage replay against [g_total] in draft order) and
   returns the summed (metric, fresh, iterations). *)
let make_batch_executor ?(optimize = true) ~k ~layout ~(prog : Ir.program) ~g_total ~max_tuples
    ~use_metric () =
  (* the trailing [()] pins the compile here: without it a partial
     application that omits [?optimize] would defer the whole body —
     including [Ir_vm_batch.compile] — to every per-call positional
     application *)
  let bx = make_batch_exec ~optimize ~k prog in
  fun (children : Bytes.t array) ->
    let n = Array.length children in
    if n > k then invalid_arg "Fuzzer.make_batch_executor: more inputs than lanes";
    run_chunk bx ~layout ~max_tuples ~use_metric children ~off:0 n;
    let metric = ref 0 in
    let fresh = ref 0 in
    let iters = ref 0 in
    let acc = bx.bx_acc in
    for d = 0 to n - 1 do
      let lane = bx.bx_lane_of.(d) in
      let ad = acc.Ir_vm_batch.bp_dirty.(lane) in
      for j = 0 to acc.Ir_vm_batch.bp_n.(lane) - 1 do
        let id = Array.unsafe_get ad j in
        if Bytes.unsafe_get g_total id = '\000' then begin
          Bytes.unsafe_set g_total id '\001';
          incr fresh
        end
      done;
      metric := !metric + bx.bx_metric.(lane);
      iters := !iters + bx.bx_iters.(lane);
      Ir_vm_batch.clear_lane acc ~lane
    done;
    (!metric, !fresh, !iters)

let count_covered g_total =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) g_total;
  !n

(* Corpus selection: 2-way tournament biased to the higher score;
   shorter inputs win ties (LibFuzzer's small-input preference).
   [n] is the fill count — only the first [n] slots are live. *)
let select_entry rng corpus n =
  let a = corpus.(Rng.int rng n) in
  let b = corpus.(Rng.int rng n) in
  let hi, lo =
    if a.score > b.score || (a.score = b.score && Bytes.length a.data <= Bytes.length b.data)
    then (a, b)
    else (b, a)
  in
  if Rng.int rng 10 < 8 then hi else lo

(* Handles for the fuzzing loop's metrics, created once per run so the
   hot loop only ever touches Atomic counters. All of this is behind
   [Metrics.collecting]: with collection off the loop pays a single
   boolean load and none of these exist. *)
type obs_handles = {
  ob_picked : Metrics.counter array;  (* per Mutate.strategy, picked *)
  ob_new_cov : Metrics.counter array;  (* ... found new coverage *)
  ob_kept : Metrics.counter array;  (* ... admitted to the corpus *)
  ob_executions : Metrics.counter;
  ob_iterations : Metrics.counter;
  ob_execs_per_s : Metrics.gauge;
  ob_covered : Metrics.gauge;
  ob_corpus : Metrics.gauge;
  ob_schedule_ns : Metrics.histogram;  (* parent selection + mutation *)
  ob_exec_ns : Metrics.histogram;  (* one input through the backend *)
  ob_metric_ns : Metrics.histogram;  (* scoring + corpus admission *)
}

let make_obs_handles () =
  let per_strategy name help =
    Array.map
      (fun s -> Metrics.counter ~help ~labels:[ ("strategy", Mutate.strategy_name s) ] name)
      Mutate.all_strategies
  in
  {
    ob_picked = per_strategy "cftcg_fuzz_strategy_picked_total" "Mutations applied per strategy";
    ob_new_cov =
      per_strategy "cftcg_fuzz_strategy_new_coverage_total"
        "Mutations that lit a previously-unseen probe, per strategy";
    ob_kept =
      per_strategy "cftcg_fuzz_strategy_kept_total"
        "Mutations whose result entered the corpus, per strategy";
    ob_executions =
      Metrics.counter ~help:"Inputs executed by the fuzzing loop" "cftcg_fuzz_executions_total";
    ob_iterations =
      Metrics.counter ~help:"Model iterations executed" "cftcg_fuzz_iterations_total";
    ob_execs_per_s =
      Metrics.gauge ~help:"Recent fuzzing throughput (wall clock)" "cftcg_fuzz_execs_per_second";
    ob_covered = Metrics.gauge ~help:"Probe cells covered" "cftcg_fuzz_probes_covered";
    ob_corpus = Metrics.gauge ~help:"Live corpus entries" "cftcg_fuzz_corpus_size";
    ob_schedule_ns =
      Metrics.histogram ~help:"Corpus scheduling + mutation time per input (ns, sampled)"
        "cftcg_fuzz_schedule_ns";
    ob_exec_ns =
      Metrics.histogram ~help:"Backend execution time per input (ns, sampled)"
        "cftcg_fuzz_exec_ns";
    ob_metric_ns =
      Metrics.histogram ~help:"Metric scoring + corpus admission time per input (ns, sampled)"
        "cftcg_fuzz_metric_ns";
  }

(* hot loops sample timing histograms on every [sample_mask + 1]-th
   execution: cheap enough to leave on, dense enough to be useful *)
let sample_mask = 255

(* sleep per fired Exec_stall fault — long enough that a handful of
   stalls trips a sub-second wall deadline, short enough that armed
   test runs stay fast *)
let exec_stall_seconds = 0.002

(* Process-global batched-VM health counters, snapshotted into
   post-mortem dumps: how many runs abandoned lockstep for the scalar
   executor, and the divergence totals that drove those decisions. *)
let batch_fallbacks_total = Atomic.make 0
let batch_divergence_total = Atomic.make 0
let batch_runs_total = Atomic.make 0

let () =
  Cftcg_obs.Flight.register_provider "ir_vm_batch" (fun () ->
      Printf.sprintf
        "{\"batch_runs\":%d,\"scalar_fallbacks\":%d,\"divergence_total\":%d}"
        (Atomic.get batch_runs_total)
        (Atomic.get batch_fallbacks_total)
        (Atomic.get batch_divergence_total))

let run ?(config = default_config) ?(on_test_case = fun _ -> ()) ?(on_progress = fun _ -> ())
    ?(progress_every = 1024) ?(should_stop = fun () -> false) ?coverage_series
    (prog : Ir.program) budget =
  Trace.with_span "fuzzer.run" @@ fun () ->
  let layout = Layout.with_ranges (Layout.of_program prog) config.ranges in
  if layout.Layout.tuple_len = 0 then invalid_arg "Fuzzer.run: model has no inports";
  let observing = Metrics.collecting () in
  let obs = if observing then Some (make_obs_handles ()) else None in
  let rng = Rng.create config.seed in
  let n_probes = max prog.Ir.n_probes 1 in
  let g_total = Bytes.make n_probes '\000' in
  (* Effective lane count: the batched lockstep VM serves the Vm
     backend when [batch > 1]; Closures always runs scalar. Capped at
     [draft_size] — a generation can never fill more lanes than it
     drafts. *)
  let batch_k =
    match config.backend with
    | Vm -> max 1 (min config.batch draft_size)
    | Closures -> 1
  in
  let make_seq () =
    `Seq
      (make_executor ~optimize:config.optimize ~backend:config.backend ~layout ~prog ~g_total
         ~max_tuples:config.max_tuples ~use_metric:config.iteration_metric ())
  in
  (* Lockstep execution only pays off when lanes mostly agree on
     branches; on branch-heavy models the split handling costs more
     than the amortized dispatch saves. The executor therefore starts
     batched and watches the VM's divergence counters — a pure
     function of the seed, so the decision is deterministic — and
     drops to the scalar executor for the rest of the campaign once
     splits exceed one per [batch_k] model steps. Either way the
     campaign transcript is byte-identical: batching and the fallback
     only change throughput. *)
  let executor =
    ref
      (Trace.with_span "fuzzer.compile" @@ fun () ->
       if batch_k > 1 then `Batch (make_batch_exec ~optimize:config.optimize ~k:batch_k prog)
       else make_seq ())
  in
  let divergence_decided = ref (batch_k <= 1) in
  if batch_k > 1 then Atomic.incr batch_runs_total;
  Log.debug "fuzzer run start: seed %Ld, batch %d" config.seed batch_k;
  let dict = if config.use_dictionary then Some (Dictionary.of_program prog) else None in
  let start = Unix.gettimeofday () in
  let deadline_execs, deadline_time =
    match budget with
    | Time_budget s -> (max_int, start +. s)
    | Exec_budget n -> (n, Float.infinity)
    | Wall_budget { max_execs; max_seconds } -> (max_execs, start +. max_seconds)
  in
  (* preallocated to corpus_cap: admission is O(1) until the cap,
     then O(n) eviction of the worst entry — never Array.append *)
  let corpus = Array.make (max config.corpus_cap 0) { data = Bytes.empty; score = 0 } in
  let corpus_n = ref 0 in
  let suite = ref [] in
  let failures = ref [] in
  let executions = ref 0 in
  let iterations = ref 0 in
  (* Exec-budget runs use a virtual clock (the execution index) so
     same-seed runs are byte-identical, timestamps included; wall
     clock is only read under a time budget. Wall_budget stays on the
     virtual clock too — its wall deadline bounds the run but never
     feeds timestamps, so runs the deadline does not cut short are
     byte-identical to the plain Exec_budget run. *)
  let elapsed_now () =
    match budget with
    | Exec_budget _ | Wall_budget _ -> float_of_int !executions
    | Time_budget _ -> Unix.gettimeofday () -. start
  in
  let snapshot () =
    {
      executions = !executions;
      iterations = !iterations;
      elapsed = elapsed_now ();
      corpus_size = !corpus_n;
      probes_covered = count_covered g_total;
      probes_total = prog.Ir.n_probes;
    }
  in
  let assertion_message = Hashtbl.create 4 in
  Array.iter (fun (cell, msg) -> Hashtbl.replace assertion_message cell msg) prog.Ir.assertions;
  let fresh_cells = ref [] in
  let add_to_corpus e =
    if !corpus_n < Array.length corpus then begin
      corpus.(!corpus_n) <- e;
      incr corpus_n
    end
    else if Array.length corpus > 0 then begin
      (* evict the lowest-score entry *)
      let worst = ref 0 in
      for i = 1 to !corpus_n - 1 do
        if corpus.(i).score < corpus.(!worst).score then worst := i
      done;
      if corpus.(!worst).score <= e.score then corpus.(!worst) <- e
    end
  in
  (* running covered count (= popcount of g_total), maintained for the
     coverage series and gauges without rescanning the byte array *)
  let covered_run = ref 0 in
  (* Accounting for one executed input — everything downstream of the
     backend call: counters, suite and failure capture, corpus
     admission, per-strategy attribution. Shared by the scalar path
     and the batched path's replay so the two produce byte-identical
     campaigns. [fresh_cells] must hold the input's newly-covered
     cells, latest first. [strat] is the mutation strategy index, -1
     for seeds and blind mutation. *)
  let account data ~metric ~fresh ~iters ~strat =
    incr executions;
    iterations := !iterations + iters;
    covered_run := !covered_run + fresh;
    let at_progress = !executions mod progress_every = 0 in
    (match obs with
    | Some ob when at_progress ->
      let wall = Unix.gettimeofday () -. start in
      Metrics.set ob.ob_execs_per_s (float_of_int !executions /. Float.max wall 1e-9);
      Metrics.set ob.ob_covered (float_of_int !covered_run);
      Metrics.set ob.ob_corpus (float_of_int !corpus_n)
    | _ -> ());
    if at_progress then on_progress (snapshot ());
    if fresh > 0 then begin
      let now = elapsed_now () in
      (match coverage_series with
      | Some s -> Series.record s ~time:now ~execs:!executions ~covered:!covered_run
      | None -> ());
      let tc = { tc_data = data; tc_time = now; tc_new_probes = fresh } in
      suite := tc :: !suite;
      on_test_case tc;
      (* assertion cells firing for the first time are failures *)
      List.iter
        (fun cell ->
          match Hashtbl.find_opt assertion_message cell with
          | Some msg -> failures := { f_data = data; f_time = now; f_message = msg } :: !failures
          | None -> ())
        !fresh_cells
    end;
    (* interesting inputs enter the corpus: new coverage always,
       otherwise a high per-iteration difference metric *)
    let score = entry_score ~fresh ~metric:(if config.iteration_metric then metric else 0) ~iters in
    let interesting =
      fresh > 0
      || (config.iteration_metric && score > 0
         &&
         (!corpus_n < 8
         ||
         let best = ref 0 in
         for i = 0 to !corpus_n - 1 do
           if corpus.(i).score > !best then best := corpus.(i).score
         done;
         score > !best / 2))
    in
    if interesting then add_to_corpus { data; score };
    match obs with
    | Some ob when strat >= 0 ->
      Metrics.inc ob.ob_picked.(strat);
      if fresh > 0 then Metrics.inc ob.ob_new_cov.(strat);
      if interesting then Metrics.inc ob.ob_kept.(strat)
    | _ -> ()
  in
  (* scalar path: one input straight through the sequential executor *)
  let execute_seq run_input ~strat data =
    fresh_cells := [];
    (* sampled timings: every [sample_mask+1]-th execution reads the
       clock around the backend call and the scoring/admission tail *)
    let timed = observing && !executions land sample_mask = 0 in
    let t0 = if timed then Unix.gettimeofday () else 0.0 in
    let metric, fresh, iters = run_input ~fresh_cells data in
    let t1 = if timed then Unix.gettimeofday () else 0.0 in
    account data ~metric ~fresh ~iters ~strat;
    match obs with
    | Some ob when timed ->
      let t2 = Unix.gettimeofday () in
      Metrics.observe ob.ob_exec_ns ((t1 -. t0) *. 1e9);
      Metrics.observe ob.ob_metric_ns ((t2 -. t1) *. 1e9)
    | _ -> ()
  in
  (* Runs [children.(0 .. n-1)] (strategy indices alongside in
     [strats]) through the configured executor. The batched path cuts
     the draft into K-lane chunks, runs each chunk in lockstep, then
     replays every lane's accumulated coverage against [g_total] in
     draft order — see [run_chunk] for why that replay makes the
     campaign transcript independent of the batch width. Sampled exec
     timings divide the chunk's wall time by its width so the
     histogram stays per-input comparable across batch settings —
     amortized dispatch shows up as a lower per-input cost, which is
     the quantity of interest. *)
  let process children strats n =
    (match !executor with
    | `Seq run_input ->
      for d = 0 to n - 1 do
        execute_seq run_input ~strat:strats.(d) children.(d)
      done
    | `Batch bx ->
      let pos = ref 0 in
      while !pos < n do
        let m = min batch_k (n - !pos) in
        (* timed iff one of the chunk's execution indices lands on the
           sample grid, matching the scalar path's sampling density *)
        let r = !executions land sample_mask in
        let timed = observing && (sample_mask + 1 - r) land sample_mask < m in
        let t0 = if timed then Unix.gettimeofday () else 0.0 in
        run_chunk bx ~layout ~max_tuples:config.max_tuples ~use_metric:config.iteration_metric
          children ~off:!pos m;
        let t1 = if timed then Unix.gettimeofday () else 0.0 in
        let acc = bx.bx_acc in
        for d = 0 to m - 1 do
          let lane = bx.bx_lane_of.(d) in
          fresh_cells := [];
          let fresh = ref 0 in
          let ad = acc.Ir_vm_batch.bp_dirty.(lane) in
          for j = 0 to acc.Ir_vm_batch.bp_n.(lane) - 1 do
            let id = Array.unsafe_get ad j in
            if Bytes.unsafe_get g_total id = '\000' then begin
              Bytes.unsafe_set g_total id '\001';
              incr fresh;
              fresh_cells := id :: !fresh_cells
            end
          done;
          account
            children.(!pos + d)
            ~metric:bx.bx_metric.(lane) ~fresh:!fresh ~iters:bx.bx_iters.(lane)
            ~strat:strats.(!pos + d)
        done;
        for lane = 0 to m - 1 do
          Ir_vm_batch.clear_lane acc ~lane
        done;
        (match obs with
        | Some ob when timed ->
          let t2 = Unix.gettimeofday () in
          let fm = float_of_int m in
          Metrics.observe ob.ob_exec_ns ((t1 -. t0) *. 1e9 /. fm);
          Metrics.observe ob.ob_metric_ns ((t2 -. t1) *. 1e9 /. fm)
        | _ -> ());
        pos := !pos + m
      done);
    match !executor with
    | `Batch bx when (not !divergence_decided) && !iterations >= 256 ->
      divergence_decided := true;
      let dv = Ir_vm_batch.total_divergence bx.bx_vm in
      if dv * batch_k > !iterations then begin
        (* the batch VM is dropped here, so bank its divergence total
           now; runs that stay batched bank theirs at run end *)
        ignore (Atomic.fetch_and_add batch_divergence_total dv);
        Atomic.incr batch_fallbacks_total;
        Log.info "batch fallback to scalar: %d splits over %d iterations (k=%d)" dv
          !iterations batch_k;
        executor := make_seq ()
      end
    | _ -> ()
  in
  (* User-provided seed corpus first, then a handful of random short
     streams, processed as one draft. Execution consumes no
     randomness, so drawing the random streams upfront leaves the RNG
     stream identical to drawing each just before its run. *)
  Trace.with_span "fuzzer.seed_corpus" (fun () ->
      let seeds = Array.of_list config.seeds in
      let randoms =
        Array.init 4 (fun _ ->
            let tuples = 1 + Rng.int rng 8 in
            Bytes.concat Bytes.empty
              (List.init tuples (fun _ -> Layout.random_tuple_bytes layout rng)))
      in
      let all = Array.append seeds randoms in
      (* The seed draft respects the exec budget like the main loop
         does: a campaign's redistributed corpus (solver-injected
         seeds included) can be larger than a small scheduler grant,
         and the accounting that charges tenants per epoch assumes
         the budget is never overshot. Clipping changes only how many
         seeds run, never the RNG stream — the random streams were
         drawn above either way. *)
      let n = min (Array.length all) (max 0 (deadline_execs - !executions)) in
      process all (Array.make (Array.length all) (-1)) n);
  let max_len = config.max_tuples * layout.Layout.tuple_len in
  let should_continue () =
    !executions < deadline_execs
    && ((not (Float.is_finite deadline_time)) || Unix.gettimeofday () < deadline_time)
    && not (should_stop ())
  in
  (* Main loop: children are drafted in generations of [draft_size]
     against a corpus frozen for the generation, then executed and
     accounted in draft order. Drafting consumes the RNG identically
     whatever the batch width and execution consumes none, so the
     campaign transcript is a function of the seed alone — batch=1
     and batch=K runs are byte-identical. The generation is clipped
     to the remaining exec budget so Exec_budget runs stop on exactly
     the same input as before. *)
  let draft = Array.make draft_size Bytes.empty in
  let draft_strat = Array.make draft_size (-1) in
  while should_continue () do
    let gen = min draft_size (deadline_execs - !executions) in
    for d = 0 to gen - 1 do
      (* fault injection: a stalled target is simulated by sleeping, so
         wall-deadline shutdown is testable; one atomic load when off *)
      if Fault.fire Fault.Exec_stall then Unix.sleepf exec_stall_seconds;
      let timed = observing && (!executions + d) land sample_mask = 0 in
      let t0 = if timed then Unix.gettimeofday () else 0.0 in
      let parent =
        if !corpus_n = 0 then { data = Layout.random_tuple_bytes layout rng; score = 0 }
        else select_entry rng corpus !corpus_n
      in
      let other = if !corpus_n = 0 then parent.data else (select_entry rng corpus !corpus_n).data in
      (if config.field_aware then begin
         let s, c =
           Mutate.mutate ?dict layout rng parent.data ~other ~max_tuples:config.max_tuples
         in
         draft_strat.(d) <- Mutate.strategy_index s;
         draft.(d) <- c
       end
       else begin
         draft_strat.(d) <- -1;
         draft.(d) <- Mutate.mutate_blind rng parent.data ~other ~max_len
       end);
      match obs with
      | Some ob when timed ->
        Metrics.observe ob.ob_schedule_ns ((Unix.gettimeofday () -. t0) *. 1e9)
      | _ -> ()
    done;
    process draft draft_strat gen
  done;
  (match obs with
  | Some ob ->
    Metrics.add ob.ob_executions !executions;
    Metrics.add ob.ob_iterations !iterations;
    let wall = Unix.gettimeofday () -. start in
    Metrics.set ob.ob_execs_per_s (float_of_int !executions /. Float.max wall 1e-9);
    Metrics.set ob.ob_covered (float_of_int !covered_run);
    Metrics.set ob.ob_corpus (float_of_int !corpus_n)
  | None -> ());
  (match coverage_series with
  | Some s -> Series.record s ~time:(elapsed_now ()) ~execs:!executions ~covered:!covered_run
  | None -> ());
  (match !executor with
  | `Batch bx when batch_k > 1 ->
    ignore (Atomic.fetch_and_add batch_divergence_total (Ir_vm_batch.total_divergence bx.bx_vm))
  | _ -> ());
  Log.debug "fuzzer run done: %d execs, %d/%d probes, corpus %d" !executions !covered_run
    prog.Ir.n_probes !corpus_n;
  { test_suite = List.rev !suite; failures = List.rev !failures; stats = snapshot () }

let replay_metric ?(config = default_config) (prog : Ir.program) data =
  let layout = Layout.of_program prog in
  let g_total = Bytes.make (max prog.Ir.n_probes 1) '\000' in
  let run_input =
    make_executor ~optimize:config.optimize ~backend:config.backend ~layout ~prog ~g_total
      ~max_tuples:config.max_tuples ~use_metric:true ()
  in
  let metric, _, _ = run_input ~fresh_cells:(ref []) data in
  metric
