open Cftcg_ir
module Rng = Cftcg_util.Rng

type config = {
  seed : int64;
  max_tuples : int;
  corpus_cap : int;
  field_aware : bool;
  iteration_metric : bool;
  ranges : (string * float * float) list;
  seeds : Bytes.t list;
  use_dictionary : bool;
}

let default_config =
  { seed = 1L; max_tuples = 256; corpus_cap = 256; field_aware = true; iteration_metric = true;
    ranges = []; seeds = []; use_dictionary = true }

type budget =
  | Time_budget of float
  | Exec_budget of int

type test_case = {
  tc_data : Bytes.t;
  tc_time : float;
  tc_new_probes : int;
}

type failure = {
  f_data : Bytes.t;
  f_time : float;
  f_message : string;
}

type stats = {
  executions : int;
  iterations : int;
  elapsed : float;
  corpus_size : int;
  probes_covered : int;
  probes_total : int;
}

type result = {
  test_suite : test_case list;
  failures : failure list;
  stats : stats;
}

type entry = {
  data : Bytes.t;
  score : int;
}

(* Corpus score: inputs that found new coverage dominate; among the
   rest, the iteration-difference metric *per iteration* ranks them
   (the raw metric grows with input length, which would bias the
   corpus toward long oscillating inputs and stall exploration). *)
let entry_score ~fresh ~metric ~iters =
  let norm_metric = if iters = 0 then 0 else metric * 8 / iters in
  (100 * min fresh 20) + min norm_metric 200

(* Executes one input through the fuzz driver: Algorithm 1.
   [g_total] is the campaign-global coverage array; returns
   (iteration-difference metric, newly covered probe count,
   iterations executed). *)
let run_one ~layout ~compiled ~curr ~last ~g_total ~max_tuples ~use_metric ~fresh_cells data =
  let n_probes = Bytes.length g_total in
  let n = min (Layout.n_tuples layout data) max_tuples in
  Ir_compile.reset compiled;
  Bytes.fill last 0 n_probes '\000';
  let metric = ref 0 in
  let fresh = ref 0 in
  for tuple = 0 to n - 1 do
    Bytes.fill curr 0 n_probes '\000';
    Layout.load_tuple layout data ~tuple compiled;
    Ir_compile.step compiled;
    for i = 0 to n_probes - 1 do
      let c = Bytes.unsafe_get curr i in
      if c <> '\000' && Bytes.unsafe_get g_total i = '\000' then begin
        Bytes.unsafe_set g_total i '\001';
        incr fresh;
        fresh_cells := i :: !fresh_cells
      end;
      if use_metric && c <> Bytes.unsafe_get last i then incr metric
    done;
    Bytes.blit curr 0 last 0 n_probes
  done;
  (!metric, !fresh, n)

let count_covered g_total =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) g_total;
  !n

(* Corpus selection: 2-way tournament biased to the higher score;
   shorter inputs win ties (LibFuzzer's small-input preference). *)
let select_entry rng corpus =
  let n = Array.length corpus in
  let a = corpus.(Rng.int rng n) in
  let b = corpus.(Rng.int rng n) in
  let hi, lo =
    if a.score > b.score || (a.score = b.score && Bytes.length a.data <= Bytes.length b.data)
    then (a, b)
    else (b, a)
  in
  if Rng.int rng 10 < 8 then hi else lo

let run ?(config = default_config) ?(on_test_case = fun _ -> ()) ?(on_progress = fun _ -> ())
    ?(progress_every = 1024) ?(should_stop = fun () -> false) (prog : Ir.program) budget =
  let layout = Layout.with_ranges (Layout.of_program prog) config.ranges in
  if layout.Layout.tuple_len = 0 then invalid_arg "Fuzzer.run: model has no inports";
  let rng = Rng.create config.seed in
  let n_probes = max prog.Ir.n_probes 1 in
  let curr = Bytes.make n_probes '\000' in
  let last = Bytes.make n_probes '\000' in
  let g_total = Bytes.make n_probes '\000' in
  (* fast path: the only hook is the flat-probe write into curr *)
  let hooks = Hooks.probes_only (fun id -> Bytes.unsafe_set curr id '\001') in
  let compiled = Ir_compile.compile ~hooks prog in
  let dict = if config.use_dictionary then Some (Dictionary.of_program prog) else None in
  let start = Unix.gettimeofday () in
  let deadline_execs, deadline_time =
    match budget with
    | Time_budget s -> (max_int, start +. s)
    | Exec_budget n -> (n, Float.infinity)
  in
  let corpus = ref [||] in
  let suite = ref [] in
  let failures = ref [] in
  let executions = ref 0 in
  let iterations = ref 0 in
  (* Exec-budget runs use a virtual clock (the execution index) so
     same-seed runs are byte-identical, timestamps included; wall
     clock is only read under a time budget. *)
  let elapsed_now () =
    match budget with
    | Exec_budget _ -> float_of_int !executions
    | Time_budget _ -> Unix.gettimeofday () -. start
  in
  let snapshot () =
    {
      executions = !executions;
      iterations = !iterations;
      elapsed = elapsed_now ();
      corpus_size = Array.length !corpus;
      probes_covered = count_covered g_total;
      probes_total = prog.Ir.n_probes;
    }
  in
  let assertion_message = Hashtbl.create 4 in
  Array.iter (fun (cell, msg) -> Hashtbl.replace assertion_message cell msg) prog.Ir.assertions;
  let fresh_cells = ref [] in
  let add_to_corpus e =
    let arr = !corpus in
    if Array.length arr < config.corpus_cap then corpus := Array.append arr [| e |]
    else begin
      (* evict the lowest-score entry *)
      let worst = ref 0 in
      Array.iteri (fun i x -> if x.score < arr.(!worst).score then worst := i) arr;
      if arr.(!worst).score <= e.score then arr.(!worst) <- e
    end
  in
  let execute data =
    fresh_cells := [];
    let metric, fresh, iters =
      run_one ~layout ~compiled ~curr ~last ~g_total ~max_tuples:config.max_tuples
        ~use_metric:config.iteration_metric ~fresh_cells data
    in
    incr executions;
    iterations := !iterations + iters;
    if !executions mod progress_every = 0 then on_progress (snapshot ());
    if fresh > 0 then begin
      let now = elapsed_now () in
      let tc = { tc_data = data; tc_time = now; tc_new_probes = fresh } in
      suite := tc :: !suite;
      on_test_case tc;
      (* assertion cells firing for the first time are failures *)
      List.iter
        (fun cell ->
          match Hashtbl.find_opt assertion_message cell with
          | Some msg -> failures := { f_data = data; f_time = now; f_message = msg } :: !failures
          | None -> ())
        !fresh_cells
    end;
    (* interesting inputs enter the corpus: new coverage always,
       otherwise a high per-iteration difference metric *)
    let score = entry_score ~fresh ~metric:(if config.iteration_metric then metric else 0) ~iters in
    let interesting =
      fresh > 0
      || (config.iteration_metric && score > 0
         && (Array.length !corpus < 8
            || score > Array.fold_left (fun acc e -> max acc e.score) 0 !corpus / 2))
    in
    if interesting then add_to_corpus { data; score }
  in
  (* user-provided seed corpus first, then a handful of random short
     streams *)
  List.iter execute config.seeds;
  for _ = 1 to 4 do
    let tuples = 1 + Rng.int rng 8 in
    let data =
      Bytes.concat Bytes.empty (List.init tuples (fun _ -> Layout.random_tuple_bytes layout rng))
    in
    execute data
  done;
  let max_len = config.max_tuples * layout.Layout.tuple_len in
  let should_continue () =
    !executions < deadline_execs
    && ((not (Float.is_finite deadline_time)) || Unix.gettimeofday () < deadline_time)
    && not (should_stop ())
  in
  while should_continue () do
    let parent =
      if Array.length !corpus = 0 then { data = Layout.random_tuple_bytes layout rng; score = 0 }
      else select_entry rng !corpus
    in
    let other =
      if Array.length !corpus = 0 then parent.data else (select_entry rng !corpus).data
    in
    let child =
      if config.field_aware then
        snd (Mutate.mutate ?dict layout rng parent.data ~other ~max_tuples:config.max_tuples)
      else Mutate.mutate_blind rng parent.data ~other ~max_len
    in
    execute child
  done;
  { test_suite = List.rev !suite; failures = List.rev !failures; stats = snapshot () }

let replay_metric ?(config = default_config) (prog : Ir.program) data =
  let layout = Layout.of_program prog in
  let n_probes = max prog.Ir.n_probes 1 in
  let curr = Bytes.make n_probes '\000' in
  let last = Bytes.make n_probes '\000' in
  let g_total = Bytes.make n_probes '\000' in
  let hooks = Hooks.probes_only (fun id -> Bytes.unsafe_set curr id '\001') in
  let compiled = Ir_compile.compile ~hooks prog in
  let metric, _, _ =
    run_one ~layout ~compiled ~curr ~last ~g_total ~max_tuples:config.max_tuples ~use_metric:true
      ~fresh_cells:(ref []) data
  in
  metric
