open Cftcg_ir

type stats = {
  kept : int;
  dropped : int;
  probes_covered : int;
}

let suite ?(max_tuples = 4096) (prog : Ir.program) cases =
  let layout = Layout.of_program prog in
  let n_probes = max prog.Ir.n_probes 1 in
  let curr = Bytes.make n_probes '\000' in
  let hooks = Hooks.probes_only (fun id -> Bytes.unsafe_set curr id '\001') in
  let compiled = Ir_compile.compile ~hooks prog in
  let kept_cov = Bytes.make n_probes '\000' in
  let run data =
    Bytes.fill curr 0 n_probes '\000';
    Ir_compile.reset compiled;
    let n = min (Layout.n_tuples layout data) max_tuples in
    for tuple = 0 to n - 1 do
      Layout.load_tuple layout data ~tuple compiled;
      Ir_compile.step compiled
    done
  in
  let adds_coverage () =
    let fresh = ref false in
    for i = 0 to n_probes - 1 do
      if Bytes.unsafe_get curr i <> '\000' && Bytes.unsafe_get kept_cov i = '\000' then begin
        Bytes.unsafe_set kept_cov i '\001';
        fresh := true
      end
    done;
    !fresh
  in
  let by_length = List.stable_sort (fun a b -> compare (Bytes.length a) (Bytes.length b)) cases in
  let kept =
    List.filter
      (fun data ->
        run data;
        adds_coverage ())
      by_length
  in
  let covered = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr covered) kept_cov;
  ( kept,
    { kept = List.length kept; dropped = List.length cases - List.length kept; probes_covered = !covered }
  )
