open Cftcg_model
module Rng = Cftcg_util.Rng
module Bc = Cftcg_util.Bytecodec

type strategy =
  | Change_binary_integer
  | Change_binary_float
  | Erase_tuples
  | Insert_tuple
  | Insert_repeated_tuples
  | Shuffle_tuples
  | Copy_tuples
  | Tuples_cross_over

let all_strategies =
  [| Change_binary_integer; Change_binary_float; Erase_tuples; Insert_tuple;
     Insert_repeated_tuples; Shuffle_tuples; Copy_tuples; Tuples_cross_over |]

let strategy_index = function
  | Change_binary_integer -> 0
  | Change_binary_float -> 1
  | Erase_tuples -> 2
  | Insert_tuple -> 3
  | Insert_repeated_tuples -> 4
  | Shuffle_tuples -> 5
  | Copy_tuples -> 6
  | Tuples_cross_over -> 7

let strategy_name = function
  | Change_binary_integer -> "ChangeBinaryInteger"
  | Change_binary_float -> "ChangeBinaryFloat"
  | Erase_tuples -> "EraseTuples"
  | Insert_tuple -> "InsertTuple"
  | Insert_repeated_tuples -> "InsertRepeatedTuples"
  | Shuffle_tuples -> "ShuffleTuples"
  | Copy_tuples -> "CopyTuples"
  | Tuples_cross_over -> "TuplesCrossOver"

(* ------------------------------------------------------------------ *)
(* Tuple-stream plumbing                                               *)
(* ------------------------------------------------------------------ *)

(* zero-alloc fast path: mutation inputs come straight from the
   corpus and are almost always already tuple-aligned — only blind
   byte-level mutations (or external seeds) produce ragged tails *)
let truncate_tuples (layout : Layout.t) data =
  let n = Layout.n_tuples layout data in
  let len = n * layout.Layout.tuple_len in
  if Bytes.length data = len then data else Bytes.sub data 0 len

let concat_tuples layout pieces ~max_tuples =
  let joined = Bytes.concat Bytes.empty pieces in
  let cap = max_tuples * layout.Layout.tuple_len in
  if Bytes.length joined > cap then Bytes.sub joined 0 cap else joined

let tuple_slice layout data i k =
  Bytes.sub data (i * layout.Layout.tuple_len) (k * layout.Layout.tuple_len)

(* already zero-copy for non-empty inputs: the data bytes are
   returned as-is, only the empty case allocates a fresh tuple *)
let ensure_nonempty layout rng data =
  if Bytes.length data = 0 then Layout.random_tuple_bytes layout rng else data

(* ------------------------------------------------------------------ *)
(* Field mutations                                                     *)
(* ------------------------------------------------------------------ *)

(* The sub-strategies of "Change Binary Integer" the paper lists:
   sign bit, byte swap, bit flip, byte modification, add/subtract,
   random change. Candidate field indices come precomputed from
   {!Layout.t} — the dtypes never change, so rebuilding the list per
   call was pure allocation churn in the mutation hot path. *)
let change_integer layout rng data =
  let n = Layout.n_tuples layout data in
  let candidates = layout.Layout.int_fields in
  if n = 0 || Array.length candidates = 0 then None
  else begin
    let data = Bytes.copy data in
    let tuple = Rng.int rng n in
    let field = candidates.(Rng.int rng (Array.length candidates)) in
    let f = layout.Layout.fields.(field) in
    let ty = f.Layout.f_ty in
    let v = Value.to_int (Layout.field_value layout data ~tuple ~field) in
    let size = Dtype.size_bytes ty in
    let mutated =
      match Rng.int rng 6 with
      | 0 ->
        (* flip the sign bit *)
        v lxor (1 lsl ((size * 8) - 1))
      | 1 ->
        (* byte swap *)
        if size = 1 then lnot v
        else begin
          let b = Bytes.make size '\000' in
          Value.encode (Value.of_int ty v) b 0;
          let i = Rng.int rng size in
          let j = Rng.int rng size in
          let tmp = Bytes.get b i in
          Bytes.set b i (Bytes.get b j);
          Bytes.set b j tmp;
          Value.to_int (Value.decode ty b 0)
        end
      | 2 -> v lxor (1 lsl Rng.int rng (size * 8))
      | 3 ->
        (* overwrite one byte *)
        let shift = 8 * Rng.int rng size in
        (v land lnot (0xFF lsl shift)) lor (Rng.int rng 256 lsl shift)
      | 4 -> v + Rng.int_in rng (-16) 16
      | _ -> Rng.int_in rng (-1000000) 1000000
    in
    Layout.set_field layout data ~tuple ~field
      (Layout.clamp_field layout ~field (Value.of_int ty mutated));
    Some data
  end

(* "Change Binary Float": targeted mutation of the IEEE-754 layout. *)
let change_float layout rng data =
  let n = Layout.n_tuples layout data in
  let candidates = layout.Layout.float_fields in
  if n = 0 || Array.length candidates = 0 then None
  else begin
    let data = Bytes.copy data in
    let tuple = Rng.int rng n in
    let field = candidates.(Rng.int rng (Array.length candidates)) in
    let f = layout.Layout.fields.(field) in
    let ty = f.Layout.f_ty in
    let v = Value.to_float (Layout.field_value layout data ~tuple ~field) in
    let mutated =
      match Rng.int rng 7 with
      | 0 -> -.v (* sign bit *)
      | 1 -> v *. 2.0 (* exponent bump *)
      | 2 -> v /. 2.0
      | 3 -> v +. Rng.float rng 2.0 -. 1.0 (* mantissa nudge *)
      | 4 -> Float.of_int (Rng.int_in rng (-100) 100) (* small integral *)
      | 5 -> 0.0
      | _ -> Rng.float rng 2e6 -. 1e6
    in
    Layout.set_field layout data ~tuple ~field
      (Layout.clamp_field layout ~field (Value.of_float ty mutated));
    Some data
  end

(* ------------------------------------------------------------------ *)
(* Tuple-level mutations                                               *)
(* ------------------------------------------------------------------ *)

let erase_tuples layout rng data =
  let n = Layout.n_tuples layout data in
  if n <= 1 then None
  else begin
    let start = Rng.int rng n in
    let len = 1 + Rng.int rng (n - start) in
    let len = if len >= n then n - 1 else len in
    Some
      (Bytes.cat (tuple_slice layout data 0 start)
         (tuple_slice layout data (start + len) (n - start - len)))
  end

let insert_tuple layout rng data ~max_tuples =
  let n = Layout.n_tuples layout data in
  let pos = if n = 0 then 0 else Rng.int rng (n + 1) in
  Some
    (concat_tuples layout
       [ tuple_slice layout data 0 pos; Layout.random_tuple_bytes layout rng;
         tuple_slice layout data pos (n - pos) ]
       ~max_tuples)

let insert_repeated_tuples layout rng data ~max_tuples =
  let n = Layout.n_tuples layout data in
  let repeats = 2 + Rng.int rng 14 in
  let template =
    if n = 0 || Rng.bool rng then Layout.random_tuple_bytes layout rng
    else tuple_slice layout data (Rng.int rng n) 1
  in
  let pos = if n = 0 then 0 else Rng.int rng (n + 1) in
  let repeated = Bytes.concat Bytes.empty (List.init repeats (fun _ -> template)) in
  Some
    (concat_tuples layout
       [ tuple_slice layout data 0 pos; repeated; tuple_slice layout data pos (n - pos) ]
       ~max_tuples)

let shuffle_tuples layout rng data =
  let n = Layout.n_tuples layout data in
  if n <= 1 then None
  else begin
    let order = Array.init n (fun i -> i) in
    Rng.shuffle_in_place rng order;
    let out = Bytes.create (n * layout.Layout.tuple_len) in
    Array.iteri
      (fun dst src ->
        Bytes.blit data (src * layout.Layout.tuple_len) out (dst * layout.Layout.tuple_len)
          layout.Layout.tuple_len)
      order;
    Some out
  end

let copy_tuples layout rng data =
  let n = Layout.n_tuples layout data in
  if n <= 1 then None
  else begin
    let data = Bytes.copy data in
    let len = 1 + Rng.int rng (n / 2 + 1) in
    let src = Rng.int rng (n - len + 1) in
    let dst = Rng.int rng (n - len + 1) in
    let chunk = tuple_slice layout data src len in
    Bytes.blit chunk 0 data (dst * layout.Layout.tuple_len) (Bytes.length chunk);
    Some data
  end

let cross_over layout rng data other ~max_tuples =
  let na = Layout.n_tuples layout data in
  let nb = Layout.n_tuples layout other in
  if na = 0 && nb = 0 then None
  else begin
    let cut_a = if na = 0 then 0 else Rng.int rng (na + 1) in
    let cut_b = if nb = 0 then 0 else Rng.int rng (nb + 1) in
    Some
      (concat_tuples layout
         [ tuple_slice layout data 0 cut_a; tuple_slice layout other cut_b (nb - cut_b) ]
         ~max_tuples)
  end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let apply layout rng strategy data ~other ~max_tuples =
  let data = truncate_tuples layout data in
  let result =
    match strategy with
    | Change_binary_integer -> change_integer layout rng data
    | Change_binary_float -> change_float layout rng data
    | Erase_tuples -> erase_tuples layout rng data
    | Insert_tuple -> insert_tuple layout rng data ~max_tuples
    | Insert_repeated_tuples -> insert_repeated_tuples layout rng data ~max_tuples
    | Shuffle_tuples -> shuffle_tuples layout rng data
    | Copy_tuples -> copy_tuples layout rng data
    | Tuples_cross_over -> cross_over layout rng data (truncate_tuples layout other) ~max_tuples
  in
  let fallback () =
    match insert_tuple layout rng data ~max_tuples with
    | Some d -> d
    | None -> Layout.random_tuple_bytes layout rng
  in
  let out =
    match result with
    | Some d -> ensure_nonempty layout rng d
    | None -> fallback ()
  in
  let cap = max_tuples * layout.Layout.tuple_len in
  if Bytes.length out > cap then Bytes.sub out 0 cap else out

(* Dictionary mutation: overwrite one field with a branch-deciding
   constant from the generated code (clamped into any range). *)
let dict_mutation dict layout rng data =
  let n = Layout.n_tuples layout data in
  if n = 0 || Array.length layout.Layout.fields = 0 then None
  else begin
    let field = Rng.int rng (Array.length layout.Layout.fields) in
    let ty = layout.Layout.fields.(field).Layout.f_ty in
    match Dictionary.sample dict rng ty with
    | None -> None
    | Some v ->
      let data = Bytes.copy data in
      let tuple = Rng.int rng n in
      Layout.set_field layout data ~tuple ~field (Layout.clamp_field layout ~field v);
      Some data
  end

(* Value mutations fire more often than structural ones, mirroring
   LibFuzzer's weighting. *)
let weighted_pick rng =
  match Rng.int rng 16 with
  | 0 | 1 | 2 | 3 -> Change_binary_integer
  | 4 | 5 | 6 -> Change_binary_float
  | 7 | 8 -> Insert_tuple
  | 9 | 10 -> Insert_repeated_tuples
  | 11 -> Erase_tuples
  | 12 -> Shuffle_tuples
  | 13 -> Copy_tuples
  | _ -> Tuples_cross_over

let mutate ?dict layout rng data ~other ~max_tuples =
  match dict with
  | Some d when Dictionary.size d > 0 && Rng.int rng 5 = 0 -> (
    (* one in five mutations consults the dictionary *)
    match dict_mutation d layout rng (truncate_tuples layout data) with
    | Some mutated -> (Change_binary_integer, ensure_nonempty layout rng mutated)
    | None ->
      let s = weighted_pick rng in
      (s, apply layout rng s data ~other ~max_tuples))
  | _ ->
    let s = weighted_pick rng in
    (s, apply layout rng s data ~other ~max_tuples)

(* ------------------------------------------------------------------ *)
(* Field-blind mutation (Fuzz Only baseline)                           *)
(* ------------------------------------------------------------------ *)

let mutate_blind rng data ~other ~max_len =
  let n = Bytes.length data in
  let out =
    match Rng.int rng 6 with
    | 0 when n > 0 ->
      (* bit flip *)
      let d = Bytes.copy data in
      let i = Rng.int rng n in
      Bc.set_u8 d i (Bc.get_u8 d i lxor (1 lsl Rng.int rng 8));
      d
    | 1 when n > 0 ->
      (* byte overwrite *)
      let d = Bytes.copy data in
      Bytes.set d (Rng.int rng n) (Rng.byte rng);
      d
    | 2 when n > 1 ->
      (* erase a byte range: this is what breaks tuple alignment *)
      let start = Rng.int rng n in
      let len = 1 + Rng.int rng (min 8 (n - start)) in
      Bytes.cat (Bytes.sub data 0 start) (Bytes.sub data (start + len) (n - start - len))
    | 3 ->
      (* insert random bytes at a random position *)
      let pos = if n = 0 then 0 else Rng.int rng (n + 1) in
      let len = 1 + Rng.int rng 8 in
      let ins = Bytes.init len (fun _ -> Rng.byte rng) in
      Bytes.concat Bytes.empty [ Bytes.sub data 0 pos; ins; Bytes.sub data pos (n - pos) ]
    | 4 ->
      (* unaligned crossover *)
      let m = Bytes.length other in
      let cut_a = if n = 0 then 0 else Rng.int rng (n + 1) in
      let cut_b = if m = 0 then 0 else Rng.int rng (m + 1) in
      Bytes.cat (Bytes.sub data 0 cut_a) (Bytes.sub other cut_b (m - cut_b))
    | _ ->
      (* append random bytes *)
      let len = 1 + Rng.int rng 16 in
      Bytes.cat data (Bytes.init len (fun _ -> Rng.byte rng))
  in
  let out = if Bytes.length out = 0 then Bytes.init 4 (fun _ -> Rng.byte rng) else out in
  if Bytes.length out > max_len then Bytes.sub out 0 max_len else out
