open Cftcg_model
open Cftcg_ir
module Rng = Cftcg_util.Rng

type t = { pool : float array }

module FS = Set.Make (Float)

(* Collect literals that take part in comparisons — the values that
   decide branches. Arithmetic-only constants (gains, biases) matter
   less and would dilute the pool. *)
let rec expr_consts ~in_cmp acc (e : Ir.expr) =
  match e with
  | Ir.Const v ->
    if in_cmp then begin
      let x = Value.to_float v in
      if Float.is_finite x then FS.add x acc else acc
    end
    else acc
  | Ir.Read _ -> acc
  | Ir.Unop (_, a) -> expr_consts ~in_cmp acc a
  | Ir.Binop (op, _, a, b) ->
    let in_cmp =
      match op with
      | Ir.B_eq | Ir.B_ne | Ir.B_lt | Ir.B_le | Ir.B_gt | Ir.B_ge -> true
      | Ir.B_add | Ir.B_sub | Ir.B_mul | Ir.B_div | Ir.B_rem | Ir.B_min | Ir.B_max | Ir.B_and
      | Ir.B_or -> in_cmp
    in
    expr_consts ~in_cmp (expr_consts ~in_cmp acc a) b
  | Ir.Select (c, a, b) ->
    expr_consts ~in_cmp (expr_consts ~in_cmp (expr_consts ~in_cmp acc c) a) b

let rec stmt_consts acc (s : Ir.stmt) =
  match s with
  | Ir.Assign (_, e) -> expr_consts ~in_cmp:false acc e
  | Ir.If { cond; then_; else_; _ } ->
    let acc = expr_consts ~in_cmp:true acc cond in
    let acc = List.fold_left stmt_consts acc then_ in
    List.fold_left stmt_consts acc else_
  | Ir.Record_cond { value; _ } -> expr_consts ~in_cmp:true acc value
  | Ir.Probe _ | Ir.Record_decision _ | Ir.Comment _ -> acc

let of_program (p : Ir.program) =
  let base = List.fold_left stmt_consts FS.empty (p.Ir.init @ p.Ir.step) in
  (* off-by-one neighbours turn boundary constants into both branch
     polarities *)
  let with_neighbours =
    FS.fold (fun x acc -> FS.add (x +. 1.0) (FS.add (x -. 1.0) acc)) base base
  in
  { pool = Array.of_list (FS.elements with_neighbours) }

let size t = Array.length t.pool

let constants t = Array.copy t.pool

let sample t rng ty =
  if Array.length t.pool = 0 then None
  else begin
    let x = t.pool.(Rng.int rng (Array.length t.pool)) in
    Some (Value.cast ty (Value.of_float Dtype.Float64 x))
  end
