(** Constant dictionary extracted from the generated code.

    The classic fuzzing dictionary idea (AFL dictionaries, LibFuzzer's
    value profile) applied to models: thresholds of comparisons,
    saturation bounds, switch criteria and chart guard constants all
    appear as literals in the instrumented program. Mutations that
    set an input field to one of these constants (or one off it)
    reach magic-value branches — token windows, opcodes, counters —
    that uniform byte mutation essentially never hits. *)

open Cftcg_model
open Cftcg_ir

type t

val of_program : Ir.program -> t
(** Harvests every numeric literal that appears as a comparison
    operand in the program, plus its off-by-one neighbours. *)

val size : t -> int
(** Distinct constants collected. *)

val constants : t -> float array
(** The collected pool, sorted ascending (for tests/inspection). *)

val sample : t -> Cftcg_util.Rng.t -> Dtype.t -> Value.t option
(** A random dictionary constant cast to the field type; [None] when
    the dictionary is empty. *)
