(** Model input mutation (paper §3.2.1, Table 1).

    Eight field-aware strategies over tuple-structured byte streams.
    All tuple-level strategies preserve the alignment invariant:
    the result length is a multiple of the tuple length, so no field
    ever shifts across a type boundary — the misalignment failure the
    paper demonstrates for byte-blind fuzzing (Figure 8 discussion).

    [mutate_blind] is the byte-level mutator used by the "Fuzz Only"
    baseline: bit flips, byte erase/insert/overwrite and unaligned
    crossover with no knowledge of the field structure. *)

type strategy =
  | Change_binary_integer
  | Change_binary_float
  | Erase_tuples
  | Insert_tuple
  | Insert_repeated_tuples
  | Shuffle_tuples
  | Copy_tuples
  | Tuples_cross_over

val all_strategies : strategy array

val strategy_name : strategy -> string

val strategy_index : strategy -> int
(** Position of a strategy in {!all_strategies} — a stable dense
    index for per-strategy accounting (Table-1 effectiveness
    counters). *)

val truncate_tuples : Layout.t -> Bytes.t -> Bytes.t
(** Drops any ragged tail so the stream is whole tuples. When the
    input is already tuple-aligned — the overwhelmingly common case,
    since corpus entries are produced aligned — the input bytes are
    returned physically unchanged (zero-copy). *)

val apply :
  Layout.t -> Cftcg_util.Rng.t -> strategy -> Bytes.t -> other:Bytes.t -> max_tuples:int ->
  Bytes.t
(** Applies one strategy. [other] is the second parent for
    [Tuples_cross_over] (ignored elsewhere). If the strategy does not
    apply (e.g. no float fields, empty input), falls back to
    inserting a random tuple. Result never exceeds
    [max_tuples * tuple_len] bytes and is never empty. *)

val mutate :
  ?dict:Dictionary.t -> Layout.t -> Cftcg_util.Rng.t -> Bytes.t -> other:Bytes.t ->
  max_tuples:int -> strategy * Bytes.t
(** Picks a strategy (integer/float field mutations weighted
    higher, as in LibFuzzer's value-mutation bias) and applies it.
    With [dict], a share of the value mutations set a field to a
    comparison constant harvested from the generated code. *)

val mutate_blind : Cftcg_util.Rng.t -> Bytes.t -> other:Bytes.t -> max_len:int -> Bytes.t
(** Field-blind byte mutations for the Fuzz-Only baseline. *)
