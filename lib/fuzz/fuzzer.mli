(** The model-oriented fuzzing loop (paper §3.2).

    An in-process, coverage-guided loop in the LibFuzzer mold,
    specialized for model programs:

    - the fuzz driver splits each input into inport tuples and runs
      one model iteration per tuple ({!Layout});
    - mutations are field-aware over tuples ({!Mutate}, Table 1);
    - corpus scheduling uses the {e Iteration Difference Coverage}
      metric of Algorithm 1 — inputs whose per-iteration branch sets
      keep changing are preferred over inputs that settle into one
      path;
    - any input that lights a previously-unseen flat probe is emitted
      as a timestamped test case.

    The three model-oriented ingredients (field-aware mutation,
    iteration metric, full model-level instrumentation) can be
    switched off individually for the paper's Figure 8 baseline and
    for ablations. *)

open Cftcg_ir

(** Which execution backend runs the model under fuzz.

    {!Vm} (the default) executes {!Ir_linearize} bytecode in
    {!Ir_vm}'s dispatch loop and feeds the fuzzer a dirty-probe list,
    so each model step costs no closure calls, no float boxing, and
    coverage accounting proportional to probes fired. {!Closures} is
    the original {!Ir_compile} backend, kept as a differential
    fallback; both produce identical campaigns for a given seed. *)
type backend =
  | Closures
  | Vm

type config = {
  seed : int64;
  max_tuples : int;  (** cap on model iterations per input *)
  corpus_cap : int;
  field_aware : bool;  (** Table-1 mutations vs byte-blind *)
  iteration_metric : bool;  (** Algorithm 1 metric vs plain new-coverage *)
  ranges : (string * float * float) list;
      (** tester-specified inport value ranges (paper §5); mutation
          and generation stay inside them *)
  seeds : Bytes.t list;
      (** seed corpus executed before random exploration (existing
          CSV test cases, previous campaigns, a hybrid campaign's
          solver-produced inputs). Seed replay is clipped to the exec
          budget like the main loop, so a run never spends more than
          its {!Exec_budget} even when the seed list is larger *)
  use_dictionary : bool;
      (** harvest comparison constants from the generated code and
          use them in value mutations (default true) *)
  backend : backend;  (** execution backend (default {!Vm}) *)
  optimize : bool;
      (** run {!Ir_opt.optimize_bytecode} on the {!Vm} backend's
          bytecode (default true; no effect on {!Closures}). Same
          campaigns either way — CLI [--no-opt] is the escape hatch *)
  batch : int;
      (** lanes of the batched lockstep VM ({!Ir_vm_batch}) the {!Vm}
          backend executes per dispatch (default 8; clamped to
          [1 .. draft_size]; [1] and {!Closures} run scalar). The
          scheduler drafts children in fixed-size generations and
          replays coverage in draft order, so same-seed campaigns are
          byte-identical across batch settings — batching only buys
          throughput. Lockstep only pays off when lanes mostly agree
          at branches, so after a fixed warm-up the run inspects the
          batched VM's divergence counters and permanently falls back
          to scalar execution if the model splits lanes more than
          once per batched step on average. The decision is a pure
          function of seed and bytecode — still deterministic, still
          byte-identical *)
}

val default_config : config

val draft_size : int
(** Children drafted per scheduler generation (16). Constant across
    batch settings — the batch width only controls how many lanes
    execute a generation together — which is what pins the RNG stream
    and corpus admission order, keeping campaigns byte-identical from
    [batch = 1] to [batch = draft_size]. *)

type budget =
  | Time_budget of float  (** seconds of wall clock *)
  | Exec_budget of int  (** number of inputs executed *)
  | Wall_budget of { max_execs : int; max_seconds : float }
      (** an {!Exec_budget} with a hard wall-clock ceiling: the run
          ends at whichever limit is hit first, so a stalled target
          cannot hang the campaign. Timestamps and [elapsed] stay on
          the {!Exec_budget} virtual clock — when the deadline does
          not fire, the run is byte-identical to
          [Exec_budget max_execs] with the same seed. *)

type test_case = {
  tc_data : Bytes.t;
  tc_time : float;
      (** seconds since campaign start under a {!Time_budget}; the
          execution index under an {!Exec_budget} or {!Wall_budget}
          (a virtual clock, so same-seed exec-budget runs are
          byte-identical) *)
  tc_new_probes : int;  (** previously-unseen cells this input lit *)
}

type failure = {
  f_data : Bytes.t;  (** the violating input *)
  f_time : float;
  f_message : string;  (** the Assertion block's failure message *)
}

type stats = {
  executions : int;  (** fuzzer inputs run *)
  iterations : int;  (** total model steps across all inputs *)
  elapsed : float;
      (** wall-clock seconds under a {!Time_budget}; the execution
          count under an {!Exec_budget} or {!Wall_budget} (virtual
          clock) *)
  corpus_size : int;
  probes_covered : int;
  probes_total : int;
}

type result = {
  test_suite : test_case list;  (** chronological *)
  failures : failure list;
      (** first input to violate each Assertion block (the fuzzing
          oracle), chronological *)
  stats : stats;
}

val run :
  ?config:config ->
  ?on_test_case:(test_case -> unit) ->
  ?on_progress:(stats -> unit) ->
  ?progress_every:int ->
  ?should_stop:(unit -> bool) ->
  ?coverage_series:Cftcg_obs.Series.t ->
  Ir.program -> budget -> result
(** Runs one campaign on an instrumented program (normally lowered
    with [Codegen.Full]; the Fuzz-Only baseline passes a
    [Branchless] program and [field_aware = false]).

    Orchestrator hooks: [on_progress] receives a stats snapshot every
    [progress_every] executions (default 1024); [should_stop] is a
    cooperative stop check polled once per loop iteration — when it
    returns [true] the run ends early with whatever was found (used by
    multi-worker campaigns to enforce a shared global budget). Neither
    hook perturbs the RNG stream, so enabling them does not change
    what a run finds.

    Observability: when {!Cftcg_obs.Metrics.collecting} is on, the run
    maintains per-strategy effectiveness counters (picked / new
    coverage / kept — Table 1), execution totals and gauges, and
    sampled timing histograms in the default metrics registry.
    [coverage_series] records a coverage-over-time point (Figure 7)
    each time fresh probes are covered. All instrumentation is
    observation-only — it never feeds back into the RNG, scheduling or
    corpus decisions, so a run with observability on is byte-identical
    to the same seed with it off. *)

val replay_metric : ?config:config -> Ir.program -> Bytes.t -> int
(** Executes one input and returns its Iteration Difference Coverage
    metric — Algorithm 1 exactly, exposed for tests and examples. *)

val make_executor :
  ?optimize:bool ->
  backend:backend ->
  layout:Layout.t ->
  prog:Ir.program ->
  g_total:Bytes.t ->
  max_tuples:int ->
  use_metric:bool ->
  unit ->
  fresh_cells:int list ref ->
  Bytes.t ->
  int * int * int
(** The fuzzer's inner loop for one backend, as used by {!run}:
    executes one input against the campaign-global coverage bytes
    [g_total] and returns (iteration-difference metric, newly covered
    probes, model iterations). Compiles the program once at the [()]
    application — apply through [()] once and reuse the result per
    input; the explicit [unit] stops an omitted [?optimize] from
    silently deferring the compile to every input. Exposed for benchmarks and tooling that
    need per-execution costs without a whole campaign. *)

val make_batch_executor :
  ?optimize:bool ->
  k:int ->
  layout:Layout.t ->
  prog:Ir.program ->
  g_total:Bytes.t ->
  max_tuples:int ->
  use_metric:bool ->
  unit ->
  Bytes.t array ->
  int * int * int
(** Batched counterpart of {!make_executor}: each call executes up to
    [k] inputs in lockstep through {!Ir_vm_batch} with the campaign's
    full coverage accounting (iteration metric, fresh replay against
    [g_total] in input order) and returns the summed
    (metric, fresh, iterations). The trailing [unit] closes the
    compile-time partial application — apply through [()] once and
    reuse the returned function per chunk. The number the batch
    scheduler's throughput gate measures. *)
