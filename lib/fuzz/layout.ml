open Cftcg_model
open Cftcg_ir
module Rng = Cftcg_util.Rng

type field = {
  f_name : string;
  f_ty : Dtype.t;
  f_offset : int;
  f_range : (float * float) option;
}

type t = {
  fields : field array;
  tuple_len : int;
  int_fields : int array;
  float_fields : int array;
}

(* Candidate indices are fixed by the dtypes, so they are computed
   once here instead of per mutation. Descending order matches what
   Mutate's old per-call ref-list scan produced, keeping same-seed
   campaigns byte-identical across the change. *)
let candidate_fields fields =
  let matching p =
    let out = ref [] in
    Array.iteri (fun i f -> if p f.f_ty then out := i :: !out) fields;
    Array.of_list !out
  in
  (matching (fun ty -> not (Dtype.is_float ty)), matching Dtype.is_float)

let of_inports ports =
  let offset = ref 0 in
  let fields =
    Array.map
      (fun (f_name, f_ty) ->
        let f = { f_name; f_ty; f_offset = !offset; f_range = None } in
        offset := !offset + Dtype.size_bytes f_ty;
        f)
      ports
  in
  let int_fields, float_fields = candidate_fields fields in
  { fields; tuple_len = !offset; int_fields; float_fields }

let of_program (p : Ir.program) =
  of_inports (Array.map (fun (v : Ir.var) -> (v.Ir.vname, v.Ir.vty)) p.Ir.inputs)

let with_ranges t ranges =
  List.iter
    (fun (name, lo, hi) ->
      if lo > hi then invalid_arg (Printf.sprintf "Layout.with_ranges: %s: empty range" name))
    ranges;
  let fields =
    Array.map
      (fun f ->
        match List.find_opt (fun (name, _, _) -> name = f.f_name) ranges with
        | Some (_, lo, hi) -> { f with f_range = Some (lo, hi) }
        | None -> f)
      t.fields
  in
  { t with fields }

let clamp_field t ~field v =
  match t.fields.(field).f_range with
  | None -> v
  | Some (lo, hi) ->
    let ty = t.fields.(field).f_ty in
    let x = Value.to_float v in
    if x < lo then Value.of_float ty lo else if x > hi then Value.of_float ty hi else v

let n_tuples t data = if t.tuple_len = 0 then 0 else Bytes.length data / t.tuple_len

let field_value t data ~tuple ~field =
  let f = t.fields.(field) in
  Value.decode f.f_ty data ((tuple * t.tuple_len) + f.f_offset)

let set_field t data ~tuple ~field v =
  let f = t.fields.(field) in
  Value.encode (Value.cast f.f_ty v) data ((tuple * t.tuple_len) + f.f_offset)

let load_tuple t data ~tuple compiled =
  let base = tuple * t.tuple_len in
  Array.iteri
    (fun i f -> Ir_compile.set_input_raw compiled i (Value.decode_float f.f_ty data (base + f.f_offset)))
    t.fields

let load_tuple_vm t data ~tuple vm =
  let base = tuple * t.tuple_len in
  Array.iteri
    (fun i f -> Ir_vm.set_input_raw vm i (Value.decode_float f.f_ty data (base + f.f_offset)))
    t.fields

let load_tuple_bvm t data ~tuple bvm ~lane =
  let base = tuple * t.tuple_len in
  Array.iteri
    (fun i f ->
      Ir_vm_batch.set_input_raw bvm ~lane i (Value.decode_float f.f_ty data (base + f.f_offset)))
    t.fields

let load_tuple_values t data ~tuple =
  let base = tuple * t.tuple_len in
  Array.map (fun f -> Value.decode f.f_ty data (base + f.f_offset)) t.fields

(* Byte distributions for fresh tuples: mostly small magnitudes, with
   a tail of extreme values so saturations and wraps stay reachable. *)
let random_field_value rng (ty : Dtype.t) =
  match ty with
  | Dtype.Bool -> Value.of_bool (Rng.bool rng)
  | ty when Dtype.is_integer ty -> (
    match Rng.int rng 10 with
    | 0 -> Value.of_int ty (Dtype.max_int_value ty)
    | 1 -> Value.of_int ty (Dtype.min_int_value ty)
    | 2 | 3 -> Value.of_int ty (Rng.int_in rng (-100000) 100000)
    | _ -> Value.of_int ty (Rng.int_in rng (-100) 100))
  | ty -> (
    match Rng.int rng 10 with
    | 0 -> Value.of_float ty (Rng.float rng 2e9 -. 1e9)
    | 1 -> Value.of_float ty 0.0
    | _ -> Value.of_float ty (Rng.float rng 200.0 -. 100.0))

let random_tuple_bytes t rng =
  let b = Bytes.make t.tuple_len '\000' in
  Array.iteri
    (fun i f ->
      let v =
        match f.f_range with
        | None -> random_field_value rng f.f_ty
        | Some (lo, hi) ->
          (* sample inside the tester-declared range *)
          Value.cast f.f_ty (Value.of_float Dtype.Float64 (lo +. Rng.float rng (hi -. lo)))
      in
      let v = clamp_field t ~field:i v in
      Value.encode (Value.cast f.f_ty v) b f.f_offset)
    t.fields;
  b
