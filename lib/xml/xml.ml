type node =
  | Element of string * (string * string) list * node list
  | Text of string

exception Parse_error of { line : int; message : string }

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = {
  src : string;
  mutable pos : int;
  mutable line : int;
}

let fail st message = raise (Parse_error { line = st.line; message })

let at_end st = st.pos >= String.length st.src

let peek st = if at_end st then '\x00' else st.src.[st.pos]

let advance st =
  if not (at_end st) then begin
    if st.src.[st.pos] = '\n' then st.line <- st.line + 1;
    st.pos <- st.pos + 1
  end

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let skip st n =
  for _ = 1 to n do
    advance st
  done

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_spaces st =
  while (not (at_end st)) && is_space (peek st) do
    advance st
  done

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name st =
  let start = st.pos in
  while (not (at_end st)) && is_name_char (peek st) do
    advance st
  done;
  if st.pos = start then fail st "expected a name";
  String.sub st.src start (st.pos - start)

let decode_entities st s =
  if not (String.contains s '&') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then begin
        let semi =
          match String.index_from_opt s !i ';' with
          | Some j when j - !i <= 8 -> j
          | _ -> fail st "unterminated entity reference"
        in
        let name = String.sub s (!i + 1) (semi - !i - 1) in
        let repl =
          match name with
          | "lt" -> "<"
          | "gt" -> ">"
          | "amp" -> "&"
          | "apos" -> "'"
          | "quot" -> "\""
          | _ ->
            if String.length name > 1 && name.[0] = '#' then begin
              let code =
                try
                  if name.[1] = 'x' || name.[1] = 'X' then
                    int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
                  else int_of_string (String.sub name 1 (String.length name - 1))
                with Failure _ -> fail st "bad character reference"
              in
              if code < 0 || code > 255 then fail st "character reference out of range";
              String.make 1 (Char.chr code)
            end
            else fail st ("unknown entity: &" ^ name ^ ";")
        in
        Buffer.add_string buf repl;
        i := semi + 1
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let read_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected quoted attribute value";
  advance st;
  let start = st.pos in
  while (not (at_end st)) && peek st <> quote do
    advance st
  done;
  if at_end st then fail st "unterminated attribute value";
  let raw = String.sub st.src start (st.pos - start) in
  advance st;
  decode_entities st raw

let skip_comment st =
  (* called just after "<!--" was consumed *)
  let rec loop () =
    if at_end st then fail st "unterminated comment"
    else if looking_at st "-->" then skip st 3
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let skip_misc st =
  (* skip whitespace, comments and processing instructions / declarations *)
  let rec loop () =
    skip_spaces st;
    if looking_at st "<!--" then begin
      skip st 4;
      skip_comment st;
      loop ()
    end
    else if looking_at st "<?" then begin
      while (not (at_end st)) && not (looking_at st "?>") do
        advance st
      done;
      if at_end st then fail st "unterminated declaration";
      skip st 2;
      loop ()
    end
  in
  loop ()

let rec parse_element st =
  if peek st <> '<' then fail st "expected '<'";
  advance st;
  let name = read_name st in
  let rec read_attrs acc =
    skip_spaces st;
    match peek st with
    | '>' ->
      advance st;
      let children = parse_children st name in
      Element (name, List.rev acc, children)
    | '/' ->
      advance st;
      if peek st <> '>' then fail st "expected '/>'";
      advance st;
      Element (name, List.rev acc, [])
    | _ ->
      let attr_name = read_name st in
      skip_spaces st;
      if peek st <> '=' then fail st "expected '=' after attribute name";
      advance st;
      skip_spaces st;
      let value = read_attr_value st in
      read_attrs ((attr_name, value) :: acc)
  in
  read_attrs []

and parse_children st parent =
  let text_start = ref st.pos in
  let acc = ref [] in
  let flush_text () =
    if st.pos > !text_start then begin
      let raw = String.sub st.src !text_start (st.pos - !text_start) in
      if String.exists (fun c -> not (is_space c)) raw then
        acc := Text (decode_entities st raw) :: !acc
    end
  in
  let rec loop () =
    if at_end st then fail st ("unterminated element <" ^ parent ^ ">")
    else if looking_at st "</" then begin
      flush_text ();
      skip st 2;
      let name = read_name st in
      if name <> parent then
        fail st (Printf.sprintf "mismatched close tag: </%s> inside <%s>" name parent);
      skip_spaces st;
      if peek st <> '>' then fail st "expected '>' in close tag";
      advance st;
      List.rev !acc
    end
    else if looking_at st "<!--" then begin
      flush_text ();
      skip st 4;
      skip_comment st;
      text_start := st.pos;
      loop ()
    end
    else if peek st = '<' then begin
      flush_text ();
      let child = parse_element st in
      acc := child :: !acc;
      text_start := st.pos;
      loop ()
    end
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let parse_string src =
  let st = { src; pos = 0; line = 1 } in
  skip_misc st;
  if at_end st then fail st "empty document";
  let root = parse_element st in
  skip_misc st;
  if not (at_end st) then fail st "trailing content after root element";
  root

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\n' -> Buffer.add_string buf "&#10;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = true) node =
  let buf = Buffer.create 1024 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  let rec emit depth node =
    match node with
    | Text s ->
      pad depth;
      Buffer.add_string buf (escape_text s);
      newline ()
    | Element (tag, attrs, children) ->
      pad depth;
      Buffer.add_char buf '<';
      Buffer.add_string buf tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape_attr v);
          Buffer.add_char buf '"')
        attrs;
      (match children with
      | [] ->
        Buffer.add_string buf "/>";
        newline ()
      | [ Text s ] ->
        (* keep a single text child inline so round-trips preserve it *)
        Buffer.add_char buf '>';
        Buffer.add_string buf (escape_text s);
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>';
        newline ()
      | children ->
        Buffer.add_char buf '>';
        newline ();
        List.iter (emit (depth + 1)) children;
        pad depth;
        Buffer.add_string buf "</";
        Buffer.add_string buf tag;
        Buffer.add_char buf '>';
        newline ())
  in
  emit 0 node;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let tag = function
  | Element (t, _, _) -> t
  | Text _ -> invalid_arg "Xml.tag: text node"

let attr node name =
  match node with
  | Element (_, attrs, _) -> List.assoc_opt name attrs
  | Text _ -> None

let attr_exn node name =
  match attr node name with
  | Some v -> v
  | None -> raise Not_found

let children = function
  | Element (_, _, cs) -> cs
  | Text _ -> []

let child_elements node =
  List.filter (function Element _ -> true | Text _ -> false) (children node)

let find_all node t = List.filter (fun c -> match c with Element (t', _, _) -> t' = t | Text _ -> false) (children node)

let find_first node t =
  match find_all node t with
  | [] -> None
  | first :: _ -> Some first

let text_content node =
  match node with
  | Text s -> s
  | Element (_, _, cs) ->
    String.concat "" (List.filter_map (function Text s -> Some s | Element _ -> None) cs)
