(** Minimal XML reader/writer.

    Stands in for the TinyXML dependency the paper uses to load
    Simulink model files. Supports the subset needed by the SLX-like
    model dialect: elements, attributes, character data, comments, XML
    declarations, and the five standard entities. No namespaces, no
    DTDs, no CDATA sections. *)

type node =
  | Element of string * (string * string) list * node list
      (** [Element (tag, attributes, children)] *)
  | Text of string  (** Character data with entities decoded. *)

exception Parse_error of { line : int; message : string }
(** Raised by {!parse_string} on malformed input. *)

val parse_string : string -> node
(** Parses a document and returns its root element. Leading XML
    declarations and comments are skipped. Raises {!Parse_error}. *)

val to_string : ?indent:bool -> node -> string
(** Serializes a node. With [indent] (default [true]) children are
    placed on their own lines with two-space indentation; text nodes
    suppress indentation inside their parent. *)

(** {1 Element accessors} *)

val tag : node -> string
(** Tag of an element. Raises [Invalid_argument] on a text node. *)

val attr : node -> string -> string option
(** Attribute lookup on an element. *)

val attr_exn : node -> string -> string
(** Like {!attr} but raises [Not_found]. *)

val children : node -> node list
(** Child nodes of an element; [[]] for a text node. *)

val child_elements : node -> node list
(** Child nodes that are elements. *)

val find_all : node -> string -> node list
(** [find_all e t] returns direct child elements with tag [t]. *)

val find_first : node -> string -> node option
(** First direct child element with the given tag. *)

val text_content : node -> string
(** Concatenated character data of the node's direct children (or the
    node itself for a text node). *)
