(** Direct block-diagram interpreter — the "model simulation" path.

    This is the execution engine the simulation-based baselines run
    on: each step walks the diagram block by block, dispatching on
    block kind, boxing every signal value, and recursing into
    subsystem instances — the way a simulation engine interprets a
    model, and the reason the paper measures 6 iterations/second for
    SimCoTest against 26,000 for compiled fuzz code (§4).

    Semantics are intentionally identical to the generated code
    ({!Cftcg_codegen.Codegen} + {!Cftcg_ir.Ir_compile}); the test
    suite checks the two paths differentially on random streams. *)

open Cftcg_model

type t

val create : Graph.t -> t
(** Builds the instance tree and per-level schedules. Raises
    [Failure] on invalid models or algebraic loops. *)

val reset : t -> unit
(** Re-establishes all initial state. *)

val set_input : t -> int -> Value.t -> unit

val step : t -> unit

val get_output : t -> int -> Value.t
