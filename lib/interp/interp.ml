open Cftcg_model
module Codegen = Cftcg_codegen.Codegen
module Schedule = Cftcg_codegen.Schedule

let f64 = Dtype.Float64


(* Per-block mutable runtime state. *)
type bstate =
  | S_scalar of Value.t ref
  | S_slots of Value.t array  (* Delay line, oldest last *)
  | S_relay of bool ref
  | S_merge of { mutable held : Value.t; prevs : Value.t array }
  | S_chart of chart_state
  | S_sub of inst  (* subsystem instance; scalar aux for triggers *)
  | S_sub_trig of { child : inst; mutable prev : bool }

and chart_state = {
  ch : Chart.t;
  top : rset;  (* runtime tree of exclusive sets *)
  locals : Value.t array;
  couts : Value.t array;
}

(* runtime mirror of the chart hierarchy: one record per exclusive
   set; parallel regions have no state of their own *)
and rset = {
  rs_init : int;
  mutable rs_active : int;
  mutable rs_time : int;
  rs_states : rstate array;
}

and rstate = {
  r_st : Chart.state;
  r_sub : rsub;
}

and rsub =
  | R_leaf
  | R_exclusive of rset
  | R_parallel of rstate array

and inst = {
  model : Graph.t;
  order : int list;
  src_of : (int * int, int * int) Hashtbl.t;
  types : (int * int, Dtype.t) Hashtbl.t;
  ports : (int * int, Value.t) Hashtbl.t;  (* current output values *)
  states : (int, bstate) Hashtbl.t;
  mutable inputs : Value.t array;  (* current inport values *)
  outputs : Value.t array;  (* outport values, hold between steps *)
}

type t = {
  root : inst;
  in_tys : Dtype.t array;
}

(* build the runtime set tree for a chart *)
let rec chart_make_sub (st : Chart.state) : rsub =
  if Array.length st.Chart.children = 0 then R_leaf
  else if st.Chart.parallel then
    R_parallel (Array.map (fun c -> { r_st = c; r_sub = chart_make_sub c }) st.Chart.children)
  else R_exclusive (chart_make_set st.Chart.children ~init:st.Chart.init_child)

and chart_make_set states ~init : rset =
  {
    rs_init = init;
    rs_active = init;
    rs_time = 0;
    rs_states = Array.map (fun c -> { r_st = c; r_sub = chart_make_sub c }) states;
  }

(* recursively restore every set to its initial configuration *)
let rec chart_reset_sub = function
  | R_leaf -> ()
  | R_exclusive set -> chart_reset_set set
  | R_parallel regions -> Array.iter (fun r -> chart_reset_sub r.r_sub) regions

and chart_reset_set set =
  set.rs_active <- set.rs_init;
  set.rs_time <- 0;
  Array.iter (fun r -> chart_reset_sub r.r_sub) set.rs_states

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let rec build (m : Graph.t) (input_tys : Dtype.t array) : inst =
  let order = Schedule.order_exn m in
  let src_of = Hashtbl.create 64 in
  Array.iter
    (fun (l : Graph.line) ->
      Hashtbl.replace src_of (l.Graph.dst_block, l.Graph.dst_port) (l.Graph.src_block, l.Graph.src_port))
    m.Graph.lines;
  let types = Codegen.infer_types m input_tys in
  let ty_of bid port =
    match Hashtbl.find_opt types (bid, port) with
    | Some ty -> ty
    | None -> f64
  in
  let states = Hashtbl.create 16 in
  Array.iter
    (fun (b : Graph.block) ->
      let bid = b.Graph.bid in
      match b.Graph.kind with
      | Graph.Unit_delay init | Graph.Memory_block init ->
        Hashtbl.replace states bid (S_scalar (ref (Value.of_float (ty_of bid 0) init)))
      | Graph.Delay { delay_length; delay_init } ->
        Hashtbl.replace states bid
          (S_slots (Array.make delay_length (Value.of_float (ty_of bid 0) delay_init)))
      | Graph.Discrete_integrator { int_init; _ } ->
        Hashtbl.replace states bid (S_scalar (ref (Value.of_float (ty_of bid 0) int_init)))
      | Graph.Discrete_filter { filt_init; _ } ->
        Hashtbl.replace states bid (S_scalar (ref (Value.of_float (ty_of bid 0) filt_init)))
      | Graph.Relay _ -> Hashtbl.replace states bid (S_relay (ref false))
      | Graph.Rate_limiter _ ->
        Hashtbl.replace states bid (S_scalar (ref (Value.zero (ty_of bid 0))))
      | Graph.Counter { count_init; _ } ->
        Hashtbl.replace states bid (S_scalar (ref (Value.of_int Dtype.Int32 count_init)))
      | Graph.Edge_detect _ -> Hashtbl.replace states bid (S_scalar (ref (Value.of_bool false)))
      | Graph.Merge n ->
        let ty = ty_of bid 0 in
        Hashtbl.replace states bid
          (S_merge { held = Value.zero ty; prevs = Array.make n (Value.zero ty) })
      | Graph.Chart_block ch ->
        Hashtbl.replace states bid
          (S_chart
             {
               ch;
               top = chart_make_set ch.Chart.states ~init:ch.Chart.init_state;
               locals = Array.map (fun (_, ty, init) -> Value.of_float ty init) ch.Chart.locals;
               couts = Array.map (fun (_, ty) -> Value.zero ty) ch.Chart.outputs;
             })
      | Graph.Subsystem { sub; activation } -> (
        let inner_tys = Array.map snd (Graph.inports sub) in
        let child = build sub inner_tys in
        match activation with
        | Graph.Always | Graph.Enabled -> Hashtbl.replace states bid (S_sub child)
        | Graph.Triggered _ -> Hashtbl.replace states bid (S_sub_trig { child; prev = false }))
      | _ -> ())
    m.Graph.blocks;
  let n_out = Array.length (Graph.outports m) in
  {
    model = m;
    order;
    src_of;
    types;
    ports = Hashtbl.create 64;
    states;
    inputs = Array.map Value.zero input_tys;
    outputs = Array.make n_out (Value.zero f64);
  }

let create (m : Graph.t) =
  (match Graph.validate m with
  | Ok () -> ()
  | Error msg -> failwith ("Interp.create: " ^ msg));
  let in_tys = Array.map snd (Graph.inports m) in
  { root = build m in_tys; in_tys }

(* ------------------------------------------------------------------ *)
(* Reset                                                               *)
(* ------------------------------------------------------------------ *)

let rec reset_inst (inst : inst) =
  Hashtbl.reset inst.ports;
  Array.iteri (fun i _ -> inst.outputs.(i) <- Value.zero f64) inst.outputs;
  Array.iter
    (fun (b : Graph.block) ->
      let bid = b.Graph.bid in
      match (b.Graph.kind, Hashtbl.find_opt inst.states bid) with
      | (Graph.Unit_delay init | Graph.Memory_block init), Some (S_scalar r) ->
        r := Value.of_float (ty_of_state inst bid) init
      | Graph.Delay { delay_init; _ }, Some (S_slots slots) ->
        Array.iteri (fun i _ -> slots.(i) <- Value.of_float (ty_of_state inst bid) delay_init) slots
      | Graph.Discrete_integrator { int_init; _ }, Some (S_scalar r) ->
        r := Value.of_float (ty_of_state inst bid) int_init
      | Graph.Discrete_filter { filt_init; _ }, Some (S_scalar r) ->
        r := Value.of_float (ty_of_state inst bid) filt_init
      | Graph.Relay _, Some (S_relay r) -> r := false
      | Graph.Rate_limiter _, Some (S_scalar r) -> r := Value.zero (ty_of_state inst bid)
      | Graph.Counter { count_init; _ }, Some (S_scalar r) -> r := Value.of_int Dtype.Int32 count_init
      | Graph.Edge_detect _, Some (S_scalar r) -> r := Value.of_bool false
      | Graph.Merge _, Some (S_merge s) ->
        let ty = ty_of_state inst bid in
        s.held <- Value.zero ty;
        Array.iteri (fun i _ -> s.prevs.(i) <- Value.zero ty) s.prevs
      | Graph.Chart_block ch, Some (S_chart cs) ->
        chart_reset_set cs.top;
        Array.iteri (fun i (_, ty, init) -> cs.locals.(i) <- Value.of_float ty init) ch.Chart.locals;
        Array.iteri (fun i (_, ty) -> cs.couts.(i) <- Value.zero ty) ch.Chart.outputs
      | Graph.Subsystem _, Some (S_sub child) -> reset_inst child
      | Graph.Subsystem _, Some (S_sub_trig s) ->
        s.prev <- false;
        reset_inst s.child
      | _ -> ())
    inst.model.Graph.blocks;
  Array.iteri (fun i v -> inst.inputs.(i) <- Value.cast (Value.dtype v) (Value.zero f64)) inst.inputs

and ty_of_state inst bid =
  match Hashtbl.find_opt inst.types (bid, 0) with
  | Some ty -> ty
  | None -> f64

let reset t =
  reset_inst t.root;
  Array.iteri (fun i ty -> t.root.inputs.(i) <- Value.zero ty) t.in_tys

(* ------------------------------------------------------------------ *)
(* Chart interpretation                                                *)
(* ------------------------------------------------------------------ *)

let rec chart_eval cs ~time (ins : Value.t array) (e : Chart.expr) : float =
  let b2f b = if b then 1.0 else 0.0 in
  match e with
  | Chart.In i -> Value.to_float ins.(i)
  | Chart.Local i -> Value.to_float cs.locals.(i)
  | Chart.Out i -> Value.to_float cs.couts.(i)
  | Chart.State_time -> float_of_int time
  | Chart.Const f -> f
  | Chart.Un (Chart.C_neg, a) -> 0.0 -. chart_eval cs ~time ins a
  | Chart.Un (Chart.C_not, a) -> b2f (chart_eval cs ~time ins a = 0.0)
  | Chart.Un (Chart.C_abs, a) ->
    let x = chart_eval cs ~time ins a in
    Float.max x (0.0 -. x)
  | Chart.Bin (op, a, b) ->
    let x = chart_eval cs ~time ins a in
    let y = chart_eval cs ~time ins b in
    (match op with
    | Chart.C_add -> x +. y
    | Chart.C_sub -> x -. y
    | Chart.C_mul -> x *. y
    | Chart.C_div -> if y = 0.0 then 0.0 else x /. y
    | Chart.C_mod -> if y = 0.0 then 0.0 else Float.rem x y
    | Chart.C_min -> if x <= y then x else y
    | Chart.C_max -> if x >= y then x else y
    | Chart.C_eq -> b2f (x = y)
    | Chart.C_ne -> b2f (x <> y)
    | Chart.C_lt -> b2f (x < y)
    | Chart.C_le -> b2f (x <= y)
    | Chart.C_gt -> b2f (x > y)
    | Chart.C_ge -> b2f (x >= y)
    | Chart.C_and -> b2f (x <> 0.0 && y <> 0.0)
    | Chart.C_or -> b2f (x <> 0.0 || y <> 0.0))

let chart_action cs ~time ins = function
  | Chart.Set_local (i, e) ->
    cs.locals.(i) <- Value.of_float (Value.dtype cs.locals.(i)) (chart_eval cs ~time ins e)
  | Chart.Set_out (i, e) ->
    cs.couts.(i) <- Value.of_float (Value.dtype cs.couts.(i)) (chart_eval cs ~time ins e)

(* Entering a state: entry actions, then establish its children. *)
let rec chart_enter cs ~time ins (a : rstate) =
  List.iter (chart_action cs ~time ins) a.r_st.Chart.entry;
  match a.r_sub with
  | R_leaf -> ()
  | R_exclusive set ->
    set.rs_active <- set.rs_init;
    set.rs_time <- 0;
    chart_enter cs ~time:set.rs_time ins set.rs_states.(set.rs_init)
  | R_parallel regions -> Array.iter (chart_enter cs ~time ins) regions

(* Exiting: active descendants innermost-first, then own exits. *)
let rec chart_exit cs ~time ins (a : rstate) =
  (match a.r_sub with
  | R_leaf -> ()
  | R_exclusive set -> chart_exit cs ~time:set.rs_time ins set.rs_states.(set.rs_active)
  | R_parallel regions ->
    Array.iter (chart_exit cs ~time ins) (Array.of_list (List.rev (Array.to_list regions))));
  List.iter (chart_action cs ~time ins) a.r_st.Chart.exit_actions

(* One step of the children of a state that did not transition. *)
let rec chart_step_sub cs ~time ins = function
  | R_leaf -> ()
  | R_exclusive set -> chart_step_set cs ins set
  | R_parallel regions ->
    Array.iter
      (fun r ->
        List.iter (chart_action cs ~time ins) r.r_st.Chart.during;
        chart_step_sub cs ~time ins r.r_sub)
      regions

and chart_step_set cs ins (set : rset) =
  let a = set.rs_states.(set.rs_active) in
  let st = a.r_st in
  let rec try_transitions = function
    | [] ->
      List.iter (chart_action cs ~time:set.rs_time ins) st.Chart.during;
      set.rs_time <- set.rs_time + 1;
      chart_step_sub cs ~time:set.rs_time ins a.r_sub
    | (tr : Chart.transition) :: rest ->
      if chart_eval cs ~time:set.rs_time ins tr.Chart.guard <> 0.0 then begin
        chart_exit cs ~time:set.rs_time ins a;
        List.iter (chart_action cs ~time:set.rs_time ins) tr.Chart.actions;
        set.rs_active <- tr.Chart.dst;
        set.rs_time <- 0;
        chart_enter cs ~time:set.rs_time ins set.rs_states.(tr.Chart.dst)
      end
      else try_transitions rest
  in
  try_transitions st.Chart.outgoing

let chart_step cs (ins : Value.t array) = chart_step_set cs ins cs.top

(* ------------------------------------------------------------------ *)
(* Block interpretation                                                *)
(* ------------------------------------------------------------------ *)

let relop_apply op x y =
  match op with
  | Graph.R_eq -> x = y
  | Graph.R_ne -> x <> y
  | Graph.R_lt -> x < y
  | Graph.R_le -> x <= y
  | Graph.R_gt -> x > y
  | Graph.R_ge -> x >= y

(* Mirror of the IR's embedded-safe unary math. *)
let safe_float ty v = if Float.is_nan v then Value.of_float ty 0.0 else Value.of_float ty v

let rec step_inst (inst : inst) =
  let ty_of bid port =
    match Hashtbl.find_opt inst.types (bid, port) with
    | Some ty -> ty
    | None -> f64
  in
  let in_val bid port =
    match Hashtbl.find_opt inst.src_of (bid, port) with
    | Some key -> (
      match Hashtbl.find_opt inst.ports key with
      | Some v -> v
      | None -> failwith "Interp: signal not ready")
    | None -> failwith "Interp: unconnected input"
  in
  let set bid port v = Hashtbl.replace inst.ports (bid, port) v in
  (* Phase A: loop-breaking blocks publish their state. *)
  Array.iter
    (fun (b : Graph.block) ->
      let bid = b.Graph.bid in
      match (b.Graph.kind, Hashtbl.find_opt inst.states bid) with
      | (Graph.Unit_delay _ | Graph.Memory_block _ | Graph.Discrete_integrator _), Some (S_scalar r)
        ->
        set bid 0 !r
      | Graph.Delay _, Some (S_slots slots) -> set bid 0 slots.(Array.length slots - 1)
      | _ -> ())
    inst.model.Graph.blocks;
  (* Phase B: schedule order. *)
  List.iter (fun bid -> step_block inst ty_of in_val set inst.model.Graph.blocks.(bid)) inst.order;
  (* Phase C: state updates in block order. *)
  Array.iter
    (fun (b : Graph.block) ->
      let bid = b.Graph.bid in
      match (b.Graph.kind, Hashtbl.find_opt inst.states bid) with
      | (Graph.Unit_delay _ | Graph.Memory_block _), Some (S_scalar r) ->
        r := Value.cast (ty_of bid 0) (in_val bid 0)
      | Graph.Delay _, Some (S_slots slots) ->
        let n = Array.length slots in
        for i = n - 1 downto 1 do
          slots.(i) <- slots.(i - 1)
        done;
        slots.(0) <- Value.cast (ty_of bid 0) (in_val bid 0)
      | Graph.Discrete_integrator { int_gain; limits; _ }, Some (S_scalar r) ->
        let ty = ty_of bid 0 in
        let next =
          Value.add ty !r (Value.mul ty (Value.of_float f64 int_gain) (in_val bid 0))
        in
        let bounded =
          match limits with
          | None -> next
          | Some { Graph.int_lower; int_upper } ->
            let x = Value.to_float next in
            if x > int_upper then Value.cast ty (Value.of_float f64 int_upper)
            else if x < int_lower then Value.cast ty (Value.of_float f64 int_lower)
            else Value.cast ty next
        in
        r := bounded
      | _ -> ())
    inst.model.Graph.blocks

and step_block inst ty_of in_val set (b : Graph.block) =
  let bid = b.Graph.bid in
  let out_ty = ty_of bid 0 in
  let u () = in_val bid 0 in
  let uf () = Value.to_float (u ()) in
  match b.Graph.kind with
  | Graph.Unit_delay _ | Graph.Memory_block _ | Graph.Delay _ | Graph.Discrete_integrator _ -> ()
  | Graph.Inport { port_index; _ } ->
    let v = inst.inputs.(port_index - 1) in
    set bid 0 (Value.cast out_ty v)
  | Graph.Outport { port_index } -> inst.outputs.(port_index - 1) <- u ()
  | Graph.Terminator -> ()
  | Graph.Constant v -> set bid 0 v
  | Graph.Ground ty -> set bid 0 (Value.zero ty)
  | Graph.Sum signs ->
    let acc = ref None in
    String.iteri
      (fun i sign ->
        let operand = in_val bid i in
        acc :=
          Some
            (match (!acc, sign) with
            | None, '+' -> Value.cast out_ty operand
            | None, _ -> Value.sub out_ty (Value.zero out_ty) operand
            | Some a, '+' -> Value.add out_ty a operand
            | Some a, _ -> Value.sub out_ty a operand))
      signs;
    set bid 0 (Option.get !acc)
  | Graph.Product ops ->
    let acc = ref None in
    String.iteri
      (fun i op ->
        let operand = in_val bid i in
        acc :=
          Some
            (match (!acc, op) with
            | None, '*' -> Value.cast out_ty operand
            | None, _ -> Value.div out_ty (Value.of_int out_ty 1) operand
            | Some a, '*' -> Value.mul out_ty a operand
            | Some a, _ -> Value.div out_ty a operand))
      ops;
    set bid 0 (Option.get !acc)
  | Graph.Gain g -> set bid 0 (Value.cast out_ty (Value.mul f64 (Value.of_float f64 g) (u ())))
  | Graph.Bias bv -> set bid 0 (Value.cast out_ty (Value.add f64 (u ()) (Value.of_float f64 bv)))
  | Graph.Abs ->
    (* if u < 0 then -u else u, in the input's own type *)
    if uf () < 0.0 then set bid 0 (Value.neg out_ty (u ())) else set bid 0 (Value.cast out_ty (u ()))
  | Graph.Unary_minus -> set bid 0 (Value.neg out_ty (u ()))
  | Graph.Sign_block ->
    let x = uf () in
    set bid 0 (Value.of_int out_ty (if x > 0.0 then 1 else if x < 0.0 then -1 else 0))
  | Graph.Math_func fn ->
    let x = uf () in
    let v =
      match fn with
      | Graph.F_square -> Value.mul out_ty (u ()) (u ())
      | Graph.F_reciprocal -> Value.div out_ty (Value.of_float out_ty 1.0) (u ())
      | Graph.F_exp -> safe_float out_ty (Float.exp x)
      | Graph.F_log -> if x <= 0.0 then Value.zero out_ty else safe_float out_ty (Float.log x)
      | Graph.F_log10 -> if x <= 0.0 then Value.zero out_ty else safe_float out_ty (Float.log10 x)
      | Graph.F_sqrt -> if x < 0.0 then Value.zero out_ty else Value.of_float out_ty (Float.sqrt x)
      | Graph.F_sin -> safe_float out_ty (Float.sin x)
      | Graph.F_cos -> safe_float out_ty (Float.cos x)
    in
    set bid 0 v
  | Graph.Rounding mode ->
    let f =
      match mode with
      | Graph.R_floor -> Float.floor
      | Graph.R_ceil -> Float.ceil
      | Graph.R_round -> Float.round
      | Graph.R_fix -> Float.trunc
    in
    set bid 0 (Value.cast out_ty (Value.of_float f64 (f (uf ()))))
  | Graph.Min_max (op, n) ->
    let pick =
      match op with
      | Graph.MM_min -> Value.min
      | Graph.MM_max -> Value.max
    in
    let acc = ref (Value.cast out_ty (in_val bid 0)) in
    for i = 1 to n - 1 do
      acc := pick out_ty !acc (in_val bid i)
    done;
    set bid 0 !acc
  | Graph.Saturation { sat_lower; sat_upper } ->
    let x = uf () in
    let v =
      if x > sat_upper then Value.cast out_ty (Value.of_float f64 sat_upper)
      else if x < sat_lower then Value.cast out_ty (Value.of_float f64 sat_lower)
      else Value.cast out_ty (u ())
    in
    set bid 0 v
  | Graph.Dead_zone { dz_lower; dz_upper } ->
    let x = uf () in
    let v =
      if x > dz_upper then Value.cast out_ty (Value.of_float f64 (x -. dz_upper))
      else if x < dz_lower then Value.cast out_ty (Value.of_float f64 (x -. dz_lower))
      else Value.cast out_ty (Value.of_float f64 0.0)
    in
    set bid 0 v
  | Graph.Relay { on_point; off_point; on_value; off_value } -> (
    match Hashtbl.find inst.states bid with
    | S_relay r ->
      let x = uf () in
      if x >= on_point then r := true else if x <= off_point then r := false;
      set bid 0 (Value.of_float out_ty (if !r then on_value else off_value))
    | _ -> assert false)
  | Graph.Quantizer q ->
    set bid 0 (Value.of_float out_ty (q *. Float.round (if q = 0.0 then 0.0 else uf () /. q)))
  | Graph.Rate_limiter { rising; falling } -> (
    match Hashtbl.find inst.states bid with
    | S_scalar prev ->
      let delta = uf () -. Value.to_float !prev in
      let y =
        if delta > rising then Value.cast out_ty (Value.of_float f64 (Value.to_float !prev +. rising))
        else if delta < falling then
          Value.cast out_ty (Value.of_float f64 (Value.to_float !prev +. falling))
        else Value.cast out_ty (u ())
      in
      prev := y;
      set bid 0 y
    | _ -> assert false)
  | Graph.Logic (Graph.L_not, _) -> set bid 0 (Value.of_bool (not (Value.is_true (u ()))))
  | Graph.Logic (op, n) ->
    let vals = Array.init n (fun i -> Value.is_true (in_val bid i)) in
    let fold f init = Array.fold_left f init vals in
    let v =
      match op with
      | Graph.L_and -> fold ( && ) true
      | Graph.L_nand -> not (fold ( && ) true)
      | Graph.L_or -> fold ( || ) false
      | Graph.L_nor -> not (fold ( || ) false)
      | Graph.L_xor -> Array.fold_left (fun acc b -> acc <> b) vals.(0) (Array.sub vals 1 (n - 1))
      | Graph.L_not -> assert false
    in
    set bid 0 (Value.of_bool v)
  | Graph.Relational op ->
    set bid 0 (Value.of_bool (relop_apply op (Value.to_float (in_val bid 0)) (Value.to_float (in_val bid 1))))
  | Graph.Compare_to_constant (op, c) -> set bid 0 (Value.of_bool (relop_apply op (uf ()) c))
  | Graph.Compare_to_zero op -> set bid 0 (Value.of_bool (relop_apply op (uf ()) 0.0))
  | Graph.Switch criteria ->
    let ctl = Value.to_float (in_val bid 1) in
    let pass =
      match criteria with
      | Graph.Ge_threshold t -> ctl >= t
      | Graph.Gt_threshold t -> ctl > t
      | Graph.Ne_zero -> ctl <> 0.0
    in
    set bid 0 (Value.cast out_ty (if pass then in_val bid 0 else in_val bid 2))
  | Graph.Multiport_switch n ->
    let sel = Value.to_float (in_val bid 0) in
    let rec choose i = if i = n - 1 then i else if sel <= float_of_int (i + 1) then i else choose (i + 1) in
    set bid 0 (Value.cast out_ty (in_val bid (choose 0 + 1)))
  | Graph.Merge n -> (
    match Hashtbl.find inst.states bid with
    | S_merge s ->
      for i = 0 to n - 1 do
        let v = Value.cast out_ty (in_val bid i) in
        if Value.to_float v <> Value.to_float s.prevs.(i) then begin
          s.held <- v;
          s.prevs.(i) <- v
        end
      done;
      set bid 0 s.held
    | _ -> assert false)
  | Graph.If_block n ->
    let conds = Array.init n (fun i -> Value.is_true (in_val bid i)) in
    let chosen =
      let rec find i = if i = n then n else if conds.(i) then i else find (i + 1) in
      find 0
    in
    for p = 0 to n do
      set bid p (Value.of_bool (p = chosen))
    done
  | Graph.Discrete_filter { filt_coeff; _ } -> (
    match Hashtbl.find inst.states bid with
    | S_scalar prev ->
      let y =
        Value.add out_ty
          (Value.mul out_ty (Value.of_float f64 filt_coeff) (u ()))
          (Value.mul out_ty (Value.of_float f64 (1.0 -. filt_coeff)) !prev)
      in
      prev := y;
      set bid 0 y
    | _ -> assert false)
  | Graph.Counter { count_max; count_wrap; _ } -> (
    match Hashtbl.find inst.states bid with
    | S_scalar c ->
      if Value.is_true (u ()) then c := Value.add Dtype.Int32 !c (Value.of_int Dtype.Int32 1);
      if Value.to_float !c > float_of_int count_max then
        c := Value.of_int Dtype.Int32 (if count_wrap then 0 else count_max);
      set bid 0 !c
    | _ -> assert false)
  | Graph.Edge_detect kind -> (
    match Hashtbl.find inst.states bid with
    | S_scalar prev ->
      let curr = Value.is_true (u ()) in
      let was = Value.is_true !prev in
      let fired =
        match kind with
        | Graph.E_rising -> curr && not was
        | Graph.E_falling -> (not curr) && was
        | Graph.E_either -> curr <> was
      in
      prev := Value.of_bool curr;
      set bid 0 (Value.of_bool fired)
    | _ -> assert false)
  | Graph.Lookup_1d { lut_xs; lut_ys } ->
    let n = Array.length lut_xs in
    let x = uf () in
    let v =
      if x <= lut_xs.(0) then lut_ys.(0)
      else if x >= lut_xs.(n - 1) then lut_ys.(n - 1)
      else begin
        let rec seg i = if i = n - 1 || x <= lut_xs.(i) then i else seg (i + 1) in
        let i = seg 1 in
        let x0 = lut_xs.(i - 1) and x1 = lut_xs.(i) in
        let y0 = lut_ys.(i - 1) and y1 = lut_ys.(i) in
        let slope = (y1 -. y0) /. (x1 -. x0) in
        y0 +. (slope *. (x -. x0))
      end
    in
    set bid 0 (Value.cast out_ty (Value.of_float f64 v))
  | Graph.Data_type_conversion ty -> set bid 0 (Value.cast ty (u ()))
  | Graph.Assertion _ -> ignore (u ()) (* runtime oracle; no dataflow effect *)
  | Graph.Chart_block ch -> (
    match Hashtbl.find inst.states bid with
    | S_chart cs ->
      let nin = Array.length ch.Chart.inputs in
      let ins = Array.init nin (fun i -> Value.cast (snd ch.Chart.inputs.(i)) (in_val bid i)) in
      chart_step cs ins;
      Array.iteri (fun p v -> set bid p v) cs.couts
    | _ -> assert false)
  | Graph.Subsystem { sub; activation } -> (
    let off = match activation with Graph.Always -> 0 | _ -> 1 in
    let inner_tys = Array.map snd (Graph.inports sub) in
    let feed (child : inst) =
      Array.iteri (fun i ty -> child.inputs.(i) <- Value.cast ty (in_val bid (i + off))) inner_tys
    in
    match (activation, Hashtbl.find inst.states bid) with
    | Graph.Always, S_sub child ->
      feed child;
      step_inst child;
      Array.iteri (fun p v -> set bid p v) child.outputs
    | Graph.Enabled, S_sub child ->
      if Value.is_true (in_val bid 0) then begin
        feed child;
        step_inst child
      end;
      Array.iteri (fun p v -> set bid p v) child.outputs
    | Graph.Triggered kind, S_sub_trig s ->
      let curr = Value.is_true (in_val bid 0) in
      let fired =
        match kind with
        | Graph.E_rising -> curr && not s.prev
        | Graph.E_falling -> (not curr) && s.prev
        | Graph.E_either -> curr <> s.prev
      in
      if fired then begin
        feed s.child;
        step_inst s.child
      end;
      s.prev <- curr;
      Array.iteri (fun p v -> set bid p v) s.child.outputs
    | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)
(* ------------------------------------------------------------------ *)

let set_input t i v = t.root.inputs.(i) <- Value.cast t.in_tys.(i) v

let step t = step_inst t.root

let get_output t i = t.root.outputs.(i)
