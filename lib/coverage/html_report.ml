let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let css =
  {|
  body { font-family: system-ui, sans-serif; margin: 2em; color: #1a1a1a; }
  h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
  .tiles { display: flex; gap: 1em; }
  .tile { border: 1px solid #ccc; border-radius: 6px; padding: 0.8em 1.2em; min-width: 9em; }
  .tile .pct { font-size: 1.6em; font-weight: 600; }
  .tile .label { color: #555; font-size: 0.85em; }
  table { border-collapse: collapse; margin-top: 0.6em; }
  th, td { border: 1px solid #ddd; padding: 0.3em 0.6em; font-size: 0.9em; text-align: left; }
  th { background: #f3f3f3; }
  .ok { color: #116611; }
  .miss { color: #aa1111; font-weight: 600; background: #fff0f0; }
  .mono { font-family: ui-monospace, monospace; }
|}

let tile buf label pct covered total =
  Buffer.add_string buf
    (Printf.sprintf
       {|<div class="tile"><div class="pct">%.0f%%</div><div class="label">%s (%d/%d)</div></div>|}
       pct (escape label) covered total)

(* inline SVG step curve of probes covered vs time — the paper's
   Figure 7, embedded so the report stays a single self-contained file *)
let curve_svg ?probes_total points =
  let w = 640.0 and h = 240.0 and pad = 42.0 in
  let tmax = List.fold_left (fun a (t, _) -> Float.max a t) 0.0 points in
  let tmax = if tmax <= 0.0 then 1.0 else tmax in
  let cmax =
    match probes_total with
    | Some n when n > 0 -> n
    | _ -> max 1 (List.fold_left (fun a (_, c) -> max a c) 1 points)
  in
  let x t = pad +. (t /. tmax *. (w -. (2.0 *. pad))) in
  let y c = h -. pad -. (float_of_int c /. float_of_int cmax *. (h -. (2.0 *. pad))) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg viewBox=\"0 0 %g %g\" width=\"%g\" height=\"%g\" role=\"img\" \
        aria-label=\"coverage over time\">\n"
       w h w h);
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#888\"/>\n\
        <line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"#888\"/>\n"
       pad pad pad (h -. pad) pad (h -. pad) (w -. pad) (h -. pad));
  Buffer.add_string buf
    (Printf.sprintf
       "<text x=\"%g\" y=\"%g\" font-size=\"11\" text-anchor=\"end\">%d</text>\n\
        <text x=\"%g\" y=\"%g\" font-size=\"11\" text-anchor=\"end\">0</text>\n\
        <text x=\"%g\" y=\"%g\" font-size=\"11\" text-anchor=\"end\">%.3g s</text>\n"
       (pad -. 4.0) (pad +. 4.0) cmax (pad -. 4.0) (h -. pad) (w -. pad) (h -. pad +. 14.0) tmax);
  (* step path: horizontal to each new time, then vertical to the new
     coverage level, extended flat to the end of the run *)
  (match points with
  | [] -> ()
  | (t0, c0) :: rest ->
    let path = Buffer.create 256 in
    Buffer.add_string path (Printf.sprintf "M %.2f %.2f" (x t0) (y c0));
    List.iter
      (fun (t, c) -> Buffer.add_string path (Printf.sprintf " H %.2f V %.2f" (x t) (y c)))
      rest;
    Buffer.add_string path (Printf.sprintf " H %.2f" (x tmax));
    Buffer.add_string buf
      (Printf.sprintf "<path d=\"%s\" fill=\"none\" stroke=\"#0b62a4\" stroke-width=\"1.5\"/>\n"
         (Buffer.contents path)));
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let render ~model_name ?signal_ranges ?coverage_curve ?probes_total recorder =
  let r = Recorder.report recorder in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n";
  Buffer.add_string buf
    (Printf.sprintf "<title>Model coverage — %s</title>\n<style>%s</style></head>\n<body>\n"
       (escape model_name) css);
  Buffer.add_string buf (Printf.sprintf "<h1>Model coverage — %s</h1>\n" (escape model_name));
  Buffer.add_string buf "<div class=\"tiles\">\n";
  tile buf "Decision" r.Recorder.decision_pct r.Recorder.outcomes_covered r.Recorder.outcomes_total;
  tile buf "Condition" r.Recorder.condition_pct r.Recorder.conditions_covered
    r.Recorder.conditions_total;
  tile buf "MCDC" r.Recorder.mcdc_pct r.Recorder.mcdc_covered r.Recorder.mcdc_total;
  if r.Recorder.lookup_total > 0 then
    tile buf "Lookup tables" r.Recorder.lookup_pct r.Recorder.lookup_covered
      r.Recorder.lookup_total;
  Buffer.add_string buf "</div>\n";
  (* per-decision table *)
  Buffer.add_string buf "<h2>Decisions</h2>\n<table>\n";
  Buffer.add_string buf
    "<tr><th>Block</th><th>Decision</th><th>Outcomes</th><th>Conditions (T/F, MCDC)</th></tr>\n";
  List.iter
    (fun (d : Recorder.decision_status) ->
      let outcomes =
        Array.to_list d.Recorder.ds_outcomes
        |> List.mapi (fun i covered ->
               if covered then Printf.sprintf {|<span class="ok">%d✓</span>|} i
               else Printf.sprintf {|<span class="miss">%d✗</span>|} i)
        |> String.concat " "
      in
      let conditions =
        Array.to_list d.Recorder.ds_conditions
        |> List.map (fun (desc, st, sf, mcdc) ->
               let pol cls label seen =
                 Printf.sprintf {|<span class="%s">%s</span>|}
                   (if seen then cls else "miss")
                   label
               in
               Printf.sprintf {|<span class="mono">%s</span> %s %s %s|} (escape desc)
                 (pol "ok" "T" st) (pol "ok" "F" sf)
                 (if mcdc then {|<span class="ok">MCDC</span>|}
                  else {|<span class="miss">MCDC</span>|}))
        |> String.concat "<br>"
      in
      Buffer.add_string buf
        (Printf.sprintf "<tr><td class=\"mono\">%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n"
           (escape d.Recorder.ds_block) (escape d.Recorder.ds_desc) outcomes conditions))
    (Recorder.decisions_status recorder);
  Buffer.add_string buf "</table>\n";
  (* lookup tables *)
  (match Recorder.lookup_intervals recorder with
  | [] -> ()
  | tables ->
    Buffer.add_string buf "<h2>Lookup tables</h2>\n<table>\n";
    Buffer.add_string buf "<tr><th>Block</th><th>Intervals hit</th></tr>\n";
    List.iter
      (fun (name, hit, total) ->
        let cls = if hit = total then "ok" else "miss" in
        Buffer.add_string buf
          (Printf.sprintf "<tr><td class=\"mono\">%s</td><td class=\"%s\">%d / %d</td></tr>\n"
             (escape name) cls hit total))
      tables;
    Buffer.add_string buf "</table>\n");
  (* signal ranges *)
  (match signal_ranges with
  | None | Some [] -> ()
  | Some ranges ->
    Buffer.add_string buf "<h2>Signal ranges</h2>\n<table>\n";
    Buffer.add_string buf "<tr><th>Signal</th><th>Min</th><th>Max</th></tr>\n";
    List.iter
      (fun (name, lo, hi) ->
        Buffer.add_string buf
          (Printf.sprintf
             "<tr><td class=\"mono\">%s</td><td class=\"mono\">%g</td><td class=\"mono\">%g</td></tr>\n"
             (escape name) lo hi))
      ranges;
    Buffer.add_string buf "</table>\n");
  (* coverage-over-time curve (Figure 7) *)
  (match coverage_curve with
  | None | Some [] -> ()
  | Some points ->
    Buffer.add_string buf "<h2>Coverage over time</h2>\n";
    Buffer.add_string buf (curve_svg ?probes_total points));
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

let save ~model_name ?signal_ranges ?coverage_curve ?probes_total recorder path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (render ~model_name ?signal_ranges ?coverage_curve ?probes_total recorder))
