(** Self-contained HTML coverage report.

    The counterpart of the HTML reports Simulink's coverage tool
    produces: summary tiles for Decision / Condition / MCDC (and
    lookup-table coverage when present), then a per-decision table
    with outcome, condition-polarity and MCDC status, uncovered items
    highlighted. The output is one HTML file with inline CSS and no
    external assets. *)

val render :
  model_name:string -> ?signal_ranges:(string * float * float) list ->
  ?coverage_curve:(float * int) list -> ?probes_total:int -> Recorder.t -> string
(** Renders the recorder's current state. [signal_ranges] (from
    {!Cftcg.Evaluate.signal_ranges}) adds the observed min/max table
    when provided. [coverage_curve] — [(time_s, probes_covered)]
    corner points, e.g. from [Cftcg_obs.Series.points] — adds the
    paper's Figure-7 coverage-over-time step curve as an inline SVG;
    [probes_total] fixes its y-axis to the full probe count. *)

val save :
  model_name:string -> ?signal_ranges:(string * float * float) list ->
  ?coverage_curve:(float * int) list -> ?probes_total:int -> Recorder.t -> string -> unit
(** [save ~model_name recorder path] writes the report to [path]. *)
