(** Self-contained HTML coverage report.

    The counterpart of the HTML reports Simulink's coverage tool
    produces: summary tiles for Decision / Condition / MCDC (and
    lookup-table coverage when present), then a per-decision table
    with outcome, condition-polarity and MCDC status, uncovered items
    highlighted. The output is one HTML file with inline CSS and no
    external assets. *)

val render :
  model_name:string -> ?signal_ranges:(string * float * float) list -> Recorder.t -> string
(** Renders the recorder's current state. [signal_ranges] (from
    {!Cftcg.Evaluate.signal_ranges}) adds the observed min/max table
    when provided. *)

val save :
  model_name:string -> ?signal_ranges:(string * float * float) list -> Recorder.t -> string ->
  unit
(** [save ~model_name recorder path] writes the report to [path]. *)
