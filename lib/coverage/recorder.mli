(** Model coverage recorder.

    Accumulates the three metrics the paper evaluates (Table 3):

    - {b Decision Coverage} — each instrumented decision outcome
      (branch arm) observed at least once;
    - {b Condition Coverage} — each instrumented condition observed
      both true and false;
    - {b MCDC} — for each condition, two recorded evaluations of its
      decision that differ only in that condition and flip the
      decision outcome (unique-cause MCDC over full truth vectors;
      our generated code evaluates all conditions, so no masking is
      needed at runtime).

    One recorder instance is attached to an executing program via
    {!hooks}; replaying a tool's emitted test suite through a fresh
    recorder yields the fair post-hoc comparison the paper performs
    with Simulink's own coverage tooling. *)

open Cftcg_ir

type t

val create : Ir.program -> t
(** Fresh recorder for the program's decision table. *)

val hooks : t -> Hooks.t
(** Hooks (probe + condition + decision) feeding this recorder. *)

val clear : t -> unit
(** Forget everything recorded. *)

(** {1 Flat probe view (Algorithm 1)} *)

val n_probes : t -> int
val probe_seen : t -> int -> bool
val probes_covered : t -> int

(** {1 Metrics} *)

type report = {
  decision_pct : float;
  condition_pct : float;
  mcdc_pct : float;
  outcomes_covered : int;
  outcomes_total : int;
  conditions_covered : int;
  conditions_total : int;
  mcdc_covered : int;
  mcdc_total : int;
  lookup_covered : int;  (** lookup-table intervals hit *)
  lookup_total : int;
  lookup_pct : float;  (** 100 when the model has no lookup tables *)
}

val report : t -> report

val lookup_intervals : t -> (string * int * int) list
(** Per lookup table: [(block path, intervals hit, intervals)]. *)

val pp_report : Format.formatter -> report -> unit

type decision_status = {
  ds_block : string;  (** model path of the owning block *)
  ds_desc : string;
  ds_outcomes : bool array;  (** covered flag per outcome *)
  ds_conditions : (string * bool * bool * bool) array;
      (** description, seen true, seen false, MCDC achieved *)
}

val decisions_status : t -> decision_status list
(** Structured per-decision view — the data behind {!detailed} and
    the HTML report. *)

val detailed : t -> string
(** Multi-line per-decision breakdown in the style of a Simulink
    coverage report: outcome hits, condition polarities, and MCDC
    status per condition. *)

val uncovered : t -> (string * string * int list) list
(** Decisions with missing outcomes: [(block path, description,
    missing outcome indices)] — the debugging view testers use to see
    which model logic stayed unreached. *)

(** {1 Static model statistics} *)

val branch_total : Ir.program -> int
(** Total decision outcomes — the "#Branch" column of Table 2. *)
