open Cftcg_ir

(* Per decision we keep the truth vector under construction (bits set
   by Record_cond events) and a bounded set of (vector, outcome)
   evaluations for MCDC pair search. *)
type dec_state = {
  info : Ir.decision;
  outcomes_seen : bool array;
  cond_true : bool array;
  cond_false : bool array;
  mutable curr_vector : int;
  evals : (int * int, unit) Hashtbl.t;  (* (vector, outcome) *)
}

type t = {
  n_probes : int;
  probes : Bytes.t;
  decs : dec_state array;
  lookups : (string * int array) array;
}

let max_mcdc_evals = 4096

let create (prog : Ir.program) =
  let mk_dec (info : Ir.decision) =
    {
      info;
      outcomes_seen = Array.make info.Ir.n_outcomes false;
      cond_true = Array.make (Array.length info.Ir.conditions) false;
      cond_false = Array.make (Array.length info.Ir.conditions) false;
      curr_vector = 0;
      evals = Hashtbl.create 16;
    }
  in
  {
    n_probes = prog.Ir.n_probes;
    probes = Bytes.make prog.Ir.n_probes '\000';
    decs = Array.map mk_dec prog.Ir.decisions;
    lookups = prog.Ir.lookup_tables;
  }

let clear t =
  Bytes.fill t.probes 0 (Bytes.length t.probes) '\000';
  Array.iter
    (fun d ->
      Array.fill d.outcomes_seen 0 (Array.length d.outcomes_seen) false;
      Array.fill d.cond_true 0 (Array.length d.cond_true) false;
      Array.fill d.cond_false 0 (Array.length d.cond_false) false;
      d.curr_vector <- 0;
      Hashtbl.reset d.evals)
    t.decs

let on_probe t id = if id >= 0 && id < t.n_probes then Bytes.set t.probes id '\001'

let on_cond t dec ix value =
  let d = t.decs.(dec) in
  if ix >= 0 && ix < Array.length d.cond_true then begin
    if value then begin
      d.cond_true.(ix) <- true;
      d.curr_vector <- d.curr_vector lor (1 lsl ix)
    end
    else begin
      d.cond_false.(ix) <- true;
      d.curr_vector <- d.curr_vector land lnot (1 lsl ix)
    end
  end

let on_decision t dec outcome =
  let d = t.decs.(dec) in
  if outcome >= 0 && outcome < Array.length d.outcomes_seen then begin
    d.outcomes_seen.(outcome) <- true;
    if Array.length d.info.Ir.conditions > 0 && Hashtbl.length d.evals < max_mcdc_evals then
      Hashtbl.replace d.evals (d.curr_vector, outcome) ();
    d.curr_vector <- 0
  end

let hooks t =
  {
    Hooks.on_probe = Some (on_probe t);
    on_cond = Some (on_cond t);
    on_decision = Some (on_decision t);
    on_branch = None;
  }

let n_probes t = t.n_probes

let probe_seen t id = Bytes.get t.probes id <> '\000'

let probes_covered t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.probes;
  !n

type report = {
  decision_pct : float;
  condition_pct : float;
  mcdc_pct : float;
  outcomes_covered : int;
  outcomes_total : int;
  conditions_covered : int;
  conditions_total : int;
  mcdc_covered : int;
  mcdc_total : int;
  lookup_covered : int;
  lookup_total : int;
  lookup_pct : float;
}

(* A condition achieves MCDC when two recorded evaluations differ only
   in that condition's bit and produce different decision outcomes.
   [d.evals] is already the (vector, outcome) set, so one pass over it
   marks every condition at once — callers compute this per decision
   and index into it, instead of re-deriving the set per condition. *)
exception All_found

let mcdc_flags d =
  let nconds = Array.length d.info.Ir.conditions in
  let flags = Array.make nconds false in
  let remaining = ref nconds in
  (if nconds > 0 && Hashtbl.length d.evals > 0 then
     try
       Hashtbl.iter
         (fun (v, o) () ->
           for ix = 0 to nconds - 1 do
             (* decisions are 2-outcome when conditions exist *)
             if (not flags.(ix)) && Hashtbl.mem d.evals (v lxor (1 lsl ix), 1 - o) then begin
               flags.(ix) <- true;
               decr remaining;
               if !remaining = 0 then raise All_found
             end
           done)
         d.evals
     with All_found -> ());
  flags

let report t =
  let outcomes_covered = ref 0 in
  let outcomes_total = ref 0 in
  let conditions_covered = ref 0 in
  let conditions_total = ref 0 in
  let mcdc_covered = ref 0 in
  let mcdc_total = ref 0 in
  Array.iter
    (fun d ->
      outcomes_total := !outcomes_total + Array.length d.outcomes_seen;
      Array.iter (fun seen -> if seen then incr outcomes_covered) d.outcomes_seen;
      let nconds = Array.length d.info.Ir.conditions in
      conditions_total := !conditions_total + nconds;
      mcdc_total := !mcdc_total + nconds;
      let mcdc = mcdc_flags d in
      for ix = 0 to nconds - 1 do
        if d.cond_true.(ix) && d.cond_false.(ix) then incr conditions_covered;
        if mcdc.(ix) then incr mcdc_covered
      done)
    t.decs;
  let pct a b = if b = 0 then 100.0 else 100.0 *. float_of_int a /. float_of_int b in
  let lookup_covered = ref 0 in
  let lookup_total = ref 0 in
  Array.iter
    (fun (_, cells) ->
      lookup_total := !lookup_total + Array.length cells;
      Array.iter (fun cell -> if Bytes.get t.probes cell <> '\000' then incr lookup_covered) cells)
    t.lookups;
  {
    decision_pct = pct !outcomes_covered !outcomes_total;
    condition_pct = pct !conditions_covered !conditions_total;
    mcdc_pct = pct !mcdc_covered !mcdc_total;
    outcomes_covered = !outcomes_covered;
    outcomes_total = !outcomes_total;
    conditions_covered = !conditions_covered;
    conditions_total = !conditions_total;
    mcdc_covered = !mcdc_covered;
    mcdc_total = !mcdc_total;
    lookup_covered = !lookup_covered;
    lookup_total = !lookup_total;
    lookup_pct = pct !lookup_covered !lookup_total;
  }

let pp_report fmt r =
  Format.fprintf fmt "decision %.1f%% (%d/%d)  condition %.1f%% (%d/%d)  mcdc %.1f%% (%d/%d)"
    r.decision_pct r.outcomes_covered r.outcomes_total r.condition_pct r.conditions_covered
    r.conditions_total r.mcdc_pct r.mcdc_covered r.mcdc_total;
  if r.lookup_total > 0 then
    Format.fprintf fmt "  lookup %.1f%% (%d/%d)" r.lookup_pct r.lookup_covered r.lookup_total

let lookup_intervals t =
  Array.to_list t.lookups
  |> List.map (fun (name, cells) ->
         let hit = Array.fold_left (fun acc c -> acc + if Bytes.get t.probes c <> '\000' then 1 else 0) 0 cells in
         (name, hit, Array.length cells))

type decision_status = {
  ds_block : string;
  ds_desc : string;
  ds_outcomes : bool array;
  ds_conditions : (string * bool * bool * bool) array;
}

let decisions_status t =
  Array.to_list t.decs
  |> List.map (fun d ->
         let mcdc = mcdc_flags d in
         {
           ds_block = d.info.Ir.dec_block;
           ds_desc = d.info.Ir.dec_desc;
           ds_outcomes = Array.copy d.outcomes_seen;
           ds_conditions =
             Array.mapi
               (fun ix (c : Ir.condition) ->
                 (c.Ir.cond_desc, d.cond_true.(ix), d.cond_false.(ix), mcdc.(ix)))
               d.info.Ir.conditions;
         })

let detailed t =
  let buf = Buffer.create 2048 in
  Array.iter
    (fun d ->
      let hit = Array.fold_left (fun acc s -> acc + Bool.to_int s) 0 d.outcomes_seen in
      Buffer.add_string buf
        (Printf.sprintf "%s — %s: %d/%d outcomes\n" d.info.Ir.dec_block d.info.Ir.dec_desc hit
           (Array.length d.outcomes_seen));
      Array.iteri
        (fun i seen ->
          Buffer.add_string buf (Printf.sprintf "    outcome %d: %s\n" i (if seen then "covered" else "NOT COVERED")))
        d.outcomes_seen;
      let mcdc = mcdc_flags d in
      Array.iteri
        (fun ix (c : Ir.condition) ->
          let pol =
            match (d.cond_true.(ix), d.cond_false.(ix)) with
            | true, true -> "T/F"
            | true, false -> "T only"
            | false, true -> "F only"
            | false, false -> "never evaluated"
          in
          Buffer.add_string buf
            (Printf.sprintf "    condition %d (%s): %s, MCDC %s\n" ix c.Ir.cond_desc pol
               (if mcdc.(ix) then "achieved" else "NOT achieved")))
        d.info.Ir.conditions)
    t.decs;
  Buffer.contents buf

let uncovered t =
  Array.to_list t.decs
  |> List.filter_map (fun d ->
         let missing = ref [] in
         Array.iteri (fun i seen -> if not seen then missing := i :: !missing) d.outcomes_seen;
         if !missing = [] then None
         else Some (d.info.Ir.dec_block, d.info.Ir.dec_desc, List.rev !missing))

let branch_total (prog : Ir.program) =
  Array.fold_left (fun acc (d : Ir.decision) -> acc + d.Ir.n_outcomes) 0 prog.Ir.decisions
