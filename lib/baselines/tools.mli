(** Uniform interface over the test-case generators the paper
    compares — CFTCG, SLDV, SimCoTest, the "Fuzz Only" build — plus
    the CFTCG+Solver hybrid of §5.

    Every tool consumes a model and a wall-clock budget and produces
    a timestamped suite of byte-stream test cases. Coverage is then
    measured by one shared replay harness
    ({!Cftcg.Evaluate}) on the fully instrumented program — the
    fair-comparison setup the paper implements by converting test
    cases to CSV and using Simulink's own coverage statistics. *)

open Cftcg_model

type test_case = {
  data : Bytes.t;
  time : float;  (** seconds since the tool started *)
}

type outcome = {
  tool_name : string;
  suite : test_case list;  (** chronological *)
  executions : int;  (** generator-level executions/candidates *)
  iterations : int;  (** model steps performed, when known; 0 otherwise *)
}

type t = {
  name : string;
  generate : Graph.t -> seed:int64 -> time_budget:float -> outcome;
}

val cftcg : t
(** The paper's tool: full instrumentation + model-oriented loop. *)

val sldv : t
(** Constraint-driven bounded generation ({!Cftcg_symexec.Symexec}). *)

val simcotest : t
(** Signal-diversity search over the graph interpreter. *)

val fuzz_only : t
(** LibFuzzer-on-generated-code baseline: branchless boolean code,
    code-level probes only, byte-blind mutations (paper Figure 8). *)

val cftcg_variant :
  ?field_aware:bool -> ?iteration_metric:bool -> ?use_dictionary:bool -> string -> t
(** Ablation builds of CFTCG with individual ingredients disabled. *)

val cftcg_hybrid : t
(** The paper's future-work pipeline: fuzz first, then hand the
    uncovered objectives to the branch-distance solver
    ({!Hybrid}). *)

val all : t list
(** [cftcg; sldv; simcotest; fuzz_only; cftcg_hybrid]. *)

val by_name : string -> t option
