open Cftcg_model
module Codegen = Cftcg_codegen.Codegen
module Fuzzer = Cftcg_fuzz.Fuzzer
module Symexec = Cftcg_symexec.Symexec

type test_case = {
  data : Bytes.t;
  time : float;
}

type outcome = {
  tool_name : string;
  suite : test_case list;
  executions : int;
  iterations : int;
}

type t = {
  name : string;
  generate : Graph.t -> seed:int64 -> time_budget:float -> outcome;
}

let of_fuzzer_result name (r : Fuzzer.result) =
  {
    tool_name = name;
    suite =
      List.map
        (fun (tc : Fuzzer.test_case) -> { data = tc.Fuzzer.tc_data; time = tc.Fuzzer.tc_time })
        r.Fuzzer.test_suite;
    executions = r.Fuzzer.stats.Fuzzer.executions;
    iterations = r.Fuzzer.stats.Fuzzer.iterations;
  }

let fuzz_tool name ~mode ~field_aware ~iteration_metric ~use_dictionary =
  {
    name;
    generate =
      (fun m ~seed ~time_budget ->
        let prog = Codegen.lower ~mode m in
        let config =
          { Fuzzer.default_config with Fuzzer.seed; field_aware; iteration_metric; use_dictionary }
        in
        of_fuzzer_result name (Fuzzer.run ~config prog (Fuzzer.Time_budget time_budget)));
  }

let cftcg =
  fuzz_tool "CFTCG" ~mode:Codegen.Full ~field_aware:true ~iteration_metric:true
    ~use_dictionary:true

let fuzz_only =
  fuzz_tool "FuzzOnly" ~mode:Codegen.Branchless ~field_aware:false ~iteration_metric:false
    ~use_dictionary:false

let cftcg_variant ?(field_aware = true) ?(iteration_metric = true) ?(use_dictionary = true) name =
  fuzz_tool name ~mode:Codegen.Full ~field_aware ~iteration_metric ~use_dictionary

let sldv =
  {
    name = "SLDV";
    generate =
      (fun m ~seed ~time_budget ->
        let prog = Codegen.lower ~mode:Codegen.Full m in
        let config = { Symexec.default_config with Symexec.seed } in
        let r = Symexec.run_timed ~config prog ~time_budget in
        {
          tool_name = "SLDV";
          suite =
            List.map
              (fun (tc : Symexec.test_case) -> { data = tc.Symexec.data; time = tc.Symexec.time })
              r.Symexec.suite;
          executions = r.Symexec.executions;
          iterations = 0;
        });
  }

let simcotest =
  {
    name = "SimCoTest";
    generate =
      (fun m ~seed ~time_budget ->
        let config = { Simcotest.default_config with Simcotest.seed } in
        let r = Simcotest.run ~config m ~time_budget in
        {
          tool_name = "SimCoTest";
          suite =
            List.map
              (fun (tc : Simcotest.test_case) ->
                { data = tc.Simcotest.data; time = tc.Simcotest.time })
              r.Simcotest.suite;
          executions = r.Simcotest.executions;
          iterations = r.Simcotest.iterations;
        });
  }

let cftcg_hybrid =
  {
    name = "CFTCG+Solver";
    generate =
      (fun m ~seed ~time_budget ->
        let prog = Codegen.lower ~mode:Codegen.Full m in
        let config = { Hybrid.default_config with Hybrid.seed } in
        let r = Hybrid.run ~config prog ~time_budget in
        {
          tool_name = "CFTCG+Solver";
          suite =
            List.map
              (fun (tc : Hybrid.test_case) -> { data = tc.Hybrid.data; time = tc.Hybrid.time })
              r.Hybrid.suite;
          executions = r.Hybrid.fuzz_executions + r.Hybrid.solver_executions;
          iterations = 0;
        });
  }

let all = [ cftcg; sldv; simcotest; fuzz_only; cftcg_hybrid ]

let by_name name = List.find_opt (fun t -> String.lowercase_ascii t.name = String.lowercase_ascii name) all
