open Cftcg_ir
module Fuzzer = Cftcg_fuzz.Fuzzer
module Layout = Cftcg_fuzz.Layout
module Symexec = Cftcg_symexec.Symexec

type config = {
  seed : int64;
  fuzz_fraction : float;
}

let default_config = { seed = 1L; fuzz_fraction = 0.6 }

type test_case = {
  data : Bytes.t;
  time : float;
}

type result = {
  suite : test_case list;
  fuzz_executions : int;
  solver_executions : int;
  solver_targets : int;
  solver_solved : int;
}

(* Replay a suite against the flat probe map to hand the solver an
   accurate picture of what fuzzing already covered. *)
let coverage_bitmap (prog : Ir.program) suite =
  let layout = Layout.of_program prog in
  let bitmap = Bytes.make (max prog.Ir.n_probes 1) '\000' in
  let hooks = Hooks.probes_only (fun id -> Bytes.unsafe_set bitmap id '\001') in
  let compiled = Ir_compile.compile ~hooks prog in
  List.iter
    (fun data ->
      Ir_compile.reset compiled;
      let n = min (Layout.n_tuples layout data) 4096 in
      for tuple = 0 to n - 1 do
        Layout.load_tuple layout data ~tuple compiled;
        Ir_compile.step compiled
      done)
    suite;
  bitmap

let run ?(config = default_config) (prog : Ir.program) ~time_budget =
  let fuzz_budget = time_budget *. config.fuzz_fraction in
  let fuzz =
    Fuzzer.run
      ~config:{ Fuzzer.default_config with Fuzzer.seed = config.seed }
      prog (Fuzzer.Time_budget fuzz_budget)
  in
  let fuzz_suite =
    List.map (fun (tc : Fuzzer.test_case) -> { data = tc.Fuzzer.tc_data; time = tc.Fuzzer.tc_time })
      fuzz.Fuzzer.test_suite
  in
  let bitmap = coverage_bitmap prog (List.map (fun tc -> tc.data) fuzz_suite) in
  let uncovered = ref 0 in
  Bytes.iter (fun c -> if c = '\000' then incr uncovered) bitmap;
  let solver_budget = time_budget -. fuzz.Fuzzer.stats.Fuzzer.elapsed in
  let solver =
    Symexec.run_timed
      ~config:{ Symexec.default_config with Symexec.seed = Int64.add config.seed 7L }
      ~initial_coverage:bitmap prog ~time_budget:(Float.max solver_budget 0.0)
  in
  let offset = fuzz.Fuzzer.stats.Fuzzer.elapsed in
  let solver_suite =
    List.map
      (fun (tc : Symexec.test_case) -> { data = tc.Symexec.data; time = tc.Symexec.time +. offset })
      solver.Symexec.suite
  in
  let suite = fuzz_suite @ solver_suite in
  let final_bitmap = coverage_bitmap prog (List.map (fun tc -> tc.data) suite) in
  let uncovered_after = ref 0 in
  Bytes.iter (fun c -> if c = '\000' then incr uncovered_after) final_bitmap;
  {
    suite;
    fuzz_executions = fuzz.Fuzzer.stats.Fuzzer.executions;
    solver_executions = solver.Symexec.executions;
    solver_targets = !uncovered;
    solver_solved = !uncovered - !uncovered_after;
  }
