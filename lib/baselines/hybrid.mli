(** CFTCG + constraint solving — the paper's future-work pipeline.

    §5 of the paper: {i "we can first apply constraint solving to the
    branches in the model to obtain the constraints between ports and
    then generate input data accordingly"} — cross-inport constraints
    (exact sequence-number matches, correlated thresholds) are the
    one structural weakness of pure fuzzing.

    This driver splits the budget: a CFTCG fuzzing campaign first
    (cheap coverage of everything mutation can reach), then the
    branch-distance solver ({!Cftcg_symexec.Symexec}) targeted at
    exactly the probes the fuzzer left uncovered. The combined suite
    is returned chronologically. *)

open Cftcg_ir

type config = {
  seed : int64;
  fuzz_fraction : float;  (** share of the budget given to the fuzzing phase (default 0.6) *)
}

val default_config : config

type test_case = {
  data : Bytes.t;
  time : float;
}

type result = {
  suite : test_case list;
  fuzz_executions : int;
  solver_executions : int;
  solver_targets : int;  (** objectives handed to the solver *)
  solver_solved : int;
}

val run : ?config:config -> Ir.program -> time_budget:float -> result
