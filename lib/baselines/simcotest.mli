(** Simulation-based test generation — the SimCoTest stand-in.

    SimCoTest generates whole input {e signals} (not byte streams),
    simulates the model, and uses meta-heuristic search maximizing
    output-signal diversity to pick which candidates enter the test
    suite. This module reproduces that design:

    - each candidate assigns one signal shape (constant / step /
      ramp / pulse) per inport over a simulation horizon;
    - candidates are executed on the {e graph interpreter}
      ({!Cftcg_interp.Interp}) — the genuinely slow simulation path
      that bounds the method's throughput, as the paper measures
      (6 iterations/second on SolarPV);
    - a candidate joins the suite when its output-feature vector is
      far from everything already archived (diversity objective).

    Test cases are emitted as tuple byte streams so the same replay
    harness evaluates every tool. *)

open Cftcg_model

type config = {
  seed : int64;
  horizon : int;  (** simulation steps per candidate *)
  batch : int;  (** candidates considered per selection round *)
}

val default_config : config

type test_case = {
  data : Bytes.t;
  time : float;
}

type result = {
  suite : test_case list;
  executions : int;  (** candidates simulated *)
  iterations : int;  (** total interpreter steps *)
}

val run : ?config:config -> Graph.t -> time_budget:float -> result
