open Cftcg_model
module Rng = Cftcg_util.Rng
module Layout = Cftcg_fuzz.Layout
module Interp = Cftcg_interp.Interp

type config = {
  seed : int64;
  horizon : int;
  batch : int;
}

let default_config = { seed = 1L; horizon = 64; batch = 8 }

type test_case = {
  data : Bytes.t;
  time : float;
}

type result = {
  suite : test_case list;
  executions : int;
  iterations : int;
}

(* Input signal shapes, per SimCoTest's signal-based generation. *)
type shape =
  | Sig_constant of float
  | Sig_step of int * float * float  (* switch time, before, after *)
  | Sig_ramp of float * float  (* start, increment per step *)
  | Sig_pulse of int * float * float  (* period, low, high *)

let sample shape k =
  match shape with
  | Sig_constant v -> v
  | Sig_step (t, a, b) -> if k < t then a else b
  | Sig_ramp (v0, dv) -> v0 +. (dv *. float_of_int k)
  | Sig_pulse (period, lo, hi) -> if k mod (2 * period) < period then lo else hi

let random_shape rng ~horizon (ty : Dtype.t) =
  let amp () =
    if Dtype.equal ty Dtype.Bool then Rng.float rng 2.0 -. 0.5
    else if Dtype.is_integer ty then float_of_int (Rng.int_in rng (-200) 200)
    else Rng.float rng 200.0 -. 100.0
  in
  match Rng.int rng 4 with
  | 0 -> Sig_constant (amp ())
  | 1 -> Sig_step (Rng.int_in rng 1 (max 1 (horizon - 1)), amp (), amp ())
  | 2 -> Sig_ramp (amp (), Rng.float rng 10.0 -. 5.0)
  | _ -> Sig_pulse (Rng.int_in rng 1 8, amp (), amp ())

(* Output-signal features: the diversity space SimCoTest searches
   (signal-shape diversity of model outputs). *)
let features outputs =
  (* outputs.(k).(o): value of output o at step k *)
  let horizon = Array.length outputs in
  if horizon = 0 then [||]
  else begin
    let n_out = Array.length outputs.(0) in
    let feats = ref [] in
    for o = n_out - 1 downto 0 do
      let mn = ref Float.infinity and mx = ref Float.neg_infinity in
      let mean = ref 0.0 in
      let flips = ref 0 in
      for k = 0 to horizon - 1 do
        let v = outputs.(k).(o) in
        if v < !mn then mn := v;
        if v > !mx then mx := v;
        mean := !mean +. v;
        if k > 0 then begin
          let dv = v -. outputs.(k - 1).(o) in
          let dv' = if k > 1 then outputs.(k - 1).(o) -. outputs.(k - 2).(o) else dv in
          if (dv > 0.0 && dv' < 0.0) || (dv < 0.0 && dv' > 0.0) then incr flips
        end
      done;
      let squash x = Float.atan x in
      feats :=
        squash !mn :: squash !mx
        :: squash (!mean /. float_of_int horizon)
        :: squash (float_of_int !flips)
        :: squash outputs.(horizon - 1).(o)
        :: !feats
    done;
    Array.of_list !feats
  end

let distance a b =
  let n = min (Array.length a) (Array.length b) in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let run ?(config = default_config) (m : Graph.t) ~time_budget =
  let layout = Layout.of_inports (Graph.inports m) in
  let in_tys = Array.map snd (Graph.inports m) in
  let n_in = Array.length in_tys in
  let n_out = Array.length (Graph.outports m) in
  let rng = Rng.create config.seed in
  let start = Unix.gettimeofday () in
  let deadline = start +. time_budget in
  let executions = ref 0 in
  let iterations = ref 0 in
  let archive = ref [] in
  let suite = ref [] in
  let simulate shapes =
    (* each candidate is a fresh simulation run: the engine
       re-initializes the model every time, as driving Simulink's
       [sim()] does *)
    let interp = Interp.create m in
    Interp.reset interp;
    incr executions;
    let data = Bytes.make (config.horizon * layout.Layout.tuple_len) '\000' in
    let outputs = Array.make config.horizon [||] in
    for k = 0 to config.horizon - 1 do
      for i = 0 to n_in - 1 do
        let v = Value.of_float in_tys.(i) (sample shapes.(i) k) in
        let v = Value.cast in_tys.(i) v in
        Interp.set_input interp i v;
        Layout.set_field layout data ~tuple:k ~field:i v
      done;
      Interp.step interp;
      incr iterations;
      outputs.(k) <- Array.init n_out (fun o -> Value.to_float (Interp.get_output interp o))
    done;
    (data, features outputs)
  in
  let novelty feats =
    match !archive with
    | [] -> Float.infinity
    | arch -> List.fold_left (fun acc f -> Float.min acc (distance feats f)) Float.infinity arch
  in
  while Unix.gettimeofday () < deadline do
    (* one selection round: simulate a batch, keep the most novel *)
    let best = ref None in
    let remaining = ref config.batch in
    while !remaining > 0 && Unix.gettimeofday () < deadline do
      decr remaining;
      let shapes = Array.init n_in (fun i -> random_shape rng ~horizon:config.horizon in_tys.(i)) in
      let data, feats = simulate shapes in
      let nov = novelty feats in
      match !best with
      | Some (_, _, best_nov) when best_nov >= nov -> ()
      | _ -> best := Some (data, feats, nov)
    done;
    match !best with
    | Some (data, feats, _) ->
      archive := feats :: !archive;
      suite := { data; time = Unix.gettimeofday () -. start } :: !suite
    | None -> ()
  done;
  { suite = List.rev !suite; executions = !executions; iterations = !iterations }
