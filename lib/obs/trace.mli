(** Nestable timed spans with Chrome trace-event export.

    A span is a named wall-clock interval on the calling domain's
    timeline; spans nest by dynamic scope ({!with_span} inside
    {!with_span}). The recorder is process-global and thread-safe —
    each span costs one mutex acquisition {e at span end}, nothing
    while the span is open.

    Tracing is {b off by default} and near-free when off: a disabled
    {!with_span} is one boolean load and a direct call of the body —
    no timestamps, no allocation. Enable it around the phases of
    interest, then {!save_chrome} the buffer; the resulting JSON loads
    in [about:tracing] and {{:https://ui.perfetto.dev}Perfetto}. *)

val set_enabled : bool -> unit
(** Default [false]. Enabling also (re)anchors the trace epoch if no
    event has been recorded yet. *)

val enabled : unit -> bool

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and, when tracing is enabled, records
    a complete ("X") event covering its duration on the calling
    domain's track. The span is recorded even if [f] raises. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration marker ("i" event). *)

type event = {
  ev_name : string;
  ev_ts_us : float;  (** microseconds since the trace epoch *)
  ev_dur_us : float;  (** 0 for instants *)
  ev_tid : int;  (** recording domain id *)
  ev_instant : bool;
  ev_args : (string * string) list;
}

val events : unit -> event list
(** Recorded events, oldest first. *)

val clear : unit -> unit
(** Drops the buffer and re-anchors the epoch at the next event. *)

val to_chrome : unit -> string
(** The buffer as a Chrome trace-event JSON array. *)

val save_chrome : string -> unit
(** Writes {!to_chrome} to a file. *)
