(* Crash flight recorder: per-domain lock-free rings of recent events,
   merged into a JSON post-mortem on demand. See flight.mli. *)

type entry = {
  fl_ts : float;
  fl_level : string;
  fl_msg : string;
  fl_fields : (string * string) list;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let default_capacity = 256
let capacity = Atomic.make default_capacity

let set_capacity n =
  if n < 1 then invalid_arg "Flight.set_capacity";
  Atomic.set capacity n

(* One ring per domain. Slots are claimed with a fetch-and-add so the
   serve tier's many threads (all on domain 0) never contend on a
   lock; each claimed slot has exactly one writer. Readers snapshot
   without synchronization — a post-mortem tolerates a torn tail. *)
type ring = { rb_buf : entry option array; rb_cursor : int Atomic.t }

let registry_mutex = Mutex.create ()
let rings : ring list ref = ref []

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          rb_buf = Array.make (Atomic.get capacity) None;
          rb_cursor = Atomic.make 0;
        }
      in
      locked registry_mutex (fun () -> rings := r :: !rings);
      r)

let record ?ts ?(fields = []) ~level msg =
  if Atomic.get enabled_flag then begin
    let ts = match ts with Some t -> t | None -> Unix.gettimeofday () in
    let r = Domain.DLS.get ring_key in
    let n = Array.length r.rb_buf in
    let slot = Atomic.fetch_and_add r.rb_cursor 1 in
    r.rb_buf.(slot mod n) <-
      Some { fl_ts = ts; fl_level = level; fl_msg = msg; fl_fields = fields }
  end

let ring_entries r =
  (* Oldest-first reconstruction: slots [cursor - n, cursor) in claim
     order, skipping never-written cells. *)
  let n = Array.length r.rb_buf in
  let cursor = Atomic.get r.rb_cursor in
  let out = ref [] in
  let first = max 0 (cursor - n) in
  for i = cursor - 1 downto first do
    match r.rb_buf.(i mod n) with Some e -> out := e :: !out | None -> ()
  done;
  !out

let recent ?(limit = default_capacity) () =
  let all =
    locked registry_mutex (fun () ->
        List.concat_map ring_entries !rings)
  in
  let sorted = List.stable_sort (fun a b -> compare a.fl_ts b.fl_ts) all in
  let extra = List.length sorted - limit in
  if extra <= 0 then sorted
  else List.filteri (fun i _ -> i >= extra) sorted

let clear_rings () =
  locked registry_mutex (fun () ->
      List.iter
        (fun r ->
          Array.fill r.rb_buf 0 (Array.length r.rb_buf) None;
          Atomic.set r.rb_cursor 0)
        !rings)

(* --- snapshot providers --- *)

let providers : (string * (unit -> string)) list ref = ref []

let register_provider name f =
  locked registry_mutex (fun () ->
      providers := (name, f) :: List.remove_assoc name !providers)

(* --- post-mortem dump --- *)

let dump_dir = ref "."
let set_dump_dir d = dump_dir := d

(* A crashing campaign can salvage many workers in a row; cap the
   files we scatter so a chaos run does not fill the disk. *)
let max_dumps = 64
let dumps_written = Atomic.make 0

let clear () =
  clear_rings ();
  Atomic.set dumps_written 0

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_str buf s =
  Buffer.add_char buf '"';
  Buffer.add_string buf (json_escape s);
  Buffer.add_char buf '"'

let add_fields_obj buf fields =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_str buf k;
      Buffer.add_char buf ':';
      add_str buf v)
    fields;
  Buffer.add_char buf '}'

let add_entry buf e =
  Buffer.add_string buf (Printf.sprintf "{\"ts\":%.6f," e.fl_ts);
  Buffer.add_string buf "\"level\":";
  add_str buf e.fl_level;
  Buffer.add_string buf ",\"msg\":";
  add_str buf e.fl_msg;
  Buffer.add_string buf ",\"fields\":";
  add_fields_obj buf e.fl_fields;
  Buffer.add_char buf '}'

let dump_seq = Atomic.make 0

let dump ?(fields = []) ~reason () =
  if not (Atomic.get enabled_flag) then None
  else if Atomic.fetch_and_add dumps_written 1 >= max_dumps then None
  else begin
    let now = Unix.gettimeofday () in
    let path =
      Filename.concat !dump_dir
        (Printf.sprintf "postmortem-%d-%d-%d.json" (int_of_float now)
           (Unix.getpid ())
           (Atomic.fetch_and_add dump_seq 1))
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"reason\":";
    add_str buf reason;
    Buffer.add_string buf (Printf.sprintf ",\"ts\":%.6f" now);
    Buffer.add_string buf (Printf.sprintf ",\"pid\":%d" (Unix.getpid ()));
    Buffer.add_string buf ",\"fields\":";
    add_fields_obj buf fields;
    Buffer.add_string buf ",\"events\":[";
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_char buf ',';
        add_entry buf e)
      (recent ());
    Buffer.add_string buf "],\"metrics\":";
    add_str buf (Metrics.to_prometheus Metrics.default);
    Buffer.add_string buf ",\"snapshots\":{";
    let provs = locked registry_mutex (fun () -> !providers) in
    List.iteri
      (fun i (name, f) ->
        if i > 0 then Buffer.add_char buf ',';
        add_str buf name;
        Buffer.add_char buf ':';
        Buffer.add_string buf (try f () with _ -> "null"))
      provs;
    Buffer.add_string buf "}}";
    try
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> try close_out oc with _ -> ())
        (fun () -> Buffer.output_buffer oc buf);
      Some path
    with _ -> None
  end
