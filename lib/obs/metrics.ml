(* Counters are Atomic ints (lock-free, shared across Domains);
   gauges and histograms serialize updates behind one mutex each —
   they are observed at sampled cadence, never per-execution. The
   registry itself only locks on instrument creation/lookup. *)

type counter = { c_value : int Atomic.t }

type gauge = {
  g_mutex : Mutex.t;
  mutable g_value : float;
}

type histogram = {
  h_mutex : Mutex.t;
  h_bounds : float array;  (* upper bounds, increasing; +Inf implicit *)
  h_counts : int array;  (* per finite bound, cumulative at export *)
  mutable h_inf : int;  (* observations above the last bound *)
  mutable h_sum : float;
  mutable h_count : int;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type key = {
  k_name : string;
  k_labels : (string * string) list;  (* sorted by label name *)
}

type t = {
  r_mutex : Mutex.t;
  r_instruments : (key, instrument) Hashtbl.t;
  r_help : (string, string) Hashtbl.t;  (* per metric name *)
}

let create () =
  { r_mutex = Mutex.create (); r_instruments = Hashtbl.create 32; r_help = Hashtbl.create 32 }

let default = create ()

let collect_flag = Atomic.make false
let set_collect b = Atomic.set collect_flag b
let collecting () = Atomic.get collect_flag

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let key name labels =
  { k_name = name; k_labels = List.sort (fun (a, _) (b, _) -> compare a b) labels }

(* get-or-create under the registry mutex; kind mismatch is a
   programming error, reported loudly *)
let intern r ?help name labels make match_kind =
  let k = key name labels in
  locked r.r_mutex (fun () ->
      (match help with
      | Some h when not (Hashtbl.mem r.r_help name) -> Hashtbl.replace r.r_help name h
      | _ -> ());
      match Hashtbl.find_opt r.r_instruments k with
      | Some i -> (
        match match_kind i with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a different instrument kind" name))
      | None ->
        let v, i = make () in
        Hashtbl.replace r.r_instruments k i;
        v)

let counter ?(registry = default) ?help ?(labels = []) name =
  intern registry ?help name labels
    (fun () ->
      let c = { c_value = Atomic.make 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let inc c = Atomic.incr c.c_value
let add c n = ignore (Atomic.fetch_and_add c.c_value n)
let value c = Atomic.get c.c_value

let gauge ?(registry = default) ?help ?(labels = []) name =
  intern registry ?help name labels
    (fun () ->
      let g = { g_mutex = Mutex.create (); g_value = 0.0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let set g v = locked g.g_mutex (fun () -> g.g_value <- v)
let gauge_value g = locked g.g_mutex (fun () -> g.g_value)

let default_buckets = [| 1e2; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

let histogram ?(registry = default) ?help ?(labels = []) ?(buckets = default_buckets) name =
  intern registry ?help name labels
    (fun () ->
      let h =
        { h_mutex = Mutex.create (); h_bounds = Array.copy buckets;
          h_counts = Array.make (Array.length buckets) 0; h_inf = 0; h_sum = 0.0; h_count = 0 }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  locked h.h_mutex (fun () ->
      let n = Array.length h.h_bounds in
      let rec slot i = if i >= n then -1 else if v <= h.h_bounds.(i) then i else slot (i + 1) in
      (match slot 0 with
      | -1 -> h.h_inf <- h.h_inf + 1
      | i -> h.h_counts.(i) <- h.h_counts.(i) + 1);
      h.h_sum <- h.h_sum +. v;
      h.h_count <- h.h_count + 1)

let histogram_count h = locked h.h_mutex (fun () -> h.h_count)
let histogram_sum h = locked h.h_mutex (fun () -> h.h_sum)

let remove_labeled ?(registry = default) name labels =
  let k = key name labels in
  locked registry.r_mutex (fun () -> Hashtbl.remove registry.r_instruments k)

(* --- Prometheus text exposition --------------------------------------- *)

let escape_label_value s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* HELP text uses a narrower escape set than label values: the 0.0.4
   format only escapes backslash and newline there (a bare double
   quote is legal in HELP). *)
let escape_help s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)
    ^ "}"

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_prometheus r =
  locked r.r_mutex (fun () ->
      let entries = Hashtbl.fold (fun k i acc -> (k, i) :: acc) r.r_instruments [] in
      let entries =
        List.sort (fun (a, _) (b, _) -> compare (a.k_name, a.k_labels) (b.k_name, b.k_labels)) entries
      in
      let buf = Buffer.create 1024 in
      let last_name = ref "" in
      List.iter
        (fun (k, i) ->
          if k.k_name <> !last_name then begin
            last_name := k.k_name;
            (match Hashtbl.find_opt r.r_help k.k_name with
            | Some h ->
              Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" k.k_name (escape_help h))
            | None -> ());
            let ty =
              match i with
              | Counter _ -> "counter"
              | Gauge _ -> "gauge"
              | Histogram _ -> "histogram"
            in
            Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" k.k_name ty)
          end;
          match i with
          | Counter c ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" k.k_name (render_labels k.k_labels) (Atomic.get c.c_value))
          | Gauge g ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" k.k_name (render_labels k.k_labels)
                 (float_str (locked g.g_mutex (fun () -> g.g_value))))
          | Histogram h ->
            locked h.h_mutex (fun () ->
                let cum = ref 0 in
                Array.iteri
                  (fun ix bound ->
                    cum := !cum + h.h_counts.(ix);
                    Buffer.add_string buf
                      (Printf.sprintf "%s_bucket%s %d\n" k.k_name
                         (render_labels (k.k_labels @ [ ("le", float_str bound) ]))
                         !cum))
                  h.h_bounds;
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" k.k_name
                     (render_labels (k.k_labels @ [ ("le", "+Inf") ]))
                     h.h_count);
                Buffer.add_string buf
                  (Printf.sprintf "%s_sum%s %s\n" k.k_name (render_labels k.k_labels)
                     (float_str h.h_sum));
                Buffer.add_string buf
                  (Printf.sprintf "%s_count%s %d\n" k.k_name (render_labels k.k_labels) h.h_count)))
        entries;
      Buffer.contents buf)

let clear r =
  locked r.r_mutex (fun () ->
      Hashtbl.reset r.r_instruments;
      Hashtbl.reset r.r_help)
