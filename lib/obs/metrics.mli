(** Thread-safe metrics registry with Prometheus text exposition.

    Counters, gauges and histograms keyed by name + label set, safe to
    update concurrently from Domain workers: counters are lock-free
    ([Atomic]), gauges and histograms take one short mutex per
    observation. Instrument lookup ({!counter} / {!gauge} /
    {!histogram}) is get-or-create and may be done once outside a hot
    loop; the returned handle is then update-only.

    The {b collection switch} ({!set_collect}) is the cheap global
    gate the fuzzing hot loops consult: when off (the default),
    instrumented code skips metric updates entirely, so an idle
    observability layer costs one boolean load per guarded region.
    Updating a handle while collection is off still works — the switch
    is a convention for hot paths, not an enforcement. *)

type t
(** A registry: an isolated namespace of instruments. *)

val create : unit -> t

val default : t
(** The process-global registry that the CLI exports. *)

(** {1 Collection switch} *)

val set_collect : bool -> unit
(** Turns hot-path metric collection on or off (default off). *)

val collecting : unit -> bool

(** {1 Instruments}

    Lookup raises [Invalid_argument] if the same name + label set is
    already registered as a different instrument kind. *)

type counter

val counter : ?registry:t -> ?help:string -> ?labels:(string * string) list -> string -> counter
val inc : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

type gauge

val gauge : ?registry:t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

type histogram

val histogram :
  ?registry:t -> ?help:string -> ?labels:(string * string) list -> ?buckets:float array ->
  string -> histogram
(** [buckets] are upper bounds in increasing order (a [+Inf] bucket is
    implicit). The default buckets suit nanosecond timings: powers of
    10 from 100ns to 1s. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val remove_labeled : ?registry:t -> string -> (string * string) list -> unit
(** Unregisters the single instrument with exactly this name + label
    set, so a long-lived exporter (the [cftcg serve] daemon) can
    retire per-campaign series once the campaign is deleted. Handles
    obtained earlier keep working but are no longer exported; removing
    an unknown instrument is a no-op. *)

(** {1 Export} *)

val to_prometheus : t -> string
(** Prometheus text exposition format (version 0.0.4): [# HELP] /
    [# TYPE] comments, one sample line per instrument (histograms
    expand to [_bucket] / [_sum] / [_count] series), label values
    escaped. Instruments are emitted in name order so the output is
    deterministic. *)

val clear : t -> unit
(** Drops every instrument. Handles obtained before [clear] keep
    working but are no longer exported. *)
