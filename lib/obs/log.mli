(** Structured leveled JSONL logging with request-scoped correlation.

    Follows the same gate discipline as {!Metrics.set_collect}: the
    logger is {b off by default} and a disabled log call costs one
    atomic load — the format arguments are never rendered
    ([Printf.ikfprintf] discards them without building the string).
    Note the [?fields] list itself is still constructed by the
    caller; on a per-exec hot path, guard the call site with
    {!enabled} instead of relying on the gate alone. In practice
    every call site in this codebase fires at most once per epoch or
    per run, never per execution, so logging stays observation-only:
    same-seed campaigns are byte-identical with logging on or off.

    Each emitted line is one JSON object
    [{"ts":…,"level":"info","msg":"…","job":"c3","worker":"1",…}]:
    reserved keys [ts]/[level]/[msg], then the ambient correlation
    context and the call's [?fields] flattened alongside (all values
    JSON strings). Lines go to the optional file sink ({!open_file})
    and always to the {!Flight} ring, so [/debug/log] and post-mortem
    dumps see them even without a log file.

    {b Correlation context} is a stack of key/value fields scoped to
    the current (domain, thread): the serve boundary mints a job id,
    {!with_ctx} threads it through scheduler grants, campaign epochs
    and fuzzer workers, and every log line (and enabled {!Trace}
    span) picks it up automatically. Context does {e not} propagate
    into newly spawned domains — a campaign worker installs its own
    full context ([job]/[worker]/[epoch]) on entry. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

val level_of_string : string -> (level option, string) result
(** Accepts ["debug"|"info"|"warn"|"error"] and ["off"] (→ [Ok None]). *)

val set_level : level option -> unit
(** [Some l] enables lines at [l] and above; [None] (the default)
    disables logging entirely. *)

val current_level : unit -> level option

val enabled : level -> bool
(** One atomic load; use it to guard field construction on hot paths. *)

(** {1 File sink} *)

val open_file : ?append:bool -> string -> unit
(** Directs emitted lines to [path] as JSONL (truncates unless
    [~append:true]). Replaces any previously open sink. Writes are
    serialized by a mutex. *)

val close_file : unit -> unit
(** Flushes and closes the file sink, if any. Idempotent. *)

(** {1 Correlation context} *)

val with_ctx : (string * string) list -> (unit -> 'a) -> 'a
(** Runs the thunk with [fields] merged into the calling thread's
    ambient context (same-key fields override the outer binding);
    restores the previous context on exit, exceptions included. *)

val ctx : unit -> (string * string) list
(** The ambient context of the calling (domain, thread), outermost
    binding first. Empty when none is installed. *)

(** {1 Emission} *)

val debug : ?fields:(string * string) list -> ('a, unit, string, unit) format4 -> 'a
val info : ?fields:(string * string) list -> ('a, unit, string, unit) format4 -> 'a
val warn : ?fields:(string * string) list -> ('a, unit, string, unit) format4 -> 'a

val error : ?fields:(string * string) list -> ('a, unit, string, unit) format4 -> 'a
(** Explicit [?fields] are appended after the ambient context; a
    field whose key collides with the context (or with the reserved
    [ts]/[level]/[msg] keys) wins over the context and is emitted
    once. *)
