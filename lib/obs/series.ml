type point = {
  pt_time : float;
  pt_execs : int;
  pt_covered : int;
}

type t = {
  mutex : Mutex.t;
  mutable points : point list;  (* newest first *)
  mutable total : int option;
}

let create ?probes_total () = { mutex = Mutex.create (); points = []; total = probes_total }

let set_probes_total t n = t.total <- Some n

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t ~time ~execs ~covered =
  let p = { pt_time = time; pt_execs = execs; pt_covered = covered } in
  locked t (fun () ->
      match t.points with
      (* same coverage as the previous point: slide it forward instead
         of stacking duplicates — keeps the step curve's corners only *)
      | last :: rest when last.pt_covered = covered -> t.points <- p :: rest
      | _ -> t.points <- p :: t.points)

let points t = locked t (fun () -> List.rev t.points)

let probes_total t = t.total

let to_csv t =
  let buf = Buffer.create 256 in
  (match t.total with
  | Some n -> Buffer.add_string buf (Printf.sprintf "# probes_total=%d\n" n)
  | None -> ());
  Buffer.add_string buf "time_s,execs,probes_covered\n";
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "%.6f,%d,%d\n" p.pt_time p.pt_execs p.pt_covered))
    (points t);
  Buffer.contents buf

let save_csv t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv t))
