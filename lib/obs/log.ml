(* Structured leveled JSONL logging with (domain, thread)-scoped
   correlation context. See log.mli. *)

type level = Debug | Info | Warn | Error

let level_int = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Ok (Some Debug)
  | "info" -> Ok (Some Info)
  | "warn" | "warning" -> Ok (Some Warn)
  | "error" -> Ok (Some Error)
  | "off" | "none" -> Ok None
  | _ -> Error (Printf.sprintf "unknown log level %S" s)

(* 4 = off; a level passes when its int is >= the threshold. *)
let threshold = Atomic.make 4

let set_level = function
  | None -> Atomic.set threshold 4
  | Some l -> Atomic.set threshold (level_int l)

let current_level () =
  match Atomic.get threshold with
  | 0 -> Some Debug
  | 1 -> Some Info
  | 2 -> Some Warn
  | 3 -> Some Error
  | _ -> None

let enabled lvl = level_int lvl >= Atomic.get threshold

(* --- file sink --- *)

let sink_mutex = Mutex.create ()
let sink : out_channel option ref = ref None

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let close_file () =
  locked sink_mutex (fun () ->
      match !sink with
      | None -> ()
      | Some oc ->
          sink := None;
          (try flush oc with _ -> ());
          (try close_out oc with _ -> ()))

let open_file ?(append = false) path =
  close_file ();
  let flags =
    if append then [ Open_wronly; Open_creat; Open_append ]
    else [ Open_wronly; Open_creat; Open_trunc ]
  in
  let oc = open_out_gen flags 0o644 path in
  locked sink_mutex (fun () -> sink := Some oc)

(* --- correlation context ---

   Keyed by (domain, thread), not by domain alone: the serve tier
   runs one scheduler thread per job inside domain 0, so domain-local
   storage would bleed one job's ids into another's. Campaign worker
   domains install their own context on entry (DLS would not
   propagate there either way). *)

let ctx_mutex = Mutex.create ()

let ctx_tbl : (int * int, (string * string) list) Hashtbl.t =
  Hashtbl.create 32

let self_key () = ((Domain.self () :> int), Thread.id (Thread.self ()))

let ctx () =
  let key = self_key () in
  locked ctx_mutex (fun () ->
      Option.value ~default:[] (Hashtbl.find_opt ctx_tbl key))

let with_ctx fields f =
  let key = self_key () in
  let prev =
    locked ctx_mutex (fun () -> Hashtbl.find_opt ctx_tbl key)
  in
  let base = Option.value ~default:[] prev in
  let merged =
    List.filter (fun (k, _) -> not (List.mem_assoc k fields)) base @ fields
  in
  locked ctx_mutex (fun () -> Hashtbl.replace ctx_tbl key merged);
  Fun.protect
    ~finally:(fun () ->
      locked ctx_mutex (fun () ->
          match prev with
          | Some p -> Hashtbl.replace ctx_tbl key p
          | None -> Hashtbl.remove ctx_tbl key))
    f

(* --- emission --- *)

let reserved k = k = "ts" || k = "level" || k = "msg"

let merge_fields ambient explicit =
  List.filter
    (fun (k, _) ->
      (not (reserved k)) && not (List.mem_assoc k explicit))
    ambient
  @ List.filter (fun (k, _) -> not (reserved k)) explicit

let emit lvl fields msg =
  let ts = Unix.gettimeofday () in
  let fields = merge_fields (ctx ()) fields in
  let level = level_to_string lvl in
  Flight.record ~ts ~fields ~level msg;
  locked sink_mutex (fun () ->
      match !sink with
      | None -> ()
      | Some oc ->
          let buf = Buffer.create 128 in
          Buffer.add_string buf (Printf.sprintf "{\"ts\":%.6f," ts);
          Buffer.add_string buf
            (Printf.sprintf "\"level\":\"%s\",\"msg\":\"%s\"" level
               (Flight.json_escape msg));
          List.iter
            (fun (k, v) ->
              Buffer.add_string buf
                (Printf.sprintf ",\"%s\":\"%s\"" (Flight.json_escape k)
                   (Flight.json_escape v)))
            fields;
          Buffer.add_string buf "}\n";
          Buffer.output_buffer oc buf;
          flush oc)

let logf lvl ?(fields = []) fmt =
  if not (enabled lvl) then Printf.ikfprintf (fun () -> ()) () fmt
  else Printf.ksprintf (emit lvl fields) fmt

let debug ?fields fmt = logf Debug ?fields fmt
let info ?fields fmt = logf Info ?fields fmt
let warn ?fields fmt = logf Warn ?fields fmt
let error ?fields fmt = logf Error ?fields fmt
