(** Coverage-over-time series — the data behind the paper's Figure 7.

    A monotone step curve of probes covered versus wall clock and
    execution index. Producers ({!Cftcg_fuzz.Fuzzer} with
    [?coverage_series], the campaign's [Telemetry.series_bridge])
    append points whenever coverage grows; consumers export CSV or
    feed the curve to {!Cftcg_coverage.Html_report}. Thread-safe. *)

type point = {
  pt_time : float;  (** seconds since campaign start (or the virtual
                        exec-index clock under an exec budget) *)
  pt_execs : int;  (** execution index when recorded *)
  pt_covered : int;  (** probes covered at that instant *)
}

type t

val create : ?probes_total:int -> unit -> t
(** [probes_total] (when known) is carried into the CSV header as a
    comment so plots can show percentages. *)

val set_probes_total : t -> int -> unit
(** For producers that learn the probe count only after creating the
    series (e.g. the CLI, which creates the series before lowering the
    model). *)

val record : t -> time:float -> execs:int -> covered:int -> unit
(** Appends a point. Consecutive points with the same [covered] value
    are collapsed (the last one wins), keeping the series the compact
    corner set of the step curve; a final flat point therefore still
    extends the curve to the end of the run. *)

val points : t -> point list
(** Oldest first. *)

val probes_total : t -> int option

val to_csv : t -> string
(** [time_s,execs,probes_covered] with a header row (and a
    [# probes_total=N] comment when known) — load with any plotting
    tool to reproduce Figure 7. *)

val save_csv : t -> string -> unit
