type event = {
  ev_name : string;
  ev_ts_us : float;
  ev_dur_us : float;
  ev_tid : int;
  ev_instant : bool;
  ev_args : (string * string) list;
}

(* Enabled is read on every with_span call site, including ones
   reached from fuzzing hot paths — keep it one atomic load. *)
let flag = Atomic.make false

let mutex = Mutex.create ()
let buffer : event list ref = ref []  (* newest first *)
let epoch : float option ref = ref None

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let now () = Unix.gettimeofday ()

let set_enabled b =
  (* anchor the epoch at enable time, not at the first record — spans
     record at span end, so a span entered before enabling would
     otherwise anchor the epoch and give earlier starts negative ts *)
  if b then begin
    Mutex.lock mutex;
    (match !epoch with
    | None -> epoch := Some (now ())
    | Some _ -> ());
    Mutex.unlock mutex
  end;
  Atomic.set flag b

let enabled () = Atomic.get flag

(* microseconds since the first recorded event (anchored lazily so a
   long-running process that enables tracing late starts near 0) *)
let rel_us t =
  match !epoch with
  | Some e -> (t -. e) *. 1e6
  | None ->
    epoch := Some t;
    0.0

let domain_id () = (Domain.self () :> int)

(* Append the ambient correlation context (job/worker/epoch ids from
   Log.with_ctx) to an event's args, without shadowing explicit keys. *)
let with_correlation args =
  match Log.ctx () with
  | [] -> args
  | ctx -> args @ List.filter (fun (k, _) -> not (List.mem_assoc k args)) ctx

let with_span ?(args = []) name f =
  if not (Atomic.get flag) then f ()
  else begin
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now () in
        let args = with_correlation args in
        locked (fun () ->
            let ts = rel_us t0 in
            buffer :=
              { ev_name = name; ev_ts_us = ts; ev_dur_us = (t1 -. t0) *. 1e6;
                ev_tid = domain_id (); ev_instant = false; ev_args = args }
              :: !buffer))
      f
  end

let instant ?(args = []) name =
  if Atomic.get flag then begin
    let t = now () in
    let args = with_correlation args in
    locked (fun () ->
        let ts = rel_us t in
        buffer :=
          { ev_name = name; ev_ts_us = ts; ev_dur_us = 0.0; ev_tid = domain_id ();
            ev_instant = true; ev_args = args }
          :: !buffer)
  end

let events () = locked (fun () -> List.rev !buffer)

let clear () =
  locked (fun () ->
      buffer := [];
      epoch := None)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome trace-event format: a JSON array of "X" (complete) and "i"
   (instant) events. Both about:tracing and Perfetto accept the bare
   array form. *)
let to_chrome () =
  let evs = events () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf "\n{\"name\":\"%s\",\"cat\":\"cftcg\",\"ph\":\"%s\",\"ts\":%.3f"
           (json_escape ev.ev_name)
           (if ev.ev_instant then "i" else "X")
           ev.ev_ts_us);
      if not ev.ev_instant then Buffer.add_string buf (Printf.sprintf ",\"dur\":%.3f" ev.ev_dur_us);
      if ev.ev_instant then Buffer.add_string buf ",\"s\":\"t\"";
      Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" ev.ev_tid);
      (match ev.ev_args with
      | [] -> ()
      | args ->
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_string buf ",";
            Buffer.add_string buf (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          args;
        Buffer.add_string buf "}");
      Buffer.add_string buf "}")
    evs;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let save_chrome path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_chrome ()))
