(** Crash flight recorder: a fixed-size, lock-free ring of recent
    structured events per domain, dumped as a well-formed JSON
    post-mortem when something dies.

    The recorder is the black box behind {!Log}: every emitted log
    line (and any event recorded directly) lands in the calling
    domain's ring, overwriting the oldest entry once the ring is
    full. Recording is lock-free after a domain's first event — one
    [Atomic.fetch_and_add] plus two array stores — and {b off by
    default}: a disabled {!record} is a single atomic boolean load,
    the same gate discipline as {!Metrics.set_collect}.

    A {e dump} ({!dump}) serializes the merged ring tails of every
    domain, a snapshot of the default metrics registry, and whatever
    {e providers} other layers registered (batched-VM divergence
    counters, recent corpus-store operations) into
    [postmortem-<ts>.json]. The campaign layer calls it when the
    crash-isolation path salvages a worker; the serve daemon calls it
    when it aborts. *)

type entry = {
  fl_ts : float;  (** wall-clock seconds (Unix epoch) *)
  fl_level : string;  (** "debug" … "error", or a recorder-specific tag *)
  fl_msg : string;
  fl_fields : (string * string) list;  (** correlation ids and site fields *)
}

val set_enabled : bool -> unit
(** Default [false]. When off, {!record} is one atomic load and
    {!dump} returns [None]. *)

val enabled : unit -> bool

val set_capacity : int -> unit
(** Ring capacity per domain (default 256) for rings created after
    the call. Existing rings keep their size. *)

val record : ?ts:float -> ?fields:(string * string) list -> level:string -> string -> unit
(** Appends an event to the calling domain's ring ([ts] defaults to
    now). No-op when disabled. *)

val recent : ?limit:int -> unit -> entry list
(** The retained events of every domain merged by timestamp, oldest
    first, clipped to the newest [limit] (default 256). Reading is
    unsynchronized with writers — an in-flight entry may be missed —
    which is fine for a post-mortem surface. *)

val register_provider : string -> (unit -> string) -> unit
(** [register_provider name f] adds a named snapshot to every future
    dump: [f ()] must return one well-formed JSON value (it is
    embedded verbatim under ["snapshots"][name]). A provider that
    raises contributes [null]. Registering [name] again replaces the
    previous provider. *)

val set_dump_dir : string -> unit
(** Where post-mortem files are written (default: the current
    directory). *)

val dump : ?fields:(string * string) list -> reason:string -> unit -> string option
(** Writes [postmortem-<ts>.json] — reason, [fields] (typically the
    crashing job's correlation ids), the merged ring contents, a
    Prometheus snapshot of {!Metrics.default}, and every provider
    snapshot — and returns its path. Returns [None] when the recorder
    is disabled, when the per-process dump cap (64) is exhausted, or
    when the write fails (a dying process must not die harder). *)

val clear : unit -> unit
(** Drops every ring's contents and resets the dump cap (tests). *)

val json_escape : string -> string
(** Escapes a string for embedding inside a JSON string literal
    (shared with {!Log}'s line writer). *)
