open Cftcg_model
module Layout = Cftcg_fuzz.Layout

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let cell_of_value (v : Value.t) =
  match v with
  | Value.VBool b -> if b then "1" else "0"
  | Value.VInt (_, n) -> string_of_int n
  | Value.VFloat (_, f) ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.17g" f

let to_csv (layout : Layout.t) data =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "step";
  Array.iter
    (fun (f : Layout.field) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf f.Layout.f_name)
    layout.Layout.fields;
  Buffer.add_char buf '\n';
  let n = Layout.n_tuples layout data in
  for tuple = 0 to n - 1 do
    Buffer.add_string buf (string_of_int tuple);
    Array.iteri
      (fun field _ ->
        Buffer.add_char buf ',';
        Buffer.add_string buf (cell_of_value (Layout.field_value layout data ~tuple ~field)))
      layout.Layout.fields;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let of_csv (layout : Layout.t) text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> fail "empty CSV"
  | header :: rows ->
    let expected =
      "step"
      :: (Array.to_list layout.Layout.fields |> List.map (fun (f : Layout.field) -> f.Layout.f_name))
    in
    let got = String.split_on_char ',' header |> List.map String.trim in
    if got <> expected then
      fail "header mismatch: expected %s, got %s" (String.concat "," expected) header;
    let n_fields = Array.length layout.Layout.fields in
    let data = Bytes.make (List.length rows * layout.Layout.tuple_len) '\000' in
    List.iteri
      (fun tuple row ->
        let cells = String.split_on_char ',' row |> List.map String.trim in
        if List.length cells < n_fields + 1 then
          fail "row %d: truncated row: expected %d cells, got %d" tuple (n_fields + 1)
            (List.length cells);
        if List.length cells > n_fields + 1 then
          fail "row %d: expected %d cells, got %d" tuple (n_fields + 1) (List.length cells);
        (* NaN/Inf have no meaningful encoding in any inport dtype
           (integer coercion would silently wrap, and a NaN float
           makes every comparison false): reject them loudly *)
        let finite_or_fail f cell =
          if not (Float.is_finite f) then fail "row %d: non-finite value %S" tuple cell else f
        in
        List.iteri
          (fun i cell ->
            if i > 0 then begin
              let field = i - 1 in
              let ty = layout.Layout.fields.(field).Layout.f_ty in
              let v =
                if Dtype.is_float ty then
                  match float_of_string_opt cell with
                  | Some f -> Value.of_float ty (finite_or_fail f cell)
                  | None -> fail "row %d: bad float %S" tuple cell
                else
                  match int_of_string_opt cell with
                  | Some n -> Value.of_int ty n
                  | None -> (
                    (* tolerate float-formatted integers *)
                    match float_of_string_opt cell with
                    | Some f -> Value.of_float ty (finite_or_fail f cell)
                    | None -> fail "row %d: bad integer %S" tuple cell)
              in
              Layout.set_field layout data ~tuple ~field v
            end)
          cells)
      rows;
    data

let save_suite layout ~dir ~prefix suite =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.mapi
    (fun i data ->
      let path = Filename.concat dir (Printf.sprintf "%s_%04d.csv" prefix i) in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (to_csv layout data));
      path)
    suite

let load_suite layout paths =
  List.map
    (fun path ->
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> of_csv layout (really_input_string ic (in_channel_length ic))))
    paths
