(** Binary test case ⇄ CSV conversion.

    The paper's companion tool converts the fuzzer's binary test
    case files into the CSV form Simulink's coverage tooling imports
    ("for fair comparison", §4). Rows are model iterations; columns
    are the top-level inports in port order, preceded by a [step]
    index column. *)

module Layout = Cftcg_fuzz.Layout

exception Parse_error of string

val to_csv : Layout.t -> Bytes.t -> string
(** Header plus one row per complete tuple. Integer and boolean
    fields print as decimal integers; floats with round-trip
    precision. *)

val of_csv : Layout.t -> string -> Bytes.t
(** Inverse of {!to_csv}. Validates the header against the layout.
    Raises {!Parse_error} on malformed input. *)

val save_suite : Layout.t -> dir:string -> prefix:string -> Bytes.t list -> string list
(** Writes each test case to [dir/prefix_NNNN.csv]; returns the
    paths. Creates [dir] if missing. *)

val load_suite : Layout.t -> string list -> Bytes.t list
(** Reads CSV test cases back to binary. *)
