open Cftcg_model

type entry = {
  name : string;
  functionality : string;
  model : Graph.t Lazy.t;
  paper_branches : int;
  paper_blocks : int;
}

let all =
  [ {
      name = "CPUTask";
      functionality = "AutoSAR CPU task dispatch system";
      model = lazy (Cpu_task.model ());
      paper_branches = 107;
      paper_blocks = 275;
    };
    {
      name = "AFC";
      functionality = "Engine air-fuel control system";
      model = lazy (Afc.model ());
      paper_branches = 35;
      paper_blocks = 125;
    };
    {
      name = "TCP";
      functionality = "TCP three-way handshake protocol";
      model = lazy (Tcp.model ());
      paper_branches = 146;
      paper_blocks = 330;
    };
    {
      name = "RAC";
      functionality = "Robotic arm controller";
      model = lazy (Rac.model ());
      paper_branches = 179;
      paper_blocks = 667;
    };
    {
      name = "EVCS";
      functionality = "Electric vehicle charging system";
      model = lazy (Evcs.model ());
      paper_branches = 89;
      paper_blocks = 152;
    };
    {
      name = "TWC";
      functionality = "Train wheel speed controller";
      model = lazy (Twc.model ());
      paper_branches = 80;
      paper_blocks = 214;
    };
    {
      name = "UTPC";
      functionality = "Underwater thruster power control";
      model = lazy (Utpc.model ());
      paper_branches = 92;
      paper_blocks = 214;
    };
    {
      name = "SolarPV";
      functionality = "Solar PV panel output control";
      model = lazy (Solar_pv.model ());
      paper_branches = 55;
      paper_blocks = 131;
    } ]

let find name =
  let lname = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii e.name = lname) all
