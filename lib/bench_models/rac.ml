(* RAC — robotic arm controller.

   Three joints, each with its own servo subsystem (error deadband,
   limited-integrator PI, slew-rate limiting, travel limits), under a
   supervisory mode chart (PowerOff / Homing / Tracking / Fault /
   EStop). The largest benchmark by block count (paper Table 2). *)

open Cftcg_model
module B = Build
open Chart

(* One joint servo: inputs (enable, target, position) -> command.
   Packaged as an enabled subsystem so disabling a joint holds its
   last command — instrumentation mode (c). *)
let joint_subsystem k =
  let b = B.create (Printf.sprintf "Joint%d" k) in
  let target = B.inport b "target" Dtype.Float64 in
  let position = B.inport b "position" Dtype.Float64 in
  let err = B.sum b ~name:"Err" ~signs:"+-" [ target; position ] in
  let err_db = B.dead_zone b ~name:"ErrDB" ~lower:(-0.5) ~upper:0.5 err in
  let p_term = B.gain b ~name:"Kp" 0.8 err_db in
  let i_term =
    B.integrator b ~name:"Ki" ~gain:0.05 ~limits:{ Graph.int_lower = -20.; int_upper = 20. }
      err_db
  in
  let raw = B.sum b ~name:"PI" [ p_term; i_term ] in
  let slewed = B.rate_limiter b ~name:"Slew" ~rising:2.5 ~falling:(-2.5) raw in
  let cmd = B.saturation b ~name:"Travel" ~lower:(-90.) ~upper:90. slewed in
  let moving = B.compare_const b ~name:"Moving" Graph.R_gt 0.1 (B.abs_ b err_db) in
  B.outport b "cmd" cmd;
  B.outport b "moving" (B.convert b Dtype.Float64 moving);
  B.finish b

let supervisor =
  let power = in_ 0 in
  let home_req = in_ 1 in
  let fault_in = in_ 2 in
  let estop = in_ 3 in
  let all_homed = in_ 4 in
  let set_mode v = Set_out (0, num v) in
  {
    chart_name = "Supervisor";
    inputs =
      [| ("power", Dtype.Bool); ("home_req", Dtype.Bool); ("fault", Dtype.Bool);
         ("estop", Dtype.Bool); ("all_homed", Dtype.Bool) |];
    outputs = [| ("mode", Dtype.Int32); ("enable", Dtype.Bool); ("fine", Dtype.Bool) |];
    locals = [| ("fault_count", Dtype.Int32, 0.) |];
    states =
      [| {
           state_name = "PowerOff";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 0.; Set_out (1, num 0.) ];
           during = [];
           outgoing = [ { guard = power; actions = []; dst = 1 } ];
         };
         {
           state_name = "Homing";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 1.; Set_out (1, num 1.) ];
           during = [];
           outgoing =
             [ { guard = estop; actions = []; dst = 4 };
               { guard = not_ power; actions = []; dst = 0 };
               { guard = fault_in; actions = [ Set_local (0, local 0 +: num 1.) ]; dst = 3 };
               { guard = all_homed &&: (State_time >=: num 4.); actions = []; dst = 2 } ];
         };
         {
           (* Tracking is hierarchical: coarse approach vs fine
              positioning, switched on settling time *)
           state_name = "Tracking";
           exit_actions = [ Set_out (2, num 0.) ];
           children =
             [| {
                  state_name = "Coarse";
                  exit_actions = [];
                  children = [||];
                  init_child = 0;
           parallel = false;
                  entry = [ Set_out (2, num 0.) ];
                  during = [];
                  outgoing = [ { guard = State_time >=: num 6.; actions = []; dst = 1 } ];
                };
                {
                  state_name = "Fine";
                  exit_actions = [];
                  children = [||];
                  init_child = 0;
           parallel = false;
                  entry = [ Set_out (2, num 1.) ];
                  during = [];
                  outgoing = [ { guard = home_req; actions = []; dst = 0 } ];
                } |];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 2.; Set_out (1, num 1.) ];
           during = [];
           outgoing =
             [ { guard = estop; actions = []; dst = 4 };
               { guard = not_ power; actions = []; dst = 0 };
               { guard = fault_in; actions = [ Set_local (0, local 0 +: num 1.) ]; dst = 3 };
               { guard = home_req &&: (State_time >=: num 20.); actions = []; dst = 1 } ];
         };
         {
           state_name = "Fault";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 3.; Set_out (1, num 0.) ];
           during = [];
           outgoing =
             [ { guard = estop; actions = []; dst = 4 };
               (* three strikes latch into EStop *)
               { guard = local 0 >=: num 3.; actions = []; dst = 4 };
               { guard = (not_ fault_in) &&: (State_time >=: num 5.); actions = []; dst = 1 };
               { guard = not_ power; actions = []; dst = 0 } ];
         };
         {
           state_name = "EStop";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 4.; Set_out (1, num 0.) ];
           during = [];
           outgoing =
             [ { guard = (not_ estop) &&: (not_ power) &&: (State_time >=: num 10.);
                 actions = [ Set_local (0, num 0.) ]; dst = 0 } ];
         } |];
    init_state = 0;
  }

let model () =
  let b = B.create "RAC" in
  let power = B.inport b "Power" Dtype.Bool in
  let estop = B.inport b "EStop" Dtype.Bool in
  let home_req = B.inport b "HomeReq" Dtype.Bool in
  let t1 = B.inport b "Target1" Dtype.Int16 in
  let t2 = B.inport b "Target2" Dtype.Int16 in
  let t3 = B.inport b "Target3" Dtype.Int16 in
  (* simple plant feedback: position follows command through a filter *)
  let joints =
    List.mapi
      (fun k target ->
        let target_f = B.convert b Dtype.Float64 target in
        let target_lim =
          B.saturation b ~name:(Printf.sprintf "TLim%d" k) ~lower:(-90.) ~upper:90. target_f
        in
        (k, target_lim))
      [ t1; t2; t3 ]
  in
  (* joint overspeed fault: any target jumping too fast *)
  let fault =
    let jumps =
      List.map
        (fun (k, target_lim) ->
          let prev = B.memory b ~name:(Printf.sprintf "PrevT%d" k) target_lim in
          let jump = B.abs_ b (B.sum b ~signs:"+-" [ target_lim; prev ]) in
          B.compare_const b ~name:(Printf.sprintf "Jump%d" k) Graph.R_gt 45.0 jump)
        joints
    in
    B.logic b ~name:"AnyJump" Graph.L_or jumps
  in
  (* homing progress: all joints near zero *)
  let homed_list =
    List.map
      (fun (k, target_lim) ->
        ignore target_lim;
        let pos_fb = B.memory b ~name:(Printf.sprintf "PosFb%d" k) (B.const_f b 0.) in
        B.compare_const b ~name:(Printf.sprintf "Homed%d" k) Graph.R_lt 1.0 (B.abs_ b pos_fb))
      joints
  in
  let all_homed = B.logic b ~name:"AllHomed" Graph.L_and homed_list in
  let sup = B.chart b ~name:"SupervisorSM" supervisor [ power; home_req; fault; estop; all_homed ] in
  let mode = sup.(0) in
  let enable = sup.(1) in
  let fine = sup.(2) in
  let cmds =
    List.map
      (fun (k, target_lim) ->
        (* servo loop with plant feedback through a unit delay *)
        let fb = B.unit_delay b ~name:(Printf.sprintf "Plant%d" k) target_lim in
        let tracked =
          B.subsystem b
            ~name:(Printf.sprintf "Servo%d" k)
            ~activation:Graph.Enabled (joint_subsystem k)
            [ enable; target_lim; B.gain b 0.9 fb ]
        in
        tracked.(0))
      joints
  in
  let any_moving =
    B.compare_const b Graph.R_gt 0.5
      (B.max_ b ~name:"MaxCmd" (List.map (fun c -> B.abs_ b c) cmds))
  in
  B.outport b "Mode" (B.convert b Dtype.Int32 mode);
  B.outport b "FineMode" (B.convert b Dtype.Int32 fine);
  List.iteri (fun k cmd -> B.outport b (Printf.sprintf "Cmd%d" (k + 1)) cmd) cmds;
  B.outport b "Busy" (B.convert b Dtype.Int32 any_moving);
  B.finish b
