(* SolarPV — Solar PV panel energy output control (paper Fig. 1).

   The system manages several PV panels at once. Commands address one
   panel (PanelID); each panel owns a charging-state chart (Off /
   Standby / Charging / Full / Fault) driven by the reported output
   power. The plant-level logic accumulates delivered power, switches
   the storage path with hysteresis, and limits the feed-in level.

   Inports mirror the paper's fuzz driver example (Fig. 3):
   Enable int8, Power int32, PanelID int32. *)

open Cftcg_model
module B = Build
open Chart

let n_panels = 3

(* Per-panel charging state machine. Inputs: enable, power (W).
   Outputs: state code (0..4), delivered power. *)
let panel_chart id =
  let enable = in_ 0 in
  let power = in_ 1 in
  let set_code v = Set_out (0, num v) in
  let deliver e = Set_out (1, e) in
  {
    chart_name = Printf.sprintf "Panel%d" id;
    inputs = [| ("enable", Dtype.Bool); ("power", Dtype.Int32) |];
    outputs = [| ("state_code", Dtype.Int32); ("delivered", Dtype.Int32) |];
    locals = [| ("low_count", Dtype.Int32, 0.) |];
    states =
      [| {
           state_name = "Off";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_code 0.; deliver (num 0.) ];
           during = [ deliver (num 0.) ];
           outgoing = [ { guard = enable >: num 0.; actions = []; dst = 1 } ];
         };
         {
           state_name = "Standby";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_code 1.; Set_local (0, num 0.) ];
           during = [ deliver (num 0.) ];
           outgoing =
             [ { guard = not_ (enable >: num 0.); actions = []; dst = 0 };
               { guard = power >=: num 50.; actions = []; dst = 2 };
               { guard = power <: num 0.; actions = []; dst = 4 } ];
         };
         {
           state_name = "Charging";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_code 2. ];
           during =
             [ deliver power;
               Set_local (0, Bin (C_add, local 0, Bin (C_lt, power, num 50.))) ];
           outgoing =
             [ { guard = not_ (enable >: num 0.); actions = []; dst = 0 };
               { guard = power >: num 5000.; actions = []; dst = 4 };
               (* full after sustained high output *)
               { guard = (power >=: num 2000.) &&: (State_time >=: num 5.); actions = []; dst = 3 };
               (* repeated low power drops back to standby *)
               { guard = local 0 >=: num 4.; actions = []; dst = 1 } ];
         };
         {
           state_name = "Full";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_code 3. ];
           during = [ deliver (Bin (C_min, power, num 500.)) ];
           outgoing =
             [ { guard = not_ (enable >: num 0.); actions = []; dst = 0 };
               { guard = power <: num 1000.; actions = []; dst = 2 } ];
         };
         {
           state_name = "Fault";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_code 4.; deliver (num 0.) ];
           during = [ deliver (num 0.) ];
           outgoing =
             [ (* operator must cycle enable off to clear the fault *)
               { guard = not_ (enable >: num 0.); actions = []; dst = 0 } ];
         } |];
    init_state = 0;
  }

let model () =
  let b = B.create "SolarPV" in
  let enable = B.inport b "Enable" Dtype.Int8 in
  let power = B.inport b "Power" Dtype.Int32 in
  let panel_id = B.inport b "PanelID" Dtype.Int32 in
  (* command routing: the addressed panel sees the live enable/power,
     the others hold their previous command *)
  let deliveries =
    List.init n_panels (fun k ->
        let addressed =
          B.compare_const b ~name:(Printf.sprintf "IsPanel%d" k) Graph.R_eq (float_of_int k)
            panel_id
        in
        let en_bool = B.compare_const b Graph.R_gt 0.0 enable in
        let latched_en =
          (* per-panel enable latch: update only when addressed *)
          let held = B.memory b ~name:(Printf.sprintf "HeldEn%d" k) en_bool in
          B.switch b ~name:(Printf.sprintf "EnSel%d" k) en_bool addressed held
        in
        let held_pw = B.memory b ~name:(Printf.sprintf "HeldPw%d" k) power in
        let latched_pw = B.switch b ~name:(Printf.sprintf "PwSel%d" k) power addressed held_pw in
        let outs =
          B.chart b ~name:(Printf.sprintf "PanelSM%d" k) (panel_chart k) [ latched_en; latched_pw ]
        in
        (outs.(0), outs.(1)))
  in
  let total =
    B.sum b ~name:"TotalPower" (List.map (fun (_, d) -> B.convert b Dtype.Float64 d) deliveries)
  in
  (* storage path selection with hysteresis: battery below 1 kW,
     grid feed-in above 3 kW *)
  let storage_mode =
    B.relay b ~name:"StorageRelay" ~on_point:3000. ~off_point:1000. ~on_value:1. ~off_value:0.
      total
  in
  (* feed-in limiter *)
  let limited = B.saturation b ~name:"FeedLimit" ~lower:0. ~upper:8000. total in
  let smoothed = B.filter b ~name:"FeedFilter" 0.4 limited in
  (* return code: fault dominates, then full, then charging count *)
  let fault_any =
    let faults =
      List.map (fun (code, _) -> B.compare_const b Graph.R_eq 4.0 code) deliveries
    in
    B.logic b ~name:"AnyFault" Graph.L_or faults
  in
  let charging_count =
    B.sum b ~name:"ChargingCount"
      (List.map
         (fun (code, _) ->
           B.convert b Dtype.Float64 (B.compare_const b Graph.R_eq 2.0 code))
         deliveries)
  in
  let ret =
    B.switch b ~name:"RetSel" (B.const_f b 100.) fault_any
      (B.sum b [ charging_count; B.gain b 10. storage_mode ])
  in
  B.outport b "Ret" (B.convert b Dtype.Int32 ret);
  B.outport b "FeedPower" (B.convert b Dtype.Int32 smoothed);
  B.finish b
