(* TWC — train wheel speed controller (wheel-slide protection).

   Compares wheel speed against train reference speed, classifies
   slip severity through an adhesion state machine
   (Normal / Slip / HeavySlip / Recovery / Emergency), and modulates
   brake effort through a rate limiter and an adhesion lookup. *)

open Cftcg_model
module B = Build
open Chart

let slip_chart =
  let slip_pct = in_ 0 in
  let brake_demand = in_ 1 in
  let set_mode v = Set_out (0, num v) in
  {
    chart_name = "SlipSM";
    inputs = [| ("slip_pct", Dtype.Int32); ("brake_demand", Dtype.Bool) |];
    outputs = [| ("mode", Dtype.Int32); ("release", Dtype.Bool) |];
    locals = [| ("episodes", Dtype.Int32, 0.) |];
    states =
      [| {
           state_name = "Normal";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 0.; Set_out (1, num 0.) ];
           during = [];
           outgoing =
             [ { guard = (slip_pct >=: num 5.) &&: (slip_pct <: num 30.) &&: brake_demand;
                 actions = [ Set_local (0, local 0 +: num 1.) ]; dst = 1 };
               { guard = (slip_pct >=: num 30.) &&: brake_demand;
                 actions = [ Set_local (0, local 0 +: num 1.) ]; dst = 2 } ];
         };
         {
           state_name = "Slip";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 1.; Set_out (1, num 1.) ];
           during = [];
           outgoing =
             [ { guard = slip_pct >=: num 30.; actions = []; dst = 2 };
               { guard = slip_pct <: num 2.; actions = []; dst = 3 };
               (* chronic slipping escalates *)
               { guard = State_time >=: num 10.; actions = []; dst = 2 } ];
         };
         {
           state_name = "HeavySlip";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 2.; Set_out (1, num 1.) ];
           during = [];
           outgoing =
             [ { guard = local 0 >=: num 3.; actions = []; dst = 4 };
               { guard = slip_pct <: num 2.; actions = []; dst = 3 };
               { guard = State_time >=: num 12.; actions = []; dst = 4 } ];
         };
         {
           state_name = "Recovery";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 3.; Set_out (1, num 0.) ];
           during = [];
           outgoing =
             [ { guard = slip_pct >=: num 5.; actions = []; dst = 1 };
               { guard = State_time >=: num 4.;
                 actions = [ Set_local (0, Bin (C_max, local 0 -: num 1., num 0.)) ]; dst = 0 } ];
         };
         {
           state_name = "Emergency";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 4.; Set_out (1, num 0.) ];
           during = [];
           outgoing =
             [ { guard = (not_ brake_demand) &&: (slip_pct <: num 2.) &&: (State_time >=: num 8.);
                 actions = [ Set_local (0, num 0.) ]; dst = 0 } ];
         } |];
    init_state = 0;
  }

let model () =
  let b = B.create "TWC" in
  let wheel = B.inport b "WheelSpeed" Dtype.UInt16 in
  (* km/h x10 *)
  let train = B.inport b "TrainSpeed" Dtype.UInt16 in
  let brake_lvl = B.inport b "BrakeLevel" Dtype.UInt8 in
  let rail_wet = B.inport b "RailWet" Dtype.Bool in
  let wheel_f = B.gain b ~name:"WheelScale" 0.1 (B.convert b Dtype.Float64 wheel) in
  let train_f = B.gain b ~name:"TrainScale" 0.1 (B.convert b Dtype.Float64 train) in
  (* signed slip percentage: positive = wheel slide under braking,
     negative = wheel spin; divide guarded at standstill *)
  let diff = B.sum b ~name:"SpeedDiff" ~signs:"+-" [ train_f; wheel_f ] in
  let moving = B.compare_const b ~name:"Moving" Graph.R_gt 5.0 train_f in
  let slip_pct_raw =
    B.product b ~name:"SlipPct" ~ops:"*/" [ B.gain b 100. diff; B.max_ b [ train_f; B.const_f b 1. ] ]
  in
  let slip_pct =
    B.switch b ~name:"SlipGate" (B.saturation b ~lower:(-50.) ~upper:100. slip_pct_raw) moving
      (B.const_f b 0.)
  in
  let brake_demand = B.compare_const b ~name:"Braking" Graph.R_gt 10.0 (B.convert b Dtype.Float64 brake_lvl) in
  let sm = B.chart b ~name:"SlipControl" slip_chart
      [ B.convert b Dtype.Int32 slip_pct; brake_demand ]
  in
  let mode = sm.(0) in
  let release = sm.(1) in
  (* adhesion-limited brake effort *)
  let adhesion =
    B.lookup b ~name:"AdhesionCurve" ~xs:[| 0.; 40.; 90.; 160. |] ~ys:[| 0.30; 0.22; 0.15; 0.10 |]
      train_f
  in
  let wet_factor = B.switch b ~name:"WetDerate" (B.const_f b 0.6) rail_wet (B.const_f b 1.0) in
  let max_effort = B.product b ~name:"MaxEffort" [ adhesion; wet_factor; B.const_f b 400. ] in
  let demand = B.gain b ~name:"DemandScale" 1.2 (B.convert b Dtype.Float64 brake_lvl) in
  let effort_target =
    B.switch b ~name:"ReleaseSel" (B.gain b 0.3 demand) release (B.min_ b [ demand; max_effort ])
  in
  let emergency = B.compare_const b ~name:"IsEmergency" Graph.R_eq 4.0 mode in
  let effort_target2 =
    B.switch b ~name:"EmergencySel" max_effort emergency effort_target
  in
  let effort = B.rate_limiter b ~name:"EffortRamp" ~rising:25. ~falling:(-40.) effort_target2 in
  let effort_lim = B.saturation b ~name:"EffortLimit" ~lower:5. ~upper:100. effort in
  (* sanding when heavy slip persists *)
  let heavy = B.compare_const b Graph.R_ge 2.0 mode in
  let sand_timer = B.counter b ~name:"SandTimer" 12 heavy in
  let sanding =
    B.and_ b ~name:"Sanding" heavy (B.compare_const b Graph.R_ge 3.0 sand_timer)
  in
  B.outport b "Mode" (B.convert b Dtype.Int32 mode);
  B.outport b "BrakeEffort" effort_lim;
  B.outport b "Sanding" (B.convert b Dtype.Int32 sanding);
  B.finish b
