(* EVCS — electric vehicle charging system.

   CC/CV charging profile under a session state machine
   (Idle / Authorizing / Plugged / ChargingCC / ChargingCV / Complete
   / Fault), with thermal derating and an earth-leakage trip. *)

open Cftcg_model
module B = Build
open Chart

let session =
  let plug = in_ 0 in
  let auth_token = in_ 1 in
  let soc = in_ 2 in
  let fault_in = in_ 3 in
  let set_phase v = Set_out (0, num v) in
  {
    chart_name = "Session";
    inputs =
      [| ("plugged", Dtype.Bool); ("token", Dtype.Int32); ("soc", Dtype.Int32);
         ("fault", Dtype.Bool) |];
    outputs = [| ("phase", Dtype.Int32); ("contactor", Dtype.Bool) |];
    locals = [| ("auth_fail", Dtype.Int32, 0.) |];
    states =
      [| {
           state_name = "Idle";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_phase 0.; Set_out (1, num 0.) ];
           during = [];
           outgoing = [ { guard = plug; actions = []; dst = 1 } ];
         };
         {
           state_name = "Authorizing";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_phase 1. ];
           during = [];
           outgoing =
             [ { guard = not_ plug; actions = []; dst = 0 };
               (* a valid token is in the 4000..4999 range *)
               { guard = (auth_token >=: num 4000.) &&: (auth_token <: num 5000.);
                 actions = [ Set_local (0, num 0.) ]; dst = 2 };
               { guard = (State_time >=: num 3.) &&: (local 0 >=: num 2.); actions = []; dst = 6 };
               { guard = State_time >=: num 3.;
                 actions = [ Set_local (0, local 0 +: num 1.) ]; dst = 1 } ];
         };
         {
           state_name = "Plugged";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_phase 2.; Set_out (1, num 1.) ];
           during = [];
           outgoing =
             [ { guard = not_ plug; actions = []; dst = 0 };
               { guard = fault_in; actions = []; dst = 6 };
               { guard = soc <: num 80.; actions = []; dst = 3 };
               { guard = soc <: num 100.; actions = []; dst = 4 };
               (* already full: complete after one settling step *)
               { guard = State_time >=: num 1.; actions = []; dst = 5 } ];
         };
         {
           state_name = "ChargingCC";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_phase 3. ];
           during = [];
           outgoing =
             [ { guard = fault_in; actions = []; dst = 6 };
               { guard = not_ plug; actions = []; dst = 0 };
               { guard = soc >=: num 80.; actions = []; dst = 4 } ];
         };
         {
           state_name = "ChargingCV";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_phase 4. ];
           during = [];
           outgoing =
             [ { guard = fault_in; actions = []; dst = 6 };
               { guard = not_ plug; actions = []; dst = 0 };
               { guard = soc >=: num 100.; actions = []; dst = 5 } ];
         };
         {
           state_name = "Complete";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_phase 5.; Set_out (1, num 0.) ];
           during = [];
           outgoing = [ { guard = not_ plug; actions = []; dst = 0 } ];
         };
         {
           state_name = "Fault";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_phase 6.; Set_out (1, num 0.) ];
           during = [];
           outgoing =
             [ { guard = (not_ plug) &&: (State_time >=: num 5.);
                 actions = [ Set_local (0, num 0.) ]; dst = 0 } ];
         } |];
    init_state = 0;
  }

let model () =
  let b = B.create "EVCS" in
  let plugged = B.inport b "Plugged" Dtype.Bool in
  let token = B.inport b "Token" Dtype.Int32 in
  let soc = B.inport b "SoC" Dtype.UInt8 in
  let temp = B.inport b "Temp" Dtype.Int16 in
  let leakage = B.inport b "Leakage" Dtype.UInt16 in
  (* protective trips *)
  let overtemp =
    B.relay b ~name:"TempRelay" ~on_point:70. ~off_point:55. ~on_value:1. ~off_value:0.
      (B.convert b Dtype.Float64 temp)
  in
  let leak_trip = B.compare_const b ~name:"LeakTrip" Graph.R_gt 30.0 (B.convert b Dtype.Float64 leakage) in
  let fault = B.or_ b ~name:"AnyTrip" (B.compare_const b Graph.R_gt 0.0 overtemp) leak_trip in
  let soc_clamped = B.saturation b ~name:"SocClamp" ~lower:0. ~upper:100. (B.convert b Dtype.Float64 soc) in
  let sess = B.chart b ~name:"SessionSM" session
      [ plugged; token; B.convert b Dtype.Int32 soc_clamped; fault ]
  in
  let phase = sess.(0) in
  let contactor = sess.(1) in
  (* current command: CC phase → max current, CV phase → tapers with
     SoC, derated by temperature *)
  let cc = B.compare_const b Graph.R_eq 3.0 phase in
  let cv = B.compare_const b Graph.R_eq 4.0 phase in
  let taper =
    B.lookup b ~name:"CvTaper" ~xs:[| 80.; 90.; 96.; 100. |] ~ys:[| 32.; 16.; 6.; 1. |]
      soc_clamped
  in
  let derate =
    B.lookup b ~name:"TempDerate" ~xs:[| 0.; 40.; 60.; 80. |] ~ys:[| 1.0; 1.0; 0.6; 0.2 |]
      (B.convert b Dtype.Float64 temp)
  in
  let base_amps =
    B.switch b ~name:"PhaseAmps" (B.const_f b 32.) cc (B.switch b taper cv (B.const_f b 0.))
  in
  let amps_cmd =
    B.product b ~name:"AmpsCmd"
      [ base_amps; derate; B.convert b Dtype.Float64 contactor ]
  in
  let ramped = B.rate_limiter b ~name:"AmpsRamp" ~rising:4. ~falling:(-16.) amps_cmd in
  let energy = B.integrator b ~name:"EnergyMeter" ~gain:0.01 ramped in
  B.outport b "Phase" (B.convert b Dtype.Int32 phase);
  B.outport b "Amps" ramped;
  B.outport b "Energy" energy;
  B.outport b "Tripped" (B.convert b Dtype.Int32 fault);
  B.finish b
