(* TCP — three-way handshake / teardown protocol engine.

   Input is a decoded segment: Flags (bit0 SYN, bit1 ACK, bit2 FIN,
   bit3 RST), SeqNo, AckNo, plus an application command (1 = active
   open, 2 = passive open, 3 = close, 4 = send).
   The chart walks the RFC 793 connection state machine with sequence
   number checking and retransmission timeouts. *)

open Cftcg_model
module B = Build
open Chart

(* flag bit extraction inside the chart: (flags / 2^k) mod 2 *)
let bit flags k =
  Bin (C_mod, Bin (C_div, flags, num (Float.of_int (1 lsl k))), num 2.) >=: num 1.

let tcp_chart =
  let flags = in_ 0 in
  let seq_no = in_ 1 in
  let ack_no = in_ 2 in
  let cmd = in_ 3 in
  let syn = bit flags 0 in
  let ack = bit flags 1 in
  let fin = bit flags 2 in
  let rst = bit flags 3 in
  let iss = local 0 (* our initial send sequence *) in
  let irs = local 1 (* peer's sequence *) in
  let retries = local 2 in
  let set_state v = Set_out (0, num v) in
  let good_ack = ack_no =: (iss +: num 1.) in
  let reset_to_closed = { guard = rst; actions = []; dst = 0 } in
  {
    chart_name = "TcpSM";
    inputs =
      [| ("flags", Dtype.UInt8); ("seq", Dtype.Int32); ("ackno", Dtype.Int32); ("cmd", Dtype.Int8) |];
    outputs = [| ("state_code", Dtype.Int32); ("tx_flags", Dtype.Int32); ("established", Dtype.Bool) |];
    locals = [| ("iss", Dtype.Int32, 100.); ("irs", Dtype.Int32, 0.); ("retries", Dtype.Int32, 0.) |];
    states =
      [| {
           (* 0 *)
           state_name = "Closed";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_state 0.; Set_out (1, num 0.); Set_out (2, num 0.) ];
           during = [];
           outgoing =
             [ { guard = cmd =: num 1.;
                 actions = [ Set_out (1, num 1.) (* SYN *); Set_local (2, num 0.) ]; dst = 2 };
               { guard = cmd =: num 2.; actions = []; dst = 1 } ];
         };
         {
           (* 1 *)
           state_name = "Listen";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_state 1. ];
           during = [];
           outgoing =
             [ reset_to_closed;
               { guard = syn &&: not_ ack;
                 actions = [ Set_local (1, seq_no); Set_out (1, num 3.) (* SYN|ACK *) ];
                 dst = 3 };
               { guard = cmd =: num 3.; actions = []; dst = 0 } ];
         };
         {
           (* 2 *)
           state_name = "SynSent";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_state 2. ];
           during = [];
           outgoing =
             [ reset_to_closed;
               { guard = syn &&: ack &&: good_ack;
                 actions = [ Set_local (1, seq_no); Set_out (1, num 2.) (* ACK *) ];
                 dst = 4 };
               { guard = syn &&: not_ ack;
                 actions = [ Set_local (1, seq_no); Set_out (1, num 3.) ];
                 dst = 3 };
               (* retransmit SYN on timeout, give up after 4 tries *)
               { guard = (State_time >=: num 6.) &&: (retries <: num 4.);
                 actions = [ Set_local (2, retries +: num 1.); Set_out (1, num 1.) ];
                 dst = 2 };
               { guard = (State_time >=: num 6.) &&: (retries >=: num 4.); actions = []; dst = 0 } ];
         };
         {
           (* 3 *)
           state_name = "SynRcvd";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_state 3. ];
           during = [];
           outgoing =
             [ reset_to_closed;
               { guard = ack &&: good_ack; actions = []; dst = 4 };
               { guard = fin; actions = [ Set_out (1, num 2.) ]; dst = 6 };
               { guard = State_time >=: num 10.; actions = []; dst = 0 } ];
         };
         {
           (* 4 *)
           state_name = "Established";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_state 4.; Set_out (2, num 1.) ];
           during = [];
           outgoing =
             [ reset_to_closed;
               { guard = fin;
                 actions = [ Set_out (1, num 2.); Set_out (2, num 0.) ]; dst = 6 };
               { guard = cmd =: num 3.;
                 actions = [ Set_out (1, num 4.) (* FIN *); Set_out (2, num 0.) ]; dst = 5 };
               (* in-window data segment acknowledged *)
               { guard = (cmd =: num 4.) &&: (seq_no =: (irs +: num 1.));
                 actions = [ Set_local (1, seq_no); Set_out (1, num 2.) ]; dst = 4 } ];
         };
         {
           (* 5 *)
           state_name = "FinWait1";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_state 5. ];
           during = [];
           outgoing =
             [ reset_to_closed;
               { guard = ack &&: fin; actions = [ Set_out (1, num 2.) ]; dst = 8 };
               { guard = ack &&: not_ fin; actions = []; dst = 7 };
               { guard = fin; actions = [ Set_out (1, num 2.) ]; dst = 9 } ];
         };
         {
           (* 6 *)
           state_name = "CloseWait";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_state 6. ];
           during = [];
           outgoing =
             [ reset_to_closed;
               { guard = cmd =: num 3.; actions = [ Set_out (1, num 4.) ]; dst = 10 } ];
         };
         {
           (* 7 *)
           state_name = "FinWait2";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_state 7. ];
           during = [];
           outgoing =
             [ reset_to_closed;
               { guard = fin; actions = [ Set_out (1, num 2.) ]; dst = 8 } ];
         };
         {
           (* 8 *)
           state_name = "TimeWait";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_state 8. ];
           during = [];
           outgoing = [ { guard = State_time >=: num 8.; actions = []; dst = 0 } ] ;
         };
         {
           (* 9 *)
           state_name = "Closing";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_state 9. ];
           during = [];
           outgoing =
             [ reset_to_closed;
               { guard = ack; actions = []; dst = 8 } ];
         };
         {
           (* 10 *)
           state_name = "LastAck";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_state 10. ];
           during = [];
           outgoing =
             [ reset_to_closed;
               { guard = ack; actions = []; dst = 0 };
               { guard = State_time >=: num 12.; actions = []; dst = 0 } ];
         } |];
    init_state = 0;
  }

let model () =
  let b = B.create "TCP" in
  let flags = B.inport b "Flags" Dtype.UInt8 in
  let seq_no = B.inport b "SeqNo" Dtype.Int32 in
  let ack_no = B.inport b "AckNo" Dtype.Int32 in
  let cmd = B.inport b "Cmd" Dtype.Int8 in
  let outs = B.chart b ~name:"TcpCore" tcp_chart [ flags; seq_no; ack_no; cmd ] in
  let state_code = outs.(0) in
  let tx_flags = outs.(1) in
  let established = outs.(2) in
  (* segment-rate accounting: count established-mode sends, window
     backoff when rate trips a threshold *)
  let sending =
    B.and_ b ~name:"Sending" established (B.compare_const b Graph.R_eq 4.0 cmd)
  in
  let rate = B.filter b ~name:"SendRate" 0.25 (B.convert b Dtype.Float64 sending) in
  let congested =
    B.relay b ~name:"CongRelay" ~on_point:0.6 ~off_point:0.2 ~on_value:1. ~off_value:0. rate
  in
  let window =
    B.saturation b ~name:"WndClamp" ~lower:1. ~upper:64.
      (B.switch b (B.const_f b 4.) congested
         (B.gain b 8. (B.bias b 1. (B.convert b Dtype.Float64 established))))
  in
  (* retransmission alarm: no progress while connecting *)
  let connecting =
    B.or_ b
      (B.compare_const b Graph.R_eq 2.0 state_code)
      (B.compare_const b Graph.R_eq 3.0 state_code)
  in
  let stuck = B.counter b ~name:"StuckTicks" 24 connecting in
  let alarm = B.compare_const b ~name:"Alarm" Graph.R_ge 24.0 stuck in
  B.outport b "StateCode" (B.convert b Dtype.Int32 state_code);
  B.outport b "TxFlags" (B.convert b Dtype.Int32 tx_flags);
  B.outport b "Window" (B.convert b Dtype.Int32 window);
  B.outport b "Alarm" (B.convert b Dtype.Int32 alarm);
  B.finish b
