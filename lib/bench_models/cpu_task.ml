(* CPUTask — AutoSAR CPU task dispatch system.

   Commands arrive as (Cmd, TaskID, Priority) triples:
     Cmd 1 = activate task, Cmd 2 = terminate task, Cmd 3 = scheduler
     tick, anything else = no-op.
   The dispatcher keeps a bounded ready queue per priority band
   (high/mid/low, counted in chart locals). Some branches — the ones
   the paper highlights — only fire when the ready queue is
   completely full. *)

open Cftcg_model
module B = Build
open Chart

let queue_capacity = 8.

(* Dispatcher chart. Inputs: cmd, prio (0..2), tick overload flag.
   Locals: high/mid/low ready counts, running priority.
   Outputs: running task priority band, queue length, overflow flag. *)
let dispatcher =
  let cmd = in_ 0 in
  let prio = in_ 1 in
  let overload = in_ 2 in
  let high = local 0 in
  let mid = local 1 in
  let low = local 2 in
  let qlen = high +: mid +: low in
  let activate =
    [ Set_local (0, high +: Bin (C_eq, prio, num 2.));
      Set_local (1, mid +: Bin (C_eq, prio, num 1.));
      Set_local (2, low +: Bin (C_eq, prio, num 0.)) ]
  in
  let publish =
    [ Set_out (1, qlen);
      Set_out (0, Bin (C_gt, high, num 0.) *: num 2.
                  +: (not_ (Bin (C_gt, high, num 0.)) &&: (mid >: num 0.)) *: num 1.) ]
  in
  {
    chart_name = "Dispatcher";
    inputs = [| ("cmd", Dtype.Int8); ("prio", Dtype.Int8); ("overload", Dtype.Bool) |];
    outputs =
      [| ("running_band", Dtype.Int32); ("queue_len", Dtype.Int32); ("overflow", Dtype.Bool) |];
    locals =
      [| ("high", Dtype.Int32, 0.); ("mid", Dtype.Int32, 0.); ("low", Dtype.Int32, 0.) |];
    states =
      [| {
           state_name = "Idle";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ Set_out (0, num 0.); Set_out (2, num 0.) ];
           during = publish;
           outgoing =
             [ { guard = (cmd =: num 1.) &&: (qlen <: num queue_capacity);
                 actions = activate; dst = 1 } ];
         };
         {
           state_name = "Ready";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [];
           during = publish;
           outgoing =
             [ { guard = (cmd =: num 1.) &&: (qlen >=: num queue_capacity);
                 actions = [ Set_out (2, num 1.) ]; dst = 3 };
               { guard = (cmd =: num 1.); actions = activate; dst = 1 };
               { guard = cmd =: num 3.; actions = []; dst = 2 };
               { guard = (cmd =: num 2.) &&: (qlen <=: num 1.);
                 actions = [ Set_local (0, num 0.); Set_local (1, num 0.); Set_local (2, num 0.) ];
                 dst = 0 };
               { guard = cmd =: num 2.;
                 actions =
                   [ Set_local (0, Bin (C_max, high -: Bin (C_gt, high, num 0.), num 0.));
                     Set_local (1, Bin (C_max,
                        mid -: ((not_ (high >: num 0.)) &&: (mid >: num 0.)), num 0.)) ];
                 dst = 1 } ];
         };
         {
           state_name = "Dispatching";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = publish;
           during = [];
           outgoing =
             [ (* preemption by overload interrupt *)
               { guard = overload >: num 0.; actions = []; dst = 3 };
               { guard = high >: num 0.;
                 actions = [ Set_local (0, high -: num 1.) ]; dst = 1 };
               { guard = mid >: num 0.;
                 actions = [ Set_local (1, mid -: num 1.) ]; dst = 1 };
               { guard = low >: num 0.;
                 actions = [ Set_local (2, low -: num 1.) ]; dst = 1 };
               (* queue was empty: idle after one hold step, so both
                  arms of this guard stay reachable *)
               { guard = State_time >=: num 1.; actions = []; dst = 0 } ];
         };
         {
           state_name = "Overflowed";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ Set_out (2, num 1.) ];
           during = [];
           outgoing =
             [ (* recovery: drain everything after a hold-off *)
               { guard = State_time >=: num 3.;
                 actions =
                   [ Set_local (0, num 0.); Set_local (1, num 0.); Set_local (2, num 0.);
                     Set_out (2, num 0.) ];
                 dst = 0 } ];
         } |];
    init_state = 0;
  }

let model () =
  let b = B.create "CPUTask" in
  let cmd = B.inport b "Cmd" Dtype.Int8 in
  let task_id = B.inport b "TaskID" Dtype.UInt8 in
  let prio_raw = B.inport b "Priority" Dtype.Int8 in
  (* priority normalization: clamp to the three bands *)
  let prio = B.saturation b ~name:"PrioClamp" ~lower:0. ~upper:2. prio_raw in
  (* CPU load model: ticks push load up, idle decays it; overload
     fires with hysteresis *)
  let is_tick = B.compare_const b ~name:"IsTick" Graph.R_eq 3.0 cmd in
  let load_delta =
    B.switch b ~name:"LoadDelta" (B.const_f b 7.) is_tick (B.const_f b (-2.))
  in
  let load =
    B.integrator b ~name:"CpuLoad" ~limits:{ Graph.int_lower = 0.; int_upper = 100. } load_delta
  in
  let overload =
    B.relay b ~name:"OverloadRelay" ~on_point:80. ~off_point:40. ~on_value:1. ~off_value:0. load
  in
  let overload_b = B.compare_const b Graph.R_gt 0.0 overload in
  let outs =
    B.chart b ~name:"DispatcherSM" dispatcher
      [ cmd; B.convert b Dtype.Int8 prio; overload_b ]
  in
  let running_band = outs.(0) in
  let queue_len = outs.(1) in
  let overflow = outs.(2) in
  (* watchdog: too many consecutive overload ticks trips emergency *)
  let wd = B.counter b ~name:"Watchdog" 12 overload_b in
  let emergency = B.compare_const b ~name:"WdTrip" Graph.R_ge 12.0 wd in
  (* task-id based affinity: odd tasks to core 1 when not high band *)
  let odd_task =
    B.compare_const b Graph.R_eq 1.0
      (B.sum b ~signs:"+-"
         [ B.convert b Dtype.Float64 task_id;
           B.gain b 2.
             (B.rounding b Graph.R_floor (B.gain b 0.5 (B.convert b Dtype.Float64 task_id))) ])
  in
  let high_band = B.compare_const b Graph.R_ge 2.0 running_band in
  let core = B.switch b ~name:"CoreSel" (B.const_i b Dtype.Int32 0) high_band
      (B.convert b Dtype.Int32 odd_task)
  in
  let status =
    B.multiport_switch b ~name:"Status"
      (B.sum b
         [ B.const_f b 1.;
           B.convert b Dtype.Float64 emergency;
           B.gain b 2. (B.convert b Dtype.Float64 overflow) ])
      [ B.const_i b Dtype.Int32 0; (* normal *)
        B.const_i b Dtype.Int32 1; (* emergency *)
        B.const_i b Dtype.Int32 2; (* overflow *)
        B.const_i b Dtype.Int32 3 (* both *) ]
  in
  B.outport b "RunningBand" (B.convert b Dtype.Int32 running_band);
  B.outport b "QueueLen" (B.convert b Dtype.Int32 queue_len);
  B.outport b "Core" core;
  B.outport b "Status" status;
  B.finish b
