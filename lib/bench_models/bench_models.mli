(** The eight benchmark models of the paper's Table 2.

    Industrial behaviour-alikes built from the public block library:
    each reproduces the functional identity and the logic feature the
    paper calls out (CPUTask's fill-the-queue-only branches, SolarPV's
    per-panel charging states, TCP's deep handshake sequences, ...).
    Sizes are reported by the Table 2 bench next to the paper's
    numbers. *)

open Cftcg_model

type entry = {
  name : string;
  functionality : string;
  model : Graph.t Lazy.t;
  paper_branches : int;  (** #Branch reported in paper Table 2 *)
  paper_blocks : int;  (** #Block reported in paper Table 2 *)
}

val all : entry list
(** In the paper's table order: CPUTask, AFC, TCP, RAC, EVCS, TWC,
    UTPC, SolarPV. *)

val find : string -> entry option
(** Case-insensitive lookup by name. *)
