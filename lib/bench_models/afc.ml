(* AFC — engine air-fuel ratio control.

   Classic structure: speed-density airflow estimate from MAP and
   RPM lookup tables, open-loop base pulse width, closed-loop lambda
   correction through a limited integrator, and an operating-mode
   switch (startup enrichment / normal closed loop / power
   enrichment / overrun cutoff). Deliberately the smallest benchmark
   (paper Table 2: 35 branches). *)

open Cftcg_model
module B = Build

let model () =
  let b = B.create "AFC" in
  let rpm = B.inport b "RPM" Dtype.UInt16 in
  let map_kpa = B.inport b "MAP" Dtype.UInt8 in
  let lambda = B.inport b "Lambda" Dtype.Int16 in
  (* scaled x1000 *)
  let throttle = B.inport b "Throttle" Dtype.UInt8 in
  let rpm_f = B.convert b Dtype.Float64 rpm in
  let ve =
    B.lookup b ~name:"VeTable" ~xs:[| 500.; 1500.; 3000.; 4500.; 6500. |]
      ~ys:[| 0.45; 0.75; 0.92; 0.88; 0.70 |] rpm_f
  in
  let airflow =
    B.product b ~name:"Airflow" [ ve; B.convert b Dtype.Float64 map_kpa; B.gain b 0.001 rpm_f ]
  in
  let base_pw = B.gain b ~name:"BasePW" 0.35 airflow in
  (* closed-loop correction: lambda error through a limited integrator *)
  let lambda_err = B.sum b ~name:"LambdaErr" ~signs:"+-" [ B.const_f b 1000.; B.convert b Dtype.Float64 lambda ] in
  let deadband = B.dead_zone b ~name:"LambdaDB" ~lower:(-30.) ~upper:30. lambda_err in
  let trim =
    B.integrator b ~name:"TrimInt" ~gain:0.002
      ~limits:{ Graph.int_lower = -0.25; int_upper = 0.25 }
      deadband
  in
  (* operating mode decisions *)
  let cranking = B.compare_const b ~name:"Cranking" Graph.R_lt 500.0 rpm_f in
  let overrun =
    B.and_ b ~name:"Overrun"
      (B.compare_const b Graph.R_lt 5.0 (B.convert b Dtype.Float64 throttle))
      (B.compare_const b Graph.R_gt 2500.0 rpm_f)
  in
  let power_mode = B.compare_const b ~name:"PowerMode" Graph.R_gt 85.0 (B.convert b Dtype.Float64 throttle) in
  let enrich = B.switch b ~name:"PowerEnrich" (B.const_f b 1.15) power_mode (B.const_f b 1.0) in
  let closed_loop = B.product b [ base_pw; B.bias b 1.0 trim; enrich ] in
  let startup = B.gain b ~name:"CrankEnrich" 1.6 base_pw in
  let with_start = B.switch b ~name:"ModeSel" startup cranking closed_loop in
  let pw = B.switch b ~name:"CutoffSel" (B.const_f b 0.) overrun with_start in
  let pw_limited = B.saturation b ~name:"PwLimit" ~lower:0. ~upper:22. pw in
  (* injector duty alarm *)
  let duty = B.product b [ pw_limited; B.gain b (1. /. 60000.) rpm_f ] in
  let alarm = B.compare_const b ~name:"DutyAlarm" Graph.R_gt 0.85 duty in
  B.outport b "PulseWidth" pw_limited;
  B.outport b "Trim" trim;
  B.outport b "Alarm" (B.convert b Dtype.Int32 alarm);
  B.finish b
