(* UTPC — underwater thruster power control.

   Joystick commands shape thruster power subject to a depth-derated
   power budget, battery management, and an operating-mode machine
   (Surface / Dive / Cruise / Boost / LowBattery / Fault). Boost mode
   gates on a charge accumulator — a deep sequential branch. *)

open Cftcg_model
module B = Build
open Chart

let mode_chart =
  let depth = in_ 0 in
  let boost_req = in_ 1 in
  let battery = in_ 2 in
  let boost_bank = in_ 3 in
  let fault_in = in_ 4 in
  let set_mode v = Set_out (0, num v) in
  {
    chart_name = "ModeSM";
    inputs =
      [| ("depth", Dtype.Int32); ("boost_req", Dtype.Bool); ("battery", Dtype.Int32);
         ("boost_bank", Dtype.Int32); ("fault", Dtype.Bool) |];
    outputs = [| ("mode", Dtype.Int32); ("budget_scale", Dtype.Int32) |];
    locals = [| ("boost_uses", Dtype.Int32, 0.) |];
    states =
      [| {
           state_name = "Surface";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 0.; Set_out (1, num 60.) ];
           during = [];
           outgoing =
             [ { guard = fault_in; actions = []; dst = 5 };
               { guard = battery <: num 15.; actions = []; dst = 4 };
               { guard = depth >: num 2.; actions = []; dst = 1 } ];
         };
         {
           state_name = "Dive";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 1.; Set_out (1, num 100.) ];
           during = [];
           outgoing =
             [ { guard = fault_in; actions = []; dst = 5 };
               { guard = battery <: num 15.; actions = []; dst = 4 };
               { guard = depth <=: num 2.; actions = []; dst = 0 };
               { guard = State_time >=: num 8.; actions = []; dst = 2 } ];
         };
         {
           state_name = "Cruise";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 2.; Set_out (1, num 80.) ];
           during = [];
           outgoing =
             [ { guard = fault_in; actions = []; dst = 5 };
               { guard = battery <: num 15.; actions = []; dst = 4 };
               { guard = depth <=: num 2.; actions = []; dst = 0 };
               (* boost needs a full charge bank, healthy battery and
                  a bounded number of prior uses: deep to reach *)
               { guard =
                   boost_req &&: (boost_bank >=: num 95.) &&: (battery >: num 50.)
                   &&: (local 0 <: num 3.);
                 actions = [ Set_local (0, local 0 +: num 1.) ]; dst = 3 } ];
         };
         {
           state_name = "Boost";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 3.; Set_out (1, num 150.) ];
           during = [];
           outgoing =
             [ { guard = fault_in; actions = []; dst = 5 };
               { guard = State_time >=: num 5.; actions = []; dst = 2 };
               { guard = battery <: num 25.; actions = []; dst = 4 } ];
         };
         {
           state_name = "LowBattery";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 4.; Set_out (1, num 30.) ];
           during = [];
           outgoing =
             [ { guard = fault_in; actions = []; dst = 5 };
               { guard = battery >: num 30.; actions = []; dst = 0 } ];
         };
         {
           state_name = "Fault";
           exit_actions = [];
           children = [||];
           init_child = 0;
           parallel = false;
           entry = [ set_mode 5.; Set_out (1, num 0.) ];
           during = [];
           outgoing =
             [ { guard = (not_ fault_in) &&: (State_time >=: num 12.);
                 actions = [ Set_local (0, num 0.) ]; dst = 0 } ];
         } |];
    init_state = 0;
  }

let model () =
  let b = B.create "UTPC" in
  let joy = B.inport b "Joystick" Dtype.Int8 in
  (* -100..100 *)
  let depth = B.inport b "Depth" Dtype.UInt16 in
  (* meters *)
  let boost_req = B.inport b "BoostReq" Dtype.Bool in
  let temp = B.inport b "MotorTemp" Dtype.Int16 in
  let joy_f = B.dead_zone b ~name:"JoyDB" ~lower:(-8.) ~upper:8. (B.convert b Dtype.Float64 joy) in
  let depth_f = B.convert b Dtype.Float64 depth in
  (* pressure-derated ceiling *)
  let depth_derate =
    B.lookup b ~name:"DepthDerate" ~xs:[| 0.; 50.; 150.; 300. |] ~ys:[| 1.0; 0.9; 0.7; 0.45 |]
      depth_f
  in
  (* battery drains with commanded power, trickle-charges otherwise *)
  let demand_pct = B.abs_ b ~name:"DemandPct" joy_f in
  let drain = B.gain b ~name:"Drain" (-0.02) demand_pct in
  let battery =
    B.integrator b ~name:"Battery" ~init:90.
      ~limits:{ Graph.int_lower = 0.; int_upper = 100. }
      (B.bias b 0.5 drain)
  in
  (* boost bank charges only while demand is low *)
  let low_demand = B.compare_const b ~name:"LowDemand" Graph.R_lt 20.0 demand_pct in
  let bank_rate = B.switch b ~name:"BankRate" (B.const_f b 4.) low_demand (B.const_f b (-12.)) in
  let boost_bank =
    B.integrator b ~name:"BoostBank" ~limits:{ Graph.int_lower = 0.; int_upper = 100. } bank_rate
  in
  let overtemp =
    B.relay b ~name:"TempTrip" ~on_point:95. ~off_point:70. ~on_value:1. ~off_value:0.
      (B.convert b Dtype.Float64 temp)
  in
  let fault = B.compare_const b Graph.R_gt 0.0 overtemp in
  let sm =
    B.chart b ~name:"ModeControl" mode_chart
      [ B.convert b Dtype.Int32 depth_f; boost_req; B.convert b Dtype.Int32 battery;
        B.convert b Dtype.Int32 boost_bank; fault ]
  in
  let mode = sm.(0) in
  let budget_scale = sm.(1) in
  let budget = B.gain b ~name:"BudgetW" 10. (B.convert b Dtype.Float64 budget_scale) in
  let request = B.product b ~name:"RequestW" [ B.gain b 15. joy_f; depth_derate ] in
  let clipped = B.min_ b ~name:"PowerClip" [ B.abs_ b request; budget ] in
  let signed_power =
    B.product b ~name:"SignedPower" [ B.sign b joy_f; clipped ]
  in
  let smoothed = B.rate_limiter b ~name:"ThrustRamp" ~rising:120. ~falling:(-120.) signed_power in
  B.outport b "Mode" (B.convert b Dtype.Int32 mode);
  B.outport b "ThrustPower" smoothed;
  B.outport b "Battery" battery;
  B.finish b
