type point =
  | Store_write
  | Store_rename
  | Worker_raise
  | Exec_stall

type mode =
  | Off
  | Rate of float
  | Nth of int

exception Injected of string

let n_points = 4

let index = function
  | Store_write -> 0
  | Store_rename -> 1
  | Worker_raise -> 2
  | Exec_stall -> 3

let all_points = [| Store_write; Store_rename; Worker_raise; Exec_stall |]

let point_name = function
  | Store_write -> "store_write"
  | Store_rename -> "store_rename"
  | Worker_raise -> "worker_raise"
  | Exec_stall -> "exec_stall"

let point_of_name = function
  | "store_write" -> Some Store_write
  | "store_rename" -> Some Store_rename
  | "worker_raise" -> Some Worker_raise
  | "exec_stall" -> Some Exec_stall
  | _ -> None

(* Global schedule. [armed_flag] is the only state the hot paths ever
   read when injection is off, so a disarmed harness costs one atomic
   load per guarded site. The rest is written by [arm]/[disarm] before
   workers start and read-only afterwards; hit and injection counters
   are atomics so worker domains can draw concurrently. *)
let armed_flag = Atomic.make false

let modes = Array.make n_points Off

let schedule_seed = ref 1L

let hit_counts = Array.init n_points (fun _ -> Atomic.make 0)

let injected_counts = Array.init n_points (fun _ -> Atomic.make 0)

let armed () = Atomic.get armed_flag

(* Notification hook, invoked with the point that actually fired.
   Keeps this module free of observability dependencies: the CLI
   installs a hook that records the injection in the flight-recorder
   ring so post-mortem dumps name the fault that killed the worker.
   A raising hook must not change injection behavior. *)
let on_inject : (point -> unit) ref = ref (fun _ -> ())

let set_on_inject f = on_inject := f

let notify_inject p = try !on_inject p with _ -> ()

(* Stateless splitmix64 draw keyed by (seed, point, hit index): the
   decision for the k-th check of a point is a pure function of the
   schedule seed, independent of which domain performs it or how draws
   interleave across points. *)
let mix key =
  let z = Int64.add key 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float_of_key key =
  Int64.to_float (Int64.shift_right_logical (mix key) 11) /. 9007199254740992.0

let fire p =
  if not (Atomic.get armed_flag) then false
  else begin
    let ix = index p in
    match modes.(ix) with
    | Off -> false
    | Nth k ->
      let h = 1 + Atomic.fetch_and_add hit_counts.(ix) 1 in
      if h = k then begin
        Atomic.incr injected_counts.(ix);
        notify_inject p;
        true
      end
      else false
    | Rate r ->
      let h = Atomic.fetch_and_add hit_counts.(ix) 1 in
      let key =
        Int64.add !schedule_seed
          (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (((h + 1) * n_points) + ix)))
      in
      if unit_float_of_key key < r then begin
        Atomic.incr injected_counts.(ix);
        notify_inject p;
        true
      end
      else false
  end

let check p = if fire p then raise (Injected (Printf.sprintf "injected fault at %s" (point_name p)))

let hits p = Atomic.get hit_counts.(index p)

let injected p = Atomic.get injected_counts.(index p)

let injected_total () =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 injected_counts

let disarm () =
  (* counters survive disarm so tests can inspect what a run injected *)
  Atomic.set armed_flag false;
  Array.fill modes 0 n_points Off

let arm ?(seed = 1L) spec =
  disarm ();
  schedule_seed := seed;
  Array.iter (fun c -> Atomic.set c 0) hit_counts;
  Array.iter (fun c -> Atomic.set c 0) injected_counts;
  List.iter
    (fun (p, m) ->
      (match m with
      | Rate r when not (Float.is_finite r) || r < 0.0 || r > 1.0 ->
        invalid_arg "Fault.arm: rate must be in [0, 1]"
      | Nth k when k < 1 -> invalid_arg "Fault.arm: @k must be >= 1"
      | _ -> ());
      modes.(index p) <- m)
    spec;
  Atomic.set armed_flag true

let parse_spec s =
  let entry item =
    let item = String.trim item in
    let name, m =
      match String.index_opt item '@' with
      | Some i ->
        let k = String.sub item (i + 1) (String.length item - i - 1) in
        (match int_of_string_opt k with
        | Some k when k >= 1 -> (String.sub item 0 i, Nth k)
        | _ -> invalid_arg (Printf.sprintf "Fault.parse_spec: bad hit index in %S" item))
      | None -> (
        match String.index_opt item '=' with
        | Some i ->
          let r = String.sub item (i + 1) (String.length item - i - 1) in
          (match float_of_string_opt r with
          | Some r when Float.is_finite r && r >= 0.0 && r <= 1.0 ->
            (String.sub item 0 i, Rate r)
          | _ -> invalid_arg (Printf.sprintf "Fault.parse_spec: bad rate in %S" item))
        | None -> (item, Rate 1.0))
    in
    match point_of_name (String.trim name) with
    | Some p -> (p, m)
    | None -> invalid_arg (Printf.sprintf "Fault.parse_spec: unknown injection point %S" name)
  in
  match
    String.split_on_char ',' s
    |> List.filter (fun item -> String.trim item <> "")
    |> List.map entry
  with
  | [] -> invalid_arg "Fault.parse_spec: empty schedule"
  | schedule -> schedule

let arm_spec ?seed s = arm ?seed (parse_spec s)

let with_armed ?seed spec f =
  arm ?seed spec;
  Fun.protect ~finally:disarm f
