(** Deterministic pseudo-random number generator.

    CFTCG repeats every randomized experiment several times; a small,
    fast, splittable generator with explicit state makes runs
    reproducible from a seed without touching the global [Random]
    state. The implementation is splitmix64. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Distinct seeds yield
    independent streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a new independent generator and advances [t]. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is {e exactly} uniform in [0, n) — draws use rejection
    sampling, so there is no modulo bias even for bounds that do not
    divide 2^62. Raises [Invalid_argument] if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val byte : t -> char
(** Uniform byte. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument]
    on an empty array. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)
