let get_u8 b off = Char.code (Bytes.get b off)

let get_i8 b off =
  let v = get_u8 b off in
  if v >= 0x80 then v - 0x100 else v

let get_u16 b off = get_u8 b off lor (get_u8 b (off + 1) lsl 8)

let get_i16 b off =
  let v = get_u16 b off in
  if v >= 0x8000 then v - 0x10000 else v

let get_u32 b off = get_u16 b off lor (get_u16 b (off + 2) lsl 16)

let get_i32 b off =
  let v = get_u32 b off in
  if v >= 0x80000000 then v - 0x100000000 else v

let get_f32 b off = Int32.float_of_bits (Int32.of_int (get_i32 b off))

let get_f64 b off =
  let lo = Int64.of_int (get_u32 b off) in
  let hi = Int64.of_int (get_u32 b (off + 4)) in
  Int64.float_of_bits (Int64.logor lo (Int64.shift_left hi 32))

let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xFF))

let set_u16 b off v =
  set_u8 b off v;
  set_u8 b (off + 1) (v lsr 8)

let set_u32 b off v =
  set_u16 b off v;
  set_u16 b (off + 2) (v lsr 16)

let set_f32 b off v = set_u32 b off (Int32.to_int (Int32.bits_of_float v) land 0xFFFFFFFF)

let set_f64 b off v =
  let bits = Int64.bits_of_float v in
  set_u32 b off (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
  set_u32 b (off + 4) (Int64.to_int (Int64.shift_right_logical bits 32))

let fnv64 b =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  Bytes.iter (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime) b;
  !h

let hex_of_int64 v = Printf.sprintf "%016Lx" v

let hex_of_bytes b =
  let n = Bytes.length b in
  let out = Buffer.create (2 * n) in
  for i = 0 to n - 1 do
    Buffer.add_string out (Printf.sprintf "%02x" (get_u8 b i))
  done;
  Buffer.contents out

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Bytecodec.bytes_of_hex: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Bytecodec.bytes_of_hex: non-hex character"
  in
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    set_u8 out i ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1])
  done;
  out
