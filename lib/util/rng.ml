type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64: one additive step then two xor-shift-multiply mixes. *)
let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next64 t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over 62 uniform bits: [mask mod n] alone
     over-weights the first [2^62 mod n] residues, so draws from the
     incomplete final block are rejected and redrawn. [max_int] is
     2^62 - 1, so [cutoff] is the largest draw inside a complete
     block; for the small bounds the fuzzer uses, the rejection region
     is < n/2^62 of the space and the accepted draw is the same value
     the biased version produced, keeping seeded streams stable. *)
  let r62 = ((max_int mod n) + 1) mod n in
  let cutoff = max_int - r62 in
  let rec draw () =
    let mask = Int64.to_int (Int64.logand (next64 t) 0x3FFFFFFFFFFFFFFFL) in
    if mask > cutoff then draw () else mask mod n
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let float t x =
  let bits = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  x *. (bits /. 9007199254740992.0)

let byte t = Char.chr (int t 256)

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
