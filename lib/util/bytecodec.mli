(** Little-endian binary codecs for test case byte streams.

    The fuzz driver splits a raw byte stream into per-inport fields
    (paper §3.1.1, "data segmentation code"). These helpers perform the
    [memcpy]-style reads/writes of Figure 3 against OCaml [Bytes]. All
    accessors are little-endian, matching the x86 targets the paper
    compiles for. *)

val get_u8 : Bytes.t -> int -> int
val get_i8 : Bytes.t -> int -> int
val get_u16 : Bytes.t -> int -> int
val get_i16 : Bytes.t -> int -> int
val get_u32 : Bytes.t -> int -> int
val get_i32 : Bytes.t -> int -> int
val get_f32 : Bytes.t -> int -> float
val get_f64 : Bytes.t -> int -> float

val set_u8 : Bytes.t -> int -> int -> unit
val set_u16 : Bytes.t -> int -> int -> unit
val set_u32 : Bytes.t -> int -> int -> unit
val set_f32 : Bytes.t -> int -> float -> unit
val set_f64 : Bytes.t -> int -> float -> unit

val fnv64 : Bytes.t -> int64
(** FNV-1a 64-bit hash. Used as the content address / probe-set
    fingerprint of corpus entries — fast, deterministic, and stable
    across processes (corpus directories are shared between
    campaigns). Not cryptographic. *)

val hex_of_int64 : int64 -> string
(** 16 lowercase hex characters, zero-padded. *)

val hex_of_bytes : Bytes.t -> string
(** Lowercase hex dump, two characters per byte, no separators. *)

val bytes_of_hex : string -> Bytes.t
(** Inverse of {!hex_of_bytes}. Raises [Invalid_argument] on odd
    length or non-hex characters. *)
