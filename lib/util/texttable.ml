type row =
  | Cells of string list
  | Rule

type t = {
  headers : string list;
  ncols : int;
  mutable rows : row list; (* reverse order *)
}

let create headers = { headers; ncols = List.length headers; rows = [] }

let normalize ncols cells =
  let rec take n xs =
    match (n, xs) with
    | 0, _ -> []
    | n, [] -> "" :: take (n - 1) []
    | n, x :: rest -> x :: take (n - 1) rest
  in
  take ncols cells

let add_row t cells = t.rows <- Cells (normalize t.ncols cells) :: t.rows

let add_separator t = t.rows <- Rule :: t.rows

let widths t =
  let w = Array.of_list (List.map String.length t.headers) in
  let bump cells =
    List.iteri (fun i c -> if String.length c > w.(i) then w.(i) <- String.length c) cells
  in
  List.iter (function Cells c -> bump c | Rule -> ()) t.rows;
  w

let render t =
  let w = widths t in
  let buf = Buffer.create 256 in
  let pad i c = c ^ String.make (w.(i) - String.length c) ' ' in
  let emit_cells cells =
    Buffer.add_string buf
      (String.concat "  " (List.mapi pad cells));
    Buffer.add_char buf '\n'
  in
  let rule () =
    let total = Array.fold_left ( + ) 0 w + (2 * (t.ncols - 1)) in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  rule ();
  List.iter (function Cells c -> emit_cells c | Rule -> rule ()) (List.rev t.rows);
  Buffer.contents buf

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let buf = Buffer.create 256 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter (function Cells c -> emit c | Rule -> ()) (List.rev t.rows);
  Buffer.contents buf
