(** Aligned plain-text tables for benchmark reports.

    The bench harness prints every reproduced paper table as an aligned
    text table plus machine-readable CSV rows; this module renders the
    aligned form. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Appends a row. Rows shorter than the header are padded with empty
    cells; longer rows are truncated. *)

val add_separator : t -> unit
(** Inserts a horizontal rule before the next row. *)

val render : t -> string
(** Renders the table with column-aligned cells. *)

val to_csv : t -> string
(** Renders headers and rows as CSV (comma-separated, quotes added
    only when a cell contains a comma or quote). *)
