(** Deterministic fault injection for the campaign stack.

    Long campaigns are only trustworthy if the recovery paths — corpus
    quarantine, persist retries, worker-crash salvage, deadline
    shutdown — are exercised on purpose, not just when a disk finally
    fills up. This module names the places where the runtime can be
    made to fail ({!point}) and arms them with a seeded schedule, so a
    test or a chaos run injects {e exactly} the same faults every time.

    The harness is process-global and {b zero-cost when disarmed}: a
    guarded site pays one atomic boolean load and nothing else, and no
    schedule state exists until {!arm} is called. Arming never perturbs
    {!Rng} streams — the schedule draws from its own stateless
    splitmix64 keyed by (seed, point, hit index) — so an {e unarmed}
    run is byte-identical to a build without the harness, and an armed
    run's injection decisions are independent of domain interleaving
    for {!Nth} schedules and per-hit-index deterministic for {!Rate}
    schedules.

    Arm/disarm are not meant to race with guarded sites: configure the
    schedule before spawning workers (the counters themselves are
    atomics and safe to bump from any domain). *)

(** Named injection points, one per guarded site class:
    - [Store_write]: fails the data write of {!Corpus_store}'s
      write-then-rename (simulates a full disk / I/O error);
    - [Store_rename]: fails the rename publish step;
    - [Worker_raise]: makes a campaign worker domain raise mid-epoch;
    - [Exec_stall]: makes the fuzzing loop sleep, simulating a stalled
      target so deadlines can be tested. *)
type point =
  | Store_write
  | Store_rename
  | Worker_raise
  | Exec_stall

(** Per-point schedule: [Rate r] fires each check independently with
    probability [r] (seeded, deterministic per hit index); [Nth k]
    fires exactly once, on the k-th check of that point. *)
type mode =
  | Off
  | Rate of float
  | Nth of int

exception Injected of string
(** Raised by {!check} when the schedule fires. Recovery code treats
    it like a transient [Sys_error]. *)

val all_points : point array

val point_name : point -> string
(** ["store_write"], ["store_rename"], ["worker_raise"], ["exec_stall"]. *)

val armed : unit -> bool
(** The cheap hot-path guard: one atomic load. *)

val arm : ?seed:int64 -> (point * mode) list -> unit
(** Installs a schedule (unlisted points stay [Off]), resets all
    counters and arms the harness. Raises [Invalid_argument] on a rate
    outside [0, 1] or a hit index < 1. *)

val disarm : unit -> unit
(** Disarms every point. Counters are kept for inspection. *)

val parse_spec : string -> (point * mode) list
(** Parses a comma-separated schedule, e.g.
    ["store_write=0.1,store_rename=0.05,worker_raise@2"]:
    [name=rate] is {!Rate}, [name@k] is {!Nth}, a bare [name] is
    [Rate 1.0]. Raises [Invalid_argument] on unknown points,
    malformed entries, or an empty schedule. *)

val arm_spec : ?seed:int64 -> string -> unit
(** [arm] ∘ [parse_spec]. *)

val with_armed : ?seed:int64 -> (point * mode) list -> (unit -> 'a) -> 'a
(** Runs [f] with the schedule armed and disarms afterwards, even on
    exceptions — the test-suite entry point. *)

val fire : point -> bool
(** Consumes one schedule decision for [point]; [true] when the fault
    should happen. Sites that simulate non-raising faults (stalls)
    branch on this directly. *)

val check : point -> unit
(** [if fire p then raise (Injected ...)] — the guard for sites whose
    failure mode is an exception. *)

val hits : point -> int
(** Checks performed since the last {!arm}. *)

val injected : point -> int
(** Faults actually fired since the last {!arm}. *)

val injected_total : unit -> int

val set_on_inject : (point -> unit) -> unit
(** Installs a process-global hook invoked with the point each time a
    fault actually fires (after the injection counter is bumped,
    before the site raises). The CLI uses it to record injections in
    the flight-recorder ring so post-mortem dumps name the fault that
    killed a worker. A raising hook is swallowed — it must never
    change injection behavior. [set_on_inject (fun _ -> ())] removes
    the hook. *)
