(* The multi-tenant campaign scheduler behind [cftcg serve].

   Each submitted campaign gets a runner thread that steps the
   campaign epoch by epoch through {!Campaign.step}; what makes the
   daemon fair is that a runner may only start an epoch once the
   deficit round-robin arbiter grants it the executions the epoch
   wants. Every scheduling round credits each live job
   [quantum * weight] executions of deficit; a job whose accumulated
   deficit covers its next epoch runs it (charging the actual
   executions spent, so overruns carry over as debt), everyone else
   waits. A round advances only when no live job can proceed, so a
   cheap campaign cannot be starved while an expensive one is
   mid-epoch. Per-tenant execution budgets clip grants: once a
   tenant's budget is spent its jobs stop at the next epoch boundary —
   budgets are respected within one epoch's slack, never by killing a
   worker mid-run.

   Epoch parallelism is bounded by one shared {!Worker_pool}: a
   granted epoch still waits for pool slots before spawning its
   domains, so dozens of concurrent campaigns never oversubscribe the
   machine. Determinism is preserved because a grant always covers the
   full epoch: a campaign stepped under the scheduler performs exactly
   the epochs a solo [Campaign.run] would, in the same order, with the
   same per-(epoch, worker) seeds — only the wall-clock interleaving
   differs.

   Campaigns sharing a corpus directory share one open (sharded)
   {!Corpus_store} handle through a cache keyed by the directory, so
   their persistence goes through the same per-shard mutexes. *)

module Campaign = Cftcg_campaign.Campaign
module Telemetry = Cftcg_campaign.Telemetry
module Corpus_store = Cftcg_campaign.Corpus_store
module Worker_pool = Cftcg_campaign.Worker_pool
module Metrics = Cftcg_obs.Metrics
module Log = Cftcg_obs.Log
module Flight = Cftcg_obs.Flight

type tenant = {
  tn_name : string;
  mutable tn_budget : int option;  (* total execs allowed; None = unlimited *)
  mutable tn_spent : int;
}

type t = {
  pool : Worker_pool.t;
  quantum : int;
  mutex : Mutex.t;
  cond : Condition.t;
  jobs : (string, Job.t) Hashtbl.t;
  mutable order : string list;  (* submission order, newest first *)
  tenants : (string, tenant) Hashtbl.t;
  stores : (string, Corpus_store.t) Hashtbl.t;  (* by corpus dir *)
  mutable stopping : bool;
  mutable next_id : int;
  mutable waiting : int;  (* runners currently blocked in [next_grant] *)
  (* service-level counters, exported on /metrics *)
  sm_submitted : Metrics.counter;
  sm_completed : Metrics.counter;
  sm_failed : Metrics.counter;
  sm_cancelled : Metrics.counter;
  sm_running : Metrics.gauge;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let create ?(quantum = 1_000) ~pool () =
  if quantum < 1 then invalid_arg "Scheduler.create: quantum must be >= 1";
  {
    pool;
    quantum;
    mutex = Mutex.create ();
    cond = Condition.create ();
    jobs = Hashtbl.create 16;
    order = [];
    tenants = Hashtbl.create 8;
    stores = Hashtbl.create 8;
    stopping = false;
    next_id = 1;
    waiting = 0;
    sm_submitted = Metrics.counter ~help:"Campaigns submitted to the daemon" "cftcg_serve_campaigns_submitted_total";
    sm_completed = Metrics.counter ~help:"Campaigns that ran to completion" "cftcg_serve_campaigns_completed_total";
    sm_failed = Metrics.counter ~help:"Campaigns that failed" "cftcg_serve_campaigns_failed_total";
    sm_cancelled = Metrics.counter ~help:"Campaigns cancelled" "cftcg_serve_campaigns_cancelled_total";
    sm_running = Metrics.gauge ~help:"Campaigns currently queued or running" "cftcg_serve_campaigns_live";
  }

let pool t = t.pool

let tenant_of t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None ->
    let tn = { tn_name = name; tn_budget = None; tn_spent = 0 } in
    Hashtbl.replace t.tenants name tn;
    tn

let tenant_remaining tn =
  match tn.tn_budget with
  | None -> max_int
  | Some b -> max 0 (b - tn.tn_spent)

(* a job whose runner still participates in scheduling rounds *)
let live (j : Job.t) =
  (not (Job.terminal j.Job.jb_status)) && not j.Job.jb_cancel

let live_jobs t = Hashtbl.fold (fun _ j acc -> if live j then j :: acc else acc) t.jobs []

(* --- deficit round-robin arbiter ----------------------------------- *)

let advance_round t =
  List.iter (fun (j : Job.t) -> j.Job.jb_deficit <- j.Job.jb_deficit + (t.quantum * j.Job.jb_weight))
    (live_jobs t);
  Condition.broadcast t.cond

(* Blocks the calling runner until its job may run an epoch wanting
   [want] executions; returns the grant, or [None] when the job
   should stop (cancelled, daemon stopping, tenant budget spent). *)
let next_grant t (job : Job.t) ~want =
  locked t (fun () ->
      let rec loop () =
        if t.stopping || job.Job.jb_cancel then None
        else begin
          let tn = tenant_of t job.Job.jb_tenant in
          let left = tenant_remaining tn in
          if left = 0 then None
          else if want < 1 then Some 0
          else if job.Job.jb_deficit >= want || left < want then
            (* either the deficit covers the full epoch, or the
               tenant's budget remainder is smaller than an epoch —
               grant the remainder so the budget lands within one
               epoch's slack *)
            Some (min want left)
          else begin
            t.waiting <- t.waiting + 1;
            (* a round only advances when every live runner is blocked
               here: jobs mid-epoch still get their credit when the
               next round fires, but cannot trigger one *)
            if t.waiting >= List.length (live_jobs t) then advance_round t
            else Condition.wait t.cond t.mutex;
            t.waiting <- t.waiting - 1;
            loop ()
          end
        end
      in
      loop ())

let charge t (job : Job.t) spent =
  locked t (fun () ->
      job.Job.jb_deficit <- job.Job.jb_deficit - spent;
      job.Job.jb_spent <- job.Job.jb_spent + spent;
      (tenant_of t job.Job.jb_tenant).tn_spent <-
        (tenant_of t job.Job.jb_tenant).tn_spent + spent;
      Condition.broadcast t.cond)

let set_status t (job : Job.t) status =
  locked t (fun () ->
      (match (Job.terminal job.Job.jb_status, Job.terminal status) with
      | false, true ->
        Metrics.set t.sm_running (Metrics.gauge_value t.sm_running -. 1.0);
        Metrics.inc
          (match status with
          | Job.Done _ -> t.sm_completed
          | Job.Failed _ -> t.sm_failed
          | Job.Cancelled -> t.sm_cancelled
          | _ -> assert false)
      | _ -> ());
      job.Job.jb_status <- status;
      (* a job leaving the live set may unblock a scheduling round *)
      Condition.broadcast t.cond)

(* --- runner thread -------------------------------------------------- *)

(* what the next epoch will consume: the epoch-size ceiling clipped to
   the remaining global budget. An upper bound is enough — [step]
   re-derives the same value internally, so granting [want] never
   clips the epoch below what a solo run would do. *)
let epoch_want (job : Job.t) (pg : Campaign.progress) =
  let c = job.Job.jb_config in
  let jobs = max 1 c.Campaign.jobs in
  max 0 (min (c.Campaign.total_execs - pg.Campaign.pg_executions) (c.Campaign.execs_per_epoch * jobs))

let runner t (job : Job.t) () =
  (* the job id minted at submit is the correlation root: every log
     line and trace span below here inherits it *)
  Log.with_ctx [ ("job", job.Job.jb_id) ] @@ fun () ->
  let finish_with status =
    (match status with
    | Job.Done r ->
      Log.info "campaign done: %d execs, %d/%d probes" r.Campaign.executions
        r.Campaign.probes_covered r.Campaign.probes_total
    | Job.Failed msg ->
      Log.error "campaign failed: %s" msg;
      ignore
        (Flight.dump ~fields:[ ("job", job.Job.jb_id) ] ~reason:("job failed: " ^ msg) ())
    | Job.Cancelled -> Log.info "campaign cancelled"
    | _ -> ());
    set_status t job status
  in
  match Campaign.start ~config:job.Job.jb_config job.Job.jb_prog with
  | exception e -> finish_with (Job.Failed (Printexc.to_string e))
  | st -> (
    set_status t job Job.Running;
    job.Job.jb_progress <- Some (Campaign.progress st);
    let should_stop () = job.Job.jb_cancel || t.stopping in
    let rec loop () =
      if Campaign.finished st || should_stop () then ()
      else begin
        let want = epoch_want job (Campaign.progress st) in
        match next_grant t job ~want with
        | None -> ()
        | Some grant ->
          Log.debug "grant: %d execs (wanted %d, deficit %d)" grant want
            job.Job.jb_deficit;
          let spent = Campaign.step ~max_execs:grant ~should_stop ~pool:t.pool st in
          charge t job spent;
          job.Job.jb_progress <- Some (Campaign.progress st);
          loop ()
      end
    in
    match loop () with
    | () ->
      job.Job.jb_progress <- Some (Campaign.progress st);
      job.Job.jb_config.Campaign.sink.Telemetry.close ();
      if job.Job.jb_cancel || (t.stopping && not (Campaign.finished st)) then
        finish_with Job.Cancelled
      else finish_with (Job.Done (Campaign.finish st))
    | exception e ->
      job.Job.jb_config.Campaign.sink.Telemetry.close ();
      finish_with (Job.Failed (Printexc.to_string e)))

(* --- public API ------------------------------------------------------ *)

type submission = {
  sb_model : string;  (* informational label *)
  sb_tenant : string;
  sb_weight : int;
  sb_tenant_budget : int option;  (* set/overwrite the tenant's total budget *)
  sb_config : Campaign.config;  (* sink field is replaced by the job's feed sink *)
}

let store_for t dir =
  match Hashtbl.find_opt t.stores dir with
  | Some s -> s
  | None ->
    let s = Corpus_store.open_ dir in
    Hashtbl.replace t.stores dir s;
    s

let submit t (sub : submission) prog =
  locked t (fun () ->
      if t.stopping then Error "daemon is shutting down"
      else begin
        let id = Printf.sprintf "c%d" t.next_id in
        t.next_id <- t.next_id + 1;
        let tn = tenant_of t sub.sb_tenant in
        (match sub.sb_tenant_budget with
        | Some b -> tn.tn_budget <- Some b
        | None -> ());
        (* campaigns sharing a corpus directory share one sharded
           store handle, so concurrent persists cooperate through the
           per-shard mutexes instead of racing through two handles *)
        let config =
          match sub.sb_config.Campaign.corpus_dir with
          | Some dir -> { sub.sb_config with Campaign.store = Some (store_for t dir) }
          | None -> sub.sb_config
        in
        let job = Job.create ~id ~model:sub.sb_model ~tenant:sub.sb_tenant ~weight:sub.sb_weight ~config prog in
        job.Job.jb_config <-
          { config with Campaign.sink = Job.sink job; Campaign.job = Some id };
        Log.info
          ~fields:
            [ ("job", id); ("tenant", sub.sb_tenant); ("model", sub.sb_model) ]
          "campaign submitted: %d jobs, %d exec budget"
          config.Campaign.jobs config.Campaign.total_execs;
        Hashtbl.replace t.jobs id job;
        t.order <- id :: t.order;
        Metrics.inc t.sm_submitted;
        Metrics.set t.sm_running (Metrics.gauge_value t.sm_running +. 1.0);
        job.Job.jb_thread <- Some (Thread.create (runner t job) ());
        Ok id
      end)

let find t id = locked t (fun () -> Hashtbl.find_opt t.jobs id)

let jobs t =
  locked t (fun () -> List.rev t.order |> List.filter_map (Hashtbl.find_opt t.jobs))

let cancel t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> Error "no such campaign"
      | Some job ->
        if not (Job.terminal job.Job.jb_status) then begin
          job.Job.jb_cancel <- true;
          Condition.broadcast t.cond
        end;
        Ok job)

(* removing a terminal job record also retires its labeled series *)
let delete t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.jobs id with
      | None -> Error `Not_found
      | Some job ->
        if Job.terminal job.Job.jb_status then begin
          Hashtbl.remove t.jobs id;
          t.order <- List.filter (fun i -> i <> id) t.order;
          Job.retire_metrics job;
          Ok `Deleted
        end
        else begin
          job.Job.jb_cancel <- true;
          Condition.broadcast t.cond;
          Ok `Cancelling
        end)

let shutdown t =
  let threads =
    locked t (fun () ->
        t.stopping <- true;
        Condition.broadcast t.cond;
        Hashtbl.fold (fun _ (j : Job.t) acc ->
            match j.Job.jb_thread with
            | Some th -> th :: acc
            | None -> acc)
          t.jobs [])
  in
  List.iter Thread.join threads;
  (* final manifest state is already on disk (campaigns persist every
     epoch); nothing to flush, but drop the store cache so a later
     scheduler re-opens fresh handles *)
  locked t (fun () -> Hashtbl.reset t.stores)

let stats_json t =
  locked t (fun () ->
      let njobs = Hashtbl.length t.jobs in
      let nlive = List.length (live_jobs t) in
      Wire.Obj
        [
          ("status", Wire.Str (if t.stopping then "stopping" else "ok"));
          ("jobs", Wire.Num (float_of_int njobs));
          ("live", Wire.Num (float_of_int nlive));
          ("pool_capacity", Wire.Num (float_of_int (Worker_pool.capacity t.pool)));
          ("pool_free", Wire.Num (float_of_int (Worker_pool.free t.pool)));
        ])
