(* One submitted campaign inside the serve daemon: identity, tenant
   accounting inputs, the bounded in-memory telemetry feed behind
   GET /campaigns/:id/events, the per-job labeled metrics behind
   GET /metrics, and the mutable scheduling state the deficit
   round-robin arbiter works on. All mutable fields are guarded by
   the owning scheduler's mutex except the event feed, which has its
   own lock so a slow events reader never stalls the arbiter. *)

module Campaign = Cftcg_campaign.Campaign
module Telemetry = Cftcg_campaign.Telemetry
module Metrics = Cftcg_obs.Metrics

type status =
  | Queued
  | Running
  | Done of Campaign.result
  | Failed of string
  | Cancelled

let status_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Failed _ -> "failed"
  | Cancelled -> "cancelled"

let terminal = function
  | Queued | Running -> false
  | Done _ | Failed _ | Cancelled -> true

let max_event_lines = 10_000

type t = {
  jb_id : string;
  jb_model : string;  (* as submitted, informational *)
  jb_tenant : string;
  jb_weight : int;
  jb_prog : Cftcg_ir.Ir.program;
  mutable jb_config : Campaign.config;  (* sink attached at creation *)
  (* scheduler-owned state (guarded by the scheduler mutex) *)
  mutable jb_status : status;
  mutable jb_deficit : int;
  mutable jb_spent : int;  (* executions charged to the tenant *)
  mutable jb_cancel : bool;
  mutable jb_progress : Campaign.progress option;  (* snapshot after each step *)
  mutable jb_thread : Thread.t option;
  (* event feed (own lock) *)
  ev_mutex : Mutex.t;
  ev_lines : string Queue.t;
  mutable ev_seq : int;
  mutable ev_dropped : int;
  (* per-job labeled instruments, retired on delete *)
  jm_executions : Metrics.gauge;
  jm_covered : Metrics.gauge;
  jm_epochs : Metrics.counter;
}

let job_metric_names =
  [ "cftcg_serve_job_executions"; "cftcg_serve_job_probes_covered"; "cftcg_serve_job_epochs_total" ]

let create ~id ~model ~tenant ~weight ~config prog =
  let labels = [ ("job", id) ] in
  {
    jb_id = id;
    jb_model = model;
    jb_tenant = tenant;
    jb_weight = max 1 weight;
    jb_prog = prog;
    jb_config = config;
    jb_status = Queued;
    jb_deficit = 0;
    jb_spent = 0;
    jb_cancel = false;
    jb_progress = None;
    jb_thread = None;
    ev_mutex = Mutex.create ();
    ev_lines = Queue.create ();
    ev_seq = 0;
    ev_dropped = 0;
    jm_executions =
      Metrics.gauge ~labels ~help:"Cumulative executions of one served campaign"
        "cftcg_serve_job_executions";
    jm_covered =
      Metrics.gauge ~labels ~help:"Probes covered by one served campaign"
        "cftcg_serve_job_probes_covered";
    jm_epochs =
      Metrics.counter ~labels ~help:"Epochs completed by one served campaign"
        "cftcg_serve_job_epochs_total";
  }

let retire_metrics t =
  List.iter (fun name -> Metrics.remove_labeled name [ ("job", t.jb_id) ]) job_metric_names

(* The job's telemetry sink: each event is appended to the bounded
   feed as one pre-encoded JSONL line (oldest lines dropped past the
   cap, with the drop count kept), and Epoch_end additionally updates
   the job's labeled instruments so /metrics shows live progress. *)
let sink t =
  let emit e =
    (match e with
    | Telemetry.Epoch_end { executions; probes_covered; _ } ->
      Metrics.set t.jm_executions (float_of_int executions);
      Metrics.set t.jm_covered (float_of_int probes_covered);
      Metrics.inc t.jm_epochs
    | _ -> ());
    Mutex.lock t.ev_mutex;
    Queue.push (Telemetry.to_json ~seq:t.ev_seq e) t.ev_lines;
    t.ev_seq <- t.ev_seq + 1;
    if Queue.length t.ev_lines > max_event_lines then begin
      ignore (Queue.pop t.ev_lines);
      t.ev_dropped <- t.ev_dropped + 1
    end;
    Mutex.unlock t.ev_mutex
  in
  { Telemetry.emit; close = (fun () -> ()) }

let event_lines t =
  Mutex.lock t.ev_mutex;
  let lines = Queue.fold (fun acc l -> l :: acc) [] t.ev_lines in
  let dropped = t.ev_dropped in
  Mutex.unlock t.ev_mutex;
  (List.rev lines, dropped)

(* tail of the feed, for /debug/jobs — cheaper than hauling the whole
   bounded feed (up to 10k lines) through the router per request *)
let recent_event_lines ?(limit = 20) t =
  Mutex.lock t.ev_mutex;
  let n = Queue.length t.ev_lines in
  let skip = max 0 (n - limit) in
  let lines = ref [] in
  let i = ref 0 in
  Queue.iter
    (fun l ->
      if !i >= skip then lines := l :: !lines;
      incr i)
    t.ev_lines;
  Mutex.unlock t.ev_mutex;
  List.rev !lines

(* status document for GET /campaigns/:id — progress fields come from
   the snapshot the runner publishes after each epoch *)
let status_json t =
  let base =
    [
      ("id", Wire.Str t.jb_id);
      ("model", Wire.Str t.jb_model);
      ("tenant", Wire.Str t.jb_tenant);
      ("status", Wire.Str (status_name t.jb_status));
      ("spent_execs", Wire.Num (float_of_int t.jb_spent));
    ]
  in
  let progress =
    match t.jb_progress with
    | None -> []
    | Some p ->
      [
        ("epoch", Wire.Num (float_of_int p.Campaign.pg_epoch));
        ("executions", Wire.Num (float_of_int p.Campaign.pg_executions));
        ("probes_covered", Wire.Num (float_of_int p.Campaign.pg_probes_covered));
        ("probes_total", Wire.Num (float_of_int p.Campaign.pg_probes_total));
        ("corpus_size", Wire.Num (float_of_int p.Campaign.pg_corpus_size));
        ("worker_crashes", Wire.Num (float_of_int p.Campaign.pg_worker_crashes));
        ("plateaued", Wire.Bool p.Campaign.pg_plateaued);
        ("solver_rounds", Wire.Num (float_of_int p.Campaign.pg_solver_rounds));
      ]
      @
      (match p.Campaign.pg_stop_reason with
      | Some r -> [ ("stop_reason", Wire.Str (Campaign.stop_reason_string r)) ]
      | None -> [])
  in
  let outcome =
    match t.jb_status with
    | Done r ->
      [
        ("suite_size", Wire.Num (float_of_int (List.length r.Campaign.suite)));
        ("failures", Wire.Arr (List.map
             (fun (f : Cftcg_fuzz.Fuzzer.failure) -> Wire.Str f.Cftcg_fuzz.Fuzzer.f_message)
             r.Campaign.failures));
        ("resumed", Wire.Bool r.Campaign.resumed);
      ]
    | Failed msg -> [ ("error", Wire.Str msg) ]
    | _ -> []
  in
  Wire.Obj (base @ progress @ outcome)

let summary_json t =
  Wire.Obj
    [
      ("id", Wire.Str t.jb_id);
      ("model", Wire.Str t.jb_model);
      ("tenant", Wire.Str t.jb_tenant);
      ("status", Wire.Str (status_name t.jb_status));
    ]

(* GET /debug/jobs document: the status fields plus the scheduler
   internals the status endpoint hides (weight, deficit) and the tail
   of the event feed, re-parsed so the endpoint serves structured
   events rather than strings of JSON *)
let debug_json t =
  let events =
    List.filter_map
      (fun l -> match Wire.of_string l with v -> Some v | exception _ -> None)
      (recent_event_lines t)
  in
  let extra =
    [
      ("weight", Wire.Num (float_of_int t.jb_weight));
      ("deficit", Wire.Num (float_of_int t.jb_deficit));
      ("dropped_events", Wire.Num (float_of_int t.ev_dropped));
      ("recent_events", Wire.Arr events);
    ]
  in
  match status_json t with
  | Wire.Obj fields -> Wire.Obj (fields @ extra)
  | v -> v
