(** Multi-tenant campaign scheduler — the core of [cftcg serve].

    Each submitted campaign gets a runner thread that steps the
    campaign epoch by epoch ({!Campaign.step}); a runner may only
    start an epoch once the {e deficit round-robin} arbiter grants it
    the executions that epoch wants. Every scheduling round credits
    each live job [quantum * weight] executions of deficit; a job
    whose deficit covers its next epoch runs it (the executions
    actually spent are charged, so overruns carry over as debt),
    everyone else waits, and a round advances only when no live job
    can proceed. Per-tenant execution budgets clip grants: a tenant
    whose budget is spent has its jobs stopped at the next epoch
    boundary — budgets hold within one epoch's slack, never by killing
    a worker mid-run.

    Grants always cover a full epoch, so a campaign stepped under the
    scheduler performs exactly the epochs a solo {!Campaign.run}
    would, with the same per-(epoch, worker) seeds — concurrency
    changes wall-clock interleaving, not results. Epoch parallelism is
    bounded by one shared {!Worker_pool}; campaigns naming the same
    corpus directory share one open sharded {!Corpus_store} handle. *)

module Campaign = Cftcg_campaign.Campaign
module Worker_pool = Cftcg_campaign.Worker_pool

type t

val create : ?quantum:int -> pool:Worker_pool.t -> unit -> t
(** [quantum] (default 1000) is the per-round, per-weight deficit
    credit in executions. Registers the service-level counters
    ([cftcg_serve_campaigns_*]) on the default metrics registry. *)

val pool : t -> Worker_pool.t

type submission = {
  sb_model : string;  (** informational label echoed in status documents *)
  sb_tenant : string;
  sb_weight : int;  (** fair-share weight, clamped to >= 1 *)
  sb_tenant_budget : int option;
      (** when set, installs/overwrites the tenant's total execution
          budget (shared by all that tenant's jobs) *)
  sb_config : Campaign.config;
      (** the [sink] field is replaced by the job's own event feed;
          [corpus_dir] (if any) is rerouted through the shared store
          cache *)
}

val submit : t -> submission -> Cftcg_ir.Ir.program -> (string, string) result
(** Creates the job, spawns its runner thread, returns the job id.
    [Error] only when the daemon is shutting down. A campaign whose
    configuration is invalid still submits — it lands in
    [Failed] state immediately (the error is in the status document),
    which keeps submission non-blocking. *)

val find : t -> string -> Job.t option

val jobs : t -> Job.t list
(** Submission order. *)

val cancel : t -> string -> (Job.t, string) result
(** Requests cooperative cancellation; the job reaches [Cancelled]
    once its runner observes the flag (between fuzzing iterations).
    Cancelling a terminal job is a no-op returning the job. *)

val delete : t -> string -> ([ `Deleted | `Cancelling ], [ `Not_found ]) result
(** A terminal job is removed and its labeled metric series retired;
    a live one is cancelled and kept ([`Cancelling]) — delete again
    once it lands. *)

val shutdown : t -> unit
(** Stops granting, flags every runner to stop, joins them all. Jobs
    interrupted mid-campaign land in [Cancelled]; corpus state is
    already on disk (campaigns persist every epoch). Idempotent. *)

val stats_json : t -> Wire.json
(** The [/healthz] document: job counts and pool occupancy. *)
