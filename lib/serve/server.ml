(* Accept loop of the serve daemon. One thread per connection, one
   request per connection (the protocol is Connection: close), and a
   select-with-timeout accept so a stop flag — typically set from a
   SIGTERM handler — is honoured within a poll interval. Shutdown is
   orderly: stop accepting, drain in-flight connection threads, shut
   the scheduler down (joining every runner), remove the socket
   file. *)

module Log = Cftcg_obs.Log

let poll_interval = 0.2

type t = {
  sv_sched : Scheduler.t;
  sv_resolve : string -> (Cftcg_ir.Ir.program, string) result;
  sv_conn_mutex : Mutex.t;
  mutable sv_conns : Thread.t list;
}

let handle_connection srv client =
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  Fun.protect
    ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
    (fun () ->
      match Wire.read_request ic with
      | None -> ()
      | Some rq -> (
        let response = Router.dispatch ~resolve:srv.sv_resolve srv.sv_sched rq in
        Log.debug
          ~fields:[ ("method", rq.Wire.rq_method); ("path", rq.Wire.rq_path) ]
          "request: %d" response.Wire.rs_status;
        try Wire.write_response oc response with
        | Sys_error _ | Unix.Unix_error _ -> () (* client went away; nothing to salvage *)))

let reap srv =
  (* join finished connection threads so the list stays bounded;
     Thread.join on a live thread would block, so track liveness by
     joining only at shutdown and trimming here opportunistically is
     not possible with the stdlib — instead the list is simply capped
     by joining everything once it grows past a high-water mark
     (requests are sub-millisecond; this never triggers under normal
     load) *)
  Mutex.lock srv.sv_conn_mutex;
  let conns = srv.sv_conns in
  if List.length conns > 256 then begin
    srv.sv_conns <- [];
    Mutex.unlock srv.sv_conn_mutex;
    List.iter Thread.join conns
  end
  else Mutex.unlock srv.sv_conn_mutex

let serve ~resolve ~sched ~stop addr =
  (* a client closing mid-response must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Wire.listen addr in
  Log.info "daemon listening on %s" (Wire.addr_to_string addr);
  let srv =
    { sv_sched = sched; sv_resolve = resolve; sv_conn_mutex = Mutex.create (); sv_conns = [] }
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (* drain in-flight requests, then the runners *)
      Mutex.lock srv.sv_conn_mutex;
      let conns = srv.sv_conns in
      srv.sv_conns <- [];
      Mutex.unlock srv.sv_conn_mutex;
      List.iter Thread.join conns;
      Log.info "daemon shutting down: draining runners";
      Scheduler.shutdown sched;
      match addr with
      | Wire.Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
      | Wire.Tcp _ -> ())
    (fun () ->
      while not (stop ()) do
        match Unix.select [ fd ] [] [] poll_interval with
        | [], _, _ -> ()
        | _ :: _, _, _ -> (
          match Unix.accept fd with
          | client, _ ->
            let th = Thread.create (fun () -> handle_connection srv client) () in
            Mutex.lock srv.sv_conn_mutex;
            srv.sv_conns <- th :: srv.sv_conns;
            Mutex.unlock srv.sv_conn_mutex;
            reap srv
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR | Unix.ECONNABORTED), _, _) -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done)
