(** HTTP surface of the serve daemon.

    {v
    POST   /campaigns             submit a campaign (JSON body) -> {"id": ...}
    GET    /campaigns             list jobs (submission order)
    GET    /campaigns/:id         status/coverage document
    GET    /campaigns/:id/events  buffered telemetry feed (JSON lines)
    DELETE /campaigns/:id         cancel a live job / delete a terminal record
    GET    /metrics               live Prometheus scrape (default registry)
    GET    /healthz               daemon + pool stats
    GET    /debug/jobs            per-job status + scheduler internals + recent events
    GET    /debug/log             tail of the flight-recorder ring (structured log lines)
    v}

    Submission body fields (all optional except [model]): [model],
    [tenant], [weight], [tenant_budget], [seed], [jobs] (0 resolves to
    the machine default, like [fuzz --jobs 0]), [total_execs],
    [execs_per_epoch], [plateau_epochs], [max_epochs], [seed_cap],
    [stop_on_full], [corpus_dir], [resume], [backend] ("vm" |
    "closures"), [hybrid] (bool — plateau→solve→resume concolic
    phase; its solver executions are charged to the tenant like any
    others), [solver_execs], [solver_rounds]. Malformed fields yield
    a 400 naming the field. *)

val dispatch :
  resolve:(string -> (Cftcg_ir.Ir.program, string) result) ->
  Scheduler.t ->
  Wire.request ->
  Wire.response
(** [resolve] maps the submitted model name to an instrumented
    program (injected so this library stays independent of the
    model/bench layers). Never raises: handler exceptions become a
    500 response. *)
