(* Wire formats for the serve daemon: a hand-rolled JSON value type
   (the project deliberately carries no JSON dependency), a minimal
   HTTP/1.1 request/response codec — exactly the slice the service
   protocol needs: one request per connection, Content-Length bodies,
   no chunked encoding, no pipelining — and the listener/client socket
   plumbing over Unix-domain and TCP endpoints. *)

(* --- JSON ------------------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let num_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec print_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (num_str f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        print_json buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf "\":";
        print_json buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  print_json buf j;
  Buffer.contents buf

(* recursive-descent parser over the raw string *)
let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let code =
             try int_of_string ("0x" ^ String.sub s !pos 4) with
             | _ -> fail "bad \\u escape"
           in
           pos := !pos + 4;
           (* UTF-8 encode the code point (surrogates are kept as-is:
              the daemon never emits them) *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "unknown escape");
        loop ()
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* accessors: total versions raise Parse_error with the field context,
   so the router can turn a malformed submission into one 400 line *)
let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let get_string ?default name j =
  match (member name j, default) with
  | Some (Str s), _ -> s
  | Some _, _ -> raise (Parse_error (Printf.sprintf "field %S must be a string" name))
  | None, Some d -> d
  | None, None -> raise (Parse_error (Printf.sprintf "missing field %S" name))

let get_int ?default name j =
  match (member name j, default) with
  | Some (Num f), _ when Float.is_integer f -> int_of_float f
  | Some _, _ -> raise (Parse_error (Printf.sprintf "field %S must be an integer" name))
  | None, Some d -> d
  | None, None -> raise (Parse_error (Printf.sprintf "missing field %S" name))

let get_bool ?(default = false) name j =
  match member name j with
  | Some (Bool b) -> b
  | Some _ -> raise (Parse_error (Printf.sprintf "field %S must be a boolean" name))
  | None -> default

let get_string_opt name j =
  match member name j with
  | Some (Str s) -> Some s
  | Some Null | None -> None
  | Some _ -> raise (Parse_error (Printf.sprintf "field %S must be a string" name))

let get_int_opt name j =
  match member name j with
  | Some (Num f) when Float.is_integer f -> Some (int_of_float f)
  | Some Null | None -> None
  | Some _ -> raise (Parse_error (Printf.sprintf "field %S must be an integer" name))

(* --- endpoints -------------------------------------------------------- *)

type addr =
  | Unix_path of string
  | Tcp of string * int

let addr_of_string spec =
  let tcp rest =
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "bad tcp endpoint %S (expected HOST:PORT)" rest)
    | Some i -> (
      let host = String.sub rest 0 i in
      let port = String.sub rest (i + 1) (String.length rest - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
      | _ -> Error (Printf.sprintf "bad tcp port %S" port))
  in
  if String.length spec >= 5 && String.sub spec 0 5 = "unix:" then
    Ok (Unix_path (String.sub spec 5 (String.length spec - 5)))
  else if String.length spec >= 4 && String.sub spec 0 4 = "tcp:" then
    tcp (String.sub spec 4 (String.length spec - 4))
  else Ok (Unix_path spec)

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
    let ip =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0) with
      | Not_found | Invalid_argument _ -> Unix.inet_addr_of_string host
    in
    Unix.ADDR_INET (ip, port)

let listen addr =
  let domain, cleanup_stale =
    match addr with
    | Unix_path p ->
      ( Unix.PF_UNIX,
        fun () ->
          (* a leftover socket file from a crashed daemon: refuse only
             if something is actually accepting on it *)
          match Unix.stat p with
          | { Unix.st_kind = Unix.S_SOCK; _ } -> (
            let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            match Unix.connect probe (Unix.ADDR_UNIX p) with
            | () ->
              Unix.close probe;
              failwith (Printf.sprintf "socket %s is already in use" p)
            | exception Unix.Unix_error _ ->
              Unix.close probe;
              Unix.unlink p)
          | _ -> failwith (Printf.sprintf "%s exists and is not a socket" p)
          | exception Unix.Unix_error (Unix.ENOENT, _, _) -> () )
    | Tcp _ -> (Unix.PF_INET, fun () -> ())
  in
  cleanup_stale ();
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (sockaddr_of addr);
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  fd

let connect addr =
  let domain =
    match addr with
    | Unix_path _ -> Unix.PF_UNIX
    | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr_of addr) with
  | e ->
    Unix.close fd;
    raise e);
  fd

(* --- HTTP ------------------------------------------------------------- *)

type request = {
  rq_method : string;
  rq_path : string;
  rq_headers : (string * string) list;  (* names lowercased *)
  rq_body : string;
}

type response = {
  rs_status : int;
  rs_content_type : string;
  rs_body : string;
}

let reason_of = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let max_body = 16 * 1024 * 1024

let read_request ic =
  match input_line ic with
  | exception End_of_file -> None
  | line -> (
    let line =
      if String.length line > 0 && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    match String.split_on_char ' ' line with
    | meth :: path :: _ ->
      let headers = ref [] in
      (try
         let rec loop () =
           let h = input_line ic in
           let h =
             if String.length h > 0 && h.[String.length h - 1] = '\r' then
               String.sub h 0 (String.length h - 1)
             else h
           in
           if h <> "" then begin
             (match String.index_opt h ':' with
             | Some i ->
               let name = String.lowercase_ascii (String.trim (String.sub h 0 i)) in
               let value = String.trim (String.sub h (i + 1) (String.length h - i - 1)) in
               headers := (name, value) :: !headers
             | None -> ());
             loop ()
           end
         in
         loop ()
       with End_of_file -> ());
      let len =
        match List.assoc_opt "content-length" !headers with
        | Some v -> ( match int_of_string_opt v with Some n when n >= 0 && n <= max_body -> n | _ -> 0)
        | None -> 0
      in
      let body = really_input_string ic len in
      Some { rq_method = meth; rq_path = path; rq_headers = List.rev !headers; rq_body = body }
    | _ -> None)

let write_response oc r =
  Printf.fprintf oc "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
    r.rs_status (reason_of r.rs_status) r.rs_content_type (String.length r.rs_body);
  output_string oc r.rs_body;
  flush oc

let json_response status j = { rs_status = status; rs_content_type = "application/json"; rs_body = to_string j }

let error_response status message = json_response status (Obj [ ("error", Str message) ])

(* one-shot HTTP client for the submit/status CLI and the tests *)
let http_request addr ~meth ~path ?(body = "") () =
  let fd = connect addr in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Printf.fprintf oc "%s %s HTTP/1.1\r\nHost: cftcg\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
        meth path (String.length body);
      output_string oc body;
      flush oc;
      let status_line = input_line ic in
      let status =
        match String.split_on_char ' ' status_line with
        | _ :: code :: _ -> ( match int_of_string_opt code with Some c -> c | None -> 0)
        | _ -> 0
      in
      let len = ref (-1) in
      (try
         let rec headers () =
           let h = input_line ic in
           let h =
             if String.length h > 0 && h.[String.length h - 1] = '\r' then
               String.sub h 0 (String.length h - 1)
             else h
           in
           if h <> "" then begin
             (match String.index_opt h ':' with
             | Some i
               when String.lowercase_ascii (String.trim (String.sub h 0 i)) = "content-length" ->
               len := Option.value ~default:(-1)
                 (int_of_string_opt (String.trim (String.sub h (i + 1) (String.length h - i - 1))))
             | _ -> ());
             headers ()
           end
         in
         headers ()
       with End_of_file -> ());
      let body =
        if !len >= 0 then really_input_string ic !len
        else begin
          (* no Content-Length: read to EOF (Connection: close) *)
          let buf = Buffer.create 1024 in
          (try
             while true do
               Buffer.add_channel buf ic 1
             done
           with End_of_file -> ());
          Buffer.contents buf
        end
      in
      (status, body))
