(** Wire formats for the serve daemon.

    The project deliberately carries no JSON or HTTP dependency, so
    this module hand-rolls exactly the slice the service protocol
    needs: a JSON value type with a recursive-descent parser, an
    HTTP/1.1 codec restricted to one request per connection with
    [Content-Length] bodies (no chunked encoding, no pipelining — a
    deliberate simplification: every handler response is fully
    materialized anyway), and listener/client socket plumbing over
    Unix-domain and localhost TCP endpoints. *)

(** {1 JSON} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

val to_string : json -> string
(** Compact (single-line) encoding; integral floats print without a
    decimal point, so OCaml [int]s survive a round trip. *)

val of_string : string -> json
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> json -> json option

val get_string : ?default:string -> string -> json -> string
(** Field accessors raise {!Parse_error} naming the offending field,
    so the router can turn a malformed submission into one 400 line.
    Without [default], a missing field is an error. *)

val get_int : ?default:int -> string -> json -> int
val get_bool : ?default:bool -> string -> json -> bool
val get_string_opt : string -> json -> string option
val get_int_opt : string -> json -> int option

(** {1 Endpoints} *)

type addr =
  | Unix_path of string
  | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], or a bare path (Unix-domain). *)

val addr_to_string : addr -> string

val listen : addr -> Unix.file_descr
(** Binds and listens. A leftover Unix-socket file from a crashed
    daemon is unlinked if nothing is accepting on it; a live one
    raises [Failure "... already in use"]. *)

val connect : addr -> Unix.file_descr

(** {1 HTTP} *)

type request = {
  rq_method : string;
  rq_path : string;
  rq_headers : (string * string) list;  (** names lowercased *)
  rq_body : string;
}

type response = {
  rs_status : int;
  rs_content_type : string;
  rs_body : string;
}

val read_request : in_channel -> request option
(** [None] on EOF or an unparseable request line. Bodies above 16 MiB
    are truncated to zero length (the protocol never needs them). *)

val write_response : out_channel -> response -> unit

val json_response : int -> json -> response
val error_response : int -> string -> response
(** [{"error": message}] with the given status. *)

val http_request :
  addr -> meth:string -> path:string -> ?body:string -> unit -> int * string
(** One-shot client: connect, send, read [(status, body)], close. Used
    by [cftcg submit]/[cftcg status] and the tests. *)
