(* Request routing for the serve daemon: maps the HTTP surface onto
   {!Scheduler} operations. Model resolution is injected ([resolve])
   so this library stays independent of the model/bench layers — the
   CLI passes a resolver over built-in benchmarks and .slx.xml
   files. *)

module Campaign = Cftcg_campaign.Campaign
module Worker_pool = Cftcg_campaign.Worker_pool
module Fuzzer = Cftcg_fuzz.Fuzzer
module Metrics = Cftcg_obs.Metrics
module Flight = Cftcg_obs.Flight

(* POST /campaigns body -> submission. Unknown fields are ignored;
   malformed ones raise Wire.Parse_error, turned into a 400 below. *)
let submission_of_body body =
  let j = Wire.of_string body in
  let model = Wire.get_string "model" j in
  let jobs =
    match Wire.get_int ~default:1 "jobs" j with
    | 0 -> Worker_pool.default_capacity ()  (* same convention as fuzz --jobs 0 *)
    | n -> n
  in
  let backend =
    match Wire.get_string ~default:"vm" "backend" j with
    | "vm" -> Fuzzer.Vm
    | "closures" -> Fuzzer.Closures
    | other -> raise (Wire.Parse_error (Printf.sprintf "unknown backend %S" other))
  in
  (* hybrid opt-in: "hybrid": true enables the plateau→solve→resume
     phase; solver_execs / solver_rounds tune its budgets. Solver
     executions are charged to the tenant like fuzzing executions
     (they land in Campaign.step's return value). *)
  let hybrid =
    if Wire.get_bool ~default:false "hybrid" j then
      Some
        {
          Campaign.default_hybrid with
          Campaign.solver_execs =
            Wire.get_int ~default:Campaign.default_hybrid.Campaign.solver_execs "solver_execs" j;
          solver_rounds =
            Wire.get_int ~default:Campaign.default_hybrid.Campaign.solver_rounds "solver_rounds" j;
        }
    else None
  in
  let config =
    { Campaign.default_config with
      Campaign.jobs;
      hybrid;
      seed = Int64.of_int (Wire.get_int ~default:1 "seed" j);
      total_execs = Wire.get_int ~default:Campaign.default_config.Campaign.total_execs "total_execs" j;
      execs_per_epoch =
        Wire.get_int ~default:Campaign.default_config.Campaign.execs_per_epoch "execs_per_epoch" j;
      plateau_epochs =
        Wire.get_int ~default:Campaign.default_config.Campaign.plateau_epochs "plateau_epochs" j;
      max_epochs = Wire.get_int ~default:0 "max_epochs" j;
      seed_cap = Wire.get_int ~default:Campaign.default_config.Campaign.seed_cap "seed_cap" j;
      stop_on_full = Wire.get_bool ~default:true "stop_on_full" j;
      corpus_dir = Wire.get_string_opt "corpus_dir" j;
      resume = Wire.get_bool ~default:false "resume" j;
      fuzzer = { Fuzzer.default_config with Fuzzer.backend };
      on_worker_crash = Campaign.Degrade
    }
  in
  ( model,
    {
      Scheduler.sb_model = model;
      sb_tenant = Wire.get_string ~default:"default" "tenant" j;
      sb_weight = Wire.get_int ~default:1 "weight" j;
      sb_tenant_budget = Wire.get_int_opt "tenant_budget" j;
      sb_config = config;
    } )

(* GET /debug/log entry: the reserved keys plus the correlation
   fields flattened alongside, mirroring the JSONL line schema *)
let flight_entry_json (e : Flight.entry) =
  Wire.Obj
    ([
       ("ts", Wire.Num e.Flight.fl_ts);
       ("level", Wire.Str e.Flight.fl_level);
       ("msg", Wire.Str e.Flight.fl_msg);
     ]
    @ List.map (fun (k, v) -> (k, Wire.Str v)) e.Flight.fl_fields)

let segments path =
  (* strip a query string if any; the protocol defines none *)
  let path =
    match String.index_opt path '?' with
    | Some i -> String.sub path 0 i
    | None -> path
  in
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

let dispatch ~resolve sched (rq : Wire.request) =
  let open Wire in
  try
    match (rq.rq_method, segments rq.rq_path) with
    | "GET", [ "healthz" ] -> json_response 200 (Scheduler.stats_json sched)
    | "GET", [ "metrics" ] ->
      {
        rs_status = 200;
        rs_content_type = "text/plain; version=0.0.4";
        rs_body = Metrics.to_prometheus Metrics.default;
      }
    | "POST", [ "campaigns" ] -> (
      let model, sub = submission_of_body rq.rq_body in
      match resolve model with
      | Error msg -> error_response 400 (Printf.sprintf "cannot load model %S: %s" model msg)
      | Ok prog -> (
        match Scheduler.submit sched sub prog with
        | Error msg -> error_response 503 msg
        | Ok id -> json_response 201 (Obj [ ("id", Str id) ])))
    | "GET", [ "campaigns" ] ->
      json_response 200 (Arr (List.map Job.summary_json (Scheduler.jobs sched)))
    | "GET", [ "campaigns"; id ] -> (
      match Scheduler.find sched id with
      | None -> error_response 404 "no such campaign"
      | Some job -> json_response 200 (Job.status_json job))
    | "GET", [ "campaigns"; id; "events" ] -> (
      match Scheduler.find sched id with
      | None -> error_response 404 "no such campaign"
      | Some job ->
        let lines, dropped = Job.event_lines job in
        let body = String.concat "\n" lines ^ if lines = [] then "" else "\n" in
        {
          rs_status = 200;
          rs_content_type = "application/x-ndjson";
          rs_body =
            (if dropped > 0 then
               Printf.sprintf "{\"event\":\"feed_truncated\",\"dropped\":%d}\n%s" dropped body
             else body);
        })
    | "DELETE", [ "campaigns"; id ] -> (
      match Scheduler.delete sched id with
      | Error `Not_found -> error_response 404 "no such campaign"
      | Ok `Deleted -> json_response 200 (Obj [ ("id", Str id); ("status", Str "deleted") ])
      | Ok `Cancelling -> json_response 202 (Obj [ ("id", Str id); ("status", Str "cancelling") ]))
    | "GET", [ "debug"; "jobs" ] ->
      json_response 200 (Arr (List.map Job.debug_json (Scheduler.jobs sched)))
    | "GET", [ "debug"; "log" ] ->
      let entries = Flight.recent ~limit:200 () in
      json_response 200
        (Obj
           [
             ("enabled", Bool (Flight.enabled ()));
             ("entries", Arr (List.map flight_entry_json entries));
           ])
    | _, ("campaigns" :: _ | "debug" :: _ | [ "healthz" ] | [ "metrics" ]) ->
      error_response 405 "method not allowed"
    | _ -> error_response 404 "not found"
  with
  | Wire.Parse_error msg -> error_response 400 msg
  | e -> error_response 500 (Printexc.to_string e)
