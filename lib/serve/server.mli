(** Accept loop of the serve daemon.

    One thread per connection, one request per connection
    ([Connection: close]); the accept is a [select] with a 200 ms
    timeout so the [stop] flag — typically set from a SIGTERM
    handler — is honoured promptly. *)

val serve :
  resolve:(string -> (Cftcg_ir.Ir.program, string) result) ->
  sched:Scheduler.t ->
  stop:(unit -> bool) ->
  Wire.addr ->
  unit
(** Binds [addr] (a stale Unix-socket file with no listener is
    reclaimed; a live one raises [Failure]) and serves until [stop ()]
    turns true, then shuts down in order: stop accepting, drain
    in-flight connections, {!Scheduler.shutdown} (joins every runner
    thread), unlink the socket file. SIGPIPE is set to ignore — a
    client closing mid-response must not kill the daemon. *)
