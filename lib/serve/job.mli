(** One submitted campaign inside the serve daemon.

    A job bundles the campaign's identity and configuration with the
    three things the service layers need to observe it: the mutable
    scheduling state the deficit round-robin arbiter works on (guarded
    by the owning {!Scheduler}'s mutex), a bounded in-memory JSONL
    event feed (own lock — a slow [/events] reader never stalls the
    arbiter), and per-job labeled metrics exported on [/metrics] and
    retired when the job record is deleted. *)

module Campaign = Cftcg_campaign.Campaign
module Telemetry = Cftcg_campaign.Telemetry

type status =
  | Queued
  | Running
  | Done of Campaign.result
  | Failed of string  (** the campaign raised; message preserved *)
  | Cancelled

val status_name : status -> string
val terminal : status -> bool

type t = {
  jb_id : string;
  jb_model : string;
  jb_tenant : string;
  jb_weight : int;  (** fair-share weight (>= 1) *)
  jb_prog : Cftcg_ir.Ir.program;
  mutable jb_config : Campaign.config;
  mutable jb_status : status;
  mutable jb_deficit : int;  (** DRR deficit; may go negative (epoch overrun debt) *)
  mutable jb_spent : int;  (** executions charged to the tenant *)
  mutable jb_cancel : bool;
  mutable jb_progress : Campaign.progress option;
  mutable jb_thread : Thread.t option;
  ev_mutex : Mutex.t;
  ev_lines : string Queue.t;
  mutable ev_seq : int;
  mutable ev_dropped : int;
  jm_executions : Cftcg_obs.Metrics.gauge;
  jm_covered : Cftcg_obs.Metrics.gauge;
  jm_epochs : Cftcg_obs.Metrics.counter;
}

val create :
  id:string ->
  model:string ->
  tenant:string ->
  weight:int ->
  config:Campaign.config ->
  Cftcg_ir.Ir.program ->
  t

val sink : t -> Telemetry.sink
(** The sink to attach to the job's campaign config: buffers each
    event as a pre-encoded JSONL line (bounded at 10k lines, oldest
    dropped and counted) and mirrors [Epoch_end] into the job's
    labeled gauges so [/metrics] shows live progress. *)

val event_lines : t -> string list * int
(** Retained feed lines oldest-first, plus how many were dropped. *)

val recent_event_lines : ?limit:int -> t -> string list
(** The newest [limit] (default 20) feed lines, oldest-first. *)

val retire_metrics : t -> unit
(** Unregisters the job's labeled series from the default registry
    (called when the job record is deleted). *)

val status_json : t -> Wire.json
val summary_json : t -> Wire.json

val debug_json : t -> Wire.json
(** [status_json] extended with scheduler internals (weight, deficit,
    dropped-event count) and the tail of the event feed as structured
    values — the per-job document behind [GET /debug/jobs]. *)
