(** A counting pool of Domain worker slots shared by concurrent
    campaigns.

    The pool does not own domains: a campaign epoch still spawns and
    joins its own worker domains, exactly as a standalone
    {!Campaign.run} does. What the pool bounds is how many such
    domains may run {e at once} across every campaign that shares it,
    so a daemon multiplexing dozens of campaigns ([cftcg serve]) never
    oversubscribes the machine.

    Acquisition is all-or-nothing and FIFO: a request for [n] slots
    blocks until [n] are simultaneously free {e and} every
    earlier-arrived request has been served, so a wide epoch cannot be
    starved by a stream of narrow ones. *)

type t

val create : int -> t
(** [create capacity] — total worker slots. Raises [Invalid_argument]
    if [capacity < 1]. *)

val capacity : t -> int

val default_capacity : unit -> int
(** [Domain.recommended_domain_count () - 1], clamped to at least 1 —
    one slot per hardware thread minus the coordinator. The value
    behind [--jobs 0] and the serve pool default. *)

val acquire : t -> int -> unit
(** Blocks until [n] slots are free (FIFO-ordered). Raises
    [Invalid_argument] if [n < 1] or [n] exceeds the capacity. *)

val release : t -> int -> unit

val with_slots : t -> int -> (unit -> 'a) -> 'a
(** [acquire]/[release] bracket, exception-safe. *)

val free : t -> int
(** Currently free slots (a snapshot — informational only). *)
