(** Parallel ensemble fuzzing orchestrator.

    Runs N concurrent fuzzing workers (OCaml 5 [Domain]s) over one
    instrumented program, in {e epochs} — the in-process analogue of
    LibFuzzer's [-jobs/-workers] fork mode:

    - each worker runs {!Fuzzer.run} under an execution budget with
      its own RNG stream, split from the campaign master seed per
      (epoch, worker) slot;
    - between epochs the coordinator {e merges} worker corpora:
      every input that found coverage is replayed, deduplicated by
      probe-set fingerprint (two inputs covering the same probe set
      collide), keeping the representative with the best Iteration
      Difference Coverage metric; the merged corpus is redistributed
      to every worker as the next epoch's seed corpus;
    - the campaign stops when the global execution budget is spent,
      when every probe is covered, or when coverage has plateaued for
      a configurable number of epochs.

    With an optional {!Corpus_store} directory attached, the merged
    corpus and a manifest (coverage bitmap, cumulative executions,
    epoch counter) are persisted after every epoch, so a killed
    campaign resumes exactly where it stopped ([resume = true]).

    Workers run under execution budgets and therefore on the
    {!Fuzzer} virtual clock, and the merge step is order-independent,
    so a campaign's outcome is a deterministic function of
    (program, config) — independent of domain scheduling. The only
    exception is [stop_on_full]: once some worker covers everything,
    the others are cut short at a scheduling-dependent point; coverage
    is complete either way. *)

open Cftcg_ir
module Fuzzer = Cftcg_fuzz.Fuzzer

type config = {
  jobs : int;  (** concurrent workers (>= 1) *)
  seed : int64;  (** campaign master seed; worker streams split from it *)
  total_execs : int;  (** global execution budget across all workers and epochs *)
  execs_per_epoch : int;  (** per-worker executions between corpus syncs *)
  plateau_epochs : int;  (** stop after this many epochs without new coverage *)
  max_epochs : int;  (** hard epoch cap; 0 = until budget exhausted *)
  seed_cap : int;  (** max corpus entries redistributed per epoch (metric-best first) *)
  stop_on_full : bool;
      (** end the campaign (and cut workers short) once every probe is
          covered; switch off for strictly deterministic runs *)
  fuzzer : Fuzzer.config;
      (** per-worker loop configuration; [seed] is overridden per
          worker, [seeds] only seeds the initial corpus *)
  corpus_dir : string option;  (** attach an on-disk {!Corpus_store} *)
  resume : bool;  (** restore epoch/execution accounting from the manifest *)
  sink : Telemetry.sink;
}

val default_config : config
(** 4 jobs, 20k total executions in epochs of 1k per worker, plateau
    window 3, seed 1, no persistence, no telemetry. *)

type epoch_stat = {
  ep_epoch : int;
  ep_executions : int;  (** cumulative at epoch end *)
  ep_probes_covered : int;
  ep_corpus_size : int;
}

type result = {
  suite : Bytes.t list;
      (** the merged corpus: one representative per probe-set
          fingerprint, in fingerprint order (deterministic) *)
  failures : Fuzzer.failure list;  (** first input per violated Assertion message *)
  probes_covered : int;
  probes_total : int;
  executions : int;
      (** cumulative, including resumed-from executions; may slightly
          exceed [total_execs] because every worker replays the shared
          seed corpus even when its last-epoch slice is smaller *)
  epochs : epoch_stat list;  (** chronological, this run only *)
  resumed : bool;
  plateaued : bool;  (** stopped by the plateau detector *)
}

val run : ?config:config -> Ir.program -> result
(** Raises [Invalid_argument] if [jobs < 1], if the model has no
    inports, or if [resume] finds a manifest recorded for a program
    with a different probe count. *)
