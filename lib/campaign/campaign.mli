(** Parallel ensemble fuzzing orchestrator.

    Runs N concurrent fuzzing workers (OCaml 5 [Domain]s) over one
    instrumented program, in {e epochs} — the in-process analogue of
    LibFuzzer's [-jobs/-workers] fork mode:

    - each worker runs {!Fuzzer.run} under an execution budget with
      its own RNG stream, split from the campaign master seed per
      (epoch, worker) slot;
    - between epochs the coordinator {e merges} worker corpora:
      every input that found coverage is replayed, deduplicated by
      probe-set fingerprint (two inputs covering the same probe set
      collide), keeping the representative with the best Iteration
      Difference Coverage metric; the merged corpus is redistributed
      to every worker as the next epoch's seed corpus;
    - the campaign stops when the global execution budget is spent,
      when every probe is covered, or when coverage has plateaued for
      a configurable number of epochs.

    {b Hybrid concolic phase.} With [hybrid] set, a plateau does not
    stop the campaign: the coordinator hands the still-uncovered
    probes to the bounded {!Cftcg_symexec.Symexec} solver under a
    deterministic exec budget, absorbs the solved inputs into the
    merged corpus (fingerprint-deduped like any epoch merge, so they
    reach every worker as next-epoch seeds), resets the stall counter
    and resumes fuzzing — alternating until the solver closes zero
    targets, its rounds are spent, or the model is fully covered.
    Solver executions are charged against [total_execs] (and a
    scheduler grant) like fuzzing executions.

    With an optional {!Corpus_store} directory attached, the merged
    corpus and a manifest (coverage bitmap, cumulative executions,
    epoch counter) are persisted after every epoch, so a killed
    campaign resumes exactly where it stopped ([resume = true]).

    Workers run under execution budgets and therefore on the
    {!Fuzzer} virtual clock, and the merge step is order-independent,
    so a campaign's outcome is a deterministic function of
    (program, config) — independent of domain scheduling. The
    exceptions are [stop_on_full] (once some worker covers
    everything, the others are cut short at a scheduling-dependent
    point; coverage is complete either way) and the wall-clock
    deadlines [max_runtime] / [epoch_deadline], which by nature
    depend on real time.

    {b Fault tolerance.} A worker domain that raises does not bring
    the campaign down: the coordinator joins every domain, salvages
    the surviving workers' results, emits {!Telemetry.Worker_crash}
    and {!Telemetry.Failure} events, and applies [on_worker_crash].
    Because only real executions are charged against the budget, a
    crashed worker's unspent slice is automatically redistributed
    over the following epochs. Corpus persistence retries transient
    I/O errors with backoff (inside {!Corpus_store}) and, if an
    operation still fails, skips it for the epoch and re-persists on
    the next one — the in-memory corpus is authoritative. *)

open Cftcg_ir
module Fuzzer = Cftcg_fuzz.Fuzzer

type crash_policy =
  | Abort  (** join all domains, then re-raise as {!Worker_crashed} *)
  | Degrade
      (** drop the crashed worker (never below one) and continue the
          campaign with the survivors *)

exception Worker_crashed of { worker : int; epoch : int; message : string }
(** Raised by {!run} under the {!Abort} policy. All domains have been
    joined and the telemetry sink closed before this escapes — no
    resources leak. *)

type hybrid = {
  solver_execs : int;
      (** solver exec budget per phase, clipped to what is left of
          [total_execs]; a {!Cftcg_symexec.Symexec.Exec_budget}, so
          the phase never reads the wall clock *)
  solver_rounds : int;  (** maximum solver phases per campaign *)
  solver : Cftcg_symexec.Symexec.config;
      (** unroll bounds and per-target move budget; [seed] is
          re-derived per (epoch, round) from the campaign seed *)
}

val default_hybrid : hybrid
(** 10k executions per phase, at most 4 phases,
    {!Cftcg_symexec.Symexec.default_config} search parameters. *)

type stop_reason =
  | Full_coverage  (** every probe covered ([stop_on_full]) *)
  | Plateau
      (** coverage stalled for [plateau_epochs] epochs — and, on a
          hybrid campaign, the solver phases are exhausted too *)
  | Dead_workers  (** two consecutive epochs with every worker crashed *)
  | Budget  (** [total_execs] spent *)
  | Epoch_cap  (** [max_epochs] reached *)
  | Deadline  (** [max_runtime] wall deadline passed *)

val stop_reason_string : stop_reason -> string
(** Stable lowercase identifier (["full_coverage"], ["plateau"], …)
    for logs, status JSON and the CLI summary. *)

type config = {
  jobs : int;  (** concurrent workers (>= 1) *)
  seed : int64;  (** campaign master seed; worker streams split from it *)
  total_execs : int;  (** global execution budget across all workers and epochs *)
  execs_per_epoch : int;  (** per-worker executions between corpus syncs *)
  plateau_epochs : int;  (** stop after this many epochs without new coverage *)
  max_epochs : int;  (** hard epoch cap; 0 = until budget exhausted *)
  seed_cap : int;  (** max corpus entries redistributed per epoch (metric-best first) *)
  stop_on_full : bool;
      (** end the campaign (and cut workers short) once every probe is
          covered; switch off for strictly deterministic runs *)
  fuzzer : Fuzzer.config;
      (** per-worker loop configuration; [seed] is overridden per
          worker, [seeds] only seeds the initial corpus *)
  corpus_dir : string option;  (** attach an on-disk {!Corpus_store} *)
  store : Corpus_store.t option;
      (** attach an already-open store handle instead; takes precedence
          over [corpus_dir]. Lets several campaigns share one sharded
          store ([cftcg serve] does) *)
  resume : bool;  (** restore epoch/execution accounting from the manifest *)
  sink : Telemetry.sink;
  on_worker_crash : crash_policy;  (** default {!Degrade} *)
  max_runtime : float option;
      (** wall-clock ceiling (seconds) on the whole campaign: no new
          epoch starts past the deadline, and workers of the running
          epoch get the remaining time as their {!Fuzzer.Wall_budget}
          ceiling. [None] (the default) keeps the campaign purely on
          the virtual clock — byte-identical same-seed runs *)
  epoch_deadline : float option;
      (** wall-clock ceiling (seconds) per worker epoch run, so one
          stalled target cannot wedge an epoch; [None] by default *)
  job : string option;
      (** correlation id carried by every {!Cftcg_obs.Log} line,
          {!Cftcg_obs.Trace} span and post-mortem dump this campaign
          produces. [cftcg serve] mints one per submitted job; local
          CLI runs mint a [fuzz-<pid>] id; [None] (the default) logs
          without a job field. Purely observational — never affects
          campaign results *)
  hybrid : hybrid option;
      (** [Some _] turns the plateau into a fuzz→solve→fuzz
          alternation instead of a stop; [None] (the default) keeps
          the classic plateau stop *)
}

val default_config : config
(** 4 jobs, 20k total executions in epochs of 1k per worker, plateau
    window 3, seed 1, no persistence, no telemetry, crash policy
    {!Degrade}, no deadlines, no job id, no hybrid phase. *)

type epoch_stat = {
  ep_epoch : int;
  ep_executions : int;  (** cumulative at epoch end *)
  ep_probes_covered : int;
  ep_corpus_size : int;
}

type result = {
  suite : Bytes.t list;
      (** the merged corpus: one representative per probe-set
          fingerprint, in fingerprint order (deterministic) *)
  failures : Fuzzer.failure list;  (** first input per violated Assertion message *)
  probes_covered : int;
  probes_total : int;
  executions : int;
      (** cumulative, including resumed-from executions. Never exceeds
          [total_execs] on a fresh run: workers clip even their seed
          replay to the epoch slice *)
  epochs : epoch_stat list;  (** chronological, this run only *)
  resumed : bool;
  plateaued : bool;
      (** stopped by the plateau detector (hybrid campaigns: after the
          solver phases ran dry as well) *)
  worker_crashes : int;
      (** worker domains that raised and were salvaged (under
          {!Degrade}; under {!Abort} the first crash raises) *)
  solver_rounds : int;  (** hybrid solver phases run *)
  solver_solved : int;  (** probes closed by those phases (campaign replay) *)
  solver_executions : int;  (** executions spent inside solver phases *)
  stop_reason : stop_reason option;
      (** why the campaign ended; [None] only when the state was
          abandoned mid-flight (a cancelled served job) *)
}

val run : ?config:config -> Ir.program -> result
(** Raises [Invalid_argument] if [jobs < 1], if the model has no
    inports, or if [resume] finds a manifest recorded for a program
    with a different probe count. Raises {!Worker_crashed} if a
    worker domain raises and [on_worker_crash = Abort]. If every
    live worker crashes for two consecutive epochs the campaign stops
    (the failure is clearly not transient) instead of spinning on a
    budget that can never be spent. *)

(** {2 Stepwise interface}

    [run] is [start] + a [step] loop + [finish]. The pieces are
    exposed so an external scheduler (the [cftcg serve] daemon) can
    interleave the epochs of many campaigns over one shared
    {!Worker_pool}, charge per-tenant budgets, and observe progress
    between epochs. A [step] with no clipping arguments is exactly one
    iteration of [run]'s loop, so a campaign stepped to completion
    produces the identical result to a solo [run] with the same
    configuration. *)

type state

val start : ?config:config -> Ir.program -> state
(** Opens the store (unless [config.store] is given), absorbs on-disk
    and configured seeds, and restores resume accounting. Same
    [Invalid_argument] cases as {!run}. *)

val finished : state -> bool
(** True once the budget is spent, the epoch cap or a deadline is hit,
    or a previous [step] decided to stop (full coverage, plateau, dead
    epochs). *)

val step :
  ?workers:int ->
  ?max_execs:int ->
  ?should_stop:(unit -> bool) ->
  ?pool:Worker_pool.t ->
  state ->
  int
(** Runs one epoch and returns the executions it actually performed
    (what a fair-share scheduler charges the tenant). [workers] caps
    the epoch's parallelism below [config.jobs]; [max_execs] clips the
    epoch's execution grant the same way the end of the global budget
    does — a granted campaign is a prefix-identical campaign.
    [should_stop] is polled by the workers (cooperative cancellation
    between fuzzing iterations). With [pool], the epoch's domains are
    spawned only once the pool admits that many slots. Raises
    {!Worker_crashed} under the {!Abort} policy. *)

val finish : state -> result
(** Extracts the result. Does not close the sink and may be called
    while the campaign is still steppable (the result is a snapshot). *)

type progress = {
  pg_epoch : int;
  pg_executions : int;
  pg_probes_covered : int;
  pg_probes_total : int;
  pg_corpus_size : int;
  pg_worker_crashes : int;
  pg_plateaued : bool;
  pg_solver_rounds : int;
  pg_stop_reason : stop_reason option;  (** set once a [step] decided to stop *)
}

val progress : state -> progress
(** Cheap snapshot for status endpoints. Call it between [step]s (the
    state is not internally locked). *)
