(** On-disk corpus directory for resumable fuzzing campaigns.

    Mirrors LibFuzzer's corpus-directory model: each interesting input
    lives in its own file, content-addressed by its {e probe-set
    fingerprint} (the hash of the set of probe cells the input
    covers), so two inputs exercising the same behaviour collide and
    only the better one — higher Iteration Difference Coverage metric
    — is kept. A [manifest] file records the campaign configuration,
    cumulative execution count, and the global coverage bitmap, so an
    interrupted campaign resumes exactly where it stopped.

    Layout on disk:
    {v
    DIR/manifest            key-value text, written atomically
    DIR/entries/<fp>.tc     raw input bytes, <fp> = 16-hex-char fingerprint
    v}

    Every file write is write-then-rename, so a campaign killed at any
    point leaves the directory consistent: at worst the last few
    entries carry a stale metric (recovered as 0) until the next
    manifest save.

    Not thread-safe: only the campaign coordinator touches the store. *)

type t

type manifest = {
  m_seed : int64;  (** campaign master seed *)
  m_jobs : int;
  m_epoch : int;  (** epochs completed *)
  m_executions : int;  (** cumulative executions across all workers *)
  m_probes_total : int;
  m_coverage : Bytes.t;  (** global probe bitmap, one byte per cell *)
}

exception Corrupt of string
(** Raised by {!open_} / [load_manifest] on a damaged manifest. *)

val open_ : string -> t
(** Opens (creating directories as needed) a corpus at [dir] and loads
    the entry index from the manifest plus any entry files written
    after the last manifest save. *)

val add : t -> fingerprint:string -> metric:int -> Bytes.t -> [ `Added | `Replaced | `Kept ]
(** Content-addressed insert. [`Added]: new fingerprint; [`Replaced]:
    same fingerprint but a higher metric, the entry file is
    overwritten (atomically); [`Kept]: an equal-or-better
    representative already exists, nothing written. *)

val mem : t -> string -> bool

val size : t -> int
(** Number of distinct fingerprints. *)

val fingerprints : t -> string list
(** Sorted — iteration order is deterministic. *)

val entries : t -> Bytes.t list
(** All entry payloads, in {!fingerprints} order. *)

val save_manifest : t -> manifest -> unit
(** Atomically writes the manifest, including the current entry index
    (fingerprint → metric). *)

val load_manifest : t -> manifest option
(** [None] when no manifest has been saved yet. *)

val merge : t -> from:string list -> int
(** Merges other corpus directories into this one, entry by entry
    under the same fingerprint/metric rule as {!add}; returns how many
    entries were added or replaced. Coverage bitmaps are {e not}
    merged — run a campaign (or replay) over the merged corpus to
    regenerate the manifest. *)
