(** On-disk corpus directory for resumable fuzzing campaigns.

    Mirrors LibFuzzer's corpus-directory model: each interesting input
    lives in its own file, content-addressed by its {e probe-set
    fingerprint} (the hash of the set of probe cells the input
    covers), so two inputs exercising the same behaviour collide and
    only the better one — higher Iteration Difference Coverage metric
    — is kept. A [manifest] file records the campaign configuration,
    cumulative execution count, and the global coverage bitmap, so an
    interrupted campaign resumes exactly where it stopped.

    {b Sharded layout (v2).} Entries are bucketed into 16 shards by
    the first hex character of their fingerprint, each shard with its
    own manifest, so concurrent campaigns persisting into one store
    never serialize on a single manifest file:
    {v
    DIR/manifest             global accounting, written atomically
    DIR/shards/<h>/<fp>.tc   raw input bytes, <h> = first hex char of <fp>
    DIR/shards/<h>/manifest  per-shard entry index (fingerprint -> metric)
    DIR/entries/             legacy v1 flat layout (migrated on open)
    v}

    A v1 store (flat [DIR/entries] plus a global manifest carrying
    [entry] lines) opens transparently: {!open_} moves every legacy
    entry into its shard, preserving the recorded metrics, and the
    next {!save_manifest} writes the v2 layout. Every file write is
    write-then-rename, so a campaign killed at any point leaves the
    directory consistent: at worst the last few entries carry a stale
    metric (recovered as 0) until the next manifest save.

    {b Fault tolerance.} Persistence is wrapped in a bounded
    retry-with-backoff for transient failures ([Sys_error],
    [Unix_error], injected {!Cftcg_util.Fault} faults); a failed write
    never leaks its temporary file or descriptor. Damaged files are
    never deleted: {!open_} quarantines a corrupt manifest to
    [manifest.corrupt-N] and rebuilds the index from the shard
    manifests and entry files, and {!fsck} does the same for
    undecodable or half-written entries. Retries, quarantines and
    migrations are counted in {!Cftcg_obs.Metrics}
    ([cftcg_store_persist_retries_total],
    [cftcg_store_quarantined_total],
    [cftcg_store_migrated_entries_total]).

    {b Thread safety.} A handle may be shared by concurrent campaigns
    (the [cftcg serve] scheduler does): the index takes one short
    mutex per operation, and file writes take a per-shard mutex, so
    writers on different shards proceed in parallel — there is no
    global lock on the persistence path. *)

type t

type manifest = {
  m_seed : int64;  (** campaign master seed *)
  m_jobs : int;
  m_epoch : int;  (** epochs completed *)
  m_executions : int;  (** cumulative executions across all workers *)
  m_probes_total : int;
  m_coverage : Bytes.t;  (** global probe bitmap, one byte per cell *)
}

exception Corrupt of string
(** Raised by [load_manifest] on a damaged manifest. {!open_} and
    {!fsck} never let it escape — they quarantine instead. *)

val open_ : ?on_salvage:(string -> unit) -> string -> t
(** Opens (creating directories as needed) a corpus at [dir] and loads
    the entry index from the global manifest, the per-shard manifests,
    and any entry files written after the last manifest save. Legacy
    v1 flat-layout entries are migrated into their shards.

    A corrupt manifest does {e not} raise: it is quarantined to
    [manifest.corrupt-N] and the index is rebuilt from the shard
    manifests and entry files (each individually atomic), so an
    interrupted or damaged campaign directory always opens. Campaign
    accounting (epoch counter, cumulative executions, coverage bitmap)
    recorded only in the global manifest is lost in that case; every
    input survives. [on_salvage] (default: ignore) receives one
    human-readable line per recovery or migration action. *)

val salvaged : t -> string list
(** Recovery actions performed by {!open_} on this handle, oldest
    first; empty for a healthy store. *)

val add : t -> fingerprint:string -> metric:int -> Bytes.t -> [ `Added | `Replaced | `Kept ]
(** Content-addressed insert. [`Added]: new fingerprint; [`Replaced]:
    same fingerprint but a higher metric, the entry file is
    overwritten (atomically); [`Kept]: an equal-or-better
    representative already exists, nothing written. Transient write
    failures are retried with backoff; if they persist the exception
    propagates with the index unchanged and no temporary file left
    behind, so the add can simply be reattempted later. *)

val mem : t -> string -> bool

val size : t -> int
(** Number of distinct fingerprints. *)

val metric : t -> string -> int option
(** Best metric recorded for a fingerprint, if present. *)

val fingerprints : t -> string list
(** Sorted — iteration order is deterministic. *)

val entries : t -> Bytes.t list
(** All entry payloads, in {!fingerprints} order. *)

val save_manifest : t -> manifest -> unit
(** Atomically writes the per-shard manifests of every shard touched
    since the last save, then the global accounting manifest. A shard
    whose manifest write fails stays marked dirty and is retried by
    the next save. *)

val load_manifest : t -> manifest option
(** [None] when no manifest has been saved yet. *)

val merge : t -> from:string list -> int
(** Merges other corpus directories into this one, entry by entry
    under the same fingerprint/metric rule as {!add}; returns how many
    entries were added or replaced. Coverage bitmaps are {e not}
    merged — run a campaign (or replay) over the merged corpus to
    regenerate the manifest. *)

type fsck_counts = {
  fc_tmp_files : int;  (** interrupted writes ([*.tmp]) quarantined *)
  fc_bad_names : int;  (** entry files whose name is not a fingerprint *)
  fc_empty_entries : int;
  fc_unreadable : int;
  fc_corrupt_manifests : int;  (** global manifests that failed to parse *)
  fc_corrupt_shard_manifests : int;
}
(** Per-finding-kind tally of one {!fsck} pass; all zero for a healthy
    store. The CLI ([cftcg corpus fsck]) prints these and exits
    non-zero when any is non-zero, so CI jobs can assert on them. *)

type fsck_report = {
  fsck_entries : int;  (** valid entries after the scrub, across all shards *)
  fsck_quarantined : string list;
      (** one line per file moved to [*.corrupt-N], oldest first *)
  fsck_manifest : [ `Ok | `Missing | `Quarantined ];
  fsck_orphans : int;
      (** valid entries not referenced by any manifest (written after
          the last save; recovered at metric 0 on the next open).
          Reported as 0 when a manifest was quarantined this pass —
          the reference index is gone, so the count would be noise. *)
  fsck_shards : int;  (** shard directories walked *)
  fsck_counts : fsck_counts;
}

val fsck : ?on_salvage:(string -> unit) -> string -> fsck_report
(** Validates and repairs a corpus directory in place, walking the
    legacy flat layout and every shard: stray [.tmp] files
    (interrupted writes), entry files whose name is not a hex
    fingerprint (or sit in the wrong shard), empty or unreadable
    entries, and manifests that fail to parse are each quarantined to
    [*.corrupt-N]. Never raises on damaged content, never deletes
    data. A report with [fsck_quarantined = []] and no orphans means
    the directory is byte-for-byte consistent. Exposed on the CLI as
    [cftcg corpus fsck DIR]. *)
