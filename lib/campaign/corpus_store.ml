module Bytecodec = Cftcg_util.Bytecodec
module Fault = Cftcg_util.Fault
module Metrics = Cftcg_obs.Metrics

type t = {
  dir : string;
  entries_dir : string;
  index : (string, int) Hashtbl.t;  (* fingerprint -> best metric seen *)
  mutable salvaged : string list;  (* quarantine actions, newest first *)
}

type manifest = {
  m_seed : int64;
  m_jobs : int;
  m_epoch : int;
  m_executions : int;
  m_probes_total : int;
  m_coverage : Bytes.t;
}

type fsck_report = {
  fsck_entries : int;
  fsck_quarantined : string list;
  fsck_manifest : [ `Ok | `Missing | `Quarantined ];
  fsck_orphans : int;
}

exception Corrupt of string

let magic = "cftcg-corpus 1"

let entry_suffix = ".tc"

(* instruments are lazy so a process that never touches a store
   registers nothing in the default metrics registry *)
let retries_metric =
  lazy
    (Metrics.counter ~help:"Transient corpus-store write failures retried with backoff"
       "cftcg_store_persist_retries_total")

let quarantined_metric =
  lazy
    (Metrics.counter ~help:"Corrupt corpus files quarantined to *.corrupt-N"
       "cftcg_store_quarantined_total")

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let manifest_path t = Filename.concat t.dir "manifest"

let entry_path t fp = Filename.concat t.entries_dir (fp ^ entry_suffix)

let is_transient = function
  | Fault.Injected _ | Sys_error _ | Unix.Unix_error _ -> true
  | _ -> false

let retry_attempts = 3

(* Bounded retry with exponential backoff (1ms, 2ms) for transient
   filesystem errors — and injected faults, which is how the recovery
   path is exercised deterministically in tests. Non-transient
   exceptions propagate immediately. *)
let with_retries f =
  let rec go attempt =
    try f () with
    | e when attempt + 1 < retry_attempts && is_transient e ->
      Metrics.inc (Lazy.force retries_metric);
      Unix.sleepf (0.001 *. float_of_int (1 lsl attempt));
      go (attempt + 1)
  in
  go 0

(* All writes go through write-then-rename so a killed campaign never
   leaves a half-written entry or manifest behind; readers either see
   the old version or the new one. A failure at any step (disk full,
   injected fault) closes and unlinks the tmp file before re-raising,
   so failed writes leak neither an fd nor a stray [.tmp]. *)
let write_atomic ~path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Fault.check Fault.Store_write;
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try
    Fault.check Fault.Store_rename;
    Unix.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let is_entry_file name = Filename.check_suffix name entry_suffix

let fp_of_entry_file name = Filename.chop_suffix name entry_suffix

(* entry files are content-addressed by hex_of_int64 fingerprints:
   up to 16 lowercase hex characters (campaigns write exactly 16;
   shorter ones are accepted so hand-rolled corpora stay loadable) *)
let valid_fingerprint fp =
  String.length fp >= 1
  && String.length fp <= 16
  && String.for_all (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) fp

(* moves a damaged file to the first free [path.corrupt-N] instead of
   deleting it, so a human (or a bug report) can still inspect it *)
let quarantine t path reason =
  let rec free n =
    let q = Printf.sprintf "%s.corrupt-%d" path n in
    if Sys.file_exists q then free (n + 1) else q
  in
  let q = free 0 in
  Sys.rename path q;
  Metrics.inc (Lazy.force quarantined_metric);
  let msg = Printf.sprintf "%s -> %s (%s)" (Filename.basename path) (Filename.basename q) reason in
  t.salvaged <- msg :: t.salvaged;
  msg

let salvaged t = List.rev t.salvaged

let parse_manifest_lines t lines =
  match lines with
  | first :: rest when first = magic ->
    let seed = ref 0L and jobs = ref 1 and epoch = ref 0 in
    let executions = ref 0 and probes_total = ref 0 in
    let coverage = ref Bytes.empty in
    List.iter
      (fun line ->
        match String.index_opt line ' ' with
        | None -> if line <> "" then raise (Corrupt ("bad manifest line: " ^ line))
        | Some i -> (
          let key = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          let int_v () =
            match int_of_string_opt v with
            | Some n -> n
            | None -> raise (Corrupt ("bad manifest value: " ^ line))
          in
          match key with
          | "seed" -> (
            match Int64.of_string_opt v with
            | Some s -> seed := s
            | None -> raise (Corrupt ("bad manifest value: " ^ line)))
          | "jobs" -> jobs := int_v ()
          | "epoch" -> epoch := int_v ()
          | "executions" -> executions := int_v ()
          | "probes_total" -> probes_total := int_v ()
          | "coverage" -> (
            try coverage := Bytecodec.bytes_of_hex v with
            | Invalid_argument _ -> raise (Corrupt "bad coverage bitmap"))
          | "entry" -> (
            match String.split_on_char ' ' v with
            | [ fp; metric ] -> (
              match int_of_string_opt metric with
              | Some m -> Hashtbl.replace t.index fp m
              | None -> raise (Corrupt ("bad entry metric: " ^ line)))
            | _ -> raise (Corrupt ("bad entry line: " ^ line)))
          | _ -> raise (Corrupt ("unknown manifest key: " ^ key))))
      rest;
    {
      m_seed = !seed;
      m_jobs = !jobs;
      m_epoch = !epoch;
      m_executions = !executions;
      m_probes_total = !probes_total;
      m_coverage = !coverage;
    }
  | _ -> raise (Corrupt "missing corpus magic line")

let load_manifest t =
  let path = manifest_path t in
  if not (Sys.file_exists path) then None
  else
    let lines =
      String.split_on_char '\n' (read_file path) |> List.filter (fun l -> l <> "")
    in
    Some (parse_manifest_lines t lines)

let open_ ?(on_salvage = fun _ -> ()) dir =
  let entries_dir = Filename.concat dir "entries" in
  mkdir_p entries_dir;
  let t = { dir; entries_dir; index = Hashtbl.create 64; salvaged = [] } in
  (match load_manifest t with
  | _ -> ()
  | exception Corrupt reason ->
    (* A damaged manifest must not kill --resume: the parse may have
       half-populated the index, so drop it, quarantine the manifest
       and rebuild from the entry files, which are individually
       atomic. Campaign accounting (epoch, executions, coverage) is
       lost, but every input survives. *)
    Hashtbl.reset t.index;
    on_salvage (quarantine t (manifest_path t) reason));
  (* entries written after the last manifest save (interrupted
     campaign) are recovered with an unknown (0) metric; entry files
     whose name is not a fingerprint are left for fsck *)
  let recovered = ref 0 in
  Array.iter
    (fun name ->
      if is_entry_file name then begin
        let fp = fp_of_entry_file name in
        if valid_fingerprint fp && not (Hashtbl.mem t.index fp) then begin
          Hashtbl.replace t.index fp 0;
          incr recovered
        end
      end)
    (Sys.readdir entries_dir);
  if t.salvaged <> [] && !recovered > 0 then
    on_salvage (Printf.sprintf "rebuilt index from entry files: %d entries recovered" !recovered);
  t

let add t ~fingerprint ~metric data =
  let known = Hashtbl.find_opt t.index fingerprint in
  match known with
  | Some best when best >= metric -> `Kept
  | _ ->
    with_retries (fun () ->
        write_atomic ~path:(entry_path t fingerprint) (Bytes.to_string data));
    Hashtbl.replace t.index fingerprint metric;
    if known = None then `Added else `Replaced

let mem t fingerprint = Hashtbl.mem t.index fingerprint

let size t = Hashtbl.length t.index

let fingerprints t = List.sort compare (Hashtbl.fold (fun fp _ acc -> fp :: acc) t.index [])

let entries t =
  List.filter_map
    (fun fp ->
      let path = entry_path t fp in
      if Sys.file_exists path then Some (Bytes.of_string (read_file path)) else None)
    (fingerprints t)

let save_manifest t m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Printf.bprintf buf "seed %Ld\n" m.m_seed;
  Printf.bprintf buf "jobs %d\n" m.m_jobs;
  Printf.bprintf buf "epoch %d\n" m.m_epoch;
  Printf.bprintf buf "executions %d\n" m.m_executions;
  Printf.bprintf buf "probes_total %d\n" m.m_probes_total;
  Printf.bprintf buf "coverage %s\n" (Bytecodec.hex_of_bytes m.m_coverage);
  List.iter
    (fun fp -> Printf.bprintf buf "entry %s %d\n" fp (Hashtbl.find t.index fp))
    (fingerprints t);
  with_retries (fun () -> write_atomic ~path:(manifest_path t) (Buffer.contents buf))

let merge t ~from =
  List.fold_left
    (fun acc dir ->
      let src = open_ dir in
      List.fold_left
        (fun acc fp ->
          let metric = try Hashtbl.find src.index fp with Not_found -> 0 in
          let path = entry_path src fp in
          if Sys.file_exists path then begin
            match add t ~fingerprint:fp ~metric (Bytes.of_string (read_file path)) with
            | `Added | `Replaced -> acc + 1
            | `Kept -> acc
          end
          else acc)
        acc (fingerprints src))
    0 from

let fsck ?(on_salvage = fun _ -> ()) dir =
  let entries_dir = Filename.concat dir "entries" in
  mkdir_p entries_dir;
  let t = { dir; entries_dir; index = Hashtbl.create 64; salvaged = [] } in
  (* scrub the entries directory: interrupted writes and files that do
     not decode as content-addressed entries are quarantined *)
  Array.iter
    (fun name ->
      let path = Filename.concat entries_dir name in
      if Filename.check_suffix name ".tmp" then
        on_salvage (quarantine t path "interrupted write")
      else if is_entry_file name then begin
        let fp = fp_of_entry_file name in
        if not (valid_fingerprint fp) then
          on_salvage (quarantine t path "entry name is not a fingerprint")
        else
          match read_file path with
          | "" -> on_salvage (quarantine t path "empty entry")
          | _ -> ()
          | exception Sys_error _ -> on_salvage (quarantine t path "unreadable entry")
      end)
    (Sys.readdir entries_dir);
  let mpath = Filename.concat dir "manifest" in
  if Sys.file_exists (mpath ^ ".tmp") then
    on_salvage (quarantine t (mpath ^ ".tmp") "interrupted manifest write");
  (* the manifest must parse; a corrupt one is quarantined (not
     rebuilt: campaign accounting is unrecoverable, and --resume
     degrades gracefully when no manifest is present) *)
  let manifest_state =
    if not (Sys.file_exists mpath) then `Missing
    else begin
      match load_manifest t with
      | Some _ -> `Ok
      | None -> `Missing
      | exception Corrupt reason ->
        Hashtbl.reset t.index;
        on_salvage (quarantine t mpath reason);
        `Quarantined
    end
  in
  let valid = ref 0 and orphans = ref 0 in
  Array.iter
    (fun name ->
      if is_entry_file name then begin
        let fp = fp_of_entry_file name in
        if valid_fingerprint fp then begin
          incr valid;
          if manifest_state = `Ok && not (Hashtbl.mem t.index fp) then incr orphans
        end
      end)
    (Sys.readdir entries_dir);
  {
    fsck_entries = !valid;
    fsck_quarantined = List.rev t.salvaged;
    fsck_manifest = manifest_state;
    fsck_orphans = !orphans;
  }
