module Bytecodec = Cftcg_util.Bytecodec
module Fault = Cftcg_util.Fault
module Metrics = Cftcg_obs.Metrics

(* Sharded on-disk layout (v2).

   Entries are bucketed by the first hex character of their probe-set
   fingerprint into 16 shards, each with its own entries and its own
   manifest, so concurrent campaigns persisting into one store never
   contend on a single manifest file:

     DIR/manifest             global accounting (seed/epoch/coverage), v2
     DIR/shards/<h>/<fp>.tc   entry payloads, <h> = fp.[0]
     DIR/shards/<h>/manifest  per-shard entry index (fingerprint -> metric)
     DIR/entries/             legacy v1 flat layout; migrated on open

   A v1 store (flat DIR/entries + a global manifest carrying "entry"
   lines) opens transparently: its entries are moved into shards and
   its metrics preserved. In-process, the handle is thread-safe: the
   index takes one short mutex per operation and file writes take a
   per-shard mutex, so writers on different shards never serialize. *)

let n_shards = 16

type t = {
  dir : string;
  legacy_dir : string;  (* DIR/entries — v1 inbox, empty after migration *)
  shards_root : string;
  index : (string, int) Hashtbl.t;  (* fingerprint -> best metric seen *)
  ix_mutex : Mutex.t;
  shard_mutexes : Mutex.t array;
  dirty : bool array;  (* shard manifests needing a save *)
  mutable salvaged : string list;  (* quarantine actions, newest first *)
}

type manifest = {
  m_seed : int64;
  m_jobs : int;
  m_epoch : int;
  m_executions : int;
  m_probes_total : int;
  m_coverage : Bytes.t;
}

type fsck_counts = {
  fc_tmp_files : int;
  fc_bad_names : int;
  fc_empty_entries : int;
  fc_unreadable : int;
  fc_corrupt_manifests : int;
  fc_corrupt_shard_manifests : int;
}

type fsck_report = {
  fsck_entries : int;
  fsck_quarantined : string list;
  fsck_manifest : [ `Ok | `Missing | `Quarantined ];
  fsck_orphans : int;
  fsck_shards : int;
  fsck_counts : fsck_counts;
}

exception Corrupt of string

let magic_v1 = "cftcg-corpus 1"

let magic_v2 = "cftcg-corpus 2"

let shard_magic = "cftcg-shard 1"

let entry_suffix = ".tc"

(* instruments are lazy so a process that never touches a store
   registers nothing in the default metrics registry *)
let retries_metric =
  lazy
    (Metrics.counter ~help:"Transient corpus-store write failures retried with backoff"
       "cftcg_store_persist_retries_total")

let quarantined_metric =
  lazy
    (Metrics.counter ~help:"Corrupt corpus files quarantined to *.corrupt-N"
       "cftcg_store_quarantined_total")

let migrated_metric =
  lazy
    (Metrics.counter ~help:"Legacy flat-layout entries migrated into shards"
       "cftcg_store_migrated_entries_total")

(* Last-ops ring surfaced in post-mortem dumps: which entries were
   written, which manifests saved, what was quarantined in the moments
   before a crash. Gated on the flight recorder, so a disabled run
   pays one atomic load per op and never renders the description. *)
module Flight = Cftcg_obs.Flight

let ops_capacity = 64
let recent_ops : string option array = Array.make ops_capacity None
let recent_ops_cursor = Atomic.make 0

let note_op fmt =
  if not (Flight.enabled ()) then Printf.ikfprintf (fun () -> ()) () fmt
  else
    Printf.ksprintf
      (fun op ->
        let slot = Atomic.fetch_and_add recent_ops_cursor 1 in
        recent_ops.(slot mod ops_capacity) <- Some op)
      fmt

let () =
  Flight.register_provider "corpus_store" (fun () ->
      let cursor = Atomic.get recent_ops_cursor in
      let first = max 0 (cursor - ops_capacity) in
      let buf = Buffer.create 256 in
      Buffer.add_char buf '[';
      let n = ref 0 in
      for i = first to cursor - 1 do
        match recent_ops.(i mod ops_capacity) with
        | Some op ->
          if !n > 0 then Buffer.add_char buf ',';
          incr n;
          Buffer.add_char buf '"';
          Buffer.add_string buf (Flight.json_escape op);
          Buffer.add_char buf '"'
        | None -> ()
      done;
      Buffer.add_char buf ']';
      Buffer.contents buf)

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let manifest_path t = Filename.concat t.dir "manifest"

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | _ -> invalid_arg "Corpus_store: fingerprint is not lowercase hex"

let shard_of_fp fp =
  if String.length fp = 0 then invalid_arg "Corpus_store: empty fingerprint";
  hex_digit fp.[0]

let shard_dir t ix = Filename.concat t.shards_root (Printf.sprintf "%x" ix)

let shard_manifest_path t ix = Filename.concat (shard_dir t ix) "manifest"

let entry_path t fp = Filename.concat (shard_dir t (shard_of_fp fp)) (fp ^ entry_suffix)

let legacy_entry_path t fp = Filename.concat t.legacy_dir (fp ^ entry_suffix)

let is_transient = function
  | Fault.Injected _ | Sys_error _ | Unix.Unix_error _ -> true
  | _ -> false

let retry_attempts = 3

(* Bounded retry with exponential backoff (1ms, 2ms) for transient
   filesystem errors — and injected faults, which is how the recovery
   path is exercised deterministically in tests. Non-transient
   exceptions propagate immediately. *)
let with_retries f =
  let rec go attempt =
    try f () with
    | e when attempt + 1 < retry_attempts && is_transient e ->
      Metrics.inc (Lazy.force retries_metric);
      Unix.sleepf (0.001 *. float_of_int (1 lsl attempt));
      go (attempt + 1)
  in
  go 0

(* tmp names are unique per write so two threads publishing the same
   path (e.g. the same shard manifest) can never clobber each other's
   half-written staging file; the rename still decides the winner *)
let tmp_counter = Atomic.make 0

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* All writes go through write-then-rename so a killed campaign never
   leaves a half-written entry or manifest behind; readers either see
   the old version or the new one. A failure at any step (disk full,
   injected fault) closes and unlinks the tmp file before re-raising,
   so failed writes leak neither an fd nor a stray [.tmp]. *)
let write_atomic ~path content =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Atomic.fetch_and_add tmp_counter 1) in
  let oc = open_out_bin tmp in
  (try
     Fault.check Fault.Store_write;
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try
    Fault.check Fault.Store_rename;
    Unix.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let is_entry_file name = Filename.check_suffix name entry_suffix

let fp_of_entry_file name = Filename.chop_suffix name entry_suffix

(* entry files are content-addressed by hex_of_int64 fingerprints:
   up to 16 lowercase hex characters (campaigns write exactly 16;
   shorter ones are accepted so hand-rolled corpora stay loadable) *)
let valid_fingerprint fp =
  String.length fp >= 1
  && String.length fp <= 16
  && String.for_all (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) fp

(* moves a damaged file to the first free [path.corrupt-N] instead of
   deleting it, so a human (or a bug report) can still inspect it *)
let quarantine t path reason =
  let rec free n =
    let q = Printf.sprintf "%s.corrupt-%d" path n in
    if Sys.file_exists q then free (n + 1) else q
  in
  let q = free 0 in
  Sys.rename path q;
  Metrics.inc (Lazy.force quarantined_metric);
  note_op "quarantine %s (%s)" (Filename.basename q) reason;
  let msg = Printf.sprintf "%s -> %s (%s)" (Filename.basename path) (Filename.basename q) reason in
  t.salvaged <- msg :: t.salvaged;
  msg

let salvaged t = List.rev t.salvaged

(* One parser for both manifest generations: v1 global manifests carry
   "entry" lines (the flat layout had no shard manifests), v2 global
   manifests carry accounting only; shard manifests carry entry lines
   only. [into] receives every entry line either way. *)
let parse_manifest_lines ~into lines =
  match lines with
  | first :: rest when first = magic_v1 || first = magic_v2 || first = shard_magic ->
    let seed = ref 0L and jobs = ref 1 and epoch = ref 0 in
    let executions = ref 0 and probes_total = ref 0 in
    let coverage = ref Bytes.empty in
    List.iter
      (fun line ->
        match String.index_opt line ' ' with
        | None -> if line <> "" then raise (Corrupt ("bad manifest line: " ^ line))
        | Some i -> (
          let key = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          let int_v () =
            match int_of_string_opt v with
            | Some n -> n
            | None -> raise (Corrupt ("bad manifest value: " ^ line))
          in
          match key with
          | "seed" -> (
            match Int64.of_string_opt v with
            | Some s -> seed := s
            | None -> raise (Corrupt ("bad manifest value: " ^ line)))
          | "jobs" -> jobs := int_v ()
          | "epoch" -> epoch := int_v ()
          | "executions" -> executions := int_v ()
          | "probes_total" -> probes_total := int_v ()
          | "coverage" -> (
            try coverage := Bytecodec.bytes_of_hex v with
            | Invalid_argument _ -> raise (Corrupt "bad coverage bitmap"))
          | "entry" -> (
            match String.split_on_char ' ' v with
            | [ fp; metric ] -> (
              match int_of_string_opt metric with
              | Some m when valid_fingerprint fp -> into fp m
              | _ -> raise (Corrupt ("bad entry metric: " ^ line)))
            | _ -> raise (Corrupt ("bad entry line: " ^ line)))
          | _ -> raise (Corrupt ("unknown manifest key: " ^ key))))
      rest;
    {
      m_seed = !seed;
      m_jobs = !jobs;
      m_epoch = !epoch;
      m_executions = !executions;
      m_probes_total = !probes_total;
      m_coverage = !coverage;
    }
  | _ -> raise (Corrupt "missing corpus magic line")

let parse_manifest_file ~into path =
  let lines = String.split_on_char '\n' (read_file path) |> List.filter (fun l -> l <> "") in
  parse_manifest_lines ~into lines

let load_manifest t =
  let path = manifest_path t in
  if not (Sys.file_exists path) then None
  else
    Some
      (parse_manifest_file path ~into:(fun fp m ->
           locked t.ix_mutex (fun () -> Hashtbl.replace t.index fp m)))

let index_best t fp m =
  match Hashtbl.find_opt t.index fp with
  | Some best when best >= m -> ()
  | _ -> Hashtbl.replace t.index fp m

let readdir_opt dir = if Sys.file_exists dir && Sys.is_directory dir then Sys.readdir dir else [||]

let open_ ?(on_salvage = fun _ -> ()) dir =
  let legacy_dir = Filename.concat dir "entries" in
  let shards_root = Filename.concat dir "shards" in
  mkdir_p legacy_dir;
  mkdir_p shards_root;
  let t =
    {
      dir;
      legacy_dir;
      shards_root;
      index = Hashtbl.create 64;
      ix_mutex = Mutex.create ();
      shard_mutexes = Array.init n_shards (fun _ -> Mutex.create ());
      dirty = Array.make n_shards false;
      salvaged = [];
    }
  in
  (* v1 metrics live in the global manifest's entry lines; remember
     them so migrated legacy entries keep their metric *)
  let legacy_metrics = Hashtbl.create 16 in
  (match
     if not (Sys.file_exists (manifest_path t)) then ()
     else
       ignore
         (parse_manifest_file (manifest_path t) ~into:(fun fp m ->
              Hashtbl.replace legacy_metrics fp m;
              index_best t fp m))
   with
  | () -> ()
  | exception Corrupt reason ->
    (* A damaged manifest must not kill --resume: the parse may have
       half-populated the index, so drop it, quarantine the manifest
       and rebuild from the shard manifests and entry files, which are
       individually atomic. Campaign accounting (epoch, executions,
       coverage) is lost, but every input survives. *)
    Hashtbl.reset t.index;
    Hashtbl.reset legacy_metrics;
    on_salvage (quarantine t (manifest_path t) reason));
  (* per-shard manifests: the authoritative entry index in v2 *)
  for ix = 0 to n_shards - 1 do
    let path = shard_manifest_path t ix in
    if Sys.file_exists path then begin
      match parse_manifest_file path ~into:(fun fp m -> index_best t fp m) with
      | _ -> ()
      | exception Corrupt reason ->
        on_salvage (quarantine t path reason);
        t.dirty.(ix) <- true
    end
  done;
  (* entries written after the last manifest save (interrupted
     campaign) are recovered with an unknown (0) metric; entry files
     whose name is not a fingerprint are left for fsck *)
  let recovered = ref 0 in
  for ix = 0 to n_shards - 1 do
    Array.iter
      (fun name ->
        if is_entry_file name then begin
          let fp = fp_of_entry_file name in
          if valid_fingerprint fp && shard_of_fp fp = ix && not (Hashtbl.mem t.index fp) then begin
            Hashtbl.replace t.index fp 0;
            t.dirty.(ix) <- true;
            incr recovered
          end
        end)
      (readdir_opt (shard_dir t ix))
  done;
  (* migrate the v1 flat layout: move each valid legacy entry into its
     shard, carrying the metric the v1 manifest recorded for it *)
  let migrated = ref 0 in
  Array.iter
    (fun name ->
      if is_entry_file name then begin
        let fp = fp_of_entry_file name in
        if valid_fingerprint fp then begin
          let src = legacy_entry_path t fp in
          let dst = entry_path t fp in
          if Sys.file_exists dst then
            (* both layouts carry this fingerprint: the sharded entry
               is the live one, keep the legacy copy for inspection *)
            on_salvage (quarantine t src "legacy duplicate of sharded entry")
          else begin
            mkdir_p (shard_dir t (shard_of_fp fp));
            Sys.rename src dst;
            let metric = Option.value ~default:0 (Hashtbl.find_opt legacy_metrics fp) in
            index_best t fp metric;
            t.dirty.(shard_of_fp fp) <- true;
            Metrics.inc (Lazy.force migrated_metric);
            incr migrated
          end
        end
      end)
    (readdir_opt legacy_dir);
  if !migrated > 0 then
    on_salvage (Printf.sprintf "migrated %d legacy flat-layout entries into shards" !migrated);
  if t.salvaged <> [] && !recovered > 0 then
    on_salvage (Printf.sprintf "rebuilt index from entry files: %d entries recovered" !recovered);
  t

let add t ~fingerprint ~metric data =
  let ix = shard_of_fp fingerprint in
  let known = locked t.ix_mutex (fun () -> Hashtbl.find_opt t.index fingerprint) in
  match known with
  | Some best when best >= metric -> `Kept
  | _ ->
    (* the file write holds only this shard's mutex: adds to different
       shards from concurrent campaigns proceed in parallel *)
    locked t.shard_mutexes.(ix) (fun () ->
        mkdir_p (shard_dir t ix);
        with_retries (fun () ->
            write_atomic ~path:(entry_path t fingerprint) (Bytes.to_string data)));
    locked t.ix_mutex (fun () ->
        index_best t fingerprint metric;
        t.dirty.(ix) <- true);
    note_op "%s %s shard %x metric %d"
      (if known = None then "add" else "replace")
      fingerprint ix metric;
    if known = None then `Added else `Replaced

let mem t fingerprint = locked t.ix_mutex (fun () -> Hashtbl.mem t.index fingerprint)

let size t = locked t.ix_mutex (fun () -> Hashtbl.length t.index)

let metric t fingerprint = locked t.ix_mutex (fun () -> Hashtbl.find_opt t.index fingerprint)

let fingerprints t =
  locked t.ix_mutex (fun () ->
      List.sort compare (Hashtbl.fold (fun fp _ acc -> fp :: acc) t.index []))

let entries t =
  List.filter_map
    (fun fp ->
      let path = entry_path t fp in
      if Sys.file_exists path then Some (Bytes.of_string (read_file path)) else None)
    (fingerprints t)

let save_manifest t m =
  (* snapshot the dirty shards and their entry lists under the index
     mutex, then persist each shard manifest under its own shard
     mutex — two stores sharing a directory (or two campaigns sharing
     a handle) only contend when they touched the same shard *)
  let dirty_shards =
    locked t.ix_mutex (fun () ->
        let per_shard = Array.make n_shards [] in
        Hashtbl.iter
          (fun fp metric ->
            let ix = shard_of_fp fp in
            if t.dirty.(ix) then per_shard.(ix) <- (fp, metric) :: per_shard.(ix))
          t.index;
        let snap = ref [] in
        for ix = n_shards - 1 downto 0 do
          if t.dirty.(ix) then begin
            t.dirty.(ix) <- false;
            snap := (ix, List.sort compare per_shard.(ix)) :: !snap
          end
        done;
        !snap)
  in
  let persist_shard (ix, entries) =
    let buf = Buffer.create 256 in
    Buffer.add_string buf shard_magic;
    Buffer.add_char buf '\n';
    List.iter (fun (fp, metric) -> Printf.bprintf buf "entry %s %d\n" fp metric) entries;
    try
      locked t.shard_mutexes.(ix) (fun () ->
          mkdir_p (shard_dir t ix);
          with_retries (fun () ->
              write_atomic ~path:(shard_manifest_path t ix) (Buffer.contents buf)))
    with e ->
      (* keep the shard dirty so the next save retries it *)
      locked t.ix_mutex (fun () -> t.dirty.(ix) <- true);
      raise e
  in
  List.iter persist_shard dirty_shards;
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic_v2;
  Buffer.add_char buf '\n';
  Printf.bprintf buf "seed %Ld\n" m.m_seed;
  Printf.bprintf buf "jobs %d\n" m.m_jobs;
  Printf.bprintf buf "epoch %d\n" m.m_epoch;
  Printf.bprintf buf "executions %d\n" m.m_executions;
  Printf.bprintf buf "probes_total %d\n" m.m_probes_total;
  Printf.bprintf buf "coverage %s\n" (Bytecodec.hex_of_bytes m.m_coverage);
  with_retries (fun () -> write_atomic ~path:(manifest_path t) (Buffer.contents buf));
  note_op "save_manifest epoch %d (%d dirty shards)" m.m_epoch (List.length dirty_shards)

let merge t ~from =
  List.fold_left
    (fun acc dir ->
      let src = open_ dir in
      List.fold_left
        (fun acc fp ->
          let m = Option.value ~default:0 (metric src fp) in
          let path = entry_path src fp in
          if Sys.file_exists path then begin
            match add t ~fingerprint:fp ~metric:m (Bytes.of_string (read_file path)) with
            | `Added | `Replaced -> acc + 1
            | `Kept -> acc
          end
          else acc)
        acc (fingerprints src))
    0 from

(* ---------------------------------------------------------------- *)
(* fsck                                                             *)
(* ---------------------------------------------------------------- *)

let fsck ?(on_salvage = fun _ -> ()) dir =
  let legacy_dir = Filename.concat dir "entries" in
  let shards_root = Filename.concat dir "shards" in
  mkdir_p legacy_dir;
  let t =
    {
      dir;
      legacy_dir;
      shards_root;
      index = Hashtbl.create 64;
      ix_mutex = Mutex.create ();
      shard_mutexes = Array.init n_shards (fun _ -> Mutex.create ());
      dirty = Array.make n_shards false;
      salvaged = [];
    }
  in
  let tmp_files = ref 0 and bad_names = ref 0 and empty_entries = ref 0 in
  let unreadable = ref 0 and corrupt_manifests = ref 0 and corrupt_shard_manifests = ref 0 in
  (* scrub one directory of entries: interrupted writes and files that
     do not decode as content-addressed entries are quarantined *)
  let scrub_entries ?(expect_shard = -1) edir =
    Array.iter
      (fun name ->
        let path = Filename.concat edir name in
        if Filename.check_suffix name ".tmp" then begin
          incr tmp_files;
          on_salvage (quarantine t path "interrupted write")
        end
        else if is_entry_file name then begin
          let fp = fp_of_entry_file name in
          if not (valid_fingerprint fp) || (expect_shard >= 0 && shard_of_fp fp <> expect_shard)
          then begin
            incr bad_names;
            on_salvage (quarantine t path "entry name is not a fingerprint for this location")
          end
          else
            match read_file path with
            | "" ->
              incr empty_entries;
              on_salvage (quarantine t path "empty entry")
            | _ -> ()
            | exception Sys_error _ ->
              incr unreadable;
              on_salvage (quarantine t path "unreadable entry")
        end)
      (readdir_opt edir)
  in
  scrub_entries legacy_dir;
  let shards_walked = ref 0 in
  for ix = 0 to n_shards - 1 do
    let sdir = shard_dir t ix in
    if Sys.file_exists sdir && Sys.is_directory sdir then begin
      incr shards_walked;
      scrub_entries ~expect_shard:ix sdir
    end
  done;
  (* stray manifest staging files anywhere in the tree *)
  let scrub_tmp d =
    Array.iter
      (fun name ->
        let path = Filename.concat d name in
        if Filename.check_suffix name ".tmp" && not (Sys.is_directory path) then begin
          incr tmp_files;
          on_salvage (quarantine t path "interrupted write")
        end)
      (readdir_opt d)
  in
  scrub_tmp dir;
  (* manifests must parse; a corrupt one is quarantined (not rebuilt:
     campaign accounting is unrecoverable, and --resume degrades
     gracefully when no manifest is present). The entry index is
     accumulated across the global (v1) and shard manifests to compute
     orphans. *)
  let mpath = Filename.concat dir "manifest" in
  let into fp m = index_best t fp m in
  let manifest_state =
    if not (Sys.file_exists mpath) then `Missing
    else begin
      match parse_manifest_file ~into mpath with
      | _ -> `Ok
      | exception Corrupt reason ->
        Hashtbl.reset t.index;
        incr corrupt_manifests;
        on_salvage (quarantine t mpath reason);
        `Quarantined
    end
  in
  let shard_manifests_ok = ref true in
  for ix = 0 to n_shards - 1 do
    let path = shard_manifest_path t ix in
    if Sys.file_exists path then begin
      match parse_manifest_file ~into path with
      | _ -> ()
      | exception Corrupt reason ->
        shard_manifests_ok := false;
        incr corrupt_shard_manifests;
        on_salvage (quarantine t path reason)
    end
  done;
  (* an orphan is a valid entry file no surviving manifest references:
     written after the last save, recovered at metric 0 on next open.
     Only meaningful when the manifests parsed — after a quarantine
     every entry would count, which is noise, not signal. *)
  let index_ok =
    (manifest_state = `Ok || manifest_state = `Missing) && !shard_manifests_ok
  in
  let valid = ref 0 and orphans = ref 0 in
  let count_entries edir =
    Array.iter
      (fun name ->
        if is_entry_file name then begin
          let fp = fp_of_entry_file name in
          if valid_fingerprint fp then begin
            incr valid;
            if index_ok && not (Hashtbl.mem t.index fp) then incr orphans
          end
        end)
      (readdir_opt edir)
  in
  count_entries legacy_dir;
  for ix = 0 to n_shards - 1 do
    count_entries (shard_dir t ix)
  done;
  {
    fsck_entries = !valid;
    fsck_quarantined = List.rev t.salvaged;
    fsck_manifest = manifest_state;
    fsck_orphans = (if index_ok then !orphans else 0);
    fsck_shards = !shards_walked;
    fsck_counts =
      {
        fc_tmp_files = !tmp_files;
        fc_bad_names = !bad_names;
        fc_empty_entries = !empty_entries;
        fc_unreadable = !unreadable;
        fc_corrupt_manifests = !corrupt_manifests;
        fc_corrupt_shard_manifests = !corrupt_shard_manifests;
      };
  }
