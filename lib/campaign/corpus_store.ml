module Bytecodec = Cftcg_util.Bytecodec

type t = {
  dir : string;
  entries_dir : string;
  index : (string, int) Hashtbl.t;  (* fingerprint -> best metric seen *)
}

type manifest = {
  m_seed : int64;
  m_jobs : int;
  m_epoch : int;
  m_executions : int;
  m_probes_total : int;
  m_coverage : Bytes.t;
}

exception Corrupt of string

let magic = "cftcg-corpus 1"

let entry_suffix = ".tc"

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let manifest_path t = Filename.concat t.dir "manifest"

let entry_path t fp = Filename.concat t.entries_dir (fp ^ entry_suffix)

(* All writes go through write-then-rename so a killed campaign never
   leaves a half-written entry or manifest behind; readers either see
   the old version or the new one. *)
let write_atomic ~path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content);
  Unix.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let is_entry_file name = Filename.check_suffix name entry_suffix

let fp_of_entry_file name = Filename.chop_suffix name entry_suffix

let parse_manifest_lines t lines =
  match lines with
  | first :: rest when first = magic ->
    let seed = ref 0L and jobs = ref 1 and epoch = ref 0 in
    let executions = ref 0 and probes_total = ref 0 in
    let coverage = ref Bytes.empty in
    List.iter
      (fun line ->
        match String.index_opt line ' ' with
        | None -> if line <> "" then raise (Corrupt ("bad manifest line: " ^ line))
        | Some i -> (
          let key = String.sub line 0 i in
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          let int_v () =
            match int_of_string_opt v with
            | Some n -> n
            | None -> raise (Corrupt ("bad manifest value: " ^ line))
          in
          match key with
          | "seed" -> (
            match Int64.of_string_opt v with
            | Some s -> seed := s
            | None -> raise (Corrupt ("bad manifest value: " ^ line)))
          | "jobs" -> jobs := int_v ()
          | "epoch" -> epoch := int_v ()
          | "executions" -> executions := int_v ()
          | "probes_total" -> probes_total := int_v ()
          | "coverage" -> (
            try coverage := Bytecodec.bytes_of_hex v with
            | Invalid_argument _ -> raise (Corrupt "bad coverage bitmap"))
          | "entry" -> (
            match String.split_on_char ' ' v with
            | [ fp; metric ] -> (
              match int_of_string_opt metric with
              | Some m -> Hashtbl.replace t.index fp m
              | None -> raise (Corrupt ("bad entry metric: " ^ line)))
            | _ -> raise (Corrupt ("bad entry line: " ^ line)))
          | _ -> raise (Corrupt ("unknown manifest key: " ^ key))))
      rest;
    {
      m_seed = !seed;
      m_jobs = !jobs;
      m_epoch = !epoch;
      m_executions = !executions;
      m_probes_total = !probes_total;
      m_coverage = !coverage;
    }
  | _ -> raise (Corrupt "missing corpus magic line")

let load_manifest t =
  let path = manifest_path t in
  if not (Sys.file_exists path) then None
  else
    let lines =
      String.split_on_char '\n' (read_file path) |> List.filter (fun l -> l <> "")
    in
    Some (parse_manifest_lines t lines)

let open_ dir =
  let entries_dir = Filename.concat dir "entries" in
  mkdir_p entries_dir;
  let t = { dir; entries_dir; index = Hashtbl.create 64 } in
  ignore (load_manifest t);
  (* entries written after the last manifest save (interrupted
     campaign) are recovered with an unknown (0) metric *)
  Array.iter
    (fun name ->
      if is_entry_file name then begin
        let fp = fp_of_entry_file name in
        if not (Hashtbl.mem t.index fp) then Hashtbl.replace t.index fp 0
      end)
    (Sys.readdir entries_dir);
  t

let add t ~fingerprint ~metric data =
  let known = Hashtbl.find_opt t.index fingerprint in
  match known with
  | Some best when best >= metric -> `Kept
  | _ ->
    write_atomic ~path:(entry_path t fingerprint) (Bytes.to_string data);
    Hashtbl.replace t.index fingerprint metric;
    if known = None then `Added else `Replaced

let mem t fingerprint = Hashtbl.mem t.index fingerprint

let size t = Hashtbl.length t.index

let fingerprints t = List.sort compare (Hashtbl.fold (fun fp _ acc -> fp :: acc) t.index [])

let entries t =
  List.filter_map
    (fun fp ->
      let path = entry_path t fp in
      if Sys.file_exists path then Some (Bytes.of_string (read_file path)) else None)
    (fingerprints t)

let save_manifest t m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Printf.bprintf buf "seed %Ld\n" m.m_seed;
  Printf.bprintf buf "jobs %d\n" m.m_jobs;
  Printf.bprintf buf "epoch %d\n" m.m_epoch;
  Printf.bprintf buf "executions %d\n" m.m_executions;
  Printf.bprintf buf "probes_total %d\n" m.m_probes_total;
  Printf.bprintf buf "coverage %s\n" (Bytecodec.hex_of_bytes m.m_coverage);
  List.iter
    (fun fp -> Printf.bprintf buf "entry %s %d\n" fp (Hashtbl.find t.index fp))
    (fingerprints t);
  write_atomic ~path:(manifest_path t) (Buffer.contents buf)

let merge t ~from =
  List.fold_left
    (fun acc dir ->
      let src = open_ dir in
      List.fold_left
        (fun acc fp ->
          let metric = try Hashtbl.find src.index fp with Not_found -> 0 in
          let path = entry_path src fp in
          if Sys.file_exists path then begin
            match add t ~fingerprint:fp ~metric (Bytes.of_string (read_file path)) with
            | `Added | `Replaced -> acc + 1
            | `Kept -> acc
          end
          else acc)
        acc (fingerprints src))
    0 from
