type event =
  | Exec_batch of { worker : int; epoch : int; executions : int; iterations : int; probes_covered : int }
  | New_probe of { worker : int; epoch : int; probes : int; executions : int }
  | Corpus_sync of { epoch : int; candidates : int; kept : int; probes_covered : int }
  | Epoch_end of { epoch : int; executions : int; probes_covered : int; probes_total : int; corpus_size : int }
  | Plateau of { epoch : int; stalled_epochs : int }
  | Solver_phase of { epoch : int; round : int; targets : int; stalled_epochs : int }
  | Solver_done of {
      epoch : int;
      round : int;
      targets : int;
      solved : int;
      executions : int;
      probes_covered : int;
    }
  | Dead_workers of { epoch : int; dead_epochs : int }
  | Failure of { worker : int; epoch : int; message : string }
  | Worker_crash of { worker : int; epoch : int; message : string }
  | Salvage of { message : string }

type sink = {
  emit : event -> unit;
  close : unit -> unit;
}

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

(* Sinks receive events concurrently from worker domains; every
   constructor below serializes its [emit] behind one mutex. [close]
   shares the mutex and runs the underlying close at most once, so
   every constructed sink is close-idempotent. *)
let serialized emit close =
  let m = Mutex.create () in
  let closed = ref false in
  let guard f x =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f x)
  in
  let close_once () =
    if not !closed then begin
      closed := true;
      close ()
    end
  in
  { emit = guard emit; close = (fun () -> guard close_once ()) }

let multi sinks =
  let close () =
    (* close every sink even if one raises; re-raise the first error *)
    let first = ref None in
    List.iter
      (fun s ->
        try s.close () with
        | e -> (
          match !first with
          | None -> first := Some e
          | Some _ -> ()))
      sinks;
    match !first with
    | Some e -> raise e
    | None -> ()
  in
  serialized (fun e -> List.iter (fun s -> s.emit e) sinks) close

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?seq e =
  let fields =
    match e with
    | Exec_batch { worker; epoch; executions; iterations; probes_covered } ->
      [ ("type", `S "exec_batch"); ("worker", `I worker); ("epoch", `I epoch);
        ("executions", `I executions); ("iterations", `I iterations);
        ("probes_covered", `I probes_covered) ]
    | New_probe { worker; epoch; probes; executions } ->
      [ ("type", `S "new_probe"); ("worker", `I worker); ("epoch", `I epoch);
        ("probes", `I probes); ("executions", `I executions) ]
    | Corpus_sync { epoch; candidates; kept; probes_covered } ->
      [ ("type", `S "corpus_sync"); ("epoch", `I epoch); ("candidates", `I candidates);
        ("kept", `I kept); ("probes_covered", `I probes_covered) ]
    | Epoch_end { epoch; executions; probes_covered; probes_total; corpus_size } ->
      [ ("type", `S "epoch_end"); ("epoch", `I epoch); ("executions", `I executions);
        ("probes_covered", `I probes_covered); ("probes_total", `I probes_total);
        ("corpus_size", `I corpus_size) ]
    | Plateau { epoch; stalled_epochs } ->
      [ ("type", `S "plateau"); ("epoch", `I epoch); ("stalled_epochs", `I stalled_epochs) ]
    | Solver_phase { epoch; round; targets; stalled_epochs } ->
      [ ("type", `S "solver_phase"); ("epoch", `I epoch); ("round", `I round);
        ("targets", `I targets); ("stalled_epochs", `I stalled_epochs) ]
    | Solver_done { epoch; round; targets; solved; executions; probes_covered } ->
      [ ("type", `S "solver_done"); ("epoch", `I epoch); ("round", `I round);
        ("targets", `I targets); ("solved", `I solved); ("executions", `I executions);
        ("probes_covered", `I probes_covered) ]
    | Dead_workers { epoch; dead_epochs } ->
      [ ("type", `S "dead_workers"); ("epoch", `I epoch); ("dead_epochs", `I dead_epochs) ]
    | Failure { worker; epoch; message } ->
      [ ("type", `S "failure"); ("worker", `I worker); ("epoch", `I epoch);
        ("message", `S message) ]
    | Worker_crash { worker; epoch; message } ->
      [ ("type", `S "worker_crash"); ("worker", `I worker); ("epoch", `I epoch);
        ("message", `S message) ]
    | Salvage { message } -> [ ("type", `S "salvage"); ("message", `S message) ]
  in
  let fields =
    match seq with
    | Some n -> ("seq", `I n) :: fields
    | None -> fields
  in
  let cell (k, v) =
    Printf.sprintf "%S:%s" k
      (match v with
      | `I n -> string_of_int n
      | `S s -> "\"" ^ json_escape s ^ "\"")
  in
  "{" ^ String.concat "," (List.map cell fields) ^ "}"

let ring ?(capacity = 4096) () =
  let buf = Array.make capacity None in
  let next = ref 0 in
  let emit e =
    buf.(!next mod capacity) <- Some e;
    incr next
  in
  let sink = serialized emit (fun () -> ()) in
  let contents () =
    (* oldest first; a full ring keeps the latest [capacity] events *)
    let n = !next in
    let first = max 0 (n - capacity) in
    List.filter_map (fun i -> buf.(i mod capacity)) (List.init (n - first) (fun k -> first + k))
  in
  (sink, contents)

(* newline count of an existing file — resumes the seq counter when a
   campaign appends to its previous event log *)
let count_lines path =
  match open_in_bin path with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = ref 0 in
        (try
           while true do
             ignore (input_line ic);
             incr n
           done
         with End_of_file -> ());
        !n)

let jsonl ?(append = false) ?max_bytes path =
  (match max_bytes with
  | Some m when m < 1 -> invalid_arg "Telemetry.jsonl: max_bytes must be >= 1"
  | _ -> ());
  let rotated n = path ^ "." ^ string_of_int n in
  (* a fresh (non-append) feed owns the whole chain: drop rotations
     left behind by a previous run so old events cannot resurface *)
  if (not append) && max_bytes <> None then begin
    let n = ref 1 in
    while Sys.file_exists (rotated !n) do
      (try Sys.remove (rotated !n) with Sys_error _ -> ());
      incr n
    done
  end;
  (* resume the seq counter across the whole chain so it stays
     monotonic even after rotations *)
  let seq =
    ref
      (if append then begin
         let total = ref (count_lines path) in
         let n = ref 1 in
         while Sys.file_exists (rotated !n) do
           total := !total + count_lines (rotated !n);
           incr n
         done;
         !total
       end
       else 0)
  in
  let open_current () =
    if append then open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
    else open_out path
  in
  let oc = ref (open_current ()) in
  let bytes =
    ref
      (if append then (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0)
       else 0)
  in
  (* close durably: a campaign result is only as trustworthy as its
     telemetry trail, so the feed must survive a power cut that
     happens right after the process exits *)
  let close_current () =
    flush !oc;
    (try Unix.fsync (Unix.descr_of_out_channel !oc) with Unix.Unix_error _ -> ());
    close_out !oc
  in
  (* shift path.N -> path.N+1 (highest first), then path -> path.1 and
     reopen; the durable close keeps rotated segments as trustworthy
     as a final one *)
  let rotate () =
    close_current ();
    let last = ref 0 in
    while Sys.file_exists (rotated (!last + 1)) do
      incr last
    done;
    for i = !last downto 1 do
      Sys.rename (rotated i) (rotated (i + 1))
    done;
    Sys.rename path (rotated 1);
    oc := open_out path;
    bytes := 0
  in
  let emit e =
    let line = to_json ~seq:!seq e in
    output_string !oc line;
    output_char !oc '\n';
    incr seq;
    bytes := !bytes + String.length line + 1;
    match max_bytes with
    | Some m when !bytes >= m -> rotate ()
    | _ -> ()
  in
  serialized emit close_current

let metrics_bridge ?registry () =
  let module M = Cftcg_obs.Metrics in
  let g name help = M.gauge ?registry ~help name in
  let c name help = M.counter ?registry ~help name in
  let execs = g "cftcg_campaign_executions" "Cumulative executions across all workers" in
  let covered = g "cftcg_campaign_probes_covered" "Probes covered by the merged global corpus" in
  let corpus = g "cftcg_campaign_corpus_size" "Global corpus size after fingerprint dedup" in
  let epochs = c "cftcg_campaign_epochs_total" "Completed campaign epochs" in
  let new_probes = c "cftcg_campaign_new_probe_events_total" "Worker inputs that lit new probes" in
  let syncs = c "cftcg_campaign_corpus_syncs_total" "Coordinator corpus merges" in
  let failures = c "cftcg_campaign_failures_total" "Assertion failures observed" in
  let plateaus = c "cftcg_campaign_plateaus_total" "Early stops due to a coverage plateau" in
  let crashes = c "cftcg_campaign_worker_crashes_total" "Worker domains that raised and were salvaged" in
  let salvages = c "cftcg_campaign_salvage_events_total" "Corpus-store recovery actions" in
  let solver_phases = c "cftcg_campaign_solver_phases_total" "Hybrid solver phases started" in
  let solver_solved =
    c "cftcg_campaign_solver_solved_total" "Probes the hybrid solver phases closed"
  in
  let solver_execs =
    c "cftcg_campaign_solver_executions_total" "Executions spent inside hybrid solver phases"
  in
  let dead_stops =
    c "cftcg_campaign_dead_worker_stops_total" "Campaigns stopped after consecutive dead epochs"
  in
  let emit = function
    | Epoch_end { executions; probes_covered; corpus_size; _ } ->
      M.inc epochs;
      M.set execs (float_of_int executions);
      M.set covered (float_of_int probes_covered);
      M.set corpus (float_of_int corpus_size)
    | New_probe _ -> M.inc new_probes
    | Corpus_sync _ -> M.inc syncs
    | Failure _ -> M.inc failures
    | Plateau _ -> M.inc plateaus
    | Solver_phase _ -> M.inc solver_phases
    | Solver_done { solved; executions; _ } ->
      M.add solver_solved solved;
      M.add solver_execs executions
    | Dead_workers _ -> M.inc dead_stops
    | Worker_crash _ -> M.inc crashes
    | Salvage _ -> M.inc salvages
    | Exec_batch _ -> ()
  in
  serialized emit (fun () -> ())

let series_bridge series =
  let start = Unix.gettimeofday () in
  let emit = function
    | Epoch_end { executions; probes_covered; _ } ->
      Cftcg_obs.Series.record series
        ~time:(Unix.gettimeofday () -. start)
        ~execs:executions ~covered:probes_covered
    | _ -> ()
  in
  serialized emit (fun () -> ())

let progress oc =
  let line = ref false in
  let print s =
    Printf.fprintf oc "\r%-78s%!" s;
    line := true
  in
  let emit = function
    | Exec_batch { worker; executions; probes_covered; _ } ->
      print (Printf.sprintf "  worker %d: %d execs, %d probes covered" worker executions probes_covered)
    | Epoch_end { epoch; executions; probes_covered; probes_total; corpus_size } ->
      print
        (Printf.sprintf "  epoch %d: %d execs, %d/%d probes, corpus %d" epoch executions
           probes_covered probes_total corpus_size);
      Printf.fprintf oc "\n%!";
      line := false
    | Plateau { epoch; stalled_epochs } ->
      Printf.fprintf oc "\r%-78s\n%!"
        (Printf.sprintf "  plateau: no new coverage for %d epochs (stopping at epoch %d)"
           stalled_epochs epoch)
    | Solver_phase { epoch; round; targets; stalled_epochs } ->
      Printf.fprintf oc "\r%-78s\n%!"
        (Printf.sprintf
           "  solver phase %d: %d uncovered targets (plateau after %d epochs, at epoch %d)"
           round targets stalled_epochs epoch)
    | Solver_done { round; targets; solved; executions; probes_covered; _ } ->
      Printf.fprintf oc "\r%-78s\n%!"
        (Printf.sprintf "  solver phase %d done: closed %d/%d targets in %d execs (%d covered)"
           round solved targets executions probes_covered)
    | Dead_workers { epoch; dead_epochs } ->
      Printf.fprintf oc "\r%-78s\n%!"
        (Printf.sprintf "  DEAD WORKERS: %d epochs without a surviving worker (stopping at epoch %d)"
           dead_epochs epoch)
    | Failure { worker; message; _ } ->
      Printf.fprintf oc "\r%-78s\n%!" (Printf.sprintf "  FAILURE (worker %d): %s" worker message)
    | Worker_crash { worker; message; _ } ->
      Printf.fprintf oc "\r%-78s\n%!"
        (Printf.sprintf "  WORKER CRASH (worker %d): %s" worker message)
    | Salvage { message } -> Printf.fprintf oc "\r%-78s\n%!" ("  salvage: " ^ message)
    | New_probe _ | Corpus_sync _ -> ()
  in
  serialized emit (fun () -> if !line then Printf.fprintf oc "\n%!")
