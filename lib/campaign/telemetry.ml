type event =
  | Exec_batch of { worker : int; epoch : int; executions : int; iterations : int; probes_covered : int }
  | New_probe of { worker : int; epoch : int; probes : int; executions : int }
  | Corpus_sync of { epoch : int; candidates : int; kept : int; probes_covered : int }
  | Epoch_end of { epoch : int; executions : int; probes_covered : int; probes_total : int; corpus_size : int }
  | Plateau of { epoch : int; stalled_epochs : int }
  | Failure of { worker : int; epoch : int; message : string }

type sink = {
  emit : event -> unit;
  close : unit -> unit;
}

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

(* Sinks receive events concurrently from worker domains; every
   constructor below serializes its [emit] behind one mutex. *)
let serialized emit close =
  let m = Mutex.create () in
  let guard f x =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f x)
  in
  { emit = guard emit; close = (fun () -> guard close ()) }

let multi sinks =
  {
    emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?seq e =
  let fields =
    match e with
    | Exec_batch { worker; epoch; executions; iterations; probes_covered } ->
      [ ("type", `S "exec_batch"); ("worker", `I worker); ("epoch", `I epoch);
        ("executions", `I executions); ("iterations", `I iterations);
        ("probes_covered", `I probes_covered) ]
    | New_probe { worker; epoch; probes; executions } ->
      [ ("type", `S "new_probe"); ("worker", `I worker); ("epoch", `I epoch);
        ("probes", `I probes); ("executions", `I executions) ]
    | Corpus_sync { epoch; candidates; kept; probes_covered } ->
      [ ("type", `S "corpus_sync"); ("epoch", `I epoch); ("candidates", `I candidates);
        ("kept", `I kept); ("probes_covered", `I probes_covered) ]
    | Epoch_end { epoch; executions; probes_covered; probes_total; corpus_size } ->
      [ ("type", `S "epoch_end"); ("epoch", `I epoch); ("executions", `I executions);
        ("probes_covered", `I probes_covered); ("probes_total", `I probes_total);
        ("corpus_size", `I corpus_size) ]
    | Plateau { epoch; stalled_epochs } ->
      [ ("type", `S "plateau"); ("epoch", `I epoch); ("stalled_epochs", `I stalled_epochs) ]
    | Failure { worker; epoch; message } ->
      [ ("type", `S "failure"); ("worker", `I worker); ("epoch", `I epoch);
        ("message", `S message) ]
  in
  let fields =
    match seq with
    | Some n -> ("seq", `I n) :: fields
    | None -> fields
  in
  let cell (k, v) =
    Printf.sprintf "%S:%s" k
      (match v with
      | `I n -> string_of_int n
      | `S s -> "\"" ^ json_escape s ^ "\"")
  in
  "{" ^ String.concat "," (List.map cell fields) ^ "}"

let ring ?(capacity = 4096) () =
  let buf = Array.make capacity None in
  let next = ref 0 in
  let emit e =
    buf.(!next mod capacity) <- Some e;
    incr next
  in
  let sink = serialized emit (fun () -> ()) in
  let contents () =
    (* oldest first; a full ring keeps the latest [capacity] events *)
    let n = !next in
    let first = max 0 (n - capacity) in
    List.filter_map (fun i -> buf.(i mod capacity)) (List.init (n - first) (fun k -> first + k))
  in
  (sink, contents)

let jsonl path =
  let oc = open_out path in
  let seq = ref 0 in
  let emit e =
    output_string oc (to_json ~seq:!seq e);
    output_char oc '\n';
    incr seq
  in
  serialized emit (fun () -> close_out oc)

let progress oc =
  let line = ref false in
  let print s =
    Printf.fprintf oc "\r%-78s%!" s;
    line := true
  in
  let emit = function
    | Exec_batch { worker; executions; probes_covered; _ } ->
      print (Printf.sprintf "  worker %d: %d execs, %d probes covered" worker executions probes_covered)
    | Epoch_end { epoch; executions; probes_covered; probes_total; corpus_size } ->
      print
        (Printf.sprintf "  epoch %d: %d execs, %d/%d probes, corpus %d" epoch executions
           probes_covered probes_total corpus_size);
      Printf.fprintf oc "\n%!";
      line := false
    | Plateau { epoch; stalled_epochs } ->
      Printf.fprintf oc "\r%-78s\n%!"
        (Printf.sprintf "  plateau: no new coverage for %d epochs (stopping at epoch %d)"
           stalled_epochs epoch)
    | Failure { worker; message; _ } ->
      Printf.fprintf oc "\r%-78s\n%!" (Printf.sprintf "  FAILURE (worker %d): %s" worker message)
    | New_probe _ | Corpus_sync _ -> ()
  in
  serialized emit (fun () -> if !line then Printf.fprintf oc "\n%!")
