(** Structured event stream of a parallel fuzzing campaign.

    Worker domains and the coordinator describe what they are doing as
    typed events; pluggable sinks decide what to do with them — keep
    them in memory for tests ({!ring}), append them as JSON lines for
    offline analysis ({!jsonl}), or render a live progress line for
    the CLI ({!progress}). Every sink constructor returns a
    thread-safe sink: [emit] may be called concurrently from several
    domains. *)

type event =
  | Exec_batch of {
      worker : int;
      epoch : int;
      executions : int;  (** executions so far in this worker's epoch run *)
      iterations : int;
      probes_covered : int;  (** worker-local view *)
    }  (** periodic heartbeat from a worker (every [progress_every] executions) *)
  | New_probe of {
      worker : int;
      epoch : int;
      probes : int;  (** previously-unseen cells this input lit (worker-local) *)
      executions : int;  (** worker execution index when found *)
    }  (** a worker found an input with new coverage *)
  | Corpus_sync of {
      epoch : int;
      candidates : int;  (** inputs offered by workers this epoch *)
      kept : int;  (** global corpus size after fingerprint dedup *)
      probes_covered : int;  (** global, after the merge *)
    }  (** the coordinator merged worker corpora (LibFuzzer's fork-mode merge) *)
  | Epoch_end of {
      epoch : int;
      executions : int;  (** cumulative, campaign-global *)
      probes_covered : int;
      probes_total : int;
      corpus_size : int;
    }
  | Plateau of { epoch : int; stalled_epochs : int }
      (** coverage has not grown for [stalled_epochs] epochs; the
          campaign stops early (hybrid campaigns only emit this once
          the solver phases are exhausted too) *)
  | Solver_phase of { epoch : int; round : int; targets : int; stalled_epochs : int }
      (** a hybrid campaign hit the plateau and handed its [targets]
          still-uncovered probes to the bounded solver ([round] counts
          solver phases from 0) *)
  | Solver_done of {
      epoch : int;
      round : int;
      targets : int;
      solved : int;  (** probes the phase newly covered (campaign replay) *)
      executions : int;  (** executions charged by the phase *)
      probes_covered : int;  (** global, after absorbing solved inputs *)
    }  (** the solver phase finished; the campaign resumes fuzzing iff [solved > 0] *)
  | Dead_workers of { epoch : int; dead_epochs : int }
      (** [dead_epochs] consecutive epochs ended with every worker
          crashed; the campaign stops rather than spin on a budget it
          can never spend *)
  | Failure of { worker : int; epoch : int; message : string }
      (** an Assertion block was violated *)
  | Worker_crash of { worker : int; epoch : int; message : string }
      (** a worker domain raised; the coordinator salvaged the
          surviving workers' results and applied the campaign's
          crash policy *)
  | Salvage of { message : string }
      (** a corpus-store recovery action: a quarantined corrupt file,
          a rebuilt index, or persistence skipped after exhausted
          retries *)

type sink = {
  emit : event -> unit;
  close : unit -> unit;
      (** flush and release resources; every constructor in this
          module returns an idempotent [close] — calling it again is a
          no-op *)
}

val null : sink
(** Discards everything. *)

val multi : sink list -> sink
(** Fans each event out to every sink, in order. [close] closes every
    sink even if one of them raises (the first exception is re-raised
    after the rest have been closed), and is idempotent like every
    other constructor here. *)

val ring : ?capacity:int -> unit -> sink * (unit -> event list)
(** In-memory ring buffer (default capacity 4096) plus a reader
    returning the retained events oldest-first. When more than
    [capacity] events arrive, the oldest are overwritten. *)

val jsonl : ?append:bool -> ?max_bytes:int -> string -> sink
(** Writes one JSON object per event to [path], with a monotonically
    increasing ["seq"] field recording global emission order. A fresh
    run truncates any existing file (the default); with
    [~append:true] — used when resuming a persisted campaign — new
    events are appended and the [seq] counter continues from the
    number of lines already present. [close] flushes, fsyncs and
    closes the file.

    [?max_bytes] bounds a long-lived feed (daemon job event logs):
    once the current file reaches the limit it is rotated — existing
    [path.N] segments shift to [path.N+1] (highest first), the
    current file becomes [path.1], and writing resumes in a fresh
    [path] — so [path.1] is always the most recent rotated segment.
    Rotation happens after the event that crossed the limit, so a
    segment may exceed [max_bytes] by one line. Segments are closed
    with the same fsync-on-close discipline, the ["seq"] counter runs
    across the whole chain, and [~append:true] resumes it from the
    total line count of [path] plus every [path.N]. A fresh
    (non-append) feed removes any leftover [path.N] chain first.
    Raises [Invalid_argument] when [max_bytes < 1]. *)

val metrics_bridge : ?registry:Cftcg_obs.Metrics.t -> unit -> sink
(** Mirrors the event stream into metrics ([registry] defaults to
    {!Cftcg_obs.Metrics.default}): campaign-level gauges
    (executions / probes covered / corpus size, updated at each
    [Epoch_end]) and counters (epochs, new-probe events, corpus
    syncs, failures, plateaus, hybrid solver phases / probes solved /
    solver executions, dead-worker stops). Updates the instruments
    regardless of
    {!Cftcg_obs.Metrics.collecting} — attaching the sink is the
    opt-in. *)

val series_bridge : Cftcg_obs.Series.t -> sink
(** Records a coverage-over-time point (Figure 7) at every
    [Epoch_end], with wall-clock time measured from the sink's
    creation. Epoch granularity — for per-discovery resolution use
    single-run [Fuzzer.run ?coverage_series]. *)

val progress : out_channel -> sink
(** Live one-line progress display for interactive use: heartbeats
    overwrite the line, epoch ends and failures commit it. *)

val to_json : ?seq:int -> event -> string
(** The JSONL encoding of one event (exposed for tests). *)
