open Cftcg_ir
module Fuzzer = Cftcg_fuzz.Fuzzer
module Layout = Cftcg_fuzz.Layout
module Rng = Cftcg_util.Rng
module Fault = Cftcg_util.Fault
module Bytecodec = Cftcg_util.Bytecodec
module Trace = Cftcg_obs.Trace
module Log = Cftcg_obs.Log
module Flight = Cftcg_obs.Flight

type crash_policy =
  | Abort
  | Degrade

exception Worker_crashed of { worker : int; epoch : int; message : string }

module Symexec = Cftcg_symexec.Symexec

(* Hybrid concolic phase (ROADMAP item 2; the BMC+CGF alternation of
   arXiv 2211.04712): at a coverage plateau the campaign hands the
   still-uncovered probes to the bounded AVM solver instead of
   stopping, and resumes fuzzing from whatever the solver closed. *)
type hybrid = {
  solver_execs : int;  (** solver exec budget per phase (a virtual clock, never wall time) *)
  solver_rounds : int;  (** maximum solver phases per campaign *)
  solver : Symexec.config;  (** bounds/moves; [seed] is re-derived per phase *)
}

let default_hybrid =
  { solver_execs = 10_000; solver_rounds = 4; solver = Symexec.default_config }

type stop_reason =
  | Full_coverage
  | Plateau
  | Dead_workers
  | Budget
  | Epoch_cap
  | Deadline

let stop_reason_string = function
  | Full_coverage -> "full_coverage"
  | Plateau -> "plateau"
  | Dead_workers -> "dead_workers"
  | Budget -> "budget"
  | Epoch_cap -> "epoch_cap"
  | Deadline -> "deadline"

type config = {
  jobs : int;
  seed : int64;
  total_execs : int;
  execs_per_epoch : int;
  plateau_epochs : int;
  max_epochs : int;
  seed_cap : int;
  stop_on_full : bool;
  fuzzer : Fuzzer.config;
  corpus_dir : string option;
  store : Corpus_store.t option;
  resume : bool;
  sink : Telemetry.sink;
  on_worker_crash : crash_policy;
  max_runtime : float option;
  epoch_deadline : float option;
  job : string option;
  hybrid : hybrid option;
}

let default_config =
  {
    jobs = 4;
    seed = 1L;
    total_execs = 20_000;
    execs_per_epoch = 1_000;
    plateau_epochs = 3;
    max_epochs = 0;
    seed_cap = 64;
    stop_on_full = true;
    fuzzer = Fuzzer.default_config;
    corpus_dir = None;
    store = None;
    resume = false;
    sink = Telemetry.null;
    on_worker_crash = Degrade;
    max_runtime = None;
    epoch_deadline = None;
    job = None;
    hybrid = None;
  }

(* Correlation fields shared by every log line / dump of a campaign.
   The job id is minted at the serve boundary (or by the CLI for
   local runs); a plain library call just has no job field. *)
let job_fields config =
  match config.job with Some j -> [ ("job", j) ] | None -> []

type epoch_stat = {
  ep_epoch : int;
  ep_executions : int;
  ep_probes_covered : int;
  ep_corpus_size : int;
}

type result = {
  suite : Bytes.t list;
  failures : Fuzzer.failure list;
  probes_covered : int;
  probes_total : int;
  executions : int;
  epochs : epoch_stat list;
  resumed : bool;
  plateaued : bool;
  worker_crashes : int;
  solver_rounds : int;
  solver_solved : int;
  solver_executions : int;
  stop_reason : stop_reason option;
}

(* Per-(epoch, worker) seed: one splitmix64 step over a slot derived
   from the master seed — deterministic, independent of scheduling,
   and stable across resume (slots are absolute epoch numbers). *)
let derive_seed base ~epoch ~worker =
  let master = Rng.create base in
  let slot = Int64.logxor (Rng.next64 master) (Int64.of_int (((epoch + 1) * 65599) + worker)) in
  Rng.next64 (Rng.create slot)

(* Per-(epoch, round) solver seed: the same splitmix derivation as
   worker seeds, over a tagged master so the solver stream is disjoint
   from every worker stream. Pure function of the campaign seed — a
   solver phase is as deterministic as the epochs around it. *)
let solver_seed base ~epoch ~round =
  derive_seed (Int64.logxor base 0x5EEDC0DEL) ~epoch ~worker:round

(* Process-global hybrid-phase health counters, snapshotted into
   post-mortem dumps alongside the batched-VM and corpus-store
   providers. *)
let solver_phases_total = Atomic.make 0
let solver_solved_total = Atomic.make 0
let solver_execs_total = Atomic.make 0

let () =
  Flight.register_provider "campaign_solver" (fun () ->
      Printf.sprintf "{\"phases\":%d,\"targets_closed\":%d,\"solver_executions\":%d}"
        (Atomic.get solver_phases_total)
        (Atomic.get solver_solved_total)
        (Atomic.get solver_execs_total))

(* Coordinator-side Algorithm-1 replay of one input: its probe-set
   bitmap (the dedup fingerprint) and its Iteration Difference
   Coverage metric (the tie-break between representatives). Runs on
   the same backend the workers use; the VM path works off dirty
   lists instead of scanning every probe cell per step. *)
let make_replayer (prog : Ir.program) ~backend ~max_tuples =
  let layout = Layout.of_program prog in
  let n_probes = max prog.Ir.n_probes 1 in
  match (backend : Fuzzer.backend) with
  | Fuzzer.Vm ->
    let vm = Ir_vm.compile prog in
    let pa = Ir_vm.probes vm in
    let pb = Ir_vm.fresh_probes vm in
    fun data ->
      let bitmap = Bytes.make n_probes '\000' in
      Ir_vm.set_probes vm pa;
      Ir_vm.reset vm;
      Ir_vm.clear_probes pa;
      let curr = ref pa in
      let last = ref pb in
      let n = min (Layout.n_tuples layout data) max_tuples in
      let metric = ref 0 in
      for tuple = 0 to n - 1 do
        let c = !curr in
        let l = !last in
        Ir_vm.set_probes vm c;
        Layout.load_tuple_vm layout data ~tuple vm;
        Ir_vm.step vm;
        for k = 0 to c.Ir_vm.p_n - 1 do
          let id = Array.unsafe_get c.Ir_vm.p_dirty k in
          Bytes.unsafe_set bitmap id '\001';
          if Bytes.unsafe_get l.Ir_vm.p_fired id = '\000' then incr metric
        done;
        for k = 0 to l.Ir_vm.p_n - 1 do
          if Bytes.unsafe_get c.Ir_vm.p_fired (Array.unsafe_get l.Ir_vm.p_dirty k) = '\000' then
            incr metric
        done;
        Ir_vm.clear_probes l;
        curr := l;
        last := c
      done;
      Ir_vm.clear_probes !last;
      (bitmap, !metric)
  | Fuzzer.Closures ->
    let curr = Bytes.make n_probes '\000' in
    let last = Bytes.make n_probes '\000' in
    let hooks = Hooks.probes_only (fun id -> Bytes.unsafe_set curr id '\001') in
    let compiled = Ir_compile.compile ~hooks prog in
    fun data ->
      let bitmap = Bytes.make n_probes '\000' in
      Bytes.fill last 0 n_probes '\000';
      Ir_compile.reset compiled;
      let n = min (Layout.n_tuples layout data) max_tuples in
      let metric = ref 0 in
      for tuple = 0 to n - 1 do
        Bytes.fill curr 0 n_probes '\000';
        Layout.load_tuple layout data ~tuple compiled;
        Ir_compile.step compiled;
        for i = 0 to n_probes - 1 do
          let c = Bytes.unsafe_get curr i in
          if c <> '\000' then Bytes.unsafe_set bitmap i '\001';
          if c <> Bytes.unsafe_get last i then incr metric
        done;
        Bytes.blit curr 0 last 0 n_probes
      done;
      (bitmap, !metric)

let count_covered bitmap =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) bitmap;
  !n

let fingerprint bitmap = Bytecodec.hex_of_int64 (Bytecodec.fnv64 bitmap)

(* ------------------------------------------------------------------ *)
(* Stepwise campaign state: [start] builds it, [step] runs one epoch,
   [finished] is the loop condition, [finish] extracts the result.
   [run] composes them; a scheduler ([cftcg serve]) interleaves many
   states over one shared Worker_pool instead. *)

type state = {
  st_config : config;
  st_prog : Ir.program;
  st_n_probes : int;
  st_replay : Bytes.t -> Bytes.t * int;
  st_emit : Telemetry.event -> unit;
  st_store : Corpus_store.t option;
  st_coverage : Bytes.t;
  st_corpus : (string, int * Bytes.t) Hashtbl.t;
  st_seen_failures : (string, unit) Hashtbl.t;
  mutable st_executions : int;
  mutable st_epoch0 : int;
  mutable st_epoch : int;
  mutable st_resumed : bool;
  mutable st_plateaued : bool;
  mutable st_failures : Fuzzer.failure list;
  mutable st_epoch_stats : epoch_stat list;
  mutable st_stalled : int;
  mutable st_last_covered : int;
  mutable st_stop : bool;
  mutable st_stop_reason : stop_reason option;
  mutable st_worker_crashes : int;
  mutable st_live_jobs : int;
  mutable st_dead_epochs : int;
  mutable st_solver_rounds : int;
  mutable st_solver_solved : int;
  mutable st_solver_execs : int;
  st_deadline : float;  (* wall clock; infinity when max_runtime unset *)
}

(* Records why the campaign is stopping; the first reason wins. *)
let stop_with st reason =
  st.st_stop <- true;
  if st.st_stop_reason = None then st.st_stop_reason <- Some reason

let fully_covered st =
  st.st_prog.Ir.n_probes > 0 && count_covered st.st_coverage >= st.st_prog.Ir.n_probes

let absorb st data =
  let bitmap, metric = st.st_replay data in
  if Bytes.exists (fun c -> c <> '\000') bitmap then begin
    for i = 0 to st.st_n_probes - 1 do
      if Bytes.unsafe_get bitmap i <> '\000' then Bytes.unsafe_set st.st_coverage i '\001'
    done;
    let fp = fingerprint bitmap in
    match Hashtbl.find_opt st.st_corpus fp with
    | Some (best, _) when best >= metric -> ()
    | _ -> Hashtbl.replace st.st_corpus fp (metric, data)
  end

let start ?(config = default_config) (prog : Ir.program) =
  Trace.with_span "campaign.start" @@ fun () ->
  if config.jobs < 1 then invalid_arg "Campaign.start: jobs must be >= 1";
  if (Layout.of_program prog).Layout.tuple_len = 0 then
    invalid_arg "Campaign.start: model has no inports";
  let n_probes = max prog.Ir.n_probes 1 in
  let replay =
    make_replayer prog ~backend:config.fuzzer.Fuzzer.backend
      ~max_tuples:config.fuzzer.Fuzzer.max_tuples
  in
  let emit = config.sink.Telemetry.emit in
  let store =
    match config.store with
    | Some _ as s -> s
    | None ->
      Option.map
        (Corpus_store.open_ ~on_salvage:(fun message -> emit (Telemetry.Salvage { message })))
        config.corpus_dir
  in
  let st =
    {
      st_config = config;
      st_prog = prog;
      st_n_probes = n_probes;
      st_replay = replay;
      st_emit = emit;
      st_store = store;
      st_coverage = Bytes.make n_probes '\000';
      st_corpus = Hashtbl.create 64;
      st_seen_failures = Hashtbl.create 4;
      st_executions = 0;
      st_epoch0 = 0;
      st_epoch = 0;
      st_resumed = false;
      st_plateaued = false;
      st_failures = [];
      st_epoch_stats = [];
      st_stalled = 0;
      st_last_covered = 0;
      st_stop = false;
      st_stop_reason = None;
      st_worker_crashes = 0;
      st_live_jobs = config.jobs;
      st_dead_epochs = 0;
      st_solver_rounds = 0;
      st_solver_solved = 0;
      st_solver_execs = 0;
      st_deadline =
        (match config.max_runtime with
        | None -> Float.infinity
        | Some s -> Unix.gettimeofday () +. s);
    }
  in
  (* resume accounting from the manifest; corpus entries on disk are
     always absorbed as seeds, manifest or not (LibFuzzer semantics:
     whatever is in the corpus directory seeds the run) *)
  (match store with
  | Some s ->
    (match Corpus_store.load_manifest s with
    | Some m when config.resume ->
      if m.Corpus_store.m_probes_total <> prog.Ir.n_probes then
        invalid_arg "Campaign.start: corpus was recorded for a different program";
      st.st_resumed <- true;
      st.st_epoch0 <- m.Corpus_store.m_epoch;
      st.st_executions <- m.Corpus_store.m_executions;
      if Bytes.length m.Corpus_store.m_coverage = n_probes then
        for i = 0 to n_probes - 1 do
          if Bytes.unsafe_get m.Corpus_store.m_coverage i <> '\000' then
            Bytes.unsafe_set st.st_coverage i '\001'
        done
    | Some _ | None -> ());
    List.iter (absorb st) (Corpus_store.entries s)
  | None -> ());
  List.iter (absorb st) config.fuzzer.Fuzzer.seeds;
  st.st_epoch <- st.st_epoch0;
  st.st_last_covered <- count_covered st.st_coverage;
  if config.stop_on_full && fully_covered st then stop_with st Full_coverage;
  Log.info ~fields:(job_fields config)
    "campaign start: %d jobs, %d exec budget, seed %Ld%s" config.jobs
    config.total_execs config.seed
    (if st.st_resumed then Printf.sprintf " (resumed at epoch %d)" st.st_epoch0 else "");
  st

let past_deadline st = Float.is_finite st.st_deadline && Unix.gettimeofday () >= st.st_deadline

let finished st =
  let c = st.st_config in
  st.st_stop
  || st.st_executions >= c.total_execs
  || (c.max_epochs > 0 && st.st_epoch - st.st_epoch0 >= c.max_epochs)
  || past_deadline st

(* One hybrid solver phase: collect the still-uncovered probes from
   the merged coverage map, run the bounded AVM solver against them
   under a deterministic exec budget, and absorb whatever it closed
   into the corpus — fingerprint-deduped exactly like an epoch merge,
   so the solved inputs reach every worker as seeds at the next
   epoch's redistribution. Returns how many probes the phase newly
   covered (by the campaign's own replay).

   Determinism: the phase runs on the coordinator (never in a worker
   domain), its seed is a pure function of (campaign seed, epoch,
   round), its budget is the execution counter (the solver never
   reads the wall clock under [Exec_budget]), and the budget clip
   against the remaining global allowance is exact integer
   accounting — so a hybrid campaign keeps the same byte-identical
   same-seed transcript discipline as its fuzzing epochs, at any
   worker count and with observability on or off. Solver executions
   land in [st_executions], so [step]'s return charges them against
   the submitting tenant's DRR budget like any fuzzing exec. *)
let solver_phase ?pool st (hy : hybrid) ~epoch =
  let config = st.st_config in
  let emit = st.st_emit in
  let round = st.st_solver_rounds in
  st.st_solver_rounds <- round + 1;
  let covered_before = count_covered st.st_coverage in
  let targets = st.st_prog.Ir.n_probes - covered_before in
  let budget = min hy.solver_execs (max 0 (config.total_execs - st.st_executions)) in
  emit (Telemetry.Solver_phase { epoch; round; targets; stalled_epochs = st.st_stalled });
  Log.info "solver phase %d: %d uncovered targets after %d stalled epochs, %d exec budget"
    round targets st.st_stalled budget;
  let sym = { hy.solver with Symexec.seed = solver_seed config.seed ~epoch ~round } in
  let solve () =
    Trace.with_span "campaign.solver"
      ~args:[ ("epoch", string_of_int epoch); ("round", string_of_int round) ]
    @@ fun () ->
    Symexec.run ~config:sym ~initial_coverage:st.st_coverage st.st_prog
      (Symexec.Exec_budget budget)
  in
  (* borrow one pool slot so a scheduler's concurrency cap covers the
     solver's CPU like it covers a worker's *)
  let r =
    match pool with
    | None -> solve ()
    | Some p -> Worker_pool.with_slots p (min 1 (Worker_pool.capacity p)) solve
  in
  st.st_executions <- st.st_executions + r.Symexec.executions;
  st.st_solver_execs <- st.st_solver_execs + r.Symexec.executions;
  List.iter (fun (tc : Symexec.test_case) -> absorb st tc.Symexec.data) r.Symexec.suite;
  let covered = count_covered st.st_coverage in
  let closed = covered - covered_before in
  st.st_solver_solved <- st.st_solver_solved + closed;
  Atomic.incr solver_phases_total;
  ignore (Atomic.fetch_and_add solver_solved_total closed);
  ignore (Atomic.fetch_and_add solver_execs_total r.Symexec.executions);
  emit
    (Telemetry.Solver_done
       { epoch; round; targets; solved = closed; executions = r.Symexec.executions;
         probes_covered = covered });
  Log.info "solver phase %d done: closed %d/%d targets in %d execs" round closed targets
    r.Symexec.executions;
  (* restart stall detection from the post-solve coverage level: the
     next plateau is measured against what the solver left behind *)
  st.st_stalled <- 0;
  st.st_last_covered <- covered;
  closed

(* One epoch: distribute budgets, run the workers (through the shared
   pool when given one), merge and persist. Returns the executions the
   epoch actually performed, so a scheduler can charge them against
   the submitting tenant's budget. *)
let step ?workers ?max_execs ?(should_stop = fun () -> false) ?pool st =
  let config = st.st_config in
  let emit = st.st_emit in
  let this_epoch = st.st_epoch in
  (* outside the campaign.epoch trace span so the span records with
     the job/epoch correlation context installed *)
  Log.with_ctx (job_fields config @ [ ("epoch", string_of_int this_epoch) ])
  @@ fun () ->
  let jobs_now =
    match workers with
    | None -> st.st_live_jobs
    | Some w -> max 1 (min w st.st_live_jobs)
  in
  let execs_before = st.st_executions in
  (* redistribute the best corpus entries as the shared seed corpus:
     metric-descending, fingerprint tie-break, capped *)
  let seeds =
    Hashtbl.fold (fun fp (metric, data) acc -> (metric, fp, data) :: acc) st.st_corpus []
    |> List.sort (fun (m1, f1, _) (m2, f2, _) -> compare (-m1, f1) (-m2, f2))
    |> List.filteri (fun i _ -> i < config.seed_cap)
    |> List.map (fun (_, _, data) -> data)
  in
  (* exact global budget accounting: this epoch's executions are
     divided across workers ahead of time. [max_execs] (a scheduler
     grant) clips the epoch the same way the end of the global budget
     does, so a granted epoch is a prefix-identical campaign. *)
  let remaining = config.total_execs - st.st_executions in
  let remaining =
    match max_execs with
    | None -> remaining
    | Some g -> min remaining (max 0 g)
  in
  let epoch_total = min remaining (config.execs_per_epoch * jobs_now) in
  let budget_of ix =
    (epoch_total / jobs_now) + (if ix < epoch_total mod jobs_now then 1 else 0)
  in
  (* per-epoch wall deadline: the per-epoch cap (if any) clipped to
     what is left of the campaign's --max-runtime. When neither is
     set workers run plain Exec_budgets and never read the wall
     clock, keeping same-seed campaigns byte-identical. *)
  let epoch_deadline_s =
    let campaign_left =
      if Float.is_finite st.st_deadline then
        Some (Float.max (st.st_deadline -. Unix.gettimeofday ()) 0.01)
      else None
    in
    match (config.epoch_deadline, campaign_left) with
    | None, None -> None
    | Some d, None -> Some d
    | None, Some l -> Some l
    | Some d, Some l -> Some (Float.min d l)
  in
  let budget_for ix =
    match epoch_deadline_s with
    | None -> Fuzzer.Exec_budget (budget_of ix)
    | Some s -> Fuzzer.Wall_budget { max_execs = budget_of ix; max_seconds = s }
  in
  let abort = Atomic.make false in
  let worker ix () =
    (* fault injection: a raising worker exercises the salvage path *)
    Fault.check Fault.Worker_raise;
    let wseed = derive_seed config.seed ~epoch:this_epoch ~worker:ix in
    let fcfg = { config.fuzzer with Fuzzer.seed = wseed; seeds } in
    let on_progress (st : Fuzzer.stats) =
      emit
        (Telemetry.Exec_batch
           { worker = ix; epoch = this_epoch; executions = st.Fuzzer.executions;
             iterations = st.Fuzzer.iterations; probes_covered = st.Fuzzer.probes_covered });
      (* a worker that has lit every probe locally has lit every
         probe globally: let the other workers stop early *)
      if config.stop_on_full && st.Fuzzer.probes_total > 0
         && st.Fuzzer.probes_covered >= st.Fuzzer.probes_total
      then Atomic.set abort true
    in
    let on_test_case (tc : Fuzzer.test_case) =
      emit
        (Telemetry.New_probe
           { worker = ix; epoch = this_epoch; probes = tc.Fuzzer.tc_new_probes;
             executions = int_of_float tc.Fuzzer.tc_time })
    in
    (* workers run in fresh domains, so the coordinator's ambient
       context does not reach them: install the full correlation set
       (job/worker/epoch) here, outside the trace span *)
    Log.with_ctx
      (job_fields config
      @ [ ("worker", string_of_int ix); ("epoch", string_of_int this_epoch) ])
    @@ fun () ->
    Log.debug "worker start: budget %d execs" (budget_of ix);
    Trace.with_span "campaign.worker"
      ~args:[ ("worker", string_of_int ix); ("epoch", string_of_int this_epoch) ]
    @@ fun () ->
    let r =
      Fuzzer.run ~config:fcfg ~on_test_case ~on_progress
        ~should_stop:(fun () -> Atomic.get abort || should_stop ())
        st.st_prog (budget_for ix)
    in
    Log.debug "worker done: %d execs, %d/%d probes"
      r.Fuzzer.stats.Fuzzer.executions r.Fuzzer.stats.Fuzzer.probes_covered
      r.Fuzzer.stats.Fuzzer.probes_total;
    r
  in
  Trace.with_span "campaign.epoch" ~args:[ ("epoch", string_of_int this_epoch) ] @@ fun () ->
  (* Crash isolation: every domain body is wrapped so Domain.join
     yields a result instead of re-raising — one raising worker can
     no longer destroy the whole epoch. All domains are joined
     before any crash is acted on, so even Abort never leaks a
     running domain. *)
  let guarded ix () =
    match worker ix () with
    | r -> Ok r
    | exception e -> Error (Printexc.to_string e)
  in
  let spawn_and_join () =
    match List.init jobs_now (fun ix -> ix) with
    | [ _lone ] -> [ (0, guarded 0 ()) ]  (* jobs=1: skip domain setup *)
    | ixs ->
      List.map
        (fun (ix, d) -> (ix, Domain.join d))
        (List.map (fun ix -> (ix, Domain.spawn (guarded ix))) ixs)
  in
  let joined =
    match pool with
    | None -> spawn_and_join ()
    | Some p -> Worker_pool.with_slots p (min jobs_now (Worker_pool.capacity p)) spawn_and_join
  in
  let results =
    List.filter_map
      (fun (ix, r) ->
        match r with
        | Ok r -> Some r
        | Error message ->
          st.st_worker_crashes <- st.st_worker_crashes + 1;
          (* black-box capture before the policy acts: the dump
             carries the crashing job's correlation ids and the ring
             tail leading up to the crash *)
          let crash_fields =
            job_fields config
            @ [ ("worker", string_of_int ix); ("epoch", string_of_int this_epoch) ]
          in
          Log.error ~fields:crash_fields "worker crashed: %s" message;
          ignore (Flight.dump ~fields:crash_fields ~reason:("worker crash: " ^ message) ());
          emit (Telemetry.Worker_crash { worker = ix; epoch = this_epoch; message });
          emit
            (Telemetry.Failure
               { worker = ix; epoch = this_epoch; message = "worker crashed: " ^ message });
          (match config.on_worker_crash with
          | Abort ->
            config.sink.Telemetry.close ();
            raise (Worker_crashed { worker = ix; epoch = this_epoch; message })
          | Degrade ->
            st.st_live_jobs <- max 1 (st.st_live_jobs - 1);
            None))
      joined
  in
  (* --- coordinator merge (the fork-mode "corpus merge" step) --- *)
  let candidates =
    Trace.with_span "campaign.merge" @@ fun () ->
    let candidates =
      List.concat_map
        (fun (r : Fuzzer.result) ->
          List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) r.Fuzzer.test_suite)
        results
    in
    List.iter (absorb st) candidates;
    candidates
  in
  List.iter
    (fun (r : Fuzzer.result) ->
      st.st_executions <- st.st_executions + r.Fuzzer.stats.Fuzzer.executions)
    results;
  List.iteri
    (fun ix (r : Fuzzer.result) ->
      List.iter
        (fun (f : Fuzzer.failure) ->
          if not (Hashtbl.mem st.st_seen_failures f.Fuzzer.f_message) then begin
            Hashtbl.replace st.st_seen_failures f.Fuzzer.f_message ();
            st.st_failures <- f :: st.st_failures;
            emit
              (Telemetry.Failure
                 { worker = ix; epoch = this_epoch; message = f.Fuzzer.f_message })
          end)
        r.Fuzzer.failures)
    results;
  let covered = count_covered st.st_coverage in
  emit
    (Telemetry.Corpus_sync
       { epoch = this_epoch; candidates = List.length candidates;
         kept = Hashtbl.length st.st_corpus; probes_covered = covered });
  Log.debug "merge: %d candidates, corpus %d, %d probes covered"
    (List.length candidates) (Hashtbl.length st.st_corpus) covered;
  (* persist: entries first, manifest last, each write atomic — a
     kill at any point resumes from a consistent state. Writes are
     retried with backoff inside Corpus_store; an operation that
     still fails is skipped (not fatal): the in-memory corpus is
     intact and the entry or manifest is re-persisted next epoch. *)
  (match st.st_store with
  | Some s ->
    Trace.with_span "campaign.persist" @@ fun () ->
    let persist_failures = ref 0 in
    let transient = function
      | Fault.Injected _ | Sys_error _ | Unix.Unix_error _ -> true
      | _ -> false
    in
    Hashtbl.iter
      (fun fp (metric, data) ->
        try ignore (Corpus_store.add s ~fingerprint:fp ~metric data) with
        | e when transient e -> incr persist_failures)
      st.st_corpus;
    (try
       Corpus_store.save_manifest s
         {
           Corpus_store.m_seed = config.seed;
           m_jobs = config.jobs;
           m_epoch = this_epoch + 1;
           m_executions = st.st_executions;
           m_probes_total = st.st_prog.Ir.n_probes;
           m_coverage = st.st_coverage;
         }
     with
    | e when transient e -> incr persist_failures);
    if !persist_failures > 0 then begin
      Log.warn "%d persist operation(s) failed after retries; will retry next epoch"
        !persist_failures;
      emit
        (Telemetry.Salvage
           { message =
               Printf.sprintf
                 "epoch %d: %d persist operation(s) failed after retries; will retry next epoch"
                 this_epoch !persist_failures
           })
    end
  | None -> ());
  emit
    (Telemetry.Epoch_end
       { epoch = this_epoch; executions = st.st_executions; probes_covered = covered;
         probes_total = st.st_prog.Ir.n_probes; corpus_size = Hashtbl.length st.st_corpus });
  Log.info "epoch complete: %d execs total, %d/%d probes, corpus %d"
    st.st_executions covered st.st_prog.Ir.n_probes (Hashtbl.length st.st_corpus);
  st.st_epoch_stats <-
    { ep_epoch = this_epoch; ep_executions = st.st_executions; ep_probes_covered = covered;
      ep_corpus_size = Hashtbl.length st.st_corpus }
    :: st.st_epoch_stats;
  if covered > st.st_last_covered then st.st_stalled <- 0
  else st.st_stalled <- st.st_stalled + 1;
  st.st_last_covered <- covered;
  (* an epoch in which every worker crashed makes no progress at
     all; two in a row means the failure is not transient — stop
     instead of spinning on a budget that can never be spent *)
  if results = [] then st.st_dead_epochs <- st.st_dead_epochs + 1 else st.st_dead_epochs <- 0;
  let plateau_stop () =
    st.st_plateaued <- true;
    Log.info "plateau: no new coverage for %d epochs, stopping" st.st_stalled;
    emit (Telemetry.Plateau { epoch = this_epoch; stalled_epochs = st.st_stalled });
    stop_with st Plateau
  in
  if config.stop_on_full && fully_covered st then stop_with st Full_coverage
  else if st.st_stalled >= config.plateau_epochs then begin
    (* hybrid phase state machine: fuzz → (plateau) → solve → fuzz …
       until the solver comes up dry or its rounds are spent, at
       which point the plateau is final *)
    match config.hybrid with
    | Some hy when st.st_solver_rounds < hy.solver_rounds && not (fully_covered st) ->
      let closed = solver_phase ?pool st hy ~epoch:this_epoch in
      if closed = 0 then plateau_stop ()
      else if config.stop_on_full && fully_covered st then stop_with st Full_coverage
    | Some _ | None -> plateau_stop ()
  end
  else if st.st_dead_epochs >= 2 then begin
    Log.error "stopping: %d consecutive epochs with every worker crashed" st.st_dead_epochs;
    emit (Telemetry.Dead_workers { epoch = this_epoch; dead_epochs = st.st_dead_epochs });
    stop_with st Dead_workers
  end;
  st.st_epoch <- st.st_epoch + 1;
  st.st_executions - execs_before

(* Why the campaign is over: an explicit stop records its reason when
   it happens; the remaining loop conditions are re-derived here.
   [None] means the campaign was abandoned mid-flight (a cancelled
   served job). The deadline check only touches the wall clock when
   [max_runtime] was set, so deterministic runs stay clock-free. *)
let effective_stop_reason st =
  match st.st_stop_reason with
  | Some _ as r -> r
  | None ->
    let c = st.st_config in
    if st.st_executions >= c.total_execs then Some Budget
    else if c.max_epochs > 0 && st.st_epoch - st.st_epoch0 >= c.max_epochs then Some Epoch_cap
    else if past_deadline st then Some Deadline
    else None

let finish st =
  let suite =
    Hashtbl.fold (fun fp (_, data) acc -> (fp, data) :: acc) st.st_corpus []
    |> List.sort (fun (f1, _) (f2, _) -> compare f1 f2)
    |> List.map snd
  in
  {
    suite;
    failures = List.rev st.st_failures;
    probes_covered = count_covered st.st_coverage;
    probes_total = st.st_prog.Ir.n_probes;
    executions = st.st_executions;
    epochs = List.rev st.st_epoch_stats;
    resumed = st.st_resumed;
    plateaued = st.st_plateaued;
    worker_crashes = st.st_worker_crashes;
    solver_rounds = st.st_solver_rounds;
    solver_solved = st.st_solver_solved;
    solver_executions = st.st_solver_execs;
    stop_reason = effective_stop_reason st;
  }

type progress = {
  pg_epoch : int;
  pg_executions : int;
  pg_probes_covered : int;
  pg_probes_total : int;
  pg_corpus_size : int;
  pg_worker_crashes : int;
  pg_plateaued : bool;
  pg_solver_rounds : int;
  pg_stop_reason : stop_reason option;
}

let progress st =
  {
    pg_epoch = st.st_epoch;
    pg_executions = st.st_executions;
    pg_probes_covered = count_covered st.st_coverage;
    pg_probes_total = st.st_prog.Ir.n_probes;
    pg_corpus_size = Hashtbl.length st.st_corpus;
    pg_worker_crashes = st.st_worker_crashes;
    pg_plateaued = st.st_plateaued;
    pg_solver_rounds = st.st_solver_rounds;
    pg_stop_reason = st.st_stop_reason;
  }

let run ?(config = default_config) (prog : Ir.program) =
  Trace.with_span "campaign.run" @@ fun () ->
  let st = start ~config prog in
  while not (finished st) do
    ignore (step st)
  done;
  finish st
