open Cftcg_ir
module Fuzzer = Cftcg_fuzz.Fuzzer
module Layout = Cftcg_fuzz.Layout
module Rng = Cftcg_util.Rng
module Fault = Cftcg_util.Fault
module Bytecodec = Cftcg_util.Bytecodec
module Trace = Cftcg_obs.Trace

type crash_policy =
  | Abort
  | Degrade

exception Worker_crashed of { worker : int; epoch : int; message : string }

type config = {
  jobs : int;
  seed : int64;
  total_execs : int;
  execs_per_epoch : int;
  plateau_epochs : int;
  max_epochs : int;
  seed_cap : int;
  stop_on_full : bool;
  fuzzer : Fuzzer.config;
  corpus_dir : string option;
  resume : bool;
  sink : Telemetry.sink;
  on_worker_crash : crash_policy;
  max_runtime : float option;
  epoch_deadline : float option;
}

let default_config =
  {
    jobs = 4;
    seed = 1L;
    total_execs = 20_000;
    execs_per_epoch = 1_000;
    plateau_epochs = 3;
    max_epochs = 0;
    seed_cap = 64;
    stop_on_full = true;
    fuzzer = Fuzzer.default_config;
    corpus_dir = None;
    resume = false;
    sink = Telemetry.null;
    on_worker_crash = Degrade;
    max_runtime = None;
    epoch_deadline = None;
  }

type epoch_stat = {
  ep_epoch : int;
  ep_executions : int;
  ep_probes_covered : int;
  ep_corpus_size : int;
}

type result = {
  suite : Bytes.t list;
  failures : Fuzzer.failure list;
  probes_covered : int;
  probes_total : int;
  executions : int;
  epochs : epoch_stat list;
  resumed : bool;
  plateaued : bool;
  worker_crashes : int;
}

(* Per-(epoch, worker) seed: one splitmix64 step over a slot derived
   from the master seed — deterministic, independent of scheduling,
   and stable across resume (slots are absolute epoch numbers). *)
let derive_seed base ~epoch ~worker =
  let master = Rng.create base in
  let slot = Int64.logxor (Rng.next64 master) (Int64.of_int (((epoch + 1) * 65599) + worker)) in
  Rng.next64 (Rng.create slot)

(* Coordinator-side Algorithm-1 replay of one input: its probe-set
   bitmap (the dedup fingerprint) and its Iteration Difference
   Coverage metric (the tie-break between representatives). Runs on
   the same backend the workers use; the VM path works off dirty
   lists instead of scanning every probe cell per step. *)
let make_replayer (prog : Ir.program) ~backend ~max_tuples =
  let layout = Layout.of_program prog in
  let n_probes = max prog.Ir.n_probes 1 in
  match (backend : Fuzzer.backend) with
  | Fuzzer.Vm ->
    let vm = Ir_vm.compile prog in
    let pa = Ir_vm.probes vm in
    let pb = Ir_vm.fresh_probes vm in
    fun data ->
      let bitmap = Bytes.make n_probes '\000' in
      Ir_vm.set_probes vm pa;
      Ir_vm.reset vm;
      Ir_vm.clear_probes pa;
      let curr = ref pa in
      let last = ref pb in
      let n = min (Layout.n_tuples layout data) max_tuples in
      let metric = ref 0 in
      for tuple = 0 to n - 1 do
        let c = !curr in
        let l = !last in
        Ir_vm.set_probes vm c;
        Layout.load_tuple_vm layout data ~tuple vm;
        Ir_vm.step vm;
        for k = 0 to c.Ir_vm.p_n - 1 do
          let id = Array.unsafe_get c.Ir_vm.p_dirty k in
          Bytes.unsafe_set bitmap id '\001';
          if Bytes.unsafe_get l.Ir_vm.p_fired id = '\000' then incr metric
        done;
        for k = 0 to l.Ir_vm.p_n - 1 do
          if Bytes.unsafe_get c.Ir_vm.p_fired (Array.unsafe_get l.Ir_vm.p_dirty k) = '\000' then
            incr metric
        done;
        Ir_vm.clear_probes l;
        curr := l;
        last := c
      done;
      Ir_vm.clear_probes !last;
      (bitmap, !metric)
  | Fuzzer.Closures ->
    let curr = Bytes.make n_probes '\000' in
    let last = Bytes.make n_probes '\000' in
    let hooks = Hooks.probes_only (fun id -> Bytes.unsafe_set curr id '\001') in
    let compiled = Ir_compile.compile ~hooks prog in
    fun data ->
      let bitmap = Bytes.make n_probes '\000' in
      Bytes.fill last 0 n_probes '\000';
      Ir_compile.reset compiled;
      let n = min (Layout.n_tuples layout data) max_tuples in
      let metric = ref 0 in
      for tuple = 0 to n - 1 do
        Bytes.fill curr 0 n_probes '\000';
        Layout.load_tuple layout data ~tuple compiled;
        Ir_compile.step compiled;
        for i = 0 to n_probes - 1 do
          let c = Bytes.unsafe_get curr i in
          if c <> '\000' then Bytes.unsafe_set bitmap i '\001';
          if c <> Bytes.unsafe_get last i then incr metric
        done;
        Bytes.blit curr 0 last 0 n_probes
      done;
      (bitmap, !metric)

let count_covered bitmap =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) bitmap;
  !n

let fingerprint bitmap = Bytecodec.hex_of_int64 (Bytecodec.fnv64 bitmap)

let run ?(config = default_config) (prog : Ir.program) =
  Trace.with_span "campaign.run" @@ fun () ->
  if config.jobs < 1 then invalid_arg "Campaign.run: jobs must be >= 1";
  if (Layout.of_program prog).Layout.tuple_len = 0 then
    invalid_arg "Campaign.run: model has no inports";
  let n_probes = max prog.Ir.n_probes 1 in
  let replay =
    make_replayer prog ~backend:config.fuzzer.Fuzzer.backend
      ~max_tuples:config.fuzzer.Fuzzer.max_tuples
  in
  let emit = config.sink.Telemetry.emit in
  let store =
    Option.map
      (Corpus_store.open_ ~on_salvage:(fun message -> emit (Telemetry.Salvage { message })))
      config.corpus_dir
  in
  (* global campaign state *)
  let coverage = Bytes.make n_probes '\000' in
  let corpus : (string, int * Bytes.t) Hashtbl.t = Hashtbl.create 64 in
  let executions = ref 0 in
  let epoch0 = ref 0 in
  let resumed = ref false in
  let plateaued = ref false in
  let absorb data =
    let bitmap, metric = replay data in
    if Bytes.exists (fun c -> c <> '\000') bitmap then begin
      for i = 0 to n_probes - 1 do
        if Bytes.unsafe_get bitmap i <> '\000' then Bytes.unsafe_set coverage i '\001'
      done;
      let fp = fingerprint bitmap in
      match Hashtbl.find_opt corpus fp with
      | Some (best, _) when best >= metric -> ()
      | _ -> Hashtbl.replace corpus fp (metric, data)
    end
  in
  (* resume accounting from the manifest; corpus entries on disk are
     always absorbed as seeds, manifest or not (LibFuzzer semantics:
     whatever is in the corpus directory seeds the run) *)
  (match store with
  | Some s ->
    (match Corpus_store.load_manifest s with
    | Some m when config.resume ->
      if m.m_probes_total <> prog.Ir.n_probes then
        invalid_arg "Campaign.run: corpus was recorded for a different program";
      resumed := true;
      epoch0 := m.m_epoch;
      executions := m.m_executions;
      if Bytes.length m.m_coverage = n_probes then
        for i = 0 to n_probes - 1 do
          if Bytes.unsafe_get m.m_coverage i <> '\000' then Bytes.unsafe_set coverage i '\001'
        done
    | Some _ | None -> ());
    List.iter absorb (Corpus_store.entries s)
  | None -> ());
  List.iter absorb config.fuzzer.Fuzzer.seeds;
  let failures = ref [] in
  let seen_failures = Hashtbl.create 4 in
  let epoch_stats = ref [] in
  let epoch = ref !epoch0 in
  let stalled = ref 0 in
  let last_covered = ref (count_covered coverage) in
  let stop = ref false in
  let fully_covered () = prog.Ir.n_probes > 0 && count_covered coverage >= prog.Ir.n_probes in
  if config.stop_on_full && fully_covered () then stop := true;
  (* crash isolation state: [live_jobs] degrades when a worker crashes
     under the Degrade policy, so a persistently failing slot stops
     burning budget; a crashed worker's unspent slice flows back into
     the global accounting automatically (only real executions are
     charged against [total_execs]) *)
  let worker_crashes = ref 0 in
  let live_jobs = ref config.jobs in
  let dead_epochs = ref 0 in
  let campaign_deadline =
    match config.max_runtime with
    | None -> Float.infinity
    | Some s -> Unix.gettimeofday () +. s
  in
  let past_deadline () =
    Float.is_finite campaign_deadline && Unix.gettimeofday () >= campaign_deadline
  in
  while
    (not !stop)
    && !executions < config.total_execs
    && (config.max_epochs = 0 || !epoch - !epoch0 < config.max_epochs)
    && not (past_deadline ())
  do
    let this_epoch = !epoch in
    let jobs_now = !live_jobs in
    (* redistribute the best corpus entries as the shared seed corpus:
       metric-descending, fingerprint tie-break, capped *)
    let seeds =
      Hashtbl.fold (fun fp (metric, data) acc -> (metric, fp, data) :: acc) corpus []
      |> List.sort (fun (m1, f1, _) (m2, f2, _) -> compare (-m1, f1) (-m2, f2))
      |> List.filteri (fun i _ -> i < config.seed_cap)
      |> List.map (fun (_, _, data) -> data)
    in
    (* exact global budget accounting: this epoch's executions are
       divided across workers ahead of time *)
    let remaining = config.total_execs - !executions in
    let epoch_total = min remaining (config.execs_per_epoch * jobs_now) in
    let budget_of ix =
      (epoch_total / jobs_now) + (if ix < epoch_total mod jobs_now then 1 else 0)
    in
    (* per-epoch wall deadline: the per-epoch cap (if any) clipped to
       what is left of the campaign's --max-runtime. When neither is
       set workers run plain Exec_budgets and never read the wall
       clock, keeping same-seed campaigns byte-identical. *)
    let epoch_deadline_s =
      let campaign_left =
        if Float.is_finite campaign_deadline then
          Some (Float.max (campaign_deadline -. Unix.gettimeofday ()) 0.01)
        else None
      in
      match (config.epoch_deadline, campaign_left) with
      | None, None -> None
      | Some d, None -> Some d
      | None, Some l -> Some l
      | Some d, Some l -> Some (Float.min d l)
    in
    let budget_for ix =
      match epoch_deadline_s with
      | None -> Fuzzer.Exec_budget (budget_of ix)
      | Some s -> Fuzzer.Wall_budget { max_execs = budget_of ix; max_seconds = s }
    in
    let abort = Atomic.make false in
    let worker ix () =
      (* fault injection: a raising worker exercises the salvage path *)
      Fault.check Fault.Worker_raise;
      let wseed = derive_seed config.seed ~epoch:this_epoch ~worker:ix in
      let fcfg = { config.fuzzer with Fuzzer.seed = wseed; seeds } in
      let on_progress (st : Fuzzer.stats) =
        emit
          (Telemetry.Exec_batch
             { worker = ix; epoch = this_epoch; executions = st.Fuzzer.executions;
               iterations = st.Fuzzer.iterations; probes_covered = st.Fuzzer.probes_covered });
        (* a worker that has lit every probe locally has lit every
           probe globally: let the other workers stop early *)
        if config.stop_on_full && st.Fuzzer.probes_total > 0
           && st.Fuzzer.probes_covered >= st.Fuzzer.probes_total
        then Atomic.set abort true
      in
      let on_test_case (tc : Fuzzer.test_case) =
        emit
          (Telemetry.New_probe
             { worker = ix; epoch = this_epoch; probes = tc.Fuzzer.tc_new_probes;
               executions = int_of_float tc.Fuzzer.tc_time })
      in
      Trace.with_span "campaign.worker"
        ~args:[ ("worker", string_of_int ix); ("epoch", string_of_int this_epoch) ]
      @@ fun () ->
      Fuzzer.run ~config:fcfg ~on_test_case ~on_progress
        ~should_stop:(fun () -> Atomic.get abort)
        prog (budget_for ix)
    in
    Trace.with_span "campaign.epoch" ~args:[ ("epoch", string_of_int this_epoch) ] @@ fun () ->
    (* Crash isolation: every domain body is wrapped so Domain.join
       yields a result instead of re-raising — one raising worker can
       no longer destroy the whole epoch. All domains are joined
       before any crash is acted on, so even Abort never leaks a
       running domain. *)
    let guarded ix () =
      match worker ix () with
      | r -> Ok r
      | exception e -> Error (Printexc.to_string e)
    in
    let joined =
      match List.init jobs_now (fun ix -> ix) with
      | [ _lone ] -> [ (0, guarded 0 ()) ]  (* jobs=1: skip domain setup *)
      | ixs ->
        List.map
          (fun (ix, d) -> (ix, Domain.join d))
          (List.map (fun ix -> (ix, Domain.spawn (guarded ix))) ixs)
    in
    let results =
      List.filter_map
        (fun (ix, r) ->
          match r with
          | Ok r -> Some r
          | Error message ->
            incr worker_crashes;
            emit (Telemetry.Worker_crash { worker = ix; epoch = this_epoch; message });
            emit
              (Telemetry.Failure
                 { worker = ix; epoch = this_epoch; message = "worker crashed: " ^ message });
            (match config.on_worker_crash with
            | Abort ->
              config.sink.Telemetry.close ();
              raise (Worker_crashed { worker = ix; epoch = this_epoch; message })
            | Degrade ->
              live_jobs := max 1 (!live_jobs - 1);
              None))
        joined
    in
    (* --- coordinator merge (the fork-mode "corpus merge" step) --- *)
    let candidates =
      Trace.with_span "campaign.merge" @@ fun () ->
      let candidates =
        List.concat_map
          (fun (r : Fuzzer.result) ->
            List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) r.Fuzzer.test_suite)
          results
      in
      List.iter absorb candidates;
      candidates
    in
    List.iter
      (fun (r : Fuzzer.result) ->
        executions := !executions + r.Fuzzer.stats.Fuzzer.executions)
      results;
    List.iteri
      (fun ix (r : Fuzzer.result) ->
        List.iter
          (fun (f : Fuzzer.failure) ->
            if not (Hashtbl.mem seen_failures f.Fuzzer.f_message) then begin
              Hashtbl.replace seen_failures f.Fuzzer.f_message ();
              failures := f :: !failures;
              emit
                (Telemetry.Failure
                   { worker = ix; epoch = this_epoch; message = f.Fuzzer.f_message })
            end)
          r.Fuzzer.failures)
      results;
    let covered = count_covered coverage in
    emit
      (Telemetry.Corpus_sync
         { epoch = this_epoch; candidates = List.length candidates;
           kept = Hashtbl.length corpus; probes_covered = covered });
    (* persist: entries first, manifest last, each write atomic — a
       kill at any point resumes from a consistent state. Writes are
       retried with backoff inside Corpus_store; an operation that
       still fails is skipped (not fatal): the in-memory corpus is
       intact and the entry or manifest is re-persisted next epoch. *)
    (match store with
    | Some s ->
      Trace.with_span "campaign.persist" @@ fun () ->
      let persist_failures = ref 0 in
      let transient = function
        | Fault.Injected _ | Sys_error _ | Unix.Unix_error _ -> true
        | _ -> false
      in
      Hashtbl.iter
        (fun fp (metric, data) ->
          try ignore (Corpus_store.add s ~fingerprint:fp ~metric data) with
          | e when transient e -> incr persist_failures)
        corpus;
      (try
         Corpus_store.save_manifest s
           {
             Corpus_store.m_seed = config.seed;
             m_jobs = config.jobs;
             m_epoch = this_epoch + 1;
             m_executions = !executions;
             m_probes_total = prog.Ir.n_probes;
             m_coverage = coverage;
           }
       with
      | e when transient e -> incr persist_failures);
      if !persist_failures > 0 then
        emit
          (Telemetry.Salvage
             { message =
                 Printf.sprintf
                   "epoch %d: %d persist operation(s) failed after retries; will retry next epoch"
                   this_epoch !persist_failures
             })
    | None -> ());
    emit
      (Telemetry.Epoch_end
         { epoch = this_epoch; executions = !executions; probes_covered = covered;
           probes_total = prog.Ir.n_probes; corpus_size = Hashtbl.length corpus });
    epoch_stats :=
      { ep_epoch = this_epoch; ep_executions = !executions; ep_probes_covered = covered;
        ep_corpus_size = Hashtbl.length corpus }
      :: !epoch_stats;
    if covered > !last_covered then stalled := 0 else incr stalled;
    last_covered := covered;
    (* an epoch in which every worker crashed makes no progress at
       all; two in a row means the failure is not transient — stop
       instead of spinning on a budget that can never be spent *)
    if results = [] then incr dead_epochs else dead_epochs := 0;
    if config.stop_on_full && fully_covered () then stop := true
    else if !stalled >= config.plateau_epochs then begin
      plateaued := true;
      emit (Telemetry.Plateau { epoch = this_epoch; stalled_epochs = !stalled });
      stop := true
    end
    else if !dead_epochs >= 2 then stop := true;
    incr epoch
  done;
  let suite =
    Hashtbl.fold (fun fp (_, data) acc -> (fp, data) :: acc) corpus []
    |> List.sort (fun (f1, _) (f2, _) -> compare f1 f2)
    |> List.map snd
  in
  {
    suite;
    failures = List.rev !failures;
    probes_covered = count_covered coverage;
    probes_total = prog.Ir.n_probes;
    executions = !executions;
    epochs = List.rev !epoch_stats;
    resumed = !resumed;
    plateaued = !plateaued;
    worker_crashes = !worker_crashes;
  }
