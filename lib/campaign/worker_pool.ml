(* A counting pool of Domain worker slots shared by concurrent
   campaigns. The pool does not own domains — epochs spawn and join
   their own, exactly as a standalone campaign does — it bounds how
   many may run at once, so a daemon multiplexing many campaigns never
   oversubscribes the machine. Acquisition is all-or-nothing under one
   mutex: a request blocks until its full slot count is free, and
   FIFO-ordered wakeups (plain [Condition.broadcast] with re-check)
   keep a large request from being starved by a stream of small
   ones. *)

type t = {
  capacity : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable free : int;
  mutable next_ticket : int;  (* FIFO order: tickets issued on arrival *)
  mutable serving : int;  (* lowest ticket allowed to acquire *)
}

let create capacity =
  if capacity < 1 then invalid_arg "Worker_pool.create: capacity must be >= 1";
  {
    capacity;
    mutex = Mutex.create ();
    cond = Condition.create ();
    free = capacity;
    next_ticket = 0;
    serving = 0;
  }

let capacity t = t.capacity

let default_capacity () = max 1 (Domain.recommended_domain_count () - 1)

let acquire t n =
  if n < 1 then invalid_arg "Worker_pool.acquire: n must be >= 1";
  if n > t.capacity then
    invalid_arg
      (Printf.sprintf "Worker_pool.acquire: requested %d slots from a pool of %d" n t.capacity);
  Mutex.lock t.mutex;
  let ticket = t.next_ticket in
  t.next_ticket <- t.next_ticket + 1;
  while not (t.serving = ticket && t.free >= n) do
    Condition.wait t.cond t.mutex
  done;
  t.serving <- t.serving + 1;
  t.free <- t.free - n;
  (* the next ticket may be satisfiable immediately *)
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let release t n =
  Mutex.lock t.mutex;
  t.free <- min t.capacity (t.free + n);
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let with_slots t n f =
  acquire t n;
  Fun.protect ~finally:(fun () -> release t n) f

let free t =
  Mutex.lock t.mutex;
  let n = t.free in
  Mutex.unlock t.mutex;
  n
