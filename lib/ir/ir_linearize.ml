open Cftcg_model

(* Flattens an [Ir.program] into three-address bytecode over an
   int-indexed register file of unboxed floats.

   Register file layout:  [ variables | temporaries | constants ]
   - variables sit at their [vid], so [Ir_compile]-style raw access
     (set_input_raw / read_raw) works unchanged;
   - temporaries are statement-scoped (reset per statement, watermark
     sizes the file);
   - constants are pooled by bit pattern and materialized once per
     reset by blitting [l_consts] at [l_const_base].

   All dtype-dependent semantics (integer wrap masks, saturation
   bounds, float32 rounding) are resolved here and baked into operand
   slots, so the interpreter in {!Ir_vm} dispatches on opcode alone.
   The numeric formulas mirror {!Ir_compile} instruction for
   instruction; the differential test suite holds the two (and
   {!Ir_eval}) to bit-identical behaviour. *)

(* --- opcode numbers (dispatch table in Ir_vm.exec matches these) --- *)
let op_mov = 0
let op_add_f = 1
let op_sub_f = 2
let op_mul_f = 3
let op_div_f = 4
let op_rem_f = 5
let op_add_i = 6
let op_sub_i = 7
let op_mul_i = 8
let op_div_i = 9
let op_rem_i = 10
let op_neg_f = 11
let op_neg_i = 12
let op_abs_f = 13
let op_abs_i = 14
let op_not = 15
let op_to_bool = 16
let op_round_f32 = 17
let op_f2i_sat = 18
let op_wrap_i = 19
let op_floor = 20
let op_ceil = 21
let op_round = 22
let op_trunc = 23
let op_exp = 24
let op_log = 25
let op_log10 = 26
let op_sqrt = 27
let op_sin = 28
let op_cos = 29
let op_cmp_eq = 30
let op_cmp_ne = 31
let op_cmp_lt = 32
let op_cmp_le = 33
let op_cmp_gt = 34
let op_cmp_ge = 35
let op_and = 36
let op_or = 37
let op_select = 38
let op_jmp = 39
let op_jz = 40
let op_probe = 41
let op_probe_h = 42
let op_cond = 43
let op_decision = 44
let op_branch_h = 45
let op_halt = 46

(* Superinstructions 47..57 are never emitted by the linearizer —
   only Ir_opt's bytecode fusion pass produces them. The fused
   compare-and-jump forms replace a [cmp_*; jz] pair and take the
   jump when the comparison is FALSE (bit-for-bit what the pair
   computed, NaN behaviour included — [jlt a b L] is *not* the same
   as [jge a b L] when an operand is NaN). *)
let op_jlt = 47
let op_jle = 48
let op_jeq = 49
let op_jne = 50
let op_jgt = 51
let op_jge = 52
let op_jnz = 53 (* [not; jz] pair: jump when the source is non-zero *)

(* float32 arithmetic: [add_f/…; round_f32] pair fused into one
   dispatch (result normalized to float32 before the store) *)
let op_add_f32 = 54
let op_sub_f32 = 55
let op_mul_f32 = 56
let op_div_f32 = 57

(* branch-arm tails: a probe or mov immediately followed by an
   unconditional jmp (the common shape of a then-arm) collapse into
   one dispatch *)
let op_probe_jmp = 58
let op_mov_jmp = 59

(* probe-carrying conditional branches: a fused compare-and-jump (or
   jz/jnz) immediately followed by a coverage [probe] collapses into
   one dispatch. The branch-arm probe is the single most common
   instrumented shape (every then-arm opens with one), so on the
   instrumented hot path these save a dispatch per taken branch.
   Semantics are exactly the pair's: when the branch falls through the
   probe fires, when it jumps the probe is skipped.
   Layout: [jlt.p a, b, id, L] / [jz.p r, id, L]. *)
let op_jlt_p = 60
let op_jle_p = 61
let op_jeq_p = 62
let op_jne_p = 63
let op_jgt_p = 64
let op_jge_p = 65
let op_jz_p = 66
let op_jnz_p = 67

let n_opcodes = 68

type instrumentation = {
  probe_hook : bool;  (** emit [op_probe_h] (buffer write + hook call) per probe *)
  cond : bool;  (** emit [op_cond] for [Record_cond] *)
  decision : bool;  (** emit [op_decision] for [Record_decision] *)
  branch : bool;  (** emit [op_branch_h] before every [If] *)
}

let no_instrumentation = { probe_hook = false; cond = false; decision = false; branch = false }

type t = {
  l_prog : Ir.program;
  l_init : int array;
  l_step : int array;
  l_n_regs : int;
  l_const_base : int;
  l_consts : float array;
  l_ifs : Ir.expr array;  (** cond expr per [If], depth-first; index = branch-hook site *)
}

(* ------------------------------------------------------------------ *)
(* Emitter                                                             *)
(* ------------------------------------------------------------------ *)

type emitter = {
  n_vars : int;
  instrument : instrumentation;
  mutable code : int array;
  mutable len : int;
  mutable const_slots : int list;  (* code positions holding a symbolic const reg *)
  const_ix : (int64, int) Hashtbl.t;
  mutable consts_rev : float list;
  mutable n_consts : int;
  mutable cur_temp : int;
  mutable max_temp : int;
  mutable ifs_rev : Ir.expr list;
  mutable n_ifs : int;
}

let create_emitter n_vars instrument =
  {
    n_vars;
    instrument;
    code = Array.make 64 0;
    len = 0;
    const_slots = [];
    const_ix = Hashtbl.create 16;
    consts_rev = [];
    n_consts = 0;
    cur_temp = 0;
    max_temp = 0;
    ifs_rev = [];
    n_ifs = 0;
  }

let push em v =
  if em.len = Array.length em.code then begin
    let bigger = Array.make (2 * em.len) 0 in
    Array.blit em.code 0 bigger 0 em.len;
    em.code <- bigger
  end;
  em.code.(em.len) <- v;
  em.len <- em.len + 1

(* Source-register operands may be symbolic constant references
   (negative); their positions are recorded for the final remap. *)
let push_reg em r =
  if r < 0 then em.const_slots <- em.len :: em.const_slots;
  push em r

let const_reg em f =
  let bits = Int64.bits_of_float f in
  match Hashtbl.find_opt em.const_ix bits with
  | Some ix -> -(ix + 1)
  | None ->
    let ix = em.n_consts in
    Hashtbl.replace em.const_ix bits ix;
    em.consts_rev <- f :: em.consts_rev;
    em.n_consts <- ix + 1;
    -(ix + 1)

let temp em =
  let t = em.n_vars + em.cur_temp in
  em.cur_temp <- em.cur_temp + 1;
  if em.cur_temp > em.max_temp then em.max_temp <- em.cur_temp;
  t

(* snapshot the current buffer (one block each for init and step),
   terminated by HALT so the interpreter needs no bounds check *)
let take em =
  push em op_halt;
  let code = Array.sub em.code 0 em.len in
  let slots = em.const_slots in
  em.len <- 0;
  em.const_slots <- [];
  (code, slots)

(* ------------------------------------------------------------------ *)
(* Dtype-derived operand values                                        *)
(* ------------------------------------------------------------------ *)

let int_bits ty = 8 * Dtype.size_bytes ty

let wrap_mask ty = (1 lsl int_bits ty) - 1

(* [m land mask] then sign-adjust when [m >= half]; unsigned types get
   half = modulus so the adjust never fires — one formula for both. *)
let wrap_half ty =
  let modulus = 1 lsl int_bits ty in
  if Dtype.is_signed ty then modulus / 2 else modulus

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(* ------------------------------------------------------------------ *)

(* [dst] is an optional destination hint: when present, the final
   instruction of the lowered expression writes it (avoids a MOV in
   the common identity-typed Assign). *)
let rec lower_expr ?dst em (e : Ir.expr) : int =
  match e with
  | Ir.Const v -> place ?dst em (const_reg em (Value.to_float v))
  | Ir.Read v -> place ?dst em v.Ir.vid
  | Ir.Unop (op, a) -> lower_unop ?dst em op a
  | Ir.Binop (op, ty, a, b) -> lower_binop ?dst em op ty a b
  | Ir.Select (c, a, b) ->
    let rc = lower_expr em c in
    let ra = lower_expr em a in
    let rb = lower_expr em b in
    let d = dest ?dst em in
    push em op_select;
    push em d;
    push_reg em rc;
    push_reg em ra;
    push_reg em rb;
    d

and dest ?dst em =
  match dst with
  | Some d -> d
  | None -> temp em

(* a value already lives in [r]; honour the hint with a MOV if needed *)
and place ?dst em r =
  match dst with
  | Some d when d <> r ->
    push em op_mov;
    push em d;
    push_reg em r;
    d
  | Some d -> d
  | None -> r

and emit_1 ?dst em opcode a =
  let d = dest ?dst em in
  push em opcode;
  push em d;
  push_reg em a;
  d

and emit_1i ?dst em opcode a imm1 imm2 =
  let d = dest ?dst em in
  push em opcode;
  push em d;
  push_reg em a;
  push em imm1;
  push em imm2;
  d

and emit_2 ?dst em opcode a b =
  let d = dest ?dst em in
  push em opcode;
  push em d;
  push_reg em a;
  push_reg em b;
  d

and emit_2i ?dst em opcode a b imm1 imm2 =
  let d = dest ?dst em in
  push em opcode;
  push em d;
  push_reg em a;
  push_reg em b;
  push em imm1;
  push em imm2;
  d

(* saturation bounds live in the constant pool as floats, so the
   interpreter never converts them per execution *)
and emit_f2i_sat ?dst em a lo hi =
  let rlo = const_reg em (float_of_int lo) in
  let rhi = const_reg em (float_of_int hi) in
  let d = dest ?dst em in
  push em op_f2i_sat;
  push em d;
  push_reg em a;
  push_reg em rlo;
  push_reg em rhi;
  d

(* Value.convert as specialized opcodes — mirrors Ir_compile.convert. *)
and emit_convert ?dst em ~src ~target a =
  match target with
  | Dtype.Bool -> emit_1 ?dst em op_to_bool a
  | ty when Dtype.is_integer ty ->
    if Dtype.is_float src then
      emit_f2i_sat ?dst em a (Dtype.min_int_value ty) (Dtype.max_int_value ty)
    else emit_1i ?dst em op_wrap_i a (wrap_mask ty) (wrap_half ty)
  | Dtype.Float32 -> emit_1 ?dst em op_round_f32 a
  | _ (* Float64: normalize is the identity *) -> place ?dst em a

(* as_int: a float-typed operand of an integer op saturates to the
   Int32 range first (Value.to_int semantics). *)
and int_operand em src r =
  if Dtype.is_float src then
    emit_f2i_sat em r (Dtype.min_int_value Dtype.Int32) (Dtype.max_int_value Dtype.Int32)
  else r

and lower_unop ?dst em op a =
  let src = Ir.type_of a in
  let f32 = match src with Dtype.Float32 -> true | _ -> false in
  (* total math ops: raw op (with its domain guard), then the float_ty
     normalization — a no-op for Float64, a rounding for Float32 *)
  let math opcode =
    let ra = lower_expr em a in
    if f32 then emit_1 ?dst em op_round_f32 (emit_1 em opcode ra) else emit_1 ?dst em opcode ra
  in
  match op with
  | Ir.U_neg ->
    let ra = lower_expr em a in
    if Dtype.is_integer src then emit_1i ?dst em op_neg_i ra (wrap_mask src) (wrap_half src)
    else if Dtype.is_float src then
      if f32 then emit_1 ?dst em op_round_f32 (emit_1 em op_neg_f ra)
      else emit_1 ?dst em op_neg_f ra
    else emit_1 ?dst em op_to_bool ra
  | Ir.U_not -> emit_1 ?dst em op_not (lower_expr em a)
  | Ir.U_abs ->
    let ra = lower_expr em a in
    if Dtype.is_integer src then emit_1i ?dst em op_abs_i ra (wrap_mask src) (wrap_half src)
    else if Dtype.is_float src then emit_1 ?dst em op_abs_f ra
    else emit_1 ?dst em op_to_bool ra
  | Ir.U_cast target -> emit_convert ?dst em ~src ~target (lower_expr em a)
  | Ir.U_floor -> lower_rounding ?dst em op_floor src a
  | Ir.U_ceil -> lower_rounding ?dst em op_ceil src a
  | Ir.U_round -> lower_rounding ?dst em op_round src a
  | Ir.U_trunc -> lower_rounding ?dst em op_trunc src a
  | Ir.U_exp -> math op_exp
  | Ir.U_log -> math op_log
  | Ir.U_log10 -> math op_log10
  | Ir.U_sqrt -> math op_sqrt
  | Ir.U_sin -> math op_sin
  | Ir.U_cos -> math op_cos

(* floor/ceil/round/trunc: the raw Float op, converted back into the
   argument's own dtype (convert ~src:Float64 ~dst:src). *)
and lower_rounding ?dst em opcode src a =
  let ra = lower_expr em a in
  match src with
  | Dtype.Float64 -> emit_1 ?dst em opcode ra
  | _ ->
    let t = emit_1 em opcode ra in
    emit_convert ?dst em ~src:Dtype.Float64 ~target:src t

and lower_binop ?dst em op ty a b =
  let sa = Ir.type_of a and sb = Ir.type_of b in
  let arith op_f op_i =
    let ra = lower_expr em a in
    let rb = lower_expr em b in
    match ty with
    | Dtype.Bool ->
      (* raw float op, then truthiness *)
      emit_1 ?dst em op_to_bool (emit_2 em op_f ra rb)
    | ty when Dtype.is_integer ty ->
      let ra = int_operand em sa ra in
      let rb = int_operand em sb rb in
      emit_2i ?dst em op_i ra rb (wrap_mask ty) (wrap_half ty)
    | Dtype.Float32 -> emit_1 ?dst em op_round_f32 (emit_2 em op_f ra rb)
    | _ (* Float64 *) -> emit_2 ?dst em op_f ra rb
  in
  let boolean opcode = emit_2 ?dst em opcode (lower_expr em a) (lower_expr em b) in
  let minmax cmp_opcode =
    (* compare raw operands; convert only the winner, by its own src *)
    let ra = lower_expr em a in
    let rb = lower_expr em b in
    let t = emit_2 em cmp_opcode ra rb in
    let d = dest ?dst em in
    let jz_at = emit_jz em t in
    ignore (emit_convert ~dst:d em ~src:sa ~target:ty ra);
    let jmp_at = emit_jmp em in
    patch em jz_at;
    ignore (emit_convert ~dst:d em ~src:sb ~target:ty rb);
    patch em jmp_at;
    d
  in
  match op with
  | Ir.B_add -> arith op_add_f op_add_i
  | Ir.B_sub -> arith op_sub_f op_sub_i
  | Ir.B_mul -> arith op_mul_f op_mul_i
  | Ir.B_div -> arith op_div_f op_div_i
  | Ir.B_rem -> arith op_rem_f op_rem_i
  | Ir.B_min -> minmax op_cmp_le
  | Ir.B_max -> minmax op_cmp_ge
  | Ir.B_and -> boolean op_and
  | Ir.B_or -> boolean op_or
  | Ir.B_eq -> boolean op_cmp_eq
  | Ir.B_ne -> boolean op_cmp_ne
  | Ir.B_lt -> boolean op_cmp_lt
  | Ir.B_le -> boolean op_cmp_le
  | Ir.B_gt -> boolean op_cmp_gt
  | Ir.B_ge -> boolean op_cmp_ge

(* jumps: emit with a placeholder target, patch once the target pc is
   known *)
and emit_jz em r =
  push em op_jz;
  push_reg em r;
  let at = em.len in
  push em 0;
  at

and emit_jmp em =
  push em op_jmp;
  let at = em.len in
  push em 0;
  at

and patch em at = em.code.(at) <- em.len

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                  *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt em (s : Ir.stmt) =
  em.cur_temp <- 0;
  match s with
  | Ir.Assign (v, e) ->
    let src = Ir.type_of e in
    let target = v.Ir.vty in
    if Dtype.equal src target && not (Dtype.equal target Dtype.Float32) then
      ignore (lower_expr ~dst:v.Ir.vid em e)
    else begin
      let r = lower_expr em e in
      ignore (emit_convert ~dst:v.Ir.vid em ~src ~target r)
    end
  | Ir.If { cond; dec = _; then_; else_ } ->
    let if_ix = em.n_ifs in
    em.n_ifs <- if_ix + 1;
    em.ifs_rev <- cond :: em.ifs_rev;
    let rc = lower_expr em cond in
    if em.instrument.branch then begin
      push em op_branch_h;
      push em if_ix;
      push_reg em rc
    end;
    let jz_at = emit_jz em rc in
    List.iter (lower_stmt em) then_;
    let jmp_at = emit_jmp em in
    patch em jz_at;
    List.iter (lower_stmt em) else_;
    patch em jmp_at
  | Ir.Probe id ->
    push em (if em.instrument.probe_hook then op_probe_h else op_probe);
    push em id
  | Ir.Record_cond { dec; cond_ix; value } ->
    (* without the hook the value expression is not evaluated at all,
       matching the closure backend's no-op compilation *)
    if em.instrument.cond then begin
      let rv = lower_expr em value in
      push em op_cond;
      push em dec;
      push em cond_ix;
      push_reg em rv
    end
  | Ir.Record_decision { dec; outcome } ->
    if em.instrument.decision then begin
      push em op_decision;
      push em dec;
      push em outcome
    end
  | Ir.Comment _ -> ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let linearize ?(instrument = no_instrumentation) (prog : Ir.program) =
  let em = create_emitter prog.Ir.n_vars instrument in
  List.iter (lower_stmt em) prog.Ir.init;
  let init_code, init_slots = take em in
  List.iter (lower_stmt em) prog.Ir.step;
  let step_code, step_slots = take em in
  let const_base = prog.Ir.n_vars + em.max_temp in
  let remap code slots =
    List.iter (fun at -> code.(at) <- const_base + (-code.(at) - 1)) slots;
    code
  in
  {
    l_prog = prog;
    l_init = remap init_code init_slots;
    l_step = remap step_code step_slots;
    l_n_regs = const_base + em.n_consts;
    l_const_base = const_base;
    l_consts = Array.of_list (List.rev em.consts_rev);
    l_ifs = Array.of_list (List.rev em.ifs_rev);
  }

let code_size t = Array.length t.l_init + Array.length t.l_step
