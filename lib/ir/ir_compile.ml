open Cftcg_model

type t = {
  prog : Ir.program;
  store : float array;
  run_init : unit -> unit;
  run_step : unit -> unit;
}

(* Conversion of a float-stored value whose *static* type is [src]
   into the target dtype, reproducing Value.cast:
   - integer/bool sources wrap (C integer cast),
   - float sources truncate-saturate,
   - bool targets take truthiness. *)
let convert ~src ~dst x =
  match dst with
  | Dtype.Bool -> if x <> 0.0 then 1.0 else 0.0
  | dst when Dtype.is_integer dst ->
    if Dtype.is_float src then float_of_int (Value.saturating_int_of_float dst x)
    else float_of_int (Value.wrap dst (int_of_float x))
  | dst -> Value.normalize_float dst x

(* Value.to_int semantics for a float-stored operand. *)
let as_int ~src x =
  if Dtype.is_float src then Value.saturating_int_of_float Dtype.Int32 x else int_of_float x

let compile_expr store =
  let rec go (e : Ir.expr) : unit -> float =
    match e with
    | Ir.Const v ->
      let f = Value.to_float v in
      fun () -> f
    | Ir.Read v ->
      let id = v.Ir.vid in
      fun () -> store.(id)
    | Ir.Unop (op, arg) -> go_unop op arg
    | Ir.Binop (op, ty, a, b) -> go_binop op ty a b
    | Ir.Select (c, a, b) ->
      let fc = go c and fa = go a and fb = go b in
      fun () ->
        (* branchless: both arms evaluated *)
        let cv = fc () in
        let av = fa () in
        let bv = fb () in
        if cv <> 0.0 then av else bv
  and go_unop op arg =
    let f = go arg in
    let src = Ir.type_of arg in
    let float_ty = match src with Dtype.Float32 -> Dtype.Float32 | _ -> Dtype.Float64 in
    let total g =
      fun () ->
        let v = g (f ()) in
        if Float.is_nan v then 0.0 else Value.normalize_float float_ty v
    in
    match op with
    | Ir.U_neg ->
      if Dtype.is_integer src then fun () -> float_of_int (Value.wrap src (-int_of_float (f ())))
      else if Dtype.is_float src then fun () -> Value.normalize_float src (-.f ())
      else fun () -> if 0.0 -. f () <> 0.0 then 1.0 else 0.0
    | Ir.U_not -> fun () -> if f () <> 0.0 then 0.0 else 1.0
    | Ir.U_abs ->
      if Dtype.is_integer src then
        fun () -> float_of_int (Value.wrap src (Int.abs (int_of_float (f ()))))
      else if Dtype.is_float src then fun () -> Float.abs (f ())
      else fun () -> if f () <> 0.0 then 1.0 else 0.0
    | Ir.U_cast dst -> fun () -> convert ~src ~dst (f ())
    | Ir.U_floor -> fun () -> convert ~src:Dtype.Float64 ~dst:src (Float.floor (f ()))
    | Ir.U_ceil -> fun () -> convert ~src:Dtype.Float64 ~dst:src (Float.ceil (f ()))
    | Ir.U_round -> fun () -> convert ~src:Dtype.Float64 ~dst:src (Float.round (f ()))
    | Ir.U_trunc -> fun () -> convert ~src:Dtype.Float64 ~dst:src (Float.trunc (f ()))
    | Ir.U_exp -> total Float.exp
    | Ir.U_log -> fun () ->
        let x = f () in
        if x <= 0.0 then 0.0 else Value.normalize_float float_ty (Float.log x)
    | Ir.U_log10 -> fun () ->
        let x = f () in
        if x <= 0.0 then 0.0 else Value.normalize_float float_ty (Float.log10 x)
    | Ir.U_sqrt -> fun () ->
        let x = f () in
        if x < 0.0 then 0.0 else Value.normalize_float float_ty (Float.sqrt x)
    | Ir.U_sin -> total Float.sin
    | Ir.U_cos -> total Float.cos
  and go_binop op ty a b =
    let fa = go a and fb = go b in
    let sa = Ir.type_of a and sb = Ir.type_of b in
    let arith op_int op_float =
      match ty with
      | Dtype.Bool -> fun () -> if op_float (fa ()) (fb ()) <> 0.0 then 1.0 else 0.0
      | ty when Dtype.is_integer ty ->
        fun () -> float_of_int (Value.wrap ty (op_int (as_int ~src:sa (fa ())) (as_int ~src:sb (fb ()))))
      | ty -> fun () -> Value.normalize_float ty (op_float (fa ()) (fb ()))
    in
    let boolean p = fun () -> if p (fa ()) (fb ()) then 1.0 else 0.0 in
    match op with
    | Ir.B_add -> arith ( + ) ( +. )
    | Ir.B_sub -> arith ( - ) ( -. )
    | Ir.B_mul -> arith ( * ) ( *. )
    | Ir.B_div ->
      arith (fun x y -> if y = 0 then 0 else x / y) (fun x y -> if y = 0.0 then 0.0 else x /. y)
    | Ir.B_rem ->
      arith (fun x y -> if y = 0 then 0 else x mod y) (fun x y -> if y = 0.0 then 0.0 else Float.rem x y)
    | Ir.B_min ->
      fun () ->
        let x = fa () and y = fb () in
        if x <= y then convert ~src:sa ~dst:ty x else convert ~src:sb ~dst:ty y
    | Ir.B_max ->
      fun () ->
        let x = fa () and y = fb () in
        if x >= y then convert ~src:sa ~dst:ty x else convert ~src:sb ~dst:ty y
    | Ir.B_and -> boolean (fun x y -> x <> 0.0 && y <> 0.0)
    | Ir.B_or -> boolean (fun x y -> x <> 0.0 || y <> 0.0)
    | Ir.B_eq -> boolean (fun x y -> x = y)
    | Ir.B_ne -> boolean (fun x y -> x <> y)
    | Ir.B_lt -> boolean (fun x y -> x < y)
    | Ir.B_le -> boolean (fun x y -> x <= y)
    | Ir.B_gt -> boolean (fun x y -> x > y)
    | Ir.B_ge -> boolean (fun x y -> x >= y)
  in
  go

(* Branch-distance closure mirroring Ir_eval.branch_distances. *)
let compile_distance store cond =
  let expr = compile_expr store in
  let k = 1.0 in
  let rec go (e : Ir.expr) : unit -> float * float =
    match e with
    | Ir.Binop (Ir.B_and, _, a, b) ->
      let ga = go a and gb = go b in
      fun () ->
        let ta, fa = ga () and tb, fb = gb () in
        (ta +. tb, Float.min fa fb)
    | Ir.Binop (Ir.B_or, _, a, b) ->
      let ga = go a and gb = go b in
      fun () ->
        let ta, fa = ga () and tb, fb = gb () in
        (Float.min ta tb, fa +. fb)
    | Ir.Unop (Ir.U_not, a) ->
      let ga = go a in
      fun () ->
        let ta, fa = ga () in
        (fa, ta)
    | Ir.Binop (Ir.B_eq, _, a, b) ->
      let fa = expr a and fb = expr b in
      fun () ->
        let d = Float.abs (fa () -. fb ()) in
        if d = 0.0 then (0.0, k) else (d, 0.0)
    | Ir.Binop (Ir.B_ne, _, a, b) ->
      let fa = expr a and fb = expr b in
      fun () ->
        let d = Float.abs (fa () -. fb ()) in
        if d = 0.0 then (k, 0.0) else (0.0, d)
    | Ir.Binop (Ir.B_lt, _, a, b) ->
      let fa = expr a and fb = expr b in
      fun () ->
        let d = fa () -. fb () in
        if d < 0.0 then (0.0, -.d) else (d +. k, 0.0)
    | Ir.Binop (Ir.B_le, _, a, b) ->
      let fa = expr a and fb = expr b in
      fun () ->
        let d = fa () -. fb () in
        if d <= 0.0 then (0.0, -.d +. k) else (d, 0.0)
    | Ir.Binop (Ir.B_gt, _, a, b) ->
      let fa = expr a and fb = expr b in
      fun () ->
        let d = fb () -. fa () in
        if d < 0.0 then (0.0, -.d) else (d +. k, 0.0)
    | Ir.Binop (Ir.B_ge, _, a, b) ->
      let fa = expr a and fb = expr b in
      fun () ->
        let d = fb () -. fa () in
        if d <= 0.0 then (0.0, -.d +. k) else (d, 0.0)
    | e ->
      let f = expr e in
      fun () -> if f () <> 0.0 then (0.0, k) else (k, 0.0)
  in
  go cond

let compile_stmts hooks store if_counter stmts =
  let expr = compile_expr store in
  let rec go_stmt (s : Ir.stmt) : unit -> unit =
    match s with
    | Ir.Assign (v, e) ->
      let f = expr e in
      let src = Ir.type_of e in
      let dst = v.Ir.vty in
      let id = v.Ir.vid in
      if Dtype.equal src dst && not (Dtype.equal dst Dtype.Float32) then fun () ->
        store.(id) <- f ()
      else fun () -> store.(id) <- convert ~src ~dst (f ())
    | Ir.If { cond; dec = _; then_; else_ } ->
      let if_ix = !if_counter in
      incr if_counter;
      let fc = expr cond in
      let ft = go_block then_ in
      let fe = go_block else_ in
      (match hooks.Hooks.on_branch with
      | Some report ->
        let dist = compile_distance store cond in
        fun () ->
          let taken = fc () <> 0.0 in
          let dt, df = dist () in
          report if_ix taken dt df;
          if taken then ft () else fe ()
      | None -> fun () -> if fc () <> 0.0 then ft () else fe ())
    | Ir.Probe id -> (
      match hooks.Hooks.on_probe with
      | Some f -> fun () -> f id
      | None -> fun () -> ())
    | Ir.Record_cond { dec; cond_ix; value } -> (
      match hooks.Hooks.on_cond with
      | Some f ->
        let fv = expr value in
        fun () -> f dec cond_ix (fv () <> 0.0)
      | None -> fun () -> ())
    | Ir.Record_decision { dec; outcome } -> (
      match hooks.Hooks.on_decision with
      | Some f -> fun () -> f dec outcome
      | None -> fun () -> ())
    | Ir.Comment _ -> fun () -> ()
  and go_block stmts =
    let compiled = Array.of_list (List.map go_stmt stmts) in
    match Array.length compiled with
    | 0 -> fun () -> ()
    | 1 -> compiled.(0)
    | n ->
      fun () ->
        for i = 0 to n - 1 do
          compiled.(i) ()
        done
  in
  go_block stmts

let compile ?(hooks = Hooks.none) (prog : Ir.program) =
  let store = Array.make prog.Ir.n_vars 0.0 in
  let if_counter = ref 0 in
  let init = compile_stmts hooks store if_counter prog.Ir.init in
  let step = compile_stmts hooks store if_counter prog.Ir.step in
  let run_init () =
    Array.fill store 0 (Array.length store) 0.0;
    init ()
  in
  { prog; store; run_init; run_step = step }

let program t = t.prog

let reset t = t.run_init ()

let step t = t.run_step ()

let set_input t i v =
  let var = t.prog.Ir.inputs.(i) in
  t.store.(var.Ir.vid) <- Value.to_float (Value.cast var.Ir.vty v)

let set_input_raw t i f = t.store.(t.prog.Ir.inputs.(i).Ir.vid) <- f

let of_float_exact (ty : Dtype.t) f =
  match ty with
  | Dtype.Bool -> Value.of_bool (f <> 0.0)
  | ty when Dtype.is_integer ty -> Value.of_int ty (int_of_float f)
  | ty -> Value.of_float ty f

let get_output t i =
  let var = t.prog.Ir.outputs.(i) in
  of_float_exact var.Ir.vty t.store.(var.Ir.vid)

let get_var t (v : Ir.var) = of_float_exact v.Ir.vty t.store.(v.Ir.vid)

let read_raw t vid = t.store.(vid)
