open Cftcg_model

let ctype = function
  | Dtype.Bool -> "uint8_T"
  | Dtype.Int8 -> "int8_T"
  | Dtype.UInt8 -> "uint8_T"
  | Dtype.Int16 -> "int16_T"
  | Dtype.UInt16 -> "uint16_T"
  | Dtype.Int32 -> "int32_T"
  | Dtype.UInt32 -> "uint32_T"
  | Dtype.Float32 -> "real32_T"
  | Dtype.Float64 -> "real_T"

let sanitize name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c else '_') name

let var_name (v : Ir.var) = Printf.sprintf "%s_v%d" (sanitize v.Ir.vname) v.Ir.vid

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let const_lit (v : Value.t) =
  match v with
  | Value.VBool b -> if b then "1" else "0"
  | Value.VInt (Dtype.UInt32, n) -> Printf.sprintf "%dU" n
  | Value.VInt (_, n) -> string_of_int n
  | Value.VFloat (Dtype.Float32, f) -> float_lit f ^ "F"
  | Value.VFloat (_, f) -> float_lit f

let sat_fn = function
  | Dtype.Int8 -> "cftcg_sat_i8"
  | Dtype.UInt8 -> "cftcg_sat_u8"
  | Dtype.Int16 -> "cftcg_sat_i16"
  | Dtype.UInt16 -> "cftcg_sat_u16"
  | Dtype.Int32 -> "cftcg_sat_i32"
  | Dtype.UInt32 -> "cftcg_sat_u32"
  | Dtype.Bool | Dtype.Float32 | Dtype.Float64 -> assert false

(* Conversion of [operand] (static type [src]) into [dst], using the
   saturating helpers when narrowing from floating point — plain C
   casts would be undefined behaviour out of range. *)
let cast_fmt ~src ~dst operand =
  match dst with
  | Dtype.Bool -> Printf.sprintf "((%s) != 0 ? 1 : 0)" operand
  | dst when Dtype.is_integer dst ->
    if Dtype.is_float src then Printf.sprintf "%s(%s)" (sat_fn dst) operand
    else Printf.sprintf "((%s)%s)" (ctype dst) operand
  | dst -> Printf.sprintf "((%s)%s)" (ctype dst) operand

let unop_fmt op operand =
  match op with
  | Ir.U_neg -> Printf.sprintf "(-%s)" operand
  | Ir.U_not -> Printf.sprintf "(!%s)" operand
  | Ir.U_abs -> Printf.sprintf "cftcg_abs(%s)" operand
  | Ir.U_cast _ -> operand (* handled with type context in expr_str *)
  | Ir.U_floor -> Printf.sprintf "floor(%s)" operand
  | Ir.U_ceil -> Printf.sprintf "ceil(%s)" operand
  | Ir.U_round -> Printf.sprintf "round(%s)" operand
  | Ir.U_trunc -> Printf.sprintf "trunc(%s)" operand
  | Ir.U_exp -> Printf.sprintf "exp(%s)" operand
  | Ir.U_log -> Printf.sprintf "cftcg_safe_log(%s)" operand
  | Ir.U_log10 -> Printf.sprintf "cftcg_safe_log10(%s)" operand
  | Ir.U_sqrt -> Printf.sprintf "cftcg_safe_sqrt(%s)" operand
  | Ir.U_sin -> Printf.sprintf "sin(%s)" operand
  | Ir.U_cos -> Printf.sprintf "cos(%s)" operand

let binop_sym = function
  | Ir.B_add -> "+"
  | Ir.B_sub -> "-"
  | Ir.B_mul -> "*"
  | Ir.B_and -> "&&"
  | Ir.B_or -> "||"
  | Ir.B_eq -> "=="
  | Ir.B_ne -> "!="
  | Ir.B_lt -> "<"
  | Ir.B_le -> "<="
  | Ir.B_gt -> ">"
  | Ir.B_ge -> ">="
  | Ir.B_div | Ir.B_rem | Ir.B_min | Ir.B_max -> assert false

let rec expr_str (e : Ir.expr) =
  match e with
  | Ir.Const v -> const_lit v
  | Ir.Read v -> var_name v
  | Ir.Unop (Ir.U_cast dst, a) -> cast_fmt ~src:(Ir.type_of a) ~dst (expr_str a)
  | Ir.Unop (op, a) -> unop_fmt op (expr_str a)
  | Ir.Binop (Ir.B_div, ty, a, b) ->
    Printf.sprintf "cftcg_safe_div_%s(%s, %s)" (if Dtype.is_float ty then "f" else "i") (expr_str a)
      (expr_str b)
  | Ir.Binop (Ir.B_rem, ty, a, b) ->
    Printf.sprintf "cftcg_safe_rem_%s(%s, %s)" (if Dtype.is_float ty then "f" else "i") (expr_str a)
      (expr_str b)
  | Ir.Binop (Ir.B_min, _, a, b) -> Printf.sprintf "cftcg_min(%s, %s)" (expr_str a) (expr_str b)
  | Ir.Binop (Ir.B_max, _, a, b) -> Printf.sprintf "cftcg_max(%s, %s)" (expr_str a) (expr_str b)
  | Ir.Binop (op, ty, a, b) -> (
    match op with
    | Ir.B_add | Ir.B_sub | Ir.B_mul ->
      let src =
        if Dtype.is_float (Ir.type_of a) || Dtype.is_float (Ir.type_of b) then Dtype.Float64
        else Dtype.Int32
      in
      cast_fmt ~src ~dst:ty (Printf.sprintf "(%s %s %s)" (expr_str a) (binop_sym op) (expr_str b))
    | _ -> Printf.sprintf "(%s %s %s)" (expr_str a) (binop_sym op) (expr_str b))
  | Ir.Select (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_str c) (expr_str a) (expr_str b)

let emit_stmts buf indent stmts =
  let pad depth = String.make (2 * depth) ' ' in
  let line depth fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad depth ^ s ^ "\n")) fmt in
  let rec emit depth (s : Ir.stmt) =
    match s with
    | Ir.Assign (v, e) ->
      line depth "%s = %s;" (var_name v) (cast_fmt ~src:(Ir.type_of e) ~dst:v.Ir.vty (expr_str e))
    | Ir.If { cond; dec = _; then_; else_ } ->
      line depth "if (%s) {" (expr_str cond);
      List.iter (emit (depth + 1)) then_;
      (match else_ with
      | [] -> line depth "}"
      | else_ ->
        line depth "} else {";
        List.iter (emit (depth + 1)) else_;
        line depth "}")
    | Ir.Probe id -> line depth "CoverageStatistics(%d);" id
    | Ir.Record_cond { dec; cond_ix; value } ->
      line depth "CoverageCondition(%d, %d, (%s) != 0);" dec cond_ix (expr_str value)
    | Ir.Record_decision { dec; outcome } -> line depth "CoverageDecision(%d, %d);" dec outcome
    | Ir.Comment c -> line depth "/* %s */" c
  in
  List.iter (emit indent) stmts

let preamble =
  String.concat "\n"
    [ "#include <stdint.h>";
      "#include <string.h>";
      "#include <math.h>";
      "";
      "typedef uint8_t uint8_T;  typedef int8_t int8_T;";
      "typedef uint16_t uint16_T; typedef int16_t int16_T;";
      "typedef uint32_t uint32_T; typedef int32_t int32_T;";
      "typedef float real32_T;   typedef double real_T;";
      "";
      "/* Model-level branch instrumentation interface (paper Fig. 4). */";
      "extern void CoverageStatistics(int branchId);";
      "extern void CoverageCondition(int decisionId, int condIx, int value);";
      "extern void CoverageDecision(int decisionId, int outcome);";
      "";
      "#define cftcg_abs(x) ((x) < 0 ? -(x) : (x))";
      "#define cftcg_min(a, b) ((a) <= (b) ? (a) : (b))";
      "#define cftcg_max(a, b) ((a) >= (b) ? (a) : (b))";
      "#define cftcg_safe_div_i(a, b) ((b) == 0 ? 0 : (a) / (b))";
      "#define cftcg_safe_div_f(a, b) ((b) == 0.0 ? 0.0 : (a) / (b))";
      "#define cftcg_safe_rem_i(a, b) ((b) == 0 ? 0 : (a) % (b))";
      "#define cftcg_safe_rem_f(a, b) ((b) == 0.0 ? 0.0 : fmod((a), (b)))";
      "#define cftcg_safe_log(x) ((x) <= 0.0 ? 0.0 : log(x))";
      "#define cftcg_safe_log10(x) ((x) <= 0.0 ? 0.0 : log10(x))";
      "#define cftcg_safe_sqrt(x) ((x) < 0.0 ? 0.0 : sqrt(x))";
      "";
      "/* Saturating float-to-integer conversions: the guards Simulink";
      "   emits around casts with 'saturate on integer overflow'. */";
      "#define CFTCG_SAT(name, T, LO, HI) \\";
      "  static T name(double x) { \\";
      "    if (x != x) return (T)0; \\";
      "    if (x <= (double)(LO)) return (T)(LO); \\";
      "    if (x >= (double)(HI)) return (T)(HI); \\";
      "    return (T)x; \\";
      "  }";
      "CFTCG_SAT(cftcg_sat_i8, int8_T, -128, 127)";
      "CFTCG_SAT(cftcg_sat_u8, uint8_T, 0, 255)";
      "CFTCG_SAT(cftcg_sat_i16, int16_T, -32768, 32767)";
      "CFTCG_SAT(cftcg_sat_u16, uint16_T, 0, 65535)";
      "CFTCG_SAT(cftcg_sat_i32, int32_T, -2147483647 - 1, 2147483647)";
      "CFTCG_SAT(cftcg_sat_u32, uint32_T, 0U, 4294967295U)";
      "" ]

let emit_program (p : Ir.program) =
  let buf = Buffer.create 4096 in
  let name = sanitize p.Ir.prog_name in
  Buffer.add_string buf (Printf.sprintf "/* Generated fuzz code for model %s. */\n" p.Ir.prog_name);
  Buffer.add_string buf preamble;
  Buffer.add_string buf "\n/* Persistent model state. */\n";
  let declared = Hashtbl.create 64 in
  let declare (v : Ir.var) prefix =
    if not (Hashtbl.mem declared v.Ir.vid) then begin
      Hashtbl.replace declared v.Ir.vid ();
      Buffer.add_string buf (Printf.sprintf "%s%s %s;\n" prefix (ctype v.Ir.vty) (var_name v))
    end
  in
  Array.iter (fun v -> declare v "static ") p.Ir.states;
  Array.iter (fun v -> declare v "static ") p.Ir.outputs;
  Buffer.add_string buf "\n/* Scratch signals. */\n";
  let rec declare_stmt_vars (s : Ir.stmt) =
    match s with
    | Ir.Assign (v, _) -> declare v "static "
    | Ir.If { then_; else_; _ } ->
      List.iter declare_stmt_vars then_;
      List.iter declare_stmt_vars else_
    | Ir.Probe _ | Ir.Record_cond _ | Ir.Record_decision _ | Ir.Comment _ -> ()
  in
  Array.iter (fun v -> declare v "static ") p.Ir.inputs;
  List.iter declare_stmt_vars p.Ir.init;
  List.iter declare_stmt_vars p.Ir.step;
  Buffer.add_string buf (Printf.sprintf "\nvoid %s_init(void) {\n" name);
  emit_stmts buf 1 p.Ir.init;
  Buffer.add_string buf "}\n";
  let params =
    Array.to_list p.Ir.inputs
    |> List.map (fun (v : Ir.var) -> Printf.sprintf "%s arg_%s" (ctype v.Ir.vty) (var_name v))
  in
  let params_str = if params = [] then "void" else String.concat ", " params in
  Buffer.add_string buf (Printf.sprintf "\nvoid %s_step(%s) {\n" name params_str);
  Array.iter
    (fun (v : Ir.var) ->
      Buffer.add_string buf (Printf.sprintf "  %s = arg_%s;\n" (var_name v) (var_name v)))
    p.Ir.inputs;
  emit_stmts buf 1 p.Ir.step;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let emit_fuzz_driver (p : Ir.program) =
  let buf = Buffer.create 2048 in
  let name = sanitize p.Ir.prog_name in
  let fields = Array.to_list p.Ir.inputs in
  let tuple_len =
    List.fold_left (fun acc (v : Ir.var) -> acc + Dtype.size_bytes v.Ir.vty) 0 fields
  in
  Buffer.add_string buf
    (Printf.sprintf "/* Fuzz driver for model %s (paper Fig. 3). */\n" p.Ir.prog_name);
  Buffer.add_string buf "#include <stddef.h>\n#include <stdint.h>\n#include <string.h>\n\n";
  Buffer.add_string buf
    (Printf.sprintf "int LLVMFuzzerTestOneInput(const uint8_t *data, size_t size) {\n");
  Buffer.add_string buf
    (Printf.sprintf "  const int dataLen = %d; /* bytes consumed per model iteration */\n" tuple_len);
  Buffer.add_string buf (Printf.sprintf "  size_t i = 0;\n");
  Buffer.add_string buf (Printf.sprintf "  %s_init();\n" name);
  Buffer.add_string buf "  while (1) {\n";
  Buffer.add_string buf "    if ((i + 1) * dataLen > size) {\n";
  Buffer.add_string buf "      break; /* trailing bytes cannot fill every inport: discard */\n";
  Buffer.add_string buf "    }\n";
  List.iter
    (fun (v : Ir.var) ->
      Buffer.add_string buf
        (Printf.sprintf "    %s %s = 0; /* model inport */\n" (ctype v.Ir.vty) (var_name v)))
    fields;
  let offset = ref 0 in
  List.iter
    (fun (v : Ir.var) ->
      Buffer.add_string buf
        (Printf.sprintf "    memcpy(&%s, data + i * dataLen + %d, %d);\n" (var_name v) !offset
           (Dtype.size_bytes v.Ir.vty));
      offset := !offset + Dtype.size_bytes v.Ir.vty)
    fields;
  Buffer.add_string buf
    (Printf.sprintf "    %s_step(%s); /* model iteration */\n" name
       (String.concat ", " (List.map var_name fields)));
  Buffer.add_string buf "    i++;\n";
  Buffer.add_string buf "  }\n  return 0;\n}\n";
  Buffer.contents buf

let emit_test_harness (p : Ir.program) =
  let buf = Buffer.create 2048 in
  let name = sanitize p.Ir.prog_name in
  let fields = Array.to_list p.Ir.inputs in
  let tuple_len =
    List.fold_left (fun acc (v : Ir.var) -> acc + Dtype.size_bytes v.Ir.vty) 0 fields
  in
  Buffer.add_string buf "\n/* Differential-test harness. */\n";
  Buffer.add_string buf "#include <stdio.h>\n#include <stdlib.h>\n\n";
  Buffer.add_string buf "void CoverageStatistics(int branchId) { (void)branchId; }\n";
  Buffer.add_string buf
    "void CoverageCondition(int decisionId, int condIx, int value) { (void)decisionId; (void)condIx; (void)value; }\n";
  Buffer.add_string buf
    "void CoverageDecision(int decisionId, int outcome) { (void)decisionId; (void)outcome; }\n\n";
  Buffer.add_string buf "static int hex_digit(char c) {\n";
  Buffer.add_string buf
    "  if (c >= '0' && c <= '9') return c - '0';\n  if (c >= 'a' && c <= 'f') return c - 'a' + 10;\n  return -1;\n}\n\n";
  Buffer.add_string buf "int main(int argc, char **argv) {\n";
  Buffer.add_string buf "  if (argc < 2) return 1;\n";
  Buffer.add_string buf "  const char *hex = argv[1];\n";
  Buffer.add_string buf "  size_t hexlen = 0; while (hex[hexlen]) hexlen++;\n";
  Buffer.add_string buf "  size_t len = hexlen / 2;\n";
  Buffer.add_string buf "  uint8_t *data = (uint8_t *)malloc(len ? len : 1);\n";
  Buffer.add_string buf "  for (size_t k = 0; k < len; k++) {\n";
  Buffer.add_string buf
    "    int hi = hex_digit(hex[2 * k]), lo = hex_digit(hex[2 * k + 1]);\n";
  Buffer.add_string buf "    if (hi < 0 || lo < 0) return 2;\n";
  Buffer.add_string buf "    data[k] = (uint8_t)((hi << 4) | lo);\n  }\n";
  Buffer.add_string buf (Printf.sprintf "  const size_t dataLen = %d;\n" tuple_len);
  Buffer.add_string buf (Printf.sprintf "  %s_init();\n" name);
  Buffer.add_string buf "  size_t i = 0;\n";
  Buffer.add_string buf "  while ((i + 1) * dataLen <= len) {\n";
  List.iter
    (fun (v : Ir.var) ->
      Buffer.add_string buf
        (Printf.sprintf "    %s in_%s = 0;\n" (ctype v.Ir.vty) (var_name v)))
    fields;
  let offset = ref 0 in
  List.iter
    (fun (v : Ir.var) ->
      Buffer.add_string buf
        (Printf.sprintf "    memcpy(&in_%s, data + i * dataLen + %d, %d);\n" (var_name v) !offset
           (Dtype.size_bytes v.Ir.vty));
      offset := !offset + Dtype.size_bytes v.Ir.vty)
    fields;
  Buffer.add_string buf
    (Printf.sprintf "    %s_step(%s);\n" name
       (String.concat ", " (List.map (fun v -> "in_" ^ var_name v) fields)));
  Array.iter
    (fun (v : Ir.var) ->
      Buffer.add_string buf
        (Printf.sprintf "    printf(\"%%.17g \", (double)%s);\n" (var_name v)))
    p.Ir.outputs;
  Buffer.add_string buf "    printf(\"\\n\");\n";
  Buffer.add_string buf "    i++;\n  }\n";
  Buffer.add_string buf "  free(data);\n  return 0;\n}\n";
  Buffer.contents buf

let emit_all p = emit_program p ^ "\n" ^ emit_fuzz_driver p
