(** IR → flat bytecode linearizer.

    Flattens an {!Ir.program}'s [init]/[step] blocks into
    three-address bytecode over an int-indexed register file of
    unboxed floats, executed by {!Ir_vm}:

    - variables keep their [vid] as register index, temporaries and a
      deduplicated constant pool sit above them;
    - [If] statements become resolved conditional jumps;
    - probe / condition / decision records become dedicated
      instructions (emitted only when the chosen instrumentation
      needs them, so uninstrumented execution pays nothing);
    - dtype-dependent semantics (integer wrap masks, saturation
      bounds, float32 rounding) are baked into operand slots at
      lowering time.

    Semantics are bit-identical to {!Ir_compile} and {!Ir_eval}; the
    differential test suite enforces this on random programs. *)

type instrumentation = {
  probe_hook : bool;
      (** probes also call the [on_probe] hook (the coverage-buffer
          write happens either way) *)
  cond : bool;  (** emit [Record_cond] instructions *)
  decision : bool;  (** emit [Record_decision] instructions *)
  branch : bool;  (** emit a branch-hook instruction before every [If] *)
}

val no_instrumentation : instrumentation

type t = {
  l_prog : Ir.program;
  l_init : int array;
  l_step : int array;
  l_n_regs : int;  (** register-file size: vars + temps + consts *)
  l_const_base : int;  (** first constant register *)
  l_consts : float array;  (** pool values, blitted in at reset *)
  l_ifs : Ir.expr array;
      (** condition expression of every [If] in depth-first order
          (init before step, then-arm before else-arm) — the same
          numbering {!Ir_compile} and {!Ir_eval} report through
          [Hooks.on_branch] *)
}

val linearize : ?instrument:instrumentation -> Ir.program -> t

val code_size : t -> int
(** Total instruction-stream length (init + step), in int slots. *)

(** Opcode numbers, exposed for {!Ir_vm}'s dispatch loop and for
    tests. Operand counts are fixed per opcode. *)

val op_mov : int
val op_add_f : int
val op_sub_f : int
val op_mul_f : int
val op_div_f : int
val op_rem_f : int
val op_add_i : int
val op_sub_i : int
val op_mul_i : int
val op_div_i : int
val op_rem_i : int
val op_neg_f : int
val op_neg_i : int
val op_abs_f : int
val op_abs_i : int
val op_not : int
val op_to_bool : int
val op_round_f32 : int
val op_f2i_sat : int
val op_wrap_i : int
val op_floor : int
val op_ceil : int
val op_round : int
val op_trunc : int
val op_exp : int
val op_log : int
val op_log10 : int
val op_sqrt : int
val op_sin : int
val op_cos : int
val op_cmp_eq : int
val op_cmp_ne : int
val op_cmp_lt : int
val op_cmp_le : int
val op_cmp_gt : int
val op_cmp_ge : int
val op_and : int
val op_or : int
val op_select : int
val op_jmp : int
val op_jz : int
val op_probe : int
val op_probe_h : int
val op_cond : int
val op_decision : int
val op_branch_h : int
val op_halt : int

(** Superinstructions — emitted only by {!Ir_opt}'s bytecode fusion
    pass, never by the linearizer. The compare-and-jump forms replace
    a [cmp_*; jz] pair and jump when the comparison is {e false}. *)

val op_jlt : int
val op_jle : int
val op_jeq : int
val op_jne : int
val op_jgt : int
val op_jge : int
val op_jnz : int
val op_add_f32 : int
val op_sub_f32 : int
val op_mul_f32 : int
val op_div_f32 : int
val op_probe_jmp : int
val op_mov_jmp : int

(** Probe-carrying conditional branches: a fused compare-and-jump (or
    [jz]/[jnz]) whose fall-through successor is an [op_probe] — the
    probe fires only when the branch falls through, exactly as the
    unfused pair behaved. Layout [op, a, b, id, target] for the
    compare forms, [op, r, id, target] for [op_jz_p]/[op_jnz_p]. *)

val op_jlt_p : int
val op_jle_p : int
val op_jeq_p : int
val op_jne_p : int
val op_jgt_p : int
val op_jge_p : int
val op_jz_p : int
val op_jnz_p : int

val n_opcodes : int
(** One past the highest opcode number. *)
