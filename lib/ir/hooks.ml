type t = {
  on_probe : (int -> unit) option;
  on_cond : (int -> int -> bool -> unit) option;
  on_decision : (int -> int -> unit) option;
  on_branch : (int -> bool -> float -> float -> unit) option;
}

let none = { on_probe = None; on_cond = None; on_decision = None; on_branch = None }

let probes_only f = { none with on_probe = Some f }
