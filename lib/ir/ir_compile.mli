(** Closure compiler for IR programs.

    This is the reproduction's stand-in for "compile the generated C
    with Clang -O2": the program is translated once into OCaml
    closures over an unboxed float store, giving the orders-of-
    magnitude speed advantage over graph interpretation that the
    paper's fuzzing loop relies on (26,000 vs 6 iterations per second
    on SolarPV, §4).

    Semantics match {!Ir_eval} exactly — the test suite checks this
    differentially. Hooks are baked in at compile time, so disabled
    observations cost nothing. *)

open Cftcg_model

type t

val compile : ?hooks:Hooks.t -> Ir.program -> t
(** Compiles the program. The returned instance owns its store;
    compile again for an independent instance. *)

val program : t -> Ir.program

val reset : t -> unit
(** Zeroes the store and runs [init]. *)

val step : t -> unit
(** One model iteration. *)

val set_input : t -> int -> Value.t -> unit
val set_input_raw : t -> int -> float -> unit
(** Fast path: the float must already be an exact member of the
    inport dtype's value set (e.g. produced by {!Value.decode} +
    {!Value.to_float}). *)

val get_output : t -> int -> Value.t
val get_var : t -> Ir.var -> Value.t
val read_raw : t -> int -> float
(** Raw store access by variable id. *)

val compile_distance : float array -> Ir.expr -> unit -> float * float
(** Compiles a branch condition into a (distance-to-true,
    distance-to-false) thunk over the given store (Korel-style, K=1).
    Shared with {!Ir_vm}, whose register file places variables at
    their [vid] just like the closure store. *)
