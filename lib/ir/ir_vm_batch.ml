open Cftcg_model

(* K-lane lockstep bytecode VM — executes K independent inputs through
   one instruction stream over a structure-of-arrays register file.

   The scalar VM ({!Ir_vm}) pays one dispatch + operand decode per
   instruction per input. Here a group of lanes at the same pc pays
   that cost once and then runs the arm body per lane over a flat
   float64 plane (register [r], lane [l] lives at [r * k + l], so one
   instruction touches k adjacent cells — the cache-friendly
   direction). Conditional branches partition the group: if all lanes
   agree the group continues batched; otherwise the branch's pc gets
   a divergence tick and the group splits into two adjacent slices of
   the lane arena (a stable in-place partition, fall-through lanes
   first). Model bytecode jumps only forward, so the two slices
   reconverge: the lower-pc slice runs batched until it reaches the
   other slice's pc, the slices merge zero-copy (they are adjacent),
   and execution continues batched — lanes re-gain lockstep as soon
   as control flow rejoins, not only at the next [step] call. A slice
   parked on [halt] is terminal; the other runs out on its own.

   Per-lane semantics are bit-identical to {!Ir_vm}: arm formulas are
   copied verbatim (the batched differential suite holds them
   bit-identical), and each lane's probe dirty list records fires in
   that lane's own execution order. Hook-carrying instrumentation
   (probe_h / cond / decision / branch_h) is not supported: this VM
   exists for the fuzzing hot path, which compiles without hooks. *)

module L = Ir_linearize

type regfile = float array

(* Packed probe coverage for K lanes: the fired byte for probe [id] in
   lane [l] is at [id * k + l] (lane-minor, so one probe instruction
   touches k adjacent bytes), plus per-lane dirty lists mirroring
   {!Ir_vm.probes}. *)
type probes = {
  bp_k : int;
  bp_fired : Bytes.t;  (* n_probes * k *)
  bp_dirty : int array array;  (* per lane: fired ids, insertion order *)
  bp_n : int array;  (* per lane fill count *)
}

type t = {
  lin : L.t;
  k : int;
  regs : regfile;
  mutable probes : probes;
  act : int array;  (* arena: lane indices; groups are adjacent slices *)
  scratch : int array;  (* split scratch for stable slice partition *)
  d_init : int array;  (* divergence splits per init pc *)
  d_step : int array;  (* divergence splits per step pc *)
}

let make_probes ~k n =
  {
    bp_k = k;
    bp_fired = Bytes.make (n * k) '\000';
    bp_dirty = Array.init k (fun _ -> Array.make n 0);
    bp_n = Array.make k 0;
  }

let clear_lane p ~lane =
  let k = p.bp_k in
  let dirty = Array.unsafe_get p.bp_dirty lane in
  for j = 0 to p.bp_n.(lane) - 1 do
    Bytes.unsafe_set p.bp_fired ((Array.unsafe_get dirty j * k) + lane) '\000'
  done;
  p.bp_n.(lane) <- 0

let clear_probes p =
  for l = 0 to p.bp_k - 1 do
    clear_lane p ~lane:l
  done

let compile ?(optimize = true) ~k (prog : Ir.program) =
  if k < 1 || k > 64 then invalid_arg "Ir_vm_batch.compile: k must be in 1..64";
  let lin = L.linearize ~instrument:L.no_instrumentation prog in
  let lin = if optimize then Ir_opt.optimize_bytecode lin else lin in
  let n_regs = max lin.L.l_n_regs 1 in
  let regs = Array.make (n_regs * k) 0.0 in
  Array.fill regs 0 (Array.length regs) 0.0;
  {
    lin;
    k;
    regs;
    probes = make_probes ~k (max prog.Ir.n_probes 1);
    act = Array.init k (fun l -> l);
    scratch = Array.make k 0;
    d_init = Array.make (max (Array.length lin.L.l_init) 1) 0;
    d_step = Array.make (max (Array.length lin.L.l_step) 1) 0;
  }

let k bvm = bvm.k
let program bvm = bvm.lin.L.l_prog
let linearized bvm = bvm.lin
let code_size bvm = L.code_size bvm.lin

(* same two's-complement wrap as Ir_vm *)
let[@inline] wrap n mask half =
  let m = n land mask in
  if m >= half then m - (mask + 1) else m

let[@inline] fire pb k id l =
  let cell = (id * k) + l in
  if Bytes.unsafe_get pb.bp_fired cell = '\000' then begin
    Bytes.unsafe_set pb.bp_fired cell '\001';
    let n = Array.unsafe_get pb.bp_n l in
    Array.unsafe_set (Array.unsafe_get pb.bp_dirty l) n id;
    Array.unsafe_set pb.bp_n l (n + 1)
  end

(* The dispatch loop. Lane groups are adjacent slices of the [arena]
   array: [go stop i base n] runs [arena.(base .. base+n-1)] from pc
   [i] until the whole slice parks at one pc — at [stop] or at a
   [halt] — and returns that pc. Per-lane arm formulas are copied
   verbatim from Ir_vm.exec.

   Conditional branches count the jumping lanes first: a unanimous
   group continues batched. A divergent one records a split at
   [divs.(pc)] (for `cftcg ir --batch`) and stable-partitions the
   slice in place — fall-through lanes first, jumping lanes after —
   into two adjacent sub-slices, which [converge] then RECONVERGES:
   jumps are forward-only (the IR has no loops), so repeatedly
   advancing the lower-pc sub-slice until it reaches the higher one
   must make the two meet, at which point they merge zero-copy (the
   slices are adjacent) and continue batched. A short then/else
   diamond therefore costs only its own length of split execution,
   not scalar execution to the end of the block. *)
let exec bvm code (divs : int array) (arena : int array) n0 =
  let k = bvm.k in
  let regs = bvm.regs in
  let pb = bvm.probes in
  let scratch = bvm.scratch in
  let rec go stop i base n =
    if i >= stop then i
    else
    match Array.unsafe_get code i with
    | 0 (* mov *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l) (Array.unsafe_get regs (s + l))
      done;
      go stop (i + 3) base n
    | 1 (* add_f *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l) (Array.unsafe_get regs (x + l) +. Array.unsafe_get regs (y + l))
      done;
      go stop (i + 4) base n
    | 2 (* sub_f *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l) (Array.unsafe_get regs (x + l) -. Array.unsafe_get regs (y + l))
      done;
      go stop (i + 4) base n
    | 3 (* mul_f *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l) (Array.unsafe_get regs (x + l) *. Array.unsafe_get regs (y + l))
      done;
      go stop (i + 4) base n
    | 4 (* div_f *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let yv = Array.unsafe_get regs (y + l) in
        Array.unsafe_set regs (d + l) (if yv = 0.0 then 0.0 else Array.unsafe_get regs (x + l) /. yv)
      done;
      go stop (i + 4) base n
    | 5 (* rem_f *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let yv = Array.unsafe_get regs (y + l) in
        Array.unsafe_set regs (d + l)
          (if yv = 0.0 then 0.0 else Float.rem (Array.unsafe_get regs (x + l)) yv)
      done;
      go stop (i + 4) base n
    | 6 (* add_i *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      let mask = Array.unsafe_get code (i + 4) in
      let half = Array.unsafe_get code (i + 5) in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let v =
          int_of_float (Array.unsafe_get regs (x + l)) + int_of_float (Array.unsafe_get regs (y + l))
        in
        Array.unsafe_set regs (d + l) (float_of_int (wrap v mask half))
      done;
      go stop (i + 6) base n
    | 7 (* sub_i *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      let mask = Array.unsafe_get code (i + 4) in
      let half = Array.unsafe_get code (i + 5) in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let v =
          int_of_float (Array.unsafe_get regs (x + l)) - int_of_float (Array.unsafe_get regs (y + l))
        in
        Array.unsafe_set regs (d + l) (float_of_int (wrap v mask half))
      done;
      go stop (i + 6) base n
    | 8 (* mul_i *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      let mask = Array.unsafe_get code (i + 4) in
      let half = Array.unsafe_get code (i + 5) in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let v =
          int_of_float (Array.unsafe_get regs (x + l)) * int_of_float (Array.unsafe_get regs (y + l))
        in
        Array.unsafe_set regs (d + l) (float_of_int (wrap v mask half))
      done;
      go stop (i + 6) base n
    | 9 (* div_i *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      let mask = Array.unsafe_get code (i + 4) in
      let half = Array.unsafe_get code (i + 5) in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let xv = int_of_float (Array.unsafe_get regs (x + l)) in
        let yv = int_of_float (Array.unsafe_get regs (y + l)) in
        let v = if yv = 0 then 0 else xv / yv in
        Array.unsafe_set regs (d + l) (float_of_int (wrap v mask half))
      done;
      go stop (i + 6) base n
    | 10 (* rem_i *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      let mask = Array.unsafe_get code (i + 4) in
      let half = Array.unsafe_get code (i + 5) in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let xv = int_of_float (Array.unsafe_get regs (x + l)) in
        let yv = int_of_float (Array.unsafe_get regs (y + l)) in
        let v = if yv = 0 then 0 else xv mod yv in
        Array.unsafe_set regs (d + l) (float_of_int (wrap v mask half))
      done;
      go stop (i + 6) base n
    | 11 (* neg_f *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l) (-.Array.unsafe_get regs (s + l))
      done;
      go stop (i + 3) base n
    | 12 (* neg_i *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      let mask = Array.unsafe_get code (i + 3) in
      let half = Array.unsafe_get code (i + 4) in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (float_of_int (wrap (-int_of_float (Array.unsafe_get regs (s + l))) mask half))
      done;
      go stop (i + 5) base n
    | 13 (* abs_f *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l) (Float.abs (Array.unsafe_get regs (s + l)))
      done;
      go stop (i + 3) base n
    | 14 (* abs_i *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      let mask = Array.unsafe_get code (i + 3) in
      let half = Array.unsafe_get code (i + 4) in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (float_of_int (wrap (Int.abs (int_of_float (Array.unsafe_get regs (s + l)))) mask half))
      done;
      go stop (i + 5) base n
    | 15 (* not *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l) (if Array.unsafe_get regs (s + l) <> 0.0 then 0.0 else 1.0)
      done;
      go stop (i + 3) base n
    | 16 (* to_bool *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l) (if Array.unsafe_get regs (s + l) <> 0.0 then 1.0 else 0.0)
      done;
      go stop (i + 3) base n
    | 17 (* round_f32 *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (Value.normalize_float Dtype.Float32 (Array.unsafe_get regs (s + l)))
      done;
      go stop (i + 3) base n
    | 18 (* f2i_sat *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      let lo = Array.unsafe_get code (i + 3) * k in
      let hi = Array.unsafe_get code (i + 4) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let f = Array.unsafe_get regs (s + l) in
        let r =
          if Float.is_nan f then 0.0
          else begin
            let t = Float.trunc f in
            let lov = Array.unsafe_get regs (lo + l) in
            let hiv = Array.unsafe_get regs (hi + l) in
            if t <= lov then lov else if t >= hiv then hiv else t
          end
        in
        Array.unsafe_set regs (d + l) r
      done;
      go stop (i + 5) base n
    | 19 (* wrap_i *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      let mask = Array.unsafe_get code (i + 3) in
      let half = Array.unsafe_get code (i + 4) in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (float_of_int (wrap (int_of_float (Array.unsafe_get regs (s + l))) mask half))
      done;
      go stop (i + 5) base n
    | 20 (* floor *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l) (Float.floor (Array.unsafe_get regs (s + l)))
      done;
      go stop (i + 3) base n
    | 21 (* ceil *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l) (Float.ceil (Array.unsafe_get regs (s + l)))
      done;
      go stop (i + 3) base n
    | 22 (* round *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l) (Float.round (Array.unsafe_get regs (s + l)))
      done;
      go stop (i + 3) base n
    | 23 (* trunc *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l) (Float.trunc (Array.unsafe_get regs (s + l)))
      done;
      go stop (i + 3) base n
    | 24 (* exp *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let v = Float.exp (Array.unsafe_get regs (s + l)) in
        Array.unsafe_set regs (d + l) (if Float.is_nan v then 0.0 else v)
      done;
      go stop (i + 3) base n
    | 25 (* log *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let x = Array.unsafe_get regs (s + l) in
        Array.unsafe_set regs (d + l) (if x <= 0.0 then 0.0 else Float.log x)
      done;
      go stop (i + 3) base n
    | 26 (* log10 *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let x = Array.unsafe_get regs (s + l) in
        Array.unsafe_set regs (d + l) (if x <= 0.0 then 0.0 else Float.log10 x)
      done;
      go stop (i + 3) base n
    | 27 (* sqrt *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let x = Array.unsafe_get regs (s + l) in
        Array.unsafe_set regs (d + l) (if x < 0.0 then 0.0 else Float.sqrt x)
      done;
      go stop (i + 3) base n
    | 28 (* sin *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let v = Float.sin (Array.unsafe_get regs (s + l)) in
        Array.unsafe_set regs (d + l) (if Float.is_nan v then 0.0 else v)
      done;
      go stop (i + 3) base n
    | 29 (* cos *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let v = Float.cos (Array.unsafe_get regs (s + l)) in
        Array.unsafe_set regs (d + l) (if Float.is_nan v then 0.0 else v)
      done;
      go stop (i + 3) base n
    | 30 (* cmp_eq *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (if Array.unsafe_get regs (x + l) = Array.unsafe_get regs (y + l) then 1.0 else 0.0)
      done;
      go stop (i + 4) base n
    | 31 (* cmp_ne *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (if Array.unsafe_get regs (x + l) <> Array.unsafe_get regs (y + l) then 1.0 else 0.0)
      done;
      go stop (i + 4) base n
    | 32 (* cmp_lt *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (if Array.unsafe_get regs (x + l) < Array.unsafe_get regs (y + l) then 1.0 else 0.0)
      done;
      go stop (i + 4) base n
    | 33 (* cmp_le *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (if Array.unsafe_get regs (x + l) <= Array.unsafe_get regs (y + l) then 1.0 else 0.0)
      done;
      go stop (i + 4) base n
    | 34 (* cmp_gt *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (if Array.unsafe_get regs (x + l) > Array.unsafe_get regs (y + l) then 1.0 else 0.0)
      done;
      go stop (i + 4) base n
    | 35 (* cmp_ge *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (if Array.unsafe_get regs (x + l) >= Array.unsafe_get regs (y + l) then 1.0 else 0.0)
      done;
      go stop (i + 4) base n
    | 36 (* and *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (if Array.unsafe_get regs (x + l) <> 0.0 && Array.unsafe_get regs (y + l) <> 0.0 then 1.0
           else 0.0)
      done;
      go stop (i + 4) base n
    | 37 (* or *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (if Array.unsafe_get regs (x + l) <> 0.0 || Array.unsafe_get regs (y + l) <> 0.0 then 1.0
           else 0.0)
      done;
      go stop (i + 4) base n
    | 38 (* select *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let c = Array.unsafe_get code (i + 2) * k in
      let x = Array.unsafe_get code (i + 3) * k in
      let y = Array.unsafe_get code (i + 4) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (if Array.unsafe_get regs (c + l) <> 0.0 then Array.unsafe_get regs (x + l)
           else Array.unsafe_get regs (y + l))
      done;
      go stop (i + 5) base n
    | 39 (* jmp *) -> go stop (Array.unsafe_get code (i + 1)) base n
    | 40 (* jz *) ->
      let r = Array.unsafe_get code (i + 1) * k in
      branch stop i base n
        (Array.unsafe_get code (i + 2))
        (i + 3)
        (fun l -> Array.unsafe_get regs (r + l) = 0.0)
    | 41 (* probe *) ->
      let id = Array.unsafe_get code (i + 1) in
      for j = base to base + n - 1 do
        fire pb k id (Array.unsafe_get arena j)
      done;
      go stop (i + 2) base n
    | 46 (* halt *) -> i
    | 47 (* jlt *) ->
      let x = Array.unsafe_get code (i + 1) * k in
      let y = Array.unsafe_get code (i + 2) * k in
      branch stop i base n
        (Array.unsafe_get code (i + 3))
        (i + 4)
        (fun l -> not (Array.unsafe_get regs (x + l) < Array.unsafe_get regs (y + l)))
    | 48 (* jle *) ->
      let x = Array.unsafe_get code (i + 1) * k in
      let y = Array.unsafe_get code (i + 2) * k in
      branch stop i base n
        (Array.unsafe_get code (i + 3))
        (i + 4)
        (fun l -> not (Array.unsafe_get regs (x + l) <= Array.unsafe_get regs (y + l)))
    | 49 (* jeq *) ->
      let x = Array.unsafe_get code (i + 1) * k in
      let y = Array.unsafe_get code (i + 2) * k in
      branch stop i base n
        (Array.unsafe_get code (i + 3))
        (i + 4)
        (fun l -> not (Array.unsafe_get regs (x + l) = Array.unsafe_get regs (y + l)))
    | 50 (* jne *) ->
      let x = Array.unsafe_get code (i + 1) * k in
      let y = Array.unsafe_get code (i + 2) * k in
      branch stop i base n
        (Array.unsafe_get code (i + 3))
        (i + 4)
        (fun l -> not (Array.unsafe_get regs (x + l) <> Array.unsafe_get regs (y + l)))
    | 51 (* jgt *) ->
      let x = Array.unsafe_get code (i + 1) * k in
      let y = Array.unsafe_get code (i + 2) * k in
      branch stop i base n
        (Array.unsafe_get code (i + 3))
        (i + 4)
        (fun l -> not (Array.unsafe_get regs (x + l) > Array.unsafe_get regs (y + l)))
    | 52 (* jge *) ->
      let x = Array.unsafe_get code (i + 1) * k in
      let y = Array.unsafe_get code (i + 2) * k in
      branch stop i base n
        (Array.unsafe_get code (i + 3))
        (i + 4)
        (fun l -> not (Array.unsafe_get regs (x + l) >= Array.unsafe_get regs (y + l)))
    | 53 (* jnz *) ->
      let r = Array.unsafe_get code (i + 1) * k in
      branch stop i base n
        (Array.unsafe_get code (i + 2))
        (i + 3)
        (fun l -> Array.unsafe_get regs (r + l) <> 0.0)
    | 54 (* add_f32 *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (Value.normalize_float Dtype.Float32
             (Array.unsafe_get regs (x + l) +. Array.unsafe_get regs (y + l)))
      done;
      go stop (i + 4) base n
    | 55 (* sub_f32 *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (Value.normalize_float Dtype.Float32
             (Array.unsafe_get regs (x + l) -. Array.unsafe_get regs (y + l)))
      done;
      go stop (i + 4) base n
    | 56 (* mul_f32 *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l)
          (Value.normalize_float Dtype.Float32
             (Array.unsafe_get regs (x + l) *. Array.unsafe_get regs (y + l)))
      done;
      go stop (i + 4) base n
    | 57 (* div_f32 *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let x = Array.unsafe_get code (i + 2) * k in
      let y = Array.unsafe_get code (i + 3) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        let yv = Array.unsafe_get regs (y + l) in
        Array.unsafe_set regs (d + l)
          (Value.normalize_float Dtype.Float32
             (if yv = 0.0 then 0.0 else Array.unsafe_get regs (x + l) /. yv))
      done;
      go stop (i + 4) base n
    | 58 (* probe + jmp *) ->
      let id = Array.unsafe_get code (i + 1) in
      for j = base to base + n - 1 do
        fire pb k id (Array.unsafe_get arena j)
      done;
      go stop (Array.unsafe_get code (i + 2)) base n
    | 59 (* mov + jmp *) ->
      let d = Array.unsafe_get code (i + 1) * k in
      let s = Array.unsafe_get code (i + 2) * k in
      for j = base to base + n - 1 do
        let l = Array.unsafe_get arena j in
        Array.unsafe_set regs (d + l) (Array.unsafe_get regs (s + l))
      done;
      go stop (Array.unsafe_get code (i + 3)) base n
    | 60 (* jlt.p *) ->
      let x = Array.unsafe_get code (i + 1) * k in
      let y = Array.unsafe_get code (i + 2) * k in
      probe_branch stop i base n
        (Array.unsafe_get code (i + 3))
        (Array.unsafe_get code (i + 4))
        (i + 5)
        (fun l -> Array.unsafe_get regs (x + l) < Array.unsafe_get regs (y + l))
    | 61 (* jle.p *) ->
      let x = Array.unsafe_get code (i + 1) * k in
      let y = Array.unsafe_get code (i + 2) * k in
      probe_branch stop i base n
        (Array.unsafe_get code (i + 3))
        (Array.unsafe_get code (i + 4))
        (i + 5)
        (fun l -> Array.unsafe_get regs (x + l) <= Array.unsafe_get regs (y + l))
    | 62 (* jeq.p *) ->
      let x = Array.unsafe_get code (i + 1) * k in
      let y = Array.unsafe_get code (i + 2) * k in
      probe_branch stop i base n
        (Array.unsafe_get code (i + 3))
        (Array.unsafe_get code (i + 4))
        (i + 5)
        (fun l -> Array.unsafe_get regs (x + l) = Array.unsafe_get regs (y + l))
    | 63 (* jne.p *) ->
      let x = Array.unsafe_get code (i + 1) * k in
      let y = Array.unsafe_get code (i + 2) * k in
      probe_branch stop i base n
        (Array.unsafe_get code (i + 3))
        (Array.unsafe_get code (i + 4))
        (i + 5)
        (fun l -> Array.unsafe_get regs (x + l) <> Array.unsafe_get regs (y + l))
    | 64 (* jgt.p *) ->
      let x = Array.unsafe_get code (i + 1) * k in
      let y = Array.unsafe_get code (i + 2) * k in
      probe_branch stop i base n
        (Array.unsafe_get code (i + 3))
        (Array.unsafe_get code (i + 4))
        (i + 5)
        (fun l -> Array.unsafe_get regs (x + l) > Array.unsafe_get regs (y + l))
    | 65 (* jge.p *) ->
      let x = Array.unsafe_get code (i + 1) * k in
      let y = Array.unsafe_get code (i + 2) * k in
      probe_branch stop i base n
        (Array.unsafe_get code (i + 3))
        (Array.unsafe_get code (i + 4))
        (i + 5)
        (fun l -> Array.unsafe_get regs (x + l) >= Array.unsafe_get regs (y + l))
    | 66 (* jz.p *) ->
      let r = Array.unsafe_get code (i + 1) * k in
      probe_branch stop i base n
        (Array.unsafe_get code (i + 2))
        (Array.unsafe_get code (i + 3))
        (i + 4)
        (fun l -> Array.unsafe_get regs (r + l) <> 0.0)
    | 67 (* jnz.p *) ->
      let r = Array.unsafe_get code (i + 1) * k in
      probe_branch stop i base n
        (Array.unsafe_get code (i + 2))
        (Array.unsafe_get code (i + 3))
        (i + 4)
        (fun l -> Array.unsafe_get regs (r + l) = 0.0)
    | _ ->
      (* 42..45: hook-carrying instrumentation — this VM compiles
         without hooks, so these can never appear in its bytecode *)
      assert false
  (* Conditional branch: [jumps l] says lane [l] takes the jump to
     [target]; the rest fall through to [fall]. Unanimous slices stay
     batched; a split stable-partitions the slice into two adjacent
     sub-slices (fall lanes first — [fall] < [target], jumps are
     forward) and lets [converge] rejoin them. *)
  and branch stop i base n target fall jumps =
    let nt = ref 0 in
    for j = base to base + n - 1 do
      if jumps (Array.unsafe_get arena j) then incr nt
    done;
    let nt = !nt in
    if nt = n then go stop target base n
    else if nt = 0 then go stop fall base n
    else begin
      Array.unsafe_set divs i (Array.unsafe_get divs i + 1);
      Array.blit arena base scratch 0 n;
      let f = ref base in
      let t = ref (base + n - nt) in
      for j = 0 to n - 1 do
        let l = Array.unsafe_get scratch j in
        if jumps l then begin
          Array.unsafe_set arena !t l;
          incr t
        end
        else begin
          Array.unsafe_set arena !f l;
          incr f
        end
      done;
      converge stop fall base (n - nt) target (base + n - nt) nt
    end
  (* Probe-carrying branch: lanes where [holds] is true fire the probe
     and fall through; the rest jump. Probes fire before any split
     handling, matching each lane's scalar execution order. *)
  and probe_branch stop i base n id target fall holds =
    let nh = ref 0 in
    for j = base to base + n - 1 do
      let l = Array.unsafe_get arena j in
      if holds l then begin
        incr nh;
        fire pb k id l
      end
    done;
    let nh = !nh in
    if nh = n then go stop fall base n
    else if nh = 0 then go stop target base n
    else begin
      Array.unsafe_set divs i (Array.unsafe_get divs i + 1);
      Array.blit arena base scratch 0 n;
      let f = ref base in
      let t = ref (base + nh) in
      for j = 0 to n - 1 do
        let l = Array.unsafe_get scratch j in
        if holds l then begin
          Array.unsafe_set arena !f l;
          incr f
        end
        else begin
          Array.unsafe_set arena !t l;
          incr t
        end
      done;
      converge stop fall base nh target (base + nh) (n - nh)
    end
  (* Reconvergence: two adjacent parked slices — [arena.(ba..ba+na-1)]
     at pc [pa] and [arena.(bb..bb+nb-1)] at pc [pcb], with
     [bb = ba + na]. Jumps only go forward, so advancing whichever
     slice has the lower pc (stopping at the other's pc) moves the
     pair monotonically toward a common pc; when they meet, the merged
     slice continues batched. A slice parked on [halt] is terminal —
     if the other slice cannot reach that same halt, it just runs out
     on its own. *)
  and converge stop pa ba na pcb bb nb =
    if pa = pcb then go stop pa ba (na + nb)
    else if pa < pcb then
      if Array.unsafe_get code pa = 46 then begin
        let (_ : int) = go max_int pcb bb nb in
        pa
      end
      else converge stop (go pcb pa ba na) ba na pcb bb nb
    else if Array.unsafe_get code pcb = 46 then begin
      let (_ : int) = go max_int pa ba na in
      pcb
    end
    else converge stop pa ba na (go pa pcb bb nb) bb nb
  in
  let (_ : int) = go max_int 0 0 n0 in
  ()

(* ------------------------------------------------------------------ *)
(* Public interface                                                    *)
(* ------------------------------------------------------------------ *)

let reset ?lanes bvm =
  let n = match lanes with None -> bvm.k | Some n -> n in
  if n < 1 || n > bvm.k then invalid_arg "Ir_vm_batch.reset: lanes out of range";
  Array.fill bvm.regs 0 (Array.length bvm.regs) 0.0;
  let consts = bvm.lin.L.l_consts in
  let base = bvm.lin.L.l_const_base in
  for j = 0 to Array.length consts - 1 do
    let plane = (base + j) * bvm.k in
    let c = Array.unsafe_get consts j in
    for l = 0 to bvm.k - 1 do
      Array.unsafe_set bvm.regs (plane + l) c
    done
  done;
  for l = 0 to bvm.k - 1 do
    bvm.act.(l) <- l
  done;
  exec bvm bvm.lin.L.l_init bvm.d_init bvm.act n

let step ?lanes bvm =
  let n = match lanes with None -> bvm.k | Some n -> n in
  if n < 1 || n > bvm.k then invalid_arg "Ir_vm_batch.step: lanes out of range";
  for l = 0 to n - 1 do
    bvm.act.(l) <- l
  done;
  exec bvm bvm.lin.L.l_step bvm.d_step bvm.act n

let set_input_raw bvm ~lane i f =
  Array.set bvm.regs (((program bvm).Ir.inputs.(i).Ir.vid * bvm.k) + lane) f

let set_input bvm ~lane i v =
  let var = (program bvm).Ir.inputs.(i) in
  Array.set bvm.regs ((var.Ir.vid * bvm.k) + lane) (Value.to_float (Value.cast var.Ir.vty v))

(* same float->value reconstruction as Ir_vm *)
let of_float_exact (ty : Dtype.t) f =
  match ty with
  | Dtype.Bool -> Value.of_bool (f <> 0.0)
  | ty when Dtype.is_integer ty -> Value.of_int ty (int_of_float f)
  | ty -> Value.of_float ty f

let get_output bvm ~lane i =
  let var = (program bvm).Ir.outputs.(i) in
  of_float_exact var.Ir.vty (Array.get bvm.regs ((var.Ir.vid * bvm.k) + lane))

let read_raw bvm ~lane vid = Array.get bvm.regs ((vid * bvm.k) + lane)

let probes bvm = bvm.probes
let set_probes bvm p = bvm.probes <- p
let fresh_probes bvm = make_probes ~k:bvm.k (Bytes.length bvm.probes.bp_fired / bvm.k)

let record p ~lane id = fire p p.bp_k id lane

let probe_fired bvm ~lane id = Bytes.get bvm.probes.bp_fired ((id * bvm.k) + lane) <> '\000'

(* Divergence profile: (pc, split count) per branch that ever split a
   group, hottest first — the data behind `cftcg ir --batch`'s
   lane-divergence table. *)
let divergence_of divs =
  let out = ref [] in
  Array.iteri (fun pc c -> if c > 0 then out := (pc, c) :: !out) divs;
  List.sort (fun (p1, a) (p2, b) -> if a = b then compare p1 p2 else compare b a) !out

let step_divergence bvm = divergence_of bvm.d_step
let init_divergence bvm = divergence_of bvm.d_init

let total_divergence bvm =
  Array.fold_left ( + ) 0 bvm.d_init + Array.fold_left ( + ) 0 bvm.d_step

let reset_divergence bvm =
  Array.fill bvm.d_init 0 (Array.length bvm.d_init) 0;
  Array.fill bvm.d_step 0 (Array.length bvm.d_step) 0
