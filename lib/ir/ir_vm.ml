open Cftcg_model

(* Flat bytecode VM over an unboxed float register file — the third
   execution backend, built for the fuzzing inner loop.

   Versus the closure backend ({!Ir_compile}), each expression node
   costs one dispatch on an immediate int instead of an indirect call
   returning a boxed float, and probe fires write straight into a
   coverage byte buffer while recording a dirty list — so the fuzzer
   pays per probe *fired*, not per probe *allocated*. *)

type probes = {
  p_fired : Bytes.t;  (* 0/1 membership per probe cell *)
  p_dirty : int array;  (* cells fired, deduplicated, insertion order *)
  mutable p_n : int;
}

type t = {
  lin : Ir_linearize.t;
  regs : float array;
  mutable probes : probes;
  on_probe : int -> unit;
  on_cond : int -> int -> bool -> unit;
  on_decision : int -> int -> unit;
  branch_hooks : (bool -> unit) array;
}

let make_probes n = { p_fired = Bytes.make n '\000'; p_dirty = Array.make n 0; p_n = 0 }

let clear_probes p =
  for k = 0 to p.p_n - 1 do
    Bytes.unsafe_set p.p_fired (Array.unsafe_get p.p_dirty k) '\000'
  done;
  p.p_n <- 0

let compile ?(hooks = Hooks.none) ?(optimize = true) (prog : Ir.program) =
  let instrument =
    {
      Ir_linearize.probe_hook = Option.is_some hooks.Hooks.on_probe;
      cond = Option.is_some hooks.Hooks.on_cond;
      decision = Option.is_some hooks.Hooks.on_decision;
      branch = Option.is_some hooks.Hooks.on_branch;
    }
  in
  let lin =
    Cftcg_obs.Trace.with_span "ir.linearize" (fun () -> Ir_linearize.linearize ~instrument prog)
  in
  let lin = if optimize then Ir_opt.optimize_bytecode lin else lin in
  let regs = Array.make (max lin.Ir_linearize.l_n_regs 1) 0.0 in
  let branch_hooks =
    match hooks.Hooks.on_branch with
    | None -> [||]
    | Some report ->
      Array.mapi
        (fun if_ix cond ->
          let dist = Ir_compile.compile_distance regs cond in
          fun taken ->
            let dt, df = dist () in
            report if_ix taken dt df)
        lin.Ir_linearize.l_ifs
  in
  {
    lin;
    regs;
    probes = make_probes (max prog.Ir.n_probes 1);
    on_probe = (match hooks.Hooks.on_probe with Some f -> f | None -> ignore);
    on_cond =
      (match hooks.Hooks.on_cond with Some f -> f | None -> fun _ _ _ -> ());
    on_decision =
      (match hooks.Hooks.on_decision with Some f -> f | None -> fun _ _ -> ());
    branch_hooks;
  }

(* ------------------------------------------------------------------ *)
(* Dispatch loop                                                       *)
(* ------------------------------------------------------------------ *)

(* integer two's-complement wrap with pre-baked mask/half *)
let[@inline] wrap n mask half =
  let m = n land mask in
  if m >= half then m - (mask + 1) else m

(* Opcode numbers match Ir_linearize.op_* (dense 0..67, so the match
   compiles to a jump table). All register and code accesses are
   unsafe: the linearizer only ever emits in-range indices, and every
   block ends in HALT so dispatch needs no bounds check — each arm
   tail-calls [go] at the next pc. Every operand fetch is spelled
   out — a helper closure here would be allocated on each dispatch
   and dominate the loop. *)
let exec vm code =
  let regs = vm.regs in
  let pb = vm.probes in
  let rec go i =
    match Array.unsafe_get code i with
    | 0 (* mov *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Array.unsafe_get regs (Array.unsafe_get code (i + 2)));
      go (i + 3)
    | 1 (* add_f *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Array.unsafe_get regs (Array.unsafe_get code (i + 2))
        +. Array.unsafe_get regs (Array.unsafe_get code (i + 3)));
      go (i + 4)
    | 2 (* sub_f *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Array.unsafe_get regs (Array.unsafe_get code (i + 2))
        -. Array.unsafe_get regs (Array.unsafe_get code (i + 3)));
      go (i + 4)
    | 3 (* mul_f *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Array.unsafe_get regs (Array.unsafe_get code (i + 2))
        *. Array.unsafe_get regs (Array.unsafe_get code (i + 3)));
      go (i + 4)
    | 4 (* div_f *) ->
      let y = Array.unsafe_get regs (Array.unsafe_get code (i + 3)) in
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if y = 0.0 then 0.0 else Array.unsafe_get regs (Array.unsafe_get code (i + 2)) /. y);
      go (i + 4)
    | 5 (* rem_f *) ->
      let y = Array.unsafe_get regs (Array.unsafe_get code (i + 3)) in
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if y = 0.0 then 0.0
         else Float.rem (Array.unsafe_get regs (Array.unsafe_get code (i + 2))) y);
      go (i + 4)
    | 6 (* add_i *) ->
      let n =
        int_of_float (Array.unsafe_get regs (Array.unsafe_get code (i + 2)))
        + int_of_float (Array.unsafe_get regs (Array.unsafe_get code (i + 3)))
      in
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (float_of_int (wrap n (Array.unsafe_get code (i + 4)) (Array.unsafe_get code (i + 5))));
      go (i + 6)
    | 7 (* sub_i *) ->
      let n =
        int_of_float (Array.unsafe_get regs (Array.unsafe_get code (i + 2)))
        - int_of_float (Array.unsafe_get regs (Array.unsafe_get code (i + 3)))
      in
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (float_of_int (wrap n (Array.unsafe_get code (i + 4)) (Array.unsafe_get code (i + 5))));
      go (i + 6)
    | 8 (* mul_i *) ->
      let n =
        int_of_float (Array.unsafe_get regs (Array.unsafe_get code (i + 2)))
        * int_of_float (Array.unsafe_get regs (Array.unsafe_get code (i + 3)))
      in
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (float_of_int (wrap n (Array.unsafe_get code (i + 4)) (Array.unsafe_get code (i + 5))));
      go (i + 6)
    | 9 (* div_i *) ->
      let x = int_of_float (Array.unsafe_get regs (Array.unsafe_get code (i + 2))) in
      let y = int_of_float (Array.unsafe_get regs (Array.unsafe_get code (i + 3))) in
      let n = if y = 0 then 0 else x / y in
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (float_of_int (wrap n (Array.unsafe_get code (i + 4)) (Array.unsafe_get code (i + 5))));
      go (i + 6)
    | 10 (* rem_i *) ->
      let x = int_of_float (Array.unsafe_get regs (Array.unsafe_get code (i + 2))) in
      let y = int_of_float (Array.unsafe_get regs (Array.unsafe_get code (i + 3))) in
      let n = if y = 0 then 0 else x mod y in
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (float_of_int (wrap n (Array.unsafe_get code (i + 4)) (Array.unsafe_get code (i + 5))));
      go (i + 6)
    | 11 (* neg_f *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (-.Array.unsafe_get regs (Array.unsafe_get code (i + 2)));
      go (i + 3)
    | 12 (* neg_i *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (float_of_int
           (wrap
              (-int_of_float (Array.unsafe_get regs (Array.unsafe_get code (i + 2))))
              (Array.unsafe_get code (i + 3))
              (Array.unsafe_get code (i + 4))));
      go (i + 5)
    | 13 (* abs_f *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Float.abs (Array.unsafe_get regs (Array.unsafe_get code (i + 2))));
      go (i + 3)
    | 14 (* abs_i *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (float_of_int
           (wrap
              (Int.abs (int_of_float (Array.unsafe_get regs (Array.unsafe_get code (i + 2)))))
              (Array.unsafe_get code (i + 3))
              (Array.unsafe_get code (i + 4))));
      go (i + 5)
    | 15 (* not *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if Array.unsafe_get regs (Array.unsafe_get code (i + 2)) <> 0.0 then 0.0 else 1.0);
      go (i + 3)
    | 16 (* to_bool *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if Array.unsafe_get regs (Array.unsafe_get code (i + 2)) <> 0.0 then 1.0 else 0.0);
      go (i + 3)
    | 17 (* round_f32 *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Value.normalize_float Dtype.Float32
           (Array.unsafe_get regs (Array.unsafe_get code (i + 2))));
      go (i + 3)
    | 18 (* f2i_sat *) ->
      let f = Array.unsafe_get regs (Array.unsafe_get code (i + 2)) in
      let r =
        if Float.is_nan f then 0.0
        else begin
          let t = Float.trunc f in
          let lo = Array.unsafe_get regs (Array.unsafe_get code (i + 3)) in
          let hi = Array.unsafe_get regs (Array.unsafe_get code (i + 4)) in
          if t <= lo then lo else if t >= hi then hi else t
        end
      in
      Array.unsafe_set regs (Array.unsafe_get code (i + 1)) r;
      go (i + 5)
    | 19 (* wrap_i *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (float_of_int
           (wrap
              (int_of_float (Array.unsafe_get regs (Array.unsafe_get code (i + 2))))
              (Array.unsafe_get code (i + 3))
              (Array.unsafe_get code (i + 4))));
      go (i + 5)
    | 20 (* floor *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Float.floor (Array.unsafe_get regs (Array.unsafe_get code (i + 2))));
      go (i + 3)
    | 21 (* ceil *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Float.ceil (Array.unsafe_get regs (Array.unsafe_get code (i + 2))));
      go (i + 3)
    | 22 (* round *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Float.round (Array.unsafe_get regs (Array.unsafe_get code (i + 2))));
      go (i + 3)
    | 23 (* trunc *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Float.trunc (Array.unsafe_get regs (Array.unsafe_get code (i + 2))));
      go (i + 3)
    | 24 (* exp *) ->
      let v = Float.exp (Array.unsafe_get regs (Array.unsafe_get code (i + 2))) in
      Array.unsafe_set regs (Array.unsafe_get code (i + 1)) (if Float.is_nan v then 0.0 else v);
      go (i + 3)
    | 25 (* log *) ->
      let x = Array.unsafe_get regs (Array.unsafe_get code (i + 2)) in
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if x <= 0.0 then 0.0 else Float.log x);
      go (i + 3)
    | 26 (* log10 *) ->
      let x = Array.unsafe_get regs (Array.unsafe_get code (i + 2)) in
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if x <= 0.0 then 0.0 else Float.log10 x);
      go (i + 3)
    | 27 (* sqrt *) ->
      let x = Array.unsafe_get regs (Array.unsafe_get code (i + 2)) in
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if x < 0.0 then 0.0 else Float.sqrt x);
      go (i + 3)
    | 28 (* sin *) ->
      let v = Float.sin (Array.unsafe_get regs (Array.unsafe_get code (i + 2))) in
      Array.unsafe_set regs (Array.unsafe_get code (i + 1)) (if Float.is_nan v then 0.0 else v);
      go (i + 3)
    | 29 (* cos *) ->
      let v = Float.cos (Array.unsafe_get regs (Array.unsafe_get code (i + 2))) in
      Array.unsafe_set regs (Array.unsafe_get code (i + 1)) (if Float.is_nan v then 0.0 else v);
      go (i + 3)
    | 30 (* cmp_eq *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if
           Array.unsafe_get regs (Array.unsafe_get code (i + 2))
           = Array.unsafe_get regs (Array.unsafe_get code (i + 3))
         then 1.0
         else 0.0);
      go (i + 4)
    | 31 (* cmp_ne *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if
           Array.unsafe_get regs (Array.unsafe_get code (i + 2))
           <> Array.unsafe_get regs (Array.unsafe_get code (i + 3))
         then 1.0
         else 0.0);
      go (i + 4)
    | 32 (* cmp_lt *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if
           Array.unsafe_get regs (Array.unsafe_get code (i + 2))
           < Array.unsafe_get regs (Array.unsafe_get code (i + 3))
         then 1.0
         else 0.0);
      go (i + 4)
    | 33 (* cmp_le *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if
           Array.unsafe_get regs (Array.unsafe_get code (i + 2))
           <= Array.unsafe_get regs (Array.unsafe_get code (i + 3))
         then 1.0
         else 0.0);
      go (i + 4)
    | 34 (* cmp_gt *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if
           Array.unsafe_get regs (Array.unsafe_get code (i + 2))
           > Array.unsafe_get regs (Array.unsafe_get code (i + 3))
         then 1.0
         else 0.0);
      go (i + 4)
    | 35 (* cmp_ge *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if
           Array.unsafe_get regs (Array.unsafe_get code (i + 2))
           >= Array.unsafe_get regs (Array.unsafe_get code (i + 3))
         then 1.0
         else 0.0);
      go (i + 4)
    | 36 (* and *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if
           Array.unsafe_get regs (Array.unsafe_get code (i + 2)) <> 0.0
           && Array.unsafe_get regs (Array.unsafe_get code (i + 3)) <> 0.0
         then 1.0
         else 0.0);
      go (i + 4)
    | 37 (* or *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if
           Array.unsafe_get regs (Array.unsafe_get code (i + 2)) <> 0.0
           || Array.unsafe_get regs (Array.unsafe_get code (i + 3)) <> 0.0
         then 1.0
         else 0.0);
      go (i + 4)
    | 38 (* select *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (if Array.unsafe_get regs (Array.unsafe_get code (i + 2)) <> 0.0 then
           Array.unsafe_get regs (Array.unsafe_get code (i + 3))
         else Array.unsafe_get regs (Array.unsafe_get code (i + 4)));
      go (i + 5)
    | 39 (* jmp *) -> go (Array.unsafe_get code (i + 1))
    | 40 (* jz *) ->
      if Array.unsafe_get regs (Array.unsafe_get code (i + 1)) = 0.0 then
        go (Array.unsafe_get code (i + 2))
      else go (i + 3)
    | 41 (* probe *) ->
      let id = Array.unsafe_get code (i + 1) in
      if Bytes.unsafe_get pb.p_fired id = '\000' then begin
        Bytes.unsafe_set pb.p_fired id '\001';
        Array.unsafe_set pb.p_dirty pb.p_n id;
        pb.p_n <- pb.p_n + 1
      end;
      go (i + 2)
    | 42 (* probe + hook *) ->
      let id = Array.unsafe_get code (i + 1) in
      if Bytes.unsafe_get pb.p_fired id = '\000' then begin
        Bytes.unsafe_set pb.p_fired id '\001';
        Array.unsafe_set pb.p_dirty pb.p_n id;
        pb.p_n <- pb.p_n + 1
      end;
      vm.on_probe id;
      go (i + 2)
    | 43 (* cond *) ->
      vm.on_cond
        (Array.unsafe_get code (i + 1))
        (Array.unsafe_get code (i + 2))
        (Array.unsafe_get regs (Array.unsafe_get code (i + 3)) <> 0.0);
      go (i + 4)
    | 44 (* decision *) ->
      vm.on_decision (Array.unsafe_get code (i + 1)) (Array.unsafe_get code (i + 2));
      go (i + 3)
    | 45 (* branch hook *) ->
      (Array.unsafe_get vm.branch_hooks (Array.unsafe_get code (i + 1)))
        (Array.unsafe_get regs (Array.unsafe_get code (i + 2)) <> 0.0);
      go (i + 3)
    | 46 (* halt *) -> ()
    (* superinstructions 47..57, emitted only by Ir_opt's fusion pass.
       The compare-and-jump arms take the branch when the comparison
       is FALSE — exactly what the replaced [cmp_*; jz] pair did,
       including the NaN behaviour (any ordered compare with NaN is
       false, so a NaN operand always branches). *)
    | 47 (* jlt *) ->
      if
        Array.unsafe_get regs (Array.unsafe_get code (i + 1))
        < Array.unsafe_get regs (Array.unsafe_get code (i + 2))
      then go (i + 4)
      else go (Array.unsafe_get code (i + 3))
    | 48 (* jle *) ->
      if
        Array.unsafe_get regs (Array.unsafe_get code (i + 1))
        <= Array.unsafe_get regs (Array.unsafe_get code (i + 2))
      then go (i + 4)
      else go (Array.unsafe_get code (i + 3))
    | 49 (* jeq *) ->
      if
        Array.unsafe_get regs (Array.unsafe_get code (i + 1))
        = Array.unsafe_get regs (Array.unsafe_get code (i + 2))
      then go (i + 4)
      else go (Array.unsafe_get code (i + 3))
    | 50 (* jne *) ->
      if
        Array.unsafe_get regs (Array.unsafe_get code (i + 1))
        <> Array.unsafe_get regs (Array.unsafe_get code (i + 2))
      then go (i + 4)
      else go (Array.unsafe_get code (i + 3))
    | 51 (* jgt *) ->
      if
        Array.unsafe_get regs (Array.unsafe_get code (i + 1))
        > Array.unsafe_get regs (Array.unsafe_get code (i + 2))
      then go (i + 4)
      else go (Array.unsafe_get code (i + 3))
    | 52 (* jge *) ->
      if
        Array.unsafe_get regs (Array.unsafe_get code (i + 1))
        >= Array.unsafe_get regs (Array.unsafe_get code (i + 2))
      then go (i + 4)
      else go (Array.unsafe_get code (i + 3))
    | 53 (* jnz *) ->
      if Array.unsafe_get regs (Array.unsafe_get code (i + 1)) <> 0.0 then
        go (Array.unsafe_get code (i + 2))
      else go (i + 3)
    | 54 (* add_f32 *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Value.normalize_float Dtype.Float32
           (Array.unsafe_get regs (Array.unsafe_get code (i + 2))
           +. Array.unsafe_get regs (Array.unsafe_get code (i + 3))));
      go (i + 4)
    | 55 (* sub_f32 *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Value.normalize_float Dtype.Float32
           (Array.unsafe_get regs (Array.unsafe_get code (i + 2))
           -. Array.unsafe_get regs (Array.unsafe_get code (i + 3))));
      go (i + 4)
    | 56 (* mul_f32 *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Value.normalize_float Dtype.Float32
           (Array.unsafe_get regs (Array.unsafe_get code (i + 2))
           *. Array.unsafe_get regs (Array.unsafe_get code (i + 3))));
      go (i + 4)
    | 57 (* div_f32 *) ->
      let y = Array.unsafe_get regs (Array.unsafe_get code (i + 3)) in
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Value.normalize_float Dtype.Float32
           (if y = 0.0 then 0.0
            else Array.unsafe_get regs (Array.unsafe_get code (i + 2)) /. y));
      go (i + 4)
    | 58 (* probe + jmp *) ->
      let id = Array.unsafe_get code (i + 1) in
      if Bytes.unsafe_get pb.p_fired id = '\000' then begin
        Bytes.unsafe_set pb.p_fired id '\001';
        Array.unsafe_set pb.p_dirty pb.p_n id;
        pb.p_n <- pb.p_n + 1
      end;
      go (Array.unsafe_get code (i + 2))
    | 59 (* mov + jmp *) ->
      Array.unsafe_set regs
        (Array.unsafe_get code (i + 1))
        (Array.unsafe_get regs (Array.unsafe_get code (i + 2)));
      go (Array.unsafe_get code (i + 3))
    (* probe-carrying conditional branches 60..67: the branch-arm
       probe fused into the branch itself. Fall through => the probe
       fires; jump => it is skipped — bit-identical to the unfused
       [j..; probe] pair, NaN behaviour included. *)
    | 60 (* jlt.p *) ->
      if
        Array.unsafe_get regs (Array.unsafe_get code (i + 1))
        < Array.unsafe_get regs (Array.unsafe_get code (i + 2))
      then begin
        let id = Array.unsafe_get code (i + 3) in
        if Bytes.unsafe_get pb.p_fired id = '\000' then begin
          Bytes.unsafe_set pb.p_fired id '\001';
          Array.unsafe_set pb.p_dirty pb.p_n id;
          pb.p_n <- pb.p_n + 1
        end;
        go (i + 5)
      end
      else go (Array.unsafe_get code (i + 4))
    | 61 (* jle.p *) ->
      if
        Array.unsafe_get regs (Array.unsafe_get code (i + 1))
        <= Array.unsafe_get regs (Array.unsafe_get code (i + 2))
      then begin
        let id = Array.unsafe_get code (i + 3) in
        if Bytes.unsafe_get pb.p_fired id = '\000' then begin
          Bytes.unsafe_set pb.p_fired id '\001';
          Array.unsafe_set pb.p_dirty pb.p_n id;
          pb.p_n <- pb.p_n + 1
        end;
        go (i + 5)
      end
      else go (Array.unsafe_get code (i + 4))
    | 62 (* jeq.p *) ->
      if
        Array.unsafe_get regs (Array.unsafe_get code (i + 1))
        = Array.unsafe_get regs (Array.unsafe_get code (i + 2))
      then begin
        let id = Array.unsafe_get code (i + 3) in
        if Bytes.unsafe_get pb.p_fired id = '\000' then begin
          Bytes.unsafe_set pb.p_fired id '\001';
          Array.unsafe_set pb.p_dirty pb.p_n id;
          pb.p_n <- pb.p_n + 1
        end;
        go (i + 5)
      end
      else go (Array.unsafe_get code (i + 4))
    | 63 (* jne.p *) ->
      if
        Array.unsafe_get regs (Array.unsafe_get code (i + 1))
        <> Array.unsafe_get regs (Array.unsafe_get code (i + 2))
      then begin
        let id = Array.unsafe_get code (i + 3) in
        if Bytes.unsafe_get pb.p_fired id = '\000' then begin
          Bytes.unsafe_set pb.p_fired id '\001';
          Array.unsafe_set pb.p_dirty pb.p_n id;
          pb.p_n <- pb.p_n + 1
        end;
        go (i + 5)
      end
      else go (Array.unsafe_get code (i + 4))
    | 64 (* jgt.p *) ->
      if
        Array.unsafe_get regs (Array.unsafe_get code (i + 1))
        > Array.unsafe_get regs (Array.unsafe_get code (i + 2))
      then begin
        let id = Array.unsafe_get code (i + 3) in
        if Bytes.unsafe_get pb.p_fired id = '\000' then begin
          Bytes.unsafe_set pb.p_fired id '\001';
          Array.unsafe_set pb.p_dirty pb.p_n id;
          pb.p_n <- pb.p_n + 1
        end;
        go (i + 5)
      end
      else go (Array.unsafe_get code (i + 4))
    | 65 (* jge.p *) ->
      if
        Array.unsafe_get regs (Array.unsafe_get code (i + 1))
        >= Array.unsafe_get regs (Array.unsafe_get code (i + 2))
      then begin
        let id = Array.unsafe_get code (i + 3) in
        if Bytes.unsafe_get pb.p_fired id = '\000' then begin
          Bytes.unsafe_set pb.p_fired id '\001';
          Array.unsafe_set pb.p_dirty pb.p_n id;
          pb.p_n <- pb.p_n + 1
        end;
        go (i + 5)
      end
      else go (Array.unsafe_get code (i + 4))
    | 66 (* jz.p *) ->
      if Array.unsafe_get regs (Array.unsafe_get code (i + 1)) = 0.0 then
        go (Array.unsafe_get code (i + 3))
      else begin
        let id = Array.unsafe_get code (i + 2) in
        if Bytes.unsafe_get pb.p_fired id = '\000' then begin
          Bytes.unsafe_set pb.p_fired id '\001';
          Array.unsafe_set pb.p_dirty pb.p_n id;
          pb.p_n <- pb.p_n + 1
        end;
        go (i + 4)
      end
    | 67 (* jnz.p *) ->
      if Array.unsafe_get regs (Array.unsafe_get code (i + 1)) <> 0.0 then
        go (Array.unsafe_get code (i + 3))
      else begin
        let id = Array.unsafe_get code (i + 2) in
        if Bytes.unsafe_get pb.p_fired id = '\000' then begin
          Bytes.unsafe_set pb.p_fired id '\001';
          Array.unsafe_set pb.p_dirty pb.p_n id;
          pb.p_n <- pb.p_n + 1
        end;
        go (i + 4)
      end
    | _ -> assert false
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Public interface (mirrors Ir_compile)                               *)
(* ------------------------------------------------------------------ *)

let program vm = vm.lin.Ir_linearize.l_prog

let reset vm =
  Array.fill vm.regs 0 (Array.length vm.regs) 0.0;
  Array.blit vm.lin.Ir_linearize.l_consts 0 vm.regs vm.lin.Ir_linearize.l_const_base
    (Array.length vm.lin.Ir_linearize.l_consts);
  exec vm vm.lin.Ir_linearize.l_init

let step vm = exec vm vm.lin.Ir_linearize.l_step

let set_input vm i v =
  let var = (program vm).Ir.inputs.(i) in
  vm.regs.(var.Ir.vid) <- Value.to_float (Value.cast var.Ir.vty v)

let set_input_raw vm i f = vm.regs.((program vm).Ir.inputs.(i).Ir.vid) <- f

let of_float_exact (ty : Dtype.t) f =
  match ty with
  | Dtype.Bool -> Value.of_bool (f <> 0.0)
  | ty when Dtype.is_integer ty -> Value.of_int ty (int_of_float f)
  | ty -> Value.of_float ty f

let get_output vm i =
  let var = (program vm).Ir.outputs.(i) in
  of_float_exact var.Ir.vty vm.regs.(var.Ir.vid)

let get_var vm (v : Ir.var) = of_float_exact v.Ir.vty vm.regs.(v.Ir.vid)

let read_raw vm vid = vm.regs.(vid)

let probes vm = vm.probes

let set_probes vm p = vm.probes <- p

let fresh_probes vm =
  {
    p_fired = Bytes.make (Bytes.length vm.probes.p_fired) '\000';
    p_dirty = Array.make (Array.length vm.probes.p_dirty) 0;
    p_n = 0;
  }

let probe_fired vm id = Bytes.get vm.probes.p_fired id <> '\000'

let code_size vm = Ir_linearize.code_size vm.lin

(* Opt-in profile mode: replays the VM's own (possibly optimized)
   bytecode on Ir_opt's reference interpreter, which dispatches the
   same opcodes with the same arm formulas but counts as it goes. The
   fuzzing dispatch loop above stays byte-for-byte identical whether
   or not anyone profiles. *)
let profile vm rows = Ir_opt.profile_bytecode vm.lin rows

let linearized vm = vm.lin
