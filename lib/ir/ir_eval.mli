(** Reference interpreter for IR programs.

    Executes over boxed {!Cftcg_model.Value.t} with full dtype
    bookkeeping. Slower than {!Ir_compile} by design; it exists as
    the semantic oracle for differential tests and for debugging
    generated code. *)

open Cftcg_model

type t
(** An evaluation instance: a program plus its variable store. *)

val create : Ir.program -> t

val reset : ?hooks:Hooks.t -> t -> unit
(** Zeroes the store and runs the program's [init] statements. *)

val set_input : t -> int -> Value.t -> unit
(** [set_input t i v] writes inport [i] (cast to the inport dtype). *)

val step : ?hooks:Hooks.t -> t -> unit
(** Runs one model iteration. *)

val get_output : t -> int -> Value.t

val get_var : t -> Ir.var -> Value.t
(** Reads any variable — used by tests to inspect states. *)

val eval_expr : t -> Ir.expr -> Value.t
(** Evaluates an expression against the current store. *)

val branch_distances : Ir.expr -> (Ir.expr -> Value.t) -> float * float
(** [branch_distances cond eval] returns
    [(distance_to_true, distance_to_false)] for a boolean condition
    under the standard branch-distance rules (Korel): 0 when already
    satisfied, |a-b|-shaped positive values otherwise, [+ 1]
    offsets for strict/equality forms, sum for conjunction, min for
    disjunction. *)
