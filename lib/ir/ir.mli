(** Imperative intermediate representation of generated model code.

    The schedule converter lowers a block diagram into one [program]
    per model: a [step] statement list executed once per model
    iteration over a flat variable store, plus [init] statements that
    establish the initial state (paper §3.1.1, "model initialization
    code"). The IR is deliberately C-shaped — assignments,
    if/else, ternary selects — so it can be pretty-printed as the C
    fuzz code (see {!Cemit}) and compiled to closures for the
    fuzzing loop (see {!Ir_compile}).

    Branch instrumentation (paper §3.1.2) appears as three statement
    forms: [Probe] marks one flat coverage cell (one element of the
    [g_CurrCov] array of Algorithm 1); [Record_cond] and
    [Record_decision] feed the Condition / MCDC recorder. *)

open Cftcg_model

type var = {
  vid : int;  (** index into the runtime store *)
  vname : string;
  vty : Dtype.t;
}

type unop =
  | U_neg
  | U_not  (** logical negation on truthiness, yields Bool *)
  | U_abs
  | U_cast of Dtype.t
  | U_floor
  | U_ceil
  | U_round  (** nearest, ties away from zero *)
  | U_trunc
  | U_exp
  | U_log  (** total: non-positive input yields 0 *)
  | U_log10
  | U_sqrt  (** total: negative input yields 0 *)
  | U_sin
  | U_cos

type binop =
  | B_add
  | B_sub
  | B_mul
  | B_div  (** total: zero divisor yields 0 *)
  | B_rem
  | B_min
  | B_max
  | B_and  (** logical, yields Bool *)
  | B_or
  | B_eq
  | B_ne
  | B_lt
  | B_le
  | B_gt
  | B_ge

type expr =
  | Const of Value.t
  | Read of var
  | Unop of unop * expr
  | Binop of binop * Dtype.t * expr * expr
      (** Arithmetic ops are computed and wrapped in the carried
          dtype; comparison and logic ops yield [Bool] and ignore
          it. *)
  | Select of expr * expr * expr
      (** Branchless ternary: [Select (c, a, b)] is [c ? a : b]
          with both arms evaluated — the shape [-O2] gives boolean
          blocks in the paper's "Fuzz Only" experiment. *)

type stmt =
  | Assign of var * expr
  | If of {
      cond : expr;
      dec : int option;  (** owning decision, when instrumented *)
      then_ : stmt list;
      else_ : stmt list;
    }
  | Probe of int  (** flat coverage cell *)
  | Record_cond of { dec : int; cond_ix : int; value : expr }
  | Record_decision of { dec : int; outcome : int }
  | Comment of string

(** Static description of one instrumented condition. Conditions own
    two flat probe cells so Algorithm 1's array view captures both
    polarities. *)
type condition = {
  cond_ix : int;
  cond_desc : string;
  probe_true : int;
  probe_false : int;
}

(** Static description of one instrumented decision (a branch point
    of the model: logic block output, switch, transition guard,
    saturation region, ...). *)
type decision = {
  dec_id : int;
  dec_block : string;  (** model path of the owning block *)
  dec_desc : string;  (** e.g. ["Switch criteria u2 > 0"] *)
  n_outcomes : int;
  outcome_probes : int array;  (** flat probe cell per outcome *)
  conditions : condition array;
}

type program = {
  prog_name : string;
  n_vars : int;  (** size of the runtime store *)
  inputs : var array;  (** one per top-level inport, in port order *)
  outputs : var array;
  states : var array;  (** persist across iterations *)
  init : stmt list;
  step : stmt list;
  n_probes : int;  (** Algorithm 1's [branchCount] *)
  decisions : decision array;
  assertions : (int * string) array;
      (** Model Verification blocks: (flat probe cell that fires on
          violation, failure message). Assertion cells are part of the
          probe space, so the fuzzer treats a first violation as new
          coverage and emits the offending input. *)
  lookup_tables : (string * int array) array;
      (** Lookup-table coverage (Simulink's table coverage): per
          Lookup block, one probe cell per interpolation interval —
          [below-range; segment 1..n-1; above-range]. *)
}

val type_of : expr -> Dtype.t
(** Static type of an expression. *)

val bool_const : bool -> expr
val int_const : Dtype.t -> int -> expr
val float_const : Dtype.t -> float -> expr

val truthy : expr -> expr
(** Coerces to a Bool expression ([e <> 0]) unless already Bool. *)

val stmt_count : program -> int
(** Total statements, counting nested branches — a size metric used
    in reports. *)

val validate : program -> (unit, string) result
(** Checks variable ids are within [n_vars], probe ids within
    [n_probes], decision references within bounds, and that every
    outcome/condition probe cell is distinct. *)
