open Cftcg_model

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let rec has_read = function
  | Ir.Const _ -> false
  | Ir.Read _ -> true
  | Ir.Unop (_, a) -> has_read a
  | Ir.Binop (_, _, a, b) -> has_read a || has_read b
  | Ir.Select (c, a, b) -> has_read c || has_read a || has_read b

(* Evaluate a closed expression with the exact runtime semantics by
   running it through the reference evaluator on an empty store. *)
let eval_closed e =
  if has_read e then None
  else begin
    let dummy =
      {
        Ir.prog_name = "const";
        n_vars = 0;
        inputs = [||];
        outputs = [||];
        states = [||];
        init = [];
        step = [];
        n_probes = 0;
        decisions = [||];
        assertions = [||];
        lookup_tables = [||];
      }
    in
    Some (Ir_eval.eval_expr (Ir_eval.create dummy) e)
  end

let rec fold_expr e =
  let folded =
    match e with
    | Ir.Const _ | Ir.Read _ -> e
    | Ir.Unop (op, a) -> Ir.Unop (op, fold_expr a)
    | Ir.Binop (op, ty, a, b) -> Ir.Binop (op, ty, fold_expr a, fold_expr b)
    | Ir.Select (c, a, b) -> (
      let c = fold_expr c in
      let a = fold_expr a in
      let b = fold_expr b in
      match eval_closed c with
      | Some cv ->
        (* arms are pure expressions, so dropping one is sound *)
        if Value.is_true cv then a else b
      | None -> Ir.Select (c, a, b))
  in
  match folded with
  | Ir.Const _ | Ir.Read _ -> folded
  | folded -> (
    match eval_closed folded with
    | Some v ->
      (* keep the static type stable: folding must not change the
         wrap/saturate behaviour of the surrounding operator *)
      if Dtype.equal (Value.dtype v) (Ir.type_of folded) then Ir.Const v else folded
    | None -> folded)

let rec fold_stmt (s : Ir.stmt) : Ir.stmt list =
  match s with
  | Ir.Assign (v, e) -> [ Ir.Assign (v, fold_expr e) ]
  | Ir.Probe _ | Ir.Comment _ | Ir.Record_decision _ -> [ s ]
  | Ir.Record_cond { dec; cond_ix; value } ->
    [ Ir.Record_cond { dec; cond_ix; value = fold_expr value } ]
  | Ir.If { cond; dec; then_; else_ } -> (
    let cond = fold_expr cond in
    let then_ = fold_stmts then_ in
    let else_ = fold_stmts else_ in
    match eval_closed cond with
    | Some cv -> if Value.is_true cv then then_ else else_
    | None -> [ Ir.If { cond; dec; then_; else_ } ])

and fold_stmts stmts = List.concat_map fold_stmt stmts

let constant_fold (p : Ir.program) =
  { p with Ir.init = fold_stmts p.Ir.init; step = fold_stmts p.Ir.step }

(* ------------------------------------------------------------------ *)
(* Copy propagation (straight-line, conservative across branches)     *)
(* ------------------------------------------------------------------ *)

module Env = Map.Make (Int)

(* env maps vid -> replacement expr (Const or Read of an equal-typed
   var). Invalidation removes entries whose target or source was
   rewritten. *)
let kill vid env =
  Env.filter
    (fun target repl ->
      target <> vid
      &&
      match repl with
      | Ir.Read w -> w.Ir.vid <> vid
      | _ -> true)
    env

let rec subst env e =
  match e with
  | Ir.Const _ -> e
  | Ir.Read v -> (
    match Env.find_opt v.Ir.vid env with
    | Some repl -> repl
    | None -> e)
  | Ir.Unop (op, a) -> Ir.Unop (op, subst env a)
  | Ir.Binop (op, ty, a, b) -> Ir.Binop (op, ty, subst env a, subst env b)
  | Ir.Select (c, a, b) -> Ir.Select (subst env c, subst env a, subst env b)

let rec propagate_block env stmts =
  match stmts with
  | [] -> ([], env)
  | s :: rest -> (
    match s with
    | Ir.Assign (v, e) ->
      let e = subst env e in
      let env = kill v.Ir.vid env in
      let env =
        match e with
        | Ir.Const c -> Env.add v.Ir.vid (Ir.Const (Value.cast v.Ir.vty c)) env
        | Ir.Read w when Dtype.equal w.Ir.vty v.Ir.vty && w.Ir.vid <> v.Ir.vid ->
          Env.add v.Ir.vid (Ir.Read w) env
        | _ -> env
      in
      let rest', env' = propagate_block env rest in
      (Ir.Assign (v, e) :: rest', env')
    | Ir.Record_cond { dec; cond_ix; value } ->
      let rest', env' = propagate_block env rest in
      (Ir.Record_cond { dec; cond_ix; value = subst env value } :: rest', env')
    | Ir.Probe _ | Ir.Comment _ | Ir.Record_decision _ ->
      let rest', env' = propagate_block env rest in
      (s :: rest', env')
    | Ir.If { cond; dec; then_; else_ } ->
      let cond = subst env cond in
      let then_, _ = propagate_block env then_ in
      let else_, _ = propagate_block env else_ in
      (* conservative: forget everything after a branch join *)
      let rest', env' = propagate_block Env.empty rest in
      (Ir.If { cond; dec; then_; else_ } :: rest', env'))

let propagate_copies (p : Ir.program) =
  let init, _ = propagate_block Env.empty p.Ir.init in
  let step, _ = propagate_block Env.empty p.Ir.step in
  { p with Ir.init = init; step }

(* ------------------------------------------------------------------ *)
(* Dead assignment elimination                                         *)
(* ------------------------------------------------------------------ *)

let rec expr_reads acc = function
  | Ir.Const _ -> acc
  | Ir.Read v -> v.Ir.vid :: acc
  | Ir.Unop (_, a) -> expr_reads acc a
  | Ir.Binop (_, _, a, b) -> expr_reads (expr_reads acc a) b
  | Ir.Select (c, a, b) -> expr_reads (expr_reads (expr_reads acc c) a) b

let rec stmt_reads acc = function
  | Ir.Assign (_, e) -> expr_reads acc e
  | Ir.If { cond; then_; else_; _ } ->
    let acc = expr_reads acc cond in
    let acc = List.fold_left stmt_reads acc then_ in
    List.fold_left stmt_reads acc else_
  | Ir.Record_cond { value; _ } -> expr_reads acc value
  | Ir.Probe _ | Ir.Comment _ | Ir.Record_decision _ -> acc

module IS = Set.Make (Int)

(* Backward liveness over one statement list. Returns the rewritten
   list and the live-in set. A statement list is re-executed every
   step, so the end-of-step live set must include every variable whose
   value can survive into the next step: outputs, states, and any
   variable read anywhere in the step (conservative). *)
let rec dce_block live_out stmts =
  match stmts with
  | [] -> ([], live_out)
  | s :: rest -> (
    let rest', live = dce_block live_out rest in
    match s with
    | Ir.Assign (v, e) ->
      if IS.mem v.Ir.vid live then begin
        let live = IS.remove v.Ir.vid live in
        let live = List.fold_left (fun acc r -> IS.add r acc) live (expr_reads [] e) in
        (Ir.Assign (v, e) :: rest', live)
      end
      else (rest', live) (* dead store *)
    | Ir.If { cond; dec; then_; else_ } ->
      let then', live_t = dce_block live then_ in
      let else', live_e = dce_block live else_ in
      let live = IS.union live_t live_e in
      let live = List.fold_left (fun acc r -> IS.add r acc) live (expr_reads [] cond) in
      (Ir.If { cond; dec; then_ = then'; else_ = else' } :: rest', live)
    | Ir.Record_cond { value; _ } ->
      let live = List.fold_left (fun acc r -> IS.add r acc) live (expr_reads [] value) in
      (s :: rest', live)
    | Ir.Probe _ | Ir.Comment _ | Ir.Record_decision _ -> (s :: rest', live))

let eliminate_dead_assignments (p : Ir.program) =
  let always_live =
    let add acc (v : Ir.var) = IS.add v.Ir.vid acc in
    let acc = Array.fold_left add IS.empty p.Ir.outputs in
    let acc = Array.fold_left add acc p.Ir.states in
    Array.fold_left add acc p.Ir.inputs
  in
  let read_somewhere =
    List.fold_left stmt_reads [] p.Ir.step |> List.fold_left (fun acc r -> IS.add r acc) IS.empty
  in
  let end_live = IS.union always_live read_somewhere in
  let step, _ = dce_block end_live p.Ir.step in
  (* init establishes state: keep it intact *)
  { p with Ir.step }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(* Each tree pass gets its own trace span so `cftcg profile` shows
   where compile time goes; spans are one boolean load when tracing
   is off. *)
let span = Cftcg_obs.Trace.with_span

let one_round p =
  let p = span "ir_opt.constant_fold" (fun () -> constant_fold p) in
  let p = span "ir_opt.propagate_copies" (fun () -> propagate_copies p) in
  span "ir_opt.eliminate_dead_assignments" (fun () -> eliminate_dead_assignments p)

let optimize p =
  let rec go n p =
    if n = 0 then p
    else begin
      let p' = one_round p in
      if Ir.stmt_count p' = Ir.stmt_count p then p' else go (n - 1) p'
    end
  in
  span "ir_opt.optimize" (fun () -> go 4 p)

let stats before after =
  Printf.sprintf "%d -> %d statements (%.0f%% removed)" (Ir.stmt_count before)
    (Ir.stmt_count after)
    (100.0
    *. float_of_int (Ir.stmt_count before - Ir.stmt_count after)
    /. float_of_int (max 1 (Ir.stmt_count before)))

(* ================================================================== *)
(* Bytecode optimizer                                                  *)
(*                                                                     *)
(* Rewrites Ir_linearize bytecode before Ir_vm execution. The tree-    *)
(* level passes above cannot see linearization artifacts: every        *)
(* comparison materializes a float register that one jz consumes,      *)
(* port-wiring copies survive as MOVs, and saturation bounds /         *)
(* float32 rounding turn single IR nodes into instruction pairs.       *)
(* These passes work on the decoded instruction stream:                *)
(*   1. constant folding + propagation through the register file       *)
(*   2. copy propagation and move elimination                          *)
(*   3. unreachable-code elimination                                   *)
(*   4. dead-register-write elimination (probe/cond/decision/branch    *)
(*      ops, jumps, outputs, states, and cross-iteration reads are     *)
(*      roots)                                                         *)
(*   5. jump threading + fall-through elision                          *)
(*   6. superinstruction fusion (cmp+jz -> jlt/…, not+jz -> jnz,       *)
(*      arith_f+round_f32 -> *_f32)                                    *)
(* Folding reuses the exact VM arm formulas (wrap masks, div-by-zero   *)
(* guards, NaN handling, float32 normalization), so optimized code is  *)
(* bit-identical to unoptimized — the differential suite enforces it.  *)
(* ================================================================== *)

module L = Ir_linearize

(* --- static instruction shapes ------------------------------------ *)

(* Operand slots are classified so the passes know which slots hold
   registers (rewritable), which hold immediates (masks, probe ids —
   never touched), and which hold a jump target pc. *)
type shape = {
  s_name : string;
  s_size : int;  (* total slots including the opcode *)
  s_dst : bool;  (* slot 1 is a written register (all such ops are pure) *)
  s_srcs : int array;  (* slot offsets read as registers *)
  s_target : int;  (* slot offset of a jump target, or -1 *)
}

let shapes : shape array =
  let t =
    Array.make L.n_opcodes { s_name = "?"; s_size = 1; s_dst = false; s_srcs = [||]; s_target = -1 }
  in
  let def op s_name s_size s_dst srcs s_target =
    t.(op) <- { s_name; s_size; s_dst; s_srcs = Array.of_list srcs; s_target }
  in
  def L.op_mov "mov" 3 true [ 2 ] (-1);
  def L.op_add_f "add.f" 4 true [ 2; 3 ] (-1);
  def L.op_sub_f "sub.f" 4 true [ 2; 3 ] (-1);
  def L.op_mul_f "mul.f" 4 true [ 2; 3 ] (-1);
  def L.op_div_f "div.f" 4 true [ 2; 3 ] (-1);
  def L.op_rem_f "rem.f" 4 true [ 2; 3 ] (-1);
  def L.op_add_i "add.i" 6 true [ 2; 3 ] (-1);
  def L.op_sub_i "sub.i" 6 true [ 2; 3 ] (-1);
  def L.op_mul_i "mul.i" 6 true [ 2; 3 ] (-1);
  def L.op_div_i "div.i" 6 true [ 2; 3 ] (-1);
  def L.op_rem_i "rem.i" 6 true [ 2; 3 ] (-1);
  def L.op_neg_f "neg.f" 3 true [ 2 ] (-1);
  def L.op_neg_i "neg.i" 5 true [ 2 ] (-1);
  def L.op_abs_f "abs.f" 3 true [ 2 ] (-1);
  def L.op_abs_i "abs.i" 5 true [ 2 ] (-1);
  def L.op_not "not" 3 true [ 2 ] (-1);
  def L.op_to_bool "to_bool" 3 true [ 2 ] (-1);
  def L.op_round_f32 "round.f32" 3 true [ 2 ] (-1);
  def L.op_f2i_sat "f2i.sat" 5 true [ 2; 3; 4 ] (-1);
  def L.op_wrap_i "wrap.i" 5 true [ 2 ] (-1);
  def L.op_floor "floor" 3 true [ 2 ] (-1);
  def L.op_ceil "ceil" 3 true [ 2 ] (-1);
  def L.op_round "round" 3 true [ 2 ] (-1);
  def L.op_trunc "trunc" 3 true [ 2 ] (-1);
  def L.op_exp "exp" 3 true [ 2 ] (-1);
  def L.op_log "log" 3 true [ 2 ] (-1);
  def L.op_log10 "log10" 3 true [ 2 ] (-1);
  def L.op_sqrt "sqrt" 3 true [ 2 ] (-1);
  def L.op_sin "sin" 3 true [ 2 ] (-1);
  def L.op_cos "cos" 3 true [ 2 ] (-1);
  def L.op_cmp_eq "cmp.eq" 4 true [ 2; 3 ] (-1);
  def L.op_cmp_ne "cmp.ne" 4 true [ 2; 3 ] (-1);
  def L.op_cmp_lt "cmp.lt" 4 true [ 2; 3 ] (-1);
  def L.op_cmp_le "cmp.le" 4 true [ 2; 3 ] (-1);
  def L.op_cmp_gt "cmp.gt" 4 true [ 2; 3 ] (-1);
  def L.op_cmp_ge "cmp.ge" 4 true [ 2; 3 ] (-1);
  def L.op_and "and" 4 true [ 2; 3 ] (-1);
  def L.op_or "or" 4 true [ 2; 3 ] (-1);
  def L.op_select "select" 5 true [ 2; 3; 4 ] (-1);
  def L.op_jmp "jmp" 2 false [] 1;
  def L.op_jz "jz" 3 false [ 1 ] 2;
  def L.op_probe "probe" 2 false [] (-1);
  def L.op_probe_h "probe.h" 2 false [] (-1);
  def L.op_cond "cond" 4 false [ 3 ] (-1);
  def L.op_decision "decision" 3 false [] (-1);
  def L.op_branch_h "branch.h" 3 false [ 2 ] (-1);
  def L.op_halt "halt" 1 false [] (-1);
  def L.op_jlt "jlt" 4 false [ 1; 2 ] 3;
  def L.op_jle "jle" 4 false [ 1; 2 ] 3;
  def L.op_jeq "jeq" 4 false [ 1; 2 ] 3;
  def L.op_jne "jne" 4 false [ 1; 2 ] 3;
  def L.op_jgt "jgt" 4 false [ 1; 2 ] 3;
  def L.op_jge "jge" 4 false [ 1; 2 ] 3;
  def L.op_jnz "jnz" 3 false [ 1 ] 2;
  def L.op_add_f32 "add.f32" 4 true [ 2; 3 ] (-1);
  def L.op_sub_f32 "sub.f32" 4 true [ 2; 3 ] (-1);
  def L.op_mul_f32 "mul.f32" 4 true [ 2; 3 ] (-1);
  def L.op_div_f32 "div.f32" 4 true [ 2; 3 ] (-1);
  def L.op_probe_jmp "probe.jmp" 3 false [] 2;
  def L.op_mov_jmp "mov.jmp" 4 true [ 2 ] 3;
  def L.op_jlt_p "jlt.p" 5 false [ 1; 2 ] 4;
  def L.op_jle_p "jle.p" 5 false [ 1; 2 ] 4;
  def L.op_jeq_p "jeq.p" 5 false [ 1; 2 ] 4;
  def L.op_jne_p "jne.p" 5 false [ 1; 2 ] 4;
  def L.op_jgt_p "jgt.p" 5 false [ 1; 2 ] 4;
  def L.op_jge_p "jge.p" 5 false [ 1; 2 ] 4;
  def L.op_jz_p "jz.p" 4 false [ 1 ] 3;
  def L.op_jnz_p "jnz.p" 4 false [ 1 ] 3;
  t

(* --- decoded form ------------------------------------------------- *)

type binst = {
  mutable b_op : int;
  mutable b_args : int array;  (* slots 1..size-1; the target slot (if any) is shadowed by b_target *)
  mutable b_target : int;  (* jump target as an instruction INDEX, or -1 *)
  mutable b_dead : bool;
}

let decode code =
  let len = Array.length code in
  let rec count i n = if i >= len then n else count (i + shapes.(code.(i)).s_size) (n + 1) in
  let n = count 0 0 in
  let insts =
    Array.init n (fun _ -> { b_op = L.op_halt; b_args = [||]; b_target = -1; b_dead = false })
  in
  let pc2ix = Hashtbl.create (2 * n) in
  let i = ref 0 and k = ref 0 in
  while !i < len do
    let sh = shapes.(code.(!i)) in
    Hashtbl.replace pc2ix !i !k;
    insts.(!k) <-
      { b_op = code.(!i); b_args = Array.sub code (!i + 1) (sh.s_size - 1); b_target = -1; b_dead = false };
    i := !i + sh.s_size;
    incr k
  done;
  Array.iter
    (fun b ->
      let sh = shapes.(b.b_op) in
      if sh.s_target >= 0 then b.b_target <- Hashtbl.find pc2ix b.b_args.(sh.s_target - 1))
    insts;
  insts

(* The final HALT of a block is never removed, so [first_live] is
   total: every index resolves to a live instruction at or after it. *)
let first_live insts t =
  let rec go j = if insts.(j).b_dead then go (j + 1) else j in
  go t

let next_live insts i = first_live insts (i + 1)

let is_cond_jump op =
  op = L.op_jz || op = L.op_jnz
  || (op >= L.op_jlt && op <= L.op_jge)
  || (op >= L.op_jlt_p && op <= L.op_jnz_p)

(* conditional jumps that fire a probe on fall-through — they carry a
   side effect, so they can never be deleted even when the branch
   itself becomes redundant *)
let is_probe_jump op = op >= L.op_jlt_p && op <= L.op_jnz_p

(* jumps that never fall through *)
let is_uncond_jump op = op = L.op_jmp || op = L.op_probe_jmp || op = L.op_mov_jmp

(* Leaders: instructions that can be reached from more than just the
   textually preceding instruction — straight-line dataflow state must
   be discarded there. Conservative superset is fine. *)
let compute_leaders insts =
  let n = Array.length insts in
  let leaders = Array.make n false in
  leaders.(first_live insts 0) <- true;
  Array.iteri
    (fun i b ->
      if not b.b_dead then begin
        if b.b_target >= 0 then leaders.(first_live insts b.b_target) <- true;
        if (is_uncond_jump b.b_op || b.b_op = L.op_halt) && i + 1 < n then
          leaders.(first_live insts (i + 1)) <- true
      end)
    insts;
  leaders

(* --- constant pool ------------------------------------------------ *)

type pool = {
  mutable p_vals : float array;
  mutable p_n : int;
  p_ix : (int64, int) Hashtbl.t;
}

let pool_of consts =
  let n = Array.length consts in
  let p = { p_vals = Array.make (max 8 (2 * n)) 0.0; p_n = n; p_ix = Hashtbl.create 16 } in
  Array.blit consts 0 p.p_vals 0 n;
  Array.iteri (fun ix f -> Hashtbl.replace p.p_ix (Int64.bits_of_float f) ix) consts;
  p

let pool_get p ix = p.p_vals.(ix)

let pool_find p f =
  let bits = Int64.bits_of_float f in
  match Hashtbl.find_opt p.p_ix bits with
  | Some ix -> ix
  | None ->
    let ix = p.p_n in
    if ix = Array.length p.p_vals then begin
      let bigger = Array.make (2 * ix) 0.0 in
      Array.blit p.p_vals 0 bigger 0 ix;
      p.p_vals <- bigger
    end;
    p.p_vals.(ix) <- f;
    Hashtbl.replace p.p_ix bits ix;
    p.p_n <- ix + 1;
    ix

(* --- pure-op evaluator -------------------------------------------- *)

(* same two's-complement wrap as Ir_vm *)
let[@inline] bwrap n mask half =
  let m = n land mask in
  if m >= half then m - (mask + 1) else m

(* Evaluate a register-writing op given its operand values — each arm
   mirrors the corresponding Ir_vm dispatch arm formula exactly, so
   folding at compile time produces the bits execution would. [a] is
   the args array (a.(0) = dst), [v] resolves a register operand. *)
let eval_pure op (a : int array) (v : int -> float) : float =
  match op with
  | 0 (* mov *) -> v a.(1)
  | 1 (* add_f *) -> v a.(1) +. v a.(2)
  | 2 (* sub_f *) -> v a.(1) -. v a.(2)
  | 3 (* mul_f *) -> v a.(1) *. v a.(2)
  | 4 (* div_f *) ->
    let y = v a.(2) in
    if y = 0.0 then 0.0 else v a.(1) /. y
  | 5 (* rem_f *) ->
    let y = v a.(2) in
    if y = 0.0 then 0.0 else Float.rem (v a.(1)) y
  | 6 (* add_i *) ->
    float_of_int (bwrap (int_of_float (v a.(1)) + int_of_float (v a.(2))) a.(3) a.(4))
  | 7 (* sub_i *) ->
    float_of_int (bwrap (int_of_float (v a.(1)) - int_of_float (v a.(2))) a.(3) a.(4))
  | 8 (* mul_i *) ->
    float_of_int (bwrap (int_of_float (v a.(1)) * int_of_float (v a.(2))) a.(3) a.(4))
  | 9 (* div_i *) ->
    let x = int_of_float (v a.(1)) and y = int_of_float (v a.(2)) in
    float_of_int (bwrap (if y = 0 then 0 else x / y) a.(3) a.(4))
  | 10 (* rem_i *) ->
    let x = int_of_float (v a.(1)) and y = int_of_float (v a.(2)) in
    float_of_int (bwrap (if y = 0 then 0 else x mod y) a.(3) a.(4))
  | 11 (* neg_f *) -> -.v a.(1)
  | 12 (* neg_i *) -> float_of_int (bwrap (-int_of_float (v a.(1))) a.(2) a.(3))
  | 13 (* abs_f *) -> Float.abs (v a.(1))
  | 14 (* abs_i *) -> float_of_int (bwrap (Int.abs (int_of_float (v a.(1)))) a.(2) a.(3))
  | 15 (* not *) -> if v a.(1) <> 0.0 then 0.0 else 1.0
  | 16 (* to_bool *) -> if v a.(1) <> 0.0 then 1.0 else 0.0
  | 17 (* round_f32 *) -> Value.normalize_float Dtype.Float32 (v a.(1))
  | 18 (* f2i_sat *) ->
    let f = v a.(1) in
    if Float.is_nan f then 0.0
    else begin
      let t = Float.trunc f in
      let lo = v a.(2) and hi = v a.(3) in
      if t <= lo then lo else if t >= hi then hi else t
    end
  | 19 (* wrap_i *) -> float_of_int (bwrap (int_of_float (v a.(1))) a.(2) a.(3))
  | 20 (* floor *) -> Float.floor (v a.(1))
  | 21 (* ceil *) -> Float.ceil (v a.(1))
  | 22 (* round *) -> Float.round (v a.(1))
  | 23 (* trunc *) -> Float.trunc (v a.(1))
  | 24 (* exp *) ->
    let r = Float.exp (v a.(1)) in
    if Float.is_nan r then 0.0 else r
  | 25 (* log *) ->
    let x = v a.(1) in
    if x <= 0.0 then 0.0 else Float.log x
  | 26 (* log10 *) ->
    let x = v a.(1) in
    if x <= 0.0 then 0.0 else Float.log10 x
  | 27 (* sqrt *) ->
    let x = v a.(1) in
    if x < 0.0 then 0.0 else Float.sqrt x
  | 28 (* sin *) ->
    let r = Float.sin (v a.(1)) in
    if Float.is_nan r then 0.0 else r
  | 29 (* cos *) ->
    let r = Float.cos (v a.(1)) in
    if Float.is_nan r then 0.0 else r
  | 30 (* cmp_eq *) -> if v a.(1) = v a.(2) then 1.0 else 0.0
  | 31 (* cmp_ne *) -> if v a.(1) <> v a.(2) then 1.0 else 0.0
  | 32 (* cmp_lt *) -> if v a.(1) < v a.(2) then 1.0 else 0.0
  | 33 (* cmp_le *) -> if v a.(1) <= v a.(2) then 1.0 else 0.0
  | 34 (* cmp_gt *) -> if v a.(1) > v a.(2) then 1.0 else 0.0
  | 35 (* cmp_ge *) -> if v a.(1) >= v a.(2) then 1.0 else 0.0
  | 36 (* and *) -> if v a.(1) <> 0.0 && v a.(2) <> 0.0 then 1.0 else 0.0
  | 37 (* or *) -> if v a.(1) <> 0.0 || v a.(2) <> 0.0 then 1.0 else 0.0
  | 38 (* select *) -> if v a.(1) <> 0.0 then v a.(2) else v a.(3)
  | 54 (* add_f32 *) -> Value.normalize_float Dtype.Float32 (v a.(1) +. v a.(2))
  | 55 (* sub_f32 *) -> Value.normalize_float Dtype.Float32 (v a.(1) -. v a.(2))
  | 56 (* mul_f32 *) -> Value.normalize_float Dtype.Float32 (v a.(1) *. v a.(2))
  | 57 (* div_f32 *) ->
    let y = v a.(2) in
    Value.normalize_float Dtype.Float32 (if y = 0.0 then 0.0 else v a.(1) /. y)
  | _ -> assert false

(* ops whose result is known to be exactly 0.0 or 1.0 *)
let produces_bool op =
  op = L.op_not || op = L.op_to_bool
  || (op >= L.op_cmp_eq && op <= L.op_cmp_ge)
  || op = L.op_and || op = L.op_or

(* --- pass: constant folding + propagation ------------------------- *)

(* Straight-line within basic blocks: per-register known values (and
   known-boolean facts) are tracked from each leader. Fully-known pure
   ops become MOVs from a (possibly new) pool register; selects and
   conditional jumps with a known condition are resolved. Saturation
   bounds (f2i_sat's lo/hi) are register operands from the pool, so
   they participate as ordinary known values — folding goes through
   the same clamp the VM would apply rather than a naive conversion. *)
let const_prop_pass ~pool ~const_base insts =
  let changed = ref false in
  let leaders = compute_leaders insts in
  let known : (int, float) Hashtbl.t = Hashtbl.create 32 in
  let boolv : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let getv r =
    if r >= const_base then Some (pool_get pool (r - const_base)) else Hashtbl.find_opt known r
  in
  let is_bool r =
    Hashtbl.mem boolv r
    || match getv r with Some f -> f = 0.0 || f = 1.0 | None -> false
  in
  let n = Array.length insts in
  for i = 0 to n - 1 do
    if leaders.(i) then begin
      Hashtbl.reset known;
      Hashtbl.reset boolv
    end;
    let b = insts.(i) in
    if not b.b_dead then begin
      let sh = shapes.(b.b_op) in
      if sh.s_dst then begin
        let dst = b.b_args.(0) in
        let all_known =
          Array.for_all (fun slot -> getv b.b_args.(slot - 1) <> None) sh.s_srcs
        in
        (* target-bearing writes (mov.jmp) transfer control: folding
           them to a plain MOV would drop the jump *)
        if all_known && sh.s_target < 0 then begin
          let value =
            eval_pure b.b_op b.b_args (fun r ->
                match getv r with Some f -> f | None -> assert false)
          in
          (if b.b_op = L.op_mov && b.b_args.(1) >= const_base then ()
           else begin
             let creg = const_base + pool_find pool value in
             b.b_op <- L.op_mov;
             b.b_args <- [| dst; creg |];
             changed := true
           end);
          Hashtbl.replace known dst value;
          Hashtbl.remove boolv dst
        end
        else begin
          (* partial knowledge: resolve selects with a known condition,
             collapse to_bool of an already-boolean source *)
          (if b.b_op = L.op_select then begin
             match getv b.b_args.(1) with
             | Some c ->
               let src = if c <> 0.0 then b.b_args.(2) else b.b_args.(3) in
               b.b_op <- L.op_mov;
               b.b_args <- [| dst; src |];
               changed := true
             | None -> ()
           end
           else if b.b_op = L.op_to_bool && is_bool b.b_args.(1) then begin
             b.b_op <- L.op_mov;
             b.b_args <- [| dst; b.b_args.(1) |];
             changed := true
           end);
          Hashtbl.remove known dst;
          if produces_bool b.b_op || (b.b_op = L.op_mov && is_bool b.b_args.(1)) then
            Hashtbl.replace boolv dst ()
          else Hashtbl.remove boolv dst
        end
      end
      else if b.b_op = L.op_jz then begin
        match getv b.b_args.(0) with
        | Some c ->
          if c = 0.0 then begin
            (* always taken *)
            b.b_op <- L.op_jmp;
            b.b_args <- [| 0 |]
          end
          else b.b_dead <- true (* never taken *);
          changed := true
        | None -> ()
      end
    end
  done;
  !changed

(* --- pass: copy propagation + move elimination -------------------- *)

let copy_prop_pass insts =
  let changed = ref false in
  let leaders = compute_leaders insts in
  (* dst -> root source register currently holding the same value;
     stored roots are themselves unmapped, so one lookup resolves *)
  let copy : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let resolve r = match Hashtbl.find_opt copy r with Some s -> s | None -> r in
  let n = Array.length insts in
  for i = 0 to n - 1 do
    if leaders.(i) then Hashtbl.reset copy;
    let b = insts.(i) in
    if not b.b_dead then begin
      let sh = shapes.(b.b_op) in
      Array.iter
        (fun slot ->
          let k = slot - 1 in
          let r = b.b_args.(k) in
          let r' = resolve r in
          if r' <> r then begin
            b.b_args.(k) <- r';
            changed := true
          end)
        sh.s_srcs;
      if sh.s_dst then begin
        let dst = b.b_args.(0) in
        Hashtbl.remove copy dst;
        let stale = Hashtbl.fold (fun d s acc -> if s = dst then d :: acc else acc) copy [] in
        List.iter (Hashtbl.remove copy) stale;
        if b.b_op = L.op_mov then begin
          let src = b.b_args.(1) in
          if src = dst then begin
            b.b_dead <- true;
            changed := true
          end
          else Hashtbl.replace copy dst src
        end
      end
    end
  done;
  !changed

(* --- pass: unreachable-code elimination --------------------------- *)

let successors insts i =
  let b = insts.(i) in
  if b.b_op = L.op_halt then []
  else if is_uncond_jump b.b_op then [ first_live insts b.b_target ]
  else if is_cond_jump b.b_op then [ first_live insts b.b_target; next_live insts i ]
  else [ next_live insts i ]

let unreachable_pass insts =
  let n = Array.length insts in
  let visited = Array.make n false in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs (successors insts i)
    end
  in
  dfs (first_live insts 0);
  let changed = ref false in
  for i = 0 to n - 2 (* keep the final HALT *) do
    if (not insts.(i).b_dead) && not visited.(i) then begin
      insts.(i).b_dead <- true;
      changed := true
    end
  done;
  !changed

(* --- liveness + dead-write elimination ---------------------------- *)

(* Per-instruction backward dataflow over the runtime registers
   (r < const_base; pool registers are read-only and excluded). Roots
   at HALT are the caller-supplied [roots] bytes. [reads_of] yields
   the registers an instruction reads, including the branch-hook
   expressions' hidden variable reads. Returns [live_in] (the driver
   roots block ends on the step block's entry set) and [live_out] per
   instruction (for the fusion pass). *)
let compute_liveness insts ~nbytes ~roots ~reads_of =
  let n = Array.length insts in
  let live_in = Array.init n (fun _ -> Bytes.make nbytes '\000') in
  let out = Bytes.create nbytes in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let b = insts.(i) in
      if not b.b_dead then begin
        if b.b_op = L.op_halt then Bytes.blit roots 0 out 0 nbytes
        else begin
          Bytes.fill out 0 nbytes '\000';
          List.iter
            (fun s ->
              let src = live_in.(s) in
              for k = 0 to nbytes - 1 do
                if Bytes.unsafe_get src k <> '\000' then Bytes.unsafe_set out k '\001'
              done)
            (successors insts i)
        end;
        if shapes.(b.b_op).s_dst then Bytes.set out b.b_args.(0) '\000';
        List.iter (fun r -> if r < nbytes then Bytes.set out r '\001') (reads_of b);
        if not (Bytes.equal out live_in.(i)) then begin
          Bytes.blit out 0 live_in.(i) 0 nbytes;
          changed := true
        end
      end
    done
  done;
  (* live_out per instruction, for fusion *)
  let live_out = Array.init n (fun _ -> Bytes.make nbytes '\000') in
  for i = 0 to n - 1 do
    let b = insts.(i) in
    if not b.b_dead then
      if b.b_op = L.op_halt then Bytes.blit roots 0 live_out.(i) 0 nbytes
      else
        List.iter
          (fun s ->
            let src = live_in.(s) in
            let dst = live_out.(i) in
            for k = 0 to nbytes - 1 do
              if Bytes.unsafe_get src k <> '\000' then Bytes.unsafe_set dst k '\001'
            done)
          (successors insts i)
  done;
  (live_in, live_out)

let dce_pass insts ~nbytes ~roots ~reads_of =
  let _, live_out = compute_liveness insts ~nbytes ~roots ~reads_of in
  let changed = ref false in
  Array.iteri
    (fun i b ->
      (* target-bearing writes (mov.jmp) transfer control and must
         stay even when the written register is dead *)
      if (not b.b_dead) && shapes.(b.b_op).s_dst && shapes.(b.b_op).s_target < 0 then begin
        let dst = b.b_args.(0) in
        if Bytes.get live_out.(i) dst = '\000' then begin
          b.b_dead <- true;
          changed := true
        end
      end)
    insts;
  !changed

(* --- pass: jump threading ----------------------------------------- *)

let thread_pass insts =
  let changed = ref false in
  let n = Array.length insts in
  (* follow jmp chains (cycle-guarded; generated code is acyclic but
     be safe) to the final destination index *)
  let resolve t =
    let seen = Hashtbl.create 4 in
    let rec go j =
      let j = first_live insts j in
      if insts.(j).b_op = L.op_jmp && not (Hashtbl.mem seen j) then begin
        Hashtbl.replace seen j ();
        go insts.(j).b_target
      end
      else j
    in
    go t
  in
  for i = 0 to n - 1 do
    let b = insts.(i) in
    if (not b.b_dead) && b.b_target >= 0 then begin
      let t' = resolve b.b_target in
      if first_live insts b.b_target <> t' then begin
        b.b_target <- t';
        changed := true
      end;
      let fallthrough = next_live insts i in
      if t' = fallthrough then begin
        (* a branch to the fall-through is a no-op — but the fused
           forms carry a side effect that must survive as the unfused
           instruction. Probe-carrying branches stay as they are: both
           paths continue at the same pc, yet whether the probe fires
           still depends on the condition. *)
        if b.b_op = L.op_probe_jmp then begin
          b.b_op <- L.op_probe;
          b.b_args <- [| b.b_args.(0) |];
          b.b_target <- -1;
          changed := true
        end
        else if b.b_op = L.op_mov_jmp then begin
          b.b_op <- L.op_mov;
          b.b_args <- [| b.b_args.(0); b.b_args.(1) |];
          b.b_target <- -1;
          changed := true
        end
        else if not (is_probe_jump b.b_op) then begin
          b.b_dead <- true;
          changed := true
        end
      end
      else if b.b_op = L.op_jmp && insts.(t').b_op = L.op_halt then begin
        b.b_op <- L.op_halt;
        b.b_args <- [||];
        b.b_target <- -1;
        changed := true
      end
    end
  done;
  !changed

(* --- pass: superinstruction fusion -------------------------------- *)

let fused_of_cmp op =
  if op = L.op_cmp_eq then L.op_jeq
  else if op = L.op_cmp_ne then L.op_jne
  else if op = L.op_cmp_lt then L.op_jlt
  else if op = L.op_cmp_le then L.op_jle
  else if op = L.op_cmp_gt then L.op_jgt
  else L.op_jge

let fused_of_arith op =
  if op = L.op_add_f then L.op_add_f32
  else if op = L.op_sub_f then L.op_sub_f32
  else if op = L.op_mul_f then L.op_mul_f32
  else L.op_div_f32

let fuse_pass insts ~nbytes ~roots ~reads_of =
  let _, live_out = compute_liveness insts ~nbytes ~roots ~reads_of in
  let leaders = compute_leaders insts in
  let changed = ref false in
  let n = Array.length insts in
  for i = 0 to n - 2 do
    let b = insts.(i) in
    if not b.b_dead then begin
      let j = next_live insts i in
      let f = insts.(j) in
      let dst = if shapes.(b.b_op).s_dst then b.b_args.(0) else -1 in
      (* a jump into the middle of the pair would skip the first half *)
      let adjacent = j < n && not leaders.(j) in
      if
        adjacent && b.b_op >= L.op_cmp_eq && b.b_op <= L.op_cmp_ge
        && f.b_op = L.op_jz && f.b_args.(0) = dst
        && Bytes.get live_out.(j) dst = '\000'
      then begin
        b.b_op <- fused_of_cmp b.b_op;
        b.b_args <- [| b.b_args.(1); b.b_args.(2); 0 |];
        b.b_target <- f.b_target;
        f.b_dead <- true;
        changed := true
      end
      else if
        adjacent && b.b_op = L.op_not && f.b_op = L.op_jz && f.b_args.(0) = dst
        && Bytes.get live_out.(j) dst = '\000'
      then begin
        (* not t, s; jz t, L  ==  jump to L when s <> 0 *)
        b.b_op <- L.op_jnz;
        b.b_args <- [| b.b_args.(1); 0 |];
        b.b_target <- f.b_target;
        f.b_dead <- true;
        changed := true
      end
      else if
        adjacent && b.b_op >= L.op_add_f && b.b_op <= L.op_div_f
        && f.b_op = L.op_round_f32 && f.b_args.(1) = dst
        && (f.b_args.(0) = dst || Bytes.get live_out.(j) dst = '\000')
      then begin
        b.b_op <- fused_of_arith b.b_op;
        b.b_args <- [| f.b_args.(0); b.b_args.(1); b.b_args.(2) |];
        f.b_dead <- true;
        changed := true
      end
      else if adjacent && b.b_op = L.op_probe && f.b_op = L.op_jmp then begin
        b.b_op <- L.op_probe_jmp;
        b.b_args <- [| b.b_args.(0); 0 |];
        b.b_target <- f.b_target;
        f.b_dead <- true;
        changed := true
      end
      else if
        adjacent && b.b_op >= L.op_jlt && b.b_op <= L.op_jge && f.b_op = L.op_probe
      then begin
        (* branch + then-arm probe: the probe fires exactly when the
           branch falls through, so it rides along in the branch's own
           dispatch (leaders guard against jumps into the pair, so the
           jump path never reached the probe either) *)
        b.b_op <- b.b_op - L.op_jlt + L.op_jlt_p;
        b.b_args <- [| b.b_args.(0); b.b_args.(1); f.b_args.(0); 0 |];
        f.b_dead <- true;
        changed := true
      end
      else if
        adjacent && (b.b_op = L.op_jz || b.b_op = L.op_jnz) && f.b_op = L.op_probe
      then begin
        b.b_op <- (if b.b_op = L.op_jz then L.op_jz_p else L.op_jnz_p);
        b.b_args <- [| b.b_args.(0); f.b_args.(0); 0 |];
        f.b_dead <- true;
        changed := true
      end
      else if adjacent && b.b_op = L.op_mov && f.b_op = L.op_jmp then begin
        b.b_op <- L.op_mov_jmp;
        b.b_args <- [| b.b_args.(0); b.b_args.(1); 0 |];
        b.b_target <- f.b_target;
        f.b_dead <- true;
        changed := true
      end
    end
  done;
  !changed

(* --- pass: block-local probe dedup -------------------------------- *)

(* Within a straight-line region, a [probe id] whose cell is already
   known to have fired on the path reaching it is a no-op: the buffer
   write is idempotent and the dirty-list append is guarded by the
   fired byte, so dropping it is observationally invisible. Knowledge
   comes from an earlier [probe id] in the region and from the
   fall-through of a probe-carrying branch (reaching the next
   instruction in line implies the branch fell through, hence fired).
   [probe_h] is never removed (its hook must fire every time) and
   contributes no knowledge, since hook-instrumented code must keep
   calling the hook even when the buffer byte is already set. *)
let probe_dedup_pass insts =
  let changed = ref false in
  let leaders = compute_leaders insts in
  let fired : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i b ->
      if leaders.(i) then Hashtbl.reset fired;
      if not b.b_dead then begin
        let op = b.b_op in
        if op = L.op_probe then begin
          let id = b.b_args.(0) in
          if Hashtbl.mem fired id then begin
            b.b_dead <- true;
            changed := true
          end
          else Hashtbl.replace fired id ()
        end
        else if op >= L.op_jlt_p && op <= L.op_jge_p then Hashtbl.replace fired b.b_args.(2) ()
        else if op = L.op_jz_p || op = L.op_jnz_p then Hashtbl.replace fired b.b_args.(1) ()
      end)
    insts;
  !changed

(* --- encode ------------------------------------------------------- *)

let encode insts =
  let n = Array.length insts in
  let pcs = Array.make n (-1) in
  let pc = ref 0 in
  for i = 0 to n - 1 do
    if not insts.(i).b_dead then begin
      pcs.(i) <- !pc;
      pc := !pc + shapes.(insts.(i).b_op).s_size
    end
  done;
  let code = Array.make !pc 0 in
  for i = 0 to n - 1 do
    let b = insts.(i) in
    if not b.b_dead then begin
      let sh = shapes.(b.b_op) in
      let at = pcs.(i) in
      code.(at) <- b.b_op;
      Array.blit b.b_args 0 code (at + 1) (sh.s_size - 1);
      if sh.s_target >= 0 then code.(at + sh.s_target) <- pcs.(first_live insts b.b_target)
    end
  done;
  code

(* --- driver ------------------------------------------------------- *)

let optimize_bytecode (lin : L.t) : L.t =
  span "ir_opt.optimize_bytecode" @@ fun () ->
  let const_base = lin.L.l_const_base in
  let prog = lin.L.l_prog in
  let nbytes = max const_base 1 in
  let pool = pool_of lin.L.l_consts in
  let hook_reads = Array.map (fun e -> expr_reads [] e) lin.L.l_ifs in
  let reads_of b =
    let sh = shapes.(b.b_op) in
    let acc = ref [] in
    Array.iter (fun slot -> acc := b.b_args.(slot - 1) :: !acc) sh.s_srcs;
    if b.b_op = L.op_branch_h then acc := hook_reads.(b.b_args.(0)) @ !acc;
    !acc
  in
  let init_i = decode lin.L.l_init in
  let step_i = decode lin.L.l_step in
  (* DCE roots at block end: I/O and state variables, plus whatever
     the next step iteration reads before writing — the entry-live set
     of the current step code, taken to a fixpoint since rooting a
     register can extend liveness back to the entry. Branch-hook
     distance expressions read registers at dispatch time, which
     [reads_of] charges to the branch_h instruction, so they need no
     separate rooting. After both init and step the next thing to run
     is step, so the same set roots both blocks. *)
  let base_roots = Bytes.make nbytes '\000' in
  let add_var (v : Ir.var) =
    if v.Ir.vid < nbytes then Bytes.set base_roots v.Ir.vid '\001'
  in
  Array.iter add_var prog.Ir.inputs;
  Array.iter add_var prog.Ir.outputs;
  Array.iter add_var prog.Ir.states;
  let compute_roots () =
    let roots = Bytes.copy base_roots in
    let rec grow () =
      let live_in, _ = compute_liveness step_i ~nbytes ~roots ~reads_of in
      let entry = live_in.(first_live step_i 0) in
      let grew = ref false in
      for k = 0 to nbytes - 1 do
        if Bytes.get entry k <> '\000' && Bytes.get roots k = '\000' then begin
          Bytes.set roots k '\001';
          grew := true
        end
      done;
      if !grew then grow ()
    in
    grow ();
    roots
  in
  let run_passes insts roots =
    let c1 = span "ir_opt.bc.const_prop" (fun () -> const_prop_pass ~pool ~const_base insts) in
    let c2 = span "ir_opt.bc.copy_prop" (fun () -> copy_prop_pass insts) in
    let c3 = span "ir_opt.bc.unreachable" (fun () -> unreachable_pass insts) in
    let c4 = span "ir_opt.bc.dce" (fun () -> dce_pass insts ~nbytes ~roots ~reads_of) in
    let c5 = span "ir_opt.bc.thread" (fun () -> thread_pass insts) in
    let c6 = span "ir_opt.bc.probe_dedup" (fun () -> probe_dedup_pass insts) in
    c1 || c2 || c3 || c4 || c5 || c6
  in
  (* run to a fixpoint: simplify, fuse, then — because fusion and
     shrinking code can both expose more work (and shrink the root
     set) — repeat until a whole cycle changes nothing. The bound is a
     backstop; real models settle in two or three cycles. Reaching the
     fixpoint makes optimize_bytecode idempotent. *)
  let rec cycles k roots =
    if k > 0 then begin
      let rec rounds j =
        if j > 0 then begin
          let a = run_passes init_i roots in
          let b = run_passes step_i roots in
          if a || b then rounds (j - 1)
        end
      in
      rounds 8;
      let fa = span "ir_opt.bc.fuse" (fun () -> fuse_pass init_i ~nbytes ~roots ~reads_of) in
      let fb = span "ir_opt.bc.fuse" (fun () -> fuse_pass step_i ~nbytes ~roots ~reads_of) in
      if fa then ignore (thread_pass init_i);
      if fb then ignore (thread_pass step_i);
      let roots' = compute_roots () in
      if fa || fb || not (Bytes.equal roots' roots) then cycles (k - 1) roots'
    end
  in
  cycles 10 (compute_roots ());
  (* compact the constant pool to the registers the surviving code
     actually references *)
  let used = Array.make (max pool.p_n 1) (-1) in
  let n_used = ref 0 in
  let note_reads insts =
    Array.iter
      (fun b ->
        if not b.b_dead then
          Array.iter
            (fun slot ->
              let r = b.b_args.(slot - 1) in
              if r >= const_base then begin
                let ix = r - const_base in
                if used.(ix) < 0 then begin
                  used.(ix) <- !n_used;
                  incr n_used
                end
              end)
            shapes.(b.b_op).s_srcs)
      insts
  in
  note_reads init_i;
  note_reads step_i;
  let consts' = Array.make !n_used 0.0 in
  Array.iteri (fun old_ix new_ix -> if new_ix >= 0 then consts'.(new_ix) <- pool_get pool old_ix) used;
  let remap insts =
    Array.iter
      (fun b ->
        if not b.b_dead then
          Array.iter
            (fun slot ->
              let k = slot - 1 in
              let r = b.b_args.(k) in
              if r >= const_base then b.b_args.(k) <- const_base + used.(r - const_base))
            shapes.(b.b_op).s_srcs)
      insts
  in
  remap init_i;
  remap step_i;
  {
    lin with
    L.l_init = encode init_i;
    l_step = encode step_i;
    l_n_regs = const_base + !n_used;
    l_consts = consts';
  }

(* --- instruction counting + disassembly --------------------------- *)

let static_count (lin : L.t) =
  let count code =
    let rec go i n = if i >= Array.length code then n else go (i + shapes.(code.(i)).s_size) (n + 1) in
    go 0 0
  in
  count lin.L.l_init + count lin.L.l_step

(* Reference interpreter over the decoded form: executes init plus one
   step per input row (raw floats per inport, in port order) and
   counts every instruction dispatched. Instrumentation ops count as
   one dispatch and are otherwise skipped. Used by `bench speed` to
   report the dynamic instruction-count reduction. *)
let dynamic_count (lin : L.t) (rows : float array array) : int =
  let regs = Array.make (max lin.L.l_n_regs 1) 0.0 in
  let count = ref 0 in
  let run insts =
    let rec go i =
      let b = insts.(i) in
      incr count;
      let op = b.b_op in
      if op = L.op_halt then ()
      else if op = L.op_jmp || op = L.op_probe_jmp then go b.b_target
      else if op = L.op_mov_jmp then begin
        regs.(b.b_args.(0)) <- regs.(b.b_args.(1));
        go b.b_target
      end
      else if op = L.op_jz then
        if regs.(b.b_args.(0)) = 0.0 then go b.b_target else go (i + 1)
      else if op = L.op_jnz then
        if regs.(b.b_args.(0)) <> 0.0 then go b.b_target else go (i + 1)
      else if op >= L.op_jlt && op <= L.op_jge then begin
        let x = regs.(b.b_args.(0)) and y = regs.(b.b_args.(1)) in
        let holds =
          if op = L.op_jlt then x < y
          else if op = L.op_jle then x <= y
          else if op = L.op_jeq then x = y
          else if op = L.op_jne then x <> y
          else if op = L.op_jgt then x > y
          else x >= y
        in
        if holds then go (i + 1) else go b.b_target
      end
      else if op >= L.op_jlt_p && op <= L.op_jge_p then begin
        let x = regs.(b.b_args.(0)) and y = regs.(b.b_args.(1)) in
        let holds =
          if op = L.op_jlt_p then x < y
          else if op = L.op_jle_p then x <= y
          else if op = L.op_jeq_p then x = y
          else if op = L.op_jne_p then x <> y
          else if op = L.op_jgt_p then x > y
          else x >= y
        in
        if holds then go (i + 1) else go b.b_target
      end
      else if op = L.op_jz_p then
        if regs.(b.b_args.(0)) = 0.0 then go b.b_target else go (i + 1)
      else if op = L.op_jnz_p then
        if regs.(b.b_args.(0)) <> 0.0 then go b.b_target else go (i + 1)
      else if shapes.(op).s_dst then begin
        regs.(b.b_args.(0)) <- eval_pure op b.b_args (fun r -> regs.(r));
        go (i + 1)
      end
      else go (i + 1) (* probe / cond / decision / branch hook *)
    in
    go 0
  in
  let init_i = decode lin.L.l_init and step_i = decode lin.L.l_step in
  Array.fill regs 0 (Array.length regs) 0.0;
  Array.blit lin.L.l_consts 0 regs lin.L.l_const_base (Array.length lin.L.l_consts);
  run init_i;
  let inputs = lin.L.l_prog.Ir.inputs in
  Array.iter
    (fun row ->
      Array.iteri (fun k f -> regs.(inputs.(k).Ir.vid) <- f) row;
      run step_i)
    rows;
  !count

(* --- bytecode profiling ------------------------------------------- *)

let opcode_name op = shapes.(op).s_name

type bytecode_profile = {
  bp_dispatches : int;
  bp_init_dispatches : int;
  bp_step_dispatches : int;
  bp_opcode_dyn : int array;  (* dispatches per opcode, length n_opcodes *)
  bp_init_hits : int array;  (* hit count per instruction, in stream order *)
  bp_step_hits : int array;
}

(* Same reference interpreter as [dynamic_count], but it also fills a
   per-instruction hit-count array and a per-opcode dispatch
   histogram. Kept separate from the Ir_vm dispatch loop on purpose:
   the hot loop stays untouched (and unperturbed) and profiling pays
   the decoded-form interpretation cost instead, which is fine for an
   opt-in diagnostic. *)
let profile_bytecode (lin : L.t) (rows : float array array) : bytecode_profile =
  let regs = Array.make (max lin.L.l_n_regs 1) 0.0 in
  let opcode_dyn = Array.make L.n_opcodes 0 in
  let run insts hits =
    let dispatched = ref 0 in
    let rec go i =
      let b = insts.(i) in
      incr dispatched;
      hits.(i) <- hits.(i) + 1;
      let op = b.b_op in
      opcode_dyn.(op) <- opcode_dyn.(op) + 1;
      if op = L.op_halt then ()
      else if op = L.op_jmp || op = L.op_probe_jmp then go b.b_target
      else if op = L.op_mov_jmp then begin
        regs.(b.b_args.(0)) <- regs.(b.b_args.(1));
        go b.b_target
      end
      else if op = L.op_jz then
        if regs.(b.b_args.(0)) = 0.0 then go b.b_target else go (i + 1)
      else if op = L.op_jnz then
        if regs.(b.b_args.(0)) <> 0.0 then go b.b_target else go (i + 1)
      else if op >= L.op_jlt && op <= L.op_jge then begin
        let x = regs.(b.b_args.(0)) and y = regs.(b.b_args.(1)) in
        let holds =
          if op = L.op_jlt then x < y
          else if op = L.op_jle then x <= y
          else if op = L.op_jeq then x = y
          else if op = L.op_jne then x <> y
          else if op = L.op_jgt then x > y
          else x >= y
        in
        if holds then go (i + 1) else go b.b_target
      end
      else if op >= L.op_jlt_p && op <= L.op_jge_p then begin
        let x = regs.(b.b_args.(0)) and y = regs.(b.b_args.(1)) in
        let holds =
          if op = L.op_jlt_p then x < y
          else if op = L.op_jle_p then x <= y
          else if op = L.op_jeq_p then x = y
          else if op = L.op_jne_p then x <> y
          else if op = L.op_jgt_p then x > y
          else x >= y
        in
        if holds then go (i + 1) else go b.b_target
      end
      else if op = L.op_jz_p then
        if regs.(b.b_args.(0)) = 0.0 then go b.b_target else go (i + 1)
      else if op = L.op_jnz_p then
        if regs.(b.b_args.(0)) <> 0.0 then go b.b_target else go (i + 1)
      else if shapes.(op).s_dst then begin
        regs.(b.b_args.(0)) <- eval_pure op b.b_args (fun r -> regs.(r));
        go (i + 1)
      end
      else go (i + 1) (* probe / cond / decision / branch hook *)
    in
    go 0;
    !dispatched
  in
  let init_i = decode lin.L.l_init and step_i = decode lin.L.l_step in
  let init_hits = Array.make (max (Array.length init_i) 1) 0 in
  let step_hits = Array.make (max (Array.length step_i) 1) 0 in
  Array.fill regs 0 (Array.length regs) 0.0;
  Array.blit lin.L.l_consts 0 regs lin.L.l_const_base (Array.length lin.L.l_consts);
  let init_n = run init_i init_hits in
  let inputs = lin.L.l_prog.Ir.inputs in
  let step_n = ref 0 in
  Array.iter
    (fun row ->
      Array.iteri (fun k f -> regs.(inputs.(k).Ir.vid) <- f) row;
      step_n := !step_n + run step_i step_hits)
    rows;
  {
    bp_dispatches = init_n + !step_n;
    bp_init_dispatches = init_n;
    bp_step_dispatches = !step_n;
    bp_opcode_dyn = opcode_dyn;
    bp_init_hits = init_hits;
    bp_step_hits = step_hits;
  }

let opcode_histogram (lin : L.t) =
  let h = Array.make L.n_opcodes 0 in
  let scan code =
    let rec go i =
      if i < Array.length code then begin
        h.(code.(i)) <- h.(code.(i)) + 1;
        go (i + shapes.(code.(i)).s_size)
      end
    in
    go 0
  in
  scan lin.L.l_init;
  scan lin.L.l_step;
  h

let disassemble ?hits (lin : L.t) =
  let buf = Buffer.create 1024 in
  let const_base = lin.L.l_const_base in
  let block name code block_hits =
    Buffer.add_string buf (name ^ ":\n");
    let inst_ix = ref 0 in
    let rec go i =
      if i < Array.length code then begin
        let sh = shapes.(code.(i)) in
        (match block_hits with
        | Some h ->
          let n = if !inst_ix < Array.length h then h.(!inst_ix) else 0 in
          Buffer.add_string buf (Printf.sprintf "%10d x " n)
        | None -> ());
        incr inst_ix;
        Buffer.add_string buf (Printf.sprintf "%5d: %-10s" i sh.s_name);
        for slot = 1 to sh.s_size - 1 do
          let v = code.(i + slot) in
          let s =
            if slot = sh.s_target then Printf.sprintf "-> %d" v
            else if (slot = 1 && sh.s_dst) || Array.exists (( = ) slot) sh.s_srcs then
              if v >= const_base then
                Printf.sprintf "k%d(%g)" (v - const_base) lin.L.l_consts.(v - const_base)
              else Printf.sprintf "r%d" v
            else string_of_int v (* immediate: mask / half / probe id / … *)
          in
          Buffer.add_string buf (if slot = 1 then " " ^ s else ", " ^ s)
        done;
        Buffer.add_char buf '\n';
        go (i + sh.s_size)
      end
    in
    go 0
  in
  let init_hits, step_hits =
    match hits with
    | Some (a, b) -> (Some a, Some b)
    | None -> (None, None)
  in
  block "init" lin.L.l_init init_hits;
  block "step" lin.L.l_step step_hits;
  Buffer.contents buf
