open Cftcg_model

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let rec has_read = function
  | Ir.Const _ -> false
  | Ir.Read _ -> true
  | Ir.Unop (_, a) -> has_read a
  | Ir.Binop (_, _, a, b) -> has_read a || has_read b
  | Ir.Select (c, a, b) -> has_read c || has_read a || has_read b

(* Evaluate a closed expression with the exact runtime semantics by
   running it through the reference evaluator on an empty store. *)
let eval_closed e =
  if has_read e then None
  else begin
    let dummy =
      {
        Ir.prog_name = "const";
        n_vars = 0;
        inputs = [||];
        outputs = [||];
        states = [||];
        init = [];
        step = [];
        n_probes = 0;
        decisions = [||];
        assertions = [||];
        lookup_tables = [||];
      }
    in
    Some (Ir_eval.eval_expr (Ir_eval.create dummy) e)
  end

let rec fold_expr e =
  let folded =
    match e with
    | Ir.Const _ | Ir.Read _ -> e
    | Ir.Unop (op, a) -> Ir.Unop (op, fold_expr a)
    | Ir.Binop (op, ty, a, b) -> Ir.Binop (op, ty, fold_expr a, fold_expr b)
    | Ir.Select (c, a, b) -> (
      let c = fold_expr c in
      let a = fold_expr a in
      let b = fold_expr b in
      match eval_closed c with
      | Some cv ->
        (* arms are pure expressions, so dropping one is sound *)
        if Value.is_true cv then a else b
      | None -> Ir.Select (c, a, b))
  in
  match folded with
  | Ir.Const _ | Ir.Read _ -> folded
  | folded -> (
    match eval_closed folded with
    | Some v ->
      (* keep the static type stable: folding must not change the
         wrap/saturate behaviour of the surrounding operator *)
      if Dtype.equal (Value.dtype v) (Ir.type_of folded) then Ir.Const v else folded
    | None -> folded)

let rec fold_stmt (s : Ir.stmt) : Ir.stmt list =
  match s with
  | Ir.Assign (v, e) -> [ Ir.Assign (v, fold_expr e) ]
  | Ir.Probe _ | Ir.Comment _ | Ir.Record_decision _ -> [ s ]
  | Ir.Record_cond { dec; cond_ix; value } ->
    [ Ir.Record_cond { dec; cond_ix; value = fold_expr value } ]
  | Ir.If { cond; dec; then_; else_ } -> (
    let cond = fold_expr cond in
    let then_ = fold_stmts then_ in
    let else_ = fold_stmts else_ in
    match eval_closed cond with
    | Some cv -> if Value.is_true cv then then_ else else_
    | None -> [ Ir.If { cond; dec; then_; else_ } ])

and fold_stmts stmts = List.concat_map fold_stmt stmts

let constant_fold (p : Ir.program) =
  { p with Ir.init = fold_stmts p.Ir.init; step = fold_stmts p.Ir.step }

(* ------------------------------------------------------------------ *)
(* Copy propagation (straight-line, conservative across branches)     *)
(* ------------------------------------------------------------------ *)

module Env = Map.Make (Int)

(* env maps vid -> replacement expr (Const or Read of an equal-typed
   var). Invalidation removes entries whose target or source was
   rewritten. *)
let kill vid env =
  Env.filter
    (fun target repl ->
      target <> vid
      &&
      match repl with
      | Ir.Read w -> w.Ir.vid <> vid
      | _ -> true)
    env

let rec subst env e =
  match e with
  | Ir.Const _ -> e
  | Ir.Read v -> (
    match Env.find_opt v.Ir.vid env with
    | Some repl -> repl
    | None -> e)
  | Ir.Unop (op, a) -> Ir.Unop (op, subst env a)
  | Ir.Binop (op, ty, a, b) -> Ir.Binop (op, ty, subst env a, subst env b)
  | Ir.Select (c, a, b) -> Ir.Select (subst env c, subst env a, subst env b)

let rec propagate_block env stmts =
  match stmts with
  | [] -> ([], env)
  | s :: rest -> (
    match s with
    | Ir.Assign (v, e) ->
      let e = subst env e in
      let env = kill v.Ir.vid env in
      let env =
        match e with
        | Ir.Const c -> Env.add v.Ir.vid (Ir.Const (Value.cast v.Ir.vty c)) env
        | Ir.Read w when Dtype.equal w.Ir.vty v.Ir.vty && w.Ir.vid <> v.Ir.vid ->
          Env.add v.Ir.vid (Ir.Read w) env
        | _ -> env
      in
      let rest', env' = propagate_block env rest in
      (Ir.Assign (v, e) :: rest', env')
    | Ir.Record_cond { dec; cond_ix; value } ->
      let rest', env' = propagate_block env rest in
      (Ir.Record_cond { dec; cond_ix; value = subst env value } :: rest', env')
    | Ir.Probe _ | Ir.Comment _ | Ir.Record_decision _ ->
      let rest', env' = propagate_block env rest in
      (s :: rest', env')
    | Ir.If { cond; dec; then_; else_ } ->
      let cond = subst env cond in
      let then_, _ = propagate_block env then_ in
      let else_, _ = propagate_block env else_ in
      (* conservative: forget everything after a branch join *)
      let rest', env' = propagate_block Env.empty rest in
      (Ir.If { cond; dec; then_; else_ } :: rest', env'))

let propagate_copies (p : Ir.program) =
  let init, _ = propagate_block Env.empty p.Ir.init in
  let step, _ = propagate_block Env.empty p.Ir.step in
  { p with Ir.init = init; step }

(* ------------------------------------------------------------------ *)
(* Dead assignment elimination                                         *)
(* ------------------------------------------------------------------ *)

let rec expr_reads acc = function
  | Ir.Const _ -> acc
  | Ir.Read v -> v.Ir.vid :: acc
  | Ir.Unop (_, a) -> expr_reads acc a
  | Ir.Binop (_, _, a, b) -> expr_reads (expr_reads acc a) b
  | Ir.Select (c, a, b) -> expr_reads (expr_reads (expr_reads acc c) a) b

let rec stmt_reads acc = function
  | Ir.Assign (_, e) -> expr_reads acc e
  | Ir.If { cond; then_; else_; _ } ->
    let acc = expr_reads acc cond in
    let acc = List.fold_left stmt_reads acc then_ in
    List.fold_left stmt_reads acc else_
  | Ir.Record_cond { value; _ } -> expr_reads acc value
  | Ir.Probe _ | Ir.Comment _ | Ir.Record_decision _ -> acc

module IS = Set.Make (Int)

(* Backward liveness over one statement list. Returns the rewritten
   list and the live-in set. A statement list is re-executed every
   step, so the end-of-step live set must include every variable whose
   value can survive into the next step: outputs, states, and any
   variable read anywhere in the step (conservative). *)
let rec dce_block live_out stmts =
  match stmts with
  | [] -> ([], live_out)
  | s :: rest -> (
    let rest', live = dce_block live_out rest in
    match s with
    | Ir.Assign (v, e) ->
      if IS.mem v.Ir.vid live then begin
        let live = IS.remove v.Ir.vid live in
        let live = List.fold_left (fun acc r -> IS.add r acc) live (expr_reads [] e) in
        (Ir.Assign (v, e) :: rest', live)
      end
      else (rest', live) (* dead store *)
    | Ir.If { cond; dec; then_; else_ } ->
      let then', live_t = dce_block live then_ in
      let else', live_e = dce_block live else_ in
      let live = IS.union live_t live_e in
      let live = List.fold_left (fun acc r -> IS.add r acc) live (expr_reads [] cond) in
      (Ir.If { cond; dec; then_ = then'; else_ = else' } :: rest', live)
    | Ir.Record_cond { value; _ } ->
      let live = List.fold_left (fun acc r -> IS.add r acc) live (expr_reads [] value) in
      (s :: rest', live)
    | Ir.Probe _ | Ir.Comment _ | Ir.Record_decision _ -> (s :: rest', live))

let eliminate_dead_assignments (p : Ir.program) =
  let always_live =
    let add acc (v : Ir.var) = IS.add v.Ir.vid acc in
    let acc = Array.fold_left add IS.empty p.Ir.outputs in
    let acc = Array.fold_left add acc p.Ir.states in
    Array.fold_left add acc p.Ir.inputs
  in
  let read_somewhere =
    List.fold_left stmt_reads [] p.Ir.step |> List.fold_left (fun acc r -> IS.add r acc) IS.empty
  in
  let end_live = IS.union always_live read_somewhere in
  let step, _ = dce_block end_live p.Ir.step in
  (* init establishes state: keep it intact *)
  { p with Ir.step }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let one_round p = eliminate_dead_assignments (propagate_copies (constant_fold p))

let optimize p =
  let rec go n p =
    if n = 0 then p
    else begin
      let p' = one_round p in
      if Ir.stmt_count p' = Ir.stmt_count p then p' else go (n - 1) p'
    end
  in
  go 4 p

let stats before after =
  Printf.sprintf "%d -> %d statements (%.0f%% removed)" (Ir.stmt_count before)
    (Ir.stmt_count after)
    (100.0
    *. float_of_int (Ir.stmt_count before - Ir.stmt_count after)
    /. float_of_int (max 1 (Ir.stmt_count before)))
