open Cftcg_model

(* Statements annotated with the static depth-first index of each If
   (init traversed before step, then-arm before else-arm), matching
   the numbering Ir_compile bakes into its closures. *)
type astmt =
  | A_assign of Ir.var * Ir.expr
  | A_if of { if_ix : int; cond : Ir.expr; then_ : astmt list; else_ : astmt list }
  | A_probe of int
  | A_record_cond of { dec : int; cond_ix : int; value : Ir.expr }
  | A_record_decision of { dec : int; outcome : int }

type t = {
  prog : Ir.program;
  store : Value.t array;
  anno_init : astmt list;
  anno_step : astmt list;
}

let annotate counter stmts =
  let rec go_stmt (s : Ir.stmt) =
    match s with
    | Ir.Assign (v, e) -> Some (A_assign (v, e))
    | Ir.If { cond; dec = _; then_; else_ } ->
      let if_ix = !counter in
      incr counter;
      let then_ = go_block then_ in
      let else_ = go_block else_ in
      Some (A_if { if_ix; cond; then_; else_ })
    | Ir.Probe id -> Some (A_probe id)
    | Ir.Record_cond { dec; cond_ix; value } -> Some (A_record_cond { dec; cond_ix; value })
    | Ir.Record_decision { dec; outcome } -> Some (A_record_decision { dec; outcome })
    | Ir.Comment _ -> None
  and go_block stmts = List.filter_map go_stmt stmts in
  go_block stmts

let create (prog : Ir.program) =
  let counter = ref 0 in
  let anno_init = annotate counter prog.Ir.init in
  let anno_step = annotate counter prog.Ir.step in
  { prog; store = Array.make prog.Ir.n_vars (Value.of_bool false); anno_init; anno_step }

let total_unary ty f x =
  (* embedded-safe math: out-of-domain results are flushed to 0 *)
  let v = f x in
  if Float.is_nan v then Value.of_float ty 0.0 else Value.of_float ty v

let rec eval store (e : Ir.expr) : Value.t =
  match e with
  | Ir.Const v -> v
  | Ir.Read v -> store.(v.Ir.vid)
  | Ir.Unop (op, arg) -> eval_unop store op arg
  | Ir.Binop (op, ty, a, b) -> eval_binop store op ty a b
  | Ir.Select (c, a, b) ->
    (* both arms evaluated: branchless semantics *)
    let cv = eval store c in
    let av = eval store a in
    let bv = eval store b in
    if Value.is_true cv then av else bv

and eval_unop store op arg =
  let v = eval store arg in
  let float_ty =
    match Ir.type_of arg with
    | Dtype.Float32 -> Dtype.Float32
    | _ -> Dtype.Float64
  in
  match op with
  | Ir.U_neg -> Value.neg (Value.dtype v) v
  | Ir.U_not -> Value.of_bool (not (Value.is_true v))
  | Ir.U_abs -> Value.abs (Value.dtype v) v
  | Ir.U_cast ty -> Value.cast ty v
  | Ir.U_floor ->
    Value.cast (Ir.type_of arg) (Value.of_float Dtype.Float64 (Float.floor (Value.to_float v)))
  | Ir.U_ceil -> Value.cast (Ir.type_of arg) (Value.of_float Dtype.Float64 (Float.ceil (Value.to_float v)))
  | Ir.U_round ->
    Value.cast (Ir.type_of arg) (Value.of_float Dtype.Float64 (Float.round (Value.to_float v)))
  | Ir.U_trunc ->
    Value.cast (Ir.type_of arg) (Value.of_float Dtype.Float64 (Float.trunc (Value.to_float v)))
  | Ir.U_exp -> total_unary float_ty Float.exp (Value.to_float v)
  | Ir.U_log ->
    let x = Value.to_float v in
    if x <= 0.0 then Value.zero float_ty else total_unary float_ty Float.log x
  | Ir.U_log10 ->
    let x = Value.to_float v in
    if x <= 0.0 then Value.zero float_ty else total_unary float_ty Float.log10 x
  | Ir.U_sqrt ->
    let x = Value.to_float v in
    if x < 0.0 then Value.zero float_ty else Value.of_float float_ty (Float.sqrt x)
  | Ir.U_sin -> Value.of_float float_ty (Float.sin (Value.to_float v))
  | Ir.U_cos -> Value.of_float float_ty (Float.cos (Value.to_float v))

and eval_binop store op ty a b =
  let va = eval store a in
  let vb = eval store b in
  match op with
  | Ir.B_add -> Value.add ty va vb
  | Ir.B_sub -> Value.sub ty va vb
  | Ir.B_mul -> Value.mul ty va vb
  | Ir.B_div -> Value.div ty va vb
  | Ir.B_rem -> Value.rem ty va vb
  | Ir.B_min -> Value.min ty va vb
  | Ir.B_max -> Value.max ty va vb
  | Ir.B_and -> Value.of_bool (Value.is_true va && Value.is_true vb)
  | Ir.B_or -> Value.of_bool (Value.is_true va || Value.is_true vb)
  | Ir.B_eq -> Value.of_bool (Value.to_float va = Value.to_float vb)
  | Ir.B_ne -> Value.of_bool (Value.to_float va <> Value.to_float vb)
  | Ir.B_lt -> Value.of_bool (Value.to_float va < Value.to_float vb)
  | Ir.B_le -> Value.of_bool (Value.to_float va <= Value.to_float vb)
  | Ir.B_gt -> Value.of_bool (Value.to_float va > Value.to_float vb)
  | Ir.B_ge -> Value.of_bool (Value.to_float va >= Value.to_float vb)

(* Branch distance following Korel's rules with K = 1. *)
let branch_distances cond eval_fn =
  let num e = Value.to_float (eval_fn e) in
  let k = 1.0 in
  let rec go (e : Ir.expr) =
    match e with
    | Ir.Binop (Ir.B_and, _, a, b) ->
      let ta, fa = go a in
      let tb, fb = go b in
      (ta +. tb, Float.min fa fb)
    | Ir.Binop (Ir.B_or, _, a, b) ->
      let ta, fa = go a in
      let tb, fb = go b in
      (Float.min ta tb, fa +. fb)
    | Ir.Unop (Ir.U_not, a) ->
      let ta, fa = go a in
      (fa, ta)
    | Ir.Binop (Ir.B_eq, _, a, b) ->
      let d = Float.abs (num a -. num b) in
      if d = 0.0 then (0.0, k) else (d, 0.0)
    | Ir.Binop (Ir.B_ne, _, a, b) ->
      let d = Float.abs (num a -. num b) in
      if d = 0.0 then (k, 0.0) else (0.0, d)
    | Ir.Binop (Ir.B_lt, _, a, b) ->
      let d = num a -. num b in
      if d < 0.0 then (0.0, -.d) else (d +. k, 0.0)
    | Ir.Binop (Ir.B_le, _, a, b) ->
      let d = num a -. num b in
      if d <= 0.0 then (0.0, -.d +. k) else (d, 0.0)
    | Ir.Binop (Ir.B_gt, _, a, b) ->
      let d = num b -. num a in
      if d < 0.0 then (0.0, -.d) else (d +. k, 0.0)
    | Ir.Binop (Ir.B_ge, _, a, b) ->
      let d = num b -. num a in
      if d <= 0.0 then (0.0, -.d +. k) else (d, 0.0)
    | e ->
      (* opaque boolean: distance is 0 / K by truth value *)
      if Value.is_true (eval_fn e) then (0.0, k) else (k, 0.0)
  in
  go cond

let fire_probe hooks id =
  match hooks.Hooks.on_probe with
  | Some f -> f id
  | None -> ()

let exec_stmts hooks store stmts =
  let rec exec_stmt s =
    match s with
    | A_assign (v, e) -> store.(v.Ir.vid) <- Value.cast v.Ir.vty (eval store e)
    | A_if { if_ix; cond; then_; else_ } ->
      let taken = Value.is_true (eval store cond) in
      (match hooks.Hooks.on_branch with
      | Some f ->
        let dt, df = branch_distances cond (eval store) in
        f if_ix taken dt df
      | None -> ());
      List.iter exec_stmt (if taken then then_ else else_)
    | A_probe id -> fire_probe hooks id
    | A_record_cond { dec; cond_ix; value } -> (
      match hooks.Hooks.on_cond with
      | Some f -> f dec cond_ix (Value.is_true (eval store value))
      | None -> ())
    | A_record_decision { dec; outcome } -> (
      match hooks.Hooks.on_decision with
      | Some f -> f dec outcome
      | None -> ())
  in
  List.iter exec_stmt stmts

let reset ?(hooks = Hooks.none) t =
  Array.iteri (fun i _ -> t.store.(i) <- Value.of_bool false) t.store;
  (* give every variable a typed zero so reads before writes are sane *)
  let zero_var (v : Ir.var) = t.store.(v.Ir.vid) <- Value.zero v.Ir.vty in
  Array.iter zero_var t.prog.Ir.inputs;
  Array.iter zero_var t.prog.Ir.outputs;
  Array.iter zero_var t.prog.Ir.states;
  exec_stmts hooks t.store t.anno_init

let set_input t i v =
  let var = t.prog.Ir.inputs.(i) in
  t.store.(var.Ir.vid) <- Value.cast var.Ir.vty v

let step ?(hooks = Hooks.none) t = exec_stmts hooks t.store t.anno_step

let get_output t i = t.store.(t.prog.Ir.outputs.(i).Ir.vid)

let get_var t (v : Ir.var) = t.store.(v.Ir.vid)

let eval_expr t e = eval t.store e
