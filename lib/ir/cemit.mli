(** C source emission for generated model code.

    The paper's tool emits C fuzz code (model step function with
    branch instrumentation) plus a fuzz driver ([FuzzTestOneInput],
    Figure 3) and compiles them with Clang. Our execution path is
    {!Ir_compile}, but this emitter produces the equivalent C text so
    a user can inspect — or actually compile elsewhere — what the
    pipeline generated. Output is deterministic. *)

val emit_program : Ir.program -> string
(** Standalone C translation unit: instrumentation macros, state
    variables, [<name>_init()] and [<name>_step(...)]. *)

val emit_fuzz_driver : Ir.program -> string
(** The [FuzzTestOneInput] function in the exact shape of the
    paper's Figure 3: tuple length constant, the splitting loop,
    per-inport [memcpy]s, and the step call. *)

val emit_all : Ir.program -> string
(** {!emit_program} followed by {!emit_fuzz_driver}. *)

val emit_test_harness : Ir.program -> string
(** A [main()] that decodes a hex-encoded tuple stream from
    [argv[1]], runs the model one iteration per tuple, and prints
    every output as [%.17g] per step — the executable the C-backend
    differential test compiles with gcc and compares against
    {!Ir_compile}. Includes no-op definitions of the coverage
    interface. Append it to {!emit_program}'s output. *)
