(** Runtime observation hooks for executing IR programs.

    The instrumented program reports events through these callbacks —
    the OCaml counterpart of the paper's [CoverageStatistics()]
    interface (Figure 4). Every field is optional so that
    uninstrumented execution pays nothing. *)

type t = {
  on_probe : (int -> unit) option;
      (** flat coverage cell hit (Algorithm 1's [g_CurrCov] write) *)
  on_cond : (int -> int -> bool -> unit) option;
      (** [dec, cond_ix, value] — condition evaluated *)
  on_decision : (int -> int -> unit) option;
      (** [dec, outcome] — decision resolved *)
  on_branch : (int -> bool -> float -> float -> unit) option;
      (** [if_ix, taken, dist_true, dist_false] — branch distance
          report for search-based generation; [if_ix] numbers [If]
          statements in depth-first order over [init] then [step] *)
}

val none : t
(** All hooks disabled. *)

val probes_only : (int -> unit) -> t
(** Only flat-probe observation — the fuzzing loop's fast path. *)
