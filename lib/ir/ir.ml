open Cftcg_model

type var = {
  vid : int;
  vname : string;
  vty : Dtype.t;
}

type unop =
  | U_neg
  | U_not
  | U_abs
  | U_cast of Dtype.t
  | U_floor
  | U_ceil
  | U_round
  | U_trunc
  | U_exp
  | U_log
  | U_log10
  | U_sqrt
  | U_sin
  | U_cos

type binop =
  | B_add
  | B_sub
  | B_mul
  | B_div
  | B_rem
  | B_min
  | B_max
  | B_and
  | B_or
  | B_eq
  | B_ne
  | B_lt
  | B_le
  | B_gt
  | B_ge

type expr =
  | Const of Value.t
  | Read of var
  | Unop of unop * expr
  | Binop of binop * Dtype.t * expr * expr
  | Select of expr * expr * expr

type stmt =
  | Assign of var * expr
  | If of {
      cond : expr;
      dec : int option;
      then_ : stmt list;
      else_ : stmt list;
    }
  | Probe of int
  | Record_cond of { dec : int; cond_ix : int; value : expr }
  | Record_decision of { dec : int; outcome : int }
  | Comment of string

type condition = {
  cond_ix : int;
  cond_desc : string;
  probe_true : int;
  probe_false : int;
}

type decision = {
  dec_id : int;
  dec_block : string;
  dec_desc : string;
  n_outcomes : int;
  outcome_probes : int array;
  conditions : condition array;
}

type program = {
  prog_name : string;
  n_vars : int;
  inputs : var array;
  outputs : var array;
  states : var array;
  init : stmt list;
  step : stmt list;
  n_probes : int;
  decisions : decision array;
  assertions : (int * string) array;
  lookup_tables : (string * int array) array;
}

let rec type_of = function
  | Const v -> Value.dtype v
  | Read v -> v.vty
  | Unop (op, e) -> (
    match op with
    | U_not -> Dtype.Bool
    | U_cast ty -> ty
    | U_exp | U_log | U_log10 | U_sqrt | U_sin | U_cos -> (
      match type_of e with
      | Dtype.Float32 -> Dtype.Float32
      | _ -> Dtype.Float64)
    | U_neg | U_abs | U_floor | U_ceil | U_round | U_trunc -> type_of e)
  | Binop (op, ty, _, _) -> (
    match op with
    | B_and | B_or | B_eq | B_ne | B_lt | B_le | B_gt | B_ge -> Dtype.Bool
    | B_add | B_sub | B_mul | B_div | B_rem | B_min | B_max -> ty)
  | Select (_, a, _) -> type_of a

let bool_const b = Const (Value.of_bool b)
let int_const ty n = Const (Value.of_int ty n)
let float_const ty f = Const (Value.of_float ty f)

let truthy e =
  match type_of e with
  | Dtype.Bool -> e
  | ty -> Binop (B_ne, ty, e, Const (Value.zero ty))

let rec stmts_count stmts =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s with
      | If { then_; else_; _ } -> 1 + stmts_count then_ + stmts_count else_
      | Assign _ | Probe _ | Record_cond _ | Record_decision _ | Comment _ -> 1)
    0 stmts

let stmt_count p = stmts_count p.init + stmts_count p.step

let validate p =
  let error fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_var v =
    if v.vid < 0 || v.vid >= p.n_vars then
      error "program %s: var %s has id %d outside store of %d" p.prog_name v.vname v.vid p.n_vars
    else Ok ()
  in
  let rec check_expr = function
    | Const _ -> Ok ()
    | Read v -> check_var v
    | Unop (_, e) -> check_expr e
    | Binop (_, _, a, b) -> both (check_expr a) (fun () -> check_expr b)
    | Select (c, a, b) ->
      both (check_expr c) (fun () -> both (check_expr a) (fun () -> check_expr b))
  and both r k =
    match r with
    | Error _ as e -> e
    | Ok () -> k ()
  in
  let check_probe id =
    if id < 0 || id >= p.n_probes then error "program %s: probe id %d out of range" p.prog_name id
    else Ok ()
  in
  let check_dec d =
    if d < 0 || d >= Array.length p.decisions then
      error "program %s: decision id %d out of range" p.prog_name d
    else Ok ()
  in
  let rec check_stmt = function
    | Assign (v, e) -> both (check_var v) (fun () -> check_expr e)
    | If { cond; dec; then_; else_ } ->
      both (check_expr cond) (fun () ->
          both (match dec with None -> Ok () | Some d -> check_dec d) (fun () ->
              both (check_stmts then_) (fun () -> check_stmts else_)))
    | Probe id -> check_probe id
    | Record_cond { dec; value; _ } -> both (check_dec dec) (fun () -> check_expr value)
    | Record_decision { dec; outcome } ->
      both (check_dec dec) (fun () ->
          if outcome < 0 || outcome >= p.decisions.(dec).n_outcomes then
            error "program %s: outcome %d out of range for decision %d" p.prog_name outcome dec
          else Ok ())
    | Comment _ -> Ok ()
  and check_stmts = function
    | [] -> Ok ()
    | s :: rest -> both (check_stmt s) (fun () -> check_stmts rest)
  in
  let check_probe_cells () =
    let seen = Hashtbl.create 64 in
    let claim id =
      if Hashtbl.mem seen id then error "program %s: probe cell %d claimed twice" p.prog_name id
      else begin
        Hashtbl.replace seen id ();
        Ok ()
      end
    in
    Array.fold_left
      (fun acc d ->
        both acc (fun () ->
            let from_outcomes =
              Array.fold_left (fun acc id -> both acc (fun () -> claim id)) (Ok ()) d.outcome_probes
            in
            Array.fold_left
              (fun acc c ->
                both acc (fun () -> both (claim c.probe_true) (fun () -> claim c.probe_false)))
              from_outcomes d.conditions))
      (Ok ()) p.decisions
  in
  let check_assertions () =
    Array.fold_left (fun acc (cell, _) -> both acc (fun () -> check_probe cell)) (Ok ())
      p.assertions
  in
  let check_lookups () =
    Array.fold_left
      (fun acc (_, cells) ->
        Array.fold_left (fun acc cell -> both acc (fun () -> check_probe cell)) acc cells)
      (Ok ()) p.lookup_tables
  in
  both (check_stmts p.init) (fun () ->
      both (check_stmts p.step) (fun () ->
          both (check_probe_cells ()) (fun () ->
              both (check_assertions ()) (fun () -> check_lookups ()))))
