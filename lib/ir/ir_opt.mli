(** IR optimization passes.

    The paper compiles its generated code with Clang -O2 and
    configures Simulink's "Maximize Execution Speed" objective; these
    passes stand in for that step on our IR. All passes preserve
    observable behaviour — outputs, states, probe/record events —
    which the test suite checks by differential execution.

    Passes:
    - {b constant folding}: evaluates operator trees over constants
      (using the exact runtime semantics of {!Ir_eval}) and prunes
      [If]s whose condition folds, keeping instrumentation of the
      surviving arm;
    - {b copy propagation}: rewrites reads of variables that were
      assigned a constant or another variable still holding the same
      value (within straight-line regions; invalidated across
      branches and writes);
    - {b dead assignment elimination}: drops assignments to scratch
      variables that are never read afterwards (outputs and states
      are always live). *)

val constant_fold : Ir.program -> Ir.program

val propagate_copies : Ir.program -> Ir.program

val eliminate_dead_assignments : Ir.program -> Ir.program

val optimize : Ir.program -> Ir.program
(** Runs all passes to a small fixpoint (at most 4 rounds). *)

val stats : Ir.program -> Ir.program -> string
(** Human-readable before/after statement counts. *)

(** {1 Bytecode optimizer}

    A second pass pipeline over {!Ir_linearize} bytecode, run by
    {!Ir_vm.compile} (default on; [?optimize:false] or the CLI
    [--no-opt] disables it). The tree passes above cannot see
    linearization artifacts; these rewrite the instruction stream:

    + {b constant folding + propagation} through the register file —
      fully-known pure ops collapse to a MOV from the (deduplicated)
      constant pool, selects and conditional jumps with known
      conditions are resolved. Folding evaluates with the exact VM
      arm formulas — including the saturation bounds [f2i_sat] reads
      from pool registers, integer wrap masks, division guards and
      float32 rounding — so a naive "just compute it" fold can never
      diverge from runtime behaviour;
    + {b copy propagation / move elimination} within basic blocks;
    + {b unreachable-code elimination};
    + {b dead-register-write elimination} — roots are probe / cond /
      decision / branch-hook instructions (never removed), jumps, and
      at block end the I/O + state variables plus the entry-live set
      of the step block (whatever the next iteration reads before
      writing — exact cross-iteration and init->step dataflow). The
      hidden variable reads of branch-hook distance expressions are
      charged to their branch-hook instruction;
    + {b jump threading} — branch-to-branch chains are shortcut,
      jumps to the fall-through are elided, jumps to HALT become
      HALT;
    + {b superinstruction fusion} — [cmp_*; jz] pairs whose compare
      register dies become fused compare-and-jump opcodes
      ([op_jlt]..[op_jge]), [not; jz] becomes [op_jnz], float32
      [arith; round_f32] pairs become [op_*_f32], and branch-arm
      tails [probe; jmp] / [mov; jmp] become [op_probe_jmp] /
      [op_mov_jmp]. Probe-aware fusion then folds a branch's
      then-arm [probe] into the branch itself
      ([op_jlt_p]..[op_jge_p], [op_jz_p], [op_jnz_p]) — the probe
      fires exactly when the branch falls through, so the
      instrumented hot path pays no extra dispatch for coverage on
      taken branch arms;
    + {b probe dedup} — within straight-line regions, [probe]
      instructions whose cell is already known fired (an earlier
      probe, or the fall-through of a probe-carrying branch) are
      dropped: the coverage-buffer write is idempotent, so this is
      observationally invisible. Hook-carrying [probe_h] is never
      touched.

    The pipeline iterates simplify-then-fuse cycles until a whole
    cycle changes nothing, so [optimize_bytecode] is idempotent.

    The optimized program is bit-identical in observable behaviour
    (outputs, states, probe sets, hook events) to the unoptimized
    bytecode — enforced by the differential suite. Registers of
    scratch variables (anything outside I/O + states) may hold stale
    values afterwards; [Ir_vm.get_var] / [read_raw] on them is only
    meaningful with the optimizer off. *)

val optimize_bytecode : Ir_linearize.t -> Ir_linearize.t

val static_count : Ir_linearize.t -> int
(** Number of instructions (init + step) — counts instructions, not
    int slots like {!Ir_linearize.code_size}. *)

val dynamic_count : Ir_linearize.t -> float array array -> int
(** [dynamic_count lin rows] executes init plus one step per row on a
    reference interpreter and returns the number of instructions
    dispatched. Each row holds the raw float per inport (in port
    order, as fed to [Ir_vm.set_input_raw]). *)

val opcode_histogram : Ir_linearize.t -> int array
(** Instruction count per opcode (init + step), indexed by opcode
    number; length {!Ir_linearize.n_opcodes}. *)

val opcode_name : int -> string
(** Mnemonic for an opcode number (as printed by {!disassemble}). *)

(** {1 Bytecode profiling}

    The data behind [cftcg ir --profile] and [cftcg profile]'s VM
    section: per-opcode dynamic dispatch counts and per-instruction
    hit counts, gathered by the same reference interpreter as
    {!dynamic_count} so the {!Ir_vm} hot loop needs no counting
    instrumentation. *)

type bytecode_profile = {
  bp_dispatches : int;  (** total dispatches, init + all steps *)
  bp_init_dispatches : int;
  bp_step_dispatches : int;
  bp_opcode_dyn : int array;  (** dispatches per opcode; length {!Ir_linearize.n_opcodes} *)
  bp_init_hits : int array;  (** hit count per init instruction, stream order *)
  bp_step_hits : int array;  (** hit count per step instruction, stream order *)
}

val profile_bytecode : Ir_linearize.t -> float array array -> bytecode_profile
(** [profile_bytecode lin rows] executes init plus one step per row
    (raw floats per inport, as for {!dynamic_count}) and returns the
    execution profile. *)

val disassemble : ?hits:int array * int array -> Ir_linearize.t -> string
(** Human-readable listing of both blocks; constants print as
    [kN(value)], jump targets as [-> pc]. With [hits] (init and step
    per-instruction hit counts from {!profile_bytecode}), each line is
    prefixed with its execution count. *)
