(** IR optimization passes.

    The paper compiles its generated code with Clang -O2 and
    configures Simulink's "Maximize Execution Speed" objective; these
    passes stand in for that step on our IR. All passes preserve
    observable behaviour — outputs, states, probe/record events —
    which the test suite checks by differential execution.

    Passes:
    - {b constant folding}: evaluates operator trees over constants
      (using the exact runtime semantics of {!Ir_eval}) and prunes
      [If]s whose condition folds, keeping instrumentation of the
      surviving arm;
    - {b copy propagation}: rewrites reads of variables that were
      assigned a constant or another variable still holding the same
      value (within straight-line regions; invalidated across
      branches and writes);
    - {b dead assignment elimination}: drops assignments to scratch
      variables that are never read afterwards (outputs and states
      are always live). *)

val constant_fold : Ir.program -> Ir.program

val propagate_copies : Ir.program -> Ir.program

val eliminate_dead_assignments : Ir.program -> Ir.program

val optimize : Ir.program -> Ir.program
(** Runs all passes to a small fixpoint (at most 4 rounds). *)

val stats : Ir.program -> Ir.program -> string
(** Human-readable before/after statement counts. *)
