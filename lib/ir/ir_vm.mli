(** Flat bytecode VM — the fastest execution backend.

    Runs {!Ir_linearize} bytecode in a tight dispatch loop over an
    unboxed [float array] register file. Compared with the closure
    backend ({!Ir_compile}), each expression node costs a jump-table
    dispatch on an immediate opcode instead of an indirect call, and
    probe fires write directly into a coverage byte buffer while
    appending to a dirty list — so consumers can process only the
    probes that actually fired instead of scanning all [n_probes]
    cells.

    Semantics are identical to {!Ir_eval} and {!Ir_compile}
    (differentially tested). Like the closure backend, hooks are
    fixed at compile time: instrumentation that wasn't requested is
    simply never emitted as bytecode. *)

open Cftcg_model

(** A probe coverage buffer: byte-per-probe membership plus the list
    of distinct probes fired since the last clear. *)
type probes = private {
  p_fired : Bytes.t;  (** ['\001'] at index [id] iff probe [id] fired *)
  p_dirty : int array;  (** fired probe ids, deduplicated, first [p_n] slots *)
  mutable p_n : int;
}

type t

val compile : ?hooks:Hooks.t -> ?optimize:bool -> Ir.program -> t
(** Linearizes and prepares the program. Instrumentation bytecode is
    emitted only for the hooks that are present ([on_probe] adds a
    hook call on top of the always-on buffer write). The returned
    instance owns its register file and probe buffer; compile again
    for an independent instance.

    [optimize] (default [true]) runs {!Ir_opt.optimize_bytecode} on
    the linearized code. Observable behaviour — outputs, states,
    probe sets, hook events — is unchanged; with it on, [get_var] /
    [read_raw] of scratch variables outside the I/O + state + read
    set may see stale values. *)

val program : t -> Ir.program

val reset : t -> unit
(** Zeroes the registers, reloads the constant pool and runs [init].
    Probes fired by [init] land in the current probe buffer; clear it
    afterwards if init coverage should be discarded. *)

val step : t -> unit
(** One model iteration. *)

val set_input : t -> int -> Value.t -> unit

val set_input_raw : t -> int -> float -> unit
(** Fast path: the float must already be an exact member of the
    inport dtype's value set (e.g. produced by {!Value.decode} +
    {!Value.to_float}). *)

val get_output : t -> int -> Value.t
val get_var : t -> Ir.var -> Value.t

val read_raw : t -> int -> float
(** Raw register access by variable id. *)

(** {1 Probe buffers}

    The VM writes into whichever buffer is currently installed, which
    lets a fuzzer double-buffer consecutive steps and diff their
    dirty lists without any per-probe scan. *)

val probes : t -> probes
val set_probes : t -> probes -> unit

val fresh_probes : t -> probes
(** A new, empty buffer of the right size for this program. *)

val clear_probes : probes -> unit
(** O(fired): resets only the cells named by the dirty list. *)

val probe_fired : t -> int -> bool
(** Whether the probe fired since the current buffer was cleared. *)

val code_size : t -> int
(** Bytecode length (init + step), in int slots. *)

(** {1 Profile mode}

    Opt-in execution profiling of this VM's bytecode: per-opcode
    dynamic dispatch counts and per-instruction (hence per-block) hit
    counts. The profile run happens on {!Ir_opt}'s reference
    interpreter over the same (optimized or not) instruction stream,
    so the dispatch loop used for fuzzing carries zero profiling
    overhead. Surfaced through [cftcg ir --profile] and
    [cftcg profile]. *)

val profile : t -> float array array -> Ir_opt.bytecode_profile
(** [profile vm rows] runs init plus one step per row (raw floats per
    inport, in port order — see {!Ir_opt.dynamic_count}) and returns
    the execution profile. Does not disturb the VM's registers or
    probe buffers. *)

val linearized : t -> Ir_linearize.t
(** The (optimized) bytecode this instance executes — pair with
    {!Ir_opt.disassemble} [?hits] to print a hit-annotated listing. *)
