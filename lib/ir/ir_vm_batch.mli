(** Batched lockstep bytecode VM — K inputs through one instruction
    stream.

    Executes K independent model instances ("lanes") in lockstep over
    a structure-of-arrays register file: one float64 plane per
    register, K lanes wide (register [r], lane [l] at [r * k + l]),
    so each dispatched instruction pays its opcode fetch and operand
    decode once and then runs the arm body over k adjacent cells. The
    fuzzer's batch scheduler loads K mutated inputs into the lanes,
    steps once, and reads K coverage results — amortizing dispatch
    overhead, a large share of the instrumented scalar hot path.

    When a conditional branch splits a lane group, the group becomes
    two adjacent slices of the lane arena (stable in-place partition,
    no allocation). Jumps are forward-only in model bytecode, so the
    slices reconverge: the lower-pc slice runs batched until it
    reaches the other's pc, then the two merge zero-copy and continue
    in lockstep. Divergence counts per branch pc are kept for
    `cftcg ir --batch`, and {!total_divergence} feeds the fuzzer's
    deterministic decision to fall back to scalar execution on
    divergence-heavy models.

    Per-lane observable behaviour — outputs, states, probe dirty
    lists and their order — is bit-identical to {!Ir_vm} on the same
    bytecode, which the batched differential suite enforces for
    K ∈ {1, 4, 16}. Hooks are not supported: this VM serves the
    fuzzing inner loop, which compiles without them. *)

open Cftcg_model

type regfile = float array

(** Packed probe coverage for K lanes: the fired byte for probe [id]
    in lane [l] is at [id * k + l], plus per-lane dirty lists
    mirroring {!Ir_vm.probes}. *)
type probes = private {
  bp_k : int;
  bp_fired : Bytes.t;  (** [n_probes * k] membership bytes *)
  bp_dirty : int array array;  (** per lane: fired ids, insertion order *)
  bp_n : int array;  (** per lane: dirty-list fill count *)
}

type t

val compile : ?optimize:bool -> k:int -> Ir.program -> t
(** Linearizes the program with probe-only instrumentation (no hooks)
    and prepares a K-lane instance. [optimize] (default [true]) runs
    {!Ir_opt.optimize_bytecode} — the same pipeline as {!Ir_vm}, so
    the two backends execute identical bytecode. [k] must be in
    1..64. *)

val k : t -> int
val program : t -> Ir.program
val linearized : t -> Ir_linearize.t
val code_size : t -> int

val reset : ?lanes:int -> t -> unit
(** Zeroes every lane's registers, reloads the constant pool into all
    lanes and runs [init] on the first [lanes] (default: all k).
    Probes fired by init land in the current buffer, as with
    {!Ir_vm.reset}. *)

val step : ?lanes:int -> t -> unit
(** One model iteration for lanes [0 .. lanes-1] (default: all k). *)

val set_input : t -> lane:int -> int -> Value.t -> unit
val set_input_raw : t -> lane:int -> int -> float -> unit
val get_output : t -> lane:int -> int -> Value.t
val read_raw : t -> lane:int -> int -> float

(** {1 Probe buffers} — double-bufferable like {!Ir_vm}'s. *)

val probes : t -> probes
val set_probes : t -> probes -> unit

val fresh_probes : t -> probes
(** A new, empty K-lane buffer of the right size for this program. *)

val clear_probes : probes -> unit
(** Clears all lanes, O(total fired). *)

val clear_lane : probes -> lane:int -> unit
(** Clears one lane's cells and dirty list, O(fired in that lane). *)

val record : probes -> lane:int -> int -> unit
(** Marks probe [id] fired in [lane] (idempotent, appends to the
    lane's dirty list on first fire) — the VM's own fire primitive,
    exposed so a detached buffer can serve as a per-lane ordered
    distinct-fire accumulator (the fuzzer's batch scheduler). *)

val probe_fired : t -> lane:int -> int -> bool

(** {1 Lane divergence profile}

    Each entry is [(pc, splits)]: how often the branch at that pc
    partitioned a lane group, hottest first. The data behind
    `cftcg ir --batch`'s divergence table. *)

val step_divergence : t -> (int * int) list
val init_divergence : t -> (int * int) list

val total_divergence : t -> int
(** Total splits across both blocks since the last
    [reset_divergence]. *)

val reset_divergence : t -> unit
