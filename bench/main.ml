(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§4).

     table2   — benchmark model inventory (paper Table 2)
     table3   — SLDV vs SimCoTest vs CFTCG coverage (paper Table 3)
     figure7  — decision coverage vs time (paper Figure 7)
     figure8  — CFTCG vs Fuzz Only (paper Figure 8)
     speed    — compiled vs interpreted iteration rate (§4 text)
     ablation — CFTCG ingredient ablations (DESIGN.md §5)
     scaling  — ensemble campaign throughput at jobs 1/2/4/8
     hybrid   — fuzz-only plateau vs plateau→solve→resume campaigns
                on the deep-state models (TCP, RAC), same seed and
                execution budget
     serve    — DRR scheduler multiplexing overhead vs solo runs,
                sharded corpus-store add throughput
     uncovered — per-model list of decisions CFTCG left unreached

   Usage: main.exe [experiment ...] [--budget SECONDS] [--reps N]
          [--seed N] [--models A,B,C] [--json] [--history]
          [--check-opt] [--check-obs] [--check-batch]
   --json additionally writes the speed experiment's numbers to
   BENCH_speed.json (machine-readable, tracked by CI).
   --history appends the speed experiment's per-model throughput to
   BENCH_history.jsonl and warns (exit code unchanged) when a model
   drops more than 10% execs/s against the previous record — a trend
   line, not a gate: shared-runner noise would make a hard gate
   flaky.
   --check-opt makes the speed experiment exit non-zero unless the
   optimized VM keeps up with the plain VM on every bench model —
   measured on the instrumented fuzzing path (probes live), the one
   every campaign execution takes.
   --check-obs makes the speed experiment exit non-zero if turning
   observability on (metrics + tracing) costs more than 2% of
   fuzzing throughput on any bench model.
   --check-batch makes the speed experiment exit non-zero unless the
   batched lockstep VM's zero-divergence instrumented step (same
   input in every lane — pure dispatch amortization) beats the
   scalar vm's instrumented step per lane (geomean >= 1.02x; idle
   machines measure ~1.2-1.5x, the threshold tolerates CPU steal on
   shared runners). Whole-exec batched throughput on divergent
   inputs is reported in the speed table, ungated.
   Default: every experiment at a small smoke budget. Absolute
   numbers differ from the paper (simulated substrate, seconds-scale
   budgets); shapes and orderings are the reproduction target. *)

open Cftcg_model
module Codegen = Cftcg_codegen.Codegen
module Recorder = Cftcg_coverage.Recorder
module Models = Cftcg_bench_models.Bench_models
module Tools = Cftcg_baselines.Tools
module Interp = Cftcg_interp.Interp
module Layout = Cftcg_fuzz.Layout
module Tt = Cftcg_util.Texttable

(* ------------------------------------------------------------------ *)
(* Options                                                             *)
(* ------------------------------------------------------------------ *)

type options = {
  mutable budget : float;  (** seconds per tool per model per rep *)
  mutable reps : int;
  mutable seed : int;
  mutable models : string list option;
  mutable experiments : string list;
  mutable json : bool;  (** write speed results to BENCH_speed.json *)
  mutable history : bool;
      (** append per-model speed results to BENCH_history.jsonl and
          warn on >10% execs/s regressions vs the previous record *)
  mutable check_opt : bool;
      (** fail the speed experiment if the bytecode optimizer loses
          to the plain VM anywhere *)
  mutable check_obs : bool;
      (** fail the speed experiment if enabling observability costs
          more than 2% of fuzzing throughput anywhere *)
  mutable check_batch : bool;
      (** fail the speed experiment if the batched lockstep VM's
          zero-divergence step loses to the scalar vm's instrumented
          step per lane (geomean threshold 1.02x) *)
}

let opts =
  { budget = 1.0; reps = 2; seed = 1; models = None; experiments = []; json = false;
    history = false; check_opt = false; check_obs = false; check_batch = false }

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--budget" :: v :: rest ->
      opts.budget <- float_of_string v;
      go rest
    | "--reps" :: v :: rest ->
      opts.reps <- int_of_string v;
      go rest
    | "--seed" :: v :: rest ->
      opts.seed <- int_of_string v;
      go rest
    | "--models" :: v :: rest ->
      opts.models <- Some (String.split_on_char ',' v);
      go rest
    | "--json" :: rest ->
      opts.json <- true;
      go rest
    | "--history" :: rest ->
      opts.history <- true;
      go rest
    | "--check-opt" :: rest ->
      opts.check_opt <- true;
      go rest
    | "--check-obs" :: rest ->
      opts.check_obs <- true;
      go rest
    | "--check-batch" :: rest ->
      opts.check_batch <- true;
      go rest
    | exp :: rest ->
      opts.experiments <- opts.experiments @ [ exp ];
      go rest
  in
  go (List.tl (Array.to_list Sys.argv))

let selected_models () =
  match opts.models with
  | None -> Models.all
  | Some names ->
    List.filter_map
      (fun n ->
        match Models.find n with
        | Some e -> Some e
        | None ->
          Printf.eprintf "unknown model %S\n" n;
          None)
      names

let print_table title t =
  Printf.printf "\n== %s ==\n%s\n-- csv --\n%s" title (Tt.render t) (Tt.to_csv t);
  flush stdout

let pct f = Printf.sprintf "%.0f%%" f

(* ------------------------------------------------------------------ *)
(* Shared tool-campaign cache                                          *)
(* ------------------------------------------------------------------ *)

type campaign = {
  report : Recorder.report;
  series : (float * float) list;  (** decision coverage vs time *)
}

let cache : (string * string * int, campaign) Hashtbl.t = Hashtbl.create 64

let run_tool (e : Models.entry) (tool : Tools.t) rep =
  let key = (e.Models.name, tool.Tools.name, rep) in
  match Hashtbl.find_opt cache key with
  | Some c -> c
  | None ->
    let m = Lazy.force e.Models.model in
    let seed = Int64.of_int (opts.seed + (1000 * rep) + Hashtbl.hash tool.Tools.name) in
    let outcome = tool.Tools.generate m ~seed ~time_budget:opts.budget in
    let prog = Codegen.lower ~mode:Codegen.Full m in
    let suite = List.map (fun (tc : Tools.test_case) -> tc.Tools.data) outcome.Tools.suite in
    let report = Cftcg.Evaluate.replay prog suite in
    let timed =
      List.map (fun (tc : Tools.test_case) -> (tc.Tools.data, tc.Tools.time)) outcome.Tools.suite
    in
    let series = Cftcg.Evaluate.decision_series prog timed in
    let c = { report; series } in
    Hashtbl.replace cache key c;
    c

let avg_report (e : Models.entry) tool =
  let reps = List.init opts.reps (fun r -> (run_tool e tool r).report) in
  let n = float_of_int (List.length reps) in
  let mean f = List.fold_left (fun acc r -> acc +. f r) 0.0 reps /. n in
  ( mean (fun (r : Recorder.report) -> r.Recorder.decision_pct),
    mean (fun (r : Recorder.report) -> r.Recorder.condition_pct),
    mean (fun (r : Recorder.report) -> r.Recorder.mcdc_pct) )

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  let t =
    Tt.create [ "Model"; "Functionality"; "#Branch"; "#Block"; "paper #Branch"; "paper #Block" ]
  in
  List.iter
    (fun (e : Models.entry) ->
      let m = Lazy.force e.Models.model in
      let prog = Codegen.lower ~mode:Codegen.Full m in
      Tt.add_row t
        [ e.Models.name; e.Models.functionality;
          string_of_int (Recorder.branch_total prog);
          string_of_int (Graph.block_count m);
          string_of_int e.Models.paper_branches;
          string_of_int e.Models.paper_blocks ])
    (selected_models ());
  print_table "Table 2: benchmark models" t

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

let comparison_tools = [ Tools.sldv; Tools.simcotest; Tools.cftcg ]

let table3 () =
  let t = Tt.create [ "Model"; "Tool"; "Decision"; "Condition"; "MCDC" ] in
  let per_tool_scores = Hashtbl.create 8 in
  List.iter
    (fun (e : Models.entry) ->
      List.iter
        (fun tool ->
          let d, c, m = avg_report e tool in
          Hashtbl.replace per_tool_scores (tool.Tools.name, e.Models.name) (d, c, m);
          Tt.add_row t [ e.Models.name; tool.Tools.name; pct d; pct c; pct m ])
        comparison_tools;
      Tt.add_separator t)
    (selected_models ());
  (* average relative improvement of CFTCG over each baseline,
     paper-style *)
  let improvement baseline =
    let models = selected_models () in
    let ratios metric_ix =
      List.filter_map
        (fun (e : Models.entry) ->
          let get name = Hashtbl.find_opt per_tool_scores (name, e.Models.name) in
          match (get "CFTCG", get baseline) with
          | Some c, Some b ->
            let pick (d, co, m) =
              match metric_ix with
              | 0 -> d
              | 1 -> co
              | _ -> m
            in
            let cv = pick c and bv = pick b in
            if bv > 0.5 then Some (100.0 *. (cv -. bv) /. bv) else None
          | _ -> None)
        models
    in
    let mean l =
      if l = [] then 0.0 else List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
    in
    (mean (ratios 0), mean (ratios 1), mean (ratios 2))
  in
  let add_improvement name =
    let d, c, m = improvement name in
    Tt.add_row t
      [ "Avg improvement"; "vs " ^ name; Printf.sprintf "%+.1f%%" d; Printf.sprintf "%+.1f%%" c;
        Printf.sprintf "%+.1f%%" m ]
  in
  add_improvement "SLDV";
  add_improvement "SimCoTest";
  print_table
    (Printf.sprintf "Table 3: coverage comparison (budget %.1fs x %d reps)" opts.budget opts.reps)
    t

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)
(* ------------------------------------------------------------------ *)

let figure7 () =
  let buckets = 10 in
  let header =
    "Model" :: "Tool"
    :: List.init buckets (fun i ->
           Printf.sprintf "t=%.1fs" (opts.budget *. float_of_int (i + 1) /. float_of_int buckets))
  in
  let t = Tt.create header in
  List.iter
    (fun (e : Models.entry) ->
      List.iter
        (fun tool ->
          let series = (run_tool e tool 0).series in
          let at time =
            List.fold_left (fun acc (ts, cov) -> if ts <= time then cov else acc) 0.0 series
          in
          let cells =
            List.init buckets (fun i ->
                pct (at (opts.budget *. float_of_int (i + 1) /. float_of_int buckets)))
          in
          Tt.add_row t (e.Models.name :: tool.Tools.name :: cells))
        comparison_tools;
      Tt.add_separator t)
    (selected_models ());
  print_table "Figure 7: decision coverage vs time" t

(* ------------------------------------------------------------------ *)
(* Figure 8                                                            *)
(* ------------------------------------------------------------------ *)

let figure8 () =
  let t =
    Tt.create
      [ "Model"; "CFTCG Dec"; "FuzzOnly Dec"; "CFTCG Cond"; "FuzzOnly Cond"; "CFTCG MCDC";
        "FuzzOnly MCDC" ]
  in
  List.iter
    (fun (e : Models.entry) ->
      let cd, cc, cm = avg_report e Tools.cftcg in
      let fd, fc, fm = avg_report e Tools.fuzz_only in
      Tt.add_row t [ e.Models.name; pct cd; pct fd; pct cc; pct fc; pct cm; pct fm ])
    (selected_models ());
  print_table "Figure 8: CFTCG vs Fuzz Only (without model orientation)" t

(* ------------------------------------------------------------------ *)
(* Speed (§4: 26,000 vs 6 iterations per second)                       *)
(* ------------------------------------------------------------------ *)

let bechamel_estimates tests =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name v acc ->
      match Analyze.OLS.estimates v with
      | Some (est :: _) -> (name, est) :: acc
      | Some [] | None -> acc)
    res []

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Everything the speed experiment measures per bench model:
   execution latency per backend, allocation pressure, and the
   bytecode optimizer's static/dynamic instruction-count effect. *)
type model_speed = {
  ms_name : string;
  ms_interp_ns : float;
  ms_closures_ns : float;
  ms_vm_ns : float;  (** plain VM, optimizer disabled *)
  ms_vm_opt_ns : float;  (** VM with the Ir_opt bytecode pipeline *)
  ms_vm_step_ns : float;  (** instrumented ns/step, optimizer off *)
  ms_vm_opt_step_ns : float;  (** instrumented ns/step, optimizer on *)
  ms_batch_ns : float;
      (** per-input exec through the K-lane lockstep VM, campaign
          coverage accounting included, at the fuzzer's default K *)
  ms_static : int;  (** uninstrumented instruction count, pre-opt *)
  ms_static_opt : int;
  ms_dyn : int;  (** instruction dispatches for one 16-tuple exec *)
  ms_dyn_opt : int;
  ms_minor_closures : float;  (** GC minor words per execution *)
  ms_minor_vm : float;
  ms_minor_vm_opt : float;
}

(* default lane count the batch rows and the --check-batch gate run
   at: what a stock campaign uses *)
let batch_lanes = Cftcg_fuzz.Fuzzer.default_config.Cftcg_fuzz.Fuzzer.batch

(* Steady-state GC minor words per call: the mutation/exec hot paths
   are meant to be allocation-free, so this should sit near zero for
   the VM backends. *)
let minor_words_per_call f =
  f ();
  let n = 64 in
  let before = Gc.minor_words () in
  for _ = 1 to n do
    f ()
  done;
  (Gc.minor_words () -. before) /. float_of_int n

(* One fuzzer execution (a multi-tuple input through the backend's
   inner loop, coverage accounting included) per backend. The interp
   row runs the graph interpreter over the same tuples — the
   reproduction's stand-in for simulation-based execution. *)
let backend_execs_per_sec (e : Models.entry) =
  let m = Lazy.force e.Models.model in
  let prog = Codegen.lower ~mode:Codegen.Full m in
  let layout = Layout.of_program prog in
  let rng = Cftcg_util.Rng.create (Int64.of_int (opts.seed + 5)) in
  let n_tuples = 16 in
  let input =
    Bytes.concat Bytes.empty (List.init n_tuples (fun _ -> Layout.random_tuple_bytes layout rng))
  in
  let fuzz_exec ?(optimize = true) backend =
    let g_total = Bytes.make (max prog.Cftcg_ir.Ir.n_probes 1) '\000' in
    let exec =
      Cftcg_fuzz.Fuzzer.make_executor ~optimize ~backend ~layout ~prog ~g_total
        ~max_tuples:n_tuples ~use_metric:true ()
    in
    let cells = ref [] in
    (* steady state: g_total saturates after the first call, so later
       executions measure the no-new-coverage hot path *)
    fun () -> ignore (exec ~fresh_cells:cells input)
  in
  let interp_exec =
    let interp = Interp.create m in
    let fields = layout.Layout.fields in
    let tuple_len = layout.Layout.tuple_len in
    fun () ->
      Interp.reset interp;
      for tuple = 0 to n_tuples - 1 do
        Array.iteri
          (fun i (f : Layout.field) ->
            Interp.set_input interp i
              (Value.decode f.Layout.f_ty input ((tuple * tuple_len) + f.Layout.f_offset)))
          fields;
        Interp.step interp
      done
  in
  (* Instruction counts on the same build the fuzzer executes
     (uninstrumented — probes only, no hooks), over the same input. *)
  let lin = Cftcg_ir.Ir_linearize.linearize prog in
  let lin_opt = Cftcg_ir.Ir_opt.optimize_bytecode lin in
  let rows =
    Array.init n_tuples (fun tuple ->
        Array.map
          (fun (f : Layout.field) ->
            Value.decode_float f.Layout.f_ty input ((tuple * layout.Layout.tuple_len) + f.Layout.f_offset))
          layout.Layout.fields)
  in
  let closures_exec = fuzz_exec Cftcg_fuzz.Fuzzer.Closures in
  let vm_exec = fuzz_exec ~optimize:false Cftcg_fuzz.Fuzzer.Vm in
  let vm_opt_exec = fuzz_exec Cftcg_fuzz.Fuzzer.Vm in
  (* instrumented ns/step — the per-iteration cost of the path every
     campaign execution takes (probes live, coverage buffer cleared
     per step), optimizer off vs on *)
  let step_exec optimize =
    let vm = Cftcg_ir.Ir_vm.compile ~optimize prog in
    Cftcg_ir.Ir_vm.reset vm;
    let p = Cftcg_ir.Ir_vm.probes vm in
    fun () ->
      Layout.load_tuple_vm layout input ~tuple:0 vm;
      Cftcg_ir.Ir_vm.step vm;
      Cftcg_ir.Ir_vm.clear_probes p
  in
  let vm_step = step_exec false in
  let vm_opt_step = step_exec true in
  (* K inputs per call through the batched lockstep VM, campaign
     coverage accounting included; per-input cost is the estimate
     divided by K *)
  let batch_exec =
    let g_total = Bytes.make (max prog.Cftcg_ir.Ir.n_probes 1) '\000' in
    let exec =
      Cftcg_fuzz.Fuzzer.make_batch_executor ~k:batch_lanes ~layout ~prog ~g_total
        ~max_tuples:n_tuples ~use_metric:true ()
    in
    let inputs =
      Array.init batch_lanes (fun _ ->
          Bytes.concat Bytes.empty
            (List.init n_tuples (fun _ -> Layout.random_tuple_bytes layout rng)))
    in
    fun () -> ignore (exec inputs)
  in
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"exec"
      [ Test.make ~name:"interp" (Staged.stage interp_exec);
        Test.make ~name:"closures" (Staged.stage closures_exec);
        Test.make ~name:"vm-opt" (Staged.stage vm_opt_exec);
        Test.make ~name:"vm" (Staged.stage vm_exec);
        Test.make ~name:"vm-step" (Staged.stage vm_step);
        Test.make ~name:"vmopt-step" (Staged.stage vm_opt_step);
        Test.make ~name:"batch" (Staged.stage batch_exec) ]
  in
  let estimates = bechamel_estimates tests in
  let get needle =
    match List.find_opt (fun (name, _) -> contains ~needle name) estimates with
    | Some (_, ns) -> ns
    | None -> Float.nan
  in
  (* "vm" is a substring of "vm-opt", so resolve by exact suffix *)
  let get_exact want =
    let suffix = "/" ^ want in
    let ends_with name =
      let nl = String.length name and sl = String.length suffix in
      (nl >= sl && String.sub name (nl - sl) sl = suffix) || name = want
    in
    match List.find_opt (fun (name, _) -> ends_with name) estimates with
    | Some (_, ns) -> ns
    | None -> get want
  in
  { ms_name = e.Models.name;
    ms_interp_ns = get "interp";
    ms_closures_ns = get "closures";
    ms_vm_ns = get_exact "vm";
    ms_vm_opt_ns = get_exact "vm-opt";
    ms_vm_step_ns = get_exact "vm-step";
    ms_vm_opt_step_ns = get_exact "vmopt-step";
    ms_batch_ns = get_exact "batch" /. float_of_int batch_lanes;
    ms_static = Cftcg_ir.Ir_opt.static_count lin;
    ms_static_opt = Cftcg_ir.Ir_opt.static_count lin_opt;
    ms_dyn = Cftcg_ir.Ir_opt.dynamic_count lin rows;
    ms_dyn_opt = Cftcg_ir.Ir_opt.dynamic_count lin_opt rows;
    ms_minor_closures = minor_words_per_call closures_exec;
    ms_minor_vm = minor_words_per_call vm_exec;
    ms_minor_vm_opt = minor_words_per_call vm_opt_exec
  }

(* Paired A/B measurement for the --check-opt gate: alternate plain-vm
   and vm-opt batches so frequency drift, thermal state and GC
   pressure hit both sides equally, and keep the best round per side.
   The bechamel numbers above measure each backend in one contiguous
   quota window, which a single hiccup (or a slowly throttling box)
   can skew by more than the optimizer's whole margin. Returns
   (vm_opt_ns, vm_ns) per execution. *)
let paired_vm_gate (e : Models.entry) =
  let m = Lazy.force e.Models.model in
  let prog = Codegen.lower ~mode:Codegen.Full m in
  let layout = Layout.of_program prog in
  let rng = Cftcg_util.Rng.create (Int64.of_int (opts.seed + 5)) in
  let n_tuples = 16 in
  let input =
    Bytes.concat Bytes.empty (List.init n_tuples (fun _ -> Layout.random_tuple_bytes layout rng))
  in
  let mk optimize =
    let g_total = Bytes.make (max prog.Cftcg_ir.Ir.n_probes 1) '\000' in
    let exec =
      Cftcg_fuzz.Fuzzer.make_executor ~optimize ~backend:Cftcg_fuzz.Fuzzer.Vm ~layout ~prog
        ~g_total ~max_tuples:n_tuples ~use_metric:true ()
    in
    let cells = ref [] in
    fun () -> ignore (exec ~fresh_cells:cells input)
  in
  let vm = mk false and opt = mk true in
  let batch f =
    let n = 100 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e9
  in
  ignore (batch vm);
  ignore (batch opt);
  let best_vm = ref infinity and best_opt = ref infinity in
  for _ = 1 to 10 do
    best_vm := Float.min !best_vm (batch vm);
    best_opt := Float.min !best_opt (batch opt)
  done;
  (!best_opt, !best_vm)

(* Same paired A/B scheme for the instrumented per-step path: the
   optimizer must not lose on the probes-live bytecode either — the
   vmopt-instrumented regression shipped while only the plain path
   was gated. Returns (vm_opt_step_ns, vm_step_ns). *)
let paired_step_gate (e : Models.entry) =
  let m = Lazy.force e.Models.model in
  let prog = Codegen.lower ~mode:Codegen.Full m in
  let layout = Layout.of_program prog in
  let rng = Cftcg_util.Rng.create (Int64.of_int (opts.seed + 7)) in
  let tuple = Layout.random_tuple_bytes layout rng in
  let mk optimize =
    let vm = Cftcg_ir.Ir_vm.compile ~optimize prog in
    Cftcg_ir.Ir_vm.reset vm;
    let p = Cftcg_ir.Ir_vm.probes vm in
    fun () ->
      Layout.load_tuple_vm layout tuple ~tuple:0 vm;
      Cftcg_ir.Ir_vm.step vm;
      Cftcg_ir.Ir_vm.clear_probes p
  in
  let vm = mk false and opt = mk true in
  let batch f =
    let n = 2000 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e9
  in
  ignore (batch vm);
  ignore (batch opt);
  let best_vm = ref infinity and best_opt = ref infinity in
  for _ = 1 to 10 do
    best_vm := Float.min !best_vm (batch vm);
    best_opt := Float.min !best_opt (batch opt)
  done;
  (!best_opt, !best_vm)

(* Paired A/B for the --check-batch gate: the lockstep dispatch
   amortization itself, at zero lane divergence — the same input in
   every lane, so the measured difference is pure dispatch/decode
   sharing, not branch agreement luck. Scalar side is the instrumented
   vm (no optimizer) stepped once per lane; batched side is one
   K-lane lockstep step divided by K. Whole-exec batched throughput on
   divergent inputs is reported (not gated) in the speed table, and
   campaigns fall back to scalar execution when the divergence
   counters say lockstep would lose (see Fuzzer). Returns per-step
   (batch_lane_ns, vm_ns). *)
let paired_batch_gate (e : Models.entry) =
  let m = Lazy.force e.Models.model in
  let prog = Codegen.lower ~mode:Codegen.Full m in
  let layout = Layout.of_program prog in
  let rng = Cftcg_util.Rng.create (Int64.of_int (opts.seed + 5)) in
  let tuple = Layout.random_tuple_bytes layout rng in
  let scalar =
    let vm = Cftcg_ir.Ir_vm.compile ~optimize:false prog in
    Cftcg_ir.Ir_vm.reset vm;
    let p = Cftcg_ir.Ir_vm.probes vm in
    fun () ->
      for _ = 1 to batch_lanes do
        Layout.load_tuple_vm layout tuple ~tuple:0 vm;
        Cftcg_ir.Ir_vm.step vm;
        Cftcg_ir.Ir_vm.clear_probes p
      done
  in
  let batched =
    let bvm = Cftcg_ir.Ir_vm_batch.compile ~optimize:true ~k:batch_lanes prog in
    Cftcg_ir.Ir_vm_batch.reset bvm;
    let p = Cftcg_ir.Ir_vm_batch.probes bvm in
    fun () ->
      for lane = 0 to batch_lanes - 1 do
        Layout.load_tuple_bvm layout tuple ~tuple:0 bvm ~lane
      done;
      Cftcg_ir.Ir_vm_batch.step bvm;
      Cftcg_ir.Ir_vm_batch.clear_probes p
  in
  (* short adjacent scalar/batched round pairs; the per-pair ratio
     cancels load drift on a contended box (both halves of a pair see
     the same machine state), and the median pair resists spikes.
     Returned as (batch_ns, vm_ns) with vm_ns = median ratio * best
     batch ns, so callers see a representative per-step pair. *)
  let round f =
    let n = 200 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int (n * batch_lanes) *. 1e9
  in
  ignore (round scalar);
  ignore (round batched);
  let pairs = 24 in
  let ratios = Array.make pairs 0.0 in
  let best_b = ref infinity in
  for i = 0 to pairs - 1 do
    let v = round scalar in
    let b = round batched in
    best_b := Float.min !best_b b;
    ratios.(i) <- v /. b
  done;
  Array.sort compare ratios;
  let median = (ratios.(pairs / 2) +. ratios.((pairs - 1) / 2)) /. 2.0 in
  (!best_b, median *. !best_b)

(* Same paired A/B scheme for the --check-obs gate, but over whole
   fuzzing runs (the metric counters and sampled timing histograms
   live inside Fuzzer.run's loop, not in the executor): alternate
   observability-off and observability-on runs of the same seeded
   campaign and keep the best round per side. The on leg enables the
   whole surface — metrics, tracing, debug-level structured logging
   and the flight-recorder ring — so the <2% bound covers the logger
   too. Returns (obs_on_ns, obs_off_ns) per execution. *)
let paired_obs_gate (e : Models.entry) =
  let m = Lazy.force e.Models.model in
  let prog = Codegen.lower ~mode:Codegen.Full m in
  let config =
    { Cftcg_fuzz.Fuzzer.default_config with
      Cftcg_fuzz.Fuzzer.seed = Int64.of_int (opts.seed + 11)
    }
  in
  let execs = 8000 in
  let run obs =
    Cftcg_obs.Metrics.set_collect obs;
    Cftcg_obs.Trace.set_enabled obs;
    Cftcg_obs.Log.set_level (if obs then Some Cftcg_obs.Log.Debug else None);
    Cftcg_obs.Flight.set_enabled obs;
    let t0 = Unix.gettimeofday () in
    ignore (Cftcg_fuzz.Fuzzer.run ~config prog (Cftcg_fuzz.Fuzzer.Exec_budget execs));
    let dt = Unix.gettimeofday () -. t0 in
    Cftcg_obs.Metrics.set_collect false;
    Cftcg_obs.Trace.set_enabled false;
    Cftcg_obs.Trace.clear ();
    Cftcg_obs.Log.set_level None;
    Cftcg_obs.Flight.set_enabled false;
    Cftcg_obs.Flight.clear ();
    dt /. float_of_int execs *. 1e9
  in
  ignore (run false);
  ignore (run true);
  let best_off = ref infinity and best_on = ref infinity in
  for _ = 1 to 10 do
    best_off := Float.min !best_off (run false);
    best_on := Float.min !best_on (run true)
  done;
  (!best_on, !best_off)

let speed () =
  let e = Option.get (Models.find "SolarPV") in
  let m = Lazy.force e.Models.model in
  let prog_plain = Codegen.lower ~mode:Codegen.Plain m in
  let prog_full = Codegen.lower ~mode:Codegen.Full m in
  let layout = Layout.of_program prog_full in
  let compiled = Cftcg_ir.Ir_compile.compile prog_plain in
  Cftcg_ir.Ir_compile.reset compiled;
  let curr = Bytes.make (max prog_full.Cftcg_ir.Ir.n_probes 1) '\000' in
  let hooks = Cftcg_ir.Hooks.probes_only (fun id -> Bytes.unsafe_set curr id '\001') in
  let instrumented = Cftcg_ir.Ir_compile.compile ~hooks prog_full in
  Cftcg_ir.Ir_compile.reset instrumented;
  let vm_plain = Cftcg_ir.Ir_vm.compile ~optimize:false prog_plain in
  Cftcg_ir.Ir_vm.reset vm_plain;
  let vm_instr = Cftcg_ir.Ir_vm.compile ~optimize:false prog_full in
  Cftcg_ir.Ir_vm.reset vm_instr;
  let vm_opt = Cftcg_ir.Ir_vm.compile prog_plain in
  Cftcg_ir.Ir_vm.reset vm_opt;
  let vm_opt_instr = Cftcg_ir.Ir_vm.compile prog_full in
  Cftcg_ir.Ir_vm.reset vm_opt_instr;
  let interp = Interp.create m in
  Interp.reset interp;
  let evaluator = Cftcg_ir.Ir_eval.create prog_plain in
  Cftcg_ir.Ir_eval.reset evaluator;
  let rng = Cftcg_util.Rng.create 5L in
  let tuple = Layout.random_tuple_bytes layout rng in
  let open Bechamel in
  let feed_boxed set =
    Array.iteri
      (fun i (f : Layout.field) -> set i (Value.decode f.Layout.f_ty tuple f.Layout.f_offset))
      layout.Layout.fields
  in
  let tests =
    Test.make_grouped ~name:"step"
      [ Test.make ~name:"compiled-plain"
          (Staged.stage (fun () ->
               Layout.load_tuple layout tuple ~tuple:0 compiled;
               Cftcg_ir.Ir_compile.step compiled));
        Test.make ~name:"compiled-instrumented"
          (Staged.stage (fun () ->
               Layout.load_tuple layout tuple ~tuple:0 instrumented;
               Cftcg_ir.Ir_compile.step instrumented));
        Test.make ~name:"vm-plain"
          (Staged.stage (fun () ->
               Layout.load_tuple_vm layout tuple ~tuple:0 vm_plain;
               Cftcg_ir.Ir_vm.step vm_plain));
        Test.make ~name:"vm-instrumented"
          (Staged.stage (fun () ->
               Layout.load_tuple_vm layout tuple ~tuple:0 vm_instr;
               Cftcg_ir.Ir_vm.step vm_instr;
               Cftcg_ir.Ir_vm.clear_probes (Cftcg_ir.Ir_vm.probes vm_instr)));
        Test.make ~name:"vmopt-plain"
          (Staged.stage (fun () ->
               Layout.load_tuple_vm layout tuple ~tuple:0 vm_opt;
               Cftcg_ir.Ir_vm.step vm_opt));
        Test.make ~name:"vmopt-instrumented"
          (Staged.stage (fun () ->
               Layout.load_tuple_vm layout tuple ~tuple:0 vm_opt_instr;
               Cftcg_ir.Ir_vm.step vm_opt_instr;
               Cftcg_ir.Ir_vm.clear_probes (Cftcg_ir.Ir_vm.probes vm_opt_instr)));
        Test.make ~name:"ir-evaluator"
          (Staged.stage (fun () ->
               feed_boxed (Cftcg_ir.Ir_eval.set_input evaluator);
               Cftcg_ir.Ir_eval.step evaluator));
        Test.make ~name:"graph-interpreter"
          (Staged.stage (fun () ->
               feed_boxed (Interp.set_input interp);
               Interp.step interp)) ]
  in
  let estimates = bechamel_estimates tests in
  let find needle = List.find_opt (fun (name, _) -> contains ~needle name) estimates in
  let t = Tt.create [ "Execution path"; "ns/iteration"; "iterations/s" ] in
  let step_rows = ref [] in
  List.iter
    (fun label ->
      match find label with
      | Some (_, ns) ->
        step_rows := (label, ns) :: !step_rows;
        Tt.add_row t [ label; Printf.sprintf "%.0f" ns; Printf.sprintf "%.0f" (1e9 /. ns) ]
      | None -> Tt.add_row t [ label; "n/a"; "n/a" ])
    [ "compiled-plain"; "compiled-instrumented"; "vm-plain"; "vm-instrumented"; "vmopt-plain";
      "vmopt-instrumented"; "ir-evaluator"; "graph-interpreter" ];
  (match (find "vm-instrumented", find "graph-interpreter") with
  | Some (_, c), Some (_, i) ->
    Tt.add_row t [ "speedup vm/interpreter"; Printf.sprintf "%.0fx" (i /. c); "" ]
  | _ -> ());
  (match (find "vmopt-instrumented", find "graph-interpreter") with
  | Some (_, c), Some (_, i) ->
    Tt.add_row t [ "speedup vm-opt/interpreter"; Printf.sprintf "%.0fx" (i /. c); "" ]
  | _ -> ());
  print_table "Speed: SolarPV model iteration rate (paper: 26,000/s vs 6/s)" t;
  (* fuzzer-execution throughput per bench model: the number that
     decides which backend (and whether the optimizer) the fuzzing
     loop should use *)
  let tx =
    Tt.create
      [ "Model"; "interp ex/s"; "closures ex/s"; "vm ex/s"; "vm-opt ex/s"; "vm/closures";
        "vm-opt/vm" ]
  in
  let model_rows = List.map backend_execs_per_sec (selected_models ()) in
  let ratio a b = if Float.is_nan a || Float.is_nan b then 0.0 else a /. b in
  List.iter
    (fun ms ->
      let per_s ns = if Float.is_nan ns then 0.0 else 1e9 /. ns in
      Tt.add_row tx
        [ ms.ms_name; Printf.sprintf "%.0f" (per_s ms.ms_interp_ns);
          Printf.sprintf "%.0f" (per_s ms.ms_closures_ns);
          Printf.sprintf "%.0f" (per_s ms.ms_vm_ns);
          Printf.sprintf "%.0f" (per_s ms.ms_vm_opt_ns);
          Printf.sprintf "%.2fx" (ratio ms.ms_closures_ns ms.ms_vm_ns);
          Printf.sprintf "%.2fx" (ratio ms.ms_vm_ns ms.ms_vm_opt_ns) ])
    model_rows;
  print_table "Speed: fuzzer executions/s by backend (16-tuple inputs)" tx;
  (* the instrumented hot path per model — probes live, the cost every
     campaign execution pays — and the batched lockstep VM against it *)
  (* the lockstep dispatch-amortization measure the --check-batch gate
     judges: same input in every lane, per-lane step time *)
  let lockstep_rows = List.map paired_batch_gate (selected_models ()) in
  let tb =
    Tt.create
      [ "Model"; "vm-instr ns/step"; "vmopt-instr ns/step"; "vm/vmopt";
        Printf.sprintf "lockstep ns/step-lane (K=%d)" batch_lanes; "lockstep gain";
        Printf.sprintf "batch ex/s (K=%d)" batch_lanes; "batch/vm" ]
  in
  List.iter2
    (fun ms (ls_b, ls_v) ->
      let per_s ns = if Float.is_nan ns then 0.0 else 1e9 /. ns in
      Tt.add_row tb
        [ ms.ms_name; Printf.sprintf "%.0f" ms.ms_vm_step_ns;
          Printf.sprintf "%.0f" ms.ms_vm_opt_step_ns;
          Printf.sprintf "%.2fx" (ratio ms.ms_vm_step_ns ms.ms_vm_opt_step_ns);
          Printf.sprintf "%.0f" ls_b; Printf.sprintf "%.2fx" (ratio ls_v ls_b);
          Printf.sprintf "%.0f" (per_s ms.ms_batch_ns);
          Printf.sprintf "%.2fx" (ratio ms.ms_vm_ns ms.ms_batch_ns) ])
    model_rows lockstep_rows;
  print_table "Speed: instrumented hot path and batched lockstep VM" tb;
  (* what the optimizer did to the bytecode, and what each backend
     allocates per execution (the VM paths should be near zero) *)
  let ti =
    Tt.create
      [ "Model"; "static insts"; "opt"; "dyn insts/exec"; "opt"; "dyn -%"; "alloc w/ex cls";
        "alloc w/ex vm"; "alloc w/ex vm-opt" ]
  in
  List.iter
    (fun ms ->
      let dyn_red =
        if ms.ms_dyn = 0 then 0.0
        else 100.0 *. float_of_int (ms.ms_dyn - ms.ms_dyn_opt) /. float_of_int ms.ms_dyn
      in
      Tt.add_row ti
        [ ms.ms_name; string_of_int ms.ms_static; string_of_int ms.ms_static_opt;
          string_of_int ms.ms_dyn; string_of_int ms.ms_dyn_opt; Printf.sprintf "%.1f%%" dyn_red;
          Printf.sprintf "%.0f" ms.ms_minor_closures; Printf.sprintf "%.0f" ms.ms_minor_vm;
          Printf.sprintf "%.0f" ms.ms_minor_vm_opt ])
    model_rows;
  print_table "Speed: optimizer instruction counts and allocation per execution" ti;
  (* aggregate optimizer effect over the selected models *)
  let geomean_of ratios =
    match List.filter (fun r -> r > 0.0) ratios with
    | [] -> 0.0
    | l -> exp (List.fold_left (fun acc r -> acc +. log r) 0.0 l /. float_of_int (List.length l))
  in
  let geomean = geomean_of (List.map (fun ms -> ratio ms.ms_vm_ns ms.ms_vm_opt_ns) model_rows) in
  let step_geomean =
    geomean_of (List.map (fun ms -> ratio ms.ms_vm_step_ns ms.ms_vm_opt_step_ns) model_rows)
  in
  let batch_geomean =
    geomean_of (List.map (fun ms -> ratio ms.ms_vm_ns ms.ms_batch_ns) model_rows)
  in
  let lockstep_geomean = geomean_of (List.map (fun (b, v) -> ratio v b) lockstep_rows) in
  let big_dyn_cuts =
    List.length
      (List.filter
         (fun ms -> ms.ms_dyn > 0 && float_of_int ms.ms_dyn_opt <= 0.8 *. float_of_int ms.ms_dyn)
         model_rows)
  in
  Printf.printf "\nvm-opt/vm geomean speedup: %.2fx; >=20%% dynamic-instruction cut on %d/%d models\n"
    geomean big_dyn_cuts (List.length model_rows);
  Printf.printf "vmopt-instrumented/vm-instrumented step geomean: %.2fx; batch(K=%d)/vm exec geomean: %.2fx\n"
    step_geomean batch_lanes batch_geomean;
  Printf.printf "zero-divergence lockstep step-lane geomean gain: %.2fx\n" lockstep_geomean;
  if opts.json then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"benchmark\": \"speed\",\n  \"step_ns\": {";
    List.iteri
      (fun i (label, ns) ->
        Buffer.add_string buf
          (Printf.sprintf "%s\n    \"%s\": %.1f" (if i = 0 then "" else ",") label ns))
      (List.rev !step_rows);
    Buffer.add_string buf "\n  },\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"vm_opt_geomean_speedup\": %.3f,\n\
         \  \"instr_step_geomean_speedup\": %.3f,\n\
         \  \"batch_lanes\": %d,\n\
         \  \"batch_geomean_speedup\": %.3f,\n\
         \  \"batch_lockstep_geomean_speedup\": %.3f,\n\
         \  \"models\": [" geomean step_geomean batch_lanes batch_geomean lockstep_geomean);
    List.iteri
      (fun i (ms, (ls_b, ls_v)) ->
        let num ns = if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns in
        let per_s ns = if Float.is_nan ns then "null" else Printf.sprintf "%.1f" (1e9 /. ns) in
        let rat a b =
          if Float.is_nan a || Float.is_nan b then "null" else Printf.sprintf "%.3f" (a /. b)
        in
        Buffer.add_string buf
          (Printf.sprintf
             "%s\n    { \"model\": \"%s\", \"interp_exec_ns\": %s, \"closures_exec_ns\": %s, \
              \"vm_exec_ns\": %s, \"vm_opt_exec_ns\": %s, \"vm_instr_step_ns\": %s, \
              \"vm_opt_instr_step_ns\": %s, \"vm_opt_over_vm_instr_step\": %s, \
              \"batch_exec_ns\": %s, \"batch_over_vm\": %s, \
              \"batch_lockstep_step_ns\": %s, \"batch_lockstep_gain\": %s, \
              \"interp_execs_per_s\": %s, \
              \"closures_execs_per_s\": %s, \"vm_execs_per_s\": %s, \"vm_opt_execs_per_s\": %s, \
              \"batch_execs_per_s\": %s, \"vm_over_closures\": %s, \"vm_opt_over_vm\": %s, \
              \"static_insts\": %d, \"static_insts_opt\": %d, \"dyn_insts\": %d, \
              \"dyn_insts_opt\": %d, \"minor_words_per_exec\": { \"closures\": %.1f, \
              \"vm\": %.1f, \"vm_opt\": %.1f } }"
             (if i = 0 then "" else ",")
             ms.ms_name (num ms.ms_interp_ns) (num ms.ms_closures_ns) (num ms.ms_vm_ns)
             (num ms.ms_vm_opt_ns) (num ms.ms_vm_step_ns) (num ms.ms_vm_opt_step_ns)
             (rat ms.ms_vm_step_ns ms.ms_vm_opt_step_ns)
             (num ms.ms_batch_ns)
             (rat ms.ms_vm_ns ms.ms_batch_ns)
             (num ls_b) (rat ls_v ls_b)
             (per_s ms.ms_interp_ns) (per_s ms.ms_closures_ns)
             (per_s ms.ms_vm_ns) (per_s ms.ms_vm_opt_ns) (per_s ms.ms_batch_ns)
             (rat ms.ms_closures_ns ms.ms_vm_ns)
             (rat ms.ms_vm_ns ms.ms_vm_opt_ns)
             ms.ms_static ms.ms_static_opt ms.ms_dyn ms.ms_dyn_opt ms.ms_minor_closures
             ms.ms_minor_vm ms.ms_minor_vm_opt))
      (List.combine model_rows lockstep_rows);
    Buffer.add_string buf "\n  ]\n}\n";
    let oc = open_out "BENCH_speed.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "\nwrote BENCH_speed.json\n"
  end;
  if opts.history then begin
    (* append this run's per-model vm-opt throughput to the history
       ledger and compare against the previous record. Warn-only. *)
    let module Wire = Cftcg_serve.Wire in
    let path = "BENCH_history.jsonl" in
    let prev =
      if not (Sys.file_exists path) then None
      else begin
        let ic = open_in path in
        let last = ref None in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then last := Some line
           done
         with End_of_file -> ());
        close_in ic;
        match !last with
        | None -> None
        | Some line -> ( try Some (Wire.of_string line) with Wire.Parse_error _ -> None)
      end
    in
    let prev_rate name =
      match prev with
      | Some (Wire.Obj fields) -> (
        match List.assoc_opt "models" fields with
        | Some (Wire.Arr models) ->
          List.find_map
            (function
              | Wire.Obj mf -> (
                match (List.assoc_opt "model" mf, List.assoc_opt "vm_opt_execs_per_s" mf) with
                | Some (Wire.Str n), Some (Wire.Num r) when n = name -> Some r
                | _ -> None)
              | _ -> None)
            models
        | _ -> None)
      | _ -> None
    in
    let regressions = ref 0 in
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "{\"ts\":%.0f,\"budget\":%g,\"models\":[" (Unix.time ()) opts.budget);
    List.iteri
      (fun i ms ->
        let rate =
          if Float.is_nan ms.ms_vm_opt_ns || ms.ms_vm_opt_ns <= 0.0 then 0.0
          else 1e9 /. ms.ms_vm_opt_ns
        in
        (match prev_rate ms.ms_name with
        | Some p when p > 0.0 && rate < 0.9 *. p ->
          incr regressions;
          Printf.printf "history WARN: %s vm-opt %.0f execs/s, down %.0f%% vs previous %.0f\n"
            ms.ms_name rate
            (100.0 *. (1.0 -. (rate /. p)))
            p
        | _ -> ());
        Buffer.add_string buf
          (Printf.sprintf "%s{\"model\":\"%s\",\"vm_opt_execs_per_s\":%.1f}"
             (if i = 0 then "" else ",")
             ms.ms_name rate))
      model_rows;
    Buffer.add_string buf "]}\n";
    let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "history: appended %d models to %s (%s)\n" (List.length model_rows) path
      (if !regressions = 0 then "no >10% regressions"
       else Printf.sprintf "%d regression warning(s)" !regressions)
  end;
  if opts.check_opt then begin
    (* CI gate: the optimizer must never lose to the plain VM. Uses
       the paired A/B measurement (not the bechamel table above, whose
       contiguous quota windows drift on a throttling box); a small
       tolerance absorbs residual noise and a losing model gets one
       re-measurement before failing. *)
    let loses (opt_ns, vm_ns) = opt_ns > vm_ns *. 1.05 in
    let losers =
      List.filter_map
        (fun e ->
          let ((opt_ns, vm_ns) as r) = paired_vm_gate e in
          if not (loses r) then None
          else begin
            Printf.printf "check-opt: %s lost (vm-opt %.0f vs vm %.0f ns/exec), re-measuring\n%!"
              e.Models.name opt_ns vm_ns;
            let r' = paired_vm_gate e in
            if loses r' then Some (e.Models.name, r') else None
          end)
        (selected_models ())
    in
    List.iter
      (fun (name, (opt_ns, vm_ns)) ->
        Printf.eprintf "check-opt FAIL: %s vm-opt %.0f ns/exec vs vm %.0f ns/exec\n" name opt_ns
          vm_ns)
      losers;
    (* second leg: the instrumented per-step path, probes live — the
       path every campaign execution takes *)
    let step_losers =
      List.filter_map
        (fun e ->
          let ((opt_ns, vm_ns) as r) = paired_step_gate e in
          if not (loses r) then None
          else begin
            Printf.printf
              "check-opt: %s lost instrumented step (vmopt %.0f vs vm %.0f ns/step), \
               re-measuring\n\
               %!"
              e.Models.name opt_ns vm_ns;
            let r' = paired_step_gate e in
            if loses r' then Some (e.Models.name, r') else None
          end)
        (selected_models ())
    in
    List.iter
      (fun (name, (opt_ns, vm_ns)) ->
        Printf.eprintf
          "check-opt FAIL: %s vmopt-instrumented %.0f ns/step vs vm-instrumented %.0f ns/step\n"
          name opt_ns vm_ns)
      step_losers;
    if losers <> [] || step_losers <> [] then exit 1;
    Printf.printf
      "check-opt OK: vm-opt keeps up with vm on all %d models (whole-exec and instrumented step)\n"
      (List.length model_rows)
  end;
  if opts.check_batch then begin
    (* CI gate: the batched lockstep VM's dispatch amortization. At
       zero lane divergence (same input in every lane) a batched
       instrumented step must beat the scalar vm backend's
       instrumented step per lane (geomean >= 1.02x over the selected
       models) at the fuzzer's default lane count. Idle machines
       measure ~1.2-1.5x; the near-1.0 threshold is what stays robust
       under host CPU steal on shared single-core runners while still
       catching any regression that makes lockstep lose outright.
       Judged on the geomean, not per model — small register files
       amortize less. Whole-exec batched throughput on divergent
       fuzzing inputs is reported in the speed table but not gated:
       it depends on how often the model's branches split the lanes,
       which is the campaign scheduler's call (it falls back to
       scalar execution when the divergence counters say lockstep
       loses). Paired A/B like check-opt, with one re-measurement. *)
    let threshold = 1.02 in
    let measure () =
      List.map
        (fun e ->
          let b, v = paired_batch_gate e in
          (e.Models.name, if b > 0.0 then v /. b else 0.0))
        (selected_models ())
    in
    let report rows =
      List.iter
        (fun (name, r) ->
          Printf.printf "check-batch: %-8s lockstep step-lane %.2fx vs scalar vm step\n" name r)
        rows;
      geomean_of (List.map snd rows)
    in
    let g = report (measure ()) in
    let g =
      if g >= threshold then g
      else begin
        Printf.printf "check-batch: geomean %.2fx < %.2fx, re-measuring\n%!" g threshold;
        (* keep the better of the two readings: a transient steal
           window should not fail the gate when a clean one passed *)
        Float.max g (report (measure ()))
      end
    in
    if g < threshold then begin
      Printf.eprintf
        "check-batch FAIL: zero-divergence lockstep step geomean %.2fx < %.2fx (K=%d)\n" g
        threshold batch_lanes;
      exit 1
    end;
    Printf.printf "check-batch OK: zero-divergence lockstep step geomean %.2fx (K=%d)\n" g
      batch_lanes
  end;
  if opts.check_obs then begin
    (* CI gate: idle-path observability (one Atomic load per guarded
       region, sampled timings when on) must stay within 2% of the
       obs-off throughput. Paired A/B like check-opt; a losing model
       gets one re-measurement before failing. *)
    let loses (on_ns, off_ns) = on_ns > off_ns *. 1.02 in
    let losers =
      List.filter_map
        (fun e ->
          let ((on_ns, off_ns) as r) = paired_obs_gate e in
          if not (loses r) then None
          else begin
            Printf.printf
              "check-obs: %s lost (obs-on %.0f vs obs-off %.0f ns/exec), re-measuring\n%!"
              e.Models.name on_ns off_ns;
            let r' = paired_obs_gate e in
            if loses r' then Some (e.Models.name, r') else None
          end)
        (selected_models ())
    in
    List.iter
      (fun (name, (on_ns, off_ns)) ->
        Printf.eprintf "check-obs FAIL: %s obs-on %.0f ns/exec vs obs-off %.0f ns/exec (>2%%)\n"
          name on_ns off_ns)
      losers;
    if losers <> [] then exit 1;
    Printf.printf "check-obs OK: observability costs <2%% execs/s on all %d models\n"
      (List.length (selected_models ()))
  end;
  (* fuzzing-loop component costs *)
  let rng2 = Cftcg_util.Rng.create 9L in
  let parent =
    Bytes.concat Bytes.empty (List.init 16 (fun _ -> Layout.random_tuple_bytes layout rng2))
  in
  let dict = Cftcg_fuzz.Dictionary.of_program prog_full in
  let component_tests =
    let open Bechamel in
    Test.make_grouped ~name:"fuzz"
      [ Test.make ~name:"field-aware-mutation"
          (Staged.stage (fun () ->
               ignore
                 (Cftcg_fuzz.Mutate.mutate ~dict layout rng2 parent ~other:parent ~max_tuples:256)));
        Test.make ~name:"blind-mutation"
          (Staged.stage (fun () ->
               ignore (Cftcg_fuzz.Mutate.mutate_blind rng2 parent ~other:parent ~max_len:2304)));
        Test.make ~name:"metric-replay-16-tuples"
          (Staged.stage (fun () -> ignore (Cftcg_fuzz.Fuzzer.replay_metric prog_full parent))) ]
  in
  let comp = bechamel_estimates component_tests in
  let t2 = Tt.create [ "Fuzzing-loop component"; "ns/op"; "ops/s" ] in
  List.iter
    (fun label ->
      match List.find_opt (fun (name, _) -> contains ~needle:label name) comp with
      | Some (_, ns) ->
        Tt.add_row t2 [ label; Printf.sprintf "%.0f" ns; Printf.sprintf "%.0f" (1e9 /. ns) ]
      | None -> Tt.add_row t2 [ label; "n/a"; "n/a" ])
    [ "field-aware-mutation"; "blind-mutation"; "metric-replay-16-tuples" ];
  print_table "Speed: fuzzing-loop components" t2

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation () =
  let variants =
    [ Tools.cftcg;
      Tools.cftcg_variant ~field_aware:false "CFTCG-noField";
      Tools.cftcg_variant ~iteration_metric:false "CFTCG-noIterMetric";
      Tools.cftcg_variant ~use_dictionary:false "CFTCG-noDict";
      Tools.cftcg_hybrid;
      Tools.fuzz_only ]
  in
  let t = Tt.create [ "Model"; "Variant"; "Decision"; "Condition"; "MCDC" ] in
  List.iter
    (fun (e : Models.entry) ->
      List.iter
        (fun tool ->
          let d, c, m = avg_report e tool in
          Tt.add_row t [ e.Models.name; tool.Tools.name; pct d; pct c; pct m ])
        variants;
      Tt.add_separator t)
    (selected_models ());
  print_table "Ablation: model-oriented ingredients" t

(* ------------------------------------------------------------------ *)
(* Scaling: ensemble campaign throughput vs worker count              *)
(* ------------------------------------------------------------------ *)

module Campaign = Cftcg_campaign.Campaign

let scaling () =
  let e =
    match selected_models () with
    | e :: _ -> e
    | [] -> Option.get (Models.find "SolarPV")
  in
  let m = Lazy.force e.Models.model in
  let prog = Codegen.lower ~mode:Codegen.Full m in
  (* same total execution budget at every worker count, early stops
     disabled, so throughput and coverage are directly comparable *)
  let total = max 1000 (int_of_float (opts.budget *. 20_000.)) in
  let t = Tt.create [ "Jobs"; "Probes covered"; "Executions"; "Wall s"; "Execs/s" ] in
  List.iter
    (fun jobs ->
      let config =
        { Campaign.default_config with
          Campaign.jobs;
          seed = Int64.of_int opts.seed;
          total_execs = total;
          execs_per_epoch = max 1 (total / (4 * jobs));
          stop_on_full = false;
          plateau_epochs = max_int
        }
      in
      let t0 = Unix.gettimeofday () in
      let r = Campaign.run ~config prog in
      let wall = Unix.gettimeofday () -. t0 in
      Tt.add_row t
        [ string_of_int jobs;
          Printf.sprintf "%d/%d" r.Campaign.probes_covered r.Campaign.probes_total;
          string_of_int r.Campaign.executions; Printf.sprintf "%.2f" wall;
          Printf.sprintf "%.0f" (float_of_int r.Campaign.executions /. Float.max wall 1e-9) ])
    [ 1; 2; 4; 8 ];
  print_table
    (Printf.sprintf "Scaling: %s ensemble campaign, %d executions total" e.Models.name total)
    t

(* ------------------------------------------------------------------ *)
(* Hybrid: fuzz-only plateau vs plateau→solve→resume campaigns        *)
(* ------------------------------------------------------------------ *)

(* Table-3-style comparison on the deep-state models (TCP's handshake
   and RAC's guarded transitions hide probes behind cross-inport
   equality constraints that random mutation essentially never
   satisfies): the same seeded campaign once with the classic plateau
   stop and once with the hybrid concolic phase. Both runs share seed
   and execution budget — the hybrid run spends part of its budget
   inside the solver — so any coverage gap is the solver phase's
   contribution, not extra executions. *)
let hybrid_bench () =
  let models =
    match opts.models with
    | Some _ -> selected_models ()
    | None -> List.filter_map Models.find [ "TCP"; "RAC" ]
  in
  (* small epochs so fuzzing plateaus while solvable targets remain,
     and a generous per-phase solver budget (clipped to what is left of
     the total anyway): the regime where the alternation pays *)
  let total = max 40_000 (int_of_float (opts.budget *. 20_000.)) in
  let config hybrid =
    { Campaign.default_config with
      Campaign.jobs = 2;
      seed = Int64.of_int opts.seed;
      total_execs = total;
      execs_per_epoch = max 1 (total / 64);
      plateau_epochs = 2;
      stop_on_full = true;
      hybrid =
        (if hybrid then
           Some { Campaign.default_hybrid with Campaign.solver_execs = 3 * total / 4 }
         else None)
    }
  in
  let t =
    Tt.create
      [ "Model"; "Mode"; "Probes"; "Executions"; "Solver phases"; "Solver closed"; "Stop reason" ]
  in
  let gains = ref [] in
  List.iter
    (fun (e : Models.entry) ->
      let prog = Codegen.lower ~mode:Codegen.Full (Lazy.force e.Models.model) in
      let row mode hybrid =
        let r = Campaign.run ~config:(config hybrid) prog in
        Tt.add_row t
          [ e.Models.name; mode;
            Printf.sprintf "%d/%d" r.Campaign.probes_covered r.Campaign.probes_total;
            string_of_int r.Campaign.executions; string_of_int r.Campaign.solver_rounds;
            string_of_int r.Campaign.solver_solved;
            (match r.Campaign.stop_reason with
            | Some reason -> Campaign.stop_reason_string reason
            | None -> "-") ];
        r
      in
      let fuzz_only = row "fuzz-only" false in
      let hybrid = row "hybrid" true in
      gains :=
        (e.Models.name, hybrid.Campaign.probes_covered - fuzz_only.Campaign.probes_covered)
        :: !gains;
      Tt.add_separator t)
    models;
  print_table
    (Printf.sprintf "Hybrid: fuzz-only plateau vs plateau-solve-resume (%d execs, seed %d)" total
       opts.seed)
    t;
  List.iter
    (fun (name, gain) ->
      Printf.printf "hybrid gain on %s: %+d probe(s) over fuzz-only at the same budget\n" name gain)
    (List.rev !gains)

(* ------------------------------------------------------------------ *)
(* Serve: scheduler multiplexing overhead and shard store throughput  *)
(* ------------------------------------------------------------------ *)

module Scheduler = Cftcg_serve.Scheduler
module Serve_job = Cftcg_serve.Job
module Worker_pool = Cftcg_campaign.Worker_pool
module Store = Cftcg_campaign.Corpus_store
module Bytecodec = Cftcg_util.Bytecodec

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let serve_bench () =
  let e =
    match selected_models () with
    | e :: _ -> e
    | [] -> Option.get (Models.find "SolarPV")
  in
  let prog = Codegen.lower ~mode:Codegen.Full (Lazy.force e.Models.model) in
  let n = 8 in
  let total = max 500 (int_of_float (opts.budget *. 4_000.)) in
  let config_for i =
    { Campaign.default_config with
      Campaign.jobs = 2;
      seed = Int64.of_int (opts.seed + i);
      total_execs = total;
      execs_per_epoch = max 1 (total / 4);
      stop_on_full = false;
      plateau_epochs = max_int
    }
  in
  (* back-to-back solo runs: the no-scheduler baseline *)
  let t0 = Unix.gettimeofday () in
  let execs_solo =
    List.fold_left ( + ) 0
      (List.init n (fun i -> (Campaign.run ~config:(config_for i) prog).Campaign.executions))
  in
  let solo_wall = Unix.gettimeofday () -. t0 in
  (* the same campaigns multiplexed through the DRR scheduler *)
  let pool = Worker_pool.create (Worker_pool.default_capacity ()) in
  let sched = Scheduler.create ~pool () in
  let t0 = Unix.gettimeofday () in
  let ids =
    List.init n (fun i ->
        let sub =
          { Scheduler.sb_model = e.Models.name; sb_tenant = Printf.sprintf "t%d" (i mod 3);
            sb_weight = 1; sb_tenant_budget = None; sb_config = config_for i }
        in
        Result.get_ok (Scheduler.submit sched sub prog))
  in
  let rec drain ids =
    let live =
      List.filter
        (fun id ->
          match Scheduler.find sched id with
          | Some j -> not (Serve_job.terminal j.Serve_job.jb_status)
          | None -> false)
        ids
    in
    if live <> [] then begin
      Thread.delay 0.01;
      drain live
    end
  in
  drain ids;
  let sched_wall = Unix.gettimeofday () -. t0 in
  let execs_sched =
    List.fold_left (fun acc j -> acc + j.Serve_job.jb_spent) 0 (Scheduler.jobs sched)
  in
  Scheduler.shutdown sched;
  let t = Tt.create [ "Mode"; "Campaigns"; "Executions"; "Wall s"; "Execs/s" ] in
  let row label execs wall =
    Tt.add_row t
      [ label; string_of_int n; string_of_int execs; Printf.sprintf "%.2f" wall;
        Printf.sprintf "%.0f" (float_of_int execs /. Float.max wall 1e-9) ]
  in
  row "solo, back to back" execs_solo solo_wall;
  row "DRR scheduler" execs_sched sched_wall;
  print_table
    (Printf.sprintf "Serve: %d multiplexed %s campaigns vs solo (pool %d)" n e.Models.name
       (Worker_pool.default_capacity ()))
    t;
  (* sharded store: add throughput, 1 writer vs 4 concurrent domains *)
  let adds = 4_000 in
  let throughput writers =
    let dir = Filename.concat (Filename.get_temp_dir_name ()) "cftcg_bench_store" in
    rm_rf dir;
    let store = Store.open_ dir in
    let per = adds / writers in
    let t0 = Unix.gettimeofday () in
    let ds =
      List.init writers (fun w ->
          Domain.spawn (fun () ->
              for i = 0 to per - 1 do
                let fp = Bytecodec.hex_of_int64 (Int64.of_int ((w * 7_000_019) + i + 1)) in
                ignore (Store.add store ~fingerprint:fp ~metric:i (Bytes.make 64 'x'))
              done))
    in
    List.iter Domain.join ds;
    let wall = Unix.gettimeofday () -. t0 in
    rm_rf dir;
    float_of_int (per * writers) /. Float.max wall 1e-9
  in
  let t = Tt.create [ "Writers"; "Adds/s" ] in
  List.iter
    (fun w -> Tt.add_row t [ string_of_int w; Printf.sprintf "%.0f" (throughput w) ])
    [ 1; 4 ];
  print_table (Printf.sprintf "Sharded corpus store: %d adds" adds) t

(* ------------------------------------------------------------------ *)
(* Uncovered-decision diagnostic (not a paper artifact)                *)
(* ------------------------------------------------------------------ *)

let uncovered () =
  List.iter
    (fun (e : Models.entry) ->
      let m = Lazy.force e.Models.model in
      let prog = Codegen.lower ~mode:Codegen.Full m in
      let outcome = Tools.cftcg.Tools.generate m ~seed:(Int64.of_int opts.seed) ~time_budget:opts.budget in
      let recorder = Recorder.create prog in
      let compiled = Cftcg_ir.Ir_compile.compile ~hooks:(Recorder.hooks recorder) prog in
      let layout = Layout.of_program prog in
      List.iter
        (fun (tc : Tools.test_case) ->
          Cftcg_ir.Ir_compile.reset compiled;
          let n = min (Layout.n_tuples layout tc.Tools.data) 4096 in
          for tuple = 0 to n - 1 do
            Layout.load_tuple layout tc.Tools.data ~tuple compiled;
            Cftcg_ir.Ir_compile.step compiled
          done)
        outcome.Tools.suite;
      Printf.printf "\n== uncovered decisions: %s ==\n" e.Models.name;
      List.iter
        (fun (block, desc, missing) ->
          Printf.printf "  %-40s %-28s missing outcomes %s\n" block desc
            (String.concat "," (List.map string_of_int missing)))
        (Recorder.uncovered recorder))
    (selected_models ());
  flush stdout

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let all_experiments =
  [ ("table2", table2); ("table3", table3); ("figure7", figure7); ("figure8", figure8);
    ("speed", speed); ("ablation", ablation); ("scaling", scaling); ("hybrid", hybrid_bench);
    ("serve", serve_bench); ("uncovered", uncovered) ]

let () =
  parse_args ();
  let chosen =
    match opts.experiments with
    | [] -> List.map fst all_experiments
    | picked -> picked
  in
  Printf.printf "CFTCG benchmark harness — budget %.1fs, %d rep(s), seed %d\n" opts.budget opts.reps
    opts.seed;
  List.iter
    (fun name ->
      match List.assoc_opt name all_experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S (known: %s)\n" name
          (String.concat ", " (List.map fst all_experiments)))
    chosen
