(* Ensemble fuzzing: a 4-worker campaign on the SolarPV benchmark with
   corpus merge between epochs and a JSONL telemetry stream.

     dune exec examples/parallel_campaign.exe -- [total_execs] *)

module Models = Cftcg_bench_models.Bench_models
module Campaign = Cftcg_campaign.Campaign
module Telemetry = Cftcg_campaign.Telemetry
module Recorder = Cftcg_coverage.Recorder
module Tt = Cftcg_util.Texttable

let () =
  let total = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 20_000 in
  let entry = Option.get (Models.find "SolarPV") in
  let model = Lazy.force entry.Models.model in
  Printf.printf "SolarPV: %s\n\n" entry.Models.functionality;

  let jsonl_path = Filename.concat (Filename.get_temp_dir_name ()) "solarpv_campaign.jsonl" in
  let ring, events = Telemetry.ring () in
  let sink = Telemetry.multi [ ring; Telemetry.jsonl jsonl_path ] in
  let config =
    { Campaign.default_config with
      Campaign.jobs = 4;
      seed = 7L;
      total_execs = total;
      execs_per_epoch = total / 16;
      sink
    }
  in
  let pc = Cftcg.Pipeline.run_parallel_campaign ~config model in
  sink.Telemetry.close ();
  let r = pc.Cftcg.Pipeline.pc_result in

  (* coverage vs epoch *)
  let t = Tt.create [ "Epoch"; "Executions"; "Probes covered"; "Corpus" ] in
  List.iter
    (fun (ep : Campaign.epoch_stat) ->
      Tt.add_row t
        [ string_of_int ep.Campaign.ep_epoch; string_of_int ep.Campaign.ep_executions;
          Printf.sprintf "%d/%d" ep.Campaign.ep_probes_covered r.Campaign.probes_total;
          string_of_int ep.Campaign.ep_corpus_size ])
    r.Campaign.epochs;
  print_string (Tt.render t);

  Printf.printf "\n4 workers, %d executions, %d/%d probes, %d corpus entries%s\n"
    r.Campaign.executions r.Campaign.probes_covered r.Campaign.probes_total
    (List.length r.Campaign.suite)
    (if r.Campaign.plateaued then " (stopped on plateau)" else "");
  Format.printf "merged-suite coverage: %a@." Recorder.pp_report pc.Cftcg.Pipeline.pc_coverage;

  (* what the telemetry stream recorded *)
  let count p = List.length (List.filter p (events ())) in
  Printf.printf "\ntelemetry: %d events (%d heartbeats, %d new-probe, %d corpus syncs)\n"
    (List.length (events ()))
    (count (function Telemetry.Exec_batch _ -> true | _ -> false))
    (count (function Telemetry.New_probe _ -> true | _ -> false))
    (count (function Telemetry.Corpus_sync _ -> true | _ -> false));
  Printf.printf "JSONL stream written to %s, e.g.:\n" jsonl_path;
  (match events () with
  | e :: _ -> Printf.printf "  %s\n" (Telemetry.to_json ~seq:0 e)
  | [] -> ())
