(* Model files end to end: serialize a benchmark model to the SLX
   XML dialect, load it back through the model parser, and emit the
   instrumented C fuzz code for inspection — the "Fuzzing Code
   Generation" half of the pipeline on its own.

     dune exec examples/model_files.exe -- [model-name] *)

open Cftcg_model
module Models = Cftcg_bench_models.Bench_models
module Codegen = Cftcg_codegen.Codegen
module Cemit = Cftcg_ir.Cemit

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "AFC" in
  let entry =
    match Models.find name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown model %S; known: %s\n" name
        (String.concat ", " (List.map (fun (e : Models.entry) -> e.Models.name) Models.all));
      exit 1
  in
  let model = Lazy.force entry.Models.model in

  (* write + reload through the XML model format *)
  let path = Filename.concat (Filename.get_temp_dir_name ()) (name ^ ".slx.xml") in
  Slx.save_file model path;
  let loaded = Slx.load_file path in
  assert (loaded = model);
  Printf.printf "Saved and reloaded %s (%d blocks, %d lines) via %s\n" name
    (Array.length loaded.Graph.blocks)
    (Array.length loaded.Graph.lines)
    path;

  (* lower the *loaded* model: the full parser -> codegen path *)
  let prog = Codegen.lower ~mode:Codegen.Full loaded in
  Printf.printf "Lowered to IR: %d vars, %d statements, %d branch cells\n"
    prog.Cftcg_ir.Ir.n_vars (Cftcg_ir.Ir.stmt_count prog) prog.Cftcg_ir.Ir.n_probes;

  let c_path = Filename.concat (Filename.get_temp_dir_name ()) (name ^ "_fuzz.c") in
  let oc = open_out c_path in
  output_string oc (Cemit.emit_all prog);
  close_out oc;
  Printf.printf "Wrote instrumented C fuzz code to %s\n\n" c_path;

  (* show the interesting part: one decision's instrumentation *)
  let c = Cemit.emit_program prog in
  let lines = String.split_on_char '\n' c in
  let rec first_probe_block acc = function
    | [] -> List.rev acc
    | line :: rest ->
      let has_probe =
        let needle = "CoverageStatistics" in
        let nl = String.length needle and hl = String.length line in
        let rec go i = i + nl <= hl && (String.sub line i nl = needle || go (i + 1)) in
        go 0
      in
      if has_probe then List.rev (line :: acc)
      else first_probe_block (if List.length acc > 6 then acc else line :: acc) rest
  in
  print_endline "--- first instrumented region of the generated C ---";
  List.iter print_endline (first_probe_block [] lines)
