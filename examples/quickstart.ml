(* Quickstart: build a small model with the Build API, generate the
   instrumented fuzz program, run a short campaign, and inspect the
   results.

     dune exec examples/quickstart.exe *)

open Cftcg_model
module B = Build
module Fuzzer = Cftcg_fuzz.Fuzzer
module Recorder = Cftcg_coverage.Recorder

(* A thermostat with hysteresis and an over-temperature cutout:
   - heater turns on below 18 degrees, off above 22 (relay);
   - a cutout trips when the sensor exceeds 80 and latches until
     reset is pulsed. *)
let thermostat () =
  let b = B.create "Thermostat" in
  let temp = B.inport b "Temp" Dtype.Int16 in
  let reset = B.inport b "Reset" Dtype.Bool in
  let temp_f = B.convert b Dtype.Float64 temp in
  let heater =
    B.relay b ~name:"Hysteresis" ~on_point:(-18.) ~off_point:(-22.) ~on_value:1. ~off_value:0.
      (B.neg b temp_f)
  in
  let overheat = B.compare_const b ~name:"Overheat" Graph.R_gt 80.0 temp_f in
  (* latch: trips on overheat, clears on reset *)
  let trip_memory = B.memory b ~name:"TripState" overheat in
  let latched = B.or_ b ~name:"TripLatch" overheat (B.and_ b trip_memory (B.not_ b reset)) in
  let safe_heater = B.switch b ~name:"Cutout" (B.const_f b 0.) latched heater in
  B.outport b "Heater" safe_heater;
  B.outport b "Tripped" (B.convert b Dtype.Int32 latched);
  B.finish b

let () =
  let model = thermostat () in
  Printf.printf "Model: %s (%d blocks)\n" model.Graph.model_name (Graph.block_count model);

  (* 1. Fuzzing Code Generation: schedule, instrument, synthesize. *)
  let gen = Cftcg.Pipeline.generate model in
  Printf.printf "Instrumented program: %d branch cells, %d decisions\n"
    gen.Cftcg.Pipeline.program.Cftcg_ir.Ir.n_probes
    (Array.length gen.Cftcg.Pipeline.program.Cftcg_ir.Ir.decisions);
  Printf.printf "\n--- generated fuzz driver (C) ---\n%s\n" gen.Cftcg.Pipeline.fuzz_driver_c;

  (* 2. Model-oriented fuzzing loop. Runs on the bytecode VM backend
     (the default); [Fuzzer.Closures] selects the closure-compiler
     fallback and produces a byte-identical campaign for the same
     seed. *)
  let campaign =
    Cftcg.Pipeline.run_campaign
      ~config:{ Fuzzer.default_config with Fuzzer.seed = 42L; backend = Fuzzer.Vm }
      model (Fuzzer.Exec_budget 20_000)
  in
  let stats = campaign.Cftcg.Pipeline.fuzz.Fuzzer.stats in
  Printf.printf "Campaign: %d inputs, %d model iterations, %d test cases\n"
    stats.Fuzzer.executions stats.Fuzzer.iterations
    (List.length campaign.Cftcg.Pipeline.fuzz.Fuzzer.test_suite);
  Format.printf "Coverage: %a@." Recorder.pp_report campaign.Cftcg.Pipeline.coverage;

  (* 3. Inspect one generated test case as CSV. *)
  match campaign.Cftcg.Pipeline.fuzz.Fuzzer.test_suite with
  | [] -> print_endline "no test cases generated"
  | tc :: _ ->
    Printf.printf "\n--- first test case (CSV) ---\n%s"
      (Cftcg_testcase.Testcase.to_csv gen.Cftcg.Pipeline.layout tc.Fuzzer.tc_data)
