(* The paper's running example: fuzz the SolarPV benchmark model,
   watch the Iteration Difference Coverage metric at work, and
   compare against the Fuzz-Only baseline at the same budget.

     dune exec examples/solar_pv_fuzzing.exe -- [seconds] *)

module Models = Cftcg_bench_models.Bench_models
module Fuzzer = Cftcg_fuzz.Fuzzer
module Recorder = Cftcg_coverage.Recorder
module Tools = Cftcg_baselines.Tools

let () =
  let budget = if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 1.0 in
  let entry = Option.get (Models.find "SolarPV") in
  let model = Lazy.force entry.Models.model in
  Printf.printf "SolarPV: %s\n" entry.Models.functionality;

  (* CFTCG campaign with live test-case logging *)
  let gen = Cftcg.Pipeline.generate model in
  Printf.printf "Fuzz driver consumes %d bytes per model iteration:\n"
    gen.Cftcg.Pipeline.layout.Cftcg_fuzz.Layout.tuple_len;
  Array.iter
    (fun (f : Cftcg_fuzz.Layout.field) ->
      Printf.printf "  offset %d: %-10s %s\n" f.Cftcg_fuzz.Layout.f_offset
        (Cftcg_model.Dtype.name f.Cftcg_fuzz.Layout.f_ty)
        f.Cftcg_fuzz.Layout.f_name)
    gen.Cftcg.Pipeline.layout.Cftcg_fuzz.Layout.fields;
  print_endline "\nCFTCG campaign:";
  let on_test_case (tc : Fuzzer.test_case) =
    if tc.Fuzzer.tc_new_probes > 2 then
      Printf.printf "  t=%6.3fs: new test case lights %d new branch cells (metric %d)\n"
        tc.Fuzzer.tc_time tc.Fuzzer.tc_new_probes
        (Fuzzer.replay_metric gen.Cftcg.Pipeline.program tc.Fuzzer.tc_data)
  in
  let result =
    Fuzzer.run
      ~config:{ Fuzzer.default_config with Fuzzer.seed = 7L }
      ~on_test_case gen.Cftcg.Pipeline.program (Fuzzer.Time_budget budget)
  in
  let stats = result.Fuzzer.stats in
  Printf.printf "  %d executions, %d iterations (%.0f iterations/s)\n" stats.Fuzzer.executions
    stats.Fuzzer.iterations
    (float_of_int stats.Fuzzer.iterations /. Float.max stats.Fuzzer.elapsed 1e-9);
  let suite = List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) result.Fuzzer.test_suite in
  let report = Cftcg.Evaluate.replay gen.Cftcg.Pipeline.program suite in
  Format.printf "  CFTCG    %a@." Recorder.pp_report report;

  (* Fuzz-Only baseline at the same budget *)
  let outcome, fo_report = Cftcg.Pipeline.score_tool Tools.fuzz_only model ~seed:7L ~time_budget:budget in
  Format.printf "  FuzzOnly %a  (%d executions)@." Recorder.pp_report fo_report
    outcome.Tools.executions;

  (* Export the suite as Simulink-style CSV files *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "cftcg_solarpv_suite" in
  let paths =
    Cftcg_testcase.Testcase.save_suite gen.Cftcg.Pipeline.layout ~dir ~prefix:"solarpv" suite
  in
  Printf.printf "\nSaved %d CSV test cases under %s\n" (List.length paths) dir
