(* Deep-state exploration: fuzz the TCP handshake model, track the
   deepest connection state any test case reaches, and replay the
   best test case step by step as a protocol trace.

   Reaching ESTABLISHED requires an exact 32-bit acknowledgement
   match — the cross-inport constraint the paper's Discussion section
   names as the hard case for fuzzing. Give it a longer budget to see
   the full handshake, e.g.:

     dune exec examples/tcp_protocol.exe -- 20 *)

open Cftcg_model
module Models = Cftcg_bench_models.Bench_models
module Fuzzer = Cftcg_fuzz.Fuzzer
module Layout = Cftcg_fuzz.Layout
module Ir_compile = Cftcg_ir.Ir_compile

let state_names =
  [| "CLOSED"; "LISTEN"; "SYN_SENT"; "SYN_RCVD"; "ESTABLISHED"; "FIN_WAIT_1"; "CLOSE_WAIT";
     "FIN_WAIT_2"; "TIME_WAIT"; "CLOSING"; "LAST_ACK" |]

let () =
  let entry = Option.get (Models.find "TCP") in
  let model = Lazy.force entry.Models.model in
  let gen = Cftcg.Pipeline.generate model in
  let prog = gen.Cftcg.Pipeline.program in
  let layout = gen.Cftcg.Pipeline.layout in

  let budget = if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 3.0 in
  (* protocol depth: how far from CLOSED each state is *)
  let depth_of_state = [| 0; 1; 1; 2; 4; 5; 5; 6; 7; 6; 7 |] in
  let compiled = Ir_compile.compile prog in
  let deepest_state data =
    Ir_compile.reset compiled;
    let n = min (Layout.n_tuples layout data) 256 in
    let best = ref 0 in
    for tuple = 0 to n - 1 do
      Layout.load_tuple layout data ~tuple compiled;
      Ir_compile.step compiled;
      let s = Value.to_int (Ir_compile.get_output compiled 0) in
      if s >= 0 && s < Array.length depth_of_state && depth_of_state.(s) > depth_of_state.(!best)
      then best := s
    done;
    !best
  in
  let winner = ref None in
  let on_test_case (tc : Fuzzer.test_case) =
    let s = deepest_state tc.Fuzzer.tc_data in
    match !winner with
    | Some (_, best_s) when depth_of_state.(best_s) >= depth_of_state.(s) -> ()
    | _ -> winner := Some (tc, s)
  in
  let result =
    Fuzzer.run
      ~config:{ Fuzzer.default_config with Fuzzer.seed = 3L }
      ~on_test_case prog (Fuzzer.Time_budget budget)
  in
  Printf.printf "Fuzzed %d inputs (%d test cases emitted)\n"
    result.Fuzzer.stats.Fuzzer.executions
    (List.length result.Fuzzer.test_suite);
  match !winner with
  | None -> print_endline "no test cases emitted"
  | Some (tc, deepest) ->
    Printf.printf "Deepest state reached: %s (found at t=%.3fs); replaying:\n\n"
      state_names.(deepest) tc.Fuzzer.tc_time;
    if deepest < 4 then
      print_endline
        "(ESTABLISHED needs an exact ack match — the paper's cross-inport constraint; try a longer budget)";
    Printf.printf "%4s  %-28s %-12s %s\n" "step" "segment (flags seq ack cmd)" "state" "tx";
    Ir_compile.reset compiled;
    let n = min (Layout.n_tuples layout tc.Fuzzer.tc_data) 40 in
    for tuple = 0 to n - 1 do
      let vals = Layout.load_tuple_values layout tc.Fuzzer.tc_data ~tuple in
      Layout.load_tuple layout tc.Fuzzer.tc_data ~tuple compiled;
      Ir_compile.step compiled;
      let state = Value.to_int (Ir_compile.get_output compiled 0) in
      let txf = Value.to_int (Ir_compile.get_output compiled 1) in
      let flag_names v =
        let names = [ (1, "SYN"); (2, "ACK"); (4, "FIN"); (8, "RST") ] in
        let set = List.filter_map (fun (bit, n) -> if v land bit <> 0 then Some n else None) names in
        if set = [] then "-" else String.concat "|" set
      in
      Printf.printf "%4d  %-28s %-12s %s\n" tuple
        (Printf.sprintf "%s seq=%d ack=%d cmd=%d"
           (flag_names (Value.to_int vals.(0)))
           (Value.to_int vals.(1)) (Value.to_int vals.(2)) (Value.to_int vals.(3)))
        (let s = state in
         if s >= 0 && s < Array.length state_names then state_names.(s) else string_of_int s)
        (flag_names txf)
    done
