(* Safety verification by fuzzing: Assertion blocks (Simulink's Model
   Verification blocks) turn the fuzzer into a bug finder — a first
   violation of each assertion is reported with the offending input.

     dune exec examples/safety_verification.exe *)

open Cftcg_model
module B = Build
module Fuzzer = Cftcg_fuzz.Fuzzer
module Layout = Cftcg_fuzz.Layout
module Testcase = Cftcg_testcase.Testcase

(* A battery pre-charge controller with a subtle defect: the
   pre-charge bypass engages on a voltage threshold, but the designer
   compared against the *requested* current instead of the measured
   one, so a high request during low measured flow closes the
   contactor early — violating the inrush-current safety bound. *)
let precharge_controller () =
  let b = B.create "Precharge" in
  let v_bus = B.inport b "BusVoltage" Dtype.UInt16 in
  (* volts x10 *)
  let i_req = B.inport b "RequestedAmps" Dtype.Int16 in
  let i_meas = B.inport b "MeasuredAmps" Dtype.Int16 in
  let v = B.gain b 0.1 (B.convert b Dtype.Float64 v_bus) in
  let charged = B.compare_const b ~name:"VoltageOk" Graph.R_ge 350.0 v in
  (* DEFECT: should gate on measured inrush, uses the request *)
  let low_flow = B.compare_const b ~name:"LowFlow" Graph.R_lt 20.0 (B.convert b Dtype.Float64 i_req) in
  let close_main = B.and_ b ~name:"CloseMain" charged low_flow in
  (* plant: closing the main contactor passes the measured current *)
  let inrush =
    B.switch b ~name:"Inrush" (B.convert b Dtype.Float64 i_meas) close_main (B.const_f b 0.)
  in
  (* safety invariant: current through the main contactor stays
     under 80 A *)
  let safe = B.compare_const b ~name:"InrushBound" Graph.R_lt 80.0 (B.abs_ b inrush) in
  B.assertion b ~name:"InrushSafety" "main contactor closed above 80A inrush" safe;
  B.outport b "MainClosed" (B.convert b Dtype.Int32 close_main);
  B.outport b "Inrush" inrush;
  B.finish b

let () =
  let model = precharge_controller () in
  let gen = Cftcg.Pipeline.generate model in
  Printf.printf "Fuzzing %s with %d assertion(s) armed...\n" model.Graph.model_name
    (Array.length gen.Cftcg.Pipeline.program.Cftcg_ir.Ir.assertions);
  let result =
    Fuzzer.run
      ~config:{ Fuzzer.default_config with Fuzzer.seed = 13L }
      gen.Cftcg.Pipeline.program (Fuzzer.Exec_budget 200_000)
  in
  Printf.printf "%d executions, %d test cases, %d violation(s)\n"
    result.Fuzzer.stats.Fuzzer.executions
    (List.length result.Fuzzer.test_suite)
    (List.length result.Fuzzer.failures);
  List.iter
    (fun (f : Fuzzer.failure) ->
      Printf.printf "\nVIOLATION after %.3fs: %s\n" f.Fuzzer.f_time f.Fuzzer.f_message;
      print_string "reproducer:\n";
      print_string (Testcase.to_csv gen.Cftcg.Pipeline.layout f.Fuzzer.f_data))
    result.Fuzzer.failures;
  if result.Fuzzer.failures = [] then
    print_endline "no violations found — try a larger budget"
