(* The paper's Figure 6, live: run one input through a model and show
   the per-iteration branch coverage, the running total, and how the
   Iteration Difference Coverage metric accumulates.

     dune exec examples/iteration_metric.exe *)

open Cftcg_model
module B = Build
module Codegen = Cftcg_codegen.Codegen
module Layout = Cftcg_fuzz.Layout
module Ir_compile = Cftcg_ir.Ir_compile
module Hooks = Cftcg_ir.Hooks

(* A small controller with a few distinct branch cells: a saturation
   (3 regions) and a comparator (2 outcomes + condition polarity). *)
let demo_model () =
  let b = B.create "MetricDemo" in
  let u = B.inport b "u" Dtype.Int8 in
  let sat = B.saturation b ~lower:(-10.) ~upper:10. (B.convert b Dtype.Float64 u) in
  let hot = B.compare_const b Graph.R_gt 5.0 sat in
  B.outport b "sat" sat;
  B.outport b "hot" hot;
  B.finish b

let () =
  let model = demo_model () in
  let prog = Codegen.lower model in
  let layout = Layout.of_program prog in
  let n = prog.Cftcg_ir.Ir.n_probes in
  let curr = Bytes.make n '\000' in
  let hooks = Hooks.probes_only (fun id -> Bytes.set curr id '\001') in
  let compiled = Ir_compile.compile ~hooks prog in
  (* the input data: one byte per iteration, swinging across regions *)
  let stream = [ 3; 20; -128; 7; 7; 0 ] in
  let data = Bytes.create (List.length stream) in
  List.iteri (fun i v -> Cftcg_util.Bytecodec.set_u8 data i (v land 0xFF)) stream;
  Printf.printf "Model has %d branch cells; input stream: %s\n\n" n
    (String.concat " " (List.map string_of_int stream));
  Printf.printf "%-6s %-12s %-*s %-*s %s\n" "iter" "input" n "current" n "total" "metric";
  let total = Bytes.make n '\000' in
  let last = Bytes.make n '\000' in
  let metric = ref 0 in
  Ir_compile.reset compiled;
  List.iteri
    (fun tuple v ->
      Bytes.fill curr 0 n '\000';
      Layout.load_tuple layout data ~tuple compiled;
      Ir_compile.step compiled;
      for i = 0 to n - 1 do
        if Bytes.get curr i <> '\000' then Bytes.set total i '\001';
        if Bytes.get curr i <> Bytes.get last i then incr metric
      done;
      let show b =
        String.init n (fun i -> if Bytes.get b i <> '\000' then 'x' else '.')
      in
      Printf.printf "%-6d %-12d %s %s %d\n" tuple v (show curr) (show total) !metric;
      Bytes.blit curr 0 last 0 n)
    stream;
  Printf.printf
    "\nIteration Difference Coverage metric: %d (Algorithm 1; Fig. 6's example totals 3+4+3)\n"
    !metric;
  Printf.printf "An input that keeps switching regions scores higher than one that settles —\n";
  Printf.printf "the fuzzer keeps such inputs in its corpus to diversify execution paths.\n"
