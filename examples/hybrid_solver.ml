(* The paper's future-work pipeline (§5): cross-inport constraints
   defeat pure fuzzing, so hand the leftover coverage objectives to a
   constraint solver. This example builds a protocol-style model
   whose unlock path needs an exact 32-bit key relation, then shows
   fuzzing alone vs the CFTCG+Solver hybrid.

     dune exec examples/hybrid_solver.exe *)

open Cftcg_model
module B = Build
module Fuzzer = Cftcg_fuzz.Fuzzer
module Hybrid = Cftcg_baselines.Hybrid
module Recorder = Cftcg_coverage.Recorder

(* An unlock sequence: the response must equal challenge + 0x2F1A6B3C
   (a classic rolling-code check), otherwise a lockout counter
   escalates. *)
let rolling_code_model () =
  let b = B.create "RollingCode" in
  let challenge = B.inport b "Challenge" Dtype.Int32 in
  let response = B.inport b "Response" Dtype.Int32 in
  let expected = B.bias b (float_of_int 0x2F1A6B3C) (B.convert b Dtype.Float64 challenge) in
  let ok = B.relational b ~name:"KeyCheck" Graph.R_eq (B.convert b Dtype.Float64 response) expected in
  let attempts = B.counter b ~name:"Lockout" 5 (B.not_ b ok) in
  let locked = B.compare_const b ~name:"Locked" Graph.R_ge 5.0 attempts in
  let state =
    B.multiport_switch b ~name:"DoorState"
      (B.sum b
         [ B.const_f b 1.; B.convert b Dtype.Float64 ok;
           B.gain b 2. (B.convert b Dtype.Float64 locked) ])
      [ B.const_i b Dtype.Int32 0 (* waiting *); B.const_i b Dtype.Int32 1 (* unlocked *);
        B.const_i b Dtype.Int32 2 (* locked out *); B.const_i b Dtype.Int32 2 ]
  in
  B.outport b "DoorState" state;
  B.finish b

let score prog suite =
  let r = Cftcg.Evaluate.replay prog suite in
  r.Recorder.decision_pct

let () =
  let model = rolling_code_model () in
  let prog = Cftcg_codegen.Codegen.lower model in
  Printf.printf "Model: %s (unlock requires Response = Challenge + 0x2F1A6B3C)\n\n"
    model.Graph.model_name;
  (* pure fuzzing *)
  let fuzz =
    Fuzzer.run ~config:{ Fuzzer.default_config with Fuzzer.seed = 17L } prog
      (Fuzzer.Time_budget 1.5)
  in
  let fuzz_cov =
    score prog (List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) fuzz.Fuzzer.test_suite)
  in
  Printf.printf "CFTCG alone     (%7d execs): %5.1f%% decision coverage\n"
    fuzz.Fuzzer.stats.Fuzzer.executions fuzz_cov;
  (* hybrid: fuzz, then solve the leftovers *)
  let hybrid =
    Hybrid.run ~config:{ Hybrid.seed = 17L; fuzz_fraction = 0.4 } prog ~time_budget:3.0
  in
  let hybrid_cov =
    score prog (List.map (fun (tc : Hybrid.test_case) -> tc.Hybrid.data) hybrid.Hybrid.suite)
  in
  Printf.printf "CFTCG + Solver  (%7d execs): %5.1f%% decision coverage\n"
    (hybrid.Hybrid.fuzz_executions + hybrid.Hybrid.solver_executions)
    hybrid_cov;
  Printf.printf "  solver phase closed %d of %d leftover probe cells\n" hybrid.Hybrid.solver_solved
    hybrid.Hybrid.solver_targets;
  if hybrid_cov > fuzz_cov then
    print_endline "\nThe solver phase found the exact key relation fuzzing could not."
