(* Stress the fuzzing-as-a-service scheduler: dozens of campaigns from
   several tenants multiplexed over one shared worker pool, with the
   fault-injection harness armed so worker crashes and store-write
   failures fire throughout — every campaign must still land in a
   terminal state and the shared sharded corpus must pass fsck.

     dune exec examples/serve_stress.exe -- [campaigns] [pool_size] *)

module Models = Cftcg_bench_models.Bench_models
module Codegen = Cftcg_codegen.Codegen
module Campaign = Cftcg_campaign.Campaign
module Store = Cftcg_campaign.Corpus_store
module Worker_pool = Cftcg_campaign.Worker_pool
module Fault = Cftcg_util.Fault
module Job = Cftcg_serve.Job
module Scheduler = Cftcg_serve.Scheduler
module Tt = Cftcg_util.Texttable

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 24 in
  let pool_size =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
    else Worker_pool.default_capacity ()
  in
  let entry = Option.get (Models.find "SolarPV") in
  let prog = Codegen.lower ~mode:Codegen.Full (Lazy.force entry.Models.model) in
  let corpus_dir = Filename.concat (Filename.get_temp_dir_name ()) "cftcg_serve_stress_corpus" in
  rm_rf corpus_dir;

  (* chaos: every ~25th worker epoch raises, ~2% of store writes fail
     (the store retries those with backoff) *)
  Fault.arm ~seed:1337L [ (Fault.Worker_raise, Fault.Rate 0.04); (Fault.Store_write, Fault.Rate 0.02) ];

  let pool = Worker_pool.create pool_size in
  let sched = Scheduler.create ~quantum:500 ~pool () in
  let tenants = [| ("gold", 3); ("silver", 2); ("bronze", 1) |] in
  Printf.printf "submitting %d campaigns from %d tenants over a %d-worker pool\n%!" n
    (Array.length tenants) pool_size;
  let t0 = Unix.gettimeofday () in
  let ids =
    List.init n (fun i ->
        let tenant, weight = tenants.(i mod Array.length tenants) in
        let config =
          { Campaign.default_config with
            Campaign.jobs = 2;
            seed = Int64.of_int (100 + i);
            total_execs = 2_000;
            execs_per_epoch = 250;
            corpus_dir = Some corpus_dir
          }
        in
        let sub =
          { Scheduler.sb_model = "SolarPV"; sb_tenant = tenant; sb_weight = weight;
            sb_tenant_budget = None; sb_config = config }
        in
        match Scheduler.submit sched sub prog with
        | Ok id -> id
        | Error msg -> failwith msg)
  in

  (* wait for every campaign to reach a terminal state *)
  let rec drain remaining =
    let live =
      List.filter
        (fun id ->
          match Scheduler.find sched id with
          | Some job -> not (Job.terminal job.Job.jb_status)
          | None -> false)
        remaining
    in
    if live <> [] then begin
      Thread.delay 0.1;
      drain live
    end
  in
  drain ids;
  let elapsed = Unix.gettimeofday () -. t0 in
  Fault.disarm ();

  let t = Tt.create [ "Tenant"; "Campaigns"; "Done"; "Failed"; "Executions"; "Crashes" ] in
  Array.iter
    (fun (tenant, _) ->
      let jobs = List.filter (fun j -> j.Job.jb_tenant = tenant) (Scheduler.jobs sched) in
      let count p = List.length (List.filter p jobs) in
      let execs = List.fold_left (fun acc j -> acc + j.Job.jb_spent) 0 jobs in
      let crashes =
        List.fold_left
          (fun acc j ->
            acc
            + match j.Job.jb_progress with Some p -> p.Campaign.pg_worker_crashes | None -> 0)
          0 jobs
      in
      Tt.add_row t
        [ tenant; string_of_int (List.length jobs);
          string_of_int (count (fun j -> match j.Job.jb_status with Job.Done _ -> true | _ -> false));
          string_of_int (count (fun j -> match j.Job.jb_status with Job.Failed _ -> true | _ -> false));
          string_of_int execs; string_of_int crashes ])
    tenants;
  print_string (Tt.render t);
  Printf.printf "\n%d campaigns terminal in %.1fs under armed worker_raise/store_write faults\n" n
    elapsed;
  Scheduler.shutdown sched;

  (* the shared store must be consistent after all that *)
  let report = Store.fsck corpus_dir in
  Printf.printf "shared corpus fsck: %d entries across %d shards, %d quarantined, %d orphans\n"
    report.Store.fsck_entries report.Store.fsck_shards
    (List.length report.Store.fsck_quarantined)
    report.Store.fsck_orphans;
  if report.Store.fsck_quarantined <> [] || report.Store.fsck_orphans <> 0 then begin
    prerr_endline "FSCK FOUND DAMAGE";
    exit 1
  end;
  rm_rf corpus_dir
