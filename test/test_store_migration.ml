(* Flat-layout (v1) -> sharded (v2) corpus-store migration coverage:
   hand-built legacy directories must open transparently with every
   entry and metric preserved, campaigns must resume across the
   layout change, fsck must stay clean on both sides, and the shard
   layout must hold up under concurrent writers. *)

module Codegen = Cftcg_codegen.Codegen
module Campaign = Cftcg_campaign.Campaign
module Store = Cftcg_campaign.Corpus_store
module Bytecodec = Cftcg_util.Bytecodec
module Models = Cftcg_bench_models.Bench_models

let solar_pv () =
  let e = Option.get (Models.find "SolarPV") in
  Codegen.lower ~mode:Codegen.Full (Lazy.force e.Models.model)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  rm_rf dir;
  dir

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      Unix.mkdir d 0o755
    end
  in
  go dir

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* Build a v1 flat-layout corpus by hand: DIR/entries/<fp>.tc payload
   files plus a global manifest carrying the accounting and one
   [entry <fp> <metric>] line per entry — exactly what pre-shard
   versions of the store wrote. *)
let write_legacy_store dir ~manifest ~entries =
  mkdir_p (Filename.concat dir "entries");
  List.iter
    (fun (fp, _metric, payload) ->
      write_file (Filename.concat (Filename.concat dir "entries") (fp ^ ".tc")) (Bytes.to_string payload))
    entries;
  let buf = Buffer.create 256 in
  Buffer.add_string buf "cftcg-corpus 1\n";
  Printf.bprintf buf "seed %Ld\n" manifest.Store.m_seed;
  Printf.bprintf buf "jobs %d\n" manifest.Store.m_jobs;
  Printf.bprintf buf "epoch %d\n" manifest.Store.m_epoch;
  Printf.bprintf buf "executions %d\n" manifest.Store.m_executions;
  Printf.bprintf buf "probes_total %d\n" manifest.Store.m_probes_total;
  Printf.bprintf buf "coverage %s\n" (Bytecodec.hex_of_bytes manifest.Store.m_coverage);
  List.iter (fun (fp, metric, _) -> Printf.bprintf buf "entry %s %d\n" fp metric) entries;
  write_file (Filename.concat dir "manifest") (Buffer.contents buf)

let check_counts_zero label (r : Store.fsck_report) =
  Alcotest.(check (list string)) (label ^ ": nothing quarantined") [] r.Store.fsck_quarantined;
  Alcotest.(check int) (label ^ ": no orphans") 0 r.Store.fsck_orphans;
  let c = r.Store.fsck_counts in
  List.iter
    (fun (what, n) -> Alcotest.(check int) (label ^ ": " ^ what) 0 n)
    [
      ("tmp files", c.Store.fc_tmp_files);
      ("bad names", c.Store.fc_bad_names);
      ("empty entries", c.Store.fc_empty_entries);
      ("unreadable", c.Store.fc_unreadable);
      ("corrupt manifests", c.Store.fc_corrupt_manifests);
      ("corrupt shard manifests", c.Store.fc_corrupt_shard_manifests);
    ]

let sample_entries =
  [
    ("00ff12", 3, Bytes.of_string "alpha");
    ("8a9b0c1d2e3f4455", 10, Bytes.of_string "bravo");
    ("8fffffffffffffff", 1, Bytes.of_string "charlie");
    ("f0e1d2c3b4a59687", 7, Bytes.of_string "delta\x00\x01\x02");
  ]

let sample_manifest =
  {
    Store.m_seed = 42L;
    m_jobs = 2;
    m_epoch = 5;
    m_executions = 12_345;
    m_probes_total = 16;
    m_coverage = Bytes.init 16 (fun i -> if i mod 2 = 0 then '\001' else '\000');
  }

let test_migrate_flat_layout () =
  let dir = fresh_dir "cftcg_migrate_basic" in
  write_legacy_store dir ~manifest:sample_manifest ~entries:sample_entries;
  (* the legacy layout is already fsck-clean *)
  check_counts_zero "before" (Store.fsck dir);
  let messages = ref [] in
  let t = Store.open_ ~on_salvage:(fun m -> messages := m :: !messages) dir in
  Alcotest.(check bool) "migration reported" true
    (List.exists (fun m -> contains m "migrated 4 legacy flat-layout entries") !messages);
  Alcotest.(check int) "all entries survive" (List.length sample_entries) (Store.size t);
  List.iter
    (fun (fp, metric, payload) ->
      Alcotest.(check bool) (fp ^ " present") true (Store.mem t fp);
      Alcotest.(check (option int)) (fp ^ " metric preserved") (Some metric) (Store.metric t fp);
      (* the payload moved into its shard, byte for byte *)
      let shard = Filename.concat (Filename.concat dir "shards") (String.make 1 fp.[0]) in
      let moved = Filename.concat shard (fp ^ ".tc") in
      Alcotest.(check bool) (fp ^ " sharded") true (Sys.file_exists moved);
      let ic = open_in_bin moved in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) (fp ^ " payload") (Bytes.to_string payload) data;
      Alcotest.(check bool) (fp ^ " left the flat layout") false
        (Sys.file_exists (Filename.concat (Filename.concat dir "entries") (fp ^ ".tc"))))
    sample_entries;
  (* accounting from the v1 manifest is intact *)
  (match Store.load_manifest t with
  | None -> Alcotest.fail "manifest lost"
  | Some m ->
    Alcotest.(check int64) "seed" sample_manifest.Store.m_seed m.Store.m_seed;
    Alcotest.(check int) "epoch" sample_manifest.Store.m_epoch m.Store.m_epoch;
    Alcotest.(check int) "executions" sample_manifest.Store.m_executions m.Store.m_executions;
    Alcotest.(check bytes) "coverage" sample_manifest.Store.m_coverage m.Store.m_coverage);
  (* persist the v2 layout and make sure a reopen is quiet and equal *)
  Store.save_manifest t sample_manifest;
  check_counts_zero "after save" (Store.fsck dir);
  let reopened = Store.open_ dir in
  Alcotest.(check (list string)) "reopen is quiet" [] (Store.salvaged reopened);
  Alcotest.(check (list string)) "fingerprints stable" (Store.fingerprints t)
    (Store.fingerprints reopened);
  List.iter
    (fun (fp, metric, _) ->
      Alcotest.(check (option int)) (fp ^ " metric after reopen") (Some metric)
        (Store.metric reopened fp))
    sample_entries;
  rm_rf dir

let test_migrate_duplicate_quarantined () =
  (* a legacy entry whose fingerprint already exists sharded must be
     quarantined, not silently clobbered *)
  let dir = fresh_dir "cftcg_migrate_dup" in
  let t = Store.open_ dir in
  ignore (Store.add t ~fingerprint:"aa11" ~metric:9 (Bytes.of_string "sharded"));
  Store.save_manifest t
    { Store.m_seed = 1L; m_jobs = 1; m_epoch = 1; m_executions = 1; m_probes_total = 1;
      m_coverage = Bytes.empty };
  (* now plant a stale flat-layout copy of the same fingerprint *)
  mkdir_p (Filename.concat dir "entries");
  write_file (Filename.concat (Filename.concat dir "entries") "aa11.tc") "stale";
  let messages = ref [] in
  let t2 = Store.open_ ~on_salvage:(fun m -> messages := m :: !messages) dir in
  Alcotest.(check bool) "duplicate reported" true
    (List.exists (fun m -> contains m "legacy duplicate") !messages);
  Alcotest.(check (option int)) "sharded copy wins" (Some 9) (Store.metric t2 "aa11");
  let shard = Filename.concat (Filename.concat dir "shards") "a" in
  let ic = open_in_bin (Filename.concat shard "aa11.tc") in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "sharded payload untouched" "sharded" data;
  rm_rf dir

let test_campaign_resume_across_layouts () =
  (* run half a campaign into a sharded store, rebuild the same state
     as a v1 flat layout by hand, and resume from both: the layout
     must be invisible to the campaign *)
  let prog = solar_pv () in
  let v2_dir = fresh_dir "cftcg_migrate_resume_v2" in
  let config =
    { Campaign.default_config with
      Campaign.jobs = 2;
      seed = 11L;
      total_execs = 400;
      execs_per_epoch = 100;
      stop_on_full = false;
      corpus_dir = Some v2_dir
    }
  in
  let (_ : Campaign.result) = Campaign.run ~config prog in
  (* downgrade: read the v2 store and write its exact contents as v1 *)
  let t = Store.open_ v2_dir in
  let manifest = Option.get (Store.load_manifest t) in
  let entries =
    List.map
      (fun (fp, payload) -> (fp, Option.get (Store.metric t fp), payload))
      (List.combine (Store.fingerprints t) (Store.entries t))
  in
  let v1_dir = fresh_dir "cftcg_migrate_resume_v1" in
  write_legacy_store v1_dir ~manifest ~entries;
  (* resume both with a doubled budget; results must be identical *)
  let resume dir =
    let config =
      { config with Campaign.corpus_dir = Some dir; resume = true; total_execs = 800 }
    in
    Campaign.run ~config prog
  in
  let from_v2 = resume v2_dir in
  let from_v1 = resume v1_dir in
  Alcotest.(check bool) "resumed" true (from_v1.Campaign.resumed && from_v2.Campaign.resumed);
  Alcotest.(check int) "coverage equal" from_v2.Campaign.probes_covered
    from_v1.Campaign.probes_covered;
  Alcotest.(check int) "executions equal" from_v2.Campaign.executions
    from_v1.Campaign.executions;
  Alcotest.(check (list bytes)) "suites identical" from_v2.Campaign.suite from_v1.Campaign.suite;
  check_counts_zero "v1 after resume" (Store.fsck v1_dir);
  check_counts_zero "v2 after resume" (Store.fsck v2_dir);
  rm_rf v1_dir;
  rm_rf v2_dir

let test_migration_qcheck =
  let open QCheck in
  (* random legacy entry sets: distinct hex fingerprints, non-empty
     payloads, arbitrary metrics *)
  let entry_gen =
    Gen.map2
      (fun fp_seed (metric, payload) ->
        (Bytecodec.hex_of_int64 fp_seed, abs metric, Bytes.of_string (payload ^ "!")))
      Gen.int64
      (Gen.pair Gen.int Gen.string_printable)
  in
  let entries_gen =
    Gen.map
      (fun l ->
        (* dedupe by fingerprint: one representative each *)
        let tbl = Hashtbl.create 16 in
        List.filter
          (fun (fp, _, _) ->
            if Hashtbl.mem tbl fp then false
            else begin
              Hashtbl.add tbl fp ();
              true
            end)
          l)
      (Gen.list_size (Gen.int_range 0 40) entry_gen)
  in
  let print_entries l =
    String.concat ";" (List.map (fun (fp, m, _) -> Printf.sprintf "%s=%d" fp m) l)
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~name:"random legacy stores migrate losslessly" ~count:30
       (make ~print:print_entries entries_gen)
       (fun entries ->
         let dir = fresh_dir "cftcg_migrate_prop" in
         write_legacy_store dir ~manifest:sample_manifest ~entries;
         let t = Store.open_ dir in
         let ok_size = Store.size t = List.length entries in
         let ok_entries =
           List.for_all
             (fun (fp, metric, payload) ->
               Store.metric t fp = Some metric
               &&
               let shard = Filename.concat (Filename.concat dir "shards") (String.make 1 fp.[0]) in
               let ic = open_in_bin (Filename.concat shard (fp ^ ".tc")) in
               let data = really_input_string ic (in_channel_length ic) in
               close_in ic;
               data = Bytes.to_string payload)
             entries
         in
         Store.save_manifest t sample_manifest;
         let report = Store.fsck dir in
         let ok_fsck =
           report.Store.fsck_quarantined = []
           && report.Store.fsck_orphans = 0
           && report.Store.fsck_entries = List.length entries
         in
         rm_rf dir;
         ok_size && ok_entries && ok_fsck))

let test_concurrent_writers () =
  (* the acceptance bar for the sharded layout: concurrent writers on
     one handle, no torn state, fsck clean afterwards *)
  let dir = fresh_dir "cftcg_shard_concurrent" in
  let t = Store.open_ dir in
  let writers = 4 and per_writer = 64 in
  let domains =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to per_writer - 1 do
              let fp = Bytecodec.hex_of_int64 (Int64.of_int ((w * 1_000_003) + (i * 97) + 1)) in
              ignore (Store.add t ~fingerprint:fp ~metric:(i + 1) (Bytes.of_string (Printf.sprintf "w%d-%d" w i)))
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "every entry landed" (writers * per_writer) (Store.size t);
  Store.save_manifest t sample_manifest;
  check_counts_zero "after concurrent writes" (Store.fsck dir);
  let reopened = Store.open_ dir in
  Alcotest.(check int) "reopen sees all" (writers * per_writer) (Store.size reopened);
  Alcotest.(check (list string)) "reopen is quiet" [] (Store.salvaged reopened);
  rm_rf dir

let suites =
  [
    ( "store.migration",
      [
        Alcotest.test_case "flat layout migrates" `Quick test_migrate_flat_layout;
        Alcotest.test_case "legacy duplicate quarantined" `Quick test_migrate_duplicate_quarantined;
        Alcotest.test_case "campaign resumes across layouts" `Slow test_campaign_resume_across_layouts;
        test_migration_qcheck;
      ] );
    ( "store.sharded",
      [ Alcotest.test_case "concurrent writers" `Slow test_concurrent_writers ] );
  ]
