(* Tests for the extended coverage families: lookup-table interval
   coverage and signal range coverage. *)

open Cftcg_model
module B = Build
module Codegen = Cftcg_codegen.Codegen
module Recorder = Cftcg_coverage.Recorder
module Layout = Cftcg_fuzz.Layout

let lookup_model () =
  let b = B.create "Lut" in
  let u = B.inport b "u" Dtype.Float64 in
  let y = B.lookup b ~name:"Curve" ~xs:[| 0.; 10.; 20.; 30. |] ~ys:[| 0.; 5.; 7.; 8. |] u in
  B.outport b "y" y;
  B.finish b

let drive c v =
  Cftcg_ir.Ir_compile.set_input c 0 (Value.of_float Dtype.Float64 v);
  Cftcg_ir.Ir_compile.step c

let test_lookup_metadata () =
  let prog = Codegen.lower (lookup_model ()) in
  Alcotest.(check int) "one table" 1 (Array.length prog.Cftcg_ir.Ir.lookup_tables);
  let _, cells = prog.Cftcg_ir.Ir.lookup_tables.(0) in
  (* 4 breakpoints -> 3 segments + 2 clip regions *)
  Alcotest.(check int) "five intervals" 5 (Array.length cells)

let test_lookup_interval_coverage () =
  let prog = Codegen.lower (lookup_model ()) in
  let rec_ = Recorder.create prog in
  let c = Cftcg_ir.Ir_compile.compile ~hooks:(Recorder.hooks rec_) prog in
  Cftcg_ir.Ir_compile.reset c;
  let pct () = (Recorder.report rec_).Recorder.lookup_pct in
  Alcotest.(check (float 0.01)) "empty" 0.0 (pct ());
  drive c 5.0;
  (* segment 1 *)
  Alcotest.(check (float 0.01)) "one of five" 20.0 (pct ());
  drive c 15.0;
  drive c 25.0;
  Alcotest.(check (float 0.01)) "interior done" 60.0 (pct ());
  drive c (-3.0);
  drive c 99.0;
  Alcotest.(check (float 0.01)) "all intervals" 100.0 (pct ());
  match Recorder.lookup_intervals rec_ with
  | [ (name, hit, total) ] ->
    Alcotest.(check string) "name" "Curve" name;
    Alcotest.(check int) "hit" 5 hit;
    Alcotest.(check int) "total" 5 total
  | _ -> Alcotest.fail "expected one table"

let test_lookup_pct_without_tables () =
  let prog = Codegen.lower (Fixtures.logic_model ()) in
  let rec_ = Recorder.create prog in
  Alcotest.(check (float 0.01)) "vacuous 100%" 100.0 (Recorder.report rec_).Recorder.lookup_pct

let test_signal_ranges () =
  let prog = Codegen.lower (Fixtures.feedback_model ()) in
  let layout = Layout.of_program prog in
  let mk v =
    let data = Bytes.create layout.Layout.tuple_len in
    Layout.set_field layout data ~tuple:0 ~field:0 (Value.of_float Dtype.Float64 v);
    data
  in
  (* the integrator saturates at [0, 100]: feed big steps *)
  let suite = [ Bytes.concat Bytes.empty [ mk 60.; mk 60.; mk 60.; mk 60. ] ] in
  let ranges = Cftcg.Evaluate.signal_ranges prog suite in
  match List.find_opt (fun (n, _, _) -> n = "acc") ranges with
  | Some (_, lo, hi) ->
    Alcotest.(check (float 0.01)) "min 0" 0.0 lo;
    Alcotest.(check (float 0.01)) "max saturated" 100.0 hi
  | None -> Alcotest.fail "output 'acc' not reported"

let test_signal_ranges_empty_suite () =
  let prog = Codegen.lower (Fixtures.feedback_model ()) in
  let ranges = Cftcg.Evaluate.signal_ranges prog [] in
  List.iter
    (fun (_, lo, hi) ->
      Alcotest.(check (float 0.0)) "zeroed min" 0.0 lo;
      Alcotest.(check (float 0.0)) "zeroed max" 0.0 hi)
    ranges

let suites =
  [ ( "coverage.lookup",
      [ Alcotest.test_case "metadata" `Quick test_lookup_metadata;
        Alcotest.test_case "interval coverage" `Quick test_lookup_interval_coverage;
        Alcotest.test_case "vacuous without tables" `Quick test_lookup_pct_without_tables ] );
    ( "coverage.signal_range",
      [ Alcotest.test_case "observes bounds" `Quick test_signal_ranges;
        Alcotest.test_case "empty suite" `Quick test_signal_ranges_empty_suite ] ) ]
