(* Tests for tester-specified inport value ranges (paper §5). *)

open Cftcg_model
module B = Build
module Codegen = Cftcg_codegen.Codegen
module Fuzzer = Cftcg_fuzz.Fuzzer
module Layout = Cftcg_fuzz.Layout
module Mutate = Cftcg_fuzz.Mutate
module Recorder = Cftcg_coverage.Recorder
module Rng = Cftcg_util.Rng

(* Opcode dispatch: only values 0..4 select real handlers; a huge
   int32 space otherwise (the paper's "int32 used for 0..32768"
   observation). *)
let opcode_model () =
  let b = B.create "Opcode" in
  let op = B.inport b "Op" Dtype.Int32 in
  let arg = B.inport b "Arg" Dtype.Int32 in
  let clamped = B.saturation b ~lower:1. ~upper:5. (B.bias b 1.0 op) in
  let y =
    B.multiport_switch b clamped
      [ B.gain b 2. arg; B.gain b (-1.) arg; B.bias b 7. arg; B.abs_ b arg;
        B.const_f b 0. ]
  in
  B.outport b "y" y;
  B.finish b

let in_range layout data =
  let ok = ref true in
  for tuple = 0 to Layout.n_tuples layout data - 1 do
    Array.iteri
      (fun field (f : Layout.field) ->
        match f.Layout.f_range with
        | None -> ()
        | Some (lo, hi) ->
          let x = Value.to_float (Layout.field_value layout data ~tuple ~field) in
          if x < lo || x > hi then ok := false)
      layout.Layout.fields
  done;
  !ok

let test_random_tuples_respect_ranges () =
  let layout =
    Layout.with_ranges
      (Layout.of_inports [| ("Op", Dtype.Int32); ("Arg", Dtype.Int32) |])
      [ ("Op", 0., 4.); ("Arg", -100., 100.) ]
  in
  let rng = Rng.create 3L in
  for _ = 1 to 500 do
    Alcotest.(check bool) "tuple in range" true (in_range layout (Layout.random_tuple_bytes layout rng))
  done

let test_field_mutations_respect_ranges () =
  let layout =
    Layout.with_ranges
      (Layout.of_inports [| ("Op", Dtype.Int32); ("Arg", Dtype.Int32) |])
      [ ("Op", 0., 4.) ]
  in
  let rng = Rng.create 4L in
  let data = ref (Layout.random_tuple_bytes layout rng) in
  for _ = 1 to 2000 do
    (* only the value strategies write into fields *)
    let s = if Rng.bool rng then Mutate.Change_binary_integer else Mutate.Change_binary_float in
    data := Mutate.apply layout rng s !data ~other:!data ~max_tuples:16;
    (* check the constrained field only: structural strategies insert
       range-respecting fresh tuples *)
    for tuple = 0 to Layout.n_tuples layout !data - 1 do
      let x = Value.to_float (Layout.field_value layout !data ~tuple ~field:0) in
      Alcotest.(check bool) "Op stays in 0..4" true (x >= 0. && x <= 4.)
    done
  done

let test_with_ranges_validation () =
  let layout = Layout.of_inports [| ("a", Dtype.Int8) |] in
  (match Layout.with_ranges layout [ ("a", 5., 1.) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inverted range accepted");
  (* unknown names are ignored *)
  let l = Layout.with_ranges layout [ ("nope", 0., 1.) ] in
  Alcotest.(check bool) "unknown ignored" true (l.Layout.fields.(0).Layout.f_range = None)

let coverage_with ranges seed execs =
  let prog = Codegen.lower (opcode_model ()) in
  (* dictionary off so the comparison isolates the range constraint *)
  let config = { Fuzzer.default_config with Fuzzer.seed; ranges; use_dictionary = false } in
  let r = Fuzzer.run ~config prog (Fuzzer.Exec_budget execs) in
  let suite = List.map (fun (tc : Fuzzer.test_case) -> tc.Fuzzer.tc_data) r.Fuzzer.test_suite in
  (Cftcg.Evaluate.replay prog suite).Recorder.decision_pct

let test_ranges_speed_up_opcode_coverage () =
  (* averaged over seeds: constraining the opcode makes the tiny
     budget sufficient *)
  let seeds = [ 1L; 2L; 3L; 4L; 5L ] in
  let avg f = List.fold_left (fun a s -> a +. f s) 0. seeds /. 5. in
  let unconstrained = avg (fun s -> coverage_with [] s 60) in
  let constrained = avg (fun s -> coverage_with [ ("Op", 0., 4.) ] s 60) in
  Alcotest.(check bool)
    (Printf.sprintf "constrained (%.0f%%) >= unconstrained (%.0f%%)" constrained unconstrained)
    true
    (constrained >= unconstrained)

let test_ranged_campaign_outputs_in_range () =
  let prog = Codegen.lower (opcode_model ()) in
  let ranges = [ ("Op", 0., 4.); ("Arg", -50., 50.) ] in
  let config = { Fuzzer.default_config with Fuzzer.seed = 8L; ranges } in
  let r = Fuzzer.run ~config prog (Fuzzer.Exec_budget 2000) in
  let layout = Layout.with_ranges (Layout.of_program prog) ranges in
  List.iter
    (fun (tc : Fuzzer.test_case) ->
      Alcotest.(check bool) "test case in range" true (in_range layout tc.Fuzzer.tc_data))
    r.Fuzzer.test_suite

let suites =
  [ ( "fuzz.ranges",
      [ Alcotest.test_case "random tuples" `Quick test_random_tuples_respect_ranges;
        Alcotest.test_case "field mutations" `Quick test_field_mutations_respect_ranges;
        Alcotest.test_case "validation" `Quick test_with_ranges_validation;
        Alcotest.test_case "speeds up opcode coverage" `Slow test_ranges_speed_up_opcode_coverage;
        Alcotest.test_case "campaign outputs in range" `Quick test_ranged_campaign_outputs_in_range
      ] ) ]
