(* Tests for the fuzzing-as-a-service layer: the wire formats, the
   shared worker pool, the deficit round-robin scheduler (determinism
   against solo campaigns, tenant budgets, cancellation), and the HTTP
   daemon end to end over a Unix-domain socket. *)

module Codegen = Cftcg_codegen.Codegen
module Campaign = Cftcg_campaign.Campaign
module Worker_pool = Cftcg_campaign.Worker_pool
module Telemetry = Cftcg_campaign.Telemetry
module Fault = Cftcg_util.Fault
module Models = Cftcg_bench_models.Bench_models
module Wire = Cftcg_serve.Wire
module Job = Cftcg_serve.Job
module Scheduler = Cftcg_serve.Scheduler
module Server = Cftcg_serve.Server
module Log = Cftcg_obs.Log
module Flight = Cftcg_obs.Flight

let solar_pv () =
  let e = Option.get (Models.find "SolarPV") in
  Codegen.lower ~mode:Codegen.Full (Lazy.force e.Models.model)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let fresh_dir name =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  rm_rf dir;
  dir

(* --- Wire: JSON ----------------------------------------------------- *)

let test_json_roundtrip () =
  let samples =
    [
      Wire.Null;
      Wire.Bool true;
      Wire.Num 42.0;
      Wire.Num (-3.5);
      Wire.Str "hello \"world\"\nline\ttab\\slash";
      Wire.Arr [ Wire.Num 1.0; Wire.Str "x"; Wire.Null ];
      Wire.Obj [ ("a", Wire.Num 1.0); ("nested", Wire.Obj [ ("b", Wire.Arr []) ]) ];
      Wire.Obj [];
      Wire.Arr [];
    ]
  in
  List.iter
    (fun j ->
      let s = Wire.to_string j in
      Alcotest.(check bool) (Printf.sprintf "roundtrip %s" s) true (Wire.of_string s = j))
    samples;
  (* ints survive without a decimal point *)
  Alcotest.(check string) "int print" "123" (Wire.to_string (Wire.Num 123.0));
  (* whitespace and \u escapes parse *)
  Alcotest.(check bool) "ws"  true
    (Wire.of_string "  { \"a\" : [ 1 , 2 ] }  " = Wire.Obj [ ("a", Wire.Arr [ Wire.Num 1.0; Wire.Num 2.0 ]) ]);
  Alcotest.(check bool) "unicode escape" true (Wire.of_string "\"\\u0041\"" = Wire.Str "A")

let test_json_errors () =
  let bad = [ ""; "{"; "[1,"; "{\"a\"}"; "nul"; "1 2"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Wire.of_string s with
      | _ -> Alcotest.failf "accepted %S" s
      | exception Wire.Parse_error _ -> ())
    bad;
  (* field accessors name the field *)
  let j = Wire.of_string "{\"n\":\"x\"}" in
  (match Wire.get_int "n" j with
  | _ -> Alcotest.fail "get_int on a string must raise"
  | exception Wire.Parse_error msg ->
    Alcotest.(check bool) "names field" true (String.length msg > 0))

let test_json_qcheck =
  let open QCheck in
  (* integral numbers only: float text round-trips are a known
     non-goal of the compact printer *)
  let leaf =
    Gen.oneof
      [
        Gen.return Wire.Null;
        Gen.map (fun b -> Wire.Bool b) Gen.bool;
        Gen.map (fun n -> Wire.Num (float_of_int n)) Gen.int;
        Gen.map (fun s -> Wire.Str s) Gen.string_printable;
      ]
  in
  let value =
    Gen.sized (fun n ->
        Gen.fix
          (fun self n ->
            if n <= 0 then leaf
            else
              Gen.oneof
                [
                  leaf;
                  Gen.map (fun l -> Wire.Arr l) (Gen.list_size (Gen.int_bound 4) (self (n / 2)));
                  Gen.map
                    (fun kvs -> Wire.Obj kvs)
                    (Gen.list_size (Gen.int_bound 4)
                       (Gen.pair Gen.string_printable (self (n / 2))));
                ])
          (min n 6))
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~name:"json print/parse roundtrip" ~count:200
       (make ~print:(fun j -> Wire.to_string j) value)
       (fun j -> Wire.of_string (Wire.to_string j) = j))

let test_addr_parse () =
  (match Wire.addr_of_string "unix:/tmp/x.sock" with
  | Ok (Wire.Unix_path "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix: prefix");
  (match Wire.addr_of_string "/tmp/y.sock" with
  | Ok (Wire.Unix_path "/tmp/y.sock") -> ()
  | _ -> Alcotest.fail "bare path");
  (match Wire.addr_of_string "tcp:127.0.0.1:8080" with
  | Ok (Wire.Tcp ("127.0.0.1", 8080)) -> ()
  | _ -> Alcotest.fail "tcp host:port");
  (match Wire.addr_of_string "tcp:nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tcp without port must be rejected")

(* --- Worker pool ----------------------------------------------------- *)

let test_pool_basics () =
  let p = Worker_pool.create 3 in
  Alcotest.(check int) "capacity" 3 (Worker_pool.capacity p);
  Alcotest.(check int) "all free" 3 (Worker_pool.free p);
  Worker_pool.acquire p 2;
  Alcotest.(check int) "one left" 1 (Worker_pool.free p);
  Worker_pool.release p 2;
  Alcotest.(check int) "back to full" 3 (Worker_pool.free p);
  (match Worker_pool.create 0 with
  | _ -> Alcotest.fail "capacity 0 must be rejected"
  | exception Invalid_argument _ -> ());
  (match Worker_pool.acquire p 4 with
  | _ -> Alcotest.fail "over-capacity acquire must be rejected"
  | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "default >= 1" true (Worker_pool.default_capacity () >= 1)

let test_pool_blocking () =
  let p = Worker_pool.create 2 in
  Worker_pool.acquire p 2;
  let acquired = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        Worker_pool.acquire p 1;
        Atomic.set acquired true)
      ()
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "blocked while pool is empty" false (Atomic.get acquired);
  Worker_pool.release p 2;
  Thread.join th;
  Alcotest.(check bool) "woke after release" true (Atomic.get acquired);
  Worker_pool.release p 1

let test_pool_with_slots_exception () =
  let p = Worker_pool.create 1 in
  (match Worker_pool.with_slots p 1 (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "must re-raise"
  | exception Failure _ -> ());
  Alcotest.(check int) "slot released on exception" 1 (Worker_pool.free p)

(* --- Scheduler ------------------------------------------------------- *)

let base_config =
  { Campaign.default_config with
    Campaign.jobs = 2;
    total_execs = 800;
    execs_per_epoch = 200;
    (* keep everything on the virtual clock so results are
       byte-comparable between scheduled and solo runs *)
    stop_on_full = false
  }

let submission ?(tenant = "t") ?(weight = 1) ?tenant_budget ?(config = base_config) () =
  { Scheduler.sb_model = "SolarPV"; sb_tenant = tenant; sb_weight = weight;
    sb_tenant_budget = tenant_budget; sb_config = config }

let wait_terminal sched id =
  let deadline = Unix.gettimeofday () +. 60.0 in
  let rec loop () =
    match Scheduler.find sched id with
    | None -> Alcotest.failf "job %s disappeared" id
    | Some job ->
      if Job.terminal job.Job.jb_status then job
      else if Unix.gettimeofday () > deadline then Alcotest.failf "job %s did not finish" id
      else begin
        Thread.delay 0.02;
        loop ()
      end
  in
  loop ()

let test_scheduler_matches_solo () =
  (* the acceptance bar for the daemon: campaigns multiplexed through
     the shared pool produce byte-identical results to solo runs *)
  let prog = solar_pv () in
  let n = 8 in
  let config_for i = { base_config with Campaign.seed = Int64.of_int (i + 1) } in
  let pool = Worker_pool.create 4 in
  let sched = Scheduler.create ~quantum:200 ~pool () in
  let ids =
    List.init n (fun i ->
        match Scheduler.submit sched (submission ~tenant:(Printf.sprintf "t%d" (i mod 3)) ~config:(config_for i) ()) prog with
        | Ok id -> id
        | Error msg -> Alcotest.failf "submit: %s" msg)
  in
  let served =
    List.map
      (fun id ->
        match (wait_terminal sched id).Job.jb_status with
        | Job.Done r -> r
        | s -> Alcotest.failf "job %s ended %s" id (Job.status_name s))
      ids
  in
  Scheduler.shutdown sched;
  List.iteri
    (fun i r ->
      let solo = Campaign.run ~config:(config_for i) prog in
      Alcotest.(check int) (Printf.sprintf "coverage %d" i) solo.Campaign.probes_covered
        r.Campaign.probes_covered;
      Alcotest.(check int) (Printf.sprintf "executions %d" i) solo.Campaign.executions
        r.Campaign.executions;
      Alcotest.(check (list bytes)) (Printf.sprintf "suite %d" i) solo.Campaign.suite
        r.Campaign.suite)
    served

let test_scheduler_tenant_budget () =
  let prog = solar_pv () in
  let pool = Worker_pool.create 2 in
  let sched = Scheduler.create ~quantum:200 ~pool () in
  let config = { base_config with Campaign.total_execs = 100_000 } in
  let budget = 900 in
  let id =
    match Scheduler.submit sched (submission ~tenant:"capped" ~tenant_budget:budget ~config ()) prog with
    | Ok id -> id
    | Error msg -> Alcotest.failf "submit: %s" msg
  in
  let job = wait_terminal sched id in
  Scheduler.shutdown sched;
  (* stops at an epoch boundary once the budget is spent: within one
     epoch's slack (epoch want = execs_per_epoch * jobs, plus the
     seed-corpus replay overrun) of the budget, far below total_execs *)
  let slack = (config.Campaign.execs_per_epoch * config.Campaign.jobs) + 200 in
  Alcotest.(check bool)
    (Printf.sprintf "spent %d within %d + %d" job.Job.jb_spent budget slack)
    true
    (job.Job.jb_spent <= budget + slack);
  Alcotest.(check bool) "far below the campaign budget" true (job.Job.jb_spent < 10_000);
  match job.Job.jb_status with
  | Job.Done _ -> ()
  | s -> Alcotest.failf "expected a partial Done, got %s" (Job.status_name s)

let test_scheduler_cancel () =
  let prog = solar_pv () in
  let pool = Worker_pool.create 2 in
  let sched = Scheduler.create ~quantum:100 ~pool () in
  let config =
    { base_config with Campaign.total_execs = 10_000_000; execs_per_epoch = 100 }
  in
  let id =
    match Scheduler.submit sched (submission ~config ()) prog with
    | Ok id -> id
    | Error msg -> Alcotest.failf "submit: %s" msg
  in
  Thread.delay 0.1;
  (match Scheduler.cancel sched id with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "cancel: %s" msg);
  let job = wait_terminal sched id in
  (match job.Job.jb_status with
  | Job.Cancelled -> ()
  | s -> Alcotest.failf "expected Cancelled, got %s" (Job.status_name s));
  (* a terminal job deletes cleanly and retires its metric series *)
  (match Scheduler.delete sched id with
  | Ok `Deleted -> ()
  | Ok `Cancelling -> Alcotest.fail "job was already terminal"
  | Error `Not_found -> Alcotest.fail "job must still exist");
  Alcotest.(check bool) "gone" true (Scheduler.find sched id = None);
  Scheduler.shutdown sched

let test_scheduler_worker_crash_degrades () =
  let prog = solar_pv () in
  let pool = Worker_pool.create 2 in
  let sched = Scheduler.create ~quantum:200 ~pool () in
  Fault.arm ~seed:7L [ (Fault.Worker_raise, Fault.Nth 1) ];
  let finally () = Fault.disarm () in
  Fun.protect ~finally (fun () ->
      let id =
        match Scheduler.submit sched (submission ()) prog with
        | Ok id -> id
        | Error msg -> Alcotest.failf "submit: %s" msg
      in
      let job = wait_terminal sched id in
      (match job.Job.jb_status with
      | Job.Done _ -> ()
      | s -> Alcotest.failf "crash must degrade, not %s" (Job.status_name s));
      let crashes =
        match job.Job.jb_progress with
        | Some p -> p.Campaign.pg_worker_crashes
        | None -> 0
      in
      Alcotest.(check bool) "crash recorded" true (crashes >= 1);
      let lines, _ = Job.event_lines job in
      Alcotest.(check bool) "worker_crash in the feed" true
        (List.exists (fun l ->
             match Wire.member "type" (Wire.of_string l) with
             | Some (Wire.Str "worker_crash") -> true
             | _ -> false)
           lines);
      Scheduler.shutdown sched)

(* --- HTTP daemon end to end ------------------------------------------ *)

let with_daemon body =
  let sock = Filename.concat (Filename.get_temp_dir_name ()) "cftcg_test_serve.sock" in
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let prog = solar_pv () in
  let resolve = function
    | "solar" -> Ok prog
    | other -> Error (Printf.sprintf "unknown model %S" other)
  in
  let pool = Worker_pool.create 4 in
  let sched = Scheduler.create ~quantum:200 ~pool () in
  let stop = Atomic.make false in
  let addr = Wire.Unix_path sock in
  let server =
    Thread.create (fun () -> Server.serve ~resolve ~sched ~stop:(fun () -> Atomic.get stop) addr) ()
  in
  (* wait for the listener *)
  let rec ready n =
    if n = 0 then Alcotest.fail "daemon did not come up";
    match Wire.http_request addr ~meth:"GET" ~path:"/healthz" () with
    | 200, _ -> ()
    | _ -> ready (n - 1)
    | exception Unix.Unix_error _ ->
      Thread.delay 0.05;
      ready (n - 1)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join server)
    (fun () ->
      ready 100;
      body addr);
  Alcotest.(check bool) "socket removed on shutdown" false (Sys.file_exists sock)

let request addr ~meth ~path ?body () = Wire.http_request addr ~meth ~path ?body ()

let test_http_end_to_end () =
  with_daemon @@ fun addr ->
  (* bad submissions are 400s with a reason *)
  let status, body = request addr ~meth:"POST" ~path:"/campaigns" ~body:"{}" () in
  Alcotest.(check int) "missing model is a 400" 400 status;
  Alcotest.(check bool) "names the field" true (Wire.member "error" (Wire.of_string body) <> None);
  let status, _ = request addr ~meth:"POST" ~path:"/campaigns" ~body:"{\"model\":\"nope\"}" () in
  Alcotest.(check int) "unknown model is a 400" 400 status;
  let status, _ = request addr ~meth:"GET" ~path:"/campaigns/c999" () in
  Alcotest.(check int) "unknown id is a 404" 404 status;
  (* submit and run to completion *)
  let submit_body =
    Wire.to_string
      (Wire.Obj
         [
           ("model", Wire.Str "solar");
           ("seed", Wire.Num 3.0);
           ("jobs", Wire.Num 2.0);
           ("total_execs", Wire.Num 800.0);
           ("execs_per_epoch", Wire.Num 200.0);
         ])
  in
  let status, body = request addr ~meth:"POST" ~path:"/campaigns" ~body:submit_body () in
  Alcotest.(check int) "submission accepted" 201 status;
  let id = Wire.get_string "id" (Wire.of_string body) in
  let deadline = Unix.gettimeofday () +. 60.0 in
  let rec poll () =
    let status, body = request addr ~meth:"GET" ~path:("/campaigns/" ^ id) () in
    Alcotest.(check int) "status readable" 200 status;
    let doc = Wire.of_string body in
    match Wire.get_string "status" doc with
    | "done" -> doc
    | "failed" -> Alcotest.failf "campaign failed: %s" body
    | _ ->
      if Unix.gettimeofday () > deadline then Alcotest.fail "campaign did not finish";
      Thread.delay 0.05;
      poll ()
  in
  let doc = poll () in
  Alcotest.(check bool) "covered something" true (Wire.get_int "probes_covered" doc > 0);
  (* events feed is JSONL with an epoch_end *)
  let status, feed = request addr ~meth:"GET" ~path:("/campaigns/" ^ id ^ "/events") () in
  Alcotest.(check int) "events readable" 200 status;
  let lines = String.split_on_char '\n' feed |> List.filter (fun l -> l <> "") in
  Alcotest.(check bool) "feed not empty" true (lines <> []);
  Alcotest.(check bool) "feed has epoch_end" true
    (List.exists (fun l ->
         match Wire.member "type" (Wire.of_string l) with
         | Some (Wire.Str "epoch_end") -> true
         | _ -> false)
       lines);
  (* live metrics scrape shows the service and per-job series *)
  let status, metrics = request addr ~meth:"GET" ~path:"/metrics" () in
  Alcotest.(check int) "metrics readable" 200 status;
  let has needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "service counters exported" true
    (has "cftcg_serve_campaigns_submitted_total" metrics);
  Alcotest.(check bool) "per-job series exported" true
    (has ("cftcg_serve_job_executions{job=\"" ^ id ^ "\"}") metrics);
  (* listing, then delete the terminal record *)
  let status, listing = request addr ~meth:"GET" ~path:"/campaigns" () in
  Alcotest.(check int) "listing readable" 200 status;
  (match Wire.of_string listing with
  | Wire.Arr (_ :: _) -> ()
  | _ -> Alcotest.fail "listing must be a non-empty array");
  let status, _ = request addr ~meth:"DELETE" ~path:("/campaigns/" ^ id) () in
  Alcotest.(check int) "terminal delete is a 200" 200 status;
  let status, _ = request addr ~meth:"GET" ~path:("/campaigns/" ^ id) () in
  Alcotest.(check int) "deleted record is gone" 404 status;
  (* the per-job series left the registry with the record *)
  let _, metrics = request addr ~meth:"GET" ~path:"/metrics" () in
  Alcotest.(check bool) "per-job series retired" false
    (has ("cftcg_serve_job_executions{job=\"" ^ id ^ "\"}") metrics)

let test_http_shared_corpus () =
  (* two campaigns naming the same corpus directory share one sharded
     store handle; the result must pass fsck with zero findings *)
  let dir = fresh_dir "cftcg_serve_shared_corpus" in
  with_daemon (fun addr ->
      let submit seed =
        let body =
          Wire.to_string
            (Wire.Obj
               [
                 ("model", Wire.Str "solar");
                 ("seed", Wire.Num (float_of_int seed));
                 ("jobs", Wire.Num 2.0);
                 ("total_execs", Wire.Num 600.0);
                 ("execs_per_epoch", Wire.Num 200.0);
                 ("corpus_dir", Wire.Str dir);
               ])
        in
        let status, rbody = request addr ~meth:"POST" ~path:"/campaigns" ~body () in
        Alcotest.(check int) "accepted" 201 status;
        Wire.get_string "id" (Wire.of_string rbody)
      in
      let ids = List.map submit [ 1; 2; 3; 4 ] in
      let deadline = Unix.gettimeofday () +. 90.0 in
      let rec wait id =
        let _, body = request addr ~meth:"GET" ~path:("/campaigns/" ^ id) () in
        match Wire.get_string "status" (Wire.of_string body) with
        | "done" -> ()
        | "failed" -> Alcotest.failf "campaign %s failed: %s" id body
        | _ ->
          if Unix.gettimeofday () > deadline then Alcotest.fail "campaigns did not finish";
          Thread.delay 0.05;
          wait id
      in
      List.iter wait ids);
  let module Store = Cftcg_campaign.Corpus_store in
  let report = Store.fsck dir in
  Alcotest.(check (list string)) "fsck clean" [] report.Store.fsck_quarantined;
  Alcotest.(check int) "no orphans" 0 report.Store.fsck_orphans;
  Alcotest.(check bool) "entries persisted" true (report.Store.fsck_entries > 0)

(* --- debug endpoints + end-to-end correlation ------------------------ *)

let test_http_debug_and_correlation () =
  (* two concurrent campaigns with debug logging into the flight ring:
     every grant/epoch/worker log entry must carry the job id it
     belongs to, the two ids must never cross-contaminate, and the
     /debug endpoints must expose the state *)
  Log.set_level (Some Log.Debug);
  Flight.set_enabled true;
  Flight.clear ();
  Fun.protect
    ~finally:(fun () ->
      Log.set_level None;
      Flight.set_enabled false;
      Flight.clear ())
  @@ fun () ->
  with_daemon @@ fun addr ->
  let submit seed =
    let body =
      Wire.to_string
        (Wire.Obj
           [
             ("model", Wire.Str "solar");
             ("seed", Wire.Num (float_of_int seed));
             ("jobs", Wire.Num 2.0);
             ("total_execs", Wire.Num 600.0);
             ("execs_per_epoch", Wire.Num 200.0);
           ])
    in
    let status, rbody = request addr ~meth:"POST" ~path:"/campaigns" ~body () in
    Alcotest.(check int) "accepted" 201 status;
    Wire.get_string "id" (Wire.of_string rbody)
  in
  let id1 = submit 1 in
  let id2 = submit 2 in
  let deadline = Unix.gettimeofday () +. 90.0 in
  let rec wait id =
    let _, body = request addr ~meth:"GET" ~path:("/campaigns/" ^ id) () in
    match Wire.get_string "status" (Wire.of_string body) with
    | "done" -> ()
    | "failed" -> Alcotest.failf "campaign %s failed: %s" id body
    | _ ->
      if Unix.gettimeofday () > deadline then Alcotest.fail "campaigns did not finish";
      Thread.delay 0.05;
      wait id
  in
  wait id1;
  wait id2;
  (* /debug/jobs exposes scheduler internals and the event feed tail *)
  let status, body = request addr ~meth:"GET" ~path:"/debug/jobs" () in
  Alcotest.(check int) "debug jobs readable" 200 status;
  (match Wire.of_string body with
  | Wire.Arr jobs ->
    Alcotest.(check int) "both jobs listed" 2 (List.length jobs);
    List.iter
      (fun j ->
        Alcotest.(check bool) "has deficit" true (Wire.member "deficit" j <> None);
        Alcotest.(check bool) "has weight" true (Wire.member "weight" j <> None);
        match Wire.member "recent_events" j with
        | Some (Wire.Arr (_ :: _)) -> ()
        | _ -> Alcotest.fail "recent_events must be a non-empty array")
      jobs
  | _ -> Alcotest.fail "debug jobs must be an array");
  (* /debug/log serves the ring tail *)
  let status, body = request addr ~meth:"GET" ~path:"/debug/log" () in
  Alcotest.(check int) "debug log readable" 200 status;
  let dbg = Wire.of_string body in
  Alcotest.(check bool) "recorder on" true (Wire.member "enabled" dbg = Some (Wire.Bool true));
  (match Wire.member "entries" dbg with
  | Some (Wire.Arr (_ :: _)) -> ()
  | _ -> Alcotest.fail "entries must be non-empty");
  let status, _ = request addr ~meth:"POST" ~path:"/debug/log" () in
  Alcotest.(check int) "debug is GET-only" 405 status;
  (* correlation: the daemon runs in-process, so the flight ring holds
     its log lines. Every job-tagged entry names one of the two ids. *)
  let entries = Flight.recent ~limit:1000 () in
  let tagged =
    List.filter_map (fun e -> List.assoc_opt "job" e.Flight.fl_fields) entries
  in
  Alcotest.(check bool) "job-tagged entries exist" true (tagged <> []);
  List.iter
    (fun j ->
      Alcotest.(check bool) (Printf.sprintf "unknown job id %s" j) true (j = id1 || j = id2))
    tagged;
  Alcotest.(check bool) "first job present" true (List.mem id1 tagged);
  Alcotest.(check bool) "second job present" true (List.mem id2 tagged);
  (* the whole pipeline is tagged: scheduler grants, epochs, workers
     and the completion line each carry the job id *)
  let has_msg_for id prefix =
    List.exists
      (fun e ->
        List.assoc_opt "job" e.Flight.fl_fields = Some id
        && String.length e.Flight.fl_msg >= String.length prefix
        && String.sub e.Flight.fl_msg 0 (String.length prefix) = prefix)
      entries
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " grant tagged") true (has_msg_for id "grant:");
      Alcotest.(check bool) (id ^ " epoch tagged") true (has_msg_for id "epoch");
      Alcotest.(check bool) (id ^ " worker tagged") true (has_msg_for id "worker");
      Alcotest.(check bool) (id ^ " completion tagged") true (has_msg_for id "campaign done:"))
    [ id1; id2 ];
  (* no swap: the campaign-start line of each job names its own seed *)
  let start_of id =
    List.find_map
      (fun e ->
        if
          List.assoc_opt "job" e.Flight.fl_fields = Some id
          && String.length e.Flight.fl_msg >= 14
          && String.sub e.Flight.fl_msg 0 14 = "campaign start"
        then Some e.Flight.fl_msg
        else None)
      entries
  in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  (match (start_of id1, start_of id2) with
  | Some s1, Some s2 ->
    Alcotest.(check bool) "job1 started with seed 1" true (contains "seed 1" s1);
    Alcotest.(check bool) "job2 started with seed 2" true (contains "seed 2" s2)
  | _ -> Alcotest.fail "both campaign-start lines must be tagged")

let suites =
  [
    ( "serve.wire",
      [
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json errors" `Quick test_json_errors;
        test_json_qcheck;
        Alcotest.test_case "addr parse" `Quick test_addr_parse;
      ] );
    ( "serve.pool",
      [
        Alcotest.test_case "basics" `Quick test_pool_basics;
        Alcotest.test_case "blocking acquire" `Quick test_pool_blocking;
        Alcotest.test_case "with_slots exception" `Quick test_pool_with_slots_exception;
      ] );
    ( "serve.scheduler",
      [
        Alcotest.test_case "matches solo campaigns" `Slow test_scheduler_matches_solo;
        Alcotest.test_case "tenant budget" `Slow test_scheduler_tenant_budget;
        Alcotest.test_case "cancel and delete" `Slow test_scheduler_cancel;
        Alcotest.test_case "worker crash degrades" `Slow test_scheduler_worker_crash_degrades;
      ] );
    ( "serve.http",
      [
        Alcotest.test_case "end to end" `Slow test_http_end_to_end;
        Alcotest.test_case "shared sharded corpus" `Slow test_http_shared_corpus;
        Alcotest.test_case "debug endpoints + correlation" `Slow
          test_http_debug_and_correlation;
      ] );
  ]
